// The paper's core workflow end to end on the real-world-scale network:
// Phase I trains a HybridRSL profile on simulated multi-failure scenarios
// over WSSC-SUBNET; Phase II localizes fresh concurrent leaks from live
// IoT deltas, then sharpens the answer with weather and tweet evidence.
//
//   ./example_multi_leak_localization
#include <cstdio>

#include "core/aquascale.hpp"

using namespace aqua;
using namespace aqua::core;

int main() {
  const auto net = networks::make_wssc_subnet();
  std::printf("network: %s (%zu nodes, %zu links)\n", net.name().c_str(), net.num_nodes(),
              net.num_links());

  // Phase 0: scenario corpus + simulation (EPANET++ runs, parallelized).
  ExperimentConfig config;
  config.train_samples = 400;  // demo-sized; benches and the paper use more
  config.test_samples = 20;
  config.scenarios.min_events = 1;
  config.scenarios.max_events = 4;
  config.scenarios.cold_weather = true;  // winter operating conditions
  config.elapsed_slots = {1};
  config.seed = 42;
  std::printf("simulating %zu training scenarios...\n", config.train_samples);
  ExperimentContext context(net, config);

  // Phase I: offline profile (Algorithm 1) at 30% IoT deployment.
  EvalOptions options;
  options.kind = ModelKind::kHybridRsl;
  options.iot_percent = 30.0;
  options.tweets.clique_radius_m = 30.0;
  std::printf("training HybridRSL profile at %.0f%% IoT coverage...\n", options.iot_percent);
  const ProfileModel profile = context.train(options);
  std::printf("Phase I done in %.1f s (%zu sensors: %zu pressure, %zu flow)\n",
              profile.train_seconds, profile.sensors.size(),
              profile.sensors.count(sensing::SensorKind::kPressure),
              profile.sensors.count(sensing::SensorKind::kFlow));

  // Phase II on one fresh event (Algorithm 2), stepwise.
  const auto& scenario = context.test_scenarios().front();
  std::printf("\nground truth: %zu concurrent leaks at slot %zu:", scenario.events.size(),
              scenario.leak_slot);
  for (const auto& event : scenario.events) {
    std::printf(" %s(EC=%.4f)", net.node(event.node).name.c_str(), event.coefficient);
  }
  std::printf("\n");

  Rng rng(7);
  InferenceInputs inputs;
  inputs.features = context.test_batch().features(0, profile.sensors, 0, profile.noise, rng,
                                                  profile.include_time_feature);

  // Weather expert: it is 12 F outside, these nodes are frozen.
  inputs.frozen = scenario.frozen;
  inputs.p_leak_given_freeze = 1.0 / (1.0 + config.scenarios.freeze.p_freeze);

  // Human expert: tweets collected since the leak started.
  std::vector<hydraulics::NodeId> leak_nodes;
  for (const auto& event : scenario.events) leak_nodes.push_back(event.node);
  fusion::TweetGenerator tweets(options.tweets);
  const auto stream = tweets.generate(net, leak_nodes, 1, rng);
  const auto cliques = tweets.build_cliques(net, stream);
  inputs.cliques = to_label_cliques(cliques, context.labels());
  std::printf("observed %zu tweets forming %zu cliques\n", stream.size(), inputs.cliques.size());

  const InferenceResult result = infer_leaks(profile, inputs);

  auto report = [&](const char* label, const ml::Labels& predicted) {
    std::printf("%-28s hamming %.3f, predicted {", label,
                ml::hamming_score(predicted, scenario.truth));
    for (std::size_t v = 0; v < predicted.size(); ++v) {
      if (predicted[v] != 0) {
        std::printf(" %s", net.node(context.labels().node_of(v)).name.c_str());
      }
    }
    std::printf(" }\n");
  };
  report("IoT profile only:", result.predicted_iot_only);
  report("after weather + human:", result.predicted);
  std::printf("weather updates: %zu nodes; human tuning forced %zu nodes; "
              "inference took %.1f ms\n",
              result.weather_updates, result.tuning.added_labels.size(),
              result.infer_seconds * 1000.0);

  // Whole-test-set comparison.
  const auto base = context.evaluate_profile(profile, options);
  EvalOptions fused_options = options;
  fused_options.use_weather = true;
  fused_options.use_human = true;
  const auto fused = context.evaluate_profile(profile, fused_options);
  std::printf("\nacross %zu test events: IoT-only hamming %.3f -> fused %.3f (+%.3f)\n",
              fused.test_samples, base.hamming, fused.hamming, fused.increment());
  return 0;
}
