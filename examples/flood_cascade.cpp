// Cascading-impact exploration (Sec. V-D): a major main break goes
// unrepaired; leak outflow from the hydraulic model feeds the flood
// simulator hour by hour, showing how the inundated area grows — the
// information "water agencies and city planners [use] for damage control,
// community notifications and evacuation plans".
//
//   ./example_flood_cascade
#include <cstdio>

#include "core/aquascale.hpp"
#include "flood/dem.hpp"
#include "flood/flood_sim.hpp"

using namespace aqua;

int main() {
  const auto net = networks::make_wssc_subnet();
  const auto junctions = net.junction_ids();
  const hydraulics::NodeId burst = junctions[140];

  // Hydraulics: how much water escapes through the burst?
  auto leaky = net;
  leaky.set_emitter(burst, 0.010, 0.5);  // a severe main break
  hydraulics::GgaSolver solver(leaky);
  const auto state = solver.solve_snapshot();
  const double outflow = state.emitter_outflow[burst];
  std::printf("burst at %s: service pressure %.1f m, escaping %.1f L/s\n",
              net.node(burst).name.c_str(), state.pressure[burst], outflow * 1000.0);

  // Terrain around the network.
  const flood::Dem dem(net, 120, 120, 100.0);
  const double cell_area = dem.cell_size_x() * dem.cell_size_y();
  std::printf("DEM: %zux%zu cells (%.0f m resolution), elevation %.1f-%.1f m\n\n", dem.rows(),
              dem.cols(), dem.cell_size_x(), dem.min_elevation(), dem.max_elevation());

  const flood::FloodSource source{net.node(burst).x, net.node(burst).y, outflow};

  std::printf("hours  ponded[m^3]  wet area[m^2]  max depth[m]\n");
  for (const double hours : {0.5, 1.0, 2.0, 4.0}) {
    flood::FloodOptions options;
    options.duration_s = hours * 3600.0;
    const auto result = flood::simulate_flood(dem, {source}, options);
    std::printf("%5.1f  %11.1f  %13.0f  %12.3f\n", hours, result.total_volume(cell_area),
                static_cast<double>(result.wet_cells(0.01)) * cell_area, result.max_depth());
  }

  std::printf("\nwith infiltration into unsaturated ground (2 mm/min):\n");
  flood::FloodOptions options;
  options.duration_s = 4.0 * 3600.0;
  options.infiltration_m_per_s = 0.002 / 60.0;
  const auto drained = flood::simulate_flood(dem, {source}, options);
  std::printf("  after 4 h: %.1f m^3 still ponded over %.0f m^2\n",
              drained.total_volume(cell_area),
              static_cast<double>(drained.wet_cells(0.01)) * cell_area);
  return 0;
}
