// Quickstart: build a water network, simulate a day of operation with a
// scheduled pipe leak, and inspect the hydraulic consequences — the
// 10-minute tour of the EPANET++ substrate underneath AquaSCALE.
//
//   ./example_quickstart
#include <cstdio>

#include "core/aquascale.hpp"

using namespace aqua;

int main() {
  // 1. Build a small network by hand: one elevated reservoir feeding three
  //    junctions through a looped main.
  hydraulics::Network net("quickstart");
  const int diurnal = net.add_pattern(networks::diurnal_pattern());
  const auto source = net.add_reservoir("SOURCE", 60.0);
  const auto a = net.add_junction("A", 12.0, /*demand L/s=*/4.0, diurnal);
  const auto b = net.add_junction("B", 15.0, 3.0, diurnal);
  const auto c = net.add_junction("C", 10.0, 5.0, diurnal);
  net.add_pipe("MAIN", source, a, 400.0, 0.40, 130.0);
  net.add_pipe("AB", a, b, 250.0, 0.25, 120.0);
  net.add_pipe("BC", b, c, 250.0, 0.25, 120.0);
  net.add_pipe("AC", a, c, 300.0, 0.30, 125.0);  // the loop

  // 2. Steady-state snapshot: who gets what pressure right now?
  hydraulics::GgaSolver solver(net);
  const auto snapshot = solver.solve_snapshot();
  std::printf("healthy snapshot (converged in %zu Newton iterations):\n", snapshot.iterations);
  for (const auto v : net.junction_ids()) {
    std::printf("  %s: head %.2f m, pressure %.2f m\n", net.node(v).name.c_str(),
                snapshot.head[v], snapshot.pressure[v]);
  }

  // 3. Extended-period simulation with a leak: junction B springs a leak
  //    (emitter, Eq. 1 of the paper: Q = EC * p^0.5) at 6 am.
  hydraulics::SimulationOptions options;
  options.duration_s = 24.0 * 3600.0;  // one day
  options.hydraulic_step_s = 900.0;    // 15-minute IoT cadence
  hydraulics::Simulation sim(net, options);
  sim.schedule_leak({b, /*EC=*/0.004, /*beta=*/0.5, /*start=*/6.0 * 3600.0});
  const auto results = sim.run();

  const auto before = results.step_at(6.0 * 3600.0 - 900.0);
  const auto after = results.step_at(6.0 * 3600.0 + 900.0);
  std::printf("\nleak at B starting 06:00 (EC = 0.004):\n");
  std::printf("  pressure at B 05:45 -> 06:15: %.2f -> %.2f m\n",
              results.pressure(before, b), results.pressure(after, b));
  std::printf("  leak outflow at 06:15: %.1f L/s\n",
              results.emitter_outflow(after, b) * 1000.0);
  std::printf("  water lost over the day: %.1f m^3\n", results.leaked_volume());

  // 4. Round-trip the network through the INP dialect.
  const std::string inp = hydraulics::to_inp(net);
  const auto parsed = hydraulics::from_inp(inp);
  std::printf("\nINP round trip: %zu nodes, %zu links — OK\n", parsed.num_nodes(),
              parsed.num_links());
  return 0;
}
