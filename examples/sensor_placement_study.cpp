// Sensor-placement study: how much localization accuracy does each extra
// IoT sensor buy, and does the k-medoids placement beat scattering sensors
// at random? This is the accuracy/cost tradeoff the paper's Decision
// Support Module is meant to explore.
//
//   ./example_sensor_placement_study
#include <cstdio>

#include "core/aquascale.hpp"

using namespace aqua;
using namespace aqua::core;

int main() {
  const auto net = networks::make_epa_net();
  std::printf("network: %s — %zu candidate sensor locations (%zu nodes + %zu links)\n\n",
              net.name().c_str(), net.num_nodes() + net.num_links(), net.num_nodes(),
              net.num_links());

  ExperimentConfig config;
  config.train_samples = 700;
  config.test_samples = 100;
  config.scenarios.min_events = 1;
  config.scenarios.max_events = 2;
  config.elapsed_slots = {1};
  config.seed = 31;
  ExperimentContext context(net, config);

  std::printf("%7s  %8s  %18s  %18s\n", "IoT %", "sensors", "k-medoids hamming",
              "random hamming");
  for (const double percent : {5.0, 10.0, 20.0, 40.0, 70.0, 100.0}) {
    EvalOptions options;
    options.kind = ModelKind::kRandomForest;
    options.iot_percent = percent;
    options.kmedoids_placement = true;
    const auto kmedoids = context.evaluate(options);
    options.kmedoids_placement = false;
    const auto random = context.evaluate(options);
    std::printf("%7.0f  %8zu  %18.3f  %18.3f\n", percent,
                sensing::sensors_for_percentage(net, percent), kmedoids.hamming, random.hamming);
  }

  // What did k-medoids actually pick at 10%?
  const auto& sensors = context.sensors_at(10.0);
  std::printf("\nk-medoids picks at 10%% coverage (%zu sensors):\n", sensors.size());
  for (const auto& sensor : sensors.sensors) std::printf("  %s\n", sensor.name.c_str());

  // Greedy coverage-optimal placement (the paper's deferred optimization
  // problem): how many scenarios does each additional sensor detect? A
  // strict SNR threshold makes the criterion "unambiguous detection" —
  // with the default (5 sigma) a single trunk flow meter already notices
  // nearly every leak somewhere in the system.
  GreedyPlacementOptions greedy_options;
  greedy_options.snr_threshold = 60.0;
  const auto greedy = place_sensors_greedy(context.train_batch(), 12, 0, greedy_options);
  std::printf("\ngreedy max-coverage placement (%zu scenarios):\n", greedy.total_scenarios);
  std::printf("%8s  %-14s  %s\n", "sensor#", "pick", "scenarios detected");
  for (std::size_t i = 0; i < greedy.sensors.size(); ++i) {
    std::printf("%8zu  %-14s  %zu / %zu\n", i + 1, greedy.sensors.sensors[i].name.c_str(),
                greedy.coverage_curve[i], greedy.total_scenarios);
  }
  std::printf("\nreading: diminishing returns set in quickly — the first few well-placed\n"
              "sensors carry most of the localization signal.\n");
  return 0;
}
