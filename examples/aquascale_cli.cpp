// aquascale_cli — command-line front end for the simulation substrate.
//
//   aquascale_cli export <epa|wssc> <out.inp>   write a built-in network
//   aquascale_cli solve <net.inp>               steady-state snapshot report
//   aquascale_cli simulate <net.inp> [hours]    extended-period summary
//   aquascale_cli leak <net.inp> <node> <EC> [hours]
//                                               leak what-if: drawdown + loss
//
// Networks use the INP dialect documented in hydraulics/inp_io.hpp
// (export a built-in one to see the format).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/aquascale.hpp"

using namespace aqua;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  aquascale_cli export <epa|wssc> <out.inp>\n"
               "  aquascale_cli solve <net.inp>\n"
               "  aquascale_cli simulate <net.inp> [hours]\n"
               "  aquascale_cli leak <net.inp> <node> <EC> [hours]\n");
  return 2;
}

hydraulics::Network load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InvalidArgument("cannot open " + path);
  return hydraulics::read_inp(in);
}

int cmd_export(const std::string& which, const std::string& out_path) {
  const auto net = which == "epa"    ? networks::make_epa_net()
                   : which == "wssc" ? networks::make_wssc_subnet()
                                     : throw InvalidArgument("unknown network: " + which);
  std::ofstream out(out_path);
  if (!out) throw InvalidArgument("cannot write " + out_path);
  hydraulics::write_inp(net, out);
  std::printf("wrote %s (%zu nodes, %zu links) to %s\n", net.name().c_str(), net.num_nodes(),
              net.num_links(), out_path.c_str());
  return 0;
}

int cmd_solve(const std::string& path) {
  const auto net = load(path);
  hydraulics::GgaSolver solver(net);
  const auto state = solver.solve_snapshot();
  std::printf("%s: %s in %zu iterations\n", net.name().c_str(),
              state.converged ? "converged" : "DID NOT CONVERGE", state.iterations);
  double min_p = 1e18, max_p = -1e18, sum_p = 0.0;
  std::size_t junctions = 0;
  for (const auto v : net.junction_ids()) {
    min_p = std::min(min_p, state.pressure[v]);
    max_p = std::max(max_p, state.pressure[v]);
    sum_p += state.pressure[v];
    ++junctions;
  }
  std::printf("junction pressure [m]: min %.2f / avg %.2f / max %.2f\n", min_p,
              sum_p / static_cast<double>(junctions), max_p);
  double source_output = 0.0;
  for (std::size_t l = 0; l < net.num_links(); ++l) {
    const auto& link = net.link(l);
    if (net.node(link.from).has_fixed_head()) source_output += state.flow[l];
    if (net.node(link.to).has_fixed_head()) source_output -= state.flow[l];
  }
  std::printf("net source output: %.1f L/s; leaks discharging %.1f L/s\n",
              source_output * 1000.0, state.total_emitter_outflow() * 1000.0);
  return state.converged ? 0 : 1;
}

int cmd_simulate(const std::string& path, double hours) {
  const auto net = load(path);
  hydraulics::SimulationOptions options;
  options.duration_s = hours * 3600.0;
  hydraulics::Simulation sim(net, options);
  const auto results = sim.run();
  std::printf("%s: %zu steps over %.1f h\n", net.name().c_str(), results.num_steps(), hours);
  // Min service pressure across the run (the number operators watch).
  double worst = 1e18;
  std::size_t worst_step = 0;
  hydraulics::NodeId worst_node = 0;
  for (std::size_t s = 0; s < results.num_steps(); ++s) {
    for (const auto v : net.junction_ids()) {
      if (results.pressure(s, v) < worst) {
        worst = results.pressure(s, v);
        worst_step = s;
        worst_node = v;
      }
    }
  }
  std::printf("worst service pressure: %.2f m at %s, t = %.2f h\n", worst,
              net.node(worst_node).name.c_str(), results.time(worst_step) / 3600.0);
  std::printf("water lost to leaks: %.1f m^3\n", results.leaked_volume());
  return 0;
}

int cmd_leak(const std::string& path, const std::string& node_name, double ec, double hours) {
  auto net = load(path);
  const auto node = net.node_id(node_name);
  hydraulics::SimulationOptions options;
  options.duration_s = hours * 3600.0;

  hydraulics::Simulation healthy(net, options);
  const auto base = healthy.run();

  hydraulics::Simulation broken(net, options);
  broken.schedule_leak({node, ec, 0.5, 0.0});
  const auto leaky = broken.run();

  std::printf("leak what-if at %s (EC = %.4f) over %.1f h:\n", node_name.c_str(), ec, hours);
  std::printf("  water lost: %.1f m^3\n", leaky.leaked_volume());
  const std::size_t last = leaky.num_steps() - 1;
  std::printf("  pressure at %s: %.2f -> %.2f m\n", node_name.c_str(),
              base.pressure(last, node), leaky.pressure(last, node));
  // The node whose pressure dropped most (where complaints would come from).
  double best_drop = 0.0;
  hydraulics::NodeId best_node = node;
  for (const auto v : net.junction_ids()) {
    const double drop = base.pressure(last, v) - leaky.pressure(last, v);
    if (drop > best_drop) {
      best_drop = drop;
      best_node = v;
    }
  }
  std::printf("  largest drawdown: %s (-%.2f m)\n", net.node(best_node).name.c_str(), best_drop);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 3) return usage();
    const std::string command = argv[1];
    if (command == "export" && argc == 4) return cmd_export(argv[2], argv[3]);
    if (command == "solve" && argc == 3) return cmd_solve(argv[2]);
    if (command == "simulate" && (argc == 3 || argc == 4)) {
      return cmd_simulate(argv[2], argc == 4 ? std::atof(argv[3]) : 24.0);
    }
    if (command == "leak" && (argc == 5 || argc == 6)) {
      return cmd_leak(argv[2], argv[3], std::atof(argv[4]), argc == 6 ? std::atof(argv[5]) : 6.0);
    }
    return usage();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
