// Simulates a utility's winter: a seasonal temperature series drives
// freeze-induced pipe breaks across a county-scale system (the Fig. 3
// relationship), and the operator watches break pressure as cold snaps
// arrive. Demonstrates the weather substrate on its own.
//
//   ./example_cold_snap_monitoring
#include <cstdio>

#include "core/aquascale.hpp"

using namespace aqua;

int main() {
  const fusion::TemperatureModel climate;  // mid-Atlantic seasonal profile
  const fusion::FreezeModel freeze;        // paper parameters: 0.8 / 0.9

  // A year of daily operation over a 20,000-joint system.
  const auto history = fusion::simulate_break_history(climate, freeze, 20000, 365, 1.2, 2016);

  std::printf("day  temp[F]  breaks  status\n");
  std::size_t annual_breaks = 0;
  std::size_t cold_snap_days = 0;
  for (std::size_t day = 0; day < history.size(); ++day) {
    annual_breaks += history[day].breaks;
    const bool freezing = history[day].temperature_f < fusion::kFreezeThresholdF;
    cold_snap_days += freezing;
    // Print a weekly digest plus every freezing day.
    if (day % 28 == 0 || freezing) {
      std::printf("%3zu  %6.1f   %5zu  %s\n", day, history[day].temperature_f,
                  history[day].breaks,
                  freezing ? "FREEZE ALERT — crews on standby" : "normal");
    }
  }
  std::printf("\nannual totals: %zu breaks, %zu freeze-alert days\n", annual_breaks,
              cold_snap_days);

  // How the Bayes fusion (Eq. 5-6) reacts when the weather expert weighs in
  // on a node the IoT profile is unsure about.
  std::printf("\nBayes aggregation of IoT belief with the weather expert:\n");
  for (const double p_iot : {0.1, 0.3, 0.45, 0.6}) {
    const double expert = 1.0 / (1.0 + freeze.p_freeze);  // calibrated freeze evidence
    std::printf("  p_iot = %.2f, frozen node -> fused p = %.3f\n", p_iot,
                fusion::bayes_aggregate(p_iot, expert));
  }
  return 0;
}
