// profile_cache — train-once / serve-many workflow on top of the versioned
// model artifacts (src/io). Phase I (scenario simulation + profile
// training) is the dominant cost of an AquaSCALE deployment; this tool
// persists its output so Phase II workloads start from a warm artifact.
//
//   profile_cache train <epa|wssc> <out.model> [scenarios] [kind]
//       simulate a scenario corpus, train the profile, save the artifact
//   profile_cache eval <epa|wssc> <model.file> [scenarios]
//       load the artifact and score it on a freshly simulated test corpus
//
// kinds: LinearR LogisticR GB RF SVM HybridRSL (default HybridRSL)
#include <cstdio>
#include <fstream>
#include <string>

#include "core/aquascale.hpp"

using namespace aqua;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  profile_cache train <epa|wssc> <out.model> [scenarios] [kind]\n"
               "  profile_cache eval <epa|wssc> <model.file> [scenarios]\n");
  return 2;
}

hydraulics::Network make_network(const std::string& which) {
  if (which == "epa") return networks::make_epa_net();
  if (which == "wssc") return networks::make_wssc_subnet();
  throw InvalidArgument("unknown network: " + which);
}

core::ModelKind parse_kind(const std::string& name) {
  for (const auto kind : core::all_model_kinds()) {
    if (core::model_kind_name(kind) == name) return kind;
  }
  throw InvalidArgument("unknown model kind: " + name);
}

struct Corpus {
  std::vector<core::LeakScenario> scenarios;
  std::unique_ptr<core::SnapshotBatch> batch;
};

Corpus simulate(const hydraulics::Network& network, std::size_t count, std::uint64_t seed) {
  core::ScenarioConfig config;
  config.seed = seed;
  core::ScenarioGenerator generator(network, config);
  Corpus corpus;
  corpus.scenarios = generator.generate(count);
  corpus.batch = std::make_unique<core::SnapshotBatch>(network, corpus.scenarios,
                                                       std::vector<std::size_t>{1});
  return corpus;
}

int cmd_train(const std::string& which, const std::string& out_path, std::size_t count,
              const std::string& kind_name) {
  core::ProfileTrainingConfig training;
  training.kind = parse_kind(kind_name);  // fail before the expensive simulation

  const auto network = make_network(which);
  std::printf("simulating %zu training scenarios on %s...\n", count, network.name().c_str());
  const Corpus corpus = simulate(network, count, /*seed=*/1234);
  const auto sensors = sensing::full_observation(network);
  const auto profile =
      core::train_profile(*corpus.batch, corpus.scenarios, sensors, /*elapsed_index=*/0, training);
  std::printf("trained %s profile (%zu labels, %zu sensors) in %.2fs\n", kind_name.c_str(),
              profile.model.num_labels(), sensors.size(), profile.train_seconds);

  std::ofstream out(out_path, std::ios::binary);
  if (!out) throw InvalidArgument("cannot write " + out_path);
  profile.save(out);
  out.flush();
  std::printf("saved artifact to %s\n", out_path.c_str());
  return 0;
}

int cmd_eval(const std::string& which, const std::string& model_path, std::size_t count) {
  const auto network = make_network(which);

  std::ifstream in(model_path, std::ios::binary);
  if (!in) throw InvalidArgument("cannot open " + model_path);
  const auto profile = core::ProfileModel::load(in);
  std::printf("loaded %s profile (%zu labels, %zu sensors) — skipping Phase I\n",
              core::model_kind_name(profile.kind).c_str(), profile.model.num_labels(),
              profile.sensors.size());

  std::printf("simulating %zu test scenarios on %s...\n", count, network.name().c_str());
  const Corpus corpus = simulate(network, count, /*seed=*/777);
  const auto dataset =
      corpus.batch->build_dataset(corpus.scenarios, profile.sensors, profile.elapsed_index,
                                  profile.noise, /*seed=*/4321, profile.include_time_feature);

  const auto predicted = profile.model.predict_batch(dataset.features);
  std::vector<ml::Labels> truth;
  truth.reserve(corpus.scenarios.size());
  for (const auto& s : corpus.scenarios) truth.push_back(s.truth);

  const double hamming = ml::mean_hamming_score(predicted, truth);
  const auto prf = ml::micro_precision_recall(predicted, truth);
  std::printf("hamming %.3f, precision %.3f, recall %.3f, f1 %.3f over %zu scenarios\n", hamming,
              prf.precision, prf.recall, prf.f1, corpus.scenarios.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 4) return usage();
    const std::string command = argv[1];
    const std::string network = argv[2];
    const std::string path = argv[3];
    if (command == "train") {
      const std::size_t count = argc > 4 ? std::stoul(argv[4]) : 200;
      const std::string kind = argc > 5 ? argv[5] : "HybridRSL";
      return cmd_train(network, path, count, kind);
    }
    if (command == "eval") {
      const std::size_t count = argc > 4 ? std::stoul(argv[4]) : 50;
      return cmd_eval(network, path, count);
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
