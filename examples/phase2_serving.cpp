// phase2_serving — the online half of AquaSCALE as an operator would run
// it: train per-district profiles (or start from a fixed-seed corpus),
// host them in a serving::ServingDaemon (one shard per district, bounded
// ingest queues, hot-swappable models), stream live snapshots through it,
// and print the per-district telemetry a service operator would watch
// (queue/infer stage seconds, snapshots served/shed, model versions).
//
//   phase2_serving <epa|wssc|mixed> [batches] [batch_size] [kind]
//
// `mixed` hosts one EPA-NET and one WSSC district in the same daemon —
// the multi-tenant deployment DESIGN.md §13 describes. Along the way the
// example demonstrates an RCU-style hot swap: the model is saved to an
// AQUAMODL artifact, reloaded through the zero-copy mmap reader, and
// swapped in mid-stream without dropping a request.
//
// kinds: LinearR LogisticR GB RF SVM HybridRSL (default HybridRSL)
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/aquascale.hpp"
#include "core/inference_engine.hpp"
#include "serving/daemon.hpp"

using namespace aqua;
using namespace aqua::core;

namespace {

int usage() {
  std::fprintf(stderr, "usage: phase2_serving <epa|wssc|mixed> [batches] [batch_size] [kind]\n");
  return 2;
}

ModelKind parse_kind(const std::string& name) {
  for (const ModelKind kind : all_model_kinds()) {
    if (model_kind_name(kind) == name) return kind;
  }
  throw InvalidArgument("unknown model kind: " + name);
}

/// One tenant: a trained district plus the context to synthesize its
/// live snapshot stream. The network lives behind a unique_ptr because
/// ExperimentContext keeps a reference to it — the address must survive
/// the District being moved into the tenants vector.
struct District {
  std::string name;
  std::unique_ptr<hydraulics::Network> net;
  std::unique_ptr<ExperimentContext> context;  // references *net
  std::shared_ptr<const ProfileModel> profile;
  std::unique_ptr<fusion::TweetGenerator> tweets;
  Rng root{0};
};

District make_district(const std::string& name, hydraulics::Network net,
                       const EvalOptions& options, std::size_t serve_scenarios) {
  District district;
  district.name = name;
  district.net = std::make_unique<hydraulics::Network>(std::move(net));
  ExperimentConfig config;
  config.train_samples = 200;
  config.test_samples = serve_scenarios;
  config.seed = 7331;
  std::printf("[%s] simulating %zu train + %zu serve scenarios...\n", name.c_str(),
              config.train_samples, config.test_samples);
  district.context = std::make_unique<ExperimentContext>(*district.net, config);
  district.profile = std::make_shared<const ProfileModel>(district.context->train(options));
  std::printf("[%s] profile: %s, %zu labels, trained in %.2f s\n", name.c_str(),
              model_kind_name(district.profile->kind).c_str(),
              district.profile->model.num_labels(), district.profile->train_seconds);
  district.tweets = std::make_unique<fusion::TweetGenerator>(options.tweets);
  district.root = Rng(config.seed ^ 0x9999ULL);
  return district;
}

InferenceInputs make_inputs(District& district, std::size_t scenario) {
  const ExperimentContext& context = *district.context;
  const ProfileModel& profile = *district.profile;
  Rng rng = district.root.split();
  InferenceInputs inputs;
  inputs.features = context.test_batch().features(scenario, profile.sensors, 0, profile.noise,
                                                  rng, profile.include_time_feature);
  const auto& s = context.test_scenarios()[scenario];
  if (s.temperature_f < fusion::kFreezeThresholdF) inputs.frozen = s.frozen;
  std::vector<hydraulics::NodeId> leak_nodes;
  for (const auto& event : s.events) leak_nodes.push_back(event.node);
  const auto generated = district.tweets->generate(context.network(), leak_nodes, 1, rng);
  inputs.cliques =
      to_label_cliques(district.tweets->build_cliques(context.network(), generated),
                       context.labels());
  return inputs;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string which = argv[1];
  const std::size_t batches = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  const std::size_t batch_size = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 32;

  try {
    EvalOptions options;
    options.kind = argc > 4 ? parse_kind(argv[4]) : ModelKind::kHybridRsl;
    const std::size_t serve_scenarios = batches * batch_size;

    std::vector<District> tenants;
    if (which == "epa" || which == "mixed") {
      tenants.push_back(make_district("epa", networks::make_epa_net(), options, serve_scenarios));
    }
    if (which == "wssc" || which == "mixed") {
      tenants.push_back(
          make_district("wssc", networks::make_wssc_subnet(), options, serve_scenarios));
    }
    if (tenants.empty()) throw InvalidArgument("unknown network: " + which);

    // Host every tenant in one daemon.
    std::atomic<std::size_t> leaks_flagged{0};
    std::vector<serving::DistrictConfig> configs(tenants.size());
    for (std::size_t d = 0; d < tenants.size(); ++d) {
      configs[d].name = tenants[d].name;
      configs[d].model = std::make_shared<serving::ModelBundle>(tenants[d].profile, 1);
      configs[d].queue_capacity = serve_scenarios * 2;
      configs[d].max_batch = batch_size;
    }
    serving::ServingDaemon daemon(
        configs, {},
        [&](const serving::ResultEvent&, const InferenceResult& result) {
          std::size_t flags = 0;
          for (const auto flag : result.predicted) flags += flag != 0;
          leaks_flagged.fetch_add(flags, std::memory_order_relaxed);
        });

    // Stream the snapshots, round-robin across tenants, one batch at a
    // time per district. Midway, hot-swap every district's model from a
    // freshly written artifact (loaded via mmap) to show the RCU path.
    for (std::size_t b = 0; b < batches; ++b) {
      if (b == batches / 2) {
        for (std::size_t d = 0; d < tenants.size(); ++d) {
          const std::string path = "phase2_serving_" + tenants[d].name + ".aquamodl";
          tenants[d].profile->save_file(path);
          bool used_mmap = false;
          daemon.swap_model(d, serving::load_bundle(path, 2, {}, &used_mmap));
          std::printf("[%s] hot-swapped to artifact model v2 (mmap: %s)\n",
                      tenants[d].name.c_str(), used_mmap ? "yes" : "no");
          std::remove(path.c_str());
        }
      }
      for (std::size_t d = 0; d < tenants.size(); ++d) {
        for (std::size_t i = 0; i < batch_size; ++i) {
          daemon.submit(d, make_inputs(tenants[d], b * batch_size + i));
        }
      }
    }
    daemon.drain();

    std::size_t served = 0;
    for (std::size_t d = 0; d < tenants.size(); ++d) served += daemon.served_count(d);
    std::printf("\nserved %zu snapshots across %zu district(s); %zu leak flags raised\n", served,
                tenants.size(), leaks_flagged.load());
    std::printf("%-40s %12s\n", "telemetry", "value");
    for (const auto& [name, value] : daemon.metrics()) {
      std::printf("%-40s %12.6f\n", name.c_str(), value);
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
