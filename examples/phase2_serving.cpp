// phase2_serving — the online half of AquaSCALE as a serving loop: train a
// profile (or start from a fixed-seed corpus), then push batches of live
// snapshots through core::InferenceEngine and print the per-stage telemetry
// a service operator would watch (stage seconds/calls, snapshots served,
// weather updates applied, labels force-added by human tuning).
//
//   phase2_serving <epa|wssc> [batches] [batch_size] [kind]
//
// kinds: LinearR LogisticR GB RF SVM HybridRSL (default HybridRSL)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/aquascale.hpp"
#include "core/inference_engine.hpp"

using namespace aqua;
using namespace aqua::core;

namespace {

int usage() {
  std::fprintf(stderr, "usage: phase2_serving <epa|wssc> [batches] [batch_size] [kind]\n");
  return 2;
}

ModelKind parse_kind(const std::string& name) {
  for (const ModelKind kind : all_model_kinds()) {
    if (model_kind_name(kind) == name) return kind;
  }
  throw InvalidArgument("unknown model kind: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string which = argv[1];
  const std::size_t batches = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  const std::size_t batch_size = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 32;

  try {
    const hydraulics::Network net =
        which == "epa" ? networks::make_epa_net()
                       : which == "wssc" ? networks::make_wssc_subnet()
                                         : throw InvalidArgument("unknown network: " + which);

    EvalOptions options;
    options.kind = argc > 4 ? parse_kind(argv[4]) : ModelKind::kHybridRsl;

    ExperimentConfig config;
    config.train_samples = 200;
    config.test_samples = batches * batch_size;
    config.seed = 7331;
    std::printf("simulating %zu train + %zu serve scenarios on %s...\n", config.train_samples,
                config.test_samples, net.name().c_str());
    ExperimentContext context(net, config);
    const ProfileModel profile = context.train(options);
    std::printf("profile: %s, %zu labels, trained in %.2f s (shared input map: %s)\n",
                model_kind_name(profile.kind).c_str(), profile.model.num_labels(),
                profile.train_seconds, profile.model.has_shared_input_map() ? "yes" : "no");

    const InferenceEngine engine(profile);
    fusion::TweetGenerator tweets(options.tweets);
    Rng root(config.seed ^ 0x9999ULL);

    std::size_t served = 0, leaks_flagged = 0;
    for (std::size_t b = 0; b < batches; ++b) {
      std::vector<InferenceInputs> batch(batch_size);
      for (std::size_t i = 0; i < batch_size; ++i) {
        const std::size_t scenario = b * batch_size + i;
        Rng rng = root.split();
        InferenceInputs& inputs = batch[i];
        inputs.features = context.test_batch().features(scenario, profile.sensors, 0,
                                                        profile.noise, rng,
                                                        profile.include_time_feature);
        const auto& s = context.test_scenarios()[scenario];
        if (s.temperature_f < fusion::kFreezeThresholdF) inputs.frozen = s.frozen;
        std::vector<hydraulics::NodeId> leak_nodes;
        for (const auto& event : s.events) leak_nodes.push_back(event.node);
        const auto generated = tweets.generate(net, leak_nodes, 1, rng);
        inputs.cliques = to_label_cliques(tweets.build_cliques(net, generated), context.labels());
      }
      const auto results = engine.infer_batch(batch);
      served += results.size();
      for (const auto& r : results) {
        for (const auto flag : r.predicted) leaks_flagged += flag != 0;
      }
    }

    const auto times = engine.telemetry_snapshot();
    std::printf("\nserved %zu snapshots in %zu batches; %zu leak flags raised\n", served,
                batches, leaks_flagged);
    std::printf("%-28s %12s %10s\n", "telemetry", "value", "calls");
    for (const auto& [name, value] : times.metrics()) {
      std::printf("%-28s %12.6f\n", name.c_str(), value);
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
