#!/usr/bin/env bash
# Builds and runs the figure-reproduction benches, then copies their
# machine-readable BENCH_*.json reports into the repo root so committed
# reports stay next to EXPERIMENTS.md.
#
# Usage: scripts/run_benches.sh [name ...]
#        e.g. scripts/run_benches.sh profile_fit phase1_training
#        With no arguments, every bench_* binary in the build tree runs.
#        AQUA_SCALE scales scenario counts (see bench/bench_util.hpp).
#        AQUA_DISTRICTS sets the shard count for bench_phase2_serving
#        (default 4 districts of alternating EPA-NET/WSSC traffic).
#
# Benches that gate correctness (bench_robustness's replay-vs-full-run
# identity gate, the bit-identity gates in bench_phase1_training /
# bench_phase2_inference) exit nonzero on a gate failure, which the
# failure loop below turns into this script's nonzero exit.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
cmake -B "$BUILD_DIR" -S . > /dev/null
if [[ $# -gt 0 ]]; then
  targets=()
  for name in "$@"; do targets+=("bench_${name}"); done
  cmake --build "$BUILD_DIR" -j --target "${targets[@]}"
else
  cmake --build "$BUILD_DIR" -j
fi

cd "$BUILD_DIR/bench"
if [[ $# -gt 0 ]]; then
  benches=()
  for name in "$@"; do benches+=("./bench_${name}"); done
else
  mapfile -t benches < <(find . -maxdepth 1 -name 'bench_*' -type f | sort)
fi

# Run every bench even when one fails (a crashed bench must not mask the
# others' reports), then propagate a nonzero exit naming the failures —
# `set -e` alone would abort mid-loop on the first bad bench.
failed=()
for bench in "${benches[@]}"; do
  echo "== ${bench#./} =="
  if [[ "${bench#./}" == bench_micro_hydraulics ]]; then
    # Skip the google-benchmark micro suite (no BENCH json) and run only
    # the inner-solver comparison + backend node-count sweep.
    "$bench" --benchmark_filter='^$' || failed+=("${bench#./}")
  else
    "$bench" || failed+=("${bench#./}")
  fi
done

cd ../..
shopt -s nullglob
for report in "$BUILD_DIR"/bench/BENCH_*.json; do
  cp "$report" .
  echo "collected $(basename "$report")"
done

if [[ ${#failed[@]} -gt 0 ]]; then
  echo "FAILED benches: ${failed[*]}" >&2
  exit 1
fi
