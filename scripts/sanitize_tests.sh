#!/usr/bin/env bash
# Tier-1 test suite under AddressSanitizer + UndefinedBehaviorSanitizer
# (cmake -DAQUA_SANITIZE=ON), so the replay engine pool and the thread-pool
# batch paths get exercised under memory/UB checking routinely, not just
# when someone remembers to. CI-friendly: exits non-zero on any build or
# test failure.
#
# Usage: scripts/sanitize_tests.sh [build-dir]   (default: build-asan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build-asan}
cmake -B "$BUILD_DIR" -S . -DAQUA_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
