#!/usr/bin/env bash
# Tier-1 test suite under sanitizers, CI-friendly (non-zero exit on any
# build or test failure). Two passes in separate build dirs:
#
#   1. ASan+UBSan (cmake -DAQUA_SANITIZE=ON): the full suite, so the
#      replay engine pool, the thread-pool batch paths, and the hostile
#      .inp corpus (test_inp_io) get memory/UB checking routinely.
#   2. TSan (cmake -DAQUA_TSAN=ON): the unit+concurrency+serving labels,
#      which include test_concurrency's shared-model / shared-engine races
#      and test_serving's daemon submit/swap/worker thread interleavings.
#
# Usage: scripts/sanitize_tests.sh [asan-build-dir] [tsan-build-dir]
#        (defaults: build-asan build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

ASAN_DIR=${1:-build-asan}
TSAN_DIR=${2:-build-tsan}

echo "== pass 1/2: ASan + UBSan (${ASAN_DIR}) =="
cmake -B "$ASAN_DIR" -S . -DAQUA_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$ASAN_DIR" -j "$(nproc)"
ctest --test-dir "$ASAN_DIR" --output-on-failure -j "$(nproc)"

echo "== pass 2/2: TSan (${TSAN_DIR}) =="
cmake -B "$TSAN_DIR" -S . -DAQUA_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_DIR" -j "$(nproc)"
ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$(nproc)" -L "unit|concurrency|serving"
