#!/usr/bin/env bash
# Tier-1 test suite under sanitizers, CI-friendly (non-zero exit on any
# build or test failure). Two passes in separate build dirs:
#
#   1. ASan+UBSan (cmake -DAQUA_SANITIZE=ON): the full suite, so the
#      replay engine pool, the thread-pool batch paths, the hostile
#      .inp corpus (test_inp_io), and the compiled forest kernel's
#      plane indexing (test_compiled_forest) get memory/UB checking
#      routinely.
#   2. TSan (cmake -DAQUA_TSAN=ON): the unit+concurrency+serving+kernel
#      labels, which include test_concurrency's shared-model /
#      shared-engine races and its variant-batch suite (mixed
#      replay-pool + full-run-fallback SnapshotBatch builds from the
#      thread pool and from raw threads), test_serving's daemon
#      submit/swap/worker thread interleavings, and
#      test_compiled_forest's concurrent tile calls on one shared
#      compiled model. TSan builds compile the
#      multiversioned SIMD kernels default-arch (common/cpu_dispatch.hpp):
#      target_clones ifunc resolvers would otherwise run before the TSan
#      runtime initializes and crash at startup; clones are bit-identical
#      so only sanitized-build speed is lost.
#
# Usage: scripts/sanitize_tests.sh [asan-build-dir] [tsan-build-dir]
#        (defaults: build-asan build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

ASAN_DIR=${1:-build-asan}
TSAN_DIR=${2:-build-tsan}

echo "== pass 1/2: ASan + UBSan (${ASAN_DIR}) =="
cmake -B "$ASAN_DIR" -S . -DAQUA_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$ASAN_DIR" -j "$(nproc)"
ctest --test-dir "$ASAN_DIR" --output-on-failure -j "$(nproc)"

echo "== pass 2/2: TSan (${TSAN_DIR}) =="
cmake -B "$TSAN_DIR" -S . -DAQUA_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_DIR" -j "$(nproc)"
# scripts/tsan.supp silences libstdc++'s un-annotated atomic<shared_ptr>
# internals (see the file for details); races in our own code still fail.
TSAN_OPTIONS="suppressions=$(pwd)/scripts/tsan.supp" \
  ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$(nproc)" -L "unit|concurrency|serving|kernel"
