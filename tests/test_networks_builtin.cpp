#include "networks/builtin.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "hydraulics/inp_io.hpp"
#include "hydraulics/solver.hpp"
#include "networks/generator.hpp"

namespace aqua::networks {
namespace {

using hydraulics::LinkType;
using hydraulics::NodeType;

TEST(EpaNet, PublishedElementCounts) {
  const auto net = make_epa_net();
  EXPECT_EQ(net.num_nodes(), 96u);
  EXPECT_EQ(net.count_links(LinkType::kPipe), 118u);
  EXPECT_EQ(net.count_links(LinkType::kPump), 2u);
  EXPECT_EQ(net.count_links(LinkType::kValve), 1u);
  EXPECT_EQ(net.count_nodes(NodeType::kTank), 3u);
  EXPECT_EQ(net.count_nodes(NodeType::kReservoir), 2u);
  EXPECT_EQ(net.num_junctions(), 91u);
}

TEST(WsscSubnet, PublishedElementCounts) {
  const auto net = make_wssc_subnet();
  EXPECT_EQ(net.num_nodes(), 299u);
  EXPECT_EQ(net.count_links(LinkType::kPipe), 316u);
  EXPECT_EQ(net.count_links(LinkType::kValve), 2u);
  EXPECT_EQ(net.count_nodes(NodeType::kReservoir), 1u);
  EXPECT_EQ(net.count_nodes(NodeType::kTank), 0u);
}

TEST(BuiltinNetworks, AreConnectedAndValid) {
  EXPECT_NO_THROW(make_epa_net().validate());
  EXPECT_NO_THROW(make_wssc_subnet().validate());
}

TEST(BuiltinNetworks, DeterministicConstruction) {
  EXPECT_EQ(hydraulics::to_inp(make_epa_net()), hydraulics::to_inp(make_epa_net()));
  EXPECT_EQ(hydraulics::to_inp(make_wssc_subnet()), hydraulics::to_inp(make_wssc_subnet()));
}

TEST(BuiltinNetworks, ServicePressuresAreRealistic) {
  for (const auto& net : {make_epa_net(), make_wssc_subnet()}) {
    hydraulics::GgaSolver solver(net);
    const auto state = solver.solve_snapshot();
    ASSERT_TRUE(state.converged) << net.name();
    for (const auto v : net.junction_ids()) {
      EXPECT_GT(state.pressure[v], 15.0) << net.name() << " node " << v;
      EXPECT_LT(state.pressure[v], 120.0) << net.name() << " node " << v;
    }
  }
}

TEST(BuiltinNetworks, JunctionsHaveDemandsAndCoordinates) {
  const auto net = make_wssc_subnet();
  double total_demand = 0.0;
  for (const auto v : net.junction_ids()) {
    const auto& node = net.node(v);
    total_demand += node.base_demand;
    EXPECT_GE(node.base_demand, 0.0);
  }
  EXPECT_GT(total_demand, 0.05);  // ~300 junctions at >= 0.15 L/s
  // Coordinates span a nontrivial area (needed for tweets and the DEM).
  double min_x = 1e18, max_x = -1e18;
  for (const auto& node : net.nodes()) {
    min_x = std::min(min_x, node.x);
    max_x = std::max(max_x, node.x);
  }
  EXPECT_GT(max_x - min_x, 1000.0);
}

TEST(Generator, DiurnalPatternHasUnitMean) {
  const auto pattern = diurnal_pattern();
  ASSERT_EQ(pattern.multipliers.size(), 24u);
  double sum = 0.0;
  for (double m : pattern.multipliers) sum += m;
  EXPECT_NEAR(sum / 24.0, 1.0, 1e-12);
  // Morning peak exceeds overnight trough.
  EXPECT_GT(pattern.multipliers[7], pattern.multipliers[2]);
}

TEST(Generator, GridSkeletonCounts) {
  hydraulics::Network net("gen");
  GridSkeletonSpec spec;
  spec.rows = 5;
  spec.cols = 6;
  spec.extra_loops = 7;
  const auto skeleton = build_grid_skeleton(net, spec);
  EXPECT_EQ(skeleton.grid_nodes.size(), 30u);
  EXPECT_EQ(skeleton.num_pipes, 29u + 7u);
  EXPECT_EQ(net.num_links(), skeleton.num_pipes);
  EXPECT_TRUE(net.to_graph().is_connected());
}

TEST(Generator, GridRejectsTooManyLoops) {
  hydraulics::Network net("gen");
  GridSkeletonSpec spec;
  spec.rows = 2;
  spec.cols = 2;
  spec.extra_loops = 100;
  EXPECT_THROW(build_grid_skeleton(net, spec), InvalidArgument);
}

TEST(Generator, TerrainIsSmooth) {
  // Neighboring samples differ by much less than the relief amplitude.
  const double a = terrain_elevation(100.0, 100.0, 10.0, 20.0);
  const double b = terrain_elevation(110.0, 100.0, 10.0, 20.0);
  EXPECT_LT(std::abs(a - b), 1.0);
  // Terrain stays within [base, base + ~2.2 * relief].
  for (double x = -500.0; x < 3000.0; x += 137.0) {
    for (double y = -500.0; y < 3000.0; y += 151.0) {
      const double z = terrain_elevation(x, y, 10.0, 20.0);
      EXPECT_GT(z, 9.0);
      EXPECT_LT(z, 60.0);
    }
  }
}

TEST(Generator, SeedChangesLayout) {
  hydraulics::Network a("a"), b("b");
  GridSkeletonSpec spec;
  spec.rows = 4;
  spec.cols = 4;
  spec.extra_loops = 2;
  spec.seed = 1;
  build_grid_skeleton(a, spec);
  spec.seed = 2;
  build_grid_skeleton(b, spec);
  // Same counts, different jittered coordinates.
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  bool any_different = false;
  for (std::size_t v = 0; v < a.num_nodes(); ++v) {
    any_different = any_different || a.node(v).x != b.node(v).x;
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace aqua::networks
