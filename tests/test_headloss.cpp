#include "hydraulics/headloss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace aqua::hydraulics {
namespace {

Link make_pipe(double length = 100.0, double diameter = 0.3, double roughness = 120.0) {
  Link l;
  l.type = LinkType::kPipe;
  l.length = length;
  l.diameter = diameter;
  l.roughness = roughness;
  return l;
}

TEST(HazenWilliams, ResistanceFormula) {
  const double r = hazen_williams_resistance(100.0, 0.3, 120.0);
  const double expected = 10.667 * 100.0 / (std::pow(120.0, 1.852) * std::pow(0.3, 4.871));
  EXPECT_NEAR(r, expected, 1e-9);
}

TEST(HazenWilliams, ResistanceScalesWithLength) {
  EXPECT_NEAR(hazen_williams_resistance(200.0, 0.3, 120.0),
              2.0 * hazen_williams_resistance(100.0, 0.3, 120.0), 1e-9);
}

TEST(HazenWilliams, BiggerPipeLessResistance) {
  EXPECT_LT(hazen_williams_resistance(100.0, 0.5, 120.0),
            hazen_williams_resistance(100.0, 0.3, 120.0));
}

TEST(HazenWilliams, RejectsNonPositive) {
  EXPECT_THROW(hazen_williams_resistance(0.0, 0.3, 120.0), InvalidArgument);
  EXPECT_THROW(hazen_williams_resistance(100.0, -0.3, 120.0), InvalidArgument);
}

TEST(LinkLoss, PipeLossIsOddInFlow) {
  const Link pipe = make_pipe();
  const auto fwd = link_loss(pipe, 0.05, HeadLossModel::kHazenWilliams);
  const auto bwd = link_loss(pipe, -0.05, HeadLossModel::kHazenWilliams);
  EXPECT_NEAR(fwd.loss, -bwd.loss, 1e-12);
  EXPECT_NEAR(fwd.gradient, bwd.gradient, 1e-12);
}

TEST(LinkLoss, PipeLossMatchesPowerLaw) {
  const Link pipe = make_pipe();
  const double r = hazen_williams_resistance(pipe.length, pipe.diameter, pipe.roughness);
  const auto lg = link_loss(pipe, 0.05, HeadLossModel::kHazenWilliams);
  EXPECT_NEAR(lg.loss, r * std::pow(0.05, 1.852), 1e-9);
  EXPECT_NEAR(lg.gradient, 1.852 * r * std::pow(0.05, 0.852), 1e-9);
}

TEST(LinkLoss, GradientAlwaysPositive) {
  const Link pipe = make_pipe();
  for (double q : {-0.5, -0.01, -1e-9, 0.0, 1e-9, 0.01, 0.5}) {
    EXPECT_GT(link_loss(pipe, q, HeadLossModel::kHazenWilliams).gradient, 0.0) << "q=" << q;
    EXPECT_GT(link_loss(pipe, q, HeadLossModel::kDarcyWeisbach).gradient, 0.0) << "q=" << q;
  }
}

TEST(LinkLoss, LossMonotoneInFlow) {
  const Link pipe = make_pipe();
  double previous = link_loss(pipe, 0.0, HeadLossModel::kHazenWilliams).loss;
  for (double q = 0.001; q < 0.2; q += 0.005) {
    const double loss = link_loss(pipe, q, HeadLossModel::kHazenWilliams).loss;
    EXPECT_GT(loss, previous);
    previous = loss;
  }
}

TEST(LinkLoss, ClosedLinkActsAsHugeResistance) {
  Link pipe = make_pipe();
  pipe.status = LinkStatus::kClosed;
  const auto lg = link_loss(pipe, 0.01, HeadLossModel::kHazenWilliams);
  EXPECT_GT(lg.gradient, 1e7);
  EXPECT_NEAR(lg.loss, lg.gradient * 0.01, 1e-6);
}

TEST(LinkLoss, MinorLossAddsQuadraticTerm) {
  Link plain = make_pipe();
  Link lossy = make_pipe();
  lossy.minor_loss = 10.0;
  const double q = 0.05;
  EXPECT_GT(link_loss(lossy, q, HeadLossModel::kHazenWilliams).loss,
            link_loss(plain, q, HeadLossModel::kHazenWilliams).loss);
}

TEST(LinkLoss, DarcyWeisbachReasonableMagnitude) {
  // Compare the two friction laws at matched roughness semantics: HW C of
  // ~130 corresponds to a fairly smooth main (DW roughness ~0.25 mm). They
  // should agree within a factor of ~2 in the turbulent regime.
  const double hw_loss = hazen_williams_resistance(100.0, 0.3, 130.0) * std::pow(0.05, 1.852);
  const double dw_loss = darcy_weisbach_resistance(100.0, 0.3, 0.25, 0.05) * 0.05 * 0.05;
  EXPECT_GT(dw_loss, 0.5 * hw_loss);
  EXPECT_LT(dw_loss, 2.0 * hw_loss);
}

TEST(LinkLoss, DarcyWeisbachRougherPipeMoreLoss) {
  EXPECT_GT(darcy_weisbach_resistance(100.0, 0.3, 1.5, 0.05),
            darcy_weisbach_resistance(100.0, 0.3, 0.1, 0.05));
}

TEST(PumpCurve, HeadGainDecreasesWithFlow) {
  const PumpCurve curve{50.0, 1000.0, 2.0};
  EXPECT_DOUBLE_EQ(curve.head_gain(0.0), 50.0);
  EXPECT_NEAR(curve.head_gain(0.1), 50.0 - 10.0, 1e-12);
  EXPECT_GT(curve.gradient(0.1), 0.0);
}

TEST(PumpLoss, ForwardFlowGivesNegativeLoss) {
  Link pump;
  pump.type = LinkType::kPump;
  pump.pump = {50.0, 1000.0, 2.0};
  const auto lg = link_loss(pump, 0.1, HeadLossModel::kHazenWilliams);
  EXPECT_NEAR(lg.loss, -(50.0 - 10.0), 1e-12);  // head gain of 40 m
}

TEST(PumpLoss, ReverseFlowHeavilyPenalized) {
  Link pump;
  pump.type = LinkType::kPump;
  pump.pump = {50.0, 1000.0, 2.0};
  const auto lg = link_loss(pump, -0.01, HeadLossModel::kHazenWilliams);
  EXPECT_GT(lg.gradient, 1e5);
}

TEST(ValveLoss, SettingThrottles) {
  Link valve;
  valve.type = LinkType::kValve;
  valve.diameter = 0.3;
  valve.valve_setting = 1.0;
  const auto open = link_loss(valve, 0.05, HeadLossModel::kHazenWilliams);
  valve.valve_setting = 20.0;
  const auto throttled = link_loss(valve, 0.05, HeadLossModel::kHazenWilliams);
  EXPECT_GT(throttled.loss, open.loss);
}

TEST(Emitter, MatchesEquationOneAbovesmoothing) {
  // Q = EC * p^0.5 (Eq. 1).
  const auto ef = emitter_flow(0.003, 0.5, 25.0);
  EXPECT_NEAR(ef.flow, 0.003 * 5.0, 1e-12);
  EXPECT_NEAR(ef.gradient, 0.003 * 0.5 / 5.0, 1e-12);
}

TEST(Emitter, ZeroBelowZeroPressure) {
  const auto ef = emitter_flow(0.003, 0.5, -5.0);
  EXPECT_DOUBLE_EQ(ef.flow, 0.0);
  EXPECT_DOUBLE_EQ(ef.gradient, 0.0);
}

TEST(Emitter, SmoothingIsContinuousAtBoundary) {
  const double p0 = 1.0;  // smoothing boundary
  const auto below = emitter_flow(0.003, 0.5, p0 - 1e-9);
  const auto above = emitter_flow(0.003, 0.5, p0 + 1e-9);
  EXPECT_NEAR(below.flow, above.flow, 1e-9);
  EXPECT_NEAR(below.gradient, above.gradient, 1e-6);
}

TEST(Emitter, SmoothingVanishesAtZero) {
  const auto ef = emitter_flow(0.003, 0.5, 1e-12);
  EXPECT_NEAR(ef.flow, 0.0, 1e-12);
  EXPECT_NEAR(ef.gradient, 0.0, 1e-9);
}

TEST(Emitter, FlowMonotoneInPressure) {
  double previous = 0.0;
  for (double p = 0.01; p < 50.0; p *= 1.5) {
    const double flow = emitter_flow(0.002, 0.5, p).flow;
    EXPECT_GE(flow, previous);
    previous = flow;
  }
}

TEST(Emitter, LargerCoefficientMoreFlow) {
  EXPECT_GT(emitter_flow(0.004, 0.5, 20.0).flow, emitter_flow(0.002, 0.5, 20.0).flow);
}

TEST(Emitter, NoLeakNoFlow) {
  const auto ef = emitter_flow(0.0, 0.5, 30.0);
  EXPECT_DOUBLE_EQ(ef.flow, 0.0);
}

}  // namespace
}  // namespace aqua::hydraulics
