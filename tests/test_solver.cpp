#include "hydraulics/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "hydraulics/headloss.hpp"
#include "networks/builtin.hpp"

namespace aqua::hydraulics {
namespace {

/// Reservoir (head 50) -> single pipe -> junction with demand.
Network single_pipe(double demand_lps = 20.0) {
  Network net("single");
  const NodeId r = net.add_reservoir("R", 50.0);
  const NodeId a = net.add_junction("A", 10.0, demand_lps);
  net.add_pipe("P", r, a, 500.0, 0.3, 120.0);
  return net;
}

TEST(GgaSolver, SinglePipeMatchesAnalyticHeadLoss) {
  const Network net = single_pipe(20.0);
  GgaSolver solver(net);
  const auto state = solver.solve_snapshot();
  ASSERT_TRUE(state.converged);
  const double q = 0.020;
  EXPECT_NEAR(state.flow[0], q, 1e-6);
  const double r = hazen_williams_resistance(500.0, 0.3, 120.0);
  const double expected_head = 50.0 - r * std::pow(q, 1.852);
  EXPECT_NEAR(state.head[net.node_id("A")], expected_head, 1e-6);
  EXPECT_NEAR(state.pressure[net.node_id("A")], expected_head - 10.0, 1e-6);
}

TEST(GgaSolver, ZeroDemandGivesStaticHead) {
  const Network net = single_pipe(0.0);
  GgaSolver solver(net);
  const auto state = solver.solve_snapshot();
  ASSERT_TRUE(state.converged);
  EXPECT_NEAR(state.head[net.node_id("A")], 50.0, 1e-6);
  EXPECT_NEAR(state.flow[0], 0.0, 1e-6);
}

TEST(GgaSolver, MassBalanceAtEveryJunction) {
  // Looped network: R -> A -> B, R -> B, plus demands.
  Network net("looped");
  const NodeId r = net.add_reservoir("R", 60.0);
  const NodeId a = net.add_junction("A", 10.0, 8.0);
  const NodeId b = net.add_junction("B", 12.0, 12.0);
  net.add_pipe("P1", r, a, 300.0, 0.3, 120.0);
  net.add_pipe("P2", a, b, 200.0, 0.25, 110.0);
  net.add_pipe("P3", r, b, 400.0, 0.3, 125.0);
  GgaSolver solver(net);
  const auto state = solver.solve_snapshot();
  ASSERT_TRUE(state.converged);
  // Node A: inflow P1 - outflow P2 = demand.
  EXPECT_NEAR(state.flow[0] - state.flow[1], 0.008, 1e-5);
  // Node B: inflow P2 + P3 = demand.
  EXPECT_NEAR(state.flow[1] + state.flow[2], 0.012, 1e-5);
}

TEST(GgaSolver, EmitterSatisfiesEquationOne) {
  Network net = single_pipe(5.0);
  net.set_emitter(net.node_id("A"), 0.004, 0.5);
  GgaSolver solver(net);
  const auto state = solver.solve_snapshot();
  ASSERT_TRUE(state.converged);
  const double p = state.pressure[net.node_id("A")];
  ASSERT_GT(p, 1.0);  // above the smoothing region
  EXPECT_NEAR(state.emitter_outflow[net.node_id("A")], 0.004 * std::sqrt(p), 1e-8);
  // Pipe must carry demand + leak.
  EXPECT_NEAR(state.flow[0], 0.005 + state.emitter_outflow[net.node_id("A")], 1e-6);
}

TEST(GgaSolver, LeakLowersPressure) {
  Network healthy = single_pipe(10.0);
  GgaSolver hs(healthy);
  const double p_healthy = hs.solve_snapshot().pressure[healthy.node_id("A")];
  Network leaky = single_pipe(10.0);
  leaky.set_emitter(leaky.node_id("A"), 0.005, 0.5);
  GgaSolver ls(leaky);
  const double p_leaky = ls.solve_snapshot().pressure[leaky.node_id("A")];
  EXPECT_LT(p_leaky, p_healthy);
}

TEST(GgaSolver, ClosedPipeBlocksFlow) {
  Network net("closed");
  const NodeId r = net.add_reservoir("R", 50.0);
  const NodeId a = net.add_junction("A", 10.0, 5.0);
  net.add_pipe("P1", r, a, 300.0, 0.3, 120.0);
  const LinkId closed = net.add_pipe("P2", r, a, 300.0, 0.3, 120.0, LinkStatus::kClosed);
  GgaSolver solver(net);
  const auto state = solver.solve_snapshot();
  ASSERT_TRUE(state.converged);
  EXPECT_NEAR(state.flow[closed], 0.0, 1e-6);
  EXPECT_NEAR(state.flow[0], 0.005, 1e-5);
}

TEST(GgaSolver, PumpLiftsHeadAboveSource) {
  Network net("pumped");
  const NodeId r = net.add_reservoir("R", 5.0);
  const NodeId a = net.add_junction("A", 2.0, 10.0);
  net.add_pump("PU", r, a, PumpCurve{40.0, 500.0, 2.0});
  GgaSolver solver(net);
  const auto state = solver.solve_snapshot();
  ASSERT_TRUE(state.converged);
  const double q = state.flow[0];
  EXPECT_NEAR(q, 0.010, 1e-5);
  EXPECT_NEAR(state.head[a], 5.0 + 40.0 - 500.0 * q * q, 1e-4);
  EXPECT_GT(state.head[a], 5.0);
}

TEST(GgaSolver, TankActsAsFixedHeadWithinSolve) {
  Network net("tanked");
  const NodeId t = net.add_tank("T", 30.0, 4.0, 1.0, 8.0, 10.0);
  const NodeId a = net.add_junction("A", 5.0, 3.0);
  net.add_pipe("P", t, a, 100.0, 0.3, 120.0);
  GgaSolver solver(net);
  const auto state = solver.solve_snapshot();
  ASSERT_TRUE(state.converged);
  EXPECT_DOUBLE_EQ(state.head[t], 34.0);
  EXPECT_LT(state.head[a], 34.0);
}

TEST(GgaSolver, WarmStartConvergesFaster) {
  const Network net = single_pipe(15.0);
  GgaSolver solver(net);
  const auto cold = solver.solve_snapshot();
  std::vector<double> demands(net.num_nodes(), 0.0), fixed(net.num_nodes(), 0.0);
  demands[net.node_id("A")] = 0.0151;  // small perturbation
  fixed[net.node_id("R")] = 50.0;
  const auto warm = solver.solve(demands, fixed, &cold);
  ASSERT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, cold.iterations);
}

TEST(GgaSolver, RequiresPerNodeVectors) {
  const Network net = single_pipe();
  GgaSolver solver(net);
  EXPECT_THROW(solver.solve({0.0}, {0.0, 0.0}), InvalidArgument);
}

TEST(GgaSolver, InvalidNetworkRejectedAtConstruction) {
  Network net("nosource");
  const NodeId a = net.add_junction("A", 0.0);
  const NodeId b = net.add_junction("B", 0.0);
  net.add_pipe("P", a, b, 10.0, 0.1, 100.0);
  EXPECT_THROW(GgaSolver{net}, InvalidArgument);
}

TEST(GgaSolver, DefaultInnerSolverIsAutoResolvingToCholeskyOnSmallNets) {
  EXPECT_EQ(SolverOptions{}.linear_solver, LinearSolver::kAuto);
  // Both builtin evaluation networks sit far below the crossover, so the
  // default configuration keeps the exact behavior of the old kCholesky
  // default.
  const GgaSolver epa(networks::make_epa_net());
  EXPECT_EQ(epa.linear_backend(), LinearSolver::kCholesky);
  const GgaSolver wssc(networks::make_wssc_subnet());
  EXPECT_EQ(wssc.linear_backend(), LinearSolver::kCholesky);
}

TEST(GgaSolver, AutoCrossoverHonorsThreshold) {
  const auto net = networks::make_epa_net();
  SolverOptions options;
  options.linear_solver = LinearSolver::kAuto;
  // Force the crossover below this network's junction count: kAuto must
  // resolve to the iterative city-scale backend.
  options.auto_crossover_nodes = 1;
  const GgaSolver solver(net, options);
  EXPECT_EQ(solver.linear_backend(), LinearSolver::kIc0Cg);
  // Explicit choices pass through untouched.
  options.linear_solver = LinearSolver::kCholesky;
  const GgaSolver forced(net, options);
  EXPECT_EQ(forced.linear_backend(), LinearSolver::kCholesky);
}

/// Solves one snapshot with the given inner solver, at tight tolerances so
/// both solvers walk essentially the same Newton trajectory.
HydraulicState solve_with(const Network& net, LinearSolver linear_solver) {
  SolverOptions options;
  options.linear_solver = linear_solver;
  options.accuracy = 1e-10;
  options.max_iterations = 2000;
  // Tight inner tolerance so the CG path tracks the direct factorization
  // to well below the 1e-8 agreement bound (heads are O(100) m).
  options.cg.tolerance = 1e-14;
  options.cg.max_iterations = 20000;
  GgaSolver solver(net, options);
  return solver.solve_snapshot();
}

void expect_inner_solvers_agree(const Network& net) {
  const auto chol = solve_with(net, LinearSolver::kCholesky);
  ASSERT_TRUE(chol.converged);
  for (const LinearSolver other : {LinearSolver::kConjugateGradient, LinearSolver::kIc0Cg}) {
    const auto iter = solve_with(net, other);
    ASSERT_TRUE(iter.converged);
    for (std::size_t v = 0; v < net.num_nodes(); ++v) {
      EXPECT_NEAR(chol.head[v], iter.head[v], 1e-8) << net.name() << " head at node " << v;
      EXPECT_NEAR(chol.pressure[v], iter.pressure[v], 1e-8);
      EXPECT_NEAR(chol.emitter_outflow[v], iter.emitter_outflow[v], 1e-8);
    }
    for (std::size_t l = 0; l < net.num_links(); ++l) {
      EXPECT_NEAR(chol.flow[l], iter.flow[l], 1e-8) << net.name() << " flow on link " << l;
    }
  }
}

TEST(GgaSolver, CholeskyMatchesCgOnBuiltinNetworks) {
  expect_inner_solvers_agree(networks::make_epa_net());
  expect_inner_solvers_agree(networks::make_wssc_subnet());
}

TEST(GgaSolver, CholeskyMatchesCgOnBuiltinNetworksWithLeaks) {
  auto epa = networks::make_epa_net();
  auto epa_junctions = epa.junction_ids();
  epa.set_emitter(epa_junctions[7], 0.003);
  epa.set_emitter(epa_junctions[31], 0.005);
  expect_inner_solvers_agree(epa);

  auto wssc = networks::make_wssc_subnet();
  auto wssc_junctions = wssc.junction_ids();
  wssc.set_emitter(wssc_junctions[40], 0.004);
  wssc.set_emitter(wssc_junctions[200], 0.006);
  expect_inner_solvers_agree(wssc);
}

TEST(GgaSolver, WorkspaceReuseAcrossTimestepsIsBitIdentical) {
  // An EPS-style sequence through one reused solver (workspace + symbolic
  // factorization reused across every timestep) must be bit-identical to
  // running each timestep on a freshly constructed solver.
  const auto net = networks::make_epa_net();
  const std::size_t n = net.num_nodes();
  std::vector<double> fixed(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    const Node& node = net.node(v);
    if (node.type == NodeType::kReservoir) fixed[v] = node.elevation;
    if (node.type == NodeType::kTank) fixed[v] = node.elevation + node.init_level;
  }

  GgaSolver reused(net);
  HydraulicState previous;
  bool have_previous = false;
  for (std::size_t period = 0; period < 6; ++period) {
    std::vector<double> demands(n, 0.0);
    for (NodeId v = 0; v < n; ++v) demands[v] = net.demand_at(v, period);
    const auto warm = have_previous ? &previous : nullptr;
    const auto from_reused = reused.solve(demands, fixed, warm);

    GgaSolver fresh(net);
    const auto from_fresh = fresh.solve(demands, fixed, warm);

    ASSERT_EQ(from_reused.iterations, from_fresh.iterations);
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(from_reused.head[v], from_fresh.head[v]) << "period " << period;
    }
    for (LinkId l = 0; l < net.num_links(); ++l) {
      EXPECT_EQ(from_reused.flow[l], from_fresh.flow[l]) << "period " << period;
    }
    previous = from_reused;
    have_previous = true;
  }
}

TEST(GgaSolver, CgInnerSolverStillWorksBehindOption) {
  SolverOptions options;
  options.linear_solver = LinearSolver::kConjugateGradient;
  const Network net = single_pipe(20.0);
  GgaSolver solver(net, options);
  const auto state = solver.solve_snapshot();
  ASSERT_TRUE(state.converged);
  EXPECT_NEAR(state.flow[0], 0.020, 1e-6);
}

TEST(GgaSolver, ProbeOutflowResponseMatchesFiniteDifference) {
  // The linearized probe (one factorization, blocked RHS) must agree with
  // the finite-difference response of the full nonlinear solver to a small
  // extra outflow at each probe node, to first order.
  const auto net = networks::make_epa_net();
  SolverOptions options;
  options.accuracy = 1e-10;
  options.max_iterations = 2000;
  GgaSolver solver(net, options);
  const auto base = solver.solve_snapshot();
  ASSERT_TRUE(base.converged);

  const auto junctions = net.junction_ids();
  const std::vector<NodeId> probes = {junctions[3], junctions[17], junctions[44]};
  std::vector<double> head_response, flow_response;
  solver.probe_outflow_response(base, probes, head_response, &flow_response);
  ASSERT_EQ(head_response.size(), probes.size() * net.num_nodes());
  ASSERT_EQ(flow_response.size(), probes.size() * net.num_links());

  const std::size_t n = net.num_nodes();
  std::vector<double> demands(n, 0.0), fixed(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    const auto& node = net.node(v);
    demands[v] = net.demand_at(v, 0);
    if (node.type == NodeType::kReservoir) fixed[v] = node.elevation;
    if (node.type == NodeType::kTank) fixed[v] = node.elevation + node.init_level;
  }
  const double eps = 2e-5;  // 0.02 l/s perturbation
  for (std::size_t k = 0; k < probes.size(); ++k) {
    auto perturbed = demands;
    perturbed[probes[k]] += eps;
    const auto bumped = solver.solve(perturbed, fixed, &base);
    ASSERT_TRUE(bumped.converged);
    // Mixed tolerance: the finite difference itself carries O(eps)
    // truncation error proportional to the response magnitude.
    for (NodeId v = 0; v < n; ++v) {
      const double fd = (bumped.head[v] - base.head[v]) / eps;
      EXPECT_NEAR(head_response[k * n + v], fd, 2e-3 * std::max(1.0, std::abs(fd)))
          << "probe " << k << " head response at node " << v;
    }
    for (LinkId l = 0; l < net.num_links(); ++l) {
      const double fd = (bumped.flow[l] - base.flow[l]) / eps;
      EXPECT_NEAR(flow_response[k * net.num_links() + l], fd, 2e-3 * std::max(1.0, std::abs(fd)))
          << "probe " << k << " flow response on link " << l;
    }
  }
}

TEST(GgaSolver, TotalEmitterOutflowSums) {
  Network net("multi-leak");
  const NodeId r = net.add_reservoir("R", 60.0);
  const NodeId a = net.add_junction("A", 10.0, 2.0);
  const NodeId b = net.add_junction("B", 10.0, 2.0);
  net.add_pipe("P1", r, a, 200.0, 0.3, 120.0);
  net.add_pipe("P2", a, b, 200.0, 0.3, 120.0);
  net.set_emitter(a, 0.002);
  net.set_emitter(b, 0.003);
  GgaSolver solver(net);
  const auto state = solver.solve_snapshot();
  ASSERT_TRUE(state.converged);
  EXPECT_NEAR(state.total_emitter_outflow(),
              state.emitter_outflow[a] + state.emitter_outflow[b], 1e-12);
  EXPECT_GT(state.emitter_outflow[b], 0.0);
}

}  // namespace
}  // namespace aqua::hydraulics
