#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/experiment.hpp"
#include "networks/builtin.hpp"

namespace aqua::core {
namespace {

/// Shared small experiment context (expensive to build, so build once).
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new hydraulics::Network(networks::make_epa_net());
    ExperimentConfig config;
    config.train_samples = 250;
    config.test_samples = 40;
    config.scenarios.min_events = 1;
    config.scenarios.max_events = 2;
    config.scenarios.cold_weather = true;
    config.elapsed_slots = {1};
    config.seed = 21;
    context_ = new ExperimentContext(*net_, config);
    EvalOptions options;
    options.kind = ModelKind::kLogisticR;  // fast and strong at full IoT
    options.iot_percent = 100.0;
    profile_ = new ProfileModel(context_->train(options));
  }
  static void TearDownTestSuite() {
    delete profile_;
    delete context_;
    delete net_;
    profile_ = nullptr;
    context_ = nullptr;
    net_ = nullptr;
  }

  static hydraulics::Network* net_;
  static ExperimentContext* context_;
  static ProfileModel* profile_;
};

hydraulics::Network* PipelineTest::net_ = nullptr;
ExperimentContext* PipelineTest::context_ = nullptr;
ProfileModel* PipelineTest::profile_ = nullptr;

std::vector<double> test_features(const ExperimentContext& context, const ProfileModel& profile,
                                  std::size_t scenario_index) {
  Rng rng(1000 + scenario_index);
  return context.test_batch().features(scenario_index, profile.sensors, 0, profile.noise, rng,
                                       profile.include_time_feature);
}

TEST_F(PipelineTest, IotOnlyInferenceProducesSaneBeliefs) {
  InferenceInputs inputs;
  inputs.features = test_features(*context_, *profile_, 0);
  const auto result = infer_leaks(*profile_, inputs);
  EXPECT_EQ(result.beliefs.size(), context_->labels().num_labels());
  for (double p : result.beliefs.p_leak) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  EXPECT_EQ(result.predicted, result.predicted_iot_only);  // no fusion applied
  EXPECT_EQ(result.weather_updates, 0u);
}

TEST_F(PipelineTest, ProfileActuallyLocalizesAtFullIot) {
  // The trained profile should beat chance by a wide margin on the test
  // scenarios (full observation, EPA-NET, <=2 leaks).
  std::vector<ml::Labels> predictions, truth;
  for (std::size_t i = 0; i < context_->test_scenarios().size(); ++i) {
    InferenceInputs inputs;
    inputs.features = test_features(*context_, *profile_, i);
    predictions.push_back(infer_leaks(*profile_, inputs).predicted);
    truth.push_back(context_->test_scenarios()[i].truth);
  }
  EXPECT_GT(ml::mean_hamming_score(predictions, truth), 0.5);
}

TEST_F(PipelineTest, WeatherUpdateOnlyTouchesFrozenLabels) {
  InferenceInputs inputs;
  inputs.features = test_features(*context_, *profile_, 1);
  const auto base = infer_leaks(*profile_, inputs);
  inputs.frozen.assign(context_->labels().num_labels(), 0);
  inputs.frozen[3] = 1;
  inputs.frozen[7] = 1;
  const auto fused = infer_leaks(*profile_, inputs);
  EXPECT_EQ(fused.weather_updates, 2u);
  for (std::size_t v = 0; v < base.beliefs.size(); ++v) {
    if (v == 3 || v == 7) {
      EXPECT_GE(fused.beliefs.p_leak[v], base.beliefs.p_leak[v]);
    } else {
      EXPECT_DOUBLE_EQ(fused.beliefs.p_leak[v], base.beliefs.p_leak[v]);
    }
  }
}

TEST_F(PipelineTest, HumanCliqueForcesDetection) {
  InferenceInputs inputs;
  inputs.features = test_features(*context_, *profile_, 2);
  // Construct a clique around a label that is uncertain (nonzero entropy)
  // but currently not predicted.
  const auto base = infer_leaks(*profile_, inputs);
  std::size_t quiet = 0;
  bool found = false;
  for (std::size_t v = 0; v < base.beliefs.size() && !found; ++v) {
    if (base.beliefs.p_leak[v] > 0.05 && base.beliefs.p_leak[v] < 0.4) {
      quiet = v;
      found = true;
    }
  }
  if (!found) GTEST_SKIP() << "no uncertain unpredicted label in this sample";
  inputs.cliques.push_back({{quiet}, 0.9});
  const auto tuned = infer_leaks(*profile_, inputs);
  EXPECT_EQ(tuned.predicted[quiet], 1);
  EXPECT_EQ(tuned.tuning.added_labels.size(), 1u);
  EXPECT_LT(tuned.energy_after, tuned.energy_before);
}

TEST_F(PipelineTest, ConsistentCliqueChangesNothing) {
  InferenceInputs inputs;
  inputs.features = test_features(*context_, *profile_, 3);
  const auto base = infer_leaks(*profile_, inputs);
  // Find a predicted label, then a clique containing it is consistent.
  std::size_t hot = 0;
  bool found = false;
  for (std::size_t v = 0; v < base.predicted.size() && !found; ++v) {
    if (base.predicted[v] != 0) {
      hot = v;
      found = true;
    }
  }
  if (!found) GTEST_SKIP() << "no predicted label in this sample";
  inputs.cliques.push_back({{hot}, 0.9});
  const auto tuned = infer_leaks(*profile_, inputs);
  EXPECT_EQ(tuned.predicted, base.predicted);
  EXPECT_EQ(tuned.tuning.cliques_consistent, 1u);
}

TEST_F(PipelineTest, ToLabelCliquesFiltersNonJunctions) {
  std::vector<fusion::Clique> cliques(1);
  // Mix a junction with a reservoir node (reservoirs carry no label).
  const auto& labels = context_->labels();
  cliques[0].nodes.push_back(labels.node_of(0));
  for (hydraulics::NodeId v = 0; v < net_->num_nodes(); ++v) {
    if (net_->node(v).has_fixed_head()) {
      cliques[0].nodes.push_back(v);
      break;
    }
  }
  cliques[0].confidence = 0.7;
  const auto mapped = to_label_cliques(cliques, labels);
  ASSERT_EQ(mapped.size(), 1u);
  EXPECT_EQ(mapped[0].labels, std::vector<std::size_t>{0});
  EXPECT_DOUBLE_EQ(mapped[0].confidence, 0.7);
}

TEST_F(PipelineTest, EmptyCliquesDropped) {
  std::vector<fusion::Clique> cliques(1);  // no nodes at all
  EXPECT_TRUE(to_label_cliques(cliques, context_->labels()).empty());
}

TEST_F(PipelineTest, UntrainedProfileRejected) {
  ProfileModel empty;
  InferenceInputs inputs;
  inputs.features = {0.0};
  EXPECT_THROW(infer_leaks(empty, inputs), InvalidArgument);
}

TEST_F(PipelineTest, EvaluateProfileReportsConsistentScores) {
  EvalOptions options;
  options.kind = ModelKind::kLogisticR;
  options.iot_percent = 100.0;
  const auto result = context_->evaluate_profile(*profile_, options);
  EXPECT_EQ(result.test_samples, context_->test_scenarios().size());
  EXPECT_DOUBLE_EQ(result.hamming, result.hamming_iot_only);  // no sources enabled
  EXPECT_GT(result.hamming, 0.4);
  EXPECT_GE(result.mean_infer_seconds, 0.0);
}

TEST_F(PipelineTest, FusionSourcesDoNotHurtOnAverage) {
  EvalOptions options;
  options.kind = ModelKind::kLogisticR;
  options.iot_percent = 100.0;
  options.use_weather = true;
  options.use_human = true;
  const auto fused = context_->evaluate_profile(*profile_, options);
  // Increment can be small at full IoT but should not collapse the score.
  EXPECT_GT(fused.hamming, fused.hamming_iot_only - 0.1);
}

}  // namespace
}  // namespace aqua::core
