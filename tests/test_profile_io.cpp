#include "core/profile.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "io/artifact.hpp"
#include "io/binary.hpp"
#include "io/mapped_artifact.hpp"
#include "networks/builtin.hpp"
#include "sensing/placement.hpp"

namespace aqua::core {
namespace {

// A small but non-degenerate training setup: enough scenarios that the
// per-node classifiers see both classes at some nodes, small enough that
// training all six kinds on two networks stays fast.
struct Setup {
  hydraulics::Network net;
  std::vector<LeakScenario> scenarios;
  sensing::SensorSet sensors;
  std::unique_ptr<SnapshotBatch> batch;  // references `net`
  ml::MultiLabelDataset eval;
};

std::unique_ptr<Setup> make_setup(bool wssc) {
  auto s = std::make_unique<Setup>();
  s->net = wssc ? networks::make_wssc_subnet() : networks::make_epa_net();
  ScenarioConfig config;
  config.min_events = 1;
  config.max_events = 2;
  config.min_leak_slot = 2;
  config.max_leak_slot = 6;
  config.seed = wssc ? 21 : 11;
  ScenarioGenerator generator(s->net, config);
  s->scenarios = generator.generate(wssc ? 10 : 14);
  s->batch = std::make_unique<SnapshotBatch>(s->net, s->scenarios,
                                             std::vector<std::size_t>{1});
  s->sensors = sensing::full_observation(s->net);
  s->eval = s->batch->build_dataset(s->scenarios, s->sensors, 0, {}, 999);
  return s;
}

ProfileModel train_kind(const Setup& s, ModelKind kind) {
  ProfileTrainingConfig config;
  config.kind = kind;
  config.noise.pressure_sigma_m = 0.05;  // non-default, to catch metadata loss
  return train_profile(*s.batch, s.scenarios, s.sensors, 0, config);
}

std::string save_bytes(const ProfileModel& profile) {
  std::ostringstream out(std::ios::binary);
  profile.save(out);
  return out.str();
}

ProfileModel load_bytes(const std::string& bytes) {
  std::istringstream in(bytes);
  return ProfileModel::load(in);
}

void expect_bit_identical(const ProfileModel& original, const ProfileModel& loaded,
                          const ml::Matrix& x) {
  EXPECT_EQ(loaded.kind, original.kind);
  EXPECT_EQ(loaded.elapsed_index, original.elapsed_index);
  EXPECT_EQ(loaded.include_time_feature, original.include_time_feature);
  EXPECT_EQ(loaded.noise.pressure_sigma_m, original.noise.pressure_sigma_m);
  EXPECT_EQ(loaded.noise.flow_sigma_frac, original.noise.flow_sigma_frac);
  EXPECT_EQ(loaded.noise.flow_sigma_floor_m3s, original.noise.flow_sigma_floor_m3s);
  ASSERT_EQ(loaded.sensors.size(), original.sensors.size());
  for (std::size_t k = 0; k < original.sensors.size(); ++k) {
    EXPECT_EQ(loaded.sensors.sensors[k].kind, original.sensors.sensors[k].kind);
    EXPECT_EQ(loaded.sensors.sensors[k].index, original.sensors.sensors[k].index);
    EXPECT_EQ(loaded.sensors.sensors[k].name, original.sensors.sensors[k].name);
  }
  ASSERT_EQ(loaded.model.num_labels(), original.model.num_labels());

  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto row = x.row(i);
    const auto pa = original.model.predict_proba(row);
    const auto pb = loaded.model.predict_proba(row);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t l = 0; l < pa.size(); ++l) {
      // Bit-exact, not approximately equal: the artifact stores the full
      // classifier state, so the loaded model must be the same function.
      EXPECT_EQ(std::bit_cast<std::uint64_t>(pa[l]), std::bit_cast<std::uint64_t>(pb[l]))
          << "row " << i << " label " << l;
    }
    EXPECT_EQ(original.model.predict(row), loaded.model.predict(row)) << "row " << i;
  }
}

void round_trip_all_kinds(bool wssc) {
  const auto s = make_setup(wssc);
  for (ModelKind kind : all_model_kinds()) {
    SCOPED_TRACE(model_kind_name(kind));
    const ProfileModel original = train_kind(*s, kind);
    const ProfileModel loaded = load_bytes(save_bytes(original));
    expect_bit_identical(original, loaded, s->eval.features);
  }
}

TEST(ProfileIo, RoundTripAllKindsEpaNet) { round_trip_all_kinds(false); }

TEST(ProfileIo, RoundTripAllKindsWsscSubnet) { round_trip_all_kinds(true); }

TEST(ProfileIo, MappedLoadBitIdenticalToBufferedOnAllKinds) {
  // The zero-copy mmap reader must decode the same function as the
  // buffered ArtifactReader for every classifier kind: same bytes in,
  // bit-identical predictions out, on both paths.
  const auto s = make_setup(false);
  const std::string path = ::testing::TempDir() + "aqua_profile_mapped.aquamodl";
  for (ModelKind kind : all_model_kinds()) {
    SCOPED_TRACE(model_kind_name(kind));
    const ProfileModel original = train_kind(*s, kind);
    original.save_file(path);

    const io::MappedArtifactReader mapped(path);
    const ProfileModel via_mapped = ProfileModel::load(mapped);
    expect_bit_identical(original, via_mapped, s->eval.features);

    // And against the buffered reader over the identical file bytes.
    std::ifstream in(path, std::ios::binary);
    const ProfileModel via_buffered = ProfileModel::load(in);
    expect_bit_identical(via_buffered, via_mapped, s->eval.features);
  }
  std::remove(path.c_str());
}

TEST(ProfileIo, LoadFileFallsBackWhenMmapIsImpossible) {
  // open_artifact on a path that exists but cannot be mapped (here:
  // /proc-style zero-length files are hard to fabricate portably, so we
  // exercise the documented fallback trigger — an empty file — which the
  // mapped reader refuses and the buffered reader then rejects as a typed
  // error rather than a crash).
  const std::string path = ::testing::TempDir() + "aqua_profile_empty.aquamodl";
  { std::ofstream out(path, std::ios::binary | std::ios::trunc); }
  bool used_mmap = true;
  EXPECT_THROW(
      {
        const auto source = io::open_artifact(path, &used_mmap);
        (void)source;
      },
      io::SerializationError);
  std::remove(path.c_str());
}

TEST(ProfileIo, StoreTrainedNonDefaultBinsRoundTrip) {
  // A shared-store-trained ensemble with a non-default bin budget must
  // survive the artifact round trip (max_bins is fitted state now) and
  // stay refittable through the store path.
  const auto s = make_setup(false);
  ProfileTrainingConfig config;
  config.kind = ModelKind::kGradientBoosting;
  config.max_bins = 128;
  const ProfileModel original = train_profile(*s->batch, s->scenarios, s->sensors, 0, config);
  ProfileModel loaded = load_bytes(save_bytes(original));
  expect_bit_identical(original, loaded, s->eval.features);
  loaded.model.fit(s->eval);  // refit through the rebuilt factory
  EXPECT_EQ(loaded.model.num_labels(), original.model.num_labels());
}

TEST(ProfileIo, SaveLoadSaveIsStable) {
  // Serialization is a pure function of model state: saving the loaded
  // model reproduces the original byte stream exactly.
  const auto s = make_setup(false);
  const ProfileModel original = train_kind(*s, ModelKind::kLogisticR);
  const std::string first = save_bytes(original);
  const std::string second = save_bytes(load_bytes(first));
  EXPECT_EQ(first, second);
}

TEST(ProfileIo, LoadedModelCanRefit) {
  const auto s = make_setup(false);
  ProfileModel loaded = load_bytes(save_bytes(train_kind(*s, ModelKind::kLinearR)));
  // The factory is reconstructed on load, so Phase I can retrain in place.
  loaded.model.fit(s->eval);
  EXPECT_EQ(loaded.model.num_labels(), s->eval.num_labels());
  const auto proba = loaded.model.predict_proba(s->eval.features.row(0));
  EXPECT_EQ(proba.size(), s->eval.num_labels());
}

TEST(ProfileIo, TruncatedArtifactThrows) {
  const auto s = make_setup(false);
  const std::string bytes = save_bytes(train_kind(*s, ModelKind::kLinearR));
  for (const double fraction : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    const auto cut = static_cast<std::size_t>(fraction * static_cast<double>(bytes.size()));
    std::istringstream in(bytes.substr(0, cut));
    EXPECT_THROW(ProfileModel::load(in), io::SerializationError) << "cut at " << cut;
  }
}

TEST(ProfileIo, CorruptedArtifactThrows) {
  const auto s = make_setup(false);
  const std::string clean = save_bytes(train_kind(*s, ModelKind::kLinearR));
  // Flip one bit in a handful of payload bytes (payloads sit at the tail).
  for (const std::size_t back : {1u, 17u, 256u, 4096u}) {
    ASSERT_LT(back, clean.size());
    std::string bytes = clean;
    const std::size_t pos = bytes.size() - back;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x01);
    std::istringstream in(bytes);
    EXPECT_THROW(ProfileModel::load(in), io::SerializationError) << "byte from end " << back;
  }
}

TEST(ProfileIo, WrongVersionThrows) {
  const auto s = make_setup(false);
  std::string bytes = save_bytes(train_kind(*s, ModelKind::kLinearR));
  // The format version is the little-endian u32 right after the 8-byte magic.
  ASSERT_GE(bytes.size(), 12u);
  bytes[8] = static_cast<char>(io::kFormatVersion + 1);
  bytes[9] = 0;
  bytes[10] = 0;
  bytes[11] = 0;
  std::istringstream in(bytes);
  EXPECT_THROW(ProfileModel::load(in), io::SerializationError);
}

TEST(ProfileIo, GarbageStreamThrows) {
  std::istringstream in("this is not an aqua artifact at all, not even close");
  EXPECT_THROW(ProfileModel::load(in), io::SerializationError);
}

}  // namespace
}  // namespace aqua::core
