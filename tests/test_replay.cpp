// Replay-fidelity contract (DESIGN.md §9): a run resumed from a baseline
// checkpoint must equal the tail of the full run bit for bit — not within
// a tolerance — on every recorded quantity, for every network, leak slot
// and weather regime, serial or on the thread pool. Explicit-Euler tank
// integration plus a warm start that is a pure function of the previous
// step's heads/flows make this assertable.
#include "hydraulics/replay.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "common/error.hpp"
#include "core/snapshots.hpp"
#include "networks/builtin.hpp"

namespace aqua::hydraulics {
namespace {

/// Exact bit equality (== would conflate -0.0 with 0.0 and miss NaN).
::testing::AssertionResult bits_equal(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bit patterns differ by "
         << (std::bit_cast<std::uint64_t>(a) ^ std::bit_cast<std::uint64_t>(b)) << ")";
}

/// Two results covering the same window (same start_step) must agree bit
/// for bit on every recorded quantity.
void expect_results_equal(const SimulationResults& a, const SimulationResults& b) {
  ASSERT_EQ(a.start_step(), b.start_step());
  ASSERT_EQ(a.num_steps(), b.num_steps());
  for (std::size_t s = 0; s < a.num_steps(); ++s) {
    EXPECT_TRUE(bits_equal(a.time(s), b.time(s))) << "time, step " << s;
    for (NodeId v = 0; v < a.num_nodes(); ++v) {
      EXPECT_TRUE(bits_equal(a.head(s, v), b.head(s, v))) << "head " << s << "/" << v;
      EXPECT_TRUE(bits_equal(a.pressure(s, v), b.pressure(s, v))) << "pressure " << s << "/" << v;
      EXPECT_TRUE(bits_equal(a.emitter_outflow(s, v), b.emitter_outflow(s, v)))
          << "emitter " << s << "/" << v;
    }
    for (LinkId l = 0; l < a.num_links(); ++l) {
      EXPECT_TRUE(bits_equal(a.flow(s, l), b.flow(s, l))) << "flow " << s << "/" << l;
    }
  }
}

void expect_tail_equal(const SimulationResults& full, const SimulationResults& tail) {
  ASSERT_GE(full.num_steps(), tail.start_step() + tail.num_steps());
  for (std::size_t s = 0; s < tail.num_steps(); ++s) {
    const std::size_t fs = tail.start_step() + s;
    EXPECT_TRUE(bits_equal(full.time(fs), tail.time(s))) << "time, step " << fs;
    for (NodeId v = 0; v < full.num_nodes(); ++v) {
      EXPECT_TRUE(bits_equal(full.head(fs, v), tail.head(s, v))) << "head " << fs << "/" << v;
      EXPECT_TRUE(bits_equal(full.pressure(fs, v), tail.pressure(s, v)))
          << "pressure " << fs << "/" << v;
      EXPECT_TRUE(bits_equal(full.emitter_outflow(fs, v), tail.emitter_outflow(s, v)))
          << "emitter " << fs << "/" << v;
    }
    for (LinkId l = 0; l < full.num_links(); ++l) {
      EXPECT_TRUE(bits_equal(full.flow(fs, l), tail.flow(s, l))) << "flow " << fs << "/" << l;
    }
  }
}

TEST(Replay, RunFromMatchesFullRunOnEpaNet) {
  // EPA-NET exercises everything the checkpoint must capture: tanks
  // (levels), pumps, a valve, diurnal patterns — across several leak
  // depths including a slot deep enough for tank drift to accumulate.
  const Network net = networks::make_epa_net();
  const NodeId leak = net.junction_ids()[7];
  for (const std::size_t slot : {std::size_t{1}, std::size_t{5}, std::size_t{12}}) {
    SimulationOptions options;
    options.duration_s = static_cast<double>(slot + 4) * options.hydraulic_step_s;
    Simulation sim(net, options);
    sim.schedule_leak({leak, 0.004, 0.5, static_cast<double>(slot) * options.hydraulic_step_s});
    const auto full = sim.run();

    const BaselineTrajectory baseline(net, options, slot - 1);
    const auto tail = sim.run_from(baseline, slot);
    EXPECT_EQ(tail.start_step(), slot);
    EXPECT_EQ(tail.num_steps(), full.num_steps() - slot);
    expect_tail_equal(full, tail);
  }
}

TEST(Replay, RunFromMatchesFullRunOnWsscSubnet) {
  const Network net = networks::make_wssc_subnet();
  const std::size_t slot = 6;
  SimulationOptions options;
  options.duration_s = static_cast<double>(slot + 3) * options.hydraulic_step_s;
  Simulation sim(net, options);
  sim.schedule_leak({net.junction_ids()[42], 0.006, 0.5,
                     static_cast<double>(slot) * options.hydraulic_step_s});
  const auto full = sim.run();
  const BaselineTrajectory baseline(net, options, slot - 1);
  expect_tail_equal(full, sim.run_from(baseline, slot));
}

TEST(Replay, BaselineMatchesHealthyRunPrefix) {
  const Network net = networks::make_epa_net();
  SimulationOptions options;
  options.duration_s = 10 * options.hydraulic_step_s;
  Simulation healthy(net, options);
  const auto full = healthy.run();
  const BaselineTrajectory baseline(net, options, 9);
  ASSERT_EQ(baseline.results().num_steps(), 10u);
  expect_tail_equal(full, baseline.results());
}

TEST(Replay, EngineIsCleanAcrossScenarios) {
  // One engine serving many scenarios must not leak emitter state from one
  // replay into the next.
  const Network net = networks::make_epa_net();
  SimulationOptions options;
  const BaselineTrajectory baseline(net, options, 8);
  ReplayEngine engine(baseline);

  const double t0 = 4 * options.hydraulic_step_s;
  const std::vector<LeakEvent> a{{net.junction_ids()[3], 0.005, 0.5, t0}};
  const std::vector<LeakEvent> b{{net.junction_ids()[50], 0.002, 0.5, t0}};
  const auto first = engine.replay(a, 4, 3);
  (void)engine.replay(b, 4, 3);
  const auto again = engine.replay(a, 4, 3);
  expect_results_equal(first, again);

  ReplayEngine fresh(baseline);
  expect_results_equal(first, fresh.replay(a, 4, 3));
}

TEST(Replay, SolverCloneSolvesIdentically) {
  const Network net = networks::make_wssc_subnet();
  const GgaSolver prototype(net);
  Network copy = net;
  copy.set_emitter(copy.junction_ids()[10], 0.004);
  const GgaSolver cloned(copy, prototype);
  const GgaSolver fresh(copy);
  const auto a = cloned.solve_snapshot();
  const auto b = fresh.solve_snapshot();
  ASSERT_EQ(a.iterations, b.iterations);
  for (NodeId v = 0; v < net.num_nodes(); ++v) EXPECT_TRUE(bits_equal(a.head[v], b.head[v]));
  for (LinkId l = 0; l < net.num_links(); ++l) EXPECT_TRUE(bits_equal(a.flow[l], b.flow[l]));
}

TEST(Replay, SolverCloneRejectsDifferentTopology) {
  const Network epa = networks::make_epa_net();
  const GgaSolver prototype(epa);
  const Network wssc = networks::make_wssc_subnet();
  EXPECT_THROW(GgaSolver(wssc, prototype), InvalidArgument);
}

TEST(Replay, Validation) {
  const Network net = networks::make_epa_net();
  SimulationOptions options;
  options.duration_s = 8 * options.hydraulic_step_s;
  const BaselineTrajectory baseline(net, options, 7);

  Simulation sim(net, options);
  const double t3 = 3 * options.hydraulic_step_s;
  sim.schedule_leak({net.junction_ids()[0], 0.003, 0.5, t3});
  EXPECT_THROW(sim.run_from(baseline, 0), InvalidArgument);   // no predecessor
  EXPECT_THROW(sim.run_from(baseline, 99), InvalidArgument);  // beyond horizon
  EXPECT_THROW(sim.run_from(baseline, 5), InvalidArgument);   // leak already active at resume
  EXPECT_NO_THROW(sim.run_from(baseline, 3));

  SimulationOptions coarse = options;
  coarse.hydraulic_step_s = 1800.0;
  Simulation mismatched(net, coarse);
  EXPECT_THROW(mismatched.run_from(baseline, 2), InvalidArgument);

  ReplayEngine engine(baseline);
  const std::span<const LeakEvent> no_events;
  EXPECT_THROW(engine.replay(no_events, 0, 2), InvalidArgument);
  EXPECT_THROW(engine.replay(no_events, 10, 2), InvalidArgument);  // covers only <= 8
  EXPECT_THROW(engine.replay(no_events, 2, 0), InvalidArgument);
}

}  // namespace
}  // namespace aqua::hydraulics

namespace aqua::core {
namespace {

using hydraulics::Network;

std::vector<LeakScenario> make_scenarios(const Network& net, bool cold, std::size_t count,
                                         std::uint64_t seed) {
  ScenarioConfig config;
  config.max_events = 3;
  config.cold_weather = cold;
  config.seed = seed;
  ScenarioGenerator generator(net, config);
  return generator.generate(count);
}

void expect_batches_equal(const SnapshotBatch& a, const SnapshotBatch& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& sa = a.snapshots(i);
    const auto& sb = b.snapshots(i);
    EXPECT_EQ(sa.before_pressure, sb.before_pressure) << "scenario " << i;
    EXPECT_EQ(sa.before_flow, sb.before_flow) << "scenario " << i;
    EXPECT_EQ(sa.after_pressure, sb.after_pressure) << "scenario " << i;
    EXPECT_EQ(sa.after_flow, sb.after_flow) << "scenario " << i;
    EXPECT_EQ(sa.day_fraction, sb.day_fraction) << "scenario " << i;
  }
}

TEST(ReplayBatch, ReplayEqualsFullSimulationPathWarm) {
  const Network net = networks::make_epa_net();
  const auto scenarios = make_scenarios(net, false, 10, 21);
  const SnapshotBatch full(net, scenarios, {1, 4}, {}, true, false);
  const SnapshotBatch replay(net, scenarios, {1, 4}, {}, true, true);
  expect_batches_equal(full, replay);

  // Datasets assembled from identical snapshots with identical seeds must
  // be byte-identical too.
  const auto sensors = sensing::full_observation(net);
  const auto da = full.build_dataset(scenarios, sensors, 1, {}, 77);
  const auto db = replay.build_dataset(scenarios, sensors, 1, {}, 77);
  EXPECT_EQ(da.features.data(), db.features.data());
  EXPECT_EQ(da.labels, db.labels);
}

TEST(ReplayBatch, ReplayEqualsFullSimulationPathCold) {
  // Cold-weather scenarios draw freeze-driven multi-leak events; the
  // replay contract must hold there too.
  const Network net = networks::make_epa_net();
  const auto scenarios = make_scenarios(net, true, 8, 5);
  const SnapshotBatch full(net, scenarios, {1}, {}, true, false);
  const SnapshotBatch replay(net, scenarios, {1}, {}, true, true);
  expect_batches_equal(full, replay);
}

TEST(ReplayBatch, ReplayEqualsFullSimulationPathWssc) {
  const Network net = networks::make_wssc_subnet();
  const auto scenarios = make_scenarios(net, false, 6, 11);
  const SnapshotBatch full(net, scenarios, {2}, {}, true, false);
  const SnapshotBatch replay(net, scenarios, {2}, {}, true, true);
  expect_batches_equal(full, replay);
}

TEST(ReplayBatch, ParallelReplayIsDeterministic) {
  const Network net = networks::make_epa_net();
  const auto scenarios = make_scenarios(net, false, 12, 33);
  const SnapshotBatch serial(net, scenarios, {1, 3}, {}, false, true);
  const SnapshotBatch parallel(net, scenarios, {1, 3}, {}, true, true);
  expect_batches_equal(serial, parallel);
}

TEST(ReplayBatch, StatsAccountForSharedBaseline) {
  const Network net = networks::make_epa_net();
  const auto scenarios = make_scenarios(net, false, 10, 21);
  const SnapshotBatch replay(net, scenarios, {1, 4}, {}, true, true);
  std::size_t max_slot = 0;
  for (const auto& s : scenarios) max_slot = std::max(max_slot, s.leak_slot);

  const auto& stats = replay.stats();
  EXPECT_EQ(stats.scenarios, scenarios.size());
  EXPECT_EQ(stats.baseline_steps, max_slot);  // steps 0 .. max_slot-1, once
  EXPECT_EQ(stats.scenario_steps, scenarios.size() * 5);  // max elapsed 4 -> 5 steps each
  EXPECT_GE(stats.engines_built, 1u);
  EXPECT_GT(stats.baseline_linear_solves, 0u);
  EXPECT_GT(stats.scenario_linear_solves, 0u);

  const SnapshotBatch full(net, scenarios, {1, 4}, {}, true, false);
  EXPECT_EQ(full.stats().baseline_steps, 0u);
  EXPECT_EQ(full.stats().engines_built, 0u);
  // The headline inequality: replay solves a small fraction of the full
  // path's hydraulic steps.
  EXPECT_LT(replay.stats().total_steps() * 2, full.stats().total_steps());
}

TEST(ReplayBatch, FeaturesIntoMatchesAllocatingFeatures) {
  const Network net = networks::make_epa_net();
  const auto scenarios = make_scenarios(net, false, 4, 9);
  const SnapshotBatch batch(net, scenarios, {1});
  const auto sensors = sensing::full_observation(net);
  const sensing::NoiseModel noise;

  Rng rng_a(123), rng_b(123);
  const auto allocated = batch.features(2, sensors, 0, noise, rng_a, true);
  std::vector<double> into(sensors.size() + 1);
  batch.features_into(2, sensors, 0, noise, rng_b, true, into);
  EXPECT_EQ(allocated, into);

  std::vector<double> wrong(sensors.size() + 2);
  EXPECT_THROW(batch.features_into(2, sensors, 0, noise, rng_b, true, wrong), InvalidArgument);
}

}  // namespace
}  // namespace aqua::core
