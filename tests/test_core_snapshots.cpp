#include "core/snapshots.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "networks/builtin.hpp"
#include "sensing/placement.hpp"

namespace aqua::core {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() : net_(networks::make_epa_net()) {
    ScenarioConfig config;
    config.min_events = 1;
    config.max_events = 2;
    config.seed = 5;
    ScenarioGenerator generator(net_, config);
    scenarios_ = generator.generate(8);
  }

  hydraulics::Network net_;
  std::vector<LeakScenario> scenarios_;
};

TEST_F(SnapshotTest, BatchCoversAllScenarios) {
  const SnapshotBatch batch(net_, scenarios_, {1, 4});
  EXPECT_EQ(batch.size(), scenarios_.size());
  EXPECT_EQ(batch.elapsed_slots(), (std::vector<std::size_t>{1, 4}));
}

TEST_F(SnapshotTest, SnapshotDimensionsMatchNetwork) {
  const SnapshotBatch batch(net_, scenarios_, {1});
  const auto& snap = batch.snapshots(0);
  EXPECT_EQ(snap.before_pressure.size(), net_.num_nodes());
  EXPECT_EQ(snap.before_flow.size(), net_.num_links());
  ASSERT_EQ(snap.after_pressure.size(), 1u);
  EXPECT_EQ(snap.after_pressure[0].size(), net_.num_nodes());
}

TEST_F(SnapshotTest, LeakNodePressureDropsAfterEvent) {
  const SnapshotBatch batch(net_, scenarios_, {1});
  const LabelSpace labels(net_);
  for (std::size_t i = 0; i < scenarios_.size(); ++i) {
    const auto& snap = batch.snapshots(i);
    for (const auto& event : scenarios_[i].events) {
      EXPECT_LT(snap.after_pressure[0][event.node], snap.before_pressure[event.node])
          << "scenario " << i;
    }
  }
}

TEST_F(SnapshotTest, DayFractionReflectsLeakSlot) {
  const SnapshotBatch batch(net_, scenarios_, {1});
  for (std::size_t i = 0; i < scenarios_.size(); ++i) {
    const double expected =
        std::fmod(static_cast<double>(scenarios_[i].leak_slot) * 900.0, 86400.0) / 86400.0;
    EXPECT_NEAR(batch.snapshots(i).day_fraction, expected, 1e-12);
  }
}

TEST_F(SnapshotTest, FeatureVectorLayout) {
  const SnapshotBatch batch(net_, scenarios_, {1});
  const auto sensors = sensing::full_observation(net_);
  sensing::NoiseModel noise;
  Rng rng(9);
  const auto with_time = batch.features(0, sensors, 0, noise, rng, true);
  EXPECT_EQ(with_time.size(), sensors.size() + 1);
  const auto without_time = batch.features(0, sensors, 0, noise, rng, false);
  EXPECT_EQ(without_time.size(), sensors.size());
}

TEST_F(SnapshotTest, CleanFeaturesMatchSnapshots) {
  const SnapshotBatch batch(net_, scenarios_, {1});
  sensing::SensorSet one;
  const auto leak_node = scenarios_[0].events[0].node;
  one.sensors.push_back({sensing::SensorKind::kPressure, leak_node, "p"});
  sensing::NoiseModel no_noise;
  no_noise.pressure_sigma_m = 0.0;
  no_noise.flow_sigma_frac = 0.0;
  no_noise.flow_sigma_floor_m3s = 0.0;
  Rng rng(10);
  const auto features = batch.features(0, one, 0, no_noise, rng, false);
  const auto& snap = batch.snapshots(0);
  EXPECT_NEAR(features[0], snap.after_pressure[0][leak_node] - snap.before_pressure[leak_node],
              1e-12);
  EXPECT_LT(features[0], 0.0);
}

TEST_F(SnapshotTest, DatasetShapeAndLabels) {
  const SnapshotBatch batch(net_, scenarios_, {1});
  const auto sensors = sensing::full_observation(net_);
  const auto data = batch.build_dataset(scenarios_, sensors, 0, {}, 42);
  EXPECT_EQ(data.num_samples(), scenarios_.size());
  EXPECT_EQ(data.num_features(), sensors.size() + 1);
  EXPECT_EQ(data.num_labels(), LabelSpace(net_).num_labels());
  for (std::size_t i = 0; i < scenarios_.size(); ++i) {
    EXPECT_EQ(data.labels[i], scenarios_[i].truth);
  }
  EXPECT_EQ(data.feature_names.size(), data.num_features());
}

TEST_F(SnapshotTest, DatasetDeterministicGivenSeed) {
  const SnapshotBatch batch(net_, scenarios_, {1});
  const auto sensors = sensing::full_observation(net_);
  const auto a = batch.build_dataset(scenarios_, sensors, 0, {}, 42);
  const auto b = batch.build_dataset(scenarios_, sensors, 0, {}, 42);
  EXPECT_EQ(a.features.data(), b.features.data());
  const auto c = batch.build_dataset(scenarios_, sensors, 0, {}, 43);
  EXPECT_NE(a.features.data(), c.features.data());  // different noise draw
}

TEST_F(SnapshotTest, LongerElapsedStrongerTankDrawdown) {
  // With more elapsed slots the leak has drained more and diurnal demand
  // has moved further; the after-snapshots at n=1 and n=4 must differ.
  const SnapshotBatch batch(net_, scenarios_, {1, 4});
  const auto& snap = batch.snapshots(0);
  double diff = 0.0;
  for (std::size_t v = 0; v < net_.num_nodes(); ++v) {
    diff += std::abs(snap.after_pressure[0][v] - snap.after_pressure[1][v]);
  }
  EXPECT_GT(diff, 1e-6);
}

TEST_F(SnapshotTest, MatchingNonDefaultSlotLengthWorks) {
  ScenarioConfig config;
  config.min_leak_slot = 2;
  config.max_leak_slot = 6;
  config.hydraulic_step_s = 300.0;
  config.seed = 3;
  ScenarioGenerator generator(net_, config);
  const auto scenarios = generator.generate(2);
  hydraulics::SimulationOptions options;
  options.hydraulic_step_s = 300.0;
  const SnapshotBatch batch(net_, scenarios, {1}, options);
  EXPECT_EQ(batch.size(), 2u);
}

TEST_F(SnapshotTest, MismatchedSlotLengthThrows) {
  // Scenarios laid out on a 300 s slot grid must not be simulated with the
  // default 900 s hydraulic step: every snapshot index would be wrong.
  ScenarioConfig config;
  config.min_leak_slot = 2;
  config.max_leak_slot = 6;
  config.hydraulic_step_s = 300.0;
  config.seed = 3;
  ScenarioGenerator generator(net_, config);
  const auto scenarios = generator.generate(2);
  EXPECT_THROW(SnapshotBatch(net_, scenarios, {1}), InvalidArgument);
}

TEST_F(SnapshotTest, LeakSlotWithoutPredecessorThrows) {
  // A slot-0 leak has no "before" snapshot; this must be a clean error,
  // not a size_t wrap-around in the index arithmetic.
  LeakScenario scenario;
  scenario.leak_slot = 0;
  const std::vector<LeakScenario> scenarios{scenario};
  EXPECT_THROW(SnapshotBatch(net_, scenarios, {1}), InvalidArgument);
}

TEST_F(SnapshotTest, Validation) {
  EXPECT_THROW(SnapshotBatch(net_, scenarios_, {}), InvalidArgument);
  EXPECT_THROW(SnapshotBatch(net_, scenarios_, {4, 1}), InvalidArgument);
  const SnapshotBatch batch(net_, scenarios_, {1});
  EXPECT_THROW(batch.snapshots(scenarios_.size()), InvalidArgument);
  const auto sensors = sensing::full_observation(net_);
  Rng rng(1);
  EXPECT_THROW(batch.features(0, sensors, 5, {}, rng), InvalidArgument);
}

}  // namespace
}  // namespace aqua::core
