// Integration tests asserting the qualitative *shapes* the paper reports,
// at reduced scenario counts so the suite stays fast:
//  - more IoT coverage -> higher Hamming score (Figs. 6-8)
//  - fusing weather + human input does not hurt, and helps at low IoT
//    (Figs. 7c, 8c)
//  - profile inference is orders of magnitude faster than the
//    enumeration-search baseline (the headline detection-time claim)
#include <gtest/gtest.h>

#include "core/aquascale.hpp"

namespace aqua::core {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new hydraulics::Network(networks::make_epa_net());
    ExperimentConfig config;
    config.train_samples = 300;
    config.test_samples = 60;
    config.scenarios.min_events = 1;
    config.scenarios.max_events = 3;
    config.scenarios.cold_weather = true;
    config.elapsed_slots = {1};
    config.seed = 2024;
    context_ = new ExperimentContext(*net_, config);
  }
  static void TearDownTestSuite() {
    delete context_;
    delete net_;
    context_ = nullptr;
    net_ = nullptr;
  }

  static hydraulics::Network* net_;
  static ExperimentContext* context_;
};

hydraulics::Network* IntegrationTest::net_ = nullptr;
ExperimentContext* IntegrationTest::context_ = nullptr;

TEST_F(IntegrationTest, MoreIotImprovesScore) {
  EvalOptions low;
  low.kind = ModelKind::kLogisticR;
  low.iot_percent = 10.0;
  EvalOptions high = low;
  high.iot_percent = 100.0;
  const auto r_low = context_->evaluate(low);
  const auto r_high = context_->evaluate(high);
  EXPECT_GT(r_high.hamming, r_low.hamming + 0.1);
}

TEST_F(IntegrationTest, FusionHelpsAtLowIot) {
  EvalOptions options;
  options.kind = ModelKind::kRandomForest;
  options.iot_percent = 15.0;
  const auto profile = context_->train(options);
  const auto base = context_->evaluate_profile(profile, options);
  options.use_weather = true;
  options.use_human = true;
  const auto fused = context_->evaluate_profile(profile, options);
  EXPECT_GT(fused.hamming, base.hamming);
}

TEST_F(IntegrationTest, HumanInputImprovesRecall) {
  EvalOptions options;
  options.kind = ModelKind::kRandomForest;
  options.iot_percent = 15.0;
  const auto profile = context_->train(options);
  const auto base = context_->evaluate_profile(profile, options);
  options.use_human = true;
  const auto fused = context_->evaluate_profile(profile, options);
  EXPECT_GE(fused.prf.recall, base.prf.recall);
}

TEST_F(IntegrationTest, ProfileInferenceIsFasterThanEnumeration) {
  EvalOptions options;
  options.kind = ModelKind::kLogisticR;
  options.iot_percent = 100.0;
  const auto profile = context_->train(options);
  const auto result = context_->evaluate_profile(profile, options);

  // One enumeration run over the same network.
  EnumerationConfig enum_config;
  enum_config.candidate_ecs = {0.004};
  enum_config.max_leaks = 2;
  const EnumerationLocalizer localizer(*net_, profile.sensors, enum_config);
  Rng rng(5);
  const auto features = context_->test_batch().features(0, profile.sensors, 0, profile.noise,
                                                        rng, /*include_time_feature=*/false);
  const auto outcome = localizer.localize(features, 0, 0);
  // Orders of magnitude: enumeration does hundreds of hydraulic solves,
  // profile inference is a pure model evaluation.
  EXPECT_GT(outcome.seconds, 20.0 * result.mean_infer_seconds);
}

TEST_F(IntegrationTest, TrainedProfilesAreDeterministic) {
  EvalOptions options;
  options.kind = ModelKind::kLogisticR;
  options.iot_percent = 40.0;
  const auto a = context_->evaluate(options);
  const auto b = context_->evaluate(options);
  EXPECT_DOUBLE_EQ(a.hamming, b.hamming);
}

TEST_F(IntegrationTest, SensorCacheReturnsSameSet) {
  const auto& a = context_->sensors_at(25.0);
  const auto& b = context_->sensors_at(25.0);
  EXPECT_EQ(&a, &b);  // cached object identity
  EXPECT_EQ(a.size(), sensing::sensors_for_percentage(*net_, 25.0));
}

TEST_F(IntegrationTest, RandomPlacementAblationRuns) {
  EvalOptions options;
  options.kind = ModelKind::kLogisticR;
  options.iot_percent = 20.0;
  options.kmedoids_placement = false;
  const auto result = context_->evaluate(options);
  EXPECT_GT(result.hamming, 0.0);
}

}  // namespace
}  // namespace aqua::core
