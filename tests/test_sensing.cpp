#include "sensing/placement.hpp"
#include "sensing/sensors.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "networks/builtin.hpp"

namespace aqua::sensing {
namespace {

hydraulics::SimulationResults baseline_day(const hydraulics::Network& net) {
  hydraulics::SimulationOptions options;
  options.duration_s = 6 * 3600.0;  // short baseline is enough for signatures
  hydraulics::Simulation sim(net, options);
  return sim.run();
}

TEST(Sensors, FullObservationCoversEverything) {
  const auto net = networks::make_epa_net();
  const auto sensors = full_observation(net);
  EXPECT_EQ(sensors.size(), net.num_nodes() + net.num_links());
  EXPECT_EQ(sensors.count(SensorKind::kPressure), net.num_nodes());
  EXPECT_EQ(sensors.count(SensorKind::kFlow), net.num_links());
}

TEST(Sensors, PercentageMapping) {
  const auto net = networks::make_epa_net();  // 96 nodes + 121 links = 217
  EXPECT_EQ(sensors_for_percentage(net, 100.0), 217u);
  EXPECT_EQ(sensors_for_percentage(net, 10.0), 22u);
  EXPECT_EQ(sensors_for_percentage(net, 0.1), 1u);  // clamped to >= 1
  EXPECT_THROW(sensors_for_percentage(net, 0.0), InvalidArgument);
  EXPECT_THROW(sensors_for_percentage(net, 101.0), InvalidArgument);
}

TEST(Placement, KMedoidsReturnsRequestedCount) {
  const auto net = networks::make_epa_net();
  const auto baseline = baseline_day(net);
  const auto sensors = place_sensors_kmedoids(net, baseline, 20);
  EXPECT_EQ(sensors.size(), 20u);
  // No duplicate (kind, index) pairs.
  std::set<std::pair<int, std::size_t>> unique;
  for (const auto& s : sensors.sensors) {
    unique.insert({static_cast<int>(s.kind), s.index});
  }
  EXPECT_EQ(unique.size(), 20u);
}

TEST(Placement, KMedoidsMixesSensorKinds) {
  const auto net = networks::make_epa_net();
  const auto baseline = baseline_day(net);
  const auto sensors = place_sensors_kmedoids(net, baseline, 40);
  EXPECT_GT(sensors.count(SensorKind::kPressure), 0u);
  EXPECT_GT(sensors.count(SensorKind::kFlow), 0u);
}

TEST(Placement, KMedoidsIsDeterministic) {
  const auto net = networks::make_epa_net();
  const auto baseline = baseline_day(net);
  const auto a = place_sensors_kmedoids(net, baseline, 15, 7);
  const auto b = place_sensors_kmedoids(net, baseline, 15, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.sensors[i].name, b.sensors[i].name);
  }
}

TEST(Placement, RandomPlacementDistinct) {
  const auto net = networks::make_epa_net();
  const auto sensors = place_sensors_random(net, 30, 3);
  EXPECT_EQ(sensors.size(), 30u);
  std::set<std::string> names;
  for (const auto& s : sensors.sensors) names.insert(s.name);
  EXPECT_EQ(names.size(), 30u);
}

TEST(Readings, CleanDeltaMatchesSimulation) {
  const auto net = networks::make_epa_net();
  hydraulics::SimulationOptions options;
  options.duration_s = 3 * 3600.0;
  hydraulics::Simulation sim(net, options);
  const auto junctions = net.junction_ids();
  sim.schedule_leak({junctions[10], 0.004, 0.5, 3600.0});
  const auto results = sim.run();

  SensorSet sensors;
  sensors.sensors.push_back({SensorKind::kPressure, junctions[10], "p"});
  const std::size_t leak_slot = results.step_at(3600.0);
  const auto deltas = delta_features_clean(sensors, results, leak_slot, 1);
  const double expected = results.pressure(leak_slot + 1, junctions[10]) -
                          results.pressure(leak_slot - 1, junctions[10]);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_DOUBLE_EQ(deltas[0], expected);
  EXPECT_LT(deltas[0], 0.0);  // leak lowers pressure
}

TEST(Readings, NoiseHasConfiguredSpread) {
  const auto net = networks::make_epa_net();
  const auto results = baseline_day(net);
  SensorSet sensors;
  sensors.sensors.push_back({SensorKind::kPressure, net.junction_ids()[0], "p"});
  NoiseModel noise;
  noise.pressure_sigma_m = 0.05;
  Rng rng(5);
  double sum = 0.0, ss = 0.0;
  const int n = 20000;
  const double truth = results.pressure(0, net.junction_ids()[0]);
  for (int i = 0; i < n; ++i) {
    const double r = read_sensors(sensors, results, 0, noise, rng)[0];
    sum += r - truth;
    ss += (r - truth) * (r - truth);
  }
  EXPECT_NEAR(sum / n, 0.0, 0.002);
  EXPECT_NEAR(std::sqrt(ss / n), 0.05, 0.003);
}

TEST(Readings, FlowNoiseHasRelativeScale) {
  const auto net = networks::make_epa_net();
  const auto results = baseline_day(net);
  // Find a link with substantial flow.
  std::size_t link = 0;
  double best = 0.0;
  for (std::size_t l = 0; l < net.num_links(); ++l) {
    if (std::abs(results.flow(0, l)) > best) {
      best = std::abs(results.flow(0, l));
      link = l;
    }
  }
  ASSERT_GT(best, 0.001);
  SensorSet sensors;
  sensors.sensors.push_back({SensorKind::kFlow, link, "q"});
  NoiseModel noise;
  noise.flow_sigma_frac = 0.02;
  Rng rng(6);
  double ss = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double r = read_sensors(sensors, results, 0, noise, rng)[0];
    ss += (r - results.flow(0, link)) * (r - results.flow(0, link));
  }
  EXPECT_NEAR(std::sqrt(ss / n), 0.02 * best, 0.002 * best);
}

TEST(Readings, DeltaValidation) {
  const auto net = networks::make_epa_net();
  const auto results = baseline_day(net);
  const auto sensors = full_observation(net);
  NoiseModel noise;
  Rng rng(7);
  EXPECT_THROW(delta_features(sensors, results, 0, 1, noise, rng), InvalidArgument);
  EXPECT_THROW(delta_features(sensors, results, 1, 10000, noise, rng), InvalidArgument);
}

}  // namespace
}  // namespace aqua::sensing
