#include "fusion/weather.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace aqua::fusion {
namespace {

TEST(BayesAggregate, NeutralExpertIsIdentity) {
  EXPECT_NEAR(bayes_aggregate(0.7, 0.5), 0.7, 1e-9);
}

TEST(BayesAggregate, AgreementIncreasesCertainty) {
  // "If the probability of leak is 0.6 predicted by both two sources, then
  // p* will tend to be much higher than 0.6."
  const double fused = bayes_aggregate(0.6, 0.6);
  EXPECT_GT(fused, 0.6);
  EXPECT_NEAR(fused, 0.36 / (0.36 + 0.16), 1e-9);  // odds 1.5*1.5=2.25 -> 0.6923
}

TEST(BayesAggregate, DisagreementCancels) {
  EXPECT_NEAR(bayes_aggregate(0.8, 0.2), 0.5, 1e-9);
}

TEST(BayesAggregate, LowProbabilitiesReinforceDown) {
  EXPECT_LT(bayes_aggregate(0.3, 0.3), 0.3);
}

TEST(BayesAggregate, ManyExpertsCompound) {
  const double two = bayes_aggregate({0.6, 0.6});
  const double three = bayes_aggregate({0.6, 0.6, 0.6});
  EXPECT_GT(three, two);
}

TEST(BayesAggregate, ExtremeInputsStayFinite) {
  const double fused = bayes_aggregate({1.0, 0.9});
  EXPECT_TRUE(std::isfinite(fused));
  EXPECT_GT(fused, 0.9);
  EXPECT_LE(fused, 1.0);
  EXPECT_TRUE(std::isfinite(bayes_aggregate({0.0, 0.0})));
}

TEST(BayesAggregate, Validation) {
  EXPECT_THROW(bayes_aggregate(std::vector<double>{}), InvalidArgument);
  EXPECT_THROW(bayes_aggregate({1.2}), InvalidArgument);
}

TEST(FreezeModel, NothingFreezesAboveThreshold) {
  FreezeModel freeze;
  Rng rng(1);
  const auto frozen = freeze.sample_frozen(25.0, 100, rng);
  for (auto f : frozen) EXPECT_EQ(f, 0);
}

TEST(FreezeModel, FreezeRateMatchesProbability) {
  FreezeModel freeze;
  freeze.p_freeze = 0.8;
  Rng rng(2);
  std::size_t count = 0;
  const std::size_t n = 20000;
  const auto frozen = freeze.sample_frozen(10.0, n, rng);
  for (auto f : frozen) count += f;
  EXPECT_NEAR(static_cast<double>(count) / static_cast<double>(n), 0.8, 0.01);
}

TEST(TemperatureModel, WinterColdSummerWarm) {
  const TemperatureModel model;
  EXPECT_LT(model.seasonal_mean_f(15), model.seasonal_mean_f(196));  // mid-Jan vs mid-Jul
}

TEST(TemperatureModel, SeriesIsDeterministic) {
  const TemperatureModel model;
  EXPECT_EQ(model.sample_series_f(100), model.sample_series_f(100));
}

TEST(TemperatureModel, ColdSnapsBelowThresholdOccur) {
  const TemperatureModel model;
  const auto series = model.sample_series_f(365);
  std::size_t cold_days = 0;
  for (double t : series) cold_days += (t < kFreezeThresholdF);
  EXPECT_GT(cold_days, 0u);
  EXPECT_LT(cold_days, 120u);  // but winter does not last all year
}

TEST(BreakHistory, ColdDaysBreakMore) {
  // The Fig. 3 relationship: average breaks/day falls as temperature
  // rises. Compare cold-day and warm-day means over five simulated years.
  const TemperatureModel temperature;
  const FreezeModel freeze;
  const auto history = simulate_break_history(temperature, freeze, 5000, 5 * 365, 1.0, 33);
  RunningStats cold, warm;
  for (const auto& day : history) {
    if (day.temperature_f < kFreezeThresholdF) {
      cold.add(static_cast<double>(day.breaks));
    } else if (day.temperature_f > 50.0) {
      warm.add(static_cast<double>(day.breaks));
    }
  }
  ASSERT_GT(cold.count(), 10u);
  ASSERT_GT(warm.count(), 100u);
  EXPECT_GT(cold.mean(), 2.0 * warm.mean());
}

TEST(BreakHistory, BackgroundRateWithoutCold) {
  // With a warm climate there should be only background breaks.
  const TemperatureModel tropics(75.0, 10.0, 3.0);
  const FreezeModel freeze;
  const auto history = simulate_break_history(tropics, freeze, 5000, 365, 0.5, 44);
  double total = 0.0;
  for (const auto& day : history) total += static_cast<double>(day.breaks);
  EXPECT_NEAR(total / 365.0, 0.5, 0.15);
}

}  // namespace
}  // namespace aqua::fusion
