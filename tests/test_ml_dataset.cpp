#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"

namespace aqua::ml {
namespace {

MultiLabelDataset make_data(std::size_t n = 20, std::size_t d = 3, std::size_t labels = 2) {
  MultiLabelDataset data;
  data.features = Matrix(n, d);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      data.features(r, c) = static_cast<double>(r * d + c);
    }
  }
  data.labels.assign(n, Labels(labels, 0));
  for (std::size_t r = 0; r < n; ++r) data.labels[r][0] = r % 2;
  return data;
}

TEST(Dataset, ShapeAccessors) {
  const auto data = make_data(10, 4, 3);
  EXPECT_EQ(data.num_samples(), 10u);
  EXPECT_EQ(data.num_features(), 4u);
  EXPECT_EQ(data.num_labels(), 3u);
}

TEST(Dataset, LabelColumnExtraction) {
  const auto data = make_data(6);
  const Labels col = data.label_column(0);
  EXPECT_EQ(col, (Labels{0, 1, 0, 1, 0, 1}));
  EXPECT_THROW(data.label_column(5), InvalidArgument);
}

TEST(Dataset, CheckCatchesRaggedLabels) {
  auto data = make_data(4);
  data.labels[2].push_back(1);
  EXPECT_THROW(data.check(), InvalidArgument);
}

TEST(Dataset, CheckCatchesNonBinaryLabels) {
  auto data = make_data(4);
  data.labels[1][0] = 7;
  EXPECT_THROW(data.check(), InvalidArgument);
}

TEST(Dataset, CheckCatchesNonFiniteFeatures) {
  auto data = make_data(4);
  data.features(1, 1) = std::nan("");
  EXPECT_THROW(data.check(), InvalidArgument);
}

TEST(Dataset, AppendConcatenatesSamples) {
  auto a = make_data(4);
  const auto b = make_data(3);
  a.append(b);
  EXPECT_EQ(a.num_samples(), 7u);
  EXPECT_DOUBLE_EQ(a.features(4, 0), b.features(0, 0));
  EXPECT_EQ(a.labels[4], b.labels[0]);
}

TEST(Dataset, AppendToEmptyCopies) {
  MultiLabelDataset empty;
  empty.append(make_data(5));
  EXPECT_EQ(empty.num_samples(), 5u);
}

TEST(Split, SizesAndDisjointness) {
  const auto data = make_data(100);
  const auto [train, test] = train_test_split(data, 0.2, 3);
  EXPECT_EQ(test.num_samples(), 20u);
  EXPECT_EQ(train.num_samples(), 80u);
  // Feature rows are unique in make_data, so we can check disjointness.
  std::set<double> train_keys, test_keys;
  for (std::size_t r = 0; r < train.num_samples(); ++r) train_keys.insert(train.features(r, 0));
  for (std::size_t r = 0; r < test.num_samples(); ++r) test_keys.insert(test.features(r, 0));
  for (double k : test_keys) EXPECT_EQ(train_keys.count(k), 0u);
  EXPECT_EQ(train_keys.size() + test_keys.size(), 100u);
}

TEST(Split, DeterministicGivenSeed) {
  const auto data = make_data(50);
  const auto [a_train, a_test] = train_test_split(data, 0.3, 9);
  const auto [b_train, b_test] = train_test_split(data, 0.3, 9);
  EXPECT_EQ(a_test.features.data(), b_test.features.data());
}

TEST(Split, Validation) {
  const auto data = make_data(10);
  EXPECT_THROW(train_test_split(data, 0.0), InvalidArgument);
  EXPECT_THROW(train_test_split(data, 1.0), InvalidArgument);
}

TEST(Scaler, StandardizesColumns) {
  Matrix x(4, 2);
  const double col0[] = {1.0, 2.0, 3.0, 4.0};
  for (std::size_t r = 0; r < 4; ++r) {
    x(r, 0) = col0[r];
    x(r, 1) = 5.0;  // constant column
  }
  StandardScaler scaler;
  scaler.fit(x);
  const Matrix z = scaler.transform(x);
  double mean0 = 0.0, var0 = 0.0;
  for (std::size_t r = 0; r < 4; ++r) mean0 += z(r, 0);
  mean0 /= 4.0;
  for (std::size_t r = 0; r < 4; ++r) var0 += (z(r, 0) - mean0) * (z(r, 0) - mean0);
  EXPECT_NEAR(mean0, 0.0, 1e-12);
  EXPECT_NEAR(var0 / 4.0, 1.0, 1e-12);
  // Constant column maps to zero, not NaN.
  for (std::size_t r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(z(r, 1), 0.0);
}

TEST(Scaler, TransformRowMatchesMatrix) {
  Matrix x(3, 2);
  x(0, 0) = 1;
  x(1, 0) = 2;
  x(2, 0) = 3;
  x(0, 1) = -1;
  x(1, 1) = 0;
  x(2, 1) = 1;
  StandardScaler scaler;
  scaler.fit(x);
  const Matrix z = scaler.transform(x);
  const auto row = scaler.transform_row(x.row(1));
  EXPECT_DOUBLE_EQ(row[0], z(1, 0));
  EXPECT_DOUBLE_EQ(row[1], z(1, 1));
}

TEST(Scaler, RequiresFitAndSchema) {
  StandardScaler scaler;
  Matrix x(2, 2, 1.0);
  EXPECT_THROW(scaler.transform(x), InvalidArgument);
  scaler.fit(x);
  Matrix wrong(2, 3, 1.0);
  EXPECT_THROW(scaler.transform(wrong), InvalidArgument);
}

}  // namespace
}  // namespace aqua::ml
