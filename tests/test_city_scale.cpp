// Slow suite: city-scale (~10k node) backend agreement and the kAuto
// crossover behavior on networks big enough for it to trigger. Labelled
// "slow" in CMake; excluded from the quick `ctest -L unit` loop.
#include <gtest/gtest.h>

#include <cmath>

#include "hydraulics/network.hpp"
#include "hydraulics/solver.hpp"
#include "networks/generator.hpp"

namespace aqua::networks {
namespace {

using hydraulics::GgaSolver;
using hydraulics::LinearSolver;
using hydraulics::Network;
using hydraulics::NodeId;
using hydraulics::SolverOptions;

TEST(CityScale, LdltAndIc0CgAgreeOnTenThousandNodeCity) {
  Network net;
  const CitySpec spec = city_spec_for_nodes(10000, 7);
  make_city(net, spec);
  ASSERT_GE(net.num_nodes(), 9000u);

  SolverOptions options;
  options.linear_solver = LinearSolver::kCholesky;
  const GgaSolver direct(net, options);
  const auto direct_state = direct.solve_snapshot();
  ASSERT_TRUE(direct_state.converged);

  options.linear_solver = LinearSolver::kIc0Cg;
  options.cg.tolerance = 1e-12;
  options.cg.max_iterations = 30000;  // ~1e5 conductance contrast at this size
  const GgaSolver iterative(net, options);
  const auto iter_state = iterative.solve_snapshot();
  ASSERT_TRUE(iter_state.converged);

  double max_head_diff = 0.0;
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    max_head_diff = std::max(max_head_diff, std::abs(direct_state.head[v] - iter_state.head[v]));
  }
  EXPECT_LT(max_head_diff, 1e-6);

  double max_flow_diff = 0.0;
  for (std::size_t l = 0; l < net.num_links(); ++l) {
    max_flow_diff = std::max(max_flow_diff, std::abs(direct_state.flow[l] - iter_state.flow[l]));
  }
  EXPECT_LT(max_flow_diff, 1e-6);
}

TEST(CityScale, AutoCrossoverResolvesAndSolvesAtScale) {
  Network net;
  make_city(net, city_spec_for_nodes(10000, 7));

  // The measured default keeps kAuto on the direct backend even at 10k
  // nodes (the sweep found no crossover up to 50k on planar city grids).
  SolverOptions options;  // default linear_solver == kAuto
  ASSERT_LT(net.num_nodes(), options.auto_crossover_nodes);
  const GgaSolver as_direct(net, options);
  EXPECT_EQ(as_direct.linear_backend(), LinearSolver::kCholesky);

  // Lowering the threshold below the network size flips the resolution to
  // the iterative backend, which still solves the same physics.
  options.auto_crossover_nodes = 5000;
  options.cg.max_iterations = 30000;
  const GgaSolver as_iterative(net, options);
  EXPECT_EQ(as_iterative.linear_backend(), LinearSolver::kIc0Cg);
  const auto state = as_iterative.solve_snapshot();
  EXPECT_TRUE(state.converged);
}

TEST(CityScale, PrototypeCloneSharesAnalysisAtScale) {
  Network net;
  make_city(net, city_spec_for_nodes(10000, 7));

  const GgaSolver prototype(net);
  const auto from_prototype = prototype.solve_snapshot();

  Network copy = net;
  const GgaSolver cloned(copy, prototype);
  const auto from_clone = cloned.solve_snapshot();

  ASSERT_TRUE(from_prototype.converged);
  ASSERT_TRUE(from_clone.converged);
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    EXPECT_EQ(from_prototype.head[v], from_clone.head[v]);
  }
}

}  // namespace
}  // namespace aqua::networks
