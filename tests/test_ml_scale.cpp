// Paper-scale training smoke test (labeled `slow`): the shared-store
// multi-label fit must chew through a 20k-row corpus — the paper's full
// Phase I training budget — in one piece, and the parallel fit must stay
// bit-identical to the serial one at that scale.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/multilabel.hpp"
#include "ml/random_forest.hpp"

namespace aqua::ml {
namespace {

/// Synthetic leak-style corpus: sparse positives carved out of a few
/// feature directions, sized like the paper's 20,000-scenario Phase I set.
MultiLabelDataset corpus(std::size_t n, std::size_t features, std::size_t labels,
                         std::uint64_t seed) {
  Rng rng(seed);
  MultiLabelDataset data;
  data.features = Matrix(n, features);
  data.labels.assign(n, Labels(labels, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < features; ++c) data.features(i, c) = rng.normal(0.0, 1.0);
    for (std::size_t v = 0; v < labels; ++v) {
      data.labels[i][v] = data.features(i, v % features) > 1.6 ? 1 : 0;
    }
  }
  return data;
}

TEST(MlScale, TwentyThousandRowSharedStoreFit) {
  const auto data = corpus(20'000, 24, 6, 71);

  MultiLabelModel gb([] { return std::make_unique<GradientBoostingClassifier>(); });
  gb.fit(data);
  ASSERT_EQ(gb.num_labels(), 6u);

  RandomForestConfig rf_config;
  rf_config.num_trees = 10;  // enough trees to exercise the bootstrap path
  MultiLabelModel rf([rf_config] { return std::make_unique<RandomForestClassifier>(rf_config); });
  rf.fit(data);
  ASSERT_EQ(rf.num_labels(), 6u);

  // Fitted models separate the positive direction from the bulk.
  std::vector<double> positive(24, 0.0), bulk(24, 0.0);
  positive[0] = 2.5;
  EXPECT_GT(gb.predict_proba(positive)[0], gb.predict_proba(bulk)[0]);
  EXPECT_GT(rf.predict_proba(positive)[0], rf.predict_proba(bulk)[0]);
}

TEST(MlScale, ParallelFitBitIdenticalToSerialAtScale) {
  const auto data = corpus(8'000, 16, 4, 73);
  MultiLabelModel serial([] { return std::make_unique<GradientBoostingClassifier>(); });
  MultiLabelModel parallel([] { return std::make_unique<GradientBoostingClassifier>(); });
  serial.fit(data, /*parallel=*/false);
  parallel.fit(data, /*parallel=*/true);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(serial.predict_proba(data.features.row(i)),
              parallel.predict_proba(data.features.row(i)));
  }
}

}  // namespace
}  // namespace aqua::ml
