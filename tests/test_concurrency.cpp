// Thread-safety of the const prediction paths (see the contract on
// ml::BinaryClassifier): concurrent predict_proba on one shared fitted
// model of every kind, and concurrent infer/infer_batch on one shared
// InferenceEngine, must produce exactly the serial results with no data
// races. These tests are meaningful under TSan (-DAQUA_TSAN=ON) — they
// spawn raw std::threads on purpose, rather than going through the global
// pool, so the sanitizer sees genuinely concurrent first-touch access to
// the shared fitted state.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/aquascale.hpp"
#include "core/inference_engine.hpp"

namespace aqua::core {
namespace {

ml::MultiLabelDataset synthetic_dataset(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t samples = 80, features = 6, labels = 5;
  ml::MultiLabelDataset data;
  data.features = ml::Matrix(samples, features);
  data.labels.assign(samples, ml::Labels(labels, 0));
  for (std::size_t i = 0; i < samples; ++i) {
    for (std::size_t c = 0; c < features; ++c) data.features(i, c) = rng.normal();
    for (std::size_t v = 0; v < labels; ++v) {
      data.labels[i][v] = data.features(i, v % features) + 0.2 * rng.normal() > 0.0 ? 1 : 0;
    }
  }
  return data;
}

class ConcurrentPredict : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ConcurrentPredict, SharedModelPredictsIdenticallyFromManyThreads) {
  const auto data = synthetic_dataset(0x4242);
  ml::MultiLabelModel model(make_classifier_factory(GetParam()));
  model.fit(data);

  // Serial reference over every training row.
  std::vector<std::vector<double>> expected(data.num_samples());
  for (std::size_t i = 0; i < data.num_samples(); ++i) {
    expected[i] = model.predict_proba(data.features.row(i));
  }

  constexpr std::size_t kThreads = 8;
  std::vector<std::vector<std::vector<double>>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      got[t].resize(data.num_samples());
      for (std::size_t i = 0; i < data.num_samples(); ++i) {
        got[t][i] = model.predict_proba(data.features.row(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(got[t], expected) << model_kind_name(GetParam()) << " thread " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ConcurrentPredict,
                         ::testing::Values(ModelKind::kLinearR, ModelKind::kLogisticR,
                                           ModelKind::kGradientBoosting,
                                           ModelKind::kRandomForest, ModelKind::kSvm,
                                           ModelKind::kHybridRsl));

TEST(ConcurrentEngine, SharedEngineInfersIdenticallyFromManyThreads) {
  const auto data = synthetic_dataset(0x1212);
  ProfileModel profile;
  profile.kind = ModelKind::kHybridRsl;
  profile.model = ml::MultiLabelModel(make_classifier_factory(profile.kind));
  profile.model.fit(data);

  Rng rng(0x9090);
  std::vector<InferenceInputs> batch(16);
  for (auto& inputs : batch) {
    for (std::size_t c = 0; c < data.num_features(); ++c) inputs.features.push_back(rng.normal());
    inputs.frozen.assign(profile.model.num_labels(), 0);
    inputs.frozen[0] = 1;
    fusion::LabelClique clique;
    clique.labels = {1, 2};
    inputs.cliques.push_back(clique);
  }

  const InferenceEngine engine(profile);
  const auto expected = engine.infer_batch(batch);

  constexpr std::size_t kThreads = 6;
  std::vector<std::thread> threads;
  std::vector<int> ok(kThreads, 0);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Mix batched and single-shot calls so the telemetry registry and
      // the fusion hot path both see real contention.
      const auto results = engine.infer_batch(batch);
      bool all_equal = results.size() == expected.size();
      for (std::size_t i = 0; all_equal && i < results.size(); ++i) {
        all_equal = results[i].beliefs.p_leak == expected[i].beliefs.p_leak &&
                    results[i].predicted == expected[i].predicted &&
                    results[i].energy_after == expected[i].energy_after;
      }
      const auto single = engine.infer(batch[t % batch.size()]);
      all_equal = all_equal &&
                  single.beliefs.p_leak == expected[t % batch.size()].beliefs.p_leak;
      ok[t] = all_equal ? 1 : 0;
    });
  }
  for (auto& thread : threads) thread.join();
  for (std::size_t t = 0; t < kThreads; ++t) EXPECT_EQ(ok[t], 1) << "thread " << t;

  // Telemetry survived the concurrent merges with a consistent total.
  const auto times = engine.telemetry_snapshot();
  EXPECT_EQ(times.count(InferenceEngine::kCounterSnapshots),
            batch.size() + kThreads * (batch.size() + 1));
}

}  // namespace
}  // namespace aqua::core
