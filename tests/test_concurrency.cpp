// Thread-safety of the const prediction paths (see the contract on
// ml::BinaryClassifier): concurrent predict_proba on one shared fitted
// model of every kind, and concurrent infer/infer_batch on one shared
// InferenceEngine, must produce exactly the serial results with no data
// races. These tests are meaningful under TSan (-DAQUA_TSAN=ON) — they
// spawn raw std::threads on purpose, rather than going through the global
// pool, so the sanitizer sees genuinely concurrent first-touch access to
// the shared fitted state.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/aquascale.hpp"
#include "core/inference_engine.hpp"
#include "core/scenario.hpp"
#include "core/snapshots.hpp"

namespace aqua::core {
namespace {

ml::MultiLabelDataset synthetic_dataset(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t samples = 80, features = 6, labels = 5;
  ml::MultiLabelDataset data;
  data.features = ml::Matrix(samples, features);
  data.labels.assign(samples, ml::Labels(labels, 0));
  for (std::size_t i = 0; i < samples; ++i) {
    for (std::size_t c = 0; c < features; ++c) data.features(i, c) = rng.normal();
    for (std::size_t v = 0; v < labels; ++v) {
      data.labels[i][v] = data.features(i, v % features) + 0.2 * rng.normal() > 0.0 ? 1 : 0;
    }
  }
  return data;
}

class ConcurrentPredict : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ConcurrentPredict, SharedModelPredictsIdenticallyFromManyThreads) {
  const auto data = synthetic_dataset(0x4242);
  ml::MultiLabelModel model(make_classifier_factory(GetParam()));
  model.fit(data);

  // Serial reference over every training row.
  std::vector<std::vector<double>> expected(data.num_samples());
  for (std::size_t i = 0; i < data.num_samples(); ++i) {
    expected[i] = model.predict_proba(data.features.row(i));
  }

  constexpr std::size_t kThreads = 8;
  std::vector<std::vector<std::vector<double>>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      got[t].resize(data.num_samples());
      for (std::size_t i = 0; i < data.num_samples(); ++i) {
        got[t][i] = model.predict_proba(data.features.row(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(got[t], expected) << model_kind_name(GetParam()) << " thread " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ConcurrentPredict,
                         ::testing::Values(ModelKind::kLinearR, ModelKind::kLogisticR,
                                           ModelKind::kGradientBoosting,
                                           ModelKind::kRandomForest, ModelKind::kSvm,
                                           ModelKind::kHybridRsl));

TEST(ConcurrentEngine, SharedEngineInfersIdenticallyFromManyThreads) {
  const auto data = synthetic_dataset(0x1212);
  ProfileModel profile;
  profile.kind = ModelKind::kHybridRsl;
  profile.model = ml::MultiLabelModel(make_classifier_factory(profile.kind));
  profile.model.fit(data);

  Rng rng(0x9090);
  std::vector<InferenceInputs> batch(16);
  for (auto& inputs : batch) {
    for (std::size_t c = 0; c < data.num_features(); ++c) inputs.features.push_back(rng.normal());
    inputs.frozen.assign(profile.model.num_labels(), 0);
    inputs.frozen[0] = 1;
    fusion::LabelClique clique;
    clique.labels = {1, 2};
    inputs.cliques.push_back(clique);
  }

  const InferenceEngine engine(profile);
  const auto expected = engine.infer_batch(batch);

  constexpr std::size_t kThreads = 6;
  std::vector<std::thread> threads;
  std::vector<int> ok(kThreads, 0);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Mix batched and single-shot calls so the telemetry registry and
      // the fusion hot path both see real contention.
      const auto results = engine.infer_batch(batch);
      bool all_equal = results.size() == expected.size();
      for (std::size_t i = 0; all_equal && i < results.size(); ++i) {
        all_equal = results[i].beliefs.p_leak == expected[i].beliefs.p_leak &&
                    results[i].predicted == expected[i].predicted &&
                    results[i].energy_after == expected[i].energy_after;
      }
      const auto single = engine.infer(batch[t % batch.size()]);
      all_equal = all_equal &&
                  single.beliefs.p_leak == expected[t % batch.size()].beliefs.p_leak;
      ok[t] = all_equal ? 1 : 0;
    });
  }
  for (auto& thread : threads) thread.join();
  for (std::size_t t = 0; t < kThreads; ++t) EXPECT_EQ(ok[t], 1) << "thread " << t;

  // Telemetry survived the concurrent merges with a consistent total.
  const auto times = engine.telemetry_snapshot();
  EXPECT_EQ(times.count(InferenceEngine::kCounterSnapshots),
            batch.size() + kThreads * (batch.size() + 1));
}

// --- Scenario-diversity engine under threads ------------------------------

std::vector<LeakScenario> mixed_variant_corpus(const hydraulics::Network& net,
                                               std::size_t count) {
  ScenarioConfig config;
  config.max_events = 2;
  config.seed = 0xabcd;
  config.faults = {
      make_fault_spec(FaultKind::kPumpOutage, 0.4),
      make_fault_spec(FaultKind::kValveClosure, 0.4),
      make_fault_spec(FaultKind::kLeakRamp, 0.4),
      make_fault_spec(FaultKind::kDemandSurge, 0.4),
      make_fault_spec(FaultKind::kTankDrawdown, 0.25),  // forces full-run fallback
      make_fault_spec(FaultKind::kSensorBias, 0.4),
  };
  ScenarioGenerator generator(net, config);
  return generator.generate(count);
}

bool batches_identical(const SnapshotBatch& a, const SnapshotBatch& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& sa = a.snapshots(i);
    const auto& sb = b.snapshots(i);
    if (sa.before_pressure != sb.before_pressure || sa.before_flow != sb.before_flow ||
        sa.after_pressure != sb.after_pressure || sa.after_flow != sb.after_flow ||
        sa.day_fraction != sb.day_fraction || sa.leak_slot != sb.leak_slot) {
      return false;
    }
  }
  return true;
}

TEST(VariantBatchConcurrency, ParallelMixedBatchMatchesSerialExactly) {
  // A variant-mixed corpus exercises BOTH pool paths at once — replayed
  // scenarios through the shared engine pool and tank-drawdown fallbacks
  // through full runs — and the parallel build must be order-deterministic:
  // bit-identical to the serial build regardless of worker interleaving.
  const auto net = networks::make_epa_net();
  const auto scenarios = mixed_variant_corpus(net, 24);
  std::size_t fallbacks = 0;
  for (const auto& s : scenarios) {
    if (!s.replay_compatible(900.0)) ++fallbacks;
  }
  ASSERT_GT(fallbacks, 0u) << "mix produced no full-run fallback scenarios";
  ASSERT_LT(fallbacks, scenarios.size()) << "mix produced no replayed scenarios";

  const SnapshotBatch parallel(net, scenarios, {1, 2}, {}, true, true);
  const SnapshotBatch serial(net, scenarios, {1, 2}, {}, false, true);
  EXPECT_EQ(parallel.stats().full_run, fallbacks);
  EXPECT_TRUE(batches_identical(parallel, serial));
}

TEST(VariantBatchConcurrency, ConcurrentBatchBuildsAndGeneratorsAreIndependent) {
  // Raw threads each run a private generator and build a private batch
  // over the shared network. Generators are value state (no hidden
  // globals) and batches only read the network, so every thread must
  // reproduce the reference bit for bit — under TSan this doubles as the
  // data-race check for the replay engine pool and the full-run fallback
  // running side by side.
  const auto net = networks::make_epa_net();
  const auto reference_scenarios = mixed_variant_corpus(net, 12);
  const SnapshotBatch reference(net, reference_scenarios, {1}, {}, true, true);

  constexpr std::size_t kThreads = 4;
  std::vector<int> ok(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto scenarios = mixed_variant_corpus(net, 12);
      bool equal = scenarios.size() == reference_scenarios.size();
      for (std::size_t i = 0; equal && i < scenarios.size(); ++i) {
        equal = scenarios[i].leak_slot == reference_scenarios[i].leak_slot &&
                scenarios[i].truth == reference_scenarios[i].truth &&
                scenarios[i].variant_mask == reference_scenarios[i].variant_mask;
      }
      const SnapshotBatch batch(net, scenarios, {1}, {}, true, true);
      ok[t] = equal && batches_identical(batch, reference) ? 1 : 0;
    });
  }
  for (auto& thread : threads) thread.join();
  for (std::size_t t = 0; t < kThreads; ++t) EXPECT_EQ(ok[t], 1) << "thread " << t;
}

}  // namespace
}  // namespace aqua::core
