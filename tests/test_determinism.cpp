// Cross-cutting determinism guarantees: parallel execution paths must
// produce bit-identical results to serial ones (every stochastic component
// draws from explicitly seeded, split RNG streams, never from thread
// timing), and repeated end-to-end runs must agree exactly. These
// invariants are what make the figure benches reproducible.
#include <gtest/gtest.h>

#include "core/aquascale.hpp"
#include "flood/dem.hpp"
#include "flood/flood_sim.hpp"
#include "ml/linear_models.hpp"

namespace aqua {
namespace {

std::vector<core::LeakScenario> small_corpus(const hydraulics::Network& net, std::size_t n) {
  core::ScenarioConfig config;
  config.min_events = 1;
  config.max_events = 2;
  config.seed = 77;
  core::ScenarioGenerator generator(net, config);
  return generator.generate(n);
}

TEST(Determinism, SnapshotBatchParallelEqualsSerial) {
  const auto net = networks::make_epa_net();
  const auto scenarios = small_corpus(net, 10);
  const core::SnapshotBatch parallel(net, scenarios, {1, 4}, {}, /*parallel=*/true);
  const core::SnapshotBatch serial(net, scenarios, {1, 4}, {}, /*parallel=*/false);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto& a = parallel.snapshots(i);
    const auto& b = serial.snapshots(i);
    ASSERT_EQ(a.before_pressure, b.before_pressure) << "scenario " << i;
    ASSERT_EQ(a.before_flow, b.before_flow) << "scenario " << i;
    for (std::size_t e = 0; e < 2; ++e) {
      ASSERT_EQ(a.after_pressure[e], b.after_pressure[e]) << "scenario " << i;
      ASSERT_EQ(a.after_flow[e], b.after_flow[e]) << "scenario " << i;
    }
  }
}

TEST(Determinism, MultiLabelFitParallelEqualsSerial) {
  const auto net = networks::make_epa_net();
  const auto scenarios = small_corpus(net, 60);
  const core::SnapshotBatch batch(net, scenarios, {1});
  const auto sensors = sensing::full_observation(net);
  const auto data = batch.build_dataset(scenarios, sensors, 0, {}, 42);

  ml::MultiLabelModel parallel([] { return std::make_unique<ml::LogisticRegressionClassifier>(); });
  ml::MultiLabelModel serial([] { return std::make_unique<ml::LogisticRegressionClassifier>(); });
  parallel.fit(data, /*parallel=*/true);
  serial.fit(data, /*parallel=*/false);

  for (std::size_t r = 0; r < 10; ++r) {
    const auto pp = parallel.predict_proba(data.features.row(r));
    const auto sp = serial.predict_proba(data.features.row(r));
    ASSERT_EQ(pp.size(), sp.size());
    for (std::size_t v = 0; v < pp.size(); ++v) {
      ASSERT_DOUBLE_EQ(pp[v], sp[v]) << "row " << r << " label " << v;
    }
  }
}

TEST(Determinism, DatasetNoiseIsSeedDriven) {
  const auto net = networks::make_epa_net();
  const auto scenarios = small_corpus(net, 8);
  const core::SnapshotBatch batch(net, scenarios, {1});
  const auto sensors = sensing::full_observation(net);
  const auto a = batch.build_dataset(scenarios, sensors, 0, {}, 7);
  const auto b = batch.build_dataset(scenarios, sensors, 0, {}, 7);
  EXPECT_EQ(a.features.data(), b.features.data());
}

TEST(Determinism, ScenarioStreamsAreSeedIsolated) {
  const auto net = networks::make_epa_net();
  core::ScenarioConfig config;
  config.seed = 1;
  core::ScenarioGenerator g1(net, config);
  config.seed = 2;
  core::ScenarioGenerator g2(net, config);
  bool differ = false;
  for (int i = 0; i < 10; ++i) {
    differ = differ || (g1.next().truth != g2.next().truth);
  }
  EXPECT_TRUE(differ);
}

TEST(Determinism, TweetStreamDeterministicGivenRngState) {
  const auto net = networks::make_epa_net();
  fusion::TweetGenerator generator;
  const std::vector<hydraulics::NodeId> leaks{net.junction_ids()[5]};
  Rng a(9), b(9);
  const auto ta = generator.generate(net, leaks, 4, a);
  const auto tb = generator.generate(net, leaks, 4, b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_DOUBLE_EQ(ta[i].x, tb[i].x);
    EXPECT_DOUBLE_EQ(ta[i].y, tb[i].y);
    EXPECT_EQ(ta[i].slot, tb[i].slot);
  }
}

TEST(Determinism, FloodSimulationIsPure) {
  const auto net = networks::make_epa_net();
  const flood::Dem dem(net, 30, 30);
  const flood::FloodSource source{net.node(net.junction_ids()[10]).x,
                                  net.node(net.junction_ids()[10]).y, 0.02};
  flood::FloodOptions options;
  options.duration_s = 300.0;
  const auto a = flood::simulate_flood(dem, {source}, options);
  const auto b = flood::simulate_flood(dem, {source}, options);
  EXPECT_EQ(a.data(), b.data());
}

}  // namespace
}  // namespace aqua
