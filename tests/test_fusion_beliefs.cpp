#include "fusion/beliefs.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace aqua::fusion {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(BinaryEntropy, ShapeAndExtremes) {
  EXPECT_DOUBLE_EQ(binary_entropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(1.0), 0.0);
  EXPECT_NEAR(binary_entropy(0.5), std::log(2.0), 1e-12);
  EXPECT_GT(binary_entropy(0.5), binary_entropy(0.3));
  EXPECT_NEAR(binary_entropy(0.2), binary_entropy(0.8), 1e-12);  // symmetric
  EXPECT_THROW(binary_entropy(1.5), InvalidArgument);
}

TEST(Beliefs, PredictedSetThresholdsAtHalf) {
  Beliefs beliefs;
  beliefs.p_leak = {0.1, 0.5, 0.51, 0.9};
  EXPECT_EQ(beliefs.predicted_set(), (std::vector<std::uint8_t>{0, 0, 1, 1}));
}

TEST(Beliefs, TotalEntropySums) {
  Beliefs beliefs;
  beliefs.p_leak = {0.5, 0.5, 1.0};
  EXPECT_NEAR(beliefs.total_entropy(), 2.0 * std::log(2.0), 1e-12);
}

TEST(WeatherUpdate, RaisesFrozenNodeBeliefs) {
  Beliefs beliefs;
  beliefs.p_leak = {0.4, 0.4};
  const std::vector<std::uint8_t> frozen{1, 0};
  const std::size_t updated = apply_weather_update(beliefs, frozen, 0.9);
  EXPECT_EQ(updated, 1u);
  EXPECT_GT(beliefs.p_leak[0], 0.4);   // Bayes-boosted
  EXPECT_DOUBLE_EQ(beliefs.p_leak[1], 0.4);  // untouched
  // Odds: 0.4/0.6 * 0.9/0.1 = 6 -> p = 6/7.
  EXPECT_NEAR(beliefs.p_leak[0], 6.0 / 7.0, 1e-9);
}

TEST(WeatherUpdate, LowIotBeliefCanStayBelowHalf) {
  Beliefs beliefs;
  beliefs.p_leak = {0.01};
  apply_weather_update(beliefs, {1}, 0.9);
  // Odds 0.0101 * 9 = 0.0909 -> p ~ 0.083: weather alone cannot force a
  // detection when the IoT evidence is strongly against it.
  EXPECT_LT(beliefs.p_leak[0], 0.5);
}

TEST(WeatherUpdate, Validation) {
  Beliefs beliefs;
  beliefs.p_leak = {0.5};
  EXPECT_THROW(apply_weather_update(beliefs, {1, 0}, 0.9), InvalidArgument);
  EXPECT_THROW(apply_weather_update(beliefs, {1}, 1.0), InvalidArgument);
}

TEST(HigherOrderPotential, ZeroWhenMemberPredicted) {
  Beliefs beliefs;
  beliefs.p_leak = {0.9, 0.1};
  const LabelClique clique{{0, 1}, 1.0};
  EXPECT_DOUBLE_EQ(higher_order_potential(beliefs, clique, 0.0), 0.0);
}

TEST(HigherOrderPotential, InfiniteWhenInconsistent) {
  Beliefs beliefs;
  beliefs.p_leak = {0.2, 0.3};  // nobody predicted, entropies > 0
  const LabelClique clique{{0, 1}, 1.0};
  EXPECT_EQ(higher_order_potential(beliefs, clique, 0.0), kInf);
}

TEST(HigherOrderPotential, ZeroWhenAllDeterminate) {
  Beliefs beliefs;
  beliefs.p_leak = {0.0, 0.0};  // entropy exactly 0
  const LabelClique clique{{0, 1}, 1.0};
  // Fully determinate non-leaks satisfy the Gamma branch of Eq. 10 even at
  // Gamma = 0 (H <= Gamma; see beliefs.cpp for why "<=" replaces the
  // paper's strict "<").
  EXPECT_DOUBLE_EQ(higher_order_potential(beliefs, clique, 0.01), 0.0);
  EXPECT_DOUBLE_EQ(higher_order_potential(beliefs, clique, 0.0), 0.0);
  // A member with nonzero entropy keeps the clique inconsistent.
  beliefs.p_leak = {0.0, 0.3};
  EXPECT_EQ(higher_order_potential(beliefs, clique, 0.0), kInf);
}

TEST(TotalEnergy, InfiniteUntilTuned) {
  Beliefs beliefs;
  beliefs.p_leak = {0.3, 0.4};
  const std::vector<LabelClique> cliques{{{0, 1}, 1.0}};
  EXPECT_EQ(total_energy(beliefs, cliques, 0.0), kInf);
  const auto result = apply_human_tuning(beliefs, cliques, 0.0);
  EXPECT_EQ(result.added_labels.size(), 1u);
  EXPECT_TRUE(std::isfinite(total_energy(beliefs, cliques, 0.0)));
}

TEST(HumanTuning, SelectsHighestEntropyMember) {
  Beliefs beliefs;
  // Entropy maximal at p = 0.5, so label 1 is the most uncertain.
  beliefs.p_leak = {0.1, 0.45, 0.2};
  const std::vector<LabelClique> cliques{{{0, 1, 2}, 1.0}};
  const auto result = apply_human_tuning(beliefs, cliques, 0.0);
  ASSERT_EQ(result.added_labels.size(), 1u);
  EXPECT_EQ(result.added_labels[0], 1u);
  EXPECT_DOUBLE_EQ(beliefs.p_leak[1], 1.0);
  EXPECT_DOUBLE_EQ(beliefs.entropy(1), 0.0);
}

TEST(HumanTuning, ConsistentCliqueUntouched) {
  Beliefs beliefs;
  beliefs.p_leak = {0.9, 0.2};
  const std::vector<LabelClique> cliques{{{0, 1}, 1.0}};
  const auto result = apply_human_tuning(beliefs, cliques, 0.0);
  EXPECT_EQ(result.cliques_consistent, 1u);
  EXPECT_TRUE(result.added_labels.empty());
  EXPECT_DOUBLE_EQ(beliefs.p_leak[1], 0.2);
}

TEST(HumanTuning, GammaThresholdSuppressesDeterminateCliques) {
  Beliefs beliefs;
  beliefs.p_leak = {0.001, 0.002};  // near-certain non-leaks, tiny entropy
  const std::vector<LabelClique> cliques{{{0, 1}, 1.0}};
  // Large Gamma: predictions are determinate enough to ignore the tweet.
  const auto result = apply_human_tuning(beliefs, cliques, 0.5);
  EXPECT_EQ(result.cliques_determinate, 1u);
  EXPECT_TRUE(result.added_labels.empty());
}

TEST(HumanTuning, TuningReducesEnergy) {
  Beliefs beliefs;
  beliefs.p_leak = {0.3, 0.4, 0.2, 0.45};
  const std::vector<LabelClique> cliques{{{0, 1}, 1.0}, {{2, 3}, 1.0}};
  const double before = total_energy(beliefs, cliques, 0.0);
  apply_human_tuning(beliefs, cliques, 0.0);
  const double after = total_energy(beliefs, cliques, 0.0);
  EXPECT_TRUE(before == kInf || after <= before);
  EXPECT_LT(after, kInf);
}

TEST(HumanTuning, MultipleCliquesEachHandled) {
  Beliefs beliefs;
  beliefs.p_leak = {0.3, 0.9, 0.4};
  const std::vector<LabelClique> cliques{{{0}, 1.0}, {{1}, 1.0}, {{2}, 1.0}};
  const auto result = apply_human_tuning(beliefs, cliques, 0.0);
  EXPECT_EQ(result.cliques_consistent, 1u);          // label 1 already predicted
  EXPECT_EQ(result.added_labels.size(), 2u);         // labels 0 and 2 forced
}

TEST(HumanTuning, EmptyCliqueRejected) {
  Beliefs beliefs;
  beliefs.p_leak = {0.5};
  const std::vector<LabelClique> cliques{{{}, 1.0}};
  EXPECT_THROW(apply_human_tuning(beliefs, cliques, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace aqua::fusion
