// Tests for the pluggable LinearSystem backends (linear_system.hpp): the
// backend-agnostic lifecycle, agreement between the direct and iterative
// backends, blocked multi-RHS identity, clone semantics, and the CG
// breakdown discipline fixed alongside them.
#include "linalg/linear_system.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/solvers.hpp"
#include "linalg/sparse.hpp"

namespace aqua::linalg {
namespace {

/// 2-D grid Laplacian + I: SPD, same structural family as the GGA node
/// systems (symmetric M-matrix with a dominant diagonal).
CsrMatrix grid_laplacian(std::size_t side, double diag_boost = 1.0) {
  const std::size_t n = side * side;
  CooBuilder builder(n);
  auto id = [&](std::size_t r, std::size_t c) { return r * side + c; };
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      if (c + 1 < side) {
        builder.add(id(r, c), id(r, c + 1), -1.0);
        builder.add(id(r, c + 1), id(r, c), -1.0);
      }
      if (r + 1 < side) {
        builder.add(id(r, c), id(r + 1, c), -1.0);
        builder.add(id(r + 1, c), id(r, c), -1.0);
      }
    }
  }
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      double degree = 0.0;
      if (c + 1 < side) degree += 1.0;
      if (c > 0) degree += 1.0;
      if (r + 1 < side) degree += 1.0;
      if (r > 0) degree += 1.0;
      builder.add(id(r, c), id(r, c), degree + diag_boost);
    }
  }
  return builder.build();
}

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-2.0, 2.0);
  return v;
}

double residual_norm(const CsrMatrix& a, std::span<const double> x, std::span<const double> b) {
  const auto ax = a.multiply(x);
  double ss = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    const double d = ax[i] - b[i];
    ss += d * d;
  }
  return std::sqrt(ss);
}

TEST(LinearSystem, AllBackendsSolveTheSameSystem) {
  const CsrMatrix a = grid_laplacian(9);
  const auto b = random_vector(a.rows(), 7);

  CgOptions cg;
  cg.tolerance = 1e-13;
  std::vector<double> reference;
  for (const LinearBackend backend :
       {LinearBackend::kLdlt, LinearBackend::kJacobiCg, LinearBackend::kIc0Cg}) {
    auto system = make_linear_system(backend, cg);
    system->factor(a);
    std::vector<double> x(a.rows(), 0.0);
    const auto stats = system->solve(b, x);
    EXPECT_TRUE(stats.converged) << system->name();
    EXPECT_LT(residual_norm(a, x, b), 1e-8) << system->name();
    if (reference.empty()) {
      reference = x;
    } else {
      for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(x[i], reference[i], 1e-8) << system->name() << " entry " << i;
      }
    }
  }
}

TEST(LinearSystem, RefactorValuesTracksChangedValues) {
  // Newton-loop usage: one analyze, many refactors over the same pattern.
  CsrMatrix a = grid_laplacian(6);
  const auto b = random_vector(a.rows(), 11);
  for (const LinearBackend backend : {LinearBackend::kLdlt, LinearBackend::kIc0Cg}) {
    auto system = make_linear_system(backend, CgOptions{.tolerance = 1e-13});
    system->analyze(a);
    for (const double scale : {1.0, 2.5, 0.75}) {
      CsrMatrix scaled = a;
      auto values = scaled.values();
      for (double& v : values) v *= scale;
      system->refactor_values(scaled);
      std::vector<double> x(a.rows(), 0.0);
      const auto stats = system->solve(b, x);
      ASSERT_TRUE(stats.converged) << system->name();
      // A (s x) = s b / s = b  =>  x_scaled == x_1 / scale.
      EXPECT_LT(residual_norm(scaled, x, b), 1e-8) << system->name() << " scale " << scale;
    }
  }
}

TEST(LinearSystem, SolveBlockMatchesRepeatedSolves) {
  const CsrMatrix a = grid_laplacian(8);
  const std::size_t n = a.rows();
  // 11 RHS: crosses the direct backend's 8-wide tile boundary, so both the
  // full-tile and remainder paths run.
  const std::size_t nrhs = 11;
  std::vector<double> b(nrhs * n);
  for (std::size_t k = 0; k < nrhs; ++k) {
    const auto bk = random_vector(n, 100 + k);
    std::copy(bk.begin(), bk.end(), b.begin() + static_cast<std::ptrdiff_t>(k * n));
  }

  for (const LinearBackend backend : {LinearBackend::kLdlt, LinearBackend::kIc0Cg}) {
    auto system = make_linear_system(backend, CgOptions{.tolerance = 1e-13});
    system->factor(a);

    std::vector<double> x_block(nrhs * n, 0.0);
    const auto block_stats = system->solve_block(b, x_block, nrhs);
    EXPECT_TRUE(block_stats.converged) << system->name();

    for (std::size_t k = 0; k < nrhs; ++k) {
      std::vector<double> x(n, 0.0);
      const auto stats = system->solve(
          std::span<const double>(b.data() + k * n, n), x);
      ASSERT_TRUE(stats.converged);
      for (std::size_t i = 0; i < n; ++i) {
        // Bit-identical: solve_block is documented as the identical
        // per-RHS operation sequence.
        EXPECT_EQ(x_block[k * n + i], x[i]) << system->name() << " rhs " << k << " entry " << i;
      }
    }
  }
}

TEST(LinearSystem, CloneCarriesAnalysisAndSolvesIndependently) {
  const CsrMatrix a = grid_laplacian(7);
  const auto b = random_vector(a.rows(), 23);
  for (const LinearBackend backend :
       {LinearBackend::kLdlt, LinearBackend::kJacobiCg, LinearBackend::kIc0Cg}) {
    auto original = make_linear_system(backend, CgOptions{.tolerance = 1e-13});
    original->factor(a);
    std::vector<double> x_orig(a.rows(), 0.0);
    original->solve(b, x_orig);

    auto copy = original->clone();
    EXPECT_EQ(copy->dimension(), original->dimension());
    // The clone drops the matrix reference; refactor then solve.
    copy->refactor_values(a);
    std::vector<double> x_copy(a.rows(), 0.0);
    const auto stats = copy->solve(b, x_copy);
    EXPECT_TRUE(stats.converged) << copy->name();
    for (std::size_t i = 0; i < a.rows(); ++i) {
      EXPECT_EQ(x_copy[i], x_orig[i]) << copy->name() << " entry " << i;
    }
  }
}

TEST(ConjugateGradient, BreakdownReportedHonestly) {
  // Singular PSD matrix [[1,1],[1,1]] with b orthogonal to its range: the
  // first search direction has zero curvature (p'Ap == 0). The old loop
  // divided by it and silently produced NaN; the fixed loop reports
  // breakdown and leaves the iterate finite.
  CooBuilder builder(2);
  builder.add(0, 0, 1.0);
  builder.add(0, 1, 1.0);
  builder.add(1, 0, 1.0);
  builder.add(1, 1, 1.0);
  const CsrMatrix a = builder.build();
  const std::vector<double> b = {1.0, -1.0};

  std::vector<double> x = {0.0, 0.0};
  CgWorkspace workspace;
  const auto stats = conjugate_gradient_into(a, b, x, workspace);
  EXPECT_TRUE(stats.breakdown);
  EXPECT_FALSE(stats.converged);
  EXPECT_TRUE(std::isfinite(x[0]) && std::isfinite(x[1]));
  EXPECT_TRUE(std::isfinite(stats.relative_residual));
}

TEST(ConjugateGradient, ConvergenceAtExactIterationBudgetIsConsistent) {
  // Re-running with max_iterations set to the exact count of a converged
  // solve must still report converged (the old loop could report
  // iterations == max_iterations with converged flipping on a final
  // residual check, leaving the two fields contradictory).
  const CsrMatrix a = grid_laplacian(5);
  const auto b = random_vector(a.rows(), 3);

  std::vector<double> x(a.rows(), 0.0);
  CgWorkspace workspace;
  const auto first = conjugate_gradient_into(a, b, x, workspace);
  ASSERT_TRUE(first.converged);
  ASSERT_GT(first.iterations, 0u);

  std::vector<double> x2(a.rows(), 0.0);
  CgOptions exact;
  exact.max_iterations = first.iterations;
  const auto second = conjugate_gradient_into(a, b, x2, workspace, exact);
  EXPECT_TRUE(second.converged);
  EXPECT_EQ(second.iterations, first.iterations);
  EXPECT_FALSE(second.breakdown);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], x2[i]);
}

TEST(ConjugateGradient, DiagSlotCacheSurvivesValueChangesAndRekeysOnNewPattern) {
  CsrMatrix a = grid_laplacian(6);
  const auto b = random_vector(a.rows(), 5);
  CgWorkspace workspace;
  std::vector<double> x(a.rows(), 0.0);
  ASSERT_TRUE(conjugate_gradient_into(a, b, x, workspace).converged);
  ASSERT_TRUE(workspace.bound_to(a));

  // Same pattern, new values: the cache must stay bound and the solve must
  // see the NEW diagonal (a stale preconditioner would still converge, so
  // check the binding and the solution quality).
  auto values = a.values();
  for (double& v : values) v *= 3.0;
  std::fill(x.begin(), x.end(), 0.0);
  ASSERT_TRUE(conjugate_gradient_into(a, b, x, workspace).converged);
  EXPECT_TRUE(workspace.bound_to(a));
  EXPECT_LT(residual_norm(a, x, b), 1e-8);

  // Different pattern: cache re-keys, solve still correct.
  const CsrMatrix other = grid_laplacian(9);
  const auto b2 = random_vector(other.rows(), 6);
  std::vector<double> x2(other.rows(), 0.0);
  ASSERT_TRUE(conjugate_gradient_into(other, b2, x2, workspace).converged);
  EXPECT_TRUE(workspace.bound_to(other));
  EXPECT_FALSE(workspace.bound_to(a));
  EXPECT_LT(residual_norm(other, x2, b2), 1e-8);
}

TEST(LinearSystem, Ic0RequiresAnalyzeBeforeRefactor) {
  const CsrMatrix a = grid_laplacian(4);
  auto system = make_linear_system(LinearBackend::kIc0Cg);
  EXPECT_THROW(system->refactor_values(a), InvalidArgument);
}

}  // namespace
}  // namespace aqua::linalg
