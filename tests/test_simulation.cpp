#include "hydraulics/simulation.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "networks/builtin.hpp"

namespace aqua::hydraulics {
namespace {

Network small() {
  Network net("small");
  const int p = net.add_pattern({"d", {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 1.0, 1.0,
                                       1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 1.0, 1.0,
                                       1.0, 1.0}});
  const NodeId r = net.add_reservoir("R", 55.0);
  const NodeId a = net.add_junction("A", 10.0, 5.0, p);
  const NodeId b = net.add_junction("B", 12.0, 3.0, p);
  net.add_pipe("P1", r, a, 300.0, 0.3, 120.0);
  net.add_pipe("P2", a, b, 200.0, 0.25, 115.0);
  return net;
}

TEST(Simulation, StepCountMatchesDuration) {
  SimulationOptions options;
  options.duration_s = 4 * 3600.0;
  options.hydraulic_step_s = 900.0;
  Simulation sim(small(), options);
  EXPECT_EQ(sim.num_steps(), 17u);  // 16 intervals + initial state
  const auto results = sim.run();
  EXPECT_EQ(results.num_steps(), 17u);
  EXPECT_DOUBLE_EQ(results.time(0), 0.0);
  EXPECT_DOUBLE_EQ(results.time(16), 4 * 3600.0);
}

TEST(Simulation, NumStepsSurvivesInexactDivision) {
  // 0.3 / 0.1 == 2.999...96 in binary: the old truncating cast dropped the
  // final step of any horizon whose duration/step quotient lands at k - ulp.
  SimulationOptions options;
  options.duration_s = 0.3;
  options.hydraulic_step_s = 0.1;
  Simulation sim(small(), options);
  EXPECT_EQ(sim.num_steps(), 4u);  // steps at t = 0, 0.1, 0.2, 0.3

  options.duration_s = 3 * 0.7;    // 2.0999999999999996
  options.hydraulic_step_s = 0.7;
  Simulation sim2(small(), options);
  EXPECT_EQ(sim2.num_steps(), 4u);

  // Non-multiples still floor.
  options.duration_s = 1000.0;
  options.hydraulic_step_s = 900.0;
  Simulation sim3(small(), options);
  EXPECT_EQ(sim3.num_steps(), 2u);
}

TEST(Simulation, LeakedVolumeMatchesManualTrapezoid) {
  // leaked_volume() integrates the cached per-step emitter totals; it must
  // agree exactly with the trapezoid computed from the per-node series.
  SimulationOptions options;
  options.duration_s = 4 * 3600.0;
  Simulation sim(small(), options);
  sim.schedule_leaks({{small().node_id("A"), 0.002, 0.5, 900.0},
                      {small().node_id("B"), 0.001, 0.5, 2700.0}});
  const auto results = sim.run();
  double manual = 0.0;
  for (std::size_t s = 0; s + 1 < results.num_steps(); ++s) {
    double now = 0.0, next = 0.0;
    for (NodeId v = 0; v < results.num_nodes(); ++v) {
      now += results.emitter_outflow(s, v);
      next += results.emitter_outflow(s + 1, v);
    }
    manual += 0.5 * (now + next) * (results.time(s + 1) - results.time(s));
  }
  EXPECT_DOUBLE_EQ(results.leaked_volume(), manual);
  EXPECT_GT(results.leaked_volume(), 0.0);
}

TEST(Simulation, ResultsTrackLinearSolveCount) {
  SimulationOptions options;
  options.duration_s = 2 * 3600.0;
  Simulation sim(small(), options);
  const auto results = sim.run();
  // Every step needs at least one Newton iteration (= one inner solve).
  EXPECT_GE(results.total_linear_solves(), results.num_steps());
}

TEST(Simulation, PatternRaisesDemandAndDropsPressure) {
  SimulationOptions options;
  options.duration_s = 8 * 3600.0;
  Simulation sim(small(), options);
  const auto results = sim.run();
  const Network net = small();
  const NodeId b = net.node_id("B");
  // Hour 6-8 has multiplier 2 -> lower pressure than hour 0.
  const auto low = results.step_at(0.0);
  const auto high = results.step_at(6.5 * 3600.0);
  EXPECT_LT(results.pressure(high, b), results.pressure(low, b));
}

TEST(Simulation, LeakActivatesAtScheduledSlot) {
  SimulationOptions options;
  options.duration_s = 4 * 3600.0;
  Simulation sim(small(), options);
  const Network net = small();
  const NodeId a = net.node_id("A");
  sim.schedule_leak({a, 0.003, 0.5, 2 * 3600.0});
  const auto results = sim.run();
  const auto before = results.step_at(2 * 3600.0 - 900.0);
  const auto after = results.step_at(2 * 3600.0);
  EXPECT_DOUBLE_EQ(results.emitter_outflow(before, a), 0.0);
  EXPECT_GT(results.emitter_outflow(after, a), 0.0);
  EXPECT_LT(results.pressure(after, a), results.pressure(before, a));
}

TEST(Simulation, LeakPersistsToEndOfRun) {
  SimulationOptions options;
  options.duration_s = 4 * 3600.0;
  Simulation sim(small(), options);
  const NodeId a = small().node_id("A");
  sim.schedule_leak({a, 0.003, 0.5, 3600.0});
  const auto results = sim.run();
  for (std::size_t s = results.step_at(3600.0); s < results.num_steps(); ++s) {
    EXPECT_GT(results.emitter_outflow(s, a), 0.0) << "step " << s;
  }
}

TEST(Simulation, LeakedVolumeIsPositiveAndBounded) {
  SimulationOptions options;
  options.duration_s = 4 * 3600.0;
  Simulation sim(small(), options);
  const NodeId a = small().node_id("A");
  sim.schedule_leak({a, 0.002, 0.5, 0.0});
  const auto results = sim.run();
  const double volume = results.leaked_volume();
  EXPECT_GT(volume, 0.0);
  // Upper bound: max outflow times duration.
  double max_rate = 0.0;
  for (std::size_t s = 0; s < results.num_steps(); ++s) {
    max_rate = std::max(max_rate, results.emitter_outflow(s, a));
  }
  EXPECT_LE(volume, max_rate * options.duration_s * 1.001);
}

TEST(Simulation, MultipleConcurrentLeaks) {
  SimulationOptions options;
  options.duration_s = 2 * 3600.0;
  Simulation sim(small(), options);
  const Network net = small();
  sim.schedule_leaks({{net.node_id("A"), 0.002, 0.5, 3600.0},
                      {net.node_id("B"), 0.003, 0.5, 3600.0}});
  const auto results = sim.run();
  const auto step = results.step_at(3600.0);
  EXPECT_GT(results.emitter_outflow(step, net.node_id("A")), 0.0);
  EXPECT_GT(results.emitter_outflow(step, net.node_id("B")), 0.0);
}

TEST(Simulation, RunsAreRepeatable) {
  SimulationOptions options;
  options.duration_s = 2 * 3600.0;
  Simulation sim(small(), options);
  sim.schedule_leak({small().node_id("A"), 0.002, 0.5, 1800.0});
  const auto first = sim.run();
  const auto second = sim.run();
  ASSERT_EQ(first.num_steps(), second.num_steps());
  for (std::size_t s = 0; s < first.num_steps(); ++s) {
    for (NodeId v = 0; v < first.num_nodes(); ++v) {
      EXPECT_DOUBLE_EQ(first.pressure(s, v), second.pressure(s, v));
    }
  }
}

TEST(Simulation, SchedulingValidation) {
  Simulation sim(small(), {});
  const Network net = small();
  EXPECT_THROW(sim.schedule_leak({net.node_id("R"), 0.002, 0.5, 0.0}), InvalidArgument);
  EXPECT_THROW(sim.schedule_leak({net.node_id("A"), 0.0, 0.5, 0.0}), InvalidArgument);
  EXPECT_THROW(sim.schedule_leak({net.node_id("A"), 0.002, 0.5, -5.0}), InvalidArgument);
}

TEST(Simulation, StepAtClampsAndSelects) {
  SimulationOptions options;
  options.duration_s = 3600.0;
  Simulation sim(small(), options);
  const auto results = sim.run();
  EXPECT_EQ(results.step_at(-100.0), 0u);
  EXPECT_EQ(results.step_at(0.0), 0u);
  EXPECT_EQ(results.step_at(950.0), 1u);
  EXPECT_EQ(results.step_at(1e9), results.num_steps() - 1);
}

TEST(Simulation, TankLevelRespondsToDraw) {
  // Tank-only source: levels must drop as demand drains it.
  Network net("tankdrain");
  const NodeId t = net.add_tank("T", 30.0, 5.0, 0.5, 8.0, 8.0);
  const NodeId a = net.add_junction("A", 5.0, 10.0);
  net.add_pipe("P", t, a, 100.0, 0.3, 120.0);
  SimulationOptions options;
  options.duration_s = 6 * 3600.0;
  Simulation sim(net, options);
  const auto results = sim.run();
  // Tank head (= elevation + level) must decline over the run.
  EXPECT_LT(results.head(results.num_steps() - 1, t), results.head(0, t));
}

TEST(Simulation, EpaNetFullDayRuns) {
  SimulationOptions options;
  options.duration_s = 24 * 3600.0;
  Simulation sim(networks::make_epa_net(), options);
  const auto results = sim.run();
  EXPECT_EQ(results.num_steps(), 97u);
  // All junction pressures stay positive through the day.
  const auto net = networks::make_epa_net();
  for (std::size_t s = 0; s < results.num_steps(); ++s) {
    for (const NodeId v : net.junction_ids()) {
      EXPECT_GT(results.pressure(s, v), 0.0) << "step " << s << " node " << v;
    }
  }
}

}  // namespace
}  // namespace aqua::hydraulics
