// Serving-daemon contract tests (see DESIGN.md §13): hot model swap is
// RCU-style (in-flight batches finish bit-identically on the model they
// pinned at dequeue), mixed-district serving matches per-district
// sequential inference exactly, admission control sheds the oldest
// requests deterministically, and the per-district telemetry registry
// survives concurrent recording from ingest/swap/export threads. The
// concurrent tests spawn raw std::threads on purpose and are meaningful
// under TSan (-DAQUA_TSAN=ON; label "serving;concurrency").
#include "serving/daemon.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "core/aquascale.hpp"
#include "io/mapped_artifact.hpp"

namespace aqua::serving {
namespace {

using core::InferenceInputs;
using core::InferenceResult;
using core::ModelKind;
using core::ProfileModel;

// Same synthetic setup as test_concurrency: small but non-degenerate
// multi-label problems, fast enough to train several distinct models.
ml::MultiLabelDataset synthetic_dataset(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t samples = 80, features = 6, labels = 5;
  ml::MultiLabelDataset data;
  data.features = ml::Matrix(samples, features);
  data.labels.assign(samples, ml::Labels(labels, 0));
  for (std::size_t i = 0; i < samples; ++i) {
    for (std::size_t c = 0; c < features; ++c) data.features(i, c) = rng.normal();
    for (std::size_t v = 0; v < labels; ++v) {
      data.labels[i][v] = data.features(i, v % features) + 0.2 * rng.normal() > 0.0 ? 1 : 0;
    }
  }
  return data;
}

std::shared_ptr<const ProfileModel> make_profile(std::uint64_t seed,
                                                 ModelKind kind = ModelKind::kHybridRsl) {
  auto profile = std::make_shared<ProfileModel>();
  profile->kind = kind;
  profile->model = ml::MultiLabelModel(core::make_classifier_factory(kind));
  profile->model.fit(synthetic_dataset(seed));
  return profile;
}

/// Inputs exercising every fusion stage: features, a frozen mask, and a
/// human-report clique.
std::vector<InferenceInputs> make_inputs(std::size_t count, std::size_t num_features,
                                         std::size_t num_labels, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<InferenceInputs> inputs(count);
  for (auto& in : inputs) {
    for (std::size_t c = 0; c < num_features; ++c) in.features.push_back(rng.normal());
    in.frozen.assign(num_labels, 0);
    in.frozen[0] = 1;
    fusion::LabelClique clique;
    clique.labels = {1, 3};
    in.cliques.push_back(clique);
  }
  return inputs;
}

void expect_identical(const InferenceResult& got, const InferenceResult& want,
                      const std::string& where) {
  EXPECT_EQ(got.beliefs.p_leak, want.beliefs.p_leak) << where;
  EXPECT_EQ(got.predicted, want.predicted) << where;
  EXPECT_EQ(got.predicted_iot_only, want.predicted_iot_only) << where;
  EXPECT_EQ(got.weather_updates, want.weather_updates) << where;
  EXPECT_EQ(got.tuning.added_labels, want.tuning.added_labels) << where;
  EXPECT_EQ(got.energy_before, want.energy_before) << where;
  EXPECT_EQ(got.energy_after, want.energy_after) << where;
}

/// Thread-safe sink collecting (district, sequence, version, result).
struct Collector {
  struct Entry {
    std::uint64_t sequence;
    std::uint64_t version;
    InferenceResult result;
  };
  std::mutex mutex;
  std::map<std::size_t, std::vector<Entry>> by_district;

  ResultSink sink() {
    return [this](const ResultEvent& event, const InferenceResult& result) {
      const std::lock_guard<std::mutex> lock(mutex);
      by_district[event.district].push_back({event.sequence, event.model_version, result});
    };
  }
};

TEST(ServingDaemon, MixedDistrictResultsMatchPerDistrictSequential) {
  // Three districts, three distinct models, two workers: interleaved
  // traffic through the daemon must reproduce each district's sequential
  // single-engine results exactly, in per-district submission order.
  const std::vector<std::uint64_t> seeds = {0xA1, 0xB2, 0xC3};
  std::vector<DistrictConfig> configs;
  std::vector<std::vector<InferenceInputs>> inputs;
  for (std::size_t d = 0; d < seeds.size(); ++d) {
    auto profile = make_profile(seeds[d]);
    DistrictConfig config;
    config.name = "d" + std::to_string(d);
    config.model = std::make_shared<ModelBundle>(profile, /*version=*/d + 1);
    config.max_batch = 4;
    configs.push_back(std::move(config));
    inputs.push_back(make_inputs(21, 6, profile->model.num_labels(), 0x5000 + d));
  }

  Collector collector;
  ServingDaemonOptions options;
  options.num_workers = 2;
  ServingDaemon daemon(configs, options, collector.sink());

  // Interleave submissions across districts (round-robin by request).
  for (std::size_t i = 0; i < inputs[0].size(); ++i) {
    for (std::size_t d = 0; d < configs.size(); ++d) {
      daemon.submit(d, inputs[d][i]);
    }
  }
  daemon.drain();

  for (std::size_t d = 0; d < configs.size(); ++d) {
    const auto& entries = collector.by_district[d];
    ASSERT_EQ(entries.size(), inputs[d].size()) << "district " << d;
    const core::InferenceEngine reference(configs[d].model->profile());
    for (std::size_t i = 0; i < entries.size(); ++i) {
      // Per-district FIFO: sequences arrive in submission order.
      EXPECT_EQ(entries[i].sequence, i) << "district " << d;
      EXPECT_EQ(entries[i].version, d + 1);
      expect_identical(entries[i].result, reference.infer(inputs[d][i]),
                       "district " + std::to_string(d) + " request " + std::to_string(i));
    }
    EXPECT_EQ(daemon.served_count(d), inputs[d].size());
    EXPECT_EQ(daemon.shed_count(d), 0u);
  }
}

TEST(ServingDaemon, ShedsOldestDeterministicallyUnderSeededOverload) {
  // A paused daemon makes admission control exactly reproducible: with
  // capacity 4 and 10 submissions, sequences 0..5 are shed oldest-first
  // and 6..9 survive to be served after resume.
  auto profile = make_profile(0xDD, ModelKind::kLogisticR);
  DistrictConfig config;
  config.name = "overloaded";
  config.model = std::make_shared<ModelBundle>(profile, 1);
  config.queue_capacity = 4;
  config.max_batch = 3;

  Collector collector;
  std::vector<std::uint64_t> shed_sequences;
  ServingDaemonOptions options;
  options.num_workers = 1;
  options.paused = true;
  ServingDaemon daemon({config}, options, collector.sink(),
                       [&](std::size_t district, std::uint64_t sequence) {
                         EXPECT_EQ(district, 0u);
                         shed_sequences.push_back(sequence);
                       });

  const auto inputs = make_inputs(10, 6, profile->model.num_labels(), 0x700);
  for (const auto& in : inputs) daemon.submit(0, in);

  EXPECT_EQ(shed_sequences, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(daemon.submitted_count(0), 10u);
  EXPECT_EQ(daemon.shed_count(0), 6u);
  EXPECT_EQ(daemon.served_count(0), 0u);

  daemon.resume();
  daemon.drain();
  const auto& entries = collector.by_district[0];
  ASSERT_EQ(entries.size(), 4u);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].sequence, 6 + i);  // survivors, still in order
  }
  EXPECT_EQ(daemon.served_count(0), 4u);

  // submitted == served + shed once drained: nothing is silently lost.
  const auto times = daemon.district_telemetry(0);
  EXPECT_EQ(times.count(ServingDaemon::kCounterSubmitted),
            times.count(ServingDaemon::kCounterServed) +
                times.count(ServingDaemon::kCounterShed));
  EXPECT_EQ(times.calls(ServingDaemon::kStageQueueWait), 4u);
}

TEST(ServingDaemon, SwapBetweenBatchesIsDeterministicAtBatchGranularity) {
  // Deterministic swap placement: one worker, max_batch 4, eight queued
  // requests = exactly two batches. The sink triggers the swap on the
  // first result of batch one — after the batch pinned its bundle — so
  // batch one must complete on v1 and batch two must run on v2.
  auto profile_v1 = make_profile(0x11);
  auto profile_v2 = make_profile(0x22);
  auto bundle_v2 = std::make_shared<ModelBundle>(profile_v2, 2);

  DistrictConfig config;
  config.name = "swap";
  config.model = std::make_shared<ModelBundle>(profile_v1, 1);
  config.queue_capacity = 64;
  config.max_batch = 4;

  ServingDaemon* daemon_ptr = nullptr;
  Collector collector;
  auto inner = collector.sink();
  ResultSink sink = [&](const ResultEvent& event, const InferenceResult& result) {
    if (event.sequence == 0) daemon_ptr->swap_model(0, bundle_v2);
    inner(event, result);
  };

  ServingDaemonOptions options;
  options.num_workers = 1;
  options.paused = true;
  ServingDaemon daemon({config}, options, sink);
  daemon_ptr = &daemon;

  const auto inputs = make_inputs(8, 6, profile_v1->model.num_labels(), 0x900);
  for (const auto& in : inputs) daemon.submit(0, in);
  daemon.resume();
  daemon.drain();

  const core::InferenceEngine engine_v1(*profile_v1);
  const core::InferenceEngine engine_v2(*profile_v2);
  const auto& entries = collector.by_district[0];
  ASSERT_EQ(entries.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    const bool first_batch = i < 4;
    EXPECT_EQ(entries[i].version, first_batch ? 1u : 2u) << "request " << i;
    expect_identical(entries[i].result,
                     (first_batch ? engine_v1 : engine_v2).infer(inputs[i]),
                     "request " + std::to_string(i));
  }
  EXPECT_EQ(daemon.district_telemetry(0).count(ServingDaemon::kCounterSwaps), 1u);
  EXPECT_EQ(daemon.model(0)->version(), 2u);
}

TEST(ServingDaemon, HotSwapUnderConcurrentLoadNeverTearsOrDrops) {
  // The RCU stress: submitters and a publisher hammer one district while
  // workers drain it. Every result must be bit-identical to the sequential
  // output of the model version it reports — a batch that observed a swap
  // mid-flight would mismatch its pinned version. Zero requests may be
  // dropped (capacity exceeds the offered load).
  auto profile_v1 = make_profile(0x31, ModelKind::kLogisticR);
  auto profile_v2 = make_profile(0x32, ModelKind::kLogisticR);

  DistrictConfig config;
  config.name = "hot";
  config.model = std::make_shared<ModelBundle>(profile_v1, 1);
  config.queue_capacity = 4096;
  config.max_batch = 8;

  const auto inputs = make_inputs(24, 6, profile_v1->model.num_labels(), 0xABC);
  const core::InferenceEngine engine_v1(*profile_v1);
  const core::InferenceEngine engine_v2(*profile_v2);
  // Precompute both sequential references for every distinct input.
  std::vector<InferenceResult> want_v1, want_v2;
  for (const auto& in : inputs) {
    want_v1.push_back(engine_v1.infer(in));
    want_v2.push_back(engine_v2.infer(in));
  }

  // The sink checks identity on the worker thread; index via sequence.
  constexpr std::size_t kPerThread = 60;
  constexpr std::size_t kSubmitters = 3;
  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> served{0};
  ResultSink sink = [&](const ResultEvent& event, const InferenceResult& result) {
    const auto& want =
        event.model_version == 1 ? want_v1[event.sequence % inputs.size()]
                                 : want_v2[event.sequence % inputs.size()];
    const bool same = result.beliefs.p_leak == want.beliefs.p_leak &&
                      result.predicted == want.predicted &&
                      result.energy_after == want.energy_after;
    if (!same) mismatches.fetch_add(1);
    served.fetch_add(1);
  };

  ServingDaemonOptions options;
  options.num_workers = 2;
  ServingDaemon daemon({config}, options, sink);

  // Submission order must match sequence order for the sink's indexing:
  // serialize sequence assignment by submitting from one thread per
  // modulus stride — here simpler: submitters share a global ticket.
  std::atomic<std::size_t> ticket{0};
  std::vector<std::thread> submitters;
  std::mutex submit_mutex;
  for (std::size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        // Sequence numbers are assigned inside submit() under the daemon
        // lock; serialize ticket+submit so sequence k always carries
        // inputs[k % size].
        const std::lock_guard<std::mutex> lock(submit_mutex);
        const std::size_t k = ticket.fetch_add(1);
        daemon.submit(0, inputs[k % inputs.size()]);
      }
    });
  }
  std::thread publisher([&] {
    for (std::uint64_t swap = 0; swap < 40; ++swap) {
      const bool to_v2 = swap % 2 == 0;
      daemon.swap_model(0, std::make_shared<ModelBundle>(to_v2 ? profile_v2 : profile_v1,
                                                         to_v2 ? 2 : 1));
      std::this_thread::yield();
    }
  });
  for (auto& thread : submitters) thread.join();
  publisher.join();
  daemon.drain();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(served.load(), kSubmitters * kPerThread);
  EXPECT_EQ(daemon.served_count(0), kSubmitters * kPerThread);
  EXPECT_EQ(daemon.shed_count(0), 0u);
  EXPECT_EQ(daemon.district_telemetry(0).count(ServingDaemon::kCounterSwaps), 40u);
}

TEST(ServingDaemon, BundleLoadedViaMmapServesIdenticallyToInMemoryModel) {
  auto profile = make_profile(0x77);
  const std::string path = ::testing::TempDir() + "aqua_serving_bundle.aquamodl";
  profile->save_file(path);

  bool used_mmap = false;
  const auto bundle = load_bundle(path, /*version=*/9, {}, &used_mmap);
  EXPECT_TRUE(used_mmap);
  EXPECT_EQ(bundle->version(), 9u);

  DistrictConfig config;
  config.name = "mapped";
  config.model = bundle;
  Collector collector;
  ServingDaemon daemon({config}, {}, collector.sink());

  const auto inputs = make_inputs(12, 6, profile->model.num_labels(), 0x3333);
  for (const auto& in : inputs) daemon.submit(0, in);
  daemon.drain();

  const core::InferenceEngine reference(*profile);
  const auto& entries = collector.by_district[0];
  ASSERT_EQ(entries.size(), inputs.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    expect_identical(entries[i].result, reference.infer(inputs[i]),
                     "mapped request " + std::to_string(i));
  }
  std::remove(path.c_str());
}

TEST(ServingDaemon, MetricsExportCoversEveryDistrictWithPrefixes) {
  // alpha holds a tree-backed hybrid model (compiled forest stats must be
  // nonzero); beta holds a treeless linear model (keys still exported,
  // zeroed — the transparent pointer-walk fallback has nothing compiled).
  auto hybrid_profile = make_profile(0x55);
  auto linear_profile = make_profile(0x55, ModelKind::kLinearR);
  std::vector<DistrictConfig> configs(2);
  configs[0].name = "alpha";
  configs[0].model = std::make_shared<ModelBundle>(hybrid_profile, 3);
  configs[1].name = "beta";
  configs[1].model = std::make_shared<ModelBundle>(linear_profile, 4);

  Collector collector;
  ServingDaemon daemon(configs, {}, collector.sink());
  const auto inputs = make_inputs(5, 6, linear_profile->model.num_labels(), 0x44);
  for (const auto& in : inputs) daemon.submit(1, in);
  daemon.drain();

  std::map<std::string, double> exported;
  for (const auto& [key, value] : daemon.metrics()) exported[key] = value;
  EXPECT_EQ(exported.at("district.alpha.counter.served"), 0.0);
  EXPECT_EQ(exported.at("district.beta.counter.served"), 5.0);
  EXPECT_EQ(exported.at("district.alpha.model_version"), 3.0);
  EXPECT_EQ(exported.at("district.beta.model_version"), 4.0);
  EXPECT_GT(exported.at("district.beta.stage.infer.seconds"), 0.0);
  EXPECT_EQ(exported.at("district.beta.stage.queue_wait.calls"), 5.0);
  EXPECT_GT(exported.at("district.alpha.forest.compiled_trees"), 0.0);
  EXPECT_GT(exported.at("district.alpha.forest.compile_seconds"), 0.0);
  EXPECT_EQ(exported.at("district.beta.forest.compiled_trees"), 0.0);
  EXPECT_EQ(exported.at("district.beta.forest.compile_seconds"), 0.0);
}

TEST(TelemetryRegistry, ConcurrentRecordSnapshotAndResetStayConsistent) {
  // The documented Registry contract: merge/add/snapshot/metrics from any
  // number of threads, no lost increments, snapshots never torn. Final
  // totals must equal the arithmetic sum of everything recorded.
  telemetry::Registry registry(ServingDaemon::make_district_schema());
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kIters = 400;

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      telemetry::StageTimes local = ServingDaemon::make_district_schema();
      for (std::size_t i = 0; i < kIters; ++i) {
        if (t % 2 == 0) {
          // Direct low-rate recording (the ingest/swap-thread pattern).
          registry.add_count(ServingDaemon::kCounterSubmitted, 1);
          registry.add_seconds(ServingDaemon::kStageQueueWait, 0.5);
        } else {
          // Worker-local accumulate + merge (the batch-worker pattern).
          local.add_count(ServingDaemon::kCounterSubmitted, 1);
          local.add_seconds(ServingDaemon::kStageQueueWait, 0.5);
          if (i % 16 == 15) {
            registry.merge(local);
            local.reset();
          }
        }
        if (i % 64 == 0) {
          // Export thread: snapshots must be internally consistent —
          // seconds are only ever added 0.5 at a time alongside one call.
          const auto snap = registry.snapshot();
          const double seconds = snap.seconds(ServingDaemon::kStageQueueWait);
          const auto calls = snap.calls(ServingDaemon::kStageQueueWait);
          if (seconds != 0.5 * static_cast<double>(calls)) std::abort();
        }
      }
      if (t % 2 != 0) registry.merge(local);
    });
  }
  for (auto& thread : threads) thread.join();

  const auto total = registry.snapshot();
  EXPECT_EQ(total.count(ServingDaemon::kCounterSubmitted), kThreads * kIters);
  EXPECT_EQ(total.calls(ServingDaemon::kStageQueueWait), kThreads * kIters);
  EXPECT_EQ(total.seconds(ServingDaemon::kStageQueueWait), 0.5 * kThreads * kIters);
}

}  // namespace
}  // namespace aqua::serving
