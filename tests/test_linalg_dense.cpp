#include "linalg/dense.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace aqua::linalg {
namespace {

TEST(DenseMatrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(DenseMatrix, Identity) {
  const Matrix eye = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
  }
}

TEST(DenseMatrix, RowSpanViewsData) {
  Matrix m(2, 2);
  m(1, 0) = 7.0;
  auto row = m.row(1);
  EXPECT_DOUBLE_EQ(row[0], 7.0);
  row[1] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 1), 9.0);
}

TEST(DenseOps, Matvec) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const Vector y = matvec(a, std::vector<double>{1.0, 0.0, -1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(DenseOps, MatvecTranspose) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  const Vector y = matvec_transpose(a, std::vector<double>{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(DenseOps, MatvecDimensionMismatchThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(matvec(a, std::vector<double>{1.0}), InvalidArgument);
}

TEST(DenseOps, GramIsSymmetricAndCorrect) {
  Matrix a(3, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 0;
  a(1, 1) = 1;
  a(2, 0) = -1;
  a(2, 1) = 1;
  const Matrix g = gram(a);
  EXPECT_DOUBLE_EQ(g(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(g(1, 1), 6.0);
  EXPECT_DOUBLE_EQ(g(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g(1, 0), 1.0);
}

TEST(DenseOps, MatmulKnownProduct) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  b(0, 0) = 0;
  b(0, 1) = 1;
  b(1, 0) = 1;
  b(1, 1) = 0;
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(DenseOps, DotAxpyNorm) {
  std::vector<double> x{1.0, 2.0}, y{3.0, -1.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 1.0);
  axpy(2.0, y, x);
  EXPECT_DOUBLE_EQ(x[0], 7.0);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
  EXPECT_DOUBLE_EQ(norm2(std::vector<double>{3.0, 4.0}), 5.0);
}

TEST(Cholesky, FactorizesAndSolves) {
  // SPD matrix A = [[4,2],[2,3]], b = [6,5] -> x = [1,1].
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  const Vector x = solve_spd(a, std::vector<double>{6.0, 5.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(Cholesky, LowerFactorReconstructs) {
  Matrix a(3, 3);
  const double vals[3][3] = {{6, 2, 1}, {2, 5, 2}, {1, 2, 4}};
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = vals[i][j];
  }
  const Matrix lower = cholesky(a);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < 3; ++k) sum += lower(i, k) * lower(j, k);
      EXPECT_NEAR(sum, vals[i][j], 1e-12);
    }
  }
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_THROW(cholesky(a), SolverError);
}

TEST(Cholesky, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_THROW(cholesky(a), InvalidArgument);
}

TEST(Cholesky, SolvesLargerRandomSpdSystem) {
  const std::size_t n = 20;
  Matrix a(n, n);
  // A = B^T B + n*I is SPD.
  Matrix b(n, n);
  unsigned state = 12345;
  auto next = [&state] {
    state = state * 1664525u + 1013904223u;
    return static_cast<double>(state % 1000) / 500.0 - 1.0;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = next();
  }
  const Matrix g = gram(b);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = g(i, j) + (i == j ? n : 0.0);
  }
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = next();
  const Vector rhs = matvec(a, x_true);
  const Vector x = solve_spd(a, rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

}  // namespace
}  // namespace aqua::linalg
