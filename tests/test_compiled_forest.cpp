// Compiled SoA forest-kernel contract tests (DESIGN.md §14). The flattened
// tile kernel must be bitwise identical to the pointer-walking oracle it
// was compiled from — on fresh fits, after artifact round-trips through
// both the buffered and the mmap readers, through the shared-input-map
// batch path, and under concurrent tile calls on one shared model. The
// concurrency test spawns raw std::threads on purpose and is meaningful
// under TSan (label "kernel;concurrency").
#include "ml/compiled_forest.hpp"

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/aquascale.hpp"
#include "io/mapped_artifact.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/hybrid_rsl.hpp"
#include "ml/random_forest.hpp"

namespace aqua::ml {
namespace {

using core::ModelKind;
using core::ProfileModel;

/// Restores the process-wide kernel switch no matter how a test exits.
struct KernelSwitchGuard {
  ~KernelSwitchGuard() { set_compiled_forest_enabled(true); }
};

std::pair<Matrix, Labels> blobs(std::size_t n, Rng& rng) {
  Matrix x(n, 6);
  Labels y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 6; ++c) x(i, c) = rng.normal();
    y[i] = x(i, 0) + 0.4 * x(i, 3) + 0.3 * rng.normal() > 0.0 ? 1 : 0;
  }
  return {std::move(x), std::move(y)};
}

ml::MultiLabelDataset synthetic_dataset(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t samples = 90, features = 6, labels = 5;
  MultiLabelDataset data;
  data.features = Matrix(samples, features);
  data.labels.assign(samples, Labels(labels, 0));
  for (std::size_t i = 0; i < samples; ++i) {
    for (std::size_t c = 0; c < features; ++c) data.features(i, c) = rng.normal();
    for (std::size_t v = 0; v < labels; ++v) {
      data.labels[i][v] = data.features(i, v % features) + 0.2 * rng.normal() > 0.0 ? 1 : 0;
    }
  }
  return data;
}

void expect_same_bits(double a, double b, const std::string& where) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b)) << where;
}

// --- CompiledForest against the raw tree ensemble ----------------------

TEST(CompiledForest, AccumulateMatchesScaledTreeSumOracle) {
  Rng rng(101);
  const auto [x, yb] = blobs(250, rng);
  std::vector<double> y(yb.begin(), yb.end());
  std::vector<RegressionTree> trees(12);
  for (std::size_t t = 0; t < trees.size(); ++t) {
    // Vary the targets so the ensemble holds distinct trees of distinct
    // depths (including the chance of single-leaf degenerates).
    std::vector<double> yt = y;
    for (std::size_t i = t; i < yt.size(); i += t + 2) yt[i] = 1.0 - yt[i];
    trees[t].fit(x, yt);
  }
  const double scale = 0.35;
  CompiledForest forest;
  forest.compile(trees, scale);
  ASSERT_TRUE(forest.compiled());

  Rng probe(102);
  const auto [tx, ty] = blobs(64, probe);
  (void)ty;
  for (std::size_t i = 0; i < tx.rows(); ++i) {
    double want = 0.25;  // nonzero init must pass through untouched
    for (const auto& tree : trees) want += scale * tree.predict(tx.row(i));
    const double got = forest.accumulate(tx.row(i), 0.25);
    expect_same_bits(got, want, "row " + std::to_string(i));
  }
}

TEST(CompiledForest, PartialTilesMatchSingleRowAccumulate) {
  Rng rng(103);
  const auto [x, yb] = blobs(220, rng);
  std::vector<double> y(yb.begin(), yb.end());
  std::vector<RegressionTree> trees(9);
  for (auto& tree : trees) tree.fit(x, y);
  CompiledForest forest;
  forest.compile(trees, 1.0);
  ASSERT_TRUE(forest.compiled());

  Rng probe(104);
  const auto [tx, ty] = blobs(CompiledForest::kTileRows, probe);
  (void)ty;
  std::array<const double*, CompiledForest::kTileRows> rows{};
  for (std::size_t i = 0; i < tx.rows(); ++i) rows[i] = tx.row(i).data();
  // Every occupancy 1..kTileRows must agree with the one-row path.
  for (std::size_t count = 1; count <= CompiledForest::kTileRows; ++count) {
    std::array<double, CompiledForest::kTileRows> acc{};
    forest.accumulate_tile(rows.data(), count, acc.data());
    for (std::size_t i = 0; i < count; ++i) {
      expect_same_bits(acc[i], forest.accumulate(tx.row(i), 0.0),
                       "count " + std::to_string(count) + " row " + std::to_string(i));
    }
  }
}

TEST(CompiledForest, ReportCountsCompiledStateAndClearsWithIt) {
  Rng rng(105);
  const auto [x, yb] = blobs(200, rng);
  std::vector<double> y(yb.begin(), yb.end());
  std::vector<RegressionTree> trees(7);
  for (auto& tree : trees) tree.fit(x, y);
  CompiledForest forest;
  forest.compile(trees, 1.0);
  ASSERT_TRUE(forest.compiled());

  const ForestCompileReport report = forest.report();
  EXPECT_EQ(report.classifiers, 1u);
  EXPECT_EQ(report.trees, trees.size());
  EXPECT_GT(report.internal_nodes, 0u);
  // Every internal node contributes exactly one extra leaf beyond its
  // tree's first, so a binary ensemble has internal + trees leaves.
  EXPECT_EQ(report.leaves, report.internal_nodes + report.trees);
  EXPECT_GT(report.seconds, 0.0);

  forest.clear();
  EXPECT_FALSE(forest.compiled());
  const ForestCompileReport cleared = forest.report();
  EXPECT_EQ(cleared.classifiers, 0u);
  EXPECT_EQ(cleared.trees, 0u);
  EXPECT_EQ(cleared.seconds, 0.0);
}

// --- Fresh-fit bit-identity per ensemble kind --------------------------

template <typename Classifier>
void expect_tile_matches_pointer_walk(Classifier& classifier, std::uint64_t seed) {
  const KernelSwitchGuard guard;
  Rng rng(seed);
  const auto [x, y] = blobs(260, rng);
  classifier.fit(x, y);
  ASSERT_NE(classifier.compiled_forest(), nullptr);

  Rng probe(seed + 1);
  const auto [tx, ty] = blobs(52, probe);  // deliberately not a tile multiple
  (void)ty;
  // The tile protocol consumes mapped rows; build them via the
  // classifier's own input map so the comparison covers the real path.
  std::vector<PredictWorkspace> ws(tx.rows());
  std::vector<const double*> rows(tx.rows());
  for (std::size_t i = 0; i < tx.rows(); ++i) {
    classifier.map_input(tx.row(i), ws[i]);
    rows[i] = ws[i].mapped.data();
  }
  const std::size_t dim = ws[0].mapped.size();

  std::vector<double> compiled_out(tx.rows()), pointer_out(tx.rows());
  set_compiled_forest_enabled(true);
  classifier.predict_proba_mapped_tile(rows.data(), rows.size(), dim, compiled_out.data(), 1);
  set_compiled_forest_enabled(false);
  classifier.predict_proba_mapped_tile(rows.data(), rows.size(), dim, pointer_out.data(), 1);

  for (std::size_t i = 0; i < tx.rows(); ++i) {
    expect_same_bits(compiled_out[i], pointer_out[i],
                     "kernel on/off row " + std::to_string(i));
    // And both must be the plain per-row oracle.
    expect_same_bits(pointer_out[i], classifier.predict_proba(tx.row(i)),
                     "oracle row " + std::to_string(i));
  }
}

TEST(CompiledForest, RandomForestTileBitIdenticalToPointerWalk) {
  RandomForestClassifier rf;
  expect_tile_matches_pointer_walk(rf, 111);
}

TEST(CompiledForest, GradientBoostingTileBitIdenticalToPointerWalk) {
  GradientBoostingClassifier gb;
  expect_tile_matches_pointer_walk(gb, 113);
}

TEST(CompiledForest, HybridRslTileBitIdenticalToPointerWalk) {
  HybridRslClassifier hybrid;
  expect_tile_matches_pointer_walk(hybrid, 115);
}

// --- Artifact round-trip through both readers --------------------------

TEST(CompiledForest, ArtifactRoundTripRecompilesBitIdentically) {
  ProfileModel original;
  original.kind = ModelKind::kHybridRsl;
  original.model = MultiLabelModel(core::make_classifier_factory(original.kind));
  original.model.fit(synthetic_dataset(0x77));
  ASSERT_GT(original.model.forest_compile_report().trees, 0u);

  const std::string path = ::testing::TempDir() + "aqua_compiled_forest.aquamodl";
  original.save_file(path);

  // Buffered reader.
  std::ifstream in(path, std::ios::binary);
  const ProfileModel buffered = ProfileModel::load(in);
  // Zero-copy mmap reader over the identical bytes.
  const io::MappedArtifactReader reader(path);
  const ProfileModel mapped = ProfileModel::load(reader);
  std::remove(path.c_str());

  // Both loads must recompile the same kernels the fit produced...
  const ForestCompileReport want = original.model.forest_compile_report();
  for (const ProfileModel* loaded : {&buffered, &mapped}) {
    const ForestCompileReport got = loaded->model.forest_compile_report();
    EXPECT_EQ(got.trees, want.trees);
    EXPECT_EQ(got.internal_nodes, want.internal_nodes);
    EXPECT_EQ(got.leaves, want.leaves);
    EXPECT_EQ(got.classifiers, want.classifiers);
  }

  // ...and the compiled batch path must reproduce the original's bits.
  const Matrix probe = synthetic_dataset(0x78).features;
  Matrix out_original, out_buffered, out_mapped;
  original.model.predict_proba_batch_into(probe, out_original, /*parallel=*/false);
  buffered.model.predict_proba_batch_into(probe, out_buffered, /*parallel=*/false);
  mapped.model.predict_proba_batch_into(probe, out_mapped, /*parallel=*/false);
  for (std::size_t i = 0; i < probe.rows(); ++i) {
    for (std::size_t v = 0; v < original.model.num_labels(); ++v) {
      const std::string where =
          "row " + std::to_string(i) + " label " + std::to_string(v);
      expect_same_bits(out_buffered(i, v), out_original(i, v), "buffered " + where);
      expect_same_bits(out_mapped(i, v), out_original(i, v), "mapped " + where);
    }
  }
}

// --- Shared-input-map batch path and the treeless fallback -------------

void expect_batch_matches_per_row(ModelKind kind, bool expect_trees) {
  MultiLabelModel model(core::make_classifier_factory(kind));
  model.fit(synthetic_dataset(0x88));
  EXPECT_EQ(model.forest_compile_report().trees > 0, expect_trees);

  const Matrix probe = synthetic_dataset(0x89).features;
  Matrix out;
  model.predict_proba_batch_into(probe, out, /*parallel=*/false);
  for (std::size_t i = 0; i < probe.rows(); ++i) {
    const auto per_row = model.predict_proba(probe.row(i));
    for (std::size_t v = 0; v < model.num_labels(); ++v) {
      expect_same_bits(out(i, v), per_row[v],
                       "row " + std::to_string(i) + " label " + std::to_string(v));
    }
  }
}

TEST(CompiledForest, SharedMapBatchPathBitIdenticalToPerRowPredicts) {
  expect_batch_matches_per_row(ModelKind::kHybridRsl, /*expect_trees=*/true);
}

TEST(CompiledForest, TreelessKindsFallBackTransparently) {
  // No ensemble to flatten: compiled_forest() is null for every head and
  // the tile protocol's default per-row loop serves the batch unchanged.
  MultiLabelModel model(core::make_classifier_factory(ModelKind::kLogisticR));
  model.fit(synthetic_dataset(0x8A));
  for (std::size_t v = 0; v < model.num_labels(); ++v) {
    EXPECT_EQ(model.classifier(v).compiled_forest(), nullptr);
  }
  expect_batch_matches_per_row(ModelKind::kLogisticR, /*expect_trees=*/false);
}

// --- Concurrency: one shared compiled model, many tile callers ---------

TEST(CompiledForest, ConcurrentTileCallsOnSharedModelStayIdentical) {
  RandomForestClassifier rf;
  Rng rng(121);
  const auto [x, y] = blobs(240, rng);
  rf.fit(x, y);
  ASSERT_NE(rf.compiled_forest(), nullptr);

  Rng probe(122);
  const auto [tx, ty] = blobs(40, probe);
  (void)ty;
  std::vector<const double*> rows(tx.rows());
  for (std::size_t i = 0; i < tx.rows(); ++i) rows[i] = tx.row(i).data();
  std::vector<double> expected(tx.rows());
  rf.predict_proba_mapped_tile(rows.data(), rows.size(), tx.cols(), expected.data(), 1);

  // All state is immutable after fit and the kernel scratch is
  // stack-local, so raw threads hammering one classifier must agree
  // with the sequential pass exactly (and report no races under TSan).
  std::vector<std::thread> threads;
  std::vector<int> mismatches(4, 0);
  for (std::size_t w = 0; w < mismatches.size(); ++w) {
    threads.emplace_back([&, w] {
      std::vector<double> out(tx.rows());
      for (int rep = 0; rep < 25; ++rep) {
        rf.predict_proba_mapped_tile(rows.data(), rows.size(), tx.cols(), out.data(), 1);
        for (std::size_t i = 0; i < out.size(); ++i) {
          if (std::bit_cast<std::uint64_t>(out[i]) !=
              std::bit_cast<std::uint64_t>(expected[i])) {
            ++mismatches[w];
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t w = 0; w < mismatches.size(); ++w) {
    EXPECT_EQ(mismatches[w], 0) << "worker " << w;
  }
}

}  // namespace
}  // namespace aqua::ml
