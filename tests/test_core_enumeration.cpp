#include "core/enumeration.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/snapshots.hpp"
#include "networks/builtin.hpp"
#include "sensing/placement.hpp"

namespace aqua::core {
namespace {

class EnumerationTest : public ::testing::Test {
 protected:
  EnumerationTest() : net_(networks::make_epa_net()), labels_(net_) {}

  /// Noise-free observed deltas for a leak at `label` with size `ec`,
  /// using snapshot-mode dynamics consistent with the localizer.
  std::vector<double> observed_for(const sensing::SensorSet& sensors, std::size_t label,
                                   double ec, std::size_t before_period,
                                   std::size_t after_period) {
    hydraulics::Network leaky = net_;
    leaky.set_emitter(labels_.node_of(label), ec);
    auto demands = [&](const hydraulics::Network& n, std::size_t period) {
      std::vector<double> d(n.num_nodes(), 0.0);
      for (hydraulics::NodeId v = 0; v < n.num_nodes(); ++v) d[v] = n.demand_at(v, period);
      return d;
    };
    std::vector<double> fixed(net_.num_nodes(), 0.0);
    for (hydraulics::NodeId v = 0; v < net_.num_nodes(); ++v) {
      const auto& node = net_.node(v);
      if (node.type == hydraulics::NodeType::kReservoir) fixed[v] = node.elevation;
      if (node.type == hydraulics::NodeType::kTank) fixed[v] = node.elevation + node.init_level;
    }
    hydraulics::GgaSolver healthy(net_);
    const auto before = healthy.solve(demands(net_, before_period), fixed);
    hydraulics::GgaSolver solver(leaky);
    const auto after = solver.solve(demands(leaky, after_period), fixed, &before);
    std::vector<double> deltas(sensors.size());
    for (std::size_t i = 0; i < sensors.size(); ++i) {
      const auto& s = sensors.sensors[i];
      deltas[i] = s.kind == sensing::SensorKind::kPressure
                      ? after.pressure[s.index] - before.pressure[s.index]
                      : after.flow[s.index] - before.flow[s.index];
    }
    return deltas;
  }

  hydraulics::Network net_;
  LabelSpace labels_;
};

TEST_F(EnumerationTest, RecoversSingleLeakWithCleanObservations) {
  const auto sensors = sensing::full_observation(net_);
  EnumerationConfig config;
  config.candidate_ecs = {0.004};  // the true size is among the candidates
  config.max_leaks = 2;
  const EnumerationLocalizer localizer(net_, sensors, config);
  const std::size_t truth = 40;
  const auto observed = observed_for(sensors, truth, 0.004, 0, 0);
  const auto outcome = localizer.localize(observed, 0, 0);
  EXPECT_EQ(outcome.predicted[truth], 1);
  std::size_t positives = 0;
  for (auto p : outcome.predicted) positives += p;
  EXPECT_LE(positives, 2u);
  EXPECT_GT(outcome.hydraulic_solves, labels_.num_labels());  // it really enumerated
}

TEST_F(EnumerationTest, ScreeningPrunesTrialsAndKeepsTheLeak) {
  const auto sensors = sensing::full_observation(net_);
  const std::size_t truth = 40;
  const auto observed = observed_for(sensors, truth, 0.004, 0, 0);

  EnumerationConfig config;
  config.candidate_ecs = {0.004};
  config.max_leaks = 2;
  const EnumerationLocalizer unscreened_localizer(net_, sensors, config);
  const auto unscreened = unscreened_localizer.localize(observed, 0, 0);

  config.screen_top_k = 10;
  const EnumerationLocalizer screened_localizer(net_, sensors, config);
  const auto screened = screened_localizer.localize(observed, 0, 0);

  // The linearized probe must rank the true leak into the top 10 of the
  // candidate set, and the greedy search over the pruned set still finds
  // it — with far fewer full hydraulic solves.
  EXPECT_EQ(screened.predicted[truth], 1);
  EXPECT_EQ(screened.screened_labels, 10u);
  EXPECT_EQ(unscreened.screened_labels, labels_.num_labels());
  EXPECT_LT(screened.hydraulic_solves, unscreened.hydraulic_solves / 2);
}

TEST_F(EnumerationTest, NoLeakNoDetection) {
  const auto sensors = sensing::full_observation(net_);
  EnumerationConfig config;
  config.candidate_ecs = {0.004};
  const EnumerationLocalizer localizer(net_, sensors, config);
  const std::vector<double> observed(sensors.size(), 0.0);  // healthy system
  const auto outcome = localizer.localize(observed, 0, 0);
  for (auto p : outcome.predicted) EXPECT_EQ(p, 0);
}

TEST_F(EnumerationTest, ResidualDecreasesWhenLeakFound) {
  const auto sensors = sensing::full_observation(net_);
  EnumerationConfig config;
  config.candidate_ecs = {0.004};
  const EnumerationLocalizer localizer(net_, sensors, config);
  const auto observed = observed_for(sensors, 20, 0.004, 0, 0);
  const auto outcome = localizer.localize(observed, 0, 0);
  // Final residual should be tiny: the hypothesis space contains the truth.
  EXPECT_LT(outcome.residual, 0.05);
}

TEST_F(EnumerationTest, TracksCostInSolvesAndSeconds) {
  const auto sensors = sensing::full_observation(net_);
  EnumerationConfig config;
  config.candidate_ecs = {0.003};
  config.max_leaks = 1;
  const EnumerationLocalizer localizer(net_, sensors, config);
  const auto observed = observed_for(sensors, 10, 0.003, 0, 0);
  const auto outcome = localizer.localize(observed, 0, 0);
  EXPECT_GT(outcome.seconds, 0.0);
  // At least one solve per candidate label in round one.
  EXPECT_GE(outcome.hydraulic_solves, labels_.num_labels());
}

TEST_F(EnumerationTest, Validation) {
  const auto sensors = sensing::full_observation(net_);
  EnumerationConfig bad;
  bad.candidate_ecs = {};
  EXPECT_THROW(EnumerationLocalizer(net_, sensors, bad), InvalidArgument);
  const EnumerationLocalizer localizer(net_, sensors, {});
  EXPECT_THROW(localizer.localize(std::vector<double>{1.0}, 0, 0), InvalidArgument);
}

}  // namespace
}  // namespace aqua::core
