#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace aqua {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  pool.submit([&] { value = 42; }).get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForSingleItem) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(1, [&](std::size_t i) { count += static_cast<int>(i) + 1; });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8, [&](std::size_t i) {
        if (i == 3) throw std::runtime_error("boom");
      }),
      std::runtime_error);
}

TEST(ThreadPool, SubmitFuturePropagatesException) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::logic_error("bad"); });
  EXPECT_THROW(future.get(), std::logic_error);
}

TEST(ThreadPool, SizeReflectsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> sum{0};
  ThreadPool::global().parallel_for(10, [&](std::size_t i) {
    sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, OnWorkerThreadDetection) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.on_worker_thread());
  bool inside = false;
  pool.submit([&] { inside = pool.on_worker_thread(); }).get();
  EXPECT_TRUE(inside);
  // A worker of one pool is not a worker of another.
  ThreadPool other(2);
  bool cross = true;
  pool.submit([&] { cross = other.on_worker_thread(); }).get();
  EXPECT_FALSE(cross);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Regression test: a parallel_for issued from inside one of the pool's
  // own workers used to enqueue chunk tasks behind the caller's task and
  // block on their futures forever. The nested call must run inline.
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { ++count; });
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, NestedParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(2, [&](std::size_t) {
        pool.parallel_for(4, [&](std::size_t i) {
          if (i == 2) throw std::runtime_error("nested boom");
        });
      }),
      std::runtime_error);
}

TEST(ThreadPool, DeeplyNestedParallelForCompletes) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(2, [&](std::size_t) {
    pool.parallel_for(2, [&](std::size_t) {
      pool.parallel_for(2, [&](std::size_t) { ++count; });
    });
  });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) futures.push_back(pool.submit([&] { ++done; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(done.load(), 100);
}

}  // namespace
}  // namespace aqua
