#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "networks/builtin.hpp"

namespace aqua::core {
namespace {

class ScenarioTest : public ::testing::Test {
 protected:
  hydraulics::Network net_ = networks::make_epa_net();
};

TEST_F(ScenarioTest, EventCountWithinConfiguredRange) {
  ScenarioConfig config;
  config.min_events = 2;
  config.max_events = 4;
  ScenarioGenerator generator(net_, config);
  std::set<std::size_t> seen_counts;
  for (int i = 0; i < 200; ++i) {
    const auto scenario = generator.next();
    EXPECT_GE(scenario.events.size(), 2u);
    EXPECT_LE(scenario.events.size(), 4u);
    seen_counts.insert(scenario.events.size());
  }
  EXPECT_EQ(seen_counts.size(), 3u);  // U(2,4) covers all three values
}

TEST_F(ScenarioTest, TruthMatchesEvents) {
  ScenarioGenerator generator(net_, {});
  const LabelSpace labels(net_);
  for (int i = 0; i < 50; ++i) {
    const auto scenario = generator.next();
    std::size_t positives = 0;
    for (auto t : scenario.truth) positives += t;
    EXPECT_EQ(positives, scenario.events.size());
    for (const auto& event : scenario.events) {
      EXPECT_EQ(scenario.truth[labels.label_of(event.node)], 1);
    }
  }
}

TEST_F(ScenarioTest, EventsShareStartTimeAndDistinctLocations) {
  ScenarioConfig config;
  config.min_events = 3;
  config.max_events = 5;
  ScenarioGenerator generator(net_, config);
  for (int i = 0; i < 50; ++i) {
    const auto scenario = generator.next();
    std::set<hydraulics::NodeId> nodes;
    for (const auto& event : scenario.events) {
      EXPECT_DOUBLE_EQ(event.start_time_s,
                       static_cast<double>(scenario.leak_slot) * 900.0);
      nodes.insert(event.node);
    }
    EXPECT_EQ(nodes.size(), scenario.events.size());  // concurrent leaks at distinct nodes
  }
}

TEST_F(ScenarioTest, LeakSizesWithinRange) {
  ScenarioConfig config;
  config.ec_min = 0.002;
  config.ec_max = 0.004;
  ScenarioGenerator generator(net_, config);
  for (int i = 0; i < 50; ++i) {
    for (const auto& event : generator.next().events) {
      EXPECT_GE(event.coefficient, 0.002);
      EXPECT_LE(event.coefficient, 0.004);
      EXPECT_DOUBLE_EQ(event.exponent, 0.5);
    }
  }
}

TEST_F(ScenarioTest, StartTimeFollowsConfiguredStep) {
  // The generator must lay event times out on the configured slot grid,
  // not a hardcoded 900 s one.
  ScenarioConfig config;
  config.hydraulic_step_s = 300.0;
  ScenarioGenerator generator(net_, config);
  for (int i = 0; i < 20; ++i) {
    const auto scenario = generator.next();
    for (const auto& event : scenario.events) {
      EXPECT_DOUBLE_EQ(event.start_time_s,
                       static_cast<double>(scenario.leak_slot) * 300.0);
    }
  }
}

TEST_F(ScenarioTest, LeakSlotWithinRange) {
  ScenarioConfig config;
  config.min_leak_slot = 5;
  config.max_leak_slot = 9;
  ScenarioGenerator generator(net_, config);
  for (int i = 0; i < 50; ++i) {
    const auto scenario = generator.next();
    EXPECT_GE(scenario.leak_slot, 5u);
    EXPECT_LE(scenario.leak_slot, 9u);
  }
}

TEST_F(ScenarioTest, WarmScenariosHaveNoFreeze) {
  ScenarioGenerator generator(net_, {});
  const auto scenario = generator.next();
  for (auto f : scenario.frozen) EXPECT_EQ(f, 0);
  EXPECT_GT(scenario.temperature_f, fusion::kFreezeThresholdF);
}

TEST_F(ScenarioTest, ColdScenariosFreezeLeakNodes) {
  ScenarioConfig config;
  config.cold_weather = true;
  ScenarioGenerator generator(net_, config);
  const LabelSpace labels(net_);
  for (int i = 0; i < 50; ++i) {
    const auto scenario = generator.next();
    EXPECT_LT(scenario.temperature_f, fusion::kFreezeThresholdF);
    // Every leaking node must be frozen (freeze-then-burst causality).
    for (const auto& event : scenario.events) {
      EXPECT_EQ(scenario.frozen[labels.label_of(event.node)], 1);
    }
    // And the overall freeze rate should be near p_freeze = 0.8.
    std::size_t frozen_count = 0;
    for (auto f : scenario.frozen) frozen_count += f;
    EXPECT_GT(frozen_count, scenario.frozen.size() / 2);
  }
}

TEST_F(ScenarioTest, DeterministicGivenSeed) {
  ScenarioConfig config;
  config.seed = 77;
  ScenarioGenerator a(net_, config), b(net_, config);
  for (int i = 0; i < 20; ++i) {
    const auto sa = a.next();
    const auto sb = b.next();
    EXPECT_EQ(sa.truth, sb.truth);
    EXPECT_EQ(sa.leak_slot, sb.leak_slot);
  }
}

TEST_F(ScenarioTest, GenerateBatch) {
  ScenarioGenerator generator(net_, {});
  const auto batch = generator.generate(25);
  EXPECT_EQ(batch.size(), 25u);
}

TEST_F(ScenarioTest, ConfigValidation) {
  ScenarioConfig config;
  config.min_events = 0;
  EXPECT_THROW(ScenarioGenerator(net_, config), InvalidArgument);
  config = {};
  config.max_events = 1000;  // more than junctions
  EXPECT_THROW(ScenarioGenerator(net_, config), InvalidArgument);
  config = {};
  config.min_leak_slot = 0;  // needs a predecessor sample
  EXPECT_THROW(ScenarioGenerator(net_, config), InvalidArgument);
  config = {};
  config.ec_min = -1.0;
  EXPECT_THROW(ScenarioGenerator(net_, config), InvalidArgument);
  config = {};
  config.hydraulic_step_s = 0.0;
  EXPECT_THROW(ScenarioGenerator(net_, config), InvalidArgument);
}

TEST(LabelSpace, BidirectionalMapping) {
  const auto net = networks::make_epa_net();
  const LabelSpace labels(net);
  EXPECT_EQ(labels.num_labels(), 91u);
  for (std::size_t l = 0; l < labels.num_labels(); ++l) {
    EXPECT_EQ(labels.label_of(labels.node_of(l)), l);
    EXPECT_TRUE(labels.has_label(labels.node_of(l)));
  }
  // Reservoirs and tanks carry no label.
  for (hydraulics::NodeId v = 0; v < net.num_nodes(); ++v) {
    if (net.node(v).has_fixed_head()) {
      EXPECT_FALSE(labels.has_label(v));
    }
  }
}

}  // namespace
}  // namespace aqua::core
