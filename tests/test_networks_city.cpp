// Tests for the parametric city generator (networks/generator.hpp):
// determinism, structure accounting, spec validation with strong exception
// safety, and hydraulic solvability of a small city.
#include "networks/generator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "hydraulics/network.hpp"
#include "hydraulics/solver.hpp"

namespace aqua::networks {
namespace {

using hydraulics::Network;
using hydraulics::NodeId;

CitySpec small_city_spec() {
  CitySpec spec;
  spec.district_rows = 2;
  spec.district_cols = 2;
  spec.district_grid = 7;  // 4 districts x 49 junctions
  spec.seed = 42;
  return spec;
}

TEST(CityGenerator, DeterministicBitIdentical) {
  Network first("city-a"), second("city-b");
  const CityNetwork ra = make_city(first, small_city_spec());
  const CityNetwork rb = make_city(second, small_city_spec());

  ASSERT_EQ(first.num_nodes(), second.num_nodes());
  ASSERT_EQ(first.num_links(), second.num_links());
  EXPECT_EQ(ra.num_junctions, rb.num_junctions);
  for (NodeId v = 0; v < first.num_nodes(); ++v) {
    const auto& a = first.node(v);
    const auto& b = second.node(v);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.type, b.type);
    // Bit-identical, not approximately equal: the generator must replay
    // the exact same RNG draws.
    EXPECT_EQ(a.x, b.x);
    EXPECT_EQ(a.y, b.y);
    EXPECT_EQ(a.elevation, b.elevation);
    EXPECT_EQ(a.base_demand, b.base_demand);
    EXPECT_EQ(a.demand_pattern, b.demand_pattern);
  }
  for (std::size_t l = 0; l < first.num_links(); ++l) {
    const auto& a = first.link(l);
    const auto& b = second.link(l);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.from, b.from);
    EXPECT_EQ(a.to, b.to);
    EXPECT_EQ(a.length, b.length);
    EXPECT_EQ(a.diameter, b.diameter);
    EXPECT_EQ(a.roughness, b.roughness);
  }
}

TEST(CityGenerator, SeedChangesTheCity) {
  Network first, second;
  auto spec = small_city_spec();
  make_city(first, spec);
  spec.seed = 43;
  make_city(second, spec);
  ASSERT_EQ(first.num_nodes(), second.num_nodes());  // structure counts match
  bool any_difference = false;
  for (NodeId v = 0; v < first.num_nodes() && !any_difference; ++v) {
    any_difference = first.node(v).x != second.node(v).x;
  }
  EXPECT_TRUE(any_difference);
}

TEST(CityGenerator, StructureCountsAddUp) {
  Network net;
  const auto spec = small_city_spec();
  const CityNetwork city = make_city(net, spec);

  const std::size_t districts = spec.district_rows * spec.district_cols;
  const std::size_t g = spec.district_grid;
  EXPECT_EQ(city.num_districts, districts);
  EXPECT_EQ(city.num_junctions, districts * g * g);
  EXPECT_EQ(city.num_reservoirs, districts);
  EXPECT_EQ(city.num_tanks, districts);
  // Macro-grid 4-neighborhood: rows*(cols-1) + (rows-1)*cols trunk mains.
  EXPECT_EQ(city.num_trunk_mains, spec.district_rows * (spec.district_cols - 1) +
                                      (spec.district_rows - 1) * spec.district_cols);

  EXPECT_EQ(net.num_nodes(), city.num_junctions + city.num_reservoirs + city.num_tanks);
  // Per district: skeleton pipes + reservoir feed + tank riser.
  EXPECT_EQ(net.num_links(), city.num_pipes + 2 * districts + city.num_trunk_mains);
  net.validate();
}

TEST(CityGenerator, RejectsBadSpecs) {
  Network net;
  CitySpec spec = small_city_spec();
  spec.district_grid = 3;
  EXPECT_THROW(make_city(net, spec), InvalidArgument);
  spec = small_city_spec();
  spec.district_rows = 0;
  EXPECT_THROW(make_city(net, spec), InvalidArgument);
  spec = small_city_spec();
  spec.loop_fraction = 1.5;
  EXPECT_THROW(make_city(net, spec), InvalidArgument);
}

TEST(GridSkeleton, ValidationHappensBeforeMutation) {
  // Strong exception safety: an infeasible spec must be rejected before the
  // first junction lands in the network.
  Network net("untouched");
  GridSkeletonSpec spec;
  spec.rows = 3;
  spec.cols = 3;
  spec.extra_loops = 1000;  // 3x3 grid has 12 candidate edges, needs 8 + 1000
  EXPECT_THROW(build_grid_skeleton(net, spec), InvalidArgument);
  EXPECT_EQ(net.num_nodes(), 0u);
  EXPECT_EQ(net.num_links(), 0u);

  spec.rows = 1;  // under the 2x2 minimum
  EXPECT_THROW(build_grid_skeleton(net, spec), InvalidArgument);
  EXPECT_EQ(net.num_nodes(), 0u);
}

TEST(GridSkeleton, HonorsOriginAndPrefixes) {
  Network net;
  GridSkeletonSpec spec;
  spec.rows = 3;
  spec.cols = 3;
  spec.extra_loops = 2;
  spec.origin_x_m = 5000.0;
  spec.origin_y_m = -2000.0;
  spec.jitter_frac = 0.0;
  spec.junction_prefix = "D7_J";
  spec.pipe_prefix = "D7_P";
  const GridSkeleton skeleton = build_grid_skeleton(net, spec);
  EXPECT_EQ(net.node(skeleton.grid_nodes.front()).name, "D7_J0_0");
  EXPECT_EQ(net.node(skeleton.grid_nodes.front()).x, 5000.0);
  EXPECT_EQ(net.node(skeleton.grid_nodes.front()).y, -2000.0);
  EXPECT_EQ(net.link(0).name, "D7_P0");
}

TEST(CityGenerator, SmallCitySolvesWithBothBackends) {
  Network net;
  make_city(net, small_city_spec());

  hydraulics::SolverOptions options;
  options.linear_solver = hydraulics::LinearSolver::kCholesky;
  const hydraulics::GgaSolver direct(net, options);
  const auto direct_state = direct.solve_snapshot();
  ASSERT_TRUE(direct_state.converged);

  options.linear_solver = hydraulics::LinearSolver::kIc0Cg;
  options.cg.tolerance = 1e-12;
  const hydraulics::GgaSolver iterative(net, options);
  const auto iter_state = iterative.solve_snapshot();
  ASSERT_TRUE(iter_state.converged);

  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    EXPECT_NEAR(direct_state.head[v], iter_state.head[v], 1e-6) << "head at node " << v;
  }
  // Gravity-fed design: every junction keeps positive service pressure.
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (!net.node(v).has_fixed_head()) {
      EXPECT_GT(direct_state.pressure[v], 0.0) << "pressure at node " << v;
    }
  }
}

TEST(CitySpecForNodes, HitsTargetWithinTolerance) {
  for (const std::size_t target : {1000u, 3000u, 10000u, 20000u, 50000u}) {
    const CitySpec spec = city_spec_for_nodes(target);
    const std::size_t districts = spec.district_rows * spec.district_cols;
    const std::size_t junctions = districts * spec.district_grid * spec.district_grid;
    const double ratio = static_cast<double>(junctions) / static_cast<double>(target);
    EXPECT_GT(ratio, 0.8) << "target " << target;
    EXPECT_LT(ratio, 1.25) << "target " << target;
  }
}

}  // namespace
}  // namespace aqua::networks
