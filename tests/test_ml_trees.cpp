#include "ml/binning.hpp"
#include "ml/decision_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace aqua::ml {
namespace {

/// Step-function data: y = 1 iff x0 > 0.5.
std::pair<linalg::Matrix, std::vector<double>> step_data(std::size_t n, Rng& rng) {
  linalg::Matrix x(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 3; ++c) x(i, c) = rng.uniform();
    y[i] = x(i, 0) > 0.5 ? 1.0 : 0.0;
  }
  return {std::move(x), std::move(y)};
}

TEST(RegressionTree, LearnsStepFunction) {
  Rng rng(1);
  const auto [x, y] = step_data(500, rng);
  RegressionTree tree;
  tree.fit(x, y);
  Rng test_rng(2);
  const auto [tx, ty] = step_data(200, test_rng);
  int correct = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    correct += ((tree.predict(tx.row(i)) > 0.5) == (ty[i] > 0.5));
  }
  EXPECT_GT(correct, 195);
}

TEST(RegressionTree, BinnedLearnsStepFunction) {
  Rng rng(3);
  const auto [x, y] = step_data(500, rng);
  FeatureBinning binning;
  binning.fit(x);
  RegressionTree tree;
  tree.fit_binned(binning, y);
  Rng test_rng(4);
  const auto [tx, ty] = step_data(200, test_rng);
  int correct = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    correct += ((tree.predict(tx.row(i)) > 0.5) == (ty[i] > 0.5));
  }
  EXPECT_GT(correct, 190);
}

TEST(RegressionTree, ExactAndBinnedAgreeOnPredictions) {
  Rng rng(5);
  const auto [x, y] = step_data(400, rng);
  RegressionTree exact, binned;
  exact.fit(x, y);
  FeatureBinning binning;
  binning.fit(x);
  binned.fit_binned(binning, y);
  int agree = 0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    agree += ((exact.predict(x.row(i)) > 0.5) == (binned.predict(x.row(i)) > 0.5));
  }
  EXPECT_GT(agree, 390);
}

TEST(RegressionTree, ConstantTargetsYieldSingleLeaf) {
  linalg::Matrix x(10, 2, 1.0);
  std::vector<double> y(10, 0.7);
  RegressionTree tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_NEAR(tree.predict(x.row(0)), 0.7, 1e-12);
}

TEST(RegressionTree, RespectsMaxDepth) {
  Rng rng(6);
  const auto [x, y] = step_data(500, rng);
  TreeConfig config;
  config.max_depth = 2;
  RegressionTree tree(config);
  tree.fit(x, y);
  EXPECT_LE(tree.depth(), 3u);  // root at depth 1 + 2 levels
}

TEST(RegressionTree, MinSamplesLeafLimitsGrowth) {
  Rng rng(7);
  const auto [x, y] = step_data(100, rng);
  TreeConfig config;
  config.min_samples_leaf = 40;
  RegressionTree tree(config);
  tree.fit(x, y);
  EXPECT_LE(tree.node_count(), 5u);
}

TEST(RegressionTree, WeightsShiftLeafValues) {
  // Two clusters of equal size; weighting one up moves the root mean.
  linalg::Matrix x(4, 1);
  x(0, 0) = x(1, 0) = 0.0;
  x(2, 0) = x(3, 0) = 0.0;  // constant feature -> single leaf
  std::vector<double> y{0.0, 0.0, 1.0, 1.0};
  std::vector<double> w{1.0, 1.0, 3.0, 3.0};
  RegressionTree tree;
  tree.fit(x, y, w);
  EXPECT_NEAR(tree.predict(x.row(0)), 0.75, 1e-12);
}

TEST(RegressionTree, HessianNewtonLeaves) {
  linalg::Matrix x(2, 1, 0.0);
  std::vector<double> residual{0.4, 0.4};
  std::vector<double> hessian{0.2, 0.2};
  RegressionTree tree;
  tree.fit(x, residual, {}, {}, hessian);
  EXPECT_NEAR(tree.predict(x.row(0)), 0.4 / 0.2, 1e-9);
}

TEST(RegressionTree, SampleIndicesSubsetOnly) {
  linalg::Matrix x(4, 1);
  for (std::size_t i = 0; i < 4; ++i) x(i, 0) = static_cast<double>(i);
  std::vector<double> y{0.0, 0.0, 1.0, 1.0};
  std::vector<std::size_t> rows{0, 1};  // only the zeros
  RegressionTree tree;
  tree.fit(x, y, {}, rows);
  EXPECT_NEAR(tree.predict(x.row(3)), 0.0, 1e-12);
}

TEST(RegressionTree, PredictBeforeFitThrows) {
  RegressionTree tree;
  std::vector<double> x{1.0};
  EXPECT_THROW(tree.predict(x), InvalidArgument);
}

TEST(FeatureBinning, CodesAreOrderConsistent) {
  linalg::Matrix x(100, 1);
  Rng rng(8);
  for (std::size_t i = 0; i < 100; ++i) x(i, 0) = rng.uniform();
  FeatureBinning binning;
  binning.fit(x, 16);
  for (std::size_t i = 0; i < 99; ++i) {
    for (std::size_t j = i + 1; j < 100; ++j) {
      if (x(i, 0) < x(j, 0)) {
        EXPECT_LE(binning.code(i, 0), binning.code(j, 0));
      }
    }
  }
}

TEST(FeatureBinning, ConstantFeatureSingleBin) {
  linalg::Matrix x(10, 1, 3.0);
  FeatureBinning binning;
  binning.fit(x);
  EXPECT_EQ(binning.bins(0), 1u);
}

TEST(FeatureBinning, BinCountBounded) {
  linalg::Matrix x(1000, 1);
  Rng rng(9);
  for (std::size_t i = 0; i < 1000; ++i) x(i, 0) = rng.uniform();
  FeatureBinning binning;
  binning.fit(x, 32);
  EXPECT_LE(binning.bins(0), 32u);
  EXPECT_GT(binning.bins(0), 16u);  // plenty of distinct values
}

TEST(FeatureBinning, Validation) {
  FeatureBinning binning;
  linalg::Matrix empty(0, 0);
  EXPECT_THROW(binning.fit(empty), InvalidArgument);
  linalg::Matrix x(5, 1, 1.0);
  EXPECT_THROW(binning.fit(x, 1), InvalidArgument);
  EXPECT_THROW(binning.fit(x, 256), InvalidArgument);  // uint8 codes cap at 255 bins
}

TEST(BinnedDataset, MatchesFeatureBinningCodesAndCuts) {
  Rng rng(41);
  const auto [x, y] = step_data(300, rng);
  (void)y;
  FeatureBinning reference;
  reference.fit(x);
  BinnedDataset store;
  store.fit(x);
  ASSERT_EQ(store.num_samples(), reference.num_samples());
  ASSERT_EQ(store.num_features(), reference.num_features());
  for (std::size_t f = 0; f < store.num_features(); ++f) {
    ASSERT_EQ(store.bins(f), reference.bins(f));
    for (std::size_t b = 0; b + 1 < store.bins(f); ++b) {
      EXPECT_EQ(store.upper_boundary(f, b), reference.upper_boundary(f, b));
    }
    const auto column = store.column(f);
    for (std::size_t r = 0; r < store.num_samples(); ++r) {
      EXPECT_EQ(column[r], reference.code(r, f));
      EXPECT_EQ(store.code(r, f), reference.code(r, f));
    }
  }
}

TEST(BinnedDataset, ParallelEqualsSerialFit) {
  Rng rng(42);
  const auto [x, y] = step_data(400, rng);
  (void)y;
  BinnedDataset serial, parallel;
  serial.fit(x, BinnedDataset::kDefaultBins, /*parallel=*/false);
  parallel.fit(x, BinnedDataset::kDefaultBins, /*parallel=*/true);
  ASSERT_EQ(serial.num_features(), parallel.num_features());
  for (std::size_t f = 0; f < serial.num_features(); ++f) {
    ASSERT_EQ(serial.bins(f), parallel.bins(f));
    EXPECT_EQ(serial.cuts(f), parallel.cuts(f));
    const auto a = serial.column(f);
    const auto b = parallel.column(f);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST(BinnedDataset, SupportsFullUint8BinRange) {
  // 255 bins on a column with 1000 distinct values: codes use the full
  // uint8 range and decode back to monotone bin membership.
  linalg::Matrix x(1000, 1);
  Rng rng(43);
  for (std::size_t r = 0; r < 1000; ++r) x(r, 0) = static_cast<double>(r) + rng.uniform();
  BinnedDataset store;
  store.fit(x, BinnedDataset::kMaxBins);
  EXPECT_GT(store.bins(0), 200u);
  EXPECT_LE(store.bins(0), 255u);
  for (std::size_t r = 0; r + 1 < 1000; ++r) {
    EXPECT_LE(store.code(r, 0), store.code(r + 1, 0));  // sorted input -> monotone codes
  }
}

TEST(RegressionTree, StoreKernelLearnsStepFunction) {
  Rng rng(45);
  const auto [x, y] = step_data(500, rng);
  BinnedDataset store;
  store.fit(x);
  RegressionTree tree;
  tree.fit_binned(store, y);
  Rng test_rng(46);
  const auto [tx, ty] = step_data(200, test_rng);
  int correct = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    correct += ((tree.predict(tx.row(i)) > 0.5) == (ty[i] > 0.5));
  }
  EXPECT_GT(correct, 190);
}

TEST(RegressionTree, StoreKernelMatchesReferenceBinnedKernel) {
  // The column-block kernel and the row-major reference kernel search the
  // same bin boundaries with the same tie-breaking, so on identical
  // binnings they grow the same splits; leaf values may differ only by
  // summation-order rounding (stable vs unstable partition).
  Rng rng(47);
  const auto [x, y] = step_data(400, rng);
  std::vector<double> weights(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) weights[i] = 0.5 + rng.uniform();
  FeatureBinning binning;
  binning.fit(x);
  BinnedDataset store;
  store.fit(x);
  RegressionTree reference, fast;
  reference.fit_binned(binning, y, weights);
  fast.fit_binned(store, y, weights);
  Rng test_rng(48);
  const auto [tx, ty] = step_data(200, test_rng);
  (void)ty;
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_NEAR(fast.predict(tx.row(i)), reference.predict(tx.row(i)), 1e-9);
  }
}

TEST(RegressionTree, StoreLeafOfRowMatchesPredictBitwise) {
  // With weights, hessians, and a strict row subsample: every row of the
  // store — sampled or not — must land on the leaf whose value equals
  // predict() exactly.
  Rng rng(49);
  const auto [x, y] = step_data(400, rng);
  std::vector<double> weights(x.rows()), hessians(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    weights[i] = 0.5 + rng.uniform();
    hessians[i] = 0.1 + rng.uniform();
  }
  const auto rows = rng.sample_without_replacement(x.rows(), x.rows() / 2);
  BinnedDataset store;
  store.fit(x);
  RegressionTree tree;
  std::vector<std::int32_t> leaf_of_row;
  tree.fit_binned(store, y, weights, rows, hessians, &leaf_of_row);
  ASSERT_EQ(leaf_of_row.size(), x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    ASSERT_GE(leaf_of_row[i], 0);
    EXPECT_EQ(tree.leaf_value(static_cast<std::size_t>(leaf_of_row[i])), tree.predict(x.row(i)));
  }
}

TEST(RegressionTree, StoreKernelWithFeatureSubsampling) {
  // RF mode: max_features < d disables the subtraction trick; leaf
  // reporting must still be exact.
  Rng rng(51);
  const auto [x, y] = step_data(400, rng);
  BinnedDataset store;
  store.fit(x);
  TreeConfig config;
  config.max_features = 1;
  config.seed = 7;
  RegressionTree tree(config);
  std::vector<std::int32_t> leaf_of_row;
  tree.fit_binned(store, y, {}, {}, {}, &leaf_of_row);
  ASSERT_TRUE(tree.fitted());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_EQ(tree.leaf_value(static_cast<std::size_t>(leaf_of_row[i])), tree.predict(x.row(i)));
  }
}

TEST(RegressionTree, StoreValidation) {
  RegressionTree tree;
  BinnedDataset store;
  std::vector<double> y(5, 0.0);
  EXPECT_THROW(tree.fit_binned(store, y), InvalidArgument);  // unfitted store
  linalg::Matrix x(5, 2);
  Rng rng(52);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 2; ++c) x(r, c) = rng.uniform();
  store.fit(x);
  std::vector<double> short_y(3, 0.0);
  EXPECT_THROW(tree.fit_binned(store, short_y), InvalidArgument);  // row mismatch
}

}  // namespace
}  // namespace aqua::ml
