#include "ml/binning.hpp"
#include "ml/decision_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace aqua::ml {
namespace {

/// Step-function data: y = 1 iff x0 > 0.5.
std::pair<linalg::Matrix, std::vector<double>> step_data(std::size_t n, Rng& rng) {
  linalg::Matrix x(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 3; ++c) x(i, c) = rng.uniform();
    y[i] = x(i, 0) > 0.5 ? 1.0 : 0.0;
  }
  return {std::move(x), std::move(y)};
}

TEST(RegressionTree, LearnsStepFunction) {
  Rng rng(1);
  const auto [x, y] = step_data(500, rng);
  RegressionTree tree;
  tree.fit(x, y);
  Rng test_rng(2);
  const auto [tx, ty] = step_data(200, test_rng);
  int correct = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    correct += ((tree.predict(tx.row(i)) > 0.5) == (ty[i] > 0.5));
  }
  EXPECT_GT(correct, 195);
}

TEST(RegressionTree, BinnedLearnsStepFunction) {
  Rng rng(3);
  const auto [x, y] = step_data(500, rng);
  FeatureBinning binning;
  binning.fit(x);
  RegressionTree tree;
  tree.fit_binned(binning, y);
  Rng test_rng(4);
  const auto [tx, ty] = step_data(200, test_rng);
  int correct = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    correct += ((tree.predict(tx.row(i)) > 0.5) == (ty[i] > 0.5));
  }
  EXPECT_GT(correct, 190);
}

TEST(RegressionTree, ExactAndBinnedAgreeOnPredictions) {
  Rng rng(5);
  const auto [x, y] = step_data(400, rng);
  RegressionTree exact, binned;
  exact.fit(x, y);
  FeatureBinning binning;
  binning.fit(x);
  binned.fit_binned(binning, y);
  int agree = 0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    agree += ((exact.predict(x.row(i)) > 0.5) == (binned.predict(x.row(i)) > 0.5));
  }
  EXPECT_GT(agree, 390);
}

TEST(RegressionTree, ConstantTargetsYieldSingleLeaf) {
  linalg::Matrix x(10, 2, 1.0);
  std::vector<double> y(10, 0.7);
  RegressionTree tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_NEAR(tree.predict(x.row(0)), 0.7, 1e-12);
}

TEST(RegressionTree, RespectsMaxDepth) {
  Rng rng(6);
  const auto [x, y] = step_data(500, rng);
  TreeConfig config;
  config.max_depth = 2;
  RegressionTree tree(config);
  tree.fit(x, y);
  EXPECT_LE(tree.depth(), 3u);  // root at depth 1 + 2 levels
}

TEST(RegressionTree, MinSamplesLeafLimitsGrowth) {
  Rng rng(7);
  const auto [x, y] = step_data(100, rng);
  TreeConfig config;
  config.min_samples_leaf = 40;
  RegressionTree tree(config);
  tree.fit(x, y);
  EXPECT_LE(tree.node_count(), 5u);
}

TEST(RegressionTree, WeightsShiftLeafValues) {
  // Two clusters of equal size; weighting one up moves the root mean.
  linalg::Matrix x(4, 1);
  x(0, 0) = x(1, 0) = 0.0;
  x(2, 0) = x(3, 0) = 0.0;  // constant feature -> single leaf
  std::vector<double> y{0.0, 0.0, 1.0, 1.0};
  std::vector<double> w{1.0, 1.0, 3.0, 3.0};
  RegressionTree tree;
  tree.fit(x, y, w);
  EXPECT_NEAR(tree.predict(x.row(0)), 0.75, 1e-12);
}

TEST(RegressionTree, HessianNewtonLeaves) {
  linalg::Matrix x(2, 1, 0.0);
  std::vector<double> residual{0.4, 0.4};
  std::vector<double> hessian{0.2, 0.2};
  RegressionTree tree;
  tree.fit(x, residual, {}, {}, hessian);
  EXPECT_NEAR(tree.predict(x.row(0)), 0.4 / 0.2, 1e-9);
}

TEST(RegressionTree, SampleIndicesSubsetOnly) {
  linalg::Matrix x(4, 1);
  for (std::size_t i = 0; i < 4; ++i) x(i, 0) = static_cast<double>(i);
  std::vector<double> y{0.0, 0.0, 1.0, 1.0};
  std::vector<std::size_t> rows{0, 1};  // only the zeros
  RegressionTree tree;
  tree.fit(x, y, {}, rows);
  EXPECT_NEAR(tree.predict(x.row(3)), 0.0, 1e-12);
}

TEST(RegressionTree, PredictBeforeFitThrows) {
  RegressionTree tree;
  std::vector<double> x{1.0};
  EXPECT_THROW(tree.predict(x), InvalidArgument);
}

TEST(FeatureBinning, CodesAreOrderConsistent) {
  linalg::Matrix x(100, 1);
  Rng rng(8);
  for (std::size_t i = 0; i < 100; ++i) x(i, 0) = rng.uniform();
  FeatureBinning binning;
  binning.fit(x, 16);
  for (std::size_t i = 0; i < 99; ++i) {
    for (std::size_t j = i + 1; j < 100; ++j) {
      if (x(i, 0) < x(j, 0)) {
        EXPECT_LE(binning.code(i, 0), binning.code(j, 0));
      }
    }
  }
}

TEST(FeatureBinning, ConstantFeatureSingleBin) {
  linalg::Matrix x(10, 1, 3.0);
  FeatureBinning binning;
  binning.fit(x);
  EXPECT_EQ(binning.bins(0), 1u);
}

TEST(FeatureBinning, BinCountBounded) {
  linalg::Matrix x(1000, 1);
  Rng rng(9);
  for (std::size_t i = 0; i < 1000; ++i) x(i, 0) = rng.uniform();
  FeatureBinning binning;
  binning.fit(x, 32);
  EXPECT_LE(binning.bins(0), 32u);
  EXPECT_GT(binning.bins(0), 16u);  // plenty of distinct values
}

TEST(FeatureBinning, Validation) {
  FeatureBinning binning;
  linalg::Matrix empty(0, 0);
  EXPECT_THROW(binning.fit(empty), InvalidArgument);
  linalg::Matrix x(5, 1, 1.0);
  EXPECT_THROW(binning.fit(x, 1), InvalidArgument);
  EXPECT_THROW(binning.fit(x, 100), InvalidArgument);
}

}  // namespace
}  // namespace aqua::ml
