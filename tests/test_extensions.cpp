// Tests for the future-work extensions implemented beyond the paper's
// evaluated system: the Markov-chain weather model (Sec. III-C future
// work), greedy sensor-placement optimization (Sec. IV-A future work) and
// confidence-gated human tuning (Eq. 3 integrated into Algorithm 2).
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "core/aquascale.hpp"

namespace aqua {
namespace {

TEST(MarkovWeather, SnapsAreTemporallyClustered) {
  const fusion::TemperatureModel seasonal;
  const fusion::MarkovWeatherModel model(seasonal);
  const auto series = model.sample_series_f(2000);
  // Count cold days and cold->cold transitions within winter-ish spells.
  std::size_t cold = 0, cold_after_cold = 0, cold_after_warm = 0;
  for (std::size_t d = 1; d < series.size(); ++d) {
    const bool was_cold = series[d - 1] < fusion::kFreezeThresholdF;
    const bool is_cold = series[d] < fusion::kFreezeThresholdF;
    cold += is_cold;
    if (is_cold && was_cold) ++cold_after_cold;
    if (is_cold && !was_cold) ++cold_after_warm;
  }
  ASSERT_GT(cold, 20u);
  // Persistence: a cold day is more likely after a cold day than a warm
  // one (the whole point of the Markov extension).
  EXPECT_GT(cold_after_cold, cold_after_warm / 2);
}

TEST(MarkovWeather, StationaryProbabilityFormula) {
  fusion::MarkovWeatherConfig config;
  config.p_enter_snap = 0.1;
  config.p_exit_snap = 0.4;
  const fusion::MarkovWeatherModel model(fusion::TemperatureModel{}, config);
  EXPECT_NEAR(model.stationary_snap_probability(), 0.2, 1e-12);
  EXPECT_NEAR(model.mean_snap_length_days(), 2.5, 1e-12);
}

TEST(MarkovWeather, DeterministicSeries) {
  const fusion::MarkovWeatherModel model(fusion::TemperatureModel{});
  EXPECT_EQ(model.sample_series_f(100), model.sample_series_f(100));
}

TEST(MarkovWeather, Validation) {
  fusion::MarkovWeatherConfig config;
  config.p_enter_snap = 0.0;
  EXPECT_THROW(fusion::MarkovWeatherModel(fusion::TemperatureModel{}, config), InvalidArgument);
  config.p_enter_snap = 0.1;
  config.p_exit_snap = 1.0;
  EXPECT_THROW(fusion::MarkovWeatherModel(fusion::TemperatureModel{}, config), InvalidArgument);
}

class GreedyPlacementTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new hydraulics::Network(networks::make_epa_net());
    core::ScenarioConfig config;
    config.min_events = 1;
    config.max_events = 2;
    config.seed = 99;
    core::ScenarioGenerator generator(*net_, config);
    scenarios_ = new std::vector<core::LeakScenario>(generator.generate(40));
    batch_ = new core::SnapshotBatch(*net_, *scenarios_, {1});
  }
  static void TearDownTestSuite() {
    delete batch_;
    delete scenarios_;
    delete net_;
    batch_ = nullptr;
    scenarios_ = nullptr;
    net_ = nullptr;
  }
  static hydraulics::Network* net_;
  static std::vector<core::LeakScenario>* scenarios_;
  static core::SnapshotBatch* batch_;
};

hydraulics::Network* GreedyPlacementTest::net_ = nullptr;
std::vector<core::LeakScenario>* GreedyPlacementTest::scenarios_ = nullptr;
core::SnapshotBatch* GreedyPlacementTest::batch_ = nullptr;

TEST_F(GreedyPlacementTest, ReturnsRequestedCount) {
  const auto result = core::place_sensors_greedy(*batch_, 8);
  EXPECT_EQ(result.sensors.size(), 8u);
  EXPECT_EQ(result.coverage_curve.size(), 8u);
  EXPECT_EQ(result.total_scenarios, scenarios_->size());
}

TEST_F(GreedyPlacementTest, CoverageCurveIsMonotone) {
  const auto result = core::place_sensors_greedy(*batch_, 12);
  for (std::size_t i = 1; i < result.coverage_curve.size(); ++i) {
    EXPECT_GE(result.coverage_curve[i], result.coverage_curve[i - 1]);
  }
  EXPECT_LE(result.coverage_curve.back(), scenarios_->size());
}

TEST_F(GreedyPlacementTest, FirstPickCoversManyScenarios) {
  const auto result = core::place_sensors_greedy(*batch_, 1);
  // A single well-placed sensor should detect a sizeable share of 1-2 leak
  // scenarios (flow meters near sources see every draw change).
  EXPECT_GT(result.coverage_curve[0], scenarios_->size() / 4);
}

TEST_F(GreedyPlacementTest, Deterministic) {
  const auto a = core::place_sensors_greedy(*batch_, 6);
  const auto b = core::place_sensors_greedy(*batch_, 6);
  ASSERT_EQ(a.sensors.size(), b.sensors.size());
  for (std::size_t i = 0; i < a.sensors.size(); ++i) {
    EXPECT_EQ(a.sensors.sensors[i].name, b.sensors.sensors[i].name);
  }
}

TEST_F(GreedyPlacementTest, SensorsAreDistinct) {
  const auto result = core::place_sensors_greedy(*batch_, 10);
  std::set<std::string> names;
  for (const auto& s : result.sensors.sensors) names.insert(s.name);
  EXPECT_EQ(names.size(), 10u);
}

TEST(ConfidenceGatedTuning, LowConfidenceCliquesAreSkipped) {
  fusion::Beliefs beliefs;
  beliefs.p_leak = {0.3, 0.3};
  // Clique 0 has one supporting tweet (confidence 0.7), clique 1 has four
  // (confidence ~0.992).
  const std::vector<fusion::LabelClique> cliques{{{0}, 0.7}, {{1}, 0.992}};
  fusion::Beliefs gated = beliefs;
  const auto result = fusion::apply_human_tuning(gated, cliques, 0.0, 0.9);
  EXPECT_EQ(result.added_labels, std::vector<std::size_t>{1});
  EXPECT_EQ(result.cliques_determinate, 1u);  // the low-confidence one
  EXPECT_DOUBLE_EQ(gated.p_leak[0], 0.3);     // untouched
  EXPECT_DOUBLE_EQ(gated.p_leak[1], 1.0);
  // With the default threshold (0), both cliques act — paper behavior.
  fusion::Beliefs open = beliefs;
  const auto all = fusion::apply_human_tuning(open, cliques, 0.0);
  EXPECT_EQ(all.added_labels.size(), 2u);
}

}  // namespace
}  // namespace aqua
