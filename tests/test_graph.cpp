#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "graph/shortest_path.hpp"

namespace aqua::graph {
namespace {

Graph diamond() {
  // 0 -1- 1 -1- 3, 0 -1- 2 -5- 3: shortest 0->3 is via 1 (length 2).
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 5.0);
  return g;
}

TEST(Graph, EdgeAndNeighborBookkeeping) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 1, 2.5);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge(e).weight, 2.5);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0].neighbor, 1u);
  EXPECT_EQ(g.neighbors(1)[0].neighbor, 0u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(Graph, ParallelEdgesAllowed) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 2.0);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Graph, SelfLoopCountsOnce) {
  Graph g(1);
  g.add_edge(0, 0, 1.0);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, RejectsBadEndpoints) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 2, 1.0), InvalidArgument);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), InvalidArgument);
}

TEST(Graph, ConnectedComponents) {
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(3, 4, 1.0);
  const auto [labels, count] = g.connected_components();
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_FALSE(g.is_connected());
}

TEST(Graph, SingleComponentIsConnected) {
  EXPECT_TRUE(diamond().is_connected());
}

TEST(Graph, EmptyGraphIsConnected) {
  Graph g(0);
  EXPECT_TRUE(g.is_connected());
}

TEST(Dijkstra, FindsShortestDistances) {
  const Graph g = diamond();
  const auto paths = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(paths.distance[0], 0.0);
  EXPECT_DOUBLE_EQ(paths.distance[1], 1.0);
  EXPECT_DOUBLE_EQ(paths.distance[2], 1.0);
  EXPECT_DOUBLE_EQ(paths.distance[3], 2.0);
}

TEST(Dijkstra, ExtractsPath) {
  const Graph g = diamond();
  const auto paths = dijkstra(g, 0);
  const auto path = extract_path(paths, 0, 3);
  EXPECT_EQ(path, (std::vector<VertexId>{0, 1, 3}));
}

TEST(Dijkstra, UnreachableIsInfinite) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const auto paths = dijkstra(g, 0);
  EXPECT_EQ(paths.distance[2], kUnreachable);
  EXPECT_TRUE(extract_path(paths, 0, 2).empty());
}

TEST(Dijkstra, PrefersMultiHopWhenCheaper) {
  Graph g(3);
  g.add_edge(0, 2, 10.0);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  const auto paths = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(paths.distance[2], 5.0);
}

TEST(Dijkstra, SourceOutOfRangeThrows) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW(dijkstra(g, 5), InvalidArgument);
}

TEST(AllPairs, SymmetricOnUndirectedGraph) {
  const Graph g = diamond();
  const auto d = all_pairs_distances(g);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_DOUBLE_EQ(d[u][v], d[v][u]);
    }
  }
  EXPECT_DOUBLE_EQ(d[2][1], 2.0);
}

}  // namespace
}  // namespace aqua::graph
