#include "flood/flood_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "flood/dem.hpp"
#include "networks/builtin.hpp"

namespace aqua::flood {
namespace {

TEST(Dem, CoversNetworkBoundingBox) {
  const auto net = networks::make_wssc_subnet();
  const Dem dem(net, 40, 40, 100.0);
  EXPECT_EQ(dem.rows(), 40u);
  EXPECT_EQ(dem.cols(), 40u);
  EXPECT_GT(dem.cell_size_x(), 0.0);
  // Every junction falls inside the grid.
  for (const auto v : net.junction_ids()) {
    const auto [r, c] = dem.cell_of(net.node(v).x, net.node(v).y);
    EXPECT_LT(r, dem.rows());
    EXPECT_LT(c, dem.cols());
  }
}

TEST(Dem, InterpolatesNearNodeElevations) {
  const auto net = networks::make_wssc_subnet();
  const Dem dem(net, 60, 60, 50.0);
  // At a junction's own cell the IDW estimate should be close to the
  // junction elevation.
  double worst = 0.0;
  for (const auto v : net.junction_ids()) {
    const auto& node = net.node(v);
    const auto [r, c] = dem.cell_of(node.x, node.y);
    worst = std::max(worst, std::abs(dem.elevation(r, c) - node.elevation));
  }
  EXPECT_LT(worst, 8.0);  // within the local terrain relief
}

TEST(Dem, ElevationRangeIsSane) {
  const auto net = networks::make_wssc_subnet();
  const Dem dem(net, 30, 30);
  EXPECT_GT(dem.min_elevation(), -10.0);
  EXPECT_LT(dem.max_elevation(), 100.0);
  EXPECT_LT(dem.min_elevation(), dem.max_elevation());
}

TEST(Dem, CellOfClampsOutOfRange) {
  const auto net = networks::make_epa_net();
  const Dem dem(net, 10, 10);
  const auto [r, c] = dem.cell_of(-1e9, 1e9);
  EXPECT_EQ(c, 0u);
  EXPECT_EQ(r, 9u);
}

TEST(Dem, Validation) {
  const auto net = networks::make_epa_net();
  EXPECT_THROW(Dem(net, 1, 10), InvalidArgument);
}

class FloodTest : public ::testing::Test {
 protected:
  FloodTest() : net_(networks::make_wssc_subnet()), dem_(net_, 50, 50, 80.0) {}

  FloodSource source_at_junction(std::size_t index, double rate) const {
    const auto v = net_.junction_ids()[index];
    return {net_.node(v).x, net_.node(v).y, rate};
  }

  hydraulics::Network net_;
  Dem dem_;
};

TEST_F(FloodTest, NoSourcesNoWater) {
  FloodOptions options;
  options.duration_s = 600.0;
  const auto result = simulate_flood(dem_, {}, options);
  EXPECT_DOUBLE_EQ(result.max_depth(), 0.0);
  EXPECT_EQ(result.wet_cells(), 0u);
}

TEST_F(FloodTest, MassIsConserved) {
  FloodOptions options;
  options.duration_s = 1800.0;
  options.time_step_s = 2.0;
  const double rate = 0.05;
  const auto result = simulate_flood(dem_, {source_at_junction(100, rate)}, options);
  const double injected = rate * options.duration_s;
  const double ponded = result.total_volume(dem_.cell_size_x() * dem_.cell_size_y());
  EXPECT_NEAR(ponded, injected, 0.005 * injected);
}

TEST_F(FloodTest, FloodSpreadsFromSource) {
  FloodOptions options;
  options.duration_s = 1800.0;
  const auto result = simulate_flood(dem_, {source_at_junction(100, 0.05)}, options);
  EXPECT_GT(result.wet_cells(0.005), 3u);  // more than just the source cell
  EXPECT_GT(result.max_depth(), 0.0);
}

TEST_F(FloodTest, BiggerLeakFloodsMore) {
  FloodOptions options;
  options.duration_s = 1200.0;
  const auto small = simulate_flood(dem_, {source_at_junction(50, 0.01)}, options);
  const auto large = simulate_flood(dem_, {source_at_junction(50, 0.08)}, options);
  EXPECT_GT(large.wet_cells(0.01), small.wet_cells(0.01));
  EXPECT_GT(large.max_depth(), small.max_depth());
}

TEST_F(FloodTest, TwoSourcesBothFlood) {
  FloodOptions options;
  options.duration_s = 1200.0;
  const auto result = simulate_flood(
      dem_, {source_at_junction(20, 0.04), source_at_junction(250, 0.04)}, options);
  // Both source cells are wet.
  const auto v1 = net_.junction_ids()[20];
  const auto v2 = net_.junction_ids()[250];
  const auto [r1, c1] = dem_.cell_of(net_.node(v1).x, net_.node(v1).y);
  const auto [r2, c2] = dem_.cell_of(net_.node(v2).x, net_.node(v2).y);
  EXPECT_GT(result.depth(r1, c1), 0.0);
  EXPECT_GT(result.depth(r2, c2), 0.0);
}

TEST_F(FloodTest, WaterPondsDownhill) {
  // The deepest water should not sit above the source's water surface:
  // max-depth cell's surface must be <= source cell surface + epsilon.
  FloodOptions options;
  options.duration_s = 2400.0;
  const auto source = source_at_junction(150, 0.06);
  const auto result = simulate_flood(dem_, {source}, options);
  const auto [sr, sc] = dem_.cell_of(source.x, source.y);
  double deepest_surface = -1e18;
  for (std::size_t r = 0; r < dem_.rows(); ++r) {
    for (std::size_t c = 0; c < dem_.cols(); ++c) {
      if (result.depth(r, c) > 0.01) {
        deepest_surface = std::max(deepest_surface, dem_.elevation(r, c));
      }
    }
  }
  // Wet cells must be at or below the source surface elevation (water does
  // not climb hills).
  EXPECT_LE(deepest_surface,
            dem_.elevation(sr, sc) + result.depth(sr, sc) + 0.5);
}

TEST_F(FloodTest, InfiltrationDrainsWater) {
  FloodOptions wet_options;
  wet_options.duration_s = 1200.0;
  FloodOptions draining = wet_options;
  draining.infiltration_m_per_s = 1e-5;
  const auto source = source_at_junction(60, 0.03);
  const auto wet = simulate_flood(dem_, {source}, wet_options);
  const auto drained = simulate_flood(dem_, {source}, draining);
  const double area = dem_.cell_size_x() * dem_.cell_size_y();
  EXPECT_LT(drained.total_volume(area), wet.total_volume(area));
}

TEST_F(FloodTest, Validation) {
  FloodOptions bad;
  bad.time_step_s = 0.0;
  EXPECT_THROW(simulate_flood(dem_, {}, bad), InvalidArgument);
  FloodOptions options;
  EXPECT_THROW(simulate_flood(dem_, {{0.0, 0.0, -1.0}}, options), InvalidArgument);
}

}  // namespace
}  // namespace aqua::flood
