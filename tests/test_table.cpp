#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace aqua {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.5"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 2.5   |"), std::string::npos);
}

TEST(Table, SeparatorMatchesWidths) {
  Table t({"a"});
  t.add_row({"xyz"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("|-----|"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, RejectsEmptyHeaders) { EXPECT_THROW(Table({}), InvalidArgument); }

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(-0.5, 3), "-0.500");
}

TEST(Table, EmptyTableStillRendersHeader) {
  Table t({"col"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("col"), std::string::npos);
}

}  // namespace
}  // namespace aqua
