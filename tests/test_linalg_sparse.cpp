#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "common/error.hpp"
#include "linalg/solvers.hpp"
#include "linalg/sparse.hpp"

namespace aqua::linalg {
namespace {

CsrMatrix laplacian_chain(std::size_t n) {
  // Tridiagonal SPD: 2 on diagonal (+1 at ends), -1 off-diagonal... use
  // 2I - offdiag with Dirichlet-like ends (diag 2 everywhere) -> SPD.
  CooBuilder builder(n);
  for (std::size_t i = 0; i < n; ++i) builder.add(i, i, 2.0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    builder.add(i, i + 1, -1.0);
    builder.add(i + 1, i, -1.0);
  }
  return builder.build();
}

TEST(CooBuilder, MergesDuplicates) {
  CooBuilder builder(2);
  builder.add(0, 0, 1.0);
  builder.add(0, 0, 2.5);
  builder.add(1, 0, -1.0);
  const CsrMatrix m = builder.build();
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.value_or_zero(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(m.value_or_zero(1, 0), -1.0);
}

TEST(CooBuilder, RejectsOutOfRange) {
  CooBuilder builder(2);
  EXPECT_THROW(builder.add(2, 0, 1.0), InvalidArgument);
}

TEST(CsrMatrix, MultiplyMatchesDense) {
  const CsrMatrix m = laplacian_chain(4);
  const auto y = m.multiply(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  // Row 0: 2*1 - 2 = 0; row 1: -1 + 4 - 3 = 0; row 2: -2+6-4 = 0; row 3: -3+8=5.
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
  EXPECT_DOUBLE_EQ(y[3], 5.0);
}

TEST(CsrMatrix, MultiplyIntoMatchesAllocatingMultiply) {
  const CsrMatrix m = laplacian_chain(4);
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  std::vector<double> y(4, -99.0);
  m.multiply_into(x, y);
  EXPECT_EQ(y, m.multiply(x));
  EXPECT_THROW(m.multiply_into(x, std::span<double>(y.data(), 3)), InvalidArgument);
}

TEST(CsrMatrix, DiagonalExtraction) {
  const CsrMatrix m = laplacian_chain(3);
  const auto d = m.diagonal();
  EXPECT_EQ(d, (std::vector<double>{2.0, 2.0, 2.0}));
}

TEST(CsrMatrix, AtFindsPatternEntries) {
  CsrMatrix m = laplacian_chain(3);
  m.at(0, 1) = -7.0;
  EXPECT_DOUBLE_EQ(m.value_or_zero(0, 1), -7.0);
  EXPECT_THROW(m.at(0, 2), NotFound);
  EXPECT_DOUBLE_EQ(m.value_or_zero(0, 2), 0.0);
}

TEST(CsrMatrix, ZeroValuesKeepsPattern) {
  CsrMatrix m = laplacian_chain(3);
  m.zero_values();
  EXPECT_EQ(m.nnz(), 7u);
  EXPECT_DOUBLE_EQ(m.value_or_zero(0, 0), 0.0);
}

TEST(ConjugateGradient, SolvesLaplacian) {
  const std::size_t n = 50;
  const CsrMatrix a = laplacian_chain(n);
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = std::sin(0.3 * static_cast<double>(i));
  const auto b = a.multiply(x_true);
  const auto result = conjugate_gradient(a, b);
  ASSERT_TRUE(result.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(result.x[i], x_true[i], 1e-7);
}

TEST(ConjugateGradient, WarmStartReducesIterations) {
  const std::size_t n = 80;
  const CsrMatrix a = laplacian_chain(n);
  std::vector<double> x_true(n, 1.0);
  const auto b = a.multiply(x_true);
  const auto cold = conjugate_gradient(a, b);
  // Warm start at the exact solution converges immediately.
  const auto warm = conjugate_gradient(a, b, x_true);
  ASSERT_TRUE(cold.converged);
  ASSERT_TRUE(warm.converged);
  EXPECT_EQ(warm.iterations, 0u);
  EXPECT_GT(cold.iterations, 0u);
}

TEST(ConjugateGradient, ZeroRhsGivesZero) {
  const CsrMatrix a = laplacian_chain(5);
  const auto result = conjugate_gradient(a, std::vector<double>(5, 0.0));
  EXPECT_TRUE(result.converged);
  for (double v : result.x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ConjugateGradient, DetectsIndefiniteMatrix) {
  CooBuilder builder(2);
  builder.add(0, 0, 1.0);
  builder.add(1, 1, -1.0);
  const CsrMatrix a = builder.build();
  EXPECT_THROW(conjugate_gradient(a, std::vector<double>{0.0, 1.0}), SolverError);
}

TEST(ConjugateGradient, DimensionMismatchThrows) {
  const CsrMatrix a = laplacian_chain(4);
  EXPECT_THROW(conjugate_gradient(a, std::vector<double>(3, 1.0)), InvalidArgument);
}

TEST(ConjugateGradient, WorkspaceVariantMatchesAllocatingVariant) {
  const std::size_t n = 40;
  const CsrMatrix a = laplacian_chain(n);
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = std::cos(0.2 * static_cast<double>(i));
  const auto b = a.multiply(x_true);

  CgWorkspace workspace;
  std::vector<double> x(n, 0.0);
  const auto stats = conjugate_gradient_into(a, b, x, workspace, {});
  const auto reference = conjugate_gradient(a, b);
  ASSERT_TRUE(stats.converged);
  EXPECT_EQ(stats.iterations, reference.iterations);
  EXPECT_EQ(x, reference.x);

  // Reusing the workspace (now pre-sized) must give the same answer.
  std::fill(x.begin(), x.end(), 0.0);
  const auto again = conjugate_gradient_into(a, b, x, workspace, {});
  ASSERT_TRUE(again.converged);
  EXPECT_EQ(x, reference.x);
}

}  // namespace
}  // namespace aqua::linalg
