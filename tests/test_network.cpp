#include "hydraulics/network.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace aqua::hydraulics {
namespace {

Network tiny() {
  Network net("tiny");
  const NodeId r = net.add_reservoir("R", 50.0);
  const NodeId a = net.add_junction("A", 10.0, 2.0);
  const NodeId b = net.add_junction("B", 12.0, 1.0);
  net.add_pipe("P1", r, a, 100.0, 0.3, 120.0);
  net.add_pipe("P2", a, b, 150.0, 0.25, 110.0);
  return net;
}

TEST(Network, BuildersPopulateCounts) {
  const Network net = tiny();
  EXPECT_EQ(net.num_nodes(), 3u);
  EXPECT_EQ(net.num_links(), 2u);
  EXPECT_EQ(net.num_junctions(), 2u);
  EXPECT_EQ(net.count_nodes(NodeType::kReservoir), 1u);
  EXPECT_EQ(net.count_links(LinkType::kPipe), 2u);
}

TEST(Network, DemandConvertsFromLps) {
  const Network net = tiny();
  EXPECT_DOUBLE_EQ(net.node(net.node_id("A")).base_demand, 0.002);
}

TEST(Network, LookupByName) {
  const Network net = tiny();
  EXPECT_EQ(net.node(net.node_id("B")).name, "B");
  EXPECT_EQ(net.link(net.link_id("P2")).name, "P2");
  EXPECT_THROW(net.node_id("missing"), NotFound);
  EXPECT_FALSE(net.find_node("missing").has_value());
  EXPECT_TRUE(net.find_link("P1").has_value());
}

TEST(Network, DuplicateNamesRejected) {
  Network net("dup");
  net.add_reservoir("R", 10.0);
  EXPECT_THROW(net.add_junction("R", 0.0), InvalidArgument);
  const NodeId a = net.add_junction("A", 0.0);
  const NodeId b = net.add_junction("B", 0.0);
  net.add_pipe("P", a, b, 10.0, 0.1, 100.0);
  EXPECT_THROW(net.add_pipe("P", a, b, 10.0, 0.1, 100.0), InvalidArgument);
}

TEST(Network, SelfLoopRejected) {
  Network net("loop");
  const NodeId a = net.add_junction("A", 0.0);
  EXPECT_THROW(net.add_pipe("P", a, a, 10.0, 0.1, 100.0), InvalidArgument);
}

TEST(Network, BadPipeAttributesRejected) {
  Network net("bad");
  const NodeId a = net.add_junction("A", 0.0);
  const NodeId b = net.add_junction("B", 0.0);
  EXPECT_THROW(net.add_pipe("P", a, b, -5.0, 0.1, 100.0), InvalidArgument);
  EXPECT_THROW(net.add_pipe("P", a, b, 5.0, 0.0, 100.0), InvalidArgument);
  EXPECT_THROW(net.add_pipe("P", a, b, 5.0, 0.1, -1.0), InvalidArgument);
}

TEST(Network, TankLevelOrderingEnforced) {
  Network net("tank");
  EXPECT_THROW(net.add_tank("T", 10.0, 5.0, 6.0, 8.0, 10.0), InvalidArgument);  // init < min
  EXPECT_NO_THROW(net.add_tank("T", 10.0, 5.0, 2.0, 8.0, 10.0));
}

TEST(Network, EmitterOnlyAtJunctions) {
  Network net = tiny();
  EXPECT_THROW(net.set_emitter(net.node_id("R"), 0.001), InvalidArgument);
  net.set_emitter(net.node_id("A"), 0.002);
  EXPECT_EQ(net.leaky_nodes(), std::vector<NodeId>{net.node_id("A")});
  net.clear_emitters();
  EXPECT_TRUE(net.leaky_nodes().empty());
}

TEST(Network, PatternDrivesDemand) {
  Network net("patterned");
  const int p = net.add_pattern({"diurnal", {0.5, 2.0}});
  const NodeId r = net.add_reservoir("R", 50.0);
  const NodeId a = net.add_junction("A", 10.0, 4.0, p);
  net.add_pipe("P", r, a, 100.0, 0.3, 120.0);
  EXPECT_DOUBLE_EQ(net.demand_at(a, 0), 0.004 * 0.5);
  EXPECT_DOUBLE_EQ(net.demand_at(a, 1), 0.004 * 2.0);
  EXPECT_DOUBLE_EQ(net.demand_at(a, 2), 0.004 * 0.5);  // wraps
  EXPECT_DOUBLE_EQ(net.demand_at(r, 0), 0.0);          // sources have no demand
}

TEST(Network, PatternValidation) {
  Network net("p");
  EXPECT_THROW(net.add_pattern({"empty", {}}), InvalidArgument);
  EXPECT_THROW(net.add_pattern({"neg", {1.0, -0.1}}), InvalidArgument);
  EXPECT_THROW(net.add_junction("A", 0.0, 1.0, 7), InvalidArgument);  // unknown pattern
}

TEST(Network, ToGraphMirrorsTopology) {
  const Network net = tiny();
  const auto g = net.to_graph();
  EXPECT_EQ(g.num_vertices(), net.num_nodes());
  EXPECT_EQ(g.num_edges(), net.num_links());
  EXPECT_DOUBLE_EQ(g.edge(0).weight, 100.0);
  EXPECT_TRUE(g.is_connected());
}

TEST(Network, JunctionIdsInOrder) {
  const Network net = tiny();
  const auto junctions = net.junction_ids();
  ASSERT_EQ(junctions.size(), 2u);
  EXPECT_EQ(net.node(junctions[0]).name, "A");
  EXPECT_EQ(net.node(junctions[1]).name, "B");
}

TEST(Network, ValidatePassesOnSaneNetwork) { EXPECT_NO_THROW(tiny().validate()); }

TEST(Network, ValidateRejectsSourcelessNetwork) {
  Network net("nosource");
  const NodeId a = net.add_junction("A", 0.0);
  const NodeId b = net.add_junction("B", 0.0);
  net.add_pipe("P", a, b, 10.0, 0.1, 100.0);
  EXPECT_THROW(net.validate(), InvalidArgument);
}

TEST(Network, ValidateRejectsDisconnected) {
  Network net("split");
  const NodeId r = net.add_reservoir("R", 50.0);
  const NodeId a = net.add_junction("A", 0.0);
  net.add_pipe("P", r, a, 10.0, 0.1, 100.0);
  net.add_junction("Island", 0.0);
  const NodeId i2 = net.add_junction("Island2", 0.0);
  net.add_pipe("P2", net.node_id("Island"), i2, 10.0, 0.1, 100.0);
  EXPECT_THROW(net.validate(), InvalidArgument);
}

TEST(Network, PumpCurveValidation) {
  Network net("pump");
  const NodeId r = net.add_reservoir("R", 5.0);
  const NodeId a = net.add_junction("A", 0.0);
  EXPECT_THROW(net.add_pump("PU", r, a, PumpCurve{0.0, 100.0, 2.0}), InvalidArgument);
  EXPECT_NO_THROW(net.add_pump("PU", r, a, PumpCurve{40.0, 100.0, 2.0}));
}

}  // namespace
}  // namespace aqua::hydraulics
