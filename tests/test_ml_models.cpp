#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/hybrid_rsl.hpp"
#include "ml/linear_models.hpp"
#include "ml/metrics.hpp"
#include "ml/multilabel.hpp"
#include "ml/random_forest.hpp"
#include "ml/svm.hpp"

namespace aqua::ml {
namespace {

struct ModelCase {
  std::string name;
  std::function<std::unique_ptr<BinaryClassifier>()> factory;
};

std::vector<ModelCase> all_models() {
  return {
      {"LinearR", [] { return std::make_unique<LinearRegressionClassifier>(); }},
      {"LogisticR", [] { return std::make_unique<LogisticRegressionClassifier>(); }},
      {"GB", [] { return std::make_unique<GradientBoostingClassifier>(); }},
      {"RF", [] { return std::make_unique<RandomForestClassifier>(); }},
      {"SVM", [] { return std::make_unique<SvmClassifier>(); }},
      {"HybridRSL", [] { return std::make_unique<HybridRslClassifier>(); }},
  };
}

/// Linearly separable blobs with a margin.
std::pair<Matrix, Labels> blobs(std::size_t n, Rng& rng) {
  Matrix x(n, 4);
  Labels y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = rng.bernoulli(0.5);
    const double cx = positive ? 1.5 : -1.5;
    x(i, 0) = cx + rng.normal(0.0, 0.5);
    x(i, 1) = -cx + rng.normal(0.0, 0.5);
    x(i, 2) = rng.normal(0.0, 1.0);  // noise features
    x(i, 3) = rng.normal(0.0, 1.0);
    y[i] = positive ? 1 : 0;
  }
  return {std::move(x), std::move(y)};
}

/// Imbalanced data mimicking per-node leak labels (~5% positives).
std::pair<Matrix, Labels> imbalanced(std::size_t n, Rng& rng) {
  Matrix x(n, 4);
  Labels y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = rng.bernoulli(0.05);
    x(i, 0) = (positive ? 2.0 : 0.0) + rng.normal(0.0, 0.6);
    x(i, 1) = rng.normal(0.0, 1.0);
    x(i, 2) = rng.normal(0.0, 1.0);
    x(i, 3) = (positive ? -1.5 : 0.0) + rng.normal(0.0, 0.6);
    y[i] = positive ? 1 : 0;
  }
  return {std::move(x), std::move(y)};
}

class EveryModel : public ::testing::TestWithParam<ModelCase> {};

TEST_P(EveryModel, SeparatesBlobs) {
  Rng rng(11);
  const auto [x, y] = blobs(400, rng);
  auto model = GetParam().factory();
  model->fit(x, y);
  Rng test_rng(12);
  const auto [tx, ty] = blobs(200, test_rng);
  Labels pred(ty.size());
  for (std::size_t i = 0; i < tx.rows(); ++i) pred[i] = model->predict(tx.row(i)) ? 1 : 0;
  EXPECT_GT(binary_accuracy(pred, ty), 0.9) << GetParam().name;
}

TEST_P(EveryModel, ProbabilitiesAreValid) {
  Rng rng(13);
  const auto [x, y] = blobs(300, rng);
  auto model = GetParam().factory();
  model->fit(x, y);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double p = model->predict_proba(x.row(i));
    EXPECT_GE(p, 0.0) << GetParam().name;
    EXPECT_LE(p, 1.0) << GetParam().name;
  }
}

TEST_P(EveryModel, ProbabilitiesAreDiscriminative) {
  Rng rng(14);
  const auto [x, y] = blobs(400, rng);
  auto model = GetParam().factory();
  model->fit(x, y);
  double mean_pos = 0.0, mean_neg = 0.0;
  std::size_t n_pos = 0, n_neg = 0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double p = model->predict_proba(x.row(i));
    if (y[i] != 0) {
      mean_pos += p;
      ++n_pos;
    } else {
      mean_neg += p;
      ++n_neg;
    }
  }
  EXPECT_GT(mean_pos / static_cast<double>(n_pos), mean_neg / static_cast<double>(n_neg) + 0.3)
      << GetParam().name;
}

TEST_P(EveryModel, HandlesSingleClassDegenerately) {
  Matrix x(20, 2, 1.0);
  auto model = GetParam().factory();
  model->fit(x, Labels(20, 0));
  std::vector<double> probe{1.0, 1.0};
  EXPECT_DOUBLE_EQ(model->predict_proba(probe), 0.0) << GetParam().name;
  auto model_pos = GetParam().factory();
  model_pos->fit(x, Labels(20, 1));
  EXPECT_DOUBLE_EQ(model_pos->predict_proba(probe), 1.0) << GetParam().name;
}

TEST_P(EveryModel, RecallsRarePositives) {
  Rng rng(15);
  const auto [x, y] = imbalanced(1500, rng);
  auto model = GetParam().factory();
  model->fit(x, y);
  Rng test_rng(16);
  const auto [tx, ty] = imbalanced(800, test_rng);
  std::size_t tp = 0, fn = 0;
  for (std::size_t i = 0; i < tx.rows(); ++i) {
    if (ty[i] == 0) continue;
    if (model->predict(tx.row(i))) {
      ++tp;
    } else {
      ++fn;
    }
  }
  ASSERT_GT(tp + fn, 10u);
  // Balanced class weighting should keep recall well above the ~0 a naive
  // unweighted fit gives at 5% prevalence.
  EXPECT_GT(static_cast<double>(tp) / static_cast<double>(tp + fn), 0.6) << GetParam().name;
}

TEST_P(EveryModel, DeterministicAcrossRuns) {
  Rng rng(17);
  const auto [x, y] = blobs(200, rng);
  auto a = GetParam().factory();
  auto b = GetParam().factory();
  a->fit(x, y);
  b->fit(x, y);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a->predict_proba(x.row(i)), b->predict_proba(x.row(i))) << GetParam().name;
  }
}

TEST_P(EveryModel, CloneConfigProducesTrainableCopy) {
  Rng rng(18);
  const auto [x, y] = blobs(200, rng);
  auto original = GetParam().factory();
  auto clone = original->clone_config();
  clone->fit(x, y);
  Labels pred(y.size());
  for (std::size_t i = 0; i < x.rows(); ++i) pred[i] = clone->predict(x.row(i)) ? 1 : 0;
  EXPECT_GT(binary_accuracy(pred, y), 0.85) << GetParam().name;
  EXPECT_EQ(clone->name(), original->name());
}

INSTANTIATE_TEST_SUITE_P(AllClassifiers, EveryModel, ::testing::ValuesIn(all_models()),
                         [](const ::testing::TestParamInfo<ModelCase>& info) {
                           return info.param.name;
                         });

TEST(HybridRsl, UsesBothBaseLearners) {
  Rng rng(19);
  const auto [x, y] = blobs(300, rng);
  HybridRslClassifier hybrid;
  hybrid.fit(x, y);
  // Base learners must themselves be fitted and sane.
  EXPECT_GT(hybrid.forest().num_trees(), 0u);
  const double p_pos = hybrid.predict_proba(x.row(0));
  EXPECT_GE(p_pos, 0.0);
  EXPECT_LE(p_pos, 1.0);
}

TEST(Svm, DecisionValueSeparatesClasses) {
  Rng rng(20);
  const auto [x, y] = blobs(300, rng);
  SvmClassifier svm;
  svm.fit(x, y);
  double mean_pos = 0.0, mean_neg = 0.0;
  std::size_t np = 0, nn = 0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double d = svm.decision_value(x.row(i));
    if (y[i] != 0) {
      mean_pos += d;
      ++np;
    } else {
      mean_neg += d;
      ++nn;
    }
  }
  EXPECT_GT(mean_pos / static_cast<double>(np), mean_neg / static_cast<double>(nn));
}

TEST(Svm, LinearModeWorksToo) {
  SvmConfig config;
  config.rff_dimension = 0;  // plain linear SVM
  Rng rng(21);
  const auto [x, y] = blobs(300, rng);
  SvmClassifier svm(config);
  svm.fit(x, y);
  Labels pred(y.size());
  for (std::size_t i = 0; i < x.rows(); ++i) pred[i] = svm.predict(x.row(i)) ? 1 : 0;
  EXPECT_GT(binary_accuracy(pred, y), 0.9);
}

TEST(Sigmoid, NumericallyStable) {
  EXPECT_NEAR(sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-1000.0), 0.0, 1e-12);
  EXPECT_NEAR(sigmoid(2.0) + sigmoid(-2.0), 1.0, 1e-12);
}

TEST(BalancedWeights, EqualizeClassMass) {
  const Labels y{1, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  const auto [w_neg, w_pos] = balanced_class_weights(y);
  EXPECT_NEAR(w_pos * 1.0, w_neg * 9.0, 1e-12);
  EXPECT_NEAR((w_pos * 1.0 + w_neg * 9.0) / 10.0, 1.0, 1e-12);
}

TEST(BalancedWeights, SingleClassIsUnit) {
  const auto [w_neg, w_pos] = balanced_class_weights(Labels{0, 0, 0});
  EXPECT_DOUBLE_EQ(w_neg, 1.0);
  EXPECT_DOUBLE_EQ(w_pos, 1.0);
}

TEST(MultiLabel, TrainsPerLabelClassifiers) {
  Rng rng(22);
  MultiLabelDataset data;
  const std::size_t n = 300;
  data.features = Matrix(n, 2);
  data.labels.assign(n, Labels(2, 0));
  for (std::size_t i = 0; i < n; ++i) {
    data.features(i, 0) = rng.uniform(-1.0, 1.0);
    data.features(i, 1) = rng.uniform(-1.0, 1.0);
    data.labels[i][0] = data.features(i, 0) > 0.0;
    data.labels[i][1] = data.features(i, 1) > 0.0;
  }
  MultiLabelModel model([] { return std::make_unique<LogisticRegressionClassifier>(); });
  model.fit(data);
  ASSERT_TRUE(model.fitted());
  EXPECT_EQ(model.num_labels(), 2u);
  const std::vector<double> probe{0.8, -0.8};
  const Labels pred = model.predict(probe);
  EXPECT_EQ(pred[0], 1);
  EXPECT_EQ(pred[1], 0);
  const auto probabilities = model.predict_proba(probe);
  EXPECT_GT(probabilities[0], 0.5);
  EXPECT_LT(probabilities[1], 0.5);
}

TEST(MultiLabel, BatchMatchesSingle) {
  Rng rng(23);
  MultiLabelDataset data;
  data.features = Matrix(100, 2);
  data.labels.assign(100, Labels(1, 0));
  for (std::size_t i = 0; i < 100; ++i) {
    data.features(i, 0) = rng.uniform(-1.0, 1.0);
    data.features(i, 1) = rng.uniform(-1.0, 1.0);
    data.labels[i][0] = data.features(i, 0) > 0.2;
  }
  MultiLabelModel model([] { return std::make_unique<LinearRegressionClassifier>(); });
  model.fit(data);
  const auto batch = model.predict_batch(data.features, false);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(batch[i], model.predict(data.features.row(i)));
  }
}

/// Multi-label leak-style dataset: `labels` sparse cuts of a few features.
MultiLabelDataset tree_multilabel_data(std::size_t n, std::size_t labels, Rng& rng) {
  MultiLabelDataset data;
  data.features = Matrix(n, 6);
  data.labels.assign(n, Labels(labels, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 6; ++c) data.features(i, c) = rng.normal(0.0, 1.0);
    for (std::size_t v = 0; v < labels; ++v) {
      data.labels[i][v] = data.features(i, v % 6) > 1.0 ? 1 : 0;
    }
  }
  return data;
}

/// Exact-splits oracle: histogram training must track the exact-CART
/// classifier closely at the ensemble level (quantile bins only coarsen
/// thresholds; both see the same signal).
TEST(GradientBoosting, BinnedAgreesWithExactSplits) {
  Rng rng(61);
  const auto [x, y] = blobs(400, rng);
  GradientBoostingConfig config;
  GradientBoostingClassifier binned(config);
  config.exact_splits = true;
  GradientBoostingClassifier exact(config);
  binned.fit(x, y);
  exact.fit(x, y);
  Rng test_rng(62);
  const auto [tx, ty] = blobs(200, test_rng);
  (void)ty;
  std::size_t agree = 0;
  for (std::size_t i = 0; i < tx.rows(); ++i) {
    agree += binned.predict(tx.row(i)) == exact.predict(tx.row(i));
    EXPECT_NEAR(binned.predict_proba(tx.row(i)), exact.predict_proba(tx.row(i)), 0.15);
  }
  EXPECT_GE(agree, (tx.rows() * 95) / 100);
}

TEST(RandomForest, BinnedAgreesWithExactSplits) {
  Rng rng(63);
  const auto [x, y] = blobs(400, rng);
  RandomForestConfig config;
  RandomForestClassifier binned(config);
  config.exact_splits = true;
  RandomForestClassifier exact(config);
  binned.fit(x, y);
  exact.fit(x, y);
  Rng test_rng(64);
  const auto [tx, ty] = blobs(200, test_rng);
  (void)ty;
  std::size_t agree = 0;
  for (std::size_t i = 0; i < tx.rows(); ++i) {
    agree += binned.predict(tx.row(i)) == exact.predict(tx.row(i));
    // Deep trees on sampled features wander more near the boundary than
    // GB's shallow ensemble; the hard decisions are the real contract.
    EXPECT_NEAR(binned.predict_proba(tx.row(i)), exact.predict_proba(tx.row(i)), 0.3);
  }
  EXPECT_GE(agree, (tx.rows() * 95) / 100);
}

/// Shared-store protocol contract: fit_with_store must be bit-identical
/// to fit on the same matrix, for every store consumer.
TEST(SharedStoreFit, BitIdenticalToPlainFit) {
  Rng rng(65);
  const auto [x, y] = blobs(300, rng);
  struct Case {
    std::string name;
    std::unique_ptr<BinaryClassifier> plain, stored;
  };
  std::vector<Case> cases;
  cases.push_back({"GB", std::make_unique<GradientBoostingClassifier>(),
                   std::make_unique<GradientBoostingClassifier>()});
  cases.push_back({"RF", std::make_unique<RandomForestClassifier>(),
                   std::make_unique<RandomForestClassifier>()});
  cases.push_back({"HybridRSL", std::make_unique<HybridRslClassifier>(),
                   std::make_unique<HybridRslClassifier>()});
  for (auto& c : cases) {
    ASSERT_GT(c.plain->fit_store_bins(), 0u) << c.name;
    BinnedDataset store;
    store.fit(x, c.plain->fit_store_bins());
    c.plain->fit(x, y);
    c.stored->fit_with_store(x, y, store);
    Rng test_rng(66);
    const auto [tx, ty] = blobs(150, test_rng);
    (void)ty;
    for (std::size_t i = 0; i < tx.rows(); ++i) {
      EXPECT_EQ(c.stored->predict_proba(tx.row(i)), c.plain->predict_proba(tx.row(i))) << c.name;
    }
  }
}

TEST(SharedStoreFit, MismatchedStoreIsRejected) {
  Rng rng(67);
  const auto [x, y] = blobs(100, rng);
  BinnedDataset store;
  store.fit(x, 32);  // budget disagrees with the classifier's max_bins
  GradientBoostingClassifier gb;
  EXPECT_THROW(gb.fit_with_store(x, y, store), InvalidArgument);
}

TEST(MultiLabel, ParallelFitBitIdenticalToSerial) {
  Rng rng(68);
  const auto data = tree_multilabel_data(250, 4, rng);
  MultiLabelModel serial([] { return std::make_unique<GradientBoostingClassifier>(); });
  MultiLabelModel parallel([] { return std::make_unique<GradientBoostingClassifier>(); });
  serial.fit(data, /*parallel=*/false);
  parallel.fit(data, /*parallel=*/true);
  for (std::size_t i = 0; i < 50; ++i) {
    const auto a = serial.predict_proba(data.features.row(i));
    const auto b = parallel.predict_proba(data.features.row(i));
    EXPECT_EQ(a, b);
  }
}

TEST(MultiLabel, SharedStoreBitIdenticalToPerLabelBinning) {
  Rng rng(69);
  const auto data = tree_multilabel_data(250, 4, rng);
  MultiLabelModel shared([] { return std::make_unique<RandomForestClassifier>(); });
  MultiLabelModel per_label([] { return std::make_unique<RandomForestClassifier>(); });
  shared.fit(data, /*parallel=*/true, /*shared_store=*/true);
  per_label.fit(data, /*parallel=*/true, /*shared_store=*/false);
  for (std::size_t i = 0; i < 50; ++i) {
    const auto a = shared.predict_proba(data.features.row(i));
    const auto b = per_label.predict_proba(data.features.row(i));
    EXPECT_EQ(a, b);
  }
}

TEST(MultiLabel, RequiresFactoryAndData) {
  MultiLabelModel unset;
  MultiLabelDataset data;
  data.features = Matrix(2, 1, 1.0);
  data.labels.assign(2, Labels(1, 0));
  EXPECT_THROW(unset.fit(data), InvalidArgument);
  MultiLabelModel model([] { return std::make_unique<LinearRegressionClassifier>(); });
  std::vector<double> probe{1.0};
  EXPECT_THROW(model.predict(probe), InvalidArgument);
}

}  // namespace
}  // namespace aqua::ml
