#include "linalg/cholesky.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/ordering.hpp"
#include "linalg/solvers.hpp"
#include "linalg/sparse.hpp"

namespace aqua::linalg {
namespace {

/// Diagonally dominant SPD matrix with the sparsity of a w x h grid graph
/// (the planar structure of water networks).
CsrMatrix grid_spd(std::size_t w, std::size_t h, Rng& rng) {
  const std::size_t n = w * h;
  CooBuilder builder(n);
  auto id = [w](std::size_t x, std::size_t y) { return y * w + x; };
  std::vector<double> diag(n, 1.0);
  auto couple = [&](std::size_t a, std::size_t b) {
    const double v = 0.5 + rng.uniform();
    builder.add(a, b, -v);
    builder.add(b, a, -v);
    diag[a] += v;
    diag[b] += v;
  };
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      if (x + 1 < w) couple(id(x, y), id(x + 1, y));
      if (y + 1 < h) couple(id(x, y), id(x, y + 1));
    }
  }
  for (std::size_t i = 0; i < n; ++i) builder.add(i, i, diag[i]);
  return builder.build();
}

TEST(MinimumDegree, ProducesAValidPermutation) {
  Rng rng(7);
  const auto a = grid_spd(5, 4, rng);
  const auto perm = minimum_degree_ordering(a);
  ASSERT_EQ(perm.size(), a.rows());
  std::vector<char> seen(perm.size(), 0);
  for (std::size_t v : perm) {
    ASSERT_LT(v, perm.size());
    EXPECT_EQ(seen[v], 0);
    seen[v] = 1;
  }
  const auto pinv = inverse_permutation(perm);
  for (std::size_t k = 0; k < perm.size(); ++k) EXPECT_EQ(pinv[perm[k]], k);
}

TEST(MinimumDegree, StarGraphEliminatesLeavesFirst) {
  // Star: node 0 is the hub. Natural order eliminates the hub first and
  // fills the leaf clique; minimum degree eliminates leaves first and
  // produces a factor with no fill at all.
  const std::size_t n = 12;
  CooBuilder builder(n);
  for (std::size_t i = 0; i < n; ++i) builder.add(i, i, static_cast<double>(n));
  for (std::size_t leaf = 1; leaf < n; ++leaf) {
    builder.add(0, leaf, -1.0);
    builder.add(leaf, 0, -1.0);
  }
  const auto a = builder.build();

  SparseLdlt natural;
  std::vector<std::size_t> identity(n);
  for (std::size_t i = 0; i < n; ++i) identity[i] = i;
  natural.analyze(a, identity);

  SparseLdlt min_degree;
  min_degree.analyze(a);

  EXPECT_EQ(min_degree.factor_nnz(), n - 1);  // one entry per leaf, zero fill
  EXPECT_GT(natural.factor_nnz(), min_degree.factor_nnz());

  // Both orderings must of course solve the same system.
  Rng rng(3);
  std::vector<double> x_true(n);
  for (double& v : x_true) v = rng.normal();
  const auto b = a.multiply(x_true);
  natural.factorize(a);
  min_degree.factorize(a);
  const auto x1 = natural.solve(b);
  const auto x2 = min_degree.solve(b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x1[i], x_true[i], 1e-10);
    EXPECT_NEAR(x2[i], x_true[i], 1e-10);
  }
}

TEST(SparseLdlt, SolvesGridSystemToHighAccuracy) {
  Rng rng(11);
  const auto a = grid_spd(9, 7, rng);
  const std::size_t n = a.rows();
  std::vector<double> x_true(n);
  for (double& v : x_true) v = rng.normal();
  const auto b = a.multiply(x_true);

  SparseLdlt factor;
  factor.analyze(a);
  factor.factorize(a);
  std::vector<double> x(n, 0.0);
  factor.solve(b, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);

  // And it agrees with CG on the same system.
  const auto cg = conjugate_gradient(a, b);
  ASSERT_TRUE(cg.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], cg.x[i], 1e-8);
}

TEST(SparseLdlt, RefactorizationIsBitIdenticalToFreshFactorization) {
  Rng rng(23);
  auto a = grid_spd(6, 6, rng);

  SparseLdlt reused;
  reused.analyze(a);
  reused.factorize(a);

  // Change the numeric values (same pattern), refactorize the reused
  // symbolic structure, and compare against a from-scratch factorization.
  auto values = a.values();
  for (double& v : values) v *= 1.5;
  reused.factorize(a);

  SparseLdlt fresh;
  fresh.analyze(a);
  fresh.factorize(a);

  ASSERT_EQ(reused.factor_nnz(), fresh.factor_nnz());
  const auto dr = reused.diagonal();
  const auto df = fresh.diagonal();
  const auto lr = reused.factor_values();
  const auto lf = fresh.factor_values();
  for (std::size_t i = 0; i < dr.size(); ++i) EXPECT_EQ(dr[i], df[i]);
  for (std::size_t i = 0; i < lr.size(); ++i) EXPECT_EQ(lr[i], lf[i]);

  std::vector<double> b(a.rows(), 1.0);
  EXPECT_EQ(reused.solve(b), fresh.solve(b));
}

TEST(SparseLdlt, RejectsIndefiniteMatrix) {
  CooBuilder builder(2);
  builder.add(0, 0, 1.0);
  builder.add(0, 1, 2.0);
  builder.add(1, 0, 2.0);
  builder.add(1, 1, 1.0);  // eigenvalues 3 and -1: indefinite
  const auto a = builder.build();
  SparseLdlt factor;
  factor.analyze(a);
  EXPECT_THROW(factor.factorize(a), SolverError);
  EXPECT_FALSE(factor.factorized());
}

TEST(SparseLdlt, RejectsSingularMatrix) {
  CooBuilder builder(2);
  builder.add(0, 0, 1.0);
  builder.add(0, 1, 1.0);
  builder.add(1, 0, 1.0);
  builder.add(1, 1, 1.0);  // rank 1
  const auto a = builder.build();
  SparseLdlt factor;
  factor.analyze(a);
  EXPECT_THROW(factor.factorize(a), SolverError);
}

TEST(SparseLdlt, GuardsApiMisuse) {
  SparseLdlt factor;
  CooBuilder builder(1);
  builder.add(0, 0, 2.0);
  const auto a = builder.build();
  EXPECT_THROW(factor.factorize(a), InvalidArgument);  // analyze first
  factor.analyze(a);
  std::vector<double> b{1.0}, x{0.0};
  EXPECT_THROW(factor.solve(b, x), InvalidArgument);  // factorize first
  factor.factorize(a);
  factor.solve(b, x);
  EXPECT_NEAR(x[0], 0.5, 1e-15);
}

}  // namespace
}  // namespace aqua::linalg
