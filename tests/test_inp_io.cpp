#include "hydraulics/inp_io.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "networks/builtin.hpp"

namespace aqua::hydraulics {
namespace {

Network sample() {
  Network net("sample net");
  const int p = net.add_pattern({"0", {0.5, 1.5}});
  const NodeId r = net.add_reservoir("R", 60.0, -10.0, -20.0);
  const NodeId t = net.add_tank("T", 40.0, 3.0, 1.0, 6.0, 12.0, 5.0, 5.0);
  const NodeId a = net.add_junction("A", 10.0, 2.0, p, 0.0, 0.0);
  const NodeId b = net.add_junction("B", 12.0, 1.5, -1, 100.0, 0.0);
  net.add_pipe("P1", r, a, 200.0, 0.4, 130.0);
  net.add_pipe("P2", a, b, 150.0, 0.25, 110.0, LinkStatus::kClosed);
  net.add_pipe("P3", b, t, 120.0, 0.3, 120.0);
  net.add_pump("PU", r, b, PumpCurve{55.0, 900.0, 2.0});
  net.add_valve("V", a, b, 0.25, 3.0);
  net.set_emitter(a, 0.0025, 0.5);
  return net;
}

TEST(InpIo, RoundTripPreservesStructure) {
  const Network original = sample();
  const Network parsed = from_inp(to_inp(original));
  EXPECT_EQ(parsed.name(), original.name());
  EXPECT_EQ(parsed.num_nodes(), original.num_nodes());
  EXPECT_EQ(parsed.num_links(), original.num_links());
  EXPECT_EQ(parsed.num_patterns(), original.num_patterns());
  for (NodeId v = 0; v < original.num_nodes(); ++v) {
    const Node& a = original.node(v);
    const Node& b = parsed.node(parsed.node_id(a.name));
    EXPECT_EQ(a.type, b.type);
    EXPECT_NEAR(a.elevation, b.elevation, 1e-9);
    EXPECT_NEAR(a.base_demand, b.base_demand, 1e-12);
    EXPECT_EQ(a.demand_pattern, b.demand_pattern);
    EXPECT_NEAR(a.emitter_coefficient, b.emitter_coefficient, 1e-12);
    EXPECT_NEAR(a.x, b.x, 1e-9);
    EXPECT_NEAR(a.y, b.y, 1e-9);
  }
  for (LinkId l = 0; l < original.num_links(); ++l) {
    const Link& a = original.link(l);
    const Link& b = parsed.link(parsed.link_id(a.name));
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.status, b.status);
    EXPECT_NEAR(a.length, b.length, 1e-9);
    EXPECT_NEAR(a.diameter, b.diameter, 1e-9);
  }
}

TEST(InpIo, RoundTripIsIdempotentAfterNormalization) {
  // The first round trip normalizes node insertion order (section order);
  // from then on the text representation is a fixed point.
  const Network original = sample();
  const std::string once = to_inp(from_inp(to_inp(original)));
  const std::string twice = to_inp(from_inp(once));
  EXPECT_EQ(once, twice);
}

TEST(InpIo, TankFieldsSurvive) {
  const Network parsed = from_inp(to_inp(sample()));
  const Node& t = parsed.node(parsed.node_id("T"));
  EXPECT_DOUBLE_EQ(t.init_level, 3.0);
  EXPECT_DOUBLE_EQ(t.min_level, 1.0);
  EXPECT_DOUBLE_EQ(t.max_level, 6.0);
  EXPECT_DOUBLE_EQ(t.diameter, 12.0);
}

TEST(InpIo, PumpCurveSurvives) {
  const Network parsed = from_inp(to_inp(sample()));
  const Link& pu = parsed.link(parsed.link_id("PU"));
  EXPECT_DOUBLE_EQ(pu.pump.shutoff_head, 55.0);
  EXPECT_DOUBLE_EQ(pu.pump.coefficient, 900.0);
}

TEST(InpIo, PatternsSurvive) {
  const Network parsed = from_inp(to_inp(sample()));
  ASSERT_EQ(parsed.num_patterns(), 1u);
  EXPECT_EQ(parsed.pattern(0).multipliers, (std::vector<double>{0.5, 1.5}));
}

TEST(InpIo, CommentsAndBlankLinesIgnored) {
  const Network net = from_inp(
      "[TITLE]\nt\n\n[JUNCTIONS]\n; a comment line\nA 5.0 1.0 -1 ; trailing\n\n"
      "[RESERVOIRS]\nR 50.0\n[PIPES]\nP R A 100 0.3 120 OPEN\n[COORDINATES]\nA 1 2\nR 0 0\n");
  EXPECT_EQ(net.num_nodes(), 2u);
  EXPECT_DOUBLE_EQ(net.node(net.node_id("A")).x, 1.0);
}

TEST(InpIo, MalformedRowsRejected) {
  EXPECT_THROW(from_inp("[JUNCTIONS]\nA 5.0\n"), InvalidArgument);       // arity
  EXPECT_THROW(from_inp("[JUNCTIONS]\nA five 1.0 -1\n"), InvalidArgument);  // bad number
  EXPECT_THROW(from_inp("stray content\n"), InvalidArgument);            // no section
}

TEST(InpIo, UnknownNodeReferenceRejected) {
  EXPECT_THROW(from_inp("[RESERVOIRS]\nR 50\n[PIPES]\nP R MISSING 100 0.3 120 OPEN\n"), NotFound);
}

// ---------------------------------------------------------------------------
// Fuzz-style robustness corpus: every malformed, truncated, or hostile
// input must raise a typed error (InvalidArgument / NotFound) — never
// crash, hang, or silently produce a wrong network. Run under
// scripts/sanitize_tests.sh so UB (e.g. float-to-int of NaN) is caught,
// not just the throw.
// ---------------------------------------------------------------------------

struct HostileInput {
  const char* label;
  const char* text;
};

class HostileInp : public ::testing::TestWithParam<HostileInput> {};

TEST_P(HostileInp, RaisesTypedErrorWithoutCrashing) {
  try {
    (void)from_inp(GetParam().text);
    FAIL() << GetParam().label << ": hostile input was accepted";
  } catch (const InvalidArgument&) {
  } catch (const NotFound&) {
  }
  // Any other exception type (or a crash) fails the test.
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, HostileInp,
    ::testing::Values(
        // Section-header abuse.
        HostileInput{"unknown_section", "[JUNCTION]\nA 5.0 1.0 -1\n"},
        HostileInput{"misspelled_section", "[RESEVOIRS]\nR 50\n"},
        HostileInput{"unclosed_bracket", "[JUNCTIONS\nA 5.0 1.0 -1\n"},
        HostileInput{"split_bracket", "[ JUNCTIONS ]\nA 5.0 1.0 -1\n"},
        HostileInput{"bare_bracket", "[\nA 5.0 1.0 -1\n"},
        HostileInput{"header_trailing_tokens", "[JUNCTIONS] extra\nA 5.0 1.0 -1\n"},
        HostileInput{"content_after_end", "[RESERVOIRS]\nR 50\n[END]\nlingering junk\n"},
        HostileInput{"content_before_section", "orphan line\n[RESERVOIRS]\nR 50\n"},
        // Non-numeric and non-finite numeric fields.
        HostileInput{"nan_pattern_index", "[JUNCTIONS]\nA 5.0 1.0 nan\n"},
        HostileInput{"inf_pattern_index", "[JUNCTIONS]\nA 5.0 1.0 inf\n"},
        HostileInput{"float_pattern_index", "[JUNCTIONS]\nA 5.0 1.0 1.5\n"},
        HostileInput{"huge_pattern_index", "[JUNCTIONS]\nA 5.0 1.0 99999999999999999999\n"},
        HostileInput{"hex_garbage_number", "[RESERVOIRS]\nR 0xZZ\n"},
        HostileInput{"number_with_trailer", "[RESERVOIRS]\nR 50.0abc\n"},
        HostileInput{"overflowing_double", "[RESERVOIRS]\nR 1e309\n"},
        HostileInput{"empty_exponent", "[RESERVOIRS]\nR 1e\n"},
        // Truncated rows.
        HostileInput{"truncated_junction", "[JUNCTIONS]\nA 5.0\n"},
        HostileInput{"truncated_tank", "[TANKS]\nT 40 3 1\n"},
        HostileInput{"truncated_pipe", "[RESERVOIRS]\nR 50\n[PIPES]\nP R\n"},
        HostileInput{"pattern_without_multipliers", "[PATTERNS]\n0\n"},
        // Dangling references and duplicates.
        HostileInput{"pipe_to_missing_node",
                     "[RESERVOIRS]\nR 50\n[PIPES]\nP R GHOST 100 0.3 120 OPEN\n"},
        HostileInput{"emitter_on_missing_node", "[EMITTERS]\nGHOST 0.002 0.5\n"},
        HostileInput{"coordinates_for_missing_node", "[COORDINATES]\nGHOST 0 0\n"},
        HostileInput{"pattern_ref_out_of_range", "[JUNCTIONS]\nA 5.0 1.0 7\n"},
        HostileInput{"duplicate_node_name", "[RESERVOIRS]\nR 50\nR 60\n"},
        HostileInput{"duplicate_link_name",
                     "[RESERVOIRS]\nR 50\n[JUNCTIONS]\nA 5.0 1.0 -1\n"
                     "[PIPES]\nP R A 100 0.3 120 OPEN\nP R A 90 0.3 120 OPEN\n"},
        HostileInput{"self_loop_pipe",
                     "[RESERVOIRS]\nR 50\n[PIPES]\nP R R 100 0.3 120 OPEN\n"},
        // Physically invalid values (Network::add_* validation).
        HostileInput{"negative_pipe_length",
                     "[RESERVOIRS]\nR 50\n[JUNCTIONS]\nA 5.0 1.0 -1\n"
                     "[PIPES]\nP R A -100 0.3 120 OPEN\n"},
        HostileInput{"zero_pipe_diameter",
                     "[RESERVOIRS]\nR 50\n[JUNCTIONS]\nA 5.0 1.0 -1\n"
                     "[PIPES]\nP R A 100 0 120 OPEN\n"},
        HostileInput{"tank_levels_inverted", "[TANKS]\nT 40 3 6 1 12\n"},
        HostileInput{"negative_emitter",
                     "[JUNCTIONS]\nA 5.0 1.0 -1\n[EMITTERS]\nA -0.5 0.5\n"}),
    [](const ::testing::TestParamInfo<HostileInput>& info) { return info.param.label; });

TEST(InpIo, NearMissStillParses) {
  // Sanity guard for the corpus: well-formed cousins of the hostile
  // inputs must keep parsing, so the hardening is not over-rejecting.
  EXPECT_NO_THROW((void)from_inp("[JUNCTIONS]\nA 5.0 1.0 -1\n"));
  EXPECT_NO_THROW((void)from_inp("[RESERVOIRS]\nR 50\n[END]\n"));
  EXPECT_NO_THROW((void)from_inp(
      "[PATTERNS]\n0 0.5 1.5\n[JUNCTIONS]\nA 5.0 1.0 0\n"));
}

TEST(InpIo, BuiltinNetworksRoundTrip) {
  for (const auto& original : {networks::make_epa_net(), networks::make_wssc_subnet()}) {
    const Network parsed = from_inp(to_inp(original));
    EXPECT_EQ(parsed.num_nodes(), original.num_nodes());
    EXPECT_EQ(parsed.num_links(), original.num_links());
    EXPECT_NO_THROW(parsed.validate());
  }
}

}  // namespace
}  // namespace aqua::hydraulics
