#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace aqua {
namespace {

TEST(Stats, MeanBasics) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stats, MeanEmptyIsZero) {
  std::vector<double> v;
  EXPECT_DOUBLE_EQ(mean(v), 0.0);
}

TEST(Stats, StddevKnownValue) {
  std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sample stddev with n-1: variance = 32/7.
  EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, StddevFewSamplesIsZero) {
  std::vector<double> v{5.0};
  EXPECT_DOUBLE_EQ(stddev(v), 0.0);
}

TEST(Stats, PercentileEndpoints) {
  std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Stats, PercentileValidation) {
  std::vector<double> v;
  EXPECT_THROW(percentile(v, 50.0), InvalidArgument);
  std::vector<double> w{1.0};
  EXPECT_THROW(percentile(w, -1.0), InvalidArgument);
  EXPECT_THROW(percentile(w, 101.0), InvalidArgument);
}

TEST(Stats, MinMax) {
  std::vector<double> v{3.0, -1.0, 7.5};
  EXPECT_DOUBLE_EQ(min_value(v), -1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 7.5);
  std::vector<double> empty;
  EXPECT_THROW(min_value(empty), InvalidArgument);
}

TEST(RunningStats, MatchesBatchStatistics) {
  std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(v), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.add(3.5);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.5);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 3.5);
  EXPECT_DOUBLE_EQ(rs.max(), 3.5);
}

}  // namespace
}  // namespace aqua
