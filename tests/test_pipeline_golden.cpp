// Golden-file regression over the full Phase I -> Phase II pipeline: fixed-
// seed scenario corpora on both builtin networks, trained profiles, and the
// complete InferenceResult (beliefs, predicted sets, tuning, energies) for
// every test snapshot, serialized exactly (hexfloat) and compared against
// checked-in goldens in tests/golden/.
//
// Regeneration workflow (after an intentional behavior change):
//   AQUA_REGEN_GOLDEN=1 ./build/tests/test_pipeline_golden
// rewrites the files in the source tree (AQUA_GOLDEN_DIR points there);
// re-run without the flag to confirm, then commit the new goldens with the
// change that caused them. Any diff without an intentional cause is a
// regression: these pin the end-to-end numeric behavior of simulation,
// featurization, training, and fusion at once.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/aquascale.hpp"
#include "core/inference_engine.hpp"

namespace aqua::core {
namespace {

std::string hex(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

/// Exact, line-oriented rendering of a batch of inference results.
std::string render_results(const std::vector<InferenceInputs>& batch,
                           const std::vector<InferenceResult>& results) {
  std::ostringstream out;
  out << "snapshots " << results.size() << "\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const InferenceResult& r = results[i];
    out << "snapshot " << i << " frozen " << (batch[i].frozen.empty() ? 0 : 1) << " cliques "
        << batch[i].cliques.size() << "\n";
    out << "beliefs";
    for (const double p : r.beliefs.p_leak) out << ' ' << hex(p);
    out << "\npredicted";
    for (std::size_t v = 0; v < r.predicted.size(); ++v) {
      if (r.predicted[v] != 0) out << ' ' << v;
    }
    out << "\niot_only";
    for (std::size_t v = 0; v < r.predicted_iot_only.size(); ++v) {
      if (r.predicted_iot_only[v] != 0) out << ' ' << v;
    }
    out << "\nweather_updates " << r.weather_updates;
    out << "\nadded";
    for (const std::size_t v : r.tuning.added_labels) out << ' ' << v;
    out << "\nenergy " << hex(r.energy_before) << ' ' << hex(r.energy_after) << "\n";
  }
  return out.str();
}

/// Compares against (or regenerates) tests/golden/<name>.txt.
void check_against_golden(const std::string& name, const std::string& actual) {
  const std::string path = std::string(AQUA_GOLDEN_DIR) + "/" + name + ".txt";
  if (std::getenv("AQUA_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with AQUA_REGEN_GOLDEN=1 to create it)";
  std::ostringstream expected;
  expected << in.rdbuf();
  // Line-by-line first so a mismatch reports the offending record, not a
  // multi-kilobyte blob diff.
  std::istringstream actual_lines(actual), expected_lines(expected.str());
  std::string a, e;
  std::size_t line = 0;
  while (std::getline(expected_lines, e)) {
    ++line;
    ASSERT_TRUE(static_cast<bool>(std::getline(actual_lines, a)))
        << name << ": output truncated at line " << line;
    ASSERT_EQ(a, e) << name << ": first divergence at line " << line;
  }
  ASSERT_FALSE(static_cast<bool>(std::getline(actual_lines, a)))
      << name << ": output has extra lines after line " << line;
}

/// Builds the deterministic fixed-seed test batch evaluate_profile runs
/// (features + weather freeze masks + tweet cliques) for a context.
std::vector<InferenceInputs> build_batch(ExperimentContext& context, const ProfileModel& profile,
                                         const EvalOptions& options) {
  fusion::TweetGenerator tweet_generator(options.tweets);
  const auto& scenarios = context.test_scenarios();
  const std::size_t elapsed = context.config().elapsed_slots[options.elapsed_index];
  Rng root(context.config().seed ^ 0x9999ULL);
  std::vector<InferenceInputs> batch(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    Rng rng = root.split();
    InferenceInputs& inputs = batch[i];
    inputs.features = context.test_batch().features(i, profile.sensors, options.elapsed_index,
                                                    profile.noise, rng,
                                                    profile.include_time_feature);
    inputs.entropy_threshold = options.entropy_threshold;
    if (scenarios[i].temperature_f < fusion::kFreezeThresholdF) {
      inputs.frozen = scenarios[i].frozen;
    }
    std::vector<hydraulics::NodeId> leak_nodes;
    for (const auto& event : scenarios[i].events) leak_nodes.push_back(event.node);
    const auto tweets = tweet_generator.generate(context.network(), leak_nodes, elapsed, rng);
    const auto cliques = tweet_generator.build_cliques(context.network(), tweets);
    inputs.cliques = to_label_cliques(cliques, context.labels());
  }
  return batch;
}

void run_golden_case(const hydraulics::Network& net, ModelKind kind, const std::string& name) {
  ExperimentConfig config;
  config.train_samples = 120;
  config.test_samples = 8;
  config.scenarios.max_events = 2;
  config.seed = 31337;
  ExperimentContext context(net, config);

  EvalOptions options;
  options.kind = kind;
  const ProfileModel profile = context.train(options);
  const auto batch = build_batch(context, profile, options);

  const InferenceEngine engine(profile);
  const auto results = engine.infer_batch(batch);
  check_against_golden(name, render_results(batch, results));
}

TEST(PipelineGolden, EpaNetHybridRsl) {
  run_golden_case(networks::make_epa_net(), ModelKind::kHybridRsl, "epa_net_hybrid_rsl");
}

TEST(PipelineGolden, WsscSubnetLogisticR) {
  run_golden_case(networks::make_wssc_subnet(), ModelKind::kLogisticR, "wssc_subnet_logistic_r");
}

/// Exact rendering of a variant corpus: the generated scenario structure
/// (leaks with ramps, operational/demand windows, tank scale, sensor-fault
/// draws) plus the Δ-feature row each scenario produces through the
/// default replay-with-fallback batch. Pins the scenario-diversity
/// engine's generator streams, the variant hydraulics, and the sensor-
/// fault feature transform in one file per family.
std::string render_corpus(const hydraulics::Network& net, const ScenarioConfig& config,
                          std::size_t count) {
  ScenarioGenerator generator(net, config);
  const auto scenarios = generator.generate(count);
  const SnapshotBatch batch(net, scenarios, {1}, {});
  const auto sensors = sensing::full_observation(net);
  const sensing::NoiseModel noise;

  std::ostringstream out;
  out << "scenarios " << scenarios.size() << " replayed " << batch.stats().replayed
      << " full_run " << batch.stats().full_run << "\n";
  Rng root(config.seed ^ 0xfeed);
  std::vector<double> row(sensors.size() + 1);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const LeakScenario& s = scenarios[i];
    out << "scenario " << i << " slot " << s.leak_slot << " mask " << s.variant_mask
        << " tank " << hex(s.tank_init_scale) << "\n";
    out << "events";
    for (const auto& e : s.events) {
      out << ' ' << e.node << ':' << hex(e.coefficient) << ':' << hex(e.ramp_s);
    }
    out << "\nops";
    for (const auto& op : s.operations) {
      out << ' ' << op.link << ':' << hex(op.start_time_s) << ':' << hex(op.end_time_s);
    }
    out << "\ndemands";
    for (const auto& d : s.demand_events) {
      out << ' ' << d.node << ':' << hex(d.multiplier) << ':' << hex(d.start_time_s) << ':'
          << hex(d.end_time_s);
    }
    out << "\nsensor_faults";
    for (const auto& f : s.sensor_faults) {
      out << ' ' << static_cast<int>(f.kind) << ':' << hex(f.position) << ':' << hex(f.value)
          << ':' << f.start_slot;
    }
    Rng rng = root.split();
    const auto faults = sensing::resolve_sensor_faults(s.sensor_faults, sensors.size());
    batch.features_into(i, sensors, 0, noise, rng, true, faults, row);
    out << "\nfeatures";
    for (const double v : row) out << ' ' << hex(v);
    out << "\n";
  }
  return out.str();
}

ScenarioConfig corpus_config(std::uint64_t seed) {
  ScenarioConfig config;
  config.max_events = 2;
  config.seed = seed;
  return config;
}

TEST(CorpusGolden, OperationalVariants) {
  ScenarioConfig config = corpus_config(1101);
  config.faults = {make_fault_spec(FaultKind::kPumpOutage, 0.6),
                   make_fault_spec(FaultKind::kValveClosure, 0.6)};
  check_against_golden("corpus_operational",
                       render_corpus(networks::make_epa_net(), config, 6));
}

TEST(CorpusGolden, LeakRampVariants) {
  ScenarioConfig config = corpus_config(1102);
  config.faults = {make_fault_spec(FaultKind::kLeakRamp, 1.0)};
  check_against_golden("corpus_leak_ramp",
                       render_corpus(networks::make_epa_net(), config, 6));
}

TEST(CorpusGolden, DemandAndTankVariants) {
  ScenarioConfig config = corpus_config(1103);
  config.faults = {make_fault_spec(FaultKind::kDemandSurge, 0.7),
                   make_fault_spec(FaultKind::kTankDrawdown, 0.5)};
  check_against_golden("corpus_demand_tank",
                       render_corpus(networks::make_epa_net(), config, 6));
}

TEST(CorpusGolden, SensorFaultVariants) {
  ScenarioConfig config = corpus_config(1104);
  config.faults = {make_fault_spec(FaultKind::kSensorDropout, 0.5),
                   make_fault_spec(FaultKind::kSensorStuckAt, 0.5),
                   make_fault_spec(FaultKind::kSensorDrift, 0.5),
                   make_fault_spec(FaultKind::kSensorBias, 0.5)};
  check_against_golden("corpus_sensor_fault",
                       render_corpus(networks::make_epa_net(), config, 6));
}

TEST(PipelineGolden, FusionStagesGoldenOnSyntheticBeliefs) {
  // A pure-fusion golden (no simulation/training): pins the weather Bayes
  // arithmetic and the tuning order of operations on handcrafted beliefs.
  Rng rng(0xbeefcafe);
  std::vector<InferenceResult> results;
  std::vector<InferenceInputs> batch;
  for (int i = 0; i < 5; ++i) {
    InferenceResult r;
    InferenceInputs inputs;
    for (int v = 0; v < 12; ++v) r.beliefs.p_leak.push_back(rng.uniform());
    inputs.frozen.resize(12);
    for (auto& f : inputs.frozen) f = rng.uniform() < 0.4 ? 1 : 0;
    for (int c = 0; c < 2; ++c) {
      fusion::LabelClique clique;
      clique.labels = {static_cast<std::size_t>(rng.uniform_int(0, 11)),
                       static_cast<std::size_t>(rng.uniform_int(0, 11))};
      inputs.cliques.push_back(clique);
    }
    inputs.entropy_threshold = 0.1;

    r.predicted_iot_only = r.beliefs.predicted_set();
    r.weather_updates = fusion::apply_weather_update(r.beliefs, inputs.frozen, 0.9);
    r.energy_before = fusion::total_energy(r.beliefs, inputs.cliques, inputs.entropy_threshold);
    r.tuning = fusion::apply_human_tuning(r.beliefs, inputs.cliques, inputs.entropy_threshold);
    r.energy_after = fusion::total_energy(r.beliefs, inputs.cliques, inputs.entropy_threshold);
    r.predicted = r.beliefs.predicted_set();
    results.push_back(std::move(r));
    batch.push_back(std::move(inputs));
  }
  check_against_golden("fusion_stages_synthetic", render_results(batch, results));
}

}  // namespace
}  // namespace aqua::core
