#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace aqua::ml {
namespace {

TEST(HammingScore, PerfectPrediction) {
  EXPECT_DOUBLE_EQ(hamming_score({1, 0, 1}, {1, 0, 1}), 1.0);
}

TEST(HammingScore, BothEmptyIsOne) {
  EXPECT_DOUBLE_EQ(hamming_score({0, 0, 0}, {0, 0, 0}), 1.0);
}

TEST(HammingScore, JaccardSemantics) {
  // pred {0,1}, true {1,2}: intersection {1}, union {0,1,2} -> 1/3.
  EXPECT_NEAR(hamming_score({1, 1, 0, 0}, {0, 1, 1, 0}), 1.0 / 3.0, 1e-12);
}

TEST(HammingScore, MissEverything) {
  EXPECT_DOUBLE_EQ(hamming_score({0, 0, 1}, {1, 1, 0}), 0.0);
}

TEST(HammingScore, FalsePositivesPenalized) {
  // One true leak found plus one spurious: 1/2.
  EXPECT_DOUBLE_EQ(hamming_score({1, 1, 0}, {1, 0, 0}), 0.5);
}

TEST(HammingScore, ArityMismatchThrows) {
  EXPECT_THROW(hamming_score({1, 0}, {1, 0, 0}), InvalidArgument);
}

TEST(MeanHamming, AveragesAcrossSamples) {
  const std::vector<Labels> pred{{1, 0}, {0, 1}};
  const std::vector<Labels> truth{{1, 0}, {1, 0}};
  EXPECT_DOUBLE_EQ(mean_hamming_score(pred, truth), 0.5);  // (1 + 0) / 2
}

TEST(MeanHamming, EmptyThrows) {
  EXPECT_THROW(mean_hamming_score({}, {}), InvalidArgument);
}

TEST(SubsetAccuracy, ExactMatchesOnly) {
  const std::vector<Labels> pred{{1, 0}, {0, 1}, {1, 1}};
  const std::vector<Labels> truth{{1, 0}, {1, 1}, {1, 1}};
  EXPECT_NEAR(subset_accuracy(pred, truth), 2.0 / 3.0, 1e-12);
}

TEST(MicroPrf, CountsAggregateAcrossSamples) {
  const std::vector<Labels> pred{{1, 1, 0}, {0, 1, 0}};
  const std::vector<Labels> truth{{1, 0, 0}, {0, 1, 1}};
  const auto prf = micro_precision_recall(pred, truth);
  EXPECT_EQ(prf.true_positives, 2u);
  EXPECT_EQ(prf.false_positives, 1u);
  EXPECT_EQ(prf.false_negatives, 1u);
  EXPECT_NEAR(prf.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(prf.recall, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(prf.f1, 2.0 / 3.0, 1e-12);
}

TEST(MicroPrf, NoPositivesAnywhere) {
  const std::vector<Labels> pred{{0, 0}};
  const std::vector<Labels> truth{{0, 0}};
  const auto prf = micro_precision_recall(pred, truth);
  EXPECT_DOUBLE_EQ(prf.precision, 1.0);
  EXPECT_DOUBLE_EQ(prf.recall, 1.0);
}

TEST(BinaryAccuracy, Fraction) {
  EXPECT_DOUBLE_EQ(binary_accuracy({1, 0, 1, 1}, {1, 1, 1, 0}), 0.5);
}

}  // namespace
}  // namespace aqua::ml
