// Property suite for the scenario-diversity engine (DESIGN.md §15): each
// variant family's documented physical/transform effect, the replay ≡
// full-run bit-identity for every baseline-compatible variant on both
// builtin networks, the full-run fallback for variants that invalidate the
// baseline, and the generator's fixed-draw-count determinism contract
// (prefix stability; fault specs never perturb the base leak stream).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/scenario.hpp"
#include "core/snapshots.hpp"
#include "hydraulics/replay.hpp"
#include "networks/builtin.hpp"
#include "sensing/sensors.hpp"

namespace aqua::core {
namespace {

constexpr double kSlot = 900.0;

hydraulics::LinkId link_named(const hydraulics::Network& net, const std::string& name) {
  const auto id = net.find_link(name);
  EXPECT_TRUE(id.has_value()) << "missing link " << name;
  return *id;
}

bool snapshots_identical(const SnapshotBatch& a, const SnapshotBatch& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& sa = a.snapshots(i);
    const auto& sb = b.snapshots(i);
    if (sa.before_pressure != sb.before_pressure || sa.before_flow != sb.before_flow ||
        sa.after_pressure != sb.after_pressure || sa.after_flow != sb.after_flow ||
        sa.day_fraction != sb.day_fraction) {
      return false;
    }
  }
  return true;
}

// --- Operational events ---------------------------------------------------

TEST(OperationalEvents, PumpOutageZeroesFlowDuringWindowOnly) {
  const auto net = networks::make_epa_net();
  const auto pump = link_named(net, "PU1");

  hydraulics::Simulation baseline(net, {});
  const auto healthy = baseline.run();

  hydraulics::Simulation sim(net, {});
  sim.schedule_operation({pump, 8 * kSlot, 12 * kSlot});
  const auto results = sim.run();

  // Healthy pump moves real water at every probed step.
  for (const std::size_t step : {6, 8, 10, 11, 14}) {
    ASSERT_GT(std::abs(healthy.flow(step, pump)), 1e-4) << "step " << step;
  }
  // Forced-closed: the 1e8 closed-resistance leaves only numerically tiny
  // leakage through the link.
  for (const std::size_t step : {8, 10, 11}) {
    EXPECT_LT(std::abs(results.flow(step, pump)), 1e-6) << "step " << step;
  }
  // Outside the window the pump works; before the window the trajectory is
  // even bit-identical to the healthy run (nothing has happened yet).
  for (const std::size_t step : {6, 14}) {
    EXPECT_GT(std::abs(results.flow(step, pump)), 1e-4) << "step " << step;
  }
  for (std::size_t step = 0; step < 8; ++step) {
    for (hydraulics::NodeId v = 0; v < net.num_nodes(); ++v) {
      ASSERT_EQ(results.pressure(step, v), healthy.pressure(step, v)) << "step " << step;
    }
  }
}

TEST(OperationalEvents, ValveClosureIsolatesDownstreamDemand) {
  const auto net = networks::make_epa_net();
  const auto valve = link_named(net, "V1");
  const auto downstream = net.link(valve).to;

  hydraulics::Simulation baseline(net, {});
  const auto healthy = baseline.run();

  hydraulics::Simulation sim(net, {});
  sim.schedule_operation({valve, 10 * kSlot, 16 * kSlot});
  const auto results = sim.run();

  for (const std::size_t step : {10, 12, 15}) {
    ASSERT_GT(std::abs(healthy.flow(step, valve)), 1e-5) << "step " << step;
    EXPECT_LT(std::abs(results.flow(step, valve)), 1e-6) << "step " << step;
    // The node fed through the valve loses supply pressure while its
    // demand keeps drawing: pressure must drop relative to healthy.
    EXPECT_LT(results.pressure(step, downstream), healthy.pressure(step, downstream))
        << "step " << step;
  }
}

TEST(OperationalEvents, ScheduleValidation) {
  const auto net = networks::make_epa_net();
  hydraulics::Simulation sim(net, {});
  EXPECT_THROW(sim.schedule_operation({0, 900.0, 900.0}), InvalidArgument);  // empty window
  EXPECT_THROW(sim.schedule_operation({net.num_links(), 0.0, 900.0}), InvalidArgument);
  EXPECT_THROW(sim.schedule_operation({0, -900.0, 900.0}), InvalidArgument);
}

// --- Time-varying (ramping) leaks ----------------------------------------

TEST(LeakRamp, CoefficientRampIsMonotoneAndClamped) {
  hydraulics::LeakEvent event;
  event.coefficient = 0.004;
  event.start_time_s = 10 * kSlot;
  event.ramp_s = 4 * kSlot;
  EXPECT_EQ(event.coefficient_at(9 * kSlot), 0.0);
  EXPECT_EQ(event.coefficient_at(10 * kSlot), 0.0);  // ramp starts from zero
  EXPECT_DOUBLE_EQ(event.coefficient_at(12 * kSlot), 0.002);
  EXPECT_DOUBLE_EQ(event.coefficient_at(14 * kSlot), 0.004);
  EXPECT_DOUBLE_EQ(event.coefficient_at(20 * kSlot), 0.004);  // clamped at full size
  double previous = -1.0;
  for (int s = 0; s <= 30; ++s) {
    const double ec = event.coefficient_at(s * kSlot / 2.0);
    EXPECT_GE(ec, previous);
    previous = ec;
  }
  // ramp_s = 0 reduces exactly to the paper's instantaneous model.
  event.ramp_s = 0.0;
  EXPECT_EQ(event.coefficient_at(10 * kSlot), 0.004);
}

TEST(LeakRamp, RampedLeakGrowsAndLeaksLessThanConstant) {
  const auto net = networks::make_epa_net();
  hydraulics::NodeId node = 0;
  for (hydraulics::NodeId v = 0; v < net.num_nodes(); ++v) {
    if (net.node(v).type == hydraulics::NodeType::kJunction) {
      node = v;
      break;
    }
  }
  hydraulics::LeakEvent event;
  event.node = node;
  event.coefficient = 0.004;
  event.start_time_s = 10 * kSlot;

  hydraulics::Simulation constant_sim(net, {});
  constant_sim.schedule_leak(event);
  const auto constant = constant_sim.run();

  event.ramp_s = 6 * kSlot;
  hydraulics::Simulation ramped_sim(net, {});
  ramped_sim.schedule_leak(event);
  const auto ramped = ramped_sim.run();

  // At onset the ramp is still at EC = 0; by the end of the ramp the
  // emitter runs at full size.
  EXPECT_EQ(ramped.emitter_outflow(10, node), 0.0);
  EXPECT_GT(ramped.emitter_outflow(13, node), 0.0);
  EXPECT_GT(ramped.emitter_outflow(16, node), ramped.emitter_outflow(13, node));
  EXPECT_GT(constant.emitter_outflow(10, node), 0.0);
  // The monotone EC schedule can never out-leak the constant-EC leak.
  EXPECT_LT(ramped.leaked_volume(), constant.leaked_volume());
  EXPECT_GT(ramped.leaked_volume(), 0.0);
}

// --- Demand surges --------------------------------------------------------

TEST(DemandSurge, PerturbsOnlyTheWindowForward) {
  const auto net = networks::make_epa_net();
  hydraulics::NodeId surge_node = 0;
  for (hydraulics::NodeId v = 0; v < net.num_nodes(); ++v) {
    if (net.node(v).type == hydraulics::NodeType::kJunction && net.node(v).base_demand > 0.0) {
      surge_node = v;
      break;
    }
  }

  hydraulics::Simulation baseline(net, {});
  const auto healthy = baseline.run();

  hydraulics::Simulation sim(net, {});
  sim.schedule_demand_event({surge_node, 4.0, 12 * kSlot, 16 * kSlot});
  const auto results = sim.run();

  // Bit-identical before the window opens...
  for (std::size_t step = 0; step < 12; ++step) {
    for (hydraulics::NodeId v = 0; v < net.num_nodes(); ++v) {
      ASSERT_EQ(results.pressure(step, v), healthy.pressure(step, v)) << "step " << step;
    }
  }
  // ...and a real hydraulic difference inside it (extra draw lowers the
  // surged junction's pressure).
  for (const std::size_t step : {12, 14, 15}) {
    EXPECT_LT(results.pressure(step, surge_node), healthy.pressure(step, surge_node))
        << "step " << step;
  }
}

TEST(DemandSurge, ScheduleValidation) {
  const auto net = networks::make_epa_net();
  hydraulics::Simulation sim(net, {});
  hydraulics::NodeId reservoir = 0;
  for (hydraulics::NodeId v = 0; v < net.num_nodes(); ++v) {
    if (net.node(v).type != hydraulics::NodeType::kJunction) reservoir = v;
  }
  EXPECT_THROW(sim.schedule_demand_event({reservoir, 2.0, 0.0, 900.0}), InvalidArgument);
  EXPECT_THROW(sim.schedule_demand_event({0, 0.0, 0.0, 900.0}), InvalidArgument);
  EXPECT_THROW(sim.schedule_demand_event({0, 2.0, 900.0, 900.0}), InvalidArgument);
}

// --- Tank drawdown --------------------------------------------------------

TEST(TankDrawdown, ScalesInitialLevelsAndRefusesReplay) {
  const auto net = networks::make_epa_net();
  hydraulics::NodeId tank = 0;
  for (hydraulics::NodeId v = 0; v < net.num_nodes(); ++v) {
    if (net.node(v).type == hydraulics::NodeType::kTank) tank = v;
  }

  hydraulics::Simulation full_sim(net, {});
  const auto full_levels = full_sim.run();

  hydraulics::Simulation drawn_sim(net, {});
  drawn_sim.set_tank_init_scale(0.5);
  const auto drawn = drawn_sim.run();

  // Tank head reflects level (head = elevation + level): the drawn-down
  // start must sit strictly below the baseline at t = 0.
  EXPECT_LT(drawn.head(0, tank), full_levels.head(0, tank));

  // The scaled start invalidates every baseline checkpoint: replay refuses.
  const hydraulics::BaselineTrajectory baseline(net, {}, 20);
  hydraulics::Simulation replay_sim(net, {});
  replay_sim.set_tank_init_scale(0.5);
  EXPECT_THROW(replay_sim.run_from(baseline, 10), InvalidArgument);
  EXPECT_THROW(drawn_sim.set_tank_init_scale(0.0), InvalidArgument);
}

// --- Sensor-fault layer ---------------------------------------------------

TEST(SensorFaults, TransformsMatchTheDocumentedContract) {
  using sensing::SensorFault;
  using sensing::SensorFaultKind;
  const double reading = 3.25;

  SensorFault fault{SensorFaultKind::kDropout, 0, 99.0, 5};
  EXPECT_EQ(sensing::apply_sensor_fault(fault, reading, 4), reading);  // pre-onset
  EXPECT_EQ(sensing::apply_sensor_fault(fault, reading, 5), 0.0);

  fault = {SensorFaultKind::kStuckAt, 0, 1.5, 5};
  EXPECT_EQ(sensing::apply_sensor_fault(fault, reading, 7), 1.5);

  fault = {SensorFaultKind::kDrift, 0, 0.25, 5};
  EXPECT_EQ(sensing::apply_sensor_fault(fault, reading, 5), reading);  // zero slots elapsed
  EXPECT_DOUBLE_EQ(sensing::apply_sensor_fault(fault, reading, 9), reading + 0.25 * 4.0);

  fault = {SensorFaultKind::kBias, 0, -0.75, 5};
  EXPECT_DOUBLE_EQ(sensing::apply_sensor_fault(fault, reading, 5), reading - 0.75);
}

TEST(SensorFaults, ResolvePositionsAndApplyInListOrder) {
  std::vector<sensing::SensorFaultDraw> draws(2);
  draws[0] = {sensing::SensorFaultKind::kBias, 0.99, 1.0, 0};
  draws[1] = {sensing::SensorFaultKind::kStuckAt, 0.0, 7.0, 0};
  const auto faults = sensing::resolve_sensor_faults(draws, 10);
  ASSERT_EQ(faults.size(), 2u);
  EXPECT_EQ(faults[0].sensor, 9u);  // floor(0.99 * 10)
  EXPECT_EQ(faults[1].sensor, 0u);

  // Two faults landing on one sensor compose in list order: bias then
  // stuck-at means stuck-at wins.
  std::vector<sensing::SensorFault> stacked = {
      {sensing::SensorFaultKind::kBias, 0, 1.0, 0},
      {sensing::SensorFaultKind::kStuckAt, 0, 7.0, 0},
  };
  std::vector<double> readings = {2.0, 3.0};
  sensing::apply_sensor_faults(stacked, readings, 0);
  EXPECT_EQ(readings[0], 7.0);
  EXPECT_EQ(readings[1], 3.0);

  EXPECT_THROW(sensing::resolve_sensor_faults(
                   std::vector<sensing::SensorFaultDraw>{
                       {sensing::SensorFaultKind::kBias, 1.0, 0.0, 0}},
                   10),
               InvalidArgument);
}

TEST(SensorFaults, FeatureDeltasShiftExactlyAsDocumented) {
  const auto net = networks::make_epa_net();
  ScenarioConfig config;
  config.max_events = 1;
  config.seed = 555;
  ScenarioGenerator generator(net, config);
  const auto scenarios = generator.generate(1);
  const SnapshotBatch batch(net, scenarios, {1}, {});
  const auto sensors = sensing::full_observation(net);
  const sensing::NoiseModel noise;
  const std::size_t leak_slot = scenarios[0].leak_slot;

  std::vector<double> clean(sensors.size() + 1), faulted(sensors.size() + 1);
  // A bias starting AT the leak slot hits only the "after" reading, so the
  // Δ of the faulted sensor moves by exactly the bias value (same noise
  // stream on both sides).
  const std::vector<sensing::SensorFault> bias = {
      {sensing::SensorFaultKind::kBias, 3, 0.5, leak_slot}};
  Rng rng_a(42), rng_b(42);
  batch.features_into(0, sensors, 0, noise, rng_a, true, clean);
  batch.features_into(0, sensors, 0, noise, rng_b, true, bias, faulted);
  for (std::size_t k = 0; k < clean.size(); ++k) {
    if (k == 3) {
      EXPECT_DOUBLE_EQ(faulted[k], clean[k] + 0.5);
    } else {
      EXPECT_EQ(faulted[k], clean[k]) << "sensor " << k;
    }
  }

  // A dropout active from slot 0 zeroes both readings: Δ = 0 exactly.
  const std::vector<sensing::SensorFault> dropout = {
      {sensing::SensorFaultKind::kDropout, 7, 0.0, 0}};
  Rng rng_c(42);
  batch.features_into(0, sensors, 0, noise, rng_c, true, dropout, faulted);
  EXPECT_EQ(faulted[7], 0.0);

  // A bias active before both slots cancels in the Δ.
  const std::vector<sensing::SensorFault> early_bias = {
      {sensing::SensorFaultKind::kBias, 3, 0.5, 0}};
  Rng rng_d(42);
  batch.features_into(0, sensors, 0, noise, rng_d, true, early_bias, faulted);
  EXPECT_DOUBLE_EQ(faulted[3], clean[3]);
}

// --- Replay compatibility and fallback ------------------------------------

void expect_mixed_corpus_replay_identity(const hydraulics::Network& net) {
  ScenarioConfig config;
  config.max_events = 2;
  config.seed = 8080;
  config.faults = {
      make_fault_spec(FaultKind::kPumpOutage, 0.5),
      make_fault_spec(FaultKind::kValveClosure, 0.5),
      make_fault_spec(FaultKind::kLeakRamp, 0.5),
      make_fault_spec(FaultKind::kDemandSurge, 0.5),
      make_fault_spec(FaultKind::kSensorBias, 0.5),
  };
  ScenarioGenerator generator(net, config);
  const auto scenarios = generator.generate(24);

  // Default specs start windows at/after the leak slot, so every scenario
  // stays baseline-compatible and replays.
  std::size_t with_dynamics = 0;
  for (const auto& s : scenarios) {
    EXPECT_TRUE(s.replay_compatible(config.hydraulic_step_s));
    if (!s.operations.empty() || !s.demand_events.empty()) ++with_dynamics;
  }
  EXPECT_GT(with_dynamics, 0u) << "mix produced no hydraulic variants";

  const SnapshotBatch replay(net, scenarios, {1, 2}, {}, true, true);
  const SnapshotBatch full(net, scenarios, {1, 2}, {}, true, false);
  EXPECT_EQ(replay.stats().replayed, scenarios.size());
  EXPECT_EQ(replay.stats().full_run, 0u);
  EXPECT_EQ(full.stats().full_run, scenarios.size());
  EXPECT_TRUE(snapshots_identical(replay, full));
}

TEST(ReplayCompatibility, MixedVariantCorpusReplaysBitIdenticallyOnEpaNet) {
  expect_mixed_corpus_replay_identity(networks::make_epa_net());
}

TEST(ReplayCompatibility, MixedVariantCorpusReplaysBitIdenticallyOnWsscSubnet) {
  expect_mixed_corpus_replay_identity(networks::make_wssc_subnet());
}

TEST(ReplayCompatibility, BaselineInvalidatingVariantsFallBackToFullRuns) {
  const auto net = networks::make_epa_net();
  ScenarioConfig config;
  config.max_events = 2;
  config.seed = 9090;
  // Tank drawdown always invalidates the baseline; a valve closure opening
  // BEFORE the leak slot does too.
  FaultSpec early_valve = make_fault_spec(FaultKind::kValveClosure);
  early_valve.offset_min_slots = -3;
  early_valve.offset_max_slots = -1;
  config.faults = {make_fault_spec(FaultKind::kTankDrawdown), early_valve};
  ScenarioGenerator generator(net, config);
  const auto scenarios = generator.generate(8);

  for (const auto& s : scenarios) {
    EXPECT_FALSE(s.replay_compatible(config.hydraulic_step_s));
    EXPECT_NE(s.tank_init_scale, 1.0);
  }

  // The batch notices on its own, runs everything full, and still matches
  // the forced-full batch exactly.
  const SnapshotBatch batch(net, scenarios, {1}, {}, true, true);
  EXPECT_EQ(batch.stats().replayed, 0u);
  EXPECT_EQ(batch.stats().full_run, scenarios.size());
  const SnapshotBatch full(net, scenarios, {1}, {}, true, false);
  EXPECT_TRUE(snapshots_identical(batch, full));
}

// --- Generator determinism contract ---------------------------------------

bool scenarios_equal(const LeakScenario& a, const LeakScenario& b) {
  if (a.leak_slot != b.leak_slot || a.truth != b.truth || a.frozen != b.frozen ||
      a.temperature_f != b.temperature_f || a.tank_init_scale != b.tank_init_scale ||
      a.variant_mask != b.variant_mask || a.events.size() != b.events.size() ||
      a.operations.size() != b.operations.size() ||
      a.demand_events.size() != b.demand_events.size() ||
      a.sensor_faults.size() != b.sensor_faults.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    if (a.events[i].node != b.events[i].node ||
        a.events[i].coefficient != b.events[i].coefficient ||
        a.events[i].start_time_s != b.events[i].start_time_s ||
        a.events[i].ramp_s != b.events[i].ramp_s) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.operations.size(); ++i) {
    if (a.operations[i].link != b.operations[i].link ||
        a.operations[i].start_time_s != b.operations[i].start_time_s ||
        a.operations[i].end_time_s != b.operations[i].end_time_s) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.demand_events.size(); ++i) {
    if (a.demand_events[i].node != b.demand_events[i].node ||
        a.demand_events[i].multiplier != b.demand_events[i].multiplier ||
        a.demand_events[i].start_time_s != b.demand_events[i].start_time_s ||
        a.demand_events[i].end_time_s != b.demand_events[i].end_time_s) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.sensor_faults.size(); ++i) {
    if (a.sensor_faults[i].kind != b.sensor_faults[i].kind ||
        a.sensor_faults[i].position != b.sensor_faults[i].position ||
        a.sensor_faults[i].value != b.sensor_faults[i].value ||
        a.sensor_faults[i].start_slot != b.sensor_faults[i].start_slot) {
      return false;
    }
  }
  return true;
}

ScenarioConfig mixed_config(std::uint64_t seed) {
  ScenarioConfig config;
  config.max_events = 3;
  config.seed = seed;
  config.faults = {
      make_fault_spec(FaultKind::kPumpOutage, 0.4),
      make_fault_spec(FaultKind::kValveClosure, 0.4),
      make_fault_spec(FaultKind::kLeakRamp, 0.4),
      make_fault_spec(FaultKind::kDemandSurge, 0.4),
      make_fault_spec(FaultKind::kTankDrawdown, 0.2),
      make_fault_spec(FaultKind::kSensorDropout, 0.3),
      make_fault_spec(FaultKind::kSensorBias, 0.3),
  };
  return config;
}

TEST(GeneratorDeterminism, GenerateIsPrefixStable) {
  const auto net = networks::make_epa_net();
  ScenarioGenerator a(net, mixed_config(777));
  ScenarioGenerator b(net, mixed_config(777));
  const auto hundred = a.generate(100);
  const auto two_hundred = b.generate(200);
  for (std::size_t i = 0; i < hundred.size(); ++i) {
    ASSERT_TRUE(scenarios_equal(hundred[i], two_hundred[i])) << "scenario " << i;
  }
}

TEST(GeneratorDeterminism, FaultSpecsDoNotShiftTheBaseLeakStream) {
  const auto net = networks::make_epa_net();
  ScenarioConfig plain;
  plain.max_events = 3;
  plain.seed = 777;
  ScenarioGenerator without(net, plain);
  ScenarioGenerator with(net, mixed_config(777));
  const auto clean = without.generate(50);
  const auto varied = with.generate(50);
  std::uint32_t fired = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    // Base leak fields are identical scenario for scenario; only the
    // variant layer differs.
    ASSERT_EQ(clean[i].leak_slot, varied[i].leak_slot) << i;
    ASSERT_EQ(clean[i].truth, varied[i].truth) << i;
    ASSERT_EQ(clean[i].events.size(), varied[i].events.size()) << i;
    for (std::size_t e = 0; e < clean[i].events.size(); ++e) {
      ASSERT_EQ(clean[i].events[e].node, varied[i].events[e].node) << i;
      ASSERT_EQ(clean[i].events[e].coefficient, varied[i].events[e].coefficient) << i;
    }
    EXPECT_EQ(clean[i].variant_mask, 0u);
    fired |= varied[i].variant_mask;
  }
  // Every family in the mix fired somewhere across 50 scenarios.
  for (const FaultKind kind :
       {FaultKind::kPumpOutage, FaultKind::kValveClosure, FaultKind::kLeakRamp,
        FaultKind::kDemandSurge, FaultKind::kTankDrawdown, FaultKind::kSensorDropout,
        FaultKind::kSensorBias}) {
    EXPECT_NE(fired & fault_bit(kind), 0u) << fault_kind_name(kind);
  }
}

TEST(GeneratorDeterminism, InapplicableSpecsNeverFireAndNeverPerturb) {
  // WSSC-SUBNET has no pumps and no tanks: those specs must be inert there
  // while still not perturbing any other draw.
  const auto net = networks::make_wssc_subnet();
  ScenarioConfig plain;
  plain.max_events = 2;
  plain.seed = 31;
  ScenarioConfig with_inert = plain;
  with_inert.faults = {make_fault_spec(FaultKind::kPumpOutage),
                       make_fault_spec(FaultKind::kTankDrawdown)};
  ScenarioGenerator a(net, plain);
  ScenarioGenerator b(net, with_inert);
  const auto clean = a.generate(20);
  const auto inert = b.generate(20);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_TRUE(inert[i].operations.empty());
    EXPECT_EQ(inert[i].tank_init_scale, 1.0);
    EXPECT_EQ(inert[i].variant_mask, 0u);
    ASSERT_TRUE(scenarios_equal(clean[i], inert[i])) << "scenario " << i;
  }
}

TEST(GeneratorDeterminism, SpecValidation) {
  const auto net = networks::make_epa_net();
  ScenarioConfig config;
  FaultSpec bad = make_fault_spec(FaultKind::kDemandSurge);
  bad.probability = 1.5;
  config.faults = {bad};
  EXPECT_THROW(ScenarioGenerator(net, config), InvalidArgument);

  bad = make_fault_spec(FaultKind::kPumpOutage);
  bad.duration_min_slots = 0;
  config.faults = {bad};
  EXPECT_THROW(ScenarioGenerator(net, config), InvalidArgument);

  bad = make_fault_spec(FaultKind::kSensorBias);
  bad.targets_min = 0;
  config.faults = {bad};
  EXPECT_THROW(ScenarioGenerator(net, config), InvalidArgument);

  bad = make_fault_spec(FaultKind::kTankDrawdown);
  bad.magnitude_min = -0.5;
  config.faults = {bad};
  EXPECT_THROW(ScenarioGenerator(net, config), InvalidArgument);
}

}  // namespace
}  // namespace aqua::core
