// Property-style parameterized sweeps over both built-in networks and a
// range of operating conditions: physical invariants the hydraulic
// substrate must satisfy regardless of configuration.
#include <gtest/gtest.h>

#include <cmath>

#include "core/aquascale.hpp"

namespace aqua::hydraulics {
namespace {

struct NetworkCase {
  std::string name;
  Network (*make)();
};

std::vector<NetworkCase> networks_under_test() {
  return {{"EpaNet", networks::make_epa_net}, {"WsscSubnet", networks::make_wssc_subnet}};
}

class EveryNetwork : public ::testing::TestWithParam<NetworkCase> {};

TEST_P(EveryNetwork, MassBalanceHoldsAtEveryJunction) {
  const auto net = GetParam().make();
  GgaSolver solver(net);
  const auto state = solver.solve_snapshot();
  ASSERT_TRUE(state.converged);
  for (const NodeId v : net.junction_ids()) {
    double net_inflow = 0.0;
    for (LinkId l = 0; l < net.num_links(); ++l) {
      if (net.link(l).to == v) net_inflow += state.flow[l];
      if (net.link(l).from == v) net_inflow -= state.flow[l];
    }
    const double demand = net.demand_at(v, 0) + state.emitter_outflow[v];
    EXPECT_NEAR(net_inflow, demand, 2e-4) << GetParam().name << " node " << v;
  }
}

TEST_P(EveryNetwork, EnergyConservedAroundEveryLink) {
  // H_from - H_to must equal the head loss implied by the link's flow.
  const auto net = GetParam().make();
  GgaSolver solver(net);
  const auto state = solver.solve_snapshot();
  ASSERT_TRUE(state.converged);
  for (LinkId l = 0; l < net.num_links(); ++l) {
    const Link& link = net.link(l);
    const auto lg = link_loss(link, state.flow[l], HeadLossModel::kHazenWilliams);
    EXPECT_NEAR(state.head[link.from] - state.head[link.to], lg.loss, 0.05)
        << GetParam().name << " link " << link.name;
  }
}

TEST_P(EveryNetwork, LeakAlwaysIncreasesSourceOutput) {
  const auto healthy = GetParam().make();
  GgaSolver healthy_solver(healthy);
  const auto base = healthy_solver.solve_snapshot();
  auto source_output = [&](const Network& net, const HydraulicState& state) {
    double total = 0.0;
    for (LinkId l = 0; l < net.num_links(); ++l) {
      const Link& link = net.link(l);
      if (net.node(link.from).type == NodeType::kReservoir) total += state.flow[l];
      if (net.node(link.to).type == NodeType::kReservoir) total -= state.flow[l];
    }
    return total;
  };
  auto leaky = GetParam().make();
  leaky.set_emitter(leaky.junction_ids()[17], 0.005);
  GgaSolver leaky_solver(leaky);
  const auto after = leaky_solver.solve_snapshot();
  EXPECT_GT(source_output(leaky, after), source_output(healthy, base)) << GetParam().name;
}

TEST_P(EveryNetwork, BiggerLeakBiggerDrawdown) {
  const auto base = GetParam().make();
  const NodeId target = base.junction_ids()[25];
  double previous_pressure = 1e18;
  for (const double ec : {0.001, 0.004, 0.008}) {
    auto net = GetParam().make();
    net.set_emitter(target, ec);
    GgaSolver solver(net);
    const auto state = solver.solve_snapshot();
    ASSERT_TRUE(state.converged) << GetParam().name << " ec " << ec;
    EXPECT_LT(state.pressure[target], previous_pressure) << GetParam().name << " ec " << ec;
    previous_pressure = state.pressure[target];
  }
}

TEST_P(EveryNetwork, DemandScalingLowersPressureMonotonically) {
  // Higher system-wide demand -> lower minimum service pressure.
  double previous_min = 1e18;
  for (const double scale : {0.5, 1.0, 1.6}) {
    auto net = GetParam().make();
    GgaSolver solver(net);
    std::vector<double> demands(net.num_nodes(), 0.0), fixed(net.num_nodes(), 0.0);
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      demands[v] = net.demand_at(v, 0) * scale;
      const auto& node = net.node(v);
      if (node.type == NodeType::kReservoir) fixed[v] = node.elevation;
      if (node.type == NodeType::kTank) fixed[v] = node.elevation + node.init_level;
    }
    const auto state = solver.solve(demands, fixed);
    ASSERT_TRUE(state.converged);
    double min_pressure = 1e18;
    for (const NodeId v : net.junction_ids()) {
      min_pressure = std::min(min_pressure, state.pressure[v]);
    }
    EXPECT_LT(min_pressure, previous_min + 1e-9) << GetParam().name << " scale " << scale;
    previous_min = min_pressure;
  }
}

TEST_P(EveryNetwork, EpsIsDeterministic) {
  const auto net = GetParam().make();
  SimulationOptions options;
  options.duration_s = 2 * 3600.0;
  Simulation a(net, options), b(net, options);
  const auto ra = a.run();
  const auto rb = b.run();
  for (std::size_t s = 0; s < ra.num_steps(); ++s) {
    for (NodeId v = 0; v < ra.num_nodes(); ++v) {
      ASSERT_DOUBLE_EQ(ra.pressure(s, v), rb.pressure(s, v));
    }
  }
}

TEST_P(EveryNetwork, DarcyWeisbachModeAlsoConverges) {
  auto net = GetParam().make();
  // DW interprets roughness in mm; rewrite pipe roughness accordingly.
  for (LinkId l = 0; l < net.num_links(); ++l) {
    if (net.link(l).type == LinkType::kPipe) net.link(l).roughness = 0.3;
  }
  SolverOptions options;
  options.headloss = HeadLossModel::kDarcyWeisbach;
  GgaSolver solver(net, options);
  const auto state = solver.solve_snapshot();
  EXPECT_TRUE(state.converged) << GetParam().name;
  for (const NodeId v : net.junction_ids()) {
    EXPECT_GT(state.pressure[v], 0.0) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(BuiltinNetworks, EveryNetwork,
                         ::testing::ValuesIn(networks_under_test()),
                         [](const ::testing::TestParamInfo<NetworkCase>& info) {
                           return info.param.name;
                         });

/// Emitter-exponent sweep: Eq. 1 must hold at the solution for any beta.
class EmitterExponent : public ::testing::TestWithParam<double> {};

TEST_P(EmitterExponent, EquationOneHoldsAtSolution) {
  const double beta = GetParam();
  Network net("beta");
  const NodeId r = net.add_reservoir("R", 50.0);
  const NodeId a = net.add_junction("A", 10.0, 5.0);
  net.add_pipe("P", r, a, 300.0, 0.3, 120.0);
  net.set_emitter(a, 0.002, beta);
  GgaSolver solver(net);
  const auto state = solver.solve_snapshot();
  ASSERT_TRUE(state.converged) << "beta " << beta;
  const double p = state.pressure[a];
  ASSERT_GT(p, 1.0);
  EXPECT_NEAR(state.emitter_outflow[a], 0.002 * std::pow(p, beta), 1e-7) << "beta " << beta;
}

INSTANTIATE_TEST_SUITE_P(BetaSweep, EmitterExponent,
                         ::testing::Values(0.5, 0.75, 1.0, 1.5, 2.0, 2.5));

/// Leak-slot sweep: the scheduled activation must be exact at any slot.
class LeakSlot : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LeakSlot, ActivationIsExactlyOnSchedule) {
  const std::size_t slot = GetParam();
  const auto net = networks::make_epa_net();
  const NodeId target = net.junction_ids()[30];
  SimulationOptions options;
  options.duration_s = static_cast<double>(slot + 2) * 900.0;
  Simulation sim(net, options);
  sim.schedule_leak({target, 0.003, 0.5, static_cast<double>(slot) * 900.0});
  const auto results = sim.run();
  EXPECT_DOUBLE_EQ(results.emitter_outflow(slot - 1, target), 0.0);
  EXPECT_GT(results.emitter_outflow(slot, target), 0.0);
}

INSTANTIATE_TEST_SUITE_P(SlotSweep, LeakSlot, ::testing::Values(1u, 4u, 16u, 40u, 80u));

}  // namespace
}  // namespace aqua::hydraulics
