// Property-style parameterized sweeps over both built-in networks and a
// range of operating conditions: physical invariants the hydraulic
// substrate must satisfy regardless of configuration.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/aquascale.hpp"
#include "core/inference_engine.hpp"

namespace aqua::hydraulics {
namespace {

struct NetworkCase {
  std::string name;
  Network (*make)();
};

std::vector<NetworkCase> networks_under_test() {
  return {{"EpaNet", networks::make_epa_net}, {"WsscSubnet", networks::make_wssc_subnet}};
}

class EveryNetwork : public ::testing::TestWithParam<NetworkCase> {};

TEST_P(EveryNetwork, MassBalanceHoldsAtEveryJunction) {
  const auto net = GetParam().make();
  GgaSolver solver(net);
  const auto state = solver.solve_snapshot();
  ASSERT_TRUE(state.converged);
  for (const NodeId v : net.junction_ids()) {
    double net_inflow = 0.0;
    for (LinkId l = 0; l < net.num_links(); ++l) {
      if (net.link(l).to == v) net_inflow += state.flow[l];
      if (net.link(l).from == v) net_inflow -= state.flow[l];
    }
    const double demand = net.demand_at(v, 0) + state.emitter_outflow[v];
    EXPECT_NEAR(net_inflow, demand, 2e-4) << GetParam().name << " node " << v;
  }
}

TEST_P(EveryNetwork, EnergyConservedAroundEveryLink) {
  // H_from - H_to must equal the head loss implied by the link's flow.
  const auto net = GetParam().make();
  GgaSolver solver(net);
  const auto state = solver.solve_snapshot();
  ASSERT_TRUE(state.converged);
  for (LinkId l = 0; l < net.num_links(); ++l) {
    const Link& link = net.link(l);
    const auto lg = link_loss(link, state.flow[l], HeadLossModel::kHazenWilliams);
    EXPECT_NEAR(state.head[link.from] - state.head[link.to], lg.loss, 0.05)
        << GetParam().name << " link " << link.name;
  }
}

TEST_P(EveryNetwork, LeakAlwaysIncreasesSourceOutput) {
  const auto healthy = GetParam().make();
  GgaSolver healthy_solver(healthy);
  const auto base = healthy_solver.solve_snapshot();
  auto source_output = [&](const Network& net, const HydraulicState& state) {
    double total = 0.0;
    for (LinkId l = 0; l < net.num_links(); ++l) {
      const Link& link = net.link(l);
      if (net.node(link.from).type == NodeType::kReservoir) total += state.flow[l];
      if (net.node(link.to).type == NodeType::kReservoir) total -= state.flow[l];
    }
    return total;
  };
  auto leaky = GetParam().make();
  leaky.set_emitter(leaky.junction_ids()[17], 0.005);
  GgaSolver leaky_solver(leaky);
  const auto after = leaky_solver.solve_snapshot();
  EXPECT_GT(source_output(leaky, after), source_output(healthy, base)) << GetParam().name;
}

TEST_P(EveryNetwork, BiggerLeakBiggerDrawdown) {
  const auto base = GetParam().make();
  const NodeId target = base.junction_ids()[25];
  double previous_pressure = 1e18;
  for (const double ec : {0.001, 0.004, 0.008}) {
    auto net = GetParam().make();
    net.set_emitter(target, ec);
    GgaSolver solver(net);
    const auto state = solver.solve_snapshot();
    ASSERT_TRUE(state.converged) << GetParam().name << " ec " << ec;
    EXPECT_LT(state.pressure[target], previous_pressure) << GetParam().name << " ec " << ec;
    previous_pressure = state.pressure[target];
  }
}

TEST_P(EveryNetwork, DemandScalingLowersPressureMonotonically) {
  // Higher system-wide demand -> lower minimum service pressure.
  double previous_min = 1e18;
  for (const double scale : {0.5, 1.0, 1.6}) {
    auto net = GetParam().make();
    GgaSolver solver(net);
    std::vector<double> demands(net.num_nodes(), 0.0), fixed(net.num_nodes(), 0.0);
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      demands[v] = net.demand_at(v, 0) * scale;
      const auto& node = net.node(v);
      if (node.type == NodeType::kReservoir) fixed[v] = node.elevation;
      if (node.type == NodeType::kTank) fixed[v] = node.elevation + node.init_level;
    }
    const auto state = solver.solve(demands, fixed);
    ASSERT_TRUE(state.converged);
    double min_pressure = 1e18;
    for (const NodeId v : net.junction_ids()) {
      min_pressure = std::min(min_pressure, state.pressure[v]);
    }
    EXPECT_LT(min_pressure, previous_min + 1e-9) << GetParam().name << " scale " << scale;
    previous_min = min_pressure;
  }
}

TEST_P(EveryNetwork, EpsIsDeterministic) {
  const auto net = GetParam().make();
  SimulationOptions options;
  options.duration_s = 2 * 3600.0;
  Simulation a(net, options), b(net, options);
  const auto ra = a.run();
  const auto rb = b.run();
  for (std::size_t s = 0; s < ra.num_steps(); ++s) {
    for (NodeId v = 0; v < ra.num_nodes(); ++v) {
      ASSERT_DOUBLE_EQ(ra.pressure(s, v), rb.pressure(s, v));
    }
  }
}

TEST_P(EveryNetwork, DarcyWeisbachModeAlsoConverges) {
  auto net = GetParam().make();
  // DW interprets roughness in mm; rewrite pipe roughness accordingly.
  for (LinkId l = 0; l < net.num_links(); ++l) {
    if (net.link(l).type == LinkType::kPipe) net.link(l).roughness = 0.3;
  }
  SolverOptions options;
  options.headloss = HeadLossModel::kDarcyWeisbach;
  GgaSolver solver(net, options);
  const auto state = solver.solve_snapshot();
  EXPECT_TRUE(state.converged) << GetParam().name;
  for (const NodeId v : net.junction_ids()) {
    EXPECT_GT(state.pressure[v], 0.0) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(BuiltinNetworks, EveryNetwork,
                         ::testing::ValuesIn(networks_under_test()),
                         [](const ::testing::TestParamInfo<NetworkCase>& info) {
                           return info.param.name;
                         });

/// Emitter-exponent sweep: Eq. 1 must hold at the solution for any beta.
class EmitterExponent : public ::testing::TestWithParam<double> {};

TEST_P(EmitterExponent, EquationOneHoldsAtSolution) {
  const double beta = GetParam();
  Network net("beta");
  const NodeId r = net.add_reservoir("R", 50.0);
  const NodeId a = net.add_junction("A", 10.0, 5.0);
  net.add_pipe("P", r, a, 300.0, 0.3, 120.0);
  net.set_emitter(a, 0.002, beta);
  GgaSolver solver(net);
  const auto state = solver.solve_snapshot();
  ASSERT_TRUE(state.converged) << "beta " << beta;
  const double p = state.pressure[a];
  ASSERT_GT(p, 1.0);
  EXPECT_NEAR(state.emitter_outflow[a], 0.002 * std::pow(p, beta), 1e-7) << "beta " << beta;
}

INSTANTIATE_TEST_SUITE_P(BetaSweep, EmitterExponent,
                         ::testing::Values(0.5, 0.75, 1.0, 1.5, 2.0, 2.5));

/// Leak-slot sweep: the scheduled activation must be exact at any slot.
class LeakSlot : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LeakSlot, ActivationIsExactlyOnSchedule) {
  const std::size_t slot = GetParam();
  const auto net = networks::make_epa_net();
  const NodeId target = net.junction_ids()[30];
  SimulationOptions options;
  options.duration_s = static_cast<double>(slot + 2) * 900.0;
  Simulation sim(net, options);
  sim.schedule_leak({target, 0.003, 0.5, static_cast<double>(slot) * 900.0});
  const auto results = sim.run();
  EXPECT_DOUBLE_EQ(results.emitter_outflow(slot - 1, target), 0.0);
  EXPECT_GT(results.emitter_outflow(slot, target), 0.0);
}

INSTANTIATE_TEST_SUITE_P(SlotSweep, LeakSlot, ::testing::Values(1u, 4u, 16u, 40u, 80u));

}  // namespace
}  // namespace aqua::hydraulics

// ---------------------------------------------------------------------------
// Phase II fusion and serving-layer properties: invariants of the Bayes
// weather update, the human-tuning energy descent, and bit-identity of the
// batched InferenceEngine against the sequential Algorithm 2.
// ---------------------------------------------------------------------------

namespace aqua::core {
namespace {

/// Hand-rolled Algorithm 2 (the seed's sequential arithmetic), kept
/// independent of both infer_leaks and the engine so the bit-identity
/// property pins all three implementations to each other.
InferenceResult reference_infer(const ProfileModel& profile, const InferenceInputs& inputs) {
  InferenceResult result;
  result.beliefs.p_leak = profile.model.predict_proba(inputs.features);
  result.predicted_iot_only = result.beliefs.predicted_set();
  if (!inputs.frozen.empty()) {
    result.weather_updates =
        fusion::apply_weather_update(result.beliefs, inputs.frozen, inputs.p_leak_given_freeze);
  }
  result.energy_before =
      fusion::total_energy(result.beliefs, inputs.cliques, inputs.entropy_threshold);
  if (!inputs.cliques.empty()) {
    result.tuning =
        fusion::apply_human_tuning(result.beliefs, inputs.cliques, inputs.entropy_threshold);
  }
  result.energy_after =
      fusion::total_energy(result.beliefs, inputs.cliques, inputs.entropy_threshold);
  result.predicted = result.beliefs.predicted_set();
  return result;
}

TEST(WeatherUpdateProperty, MonotoneInPriorAndClampedToUnitInterval) {
  Rng rng(0xabc123);
  for (int trial = 0; trial < 200; ++trial) {
    const double expert = rng.uniform(0.01, 0.99);
    double previous = -1.0;
    for (double prior : {0.0, 0.05, 0.2, 0.5, 0.8, 0.95, 1.0}) {
      fusion::Beliefs beliefs;
      beliefs.p_leak = {prior};
      const std::size_t updated = fusion::apply_weather_update(beliefs, {1}, expert);
      ASSERT_EQ(updated, 1u);
      const double posterior = beliefs.p_leak[0];
      // Clamped to a valid probability...
      ASSERT_GE(posterior, 0.0);
      ASSERT_LE(posterior, 1.0);
      // ...and non-decreasing in the IoT prior for a fixed expert.
      ASSERT_GE(posterior, previous) << "expert " << expert << " prior " << prior;
      previous = posterior;
    }
  }
}

TEST(WeatherUpdateProperty, UnfrozenLabelsAreNeverTouched) {
  Rng rng(0x5151);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 19));
    fusion::Beliefs beliefs;
    std::vector<std::uint8_t> frozen(n);
    for (std::size_t v = 0; v < n; ++v) {
      beliefs.p_leak.push_back(rng.uniform());
      frozen[v] = rng.uniform() < 0.4 ? 1 : 0;
    }
    const fusion::Beliefs before = beliefs;
    fusion::apply_weather_update(beliefs, frozen, 0.9);
    for (std::size_t v = 0; v < n; ++v) {
      if (frozen[v] == 0) {
        ASSERT_EQ(beliefs.p_leak[v], before.p_leak[v]) << "unfrozen label " << v << " changed";
      }
    }
  }
}

TEST(HumanTuningProperty, EnergyNeverIncreases) {
  Rng rng(0xfeed);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 14));
    fusion::Beliefs beliefs;
    for (std::size_t v = 0; v < n; ++v) beliefs.p_leak.push_back(rng.uniform());
    // A few random cliques, including possible overlaps and singletons.
    std::vector<fusion::LabelClique> cliques;
    const std::size_t num_cliques = static_cast<std::size_t>(rng.uniform_int(0, 4));
    for (std::size_t c = 0; c < num_cliques; ++c) {
      fusion::LabelClique clique;
      const std::size_t members = 1 + static_cast<std::size_t>(rng.uniform_int(0, 3));
      for (std::size_t m = 0; m < members; ++m) {
        clique.labels.push_back(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
      }
      clique.confidence = rng.uniform();
      cliques.push_back(std::move(clique));
    }
    const double gamma = rng.uniform(0.0, 0.7);  // spans [0, ln 2] and beyond

    const double energy_before = fusion::total_energy(beliefs, cliques, gamma);
    fusion::apply_human_tuning(beliefs, cliques, gamma);
    const double energy_after = fusion::total_energy(beliefs, cliques, gamma);

    ASSERT_LE(energy_after, energy_before)
        << "tuning raised the energy at trial " << trial << " gamma " << gamma;
    // Tuning with min_confidence = 0 always resolves every inconsistent
    // clique (force or determinate), so the post-tuning energy is finite.
    ASSERT_TRUE(std::isfinite(energy_after)) << "trial " << trial;
  }
}

TEST(HumanTuningProperty, IntoVariantMatchesAllocatingVariant) {
  Rng rng(0xd00d);
  fusion::HumanTuningResult reused;
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 8));
    fusion::Beliefs a;
    for (std::size_t v = 0; v < n; ++v) a.p_leak.push_back(rng.uniform());
    fusion::Beliefs b = a;
    std::vector<fusion::LabelClique> cliques(2);
    for (auto& clique : cliques) {
      for (int m = 0; m < 3; ++m) {
        clique.labels.push_back(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
      }
    }
    const auto fresh = fusion::apply_human_tuning(a, cliques, 0.1);
    fusion::apply_human_tuning_into(b, cliques, 0.1, 0.0, reused);
    ASSERT_EQ(a.p_leak, b.p_leak);
    ASSERT_EQ(fresh.added_labels, reused.added_labels);
    ASSERT_EQ(fresh.cliques_consistent, reused.cliques_consistent);
    ASSERT_EQ(fresh.cliques_determinate, reused.cliques_determinate);
  }
}

/// Fits a small multi-label model on synthetic data. Some labels are left
/// intentionally degenerate (all-negative) to exercise the constant-
/// classifier path of the shared-input-map protocol.
ProfileModel make_synthetic_profile(ModelKind kind, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t samples = 60, features = 5, labels = 7;
  ml::MultiLabelDataset data;
  data.features = ml::Matrix(samples, features);
  data.labels.assign(samples, ml::Labels(labels, 0));
  for (std::size_t i = 0; i < samples; ++i) {
    for (std::size_t c = 0; c < features; ++c) data.features(i, c) = rng.normal();
    for (std::size_t v = 0; v + 1 < labels; ++v) {  // last label stays all-zero
      const double score = data.features(i, v % features) + 0.3 * rng.normal();
      data.labels[i][v] = score > 0.0 ? 1 : 0;
    }
  }
  ProfileModel profile;
  profile.kind = kind;
  profile.model = ml::MultiLabelModel(make_classifier_factory(kind));
  profile.model.fit(data);
  return profile;
}

InferenceInputs random_inputs(Rng& rng, std::size_t features, std::size_t labels) {
  InferenceInputs inputs;
  for (std::size_t c = 0; c < features; ++c) inputs.features.push_back(rng.normal());
  if (rng.uniform() < 0.7) {
    inputs.frozen.resize(labels);
    for (auto& f : inputs.frozen) f = rng.uniform() < 0.3 ? 1 : 0;
  }
  const std::size_t num_cliques = static_cast<std::size_t>(rng.uniform_int(0, 2));
  for (std::size_t c = 0; c < num_cliques; ++c) {
    fusion::LabelClique clique;
    for (int m = 0; m < 2; ++m) {
      clique.labels.push_back(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(labels) - 1)));
    }
    inputs.cliques.push_back(std::move(clique));
  }
  inputs.entropy_threshold = rng.uniform(0.0, 0.3);
  return inputs;
}

void expect_identical_results(const InferenceResult& a, const InferenceResult& b,
                              const std::string& what) {
  ASSERT_EQ(a.beliefs.p_leak, b.beliefs.p_leak) << what;
  ASSERT_EQ(a.predicted, b.predicted) << what;
  ASSERT_EQ(a.predicted_iot_only, b.predicted_iot_only) << what;
  ASSERT_EQ(a.weather_updates, b.weather_updates) << what;
  ASSERT_EQ(a.tuning.added_labels, b.tuning.added_labels) << what;
  ASSERT_EQ(a.energy_before, b.energy_before) << what;
  ASSERT_EQ(a.energy_after, b.energy_after) << what;
}

class EngineBitIdentity : public ::testing::TestWithParam<ModelKind> {};

TEST_P(EngineBitIdentity, BatchMatchesSequentialAndReferenceOnRandomInputs) {
  const ProfileModel profile = make_synthetic_profile(GetParam(), 0x7777);
  const std::size_t labels = profile.model.num_labels();

  Rng rng(0x2468);
  std::vector<InferenceInputs> batch;
  for (int i = 0; i < 24; ++i) batch.push_back(random_inputs(rng, 5, labels));

  const InferenceEngine engine(profile);
  const auto batched = engine.infer_batch(batch);
  ASSERT_EQ(batched.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto tag = " input " + std::to_string(i);
    expect_identical_results(batched[i], infer_leaks(profile, batch[i]),
                             "engine vs infer_leaks" + tag);
    expect_identical_results(batched[i], reference_infer(profile, batch[i]),
                             "engine vs naive reference" + tag);
    expect_identical_results(batched[i], engine.infer(batch[i]), "batch vs single" + tag);
  }
}

INSTANTIATE_TEST_SUITE_P(ModelKinds, EngineBitIdentity,
                         ::testing::Values(ModelKind::kLogisticR, ModelKind::kSvm,
                                           ModelKind::kHybridRsl));

TEST(EngineProperty, SharedInputMapDetectedForTransformingKinds) {
  // LogisticR/SVM/HybridRSL all carry per-label copies of one input
  // transform; the batched path must hoist it.
  for (const ModelKind kind : {ModelKind::kLogisticR, ModelKind::kSvm, ModelKind::kHybridRsl}) {
    const ProfileModel profile = make_synthetic_profile(kind, 0x1357);
    EXPECT_TRUE(profile.model.has_shared_input_map()) << model_kind_name(kind);
  }
}

TEST(EngineProperty, TelemetryCountsEverySnapshotAndStage) {
  const ProfileModel profile = make_synthetic_profile(ModelKind::kLogisticR, 0x9753);
  const InferenceEngine engine(profile);
  Rng rng(0x1122);
  std::vector<InferenceInputs> batch;
  for (int i = 0; i < 10; ++i) batch.push_back(random_inputs(rng, 5, profile.model.num_labels()));

  engine.reset_telemetry();
  (void)engine.infer_batch(batch);
  (void)engine.infer(batch.front());
  const auto times = engine.telemetry_snapshot();
  EXPECT_EQ(times.count(InferenceEngine::kCounterSnapshots), 11u);
  EXPECT_EQ(times.count(InferenceEngine::kCounterBatches), 2u);
  EXPECT_EQ(times.calls(InferenceEngine::kStageProfileEval), 11u);
  EXPECT_GT(times.seconds(InferenceEngine::kStageProfileEval), 0.0);
  EXPECT_GT(times.calls(InferenceEngine::kStageEnergy), 0u);
  // The flat metric rendering carries every stage and counter.
  EXPECT_EQ(times.metrics("p2.").size(), 2 * InferenceEngine::kNumStages +
                                             InferenceEngine::kNumCounters);
}

TEST(EngineProperty, EmptyBatchYieldsNoResults) {
  const ProfileModel profile = make_synthetic_profile(ModelKind::kLogisticR, 0x1133);
  const InferenceEngine engine(profile);
  EXPECT_TRUE(engine.infer_batch({}).empty());
}

TEST(EngineProperty, InconsistentFeatureDimensionsThrow) {
  const ProfileModel profile = make_synthetic_profile(ModelKind::kLogisticR, 0x2244);
  const InferenceEngine engine(profile);
  Rng rng(0x3355);
  std::vector<InferenceInputs> batch;
  batch.push_back(random_inputs(rng, 5, profile.model.num_labels()));
  batch.push_back(random_inputs(rng, 4, profile.model.num_labels()));
  EXPECT_THROW((void)engine.infer_batch(batch), InvalidArgument);
}

}  // namespace
}  // namespace aqua::core
