#include "io/artifact.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include "io/binary.hpp"
#include "io/mapped_artifact.hpp"

namespace aqua::io {
namespace {

TEST(BinaryCodec, PrimitivesRoundTrip) {
  BinaryWriter writer;
  writer.write_u8(0xAB);
  writer.write_u32(0xDEADBEEFu);
  writer.write_u64(0x0123456789ABCDEFull);
  writer.write_i32(-42);
  writer.write_f64(-1.5e-300);
  writer.write_bool(true);
  writer.write_string("hello");
  writer.write_f64_vector(std::vector<double>{1.0, -0.0, 3.25});

  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.read_u8(), 0xAB);
  EXPECT_EQ(reader.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.read_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.read_i32(), -42);
  EXPECT_EQ(reader.read_f64(), -1.5e-300);
  EXPECT_TRUE(reader.read_bool());
  EXPECT_EQ(reader.read_string(), "hello");
  EXPECT_EQ(reader.read_f64_vector(), (std::vector<double>{1.0, -0.0, 3.25}));
  reader.expect_end();
}

TEST(BinaryCodec, DoublesAreBitExact) {
  const double values[] = {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min(), -0.0,
                           0.1 + 0.2};  // not representable exactly
  BinaryWriter writer;
  for (double v : values) writer.write_f64(v);
  BinaryReader reader(writer.buffer());
  for (double v : values) {
    const double got = reader.read_f64();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got), std::bit_cast<std::uint64_t>(v));
  }
}

TEST(BinaryCodec, TruncationThrows) {
  BinaryWriter writer;
  writer.write_u64(7);
  BinaryReader reader(std::string_view(writer.buffer()).substr(0, 5));
  EXPECT_THROW(reader.read_u64(), SerializationError);
}

TEST(BinaryCodec, TrailingBytesDetected) {
  BinaryWriter writer;
  writer.write_u32(1);
  writer.write_u32(2);
  BinaryReader reader(writer.buffer());
  reader.read_u32();
  EXPECT_THROW(reader.expect_end(), SerializationError);
}

TEST(BinaryCodec, MalformedBoolThrows) {
  BinaryReader reader(std::string_view("\x02", 1));
  EXPECT_THROW(reader.read_bool(), SerializationError);
}

TEST(BinaryCodec, MalformedVectorLengthThrows) {
  BinaryWriter writer;
  writer.write_u64(std::numeric_limits<std::uint64_t>::max());
  BinaryReader reader(writer.buffer());
  EXPECT_THROW(reader.read_f64_vector(), SerializationError);
}

TEST(BinaryCodec, Crc32MatchesReferenceVector) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
}

std::string write_sample_artifact(std::uint32_t version = kFormatVersion) {
  ArtifactWriter artifact(version);
  auto& alpha = artifact.section("alpha");
  alpha.write_string("payload-a");
  alpha.write_f64(2.5);
  auto& beta = artifact.section("beta");
  beta.write_u64(99);
  std::ostringstream out;
  artifact.write_to(out);
  return out.str();
}

TEST(Artifact, SectionsRoundTrip) {
  const std::string bytes = write_sample_artifact();
  std::istringstream in(bytes);
  const ArtifactReader reader(in);
  EXPECT_EQ(reader.version(), kFormatVersion);
  EXPECT_TRUE(reader.has_section("alpha"));
  EXPECT_TRUE(reader.has_section("beta"));
  EXPECT_FALSE(reader.has_section("gamma"));

  auto alpha = reader.section("alpha");
  EXPECT_EQ(alpha.read_string(), "payload-a");
  EXPECT_EQ(alpha.read_f64(), 2.5);
  alpha.expect_end();
  auto beta = reader.section("beta");
  EXPECT_EQ(beta.read_u64(), 99u);
  beta.expect_end();
}

TEST(Artifact, MissingSectionThrows) {
  std::istringstream in(write_sample_artifact());
  const ArtifactReader reader(in);
  EXPECT_THROW(reader.section("gamma"), SerializationError);
}

TEST(Artifact, DuplicateSectionNameRejectedAtWrite) {
  ArtifactWriter artifact;
  artifact.section("alpha");
  EXPECT_THROW(artifact.section("alpha"), SerializationError);
}

TEST(Artifact, BadMagicThrows) {
  std::string bytes = write_sample_artifact();
  bytes[0] = 'X';
  std::istringstream in(bytes);
  EXPECT_THROW(ArtifactReader reader(in), SerializationError);
}

TEST(Artifact, UnknownVersionThrows) {
  const std::string bytes = write_sample_artifact(kFormatVersion + 7);
  std::istringstream in(bytes);
  EXPECT_THROW(ArtifactReader reader(in), SerializationError);
}

TEST(Artifact, TruncationThrowsAtEveryPrefix) {
  const std::string bytes = write_sample_artifact();
  // Every strict prefix must fail loudly, never yield a partial artifact.
  for (std::size_t cut = 0; cut < bytes.size(); cut += 3) {
    std::istringstream in(bytes.substr(0, cut));
    EXPECT_THROW(ArtifactReader reader(in), SerializationError) << "prefix length " << cut;
  }
}

TEST(Artifact, PayloadCorruptionDetectedByChecksum) {
  const std::string clean = write_sample_artifact();
  // Flip one bit in every payload byte position (the payloads are at the
  // tail, after the header + table) and expect the CRC to catch each one.
  const std::size_t payload_size = std::string("payload-a").size() + 4 + 8 + 8;
  for (std::size_t back = 1; back <= payload_size; ++back) {
    std::string bytes = clean;
    bytes[bytes.size() - back] = static_cast<char>(bytes[bytes.size() - back] ^ 0x10);
    std::istringstream in(bytes);
    EXPECT_THROW(ArtifactReader reader(in), SerializationError) << "byte from end: " << back;
  }
}

TEST(Artifact, EmptyStreamThrows) {
  std::istringstream in("");
  EXPECT_THROW(ArtifactReader reader(in), SerializationError);
}

// ---- MappedArtifactReader: the zero-copy mmap path ---------------------

class MappedArtifact : public ::testing::Test {
 protected:
  std::string write_file(const std::string& bytes) {
    path_ = ::testing::TempDir() + "aqua_mapped_artifact_test.aquamodl";
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    return path_;
  }
  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(MappedArtifact, SectionsRoundTripThroughTheMapping) {
  const MappedArtifactReader reader(write_file(write_sample_artifact()));
  EXPECT_EQ(reader.version(), kFormatVersion);
  EXPECT_TRUE(reader.has_section("alpha"));
  EXPECT_TRUE(reader.has_section("beta"));
  EXPECT_FALSE(reader.has_section("gamma"));

  auto alpha = reader.section("alpha");
  EXPECT_EQ(alpha.read_string(), "payload-a");
  EXPECT_EQ(alpha.read_f64(), 2.5);
  alpha.expect_end();
  auto beta = reader.section("beta");
  EXPECT_EQ(beta.read_u64(), 99u);
  beta.expect_end();
  EXPECT_THROW(reader.section("gamma"), SerializationError);
}

TEST_F(MappedArtifact, TruncationThrowsTypedErrorAtEveryPrefix) {
  // Unlike payload corruption (lazy), truncation is structural: the table
  // promises bytes the mapping does not have, so every strict prefix must
  // fail at construction, never defer to section access.
  const std::string bytes = write_sample_artifact();
  for (std::size_t cut = 1; cut < bytes.size(); cut += 3) {
    EXPECT_THROW(MappedArtifactReader reader(write_file(bytes.substr(0, cut))),
                 SerializationError)
        << "prefix length " << cut;
  }
}

TEST_F(MappedArtifact, PayloadCorruptionThrowsLazilyOnFirstAccess) {
  // Flip a bit inside the *last* section's payload: construction (header
  // + table validation only) must succeed, the clean section must stay
  // readable, and only the corrupted section's access throws.
  std::string bytes = write_sample_artifact();
  bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^ 0x40);
  const MappedArtifactReader reader(write_file(bytes));

  auto alpha = reader.section("alpha");  // untouched section validates fine
  EXPECT_EQ(alpha.read_string(), "payload-a");
  EXPECT_THROW(reader.section("beta"), SerializationError);
  // A failed CRC is not cached as success: every access re-throws.
  EXPECT_THROW(reader.section("beta"), SerializationError);
}

TEST_F(MappedArtifact, RepeatedAccessValidatesChecksumOnce) {
  const MappedArtifactReader reader(write_file(write_sample_artifact()));
  // First access validates and caches; the second returns a fresh reader
  // over the same mapped bytes (both must decode identically).
  auto first = reader.section("beta");
  auto second = reader.section("beta");
  EXPECT_EQ(first.read_u64(), second.read_u64());
}

TEST_F(MappedArtifact, BadMagicAndWrongVersionThrow) {
  std::string bad_magic = write_sample_artifact();
  bad_magic[0] = 'X';
  EXPECT_THROW(MappedArtifactReader reader(write_file(bad_magic)), SerializationError);

  EXPECT_THROW(
      MappedArtifactReader reader(write_file(write_sample_artifact(kFormatVersion + 7))),
      SerializationError);
}

TEST_F(MappedArtifact, TrailingBytesAfterLastSectionThrow) {
  EXPECT_THROW(MappedArtifactReader reader(write_file(write_sample_artifact() + "junk")),
               SerializationError);
}

TEST_F(MappedArtifact, MissingFileThrowsTypedError) {
  EXPECT_THROW(MappedArtifactReader reader("/nonexistent/definitely/missing.aquamodl"),
               SerializationError);
  EXPECT_THROW(open_artifact("/nonexistent/definitely/missing.aquamodl"), SerializationError);
}

TEST_F(MappedArtifact, OpenArtifactPrefersTheMappedReader) {
  bool used_mmap = false;
  const auto source = open_artifact(write_file(write_sample_artifact()), &used_mmap);
  EXPECT_TRUE(used_mmap);
  auto alpha = source->section("alpha");
  EXPECT_EQ(alpha.read_string(), "payload-a");
}

TEST_F(MappedArtifact, ConcurrentSectionAccessIsSafe) {
  // The lazy CRC cache is shared mutable state; hammer it from several
  // threads (meaningful under TSan).
  const MappedArtifactReader reader(write_file(write_sample_artifact()));
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        auto alpha = reader.section("alpha");
        if (alpha.read_string() != "payload-a") failures.fetch_add(1);
        auto beta = reader.section("beta");
        if (beta.read_u64() != 99u) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace aqua::io
