#include "common/rng.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace aqua {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(10);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(2, 6);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(12);
  const int n = 200000;
  double sum = 0.0, ss = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    ss += x * x;
  }
  const double mean = sum / n;
  const double var = ss / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.03);
}

TEST(Rng, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(15);
  const int n = 100000;
  long total = 0;
  for (int i = 0; i < n; ++i) total += rng.poisson(2.5);
  EXPECT_NEAR(static_cast<double>(total) / n, 2.5, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  Rng rng(16);
  const int n = 20000;
  long total = 0;
  for (int i = 0; i < n; ++i) total += rng.poisson(100.0);
  EXPECT_NEAR(static_cast<double>(total) / n, 100.0, 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(18);
  const int n = 100000;
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += rng.exponential(4.0);
  EXPECT_NEAR(total / n, 0.25, 0.01);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (auto v : sample) EXPECT_LT(v, 50u);
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Rng rng(20);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementTooManyThrows) {
  Rng rng(21);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), InvalidArgument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(22);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(23);
  std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(Rng, WeightedIndexRejectsBadWeights) {
  Rng rng(24);
  std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zero), InvalidArgument);
  std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW(rng.weighted_index(negative), InvalidArgument);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(25);
  Rng child = parent.split();
  // Child stream should not replicate the parent stream.
  Rng parent_copy(25);
  Rng child_copy = parent_copy.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child(), child_copy());  // deterministic
  Rng p2(25);
  auto c1 = p2.split();
  auto c2 = p2.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (c1() == c2());
  EXPECT_LT(equal, 3);  // siblings differ
}

}  // namespace
}  // namespace aqua
