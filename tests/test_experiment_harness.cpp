// Tests for the experiment harness itself (core/experiment.*): the
// machinery every bench relies on. Built on one shared small context.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/error.hpp"
#include "core/aquascale.hpp"

namespace aqua::core {
namespace {

class HarnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new hydraulics::Network(networks::make_epa_net());
    ExperimentConfig config;
    config.train_samples = 150;
    config.test_samples = 30;
    config.scenarios.min_events = 1;
    config.scenarios.max_events = 2;
    config.scenarios.cold_weather = true;
    config.elapsed_slots = {1, 4};
    config.seed = 555;
    context_ = new ExperimentContext(*net_, config);
  }
  static void TearDownTestSuite() {
    delete context_;
    delete net_;
    context_ = nullptr;
    net_ = nullptr;
  }
  static hydraulics::Network* net_;
  static ExperimentContext* context_;
};

hydraulics::Network* HarnessTest::net_ = nullptr;
ExperimentContext* HarnessTest::context_ = nullptr;

TEST_F(HarnessTest, CorpusSizesMatchConfig) {
  EXPECT_EQ(context_->train_scenarios().size(), 150u);
  EXPECT_EQ(context_->test_scenarios().size(), 30u);
  EXPECT_EQ(context_->train_batch().size(), 150u);
  EXPECT_EQ(context_->test_batch().size(), 30u);
}

TEST_F(HarnessTest, TrainAndTestScenariosDiffer) {
  // Same generator stream, consecutive draws — the corpora must not alias.
  const auto& train = context_->train_scenarios();
  const auto& test = context_->test_scenarios();
  bool any_difference = false;
  for (std::size_t i = 0; i < test.size(); ++i) {
    any_difference = any_difference || (test[i].truth != train[i].truth);
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(HarnessTest, SensorCountFollowsPercentage) {
  EXPECT_EQ(context_->sensors_at(100.0).size(),
            net_->num_nodes() + net_->num_links());
  EXPECT_EQ(context_->sensors_at(10.0).size(), sensing::sensors_for_percentage(*net_, 10.0));
}

TEST_F(HarnessTest, ElapsedIndexSelectsDifferentFeatures) {
  EvalOptions options;
  options.kind = ModelKind::kLogisticR;
  options.iot_percent = 50.0;
  options.elapsed_index = 0;
  const auto near = context_->evaluate(options);
  options.elapsed_index = 1;
  const auto far = context_->evaluate(options);
  // Different feature windows must at least produce a result; scores are
  // config-dependent but both should be valid probabilistic outcomes.
  EXPECT_GE(near.hamming, 0.0);
  EXPECT_LE(near.hamming, 1.0);
  EXPECT_GE(far.hamming, 0.0);
  EXPECT_LE(far.hamming, 1.0);
}

TEST_F(HarnessTest, ElapsedIndexOutOfRangeThrows) {
  EvalOptions options;
  options.elapsed_index = 7;
  EXPECT_THROW(context_->train(options), InvalidArgument);
}

TEST_F(HarnessTest, LiteralWeatherParameterizationIsMoreAggressive) {
  EvalOptions options;
  options.kind = ModelKind::kLogisticR;
  options.iot_percent = 50.0;
  options.use_weather = true;
  const auto profile = context_->train(options);

  options.calibrated_weather = true;
  const auto calibrated = context_->evaluate_profile(profile, options);
  options.calibrated_weather = false;  // the paper's literal 0.9
  const auto literal = context_->evaluate_profile(profile, options);
  // The literal x9-odds update must flag at least as many nodes (it can
  // only push probabilities up harder), so recall can't go down.
  EXPECT_GE(literal.prf.recall, calibrated.prf.recall - 1e-9);
  // And precision suffers for it on cold scenarios with 80% frozen nodes.
  EXPECT_LE(literal.prf.precision, calibrated.prf.precision + 1e-9);
}

TEST_F(HarnessTest, IncrementIsFusedMinusBase) {
  EvalOptions options;
  options.kind = ModelKind::kLogisticR;
  options.iot_percent = 30.0;
  options.use_human = true;
  const auto result = context_->evaluate(options);
  EXPECT_NEAR(result.increment(), result.hamming - result.hamming_iot_only, 1e-12);
}

TEST_F(HarnessTest, EvaluateProfileRequiresTrainedModel) {
  ProfileModel empty;
  EvalOptions options;
  EXPECT_THROW(context_->evaluate_profile(empty, options), InvalidArgument);
}

TEST_F(HarnessTest, ModelKindNamesAreUniqueAndComplete) {
  const auto kinds = all_model_kinds();
  EXPECT_EQ(kinds.size(), 6u);
  std::set<std::string> names;
  for (const auto kind : kinds) names.insert(model_kind_name(kind));
  EXPECT_EQ(names.size(), 6u);
  EXPECT_EQ(model_kind_name(ModelKind::kHybridRsl), "HybridRSL");
}

TEST_F(HarnessTest, FactoriesProduceMatchingNames) {
  for (const auto kind : all_model_kinds()) {
    const auto classifier = make_classifier_factory(kind)();
    EXPECT_EQ(classifier->name(), model_kind_name(kind));
  }
}

}  // namespace
}  // namespace aqua::core
