#include "graph/kmedoids.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace aqua::graph {
namespace {

std::vector<std::vector<double>> three_blobs() {
  std::vector<std::vector<double>> points;
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  aqua::Rng rng(77);
  for (const auto& center : centers) {
    for (int i = 0; i < 20; ++i) {
      points.push_back({center[0] + rng.normal(0.0, 0.4), center[1] + rng.normal(0.0, 0.4)});
    }
  }
  return points;
}

TEST(KMedoids, SeparatesWellSeparatedBlobs) {
  const auto points = three_blobs();
  const auto result = kmedoids(points, 3);
  ASSERT_EQ(result.medoids.size(), 3u);
  // Each blob of 20 points should map to one cluster.
  for (int blob = 0; blob < 3; ++blob) {
    std::set<std::size_t> clusters;
    for (int i = 0; i < 20; ++i) clusters.insert(result.assignment[blob * 20 + i]);
    EXPECT_EQ(clusters.size(), 1u) << "blob " << blob << " split across clusters";
  }
}

TEST(KMedoids, MedoidsAreDataPoints) {
  const auto points = three_blobs();
  const auto result = kmedoids(points, 3);
  for (std::size_t m : result.medoids) EXPECT_LT(m, points.size());
}

TEST(KMedoids, MedoidsAreDistinct) {
  const auto points = three_blobs();
  const auto result = kmedoids(points, 3);
  std::set<std::size_t> unique(result.medoids.begin(), result.medoids.end());
  EXPECT_EQ(unique.size(), 3u);
}

TEST(KMedoids, DeterministicGivenSeed) {
  const auto points = three_blobs();
  KMedoidsOptions options;
  options.seed = 5;
  const auto a = kmedoids(points, 3, options);
  const auto b = kmedoids(points, 3, options);
  EXPECT_EQ(a.medoids, b.medoids);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(KMedoids, KEqualsNIsZeroCost) {
  std::vector<std::vector<double>> points{{0.0}, {1.0}, {2.0}};
  const auto result = kmedoids(points, 3);
  EXPECT_NEAR(result.total_cost, 0.0, 1e-12);
}

TEST(KMedoids, KOneUsesCentralMedoid) {
  std::vector<std::vector<double>> points{{0.0}, {1.0}, {2.0}, {100.0}};
  const auto result = kmedoids(points, 1);
  ASSERT_EQ(result.medoids.size(), 1u);
  // The 1-medoid minimizes total distance: point {2} (cost 3+2+98=103)
  // beats {1} (1+1+99=101)? compute: medoid {1}: 1+0+1+99=101; {2}: 2+1+0+98=101;
  // {0}: 0+1+2+100=103; {100}: 100+99+98=297. Either {1} or {2} is optimal.
  const double m = points[result.medoids[0]][0];
  EXPECT_TRUE(m == 1.0 || m == 2.0);
}

TEST(KMedoids, RejectsBadK) {
  std::vector<std::vector<double>> points{{0.0}, {1.0}};
  EXPECT_THROW(kmedoids(points, 0), InvalidArgument);
  EXPECT_THROW(kmedoids(points, 3), InvalidArgument);
}

TEST(KMedoids, RejectsRaggedPoints) {
  std::vector<std::vector<double>> points{{0.0, 1.0}, {1.0}};
  EXPECT_THROW(kmedoids(points, 1), InvalidArgument);
}

TEST(KMedoids, HandlesDuplicatePoints) {
  std::vector<std::vector<double>> points(10, std::vector<double>{1.0, 1.0});
  const auto result = kmedoids(points, 3);
  EXPECT_EQ(result.medoids.size(), 3u);
  EXPECT_NEAR(result.total_cost, 0.0, 1e-12);
}

TEST(KMedoids, CostDecreasesWithMoreClusters) {
  const auto points = three_blobs();
  const double c1 = kmedoids(points, 1).total_cost;
  const double c3 = kmedoids(points, 3).total_cost;
  EXPECT_LT(c3, c1);
}

}  // namespace
}  // namespace aqua::graph
