#include "fusion/human.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "networks/builtin.hpp"

namespace aqua::fusion {
namespace {

TEST(Eq3Confidence, GrowsWithTweetCount) {
  // p_t = 1 - p_e^k (Eq. 3).
  EXPECT_DOUBLE_EQ(tweet_confidence(0.3, 0), 0.0);
  EXPECT_NEAR(tweet_confidence(0.3, 1), 0.7, 1e-12);
  EXPECT_NEAR(tweet_confidence(0.3, 2), 1.0 - 0.09, 1e-12);
  EXPECT_GT(tweet_confidence(0.3, 5), tweet_confidence(0.3, 4));
}

TEST(Eq3Confidence, Validation) {
  EXPECT_THROW(tweet_confidence(0.0, 1), InvalidArgument);
  EXPECT_THROW(tweet_confidence(1.0, 1), InvalidArgument);
}

TEST(Eq4Printed, MatchesPaperFormula) {
  // (n*lambda)^k e^{-n*lambda} / (n+1)^k with n=2, lambda=1, k=3:
  // 8 e^-2 / 27.
  EXPECT_NEAR(printed_eq4(3, 2, 1.0), 8.0 * std::exp(-2.0) / 27.0, 1e-12);
}

TEST(Eq4Printed, IsNotNormalized) {
  // Documented deviation: the printed form does not sum to 1 over k.
  double total = 0.0;
  for (std::size_t k = 0; k < 200; ++k) total += printed_eq4(k, 4, 1.0);
  EXPECT_GT(std::abs(total - 1.0), 0.05);
}

TEST(PoissonPmf, NormalizedAndCorrect) {
  double total = 0.0;
  for (std::size_t k = 0; k < 100; ++k) total += poisson_pmf(k, 4.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(poisson_pmf(0, 2.0), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(poisson_pmf(2, 2.0), 2.0 * std::exp(-2.0), 1e-12);
}

class TweetGeneratorTest : public ::testing::Test {
 protected:
  hydraulics::Network net_ = networks::make_wssc_subnet();
};

TEST_F(TweetGeneratorTest, GenuineFractionTracksFalsePositiveRate) {
  TweetModelConfig config;
  config.false_positive_rate = 0.3;
  TweetGenerator generator(config);
  Rng rng(3);
  const std::vector<hydraulics::NodeId> leaks{net_.junction_ids()[50]};
  std::size_t genuine = 0, total = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const auto tweets = generator.generate(net_, leaks, 8, rng);
    for (const auto& t : tweets) {
      ++total;
      genuine += t.genuine;
    }
  }
  ASSERT_GT(total, 500u);
  EXPECT_NEAR(static_cast<double>(genuine) / static_cast<double>(total), 0.7, 0.05);
}

TEST_F(TweetGeneratorTest, MoreSlotsMoreTweets) {
  TweetGenerator generator;
  Rng rng(4);
  const std::vector<hydraulics::NodeId> leaks{net_.junction_ids()[10]};
  std::size_t short_count = 0, long_count = 0;
  for (int trial = 0; trial < 50; ++trial) {
    short_count += generator.generate(net_, leaks, 1, rng).size();
    long_count += generator.generate(net_, leaks, 8, rng).size();
  }
  EXPECT_GT(long_count, 4 * short_count);
}

TEST_F(TweetGeneratorTest, ZeroSlotsNoTweets) {
  TweetGenerator generator;
  Rng rng(5);
  EXPECT_TRUE(generator.generate(net_, {net_.junction_ids()[0]}, 0, rng).empty());
}

TEST_F(TweetGeneratorTest, TweetSlotsWithinWindow) {
  TweetGenerator generator;
  Rng rng(6);
  const auto tweets = generator.generate(net_, {net_.junction_ids()[5]}, 4, rng);
  for (const auto& t : tweets) EXPECT_LT(t.slot, 4u);
}

TEST_F(TweetGeneratorTest, CliquesContainNearbyNodes) {
  TweetModelConfig config;
  config.clique_radius_m = 60.0;
  config.location_scatter_m = 10.0;  // tight scatter
  TweetGenerator generator(config);
  Rng rng(7);
  const hydraulics::NodeId leak = net_.junction_ids()[100];
  // Many slots so a genuine cluster almost surely forms.
  const auto tweets = generator.generate(net_, {leak}, 10, rng);
  const auto cliques = generator.build_cliques(net_, tweets);
  bool leak_in_some_clique = false;
  for (const auto& c : cliques) {
    for (const auto v : c.nodes) leak_in_some_clique = leak_in_some_clique || (v == leak);
  }
  EXPECT_TRUE(leak_in_some_clique);
}

TEST_F(TweetGeneratorTest, CliqueMembersWithinGamma) {
  TweetGenerator generator;
  Rng rng(8);
  const auto tweets = generator.generate(net_, {net_.junction_ids()[30]}, 6, rng);
  const auto cliques = generator.build_cliques(net_, tweets);
  for (const auto& c : cliques) {
    for (const auto v : c.nodes) {
      const auto& node = net_.node(v);
      EXPECT_LT(std::hypot(node.x - c.x, node.y - c.y),
                generator.config().clique_radius_m + 1e-9);
    }
  }
}

TEST_F(TweetGeneratorTest, LargerGammaLargerCliques) {
  Rng rng(9);
  TweetModelConfig tight_config;
  tight_config.clique_radius_m = 30.0;
  TweetModelConfig loose_config;
  loose_config.clique_radius_m = 200.0;
  TweetGenerator tight(tight_config), loose(loose_config);
  const auto tweets = tight.generate(net_, {net_.junction_ids()[60]}, 8, rng);
  const auto small = tight.build_cliques(net_, tweets);
  const auto big = loose.build_cliques(net_, tweets);
  std::size_t small_members = 0, big_members = 0;
  for (const auto& c : small) small_members += c.nodes.size();
  for (const auto& c : big) big_members += c.nodes.size();
  EXPECT_GE(big_members, small_members);
}

TEST_F(TweetGeneratorTest, CliqueConfidenceUsesEq3) {
  TweetGenerator generator;
  Rng rng(10);
  const auto tweets = generator.generate(net_, {net_.junction_ids()[80]}, 8, rng);
  const auto cliques = generator.build_cliques(net_, tweets);
  for (const auto& c : cliques) {
    EXPECT_NEAR(c.confidence,
                tweet_confidence(generator.config().false_positive_rate, c.tweet_count), 1e-12);
  }
}

TEST_F(TweetGeneratorTest, EmptyTweetsNoCliques) {
  TweetGenerator generator;
  EXPECT_TRUE(generator.build_cliques(net_, {}).empty());
}

TEST(TweetGeneratorConfig, Validation) {
  TweetModelConfig config;
  config.false_positive_rate = 0.0;
  EXPECT_THROW(TweetGenerator{config}, InvalidArgument);
  config.false_positive_rate = 0.3;
  config.clique_radius_m = 0.0;
  EXPECT_THROW(TweetGenerator{config}, InvalidArgument);
}

}  // namespace
}  // namespace aqua::fusion
