#include "ml/svm.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "ml/model_io.hpp"

namespace aqua::ml {

namespace {

/// The random-Fourier-feature map z[k] = scale * cos(b[k] + W[k]·x for all
/// k, with the dot products computed four features at a time. Each dot is
/// a serial dependent chain (latency-bound at one fused multiply-add per
/// element); interleaving four independent chains hides that latency
/// without touching any chain's own operation order, so every z[k] keeps
/// the exact bits of the one-feature-at-a-time loop.
void rff_map_into(const Matrix& weights, const std::vector<double>& offsets,
                  const double* __restrict xs, std::size_t d, double scale,
                  double* __restrict z) {
  const std::size_t features = offsets.size();
  std::size_t k = 0;
  for (; k + 4 <= features; k += 4) {
    double dot0 = offsets[k];
    double dot1 = offsets[k + 1];
    double dot2 = offsets[k + 2];
    double dot3 = offsets[k + 3];
    const double* __restrict w0 = weights.row(k).data();
    const double* __restrict w1 = weights.row(k + 1).data();
    const double* __restrict w2 = weights.row(k + 2).data();
    const double* __restrict w3 = weights.row(k + 3).data();
    for (std::size_t c = 0; c < d; ++c) {
      const double x = xs[c];
      dot0 += w0[c] * x;
      dot1 += w1[c] * x;
      dot2 += w2[c] * x;
      dot3 += w3[c] * x;
    }
    z[k] = scale * std::cos(dot0);
    z[k + 1] = scale * std::cos(dot1);
    z[k + 2] = scale * std::cos(dot2);
    z[k + 3] = scale * std::cos(dot3);
  }
  for (; k < features; ++k) {
    double dot = offsets[k];
    const double* __restrict w = weights.row(k).data();
    for (std::size_t c = 0; c < d; ++c) dot += w[c] * xs[c];
    z[k] = scale * std::cos(dot);
  }
}

}  // namespace

SvmClassifier::SvmClassifier(SvmConfig config)
    : config_(config), core_(detail::LinearLoss::kHinge, config.sgd) {}

Matrix SvmClassifier::map_matrix(const Matrix& x) const {
  if (config_.rff_dimension == 0) return x;
  Matrix out(x.rows(), config_.rff_dimension);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto mapped = map_features(x.row(r));
    std::copy(mapped.begin(), mapped.end(), out.row(r).begin());
  }
  return out;
}

std::vector<double> SvmClassifier::map_features(std::span<const double> x) const {
  if (config_.rff_dimension == 0) return {x.begin(), x.end()};
  const std::vector<double> xs = input_scaler_.transform_row(x);
  const std::size_t d = xs.size();
  std::vector<double> z(config_.rff_dimension);
  const double scale = std::sqrt(2.0 / static_cast<double>(config_.rff_dimension));
  rff_map_into(rff_weights_, rff_offsets_, xs.data(), d, scale, z.data());
  return z;
}

void SvmClassifier::fit(const Matrix& x, const Labels& y) {
  AQUA_REQUIRE(x.rows() == y.size(), "feature/label row mismatch");
  AQUA_REQUIRE(x.rows() > 0, "empty training set");

  const double pos_rate = positive_rate(y);
  if (pos_rate == 0.0 || pos_rate == 1.0) {
    constant_ = true;
    constant_probability_ = pos_rate;
    return;
  }
  constant_ = false;

  if (config_.rff_dimension > 0) {
    input_scaler_.fit(x);
    const double gamma =
        config_.rff_gamma > 0.0 ? config_.rff_gamma : 1.0 / static_cast<double>(x.cols());
    // W ~ N(0, 2*gamma I), b ~ U[0, 2*pi) gives E[z(x).z(y)] = exp(-gamma |x-y|^2).
    Rng rng(config_.seed);
    rff_weights_ = Matrix(config_.rff_dimension, x.cols());
    rff_offsets_.resize(config_.rff_dimension);
    const double sigma = std::sqrt(2.0 * gamma);
    for (std::size_t k = 0; k < config_.rff_dimension; ++k) {
      auto row = rff_weights_.row(k);
      for (std::size_t c = 0; c < x.cols(); ++c) row[c] = rng.normal(0.0, sigma);
      rff_offsets_[k] = rng.uniform(0.0, 6.283185307179586);
    }
  }

  const Matrix mapped = map_matrix(x);
  core_.fit(mapped, y);
  fit_platt(mapped, y);
}

void SvmClassifier::fit_platt(const Matrix& mapped, const Labels& y) {
  // Platt scaling: fit P(y=1|f) = sigmoid(a*f + b) by a few Newton steps on
  // the regularized targets from Platt (1999).
  const std::size_t n = mapped.rows();
  std::vector<double> decision(n);
  for (std::size_t i = 0; i < n; ++i) decision[i] = core_.decision(mapped.row(i));

  std::size_t positives = 0;
  for (auto v : y) positives += (v != 0);
  const double t_pos = (static_cast<double>(positives) + 1.0) / (static_cast<double>(positives) + 2.0);
  const double t_neg = 1.0 / (static_cast<double>(n - positives) + 2.0);

  double a = 1.0, b = 0.0;
  for (int iter = 0; iter < 30; ++iter) {
    double g_a = 0.0, g_b = 0.0, h_aa = 1e-9, h_ab = 0.0, h_bb = 1e-9;
    for (std::size_t i = 0; i < n; ++i) {
      const double t = y[i] != 0 ? t_pos : t_neg;
      const double p = sigmoid(a * decision[i] + b);
      const double d1 = p - t;
      const double d2 = std::max(p * (1.0 - p), 1e-9);
      g_a += d1 * decision[i];
      g_b += d1;
      h_aa += d2 * decision[i] * decision[i];
      h_ab += d2 * decision[i];
      h_bb += d2;
    }
    const double det = h_aa * h_bb - h_ab * h_ab;
    if (std::abs(det) < 1e-15) break;
    const double da = (h_bb * g_a - h_ab * g_b) / det;
    const double db = (h_aa * g_b - h_ab * g_a) / det;
    a -= da;
    b -= db;
    if (std::abs(da) + std::abs(db) < 1e-8) break;
  }
  // Guard orientation: `a` should be positive (larger decision value =
  // more likely positive; the hinge trainer uses +1 for the positive class).
  platt_a_ = a;
  platt_b_ = b;
}

double SvmClassifier::decision_value(std::span<const double> x) const {
  AQUA_REQUIRE(!constant_, "decision_value on a degenerate constant model");
  return core_.decision(map_features(x));
}

double SvmClassifier::predict_proba(std::span<const double> x) const {
  if (constant_) return constant_probability_;
  return sigmoid(platt_a_ * decision_value(x) + platt_b_);
}

bool SvmClassifier::accepts_input_map(const BinaryClassifier& owner) const {
  if (constant_) return true;  // ignores the map entirely
  const auto* peer = dynamic_cast<const SvmClassifier*>(&owner);
  if (peer == nullptr || peer->constant_) return false;
  return config_.rff_dimension == peer->config_.rff_dimension &&
         input_scaler_.identical(peer->input_scaler_) &&
         rff_weights_.rows() == peer->rff_weights_.rows() &&
         rff_weights_.cols() == peer->rff_weights_.cols() &&
         rff_weights_.data() == peer->rff_weights_.data() &&
         rff_offsets_ == peer->rff_offsets_ &&
         core_.scaler().identical(peer->core_.scaler());
}

void SvmClassifier::map_input(std::span<const double> x, PredictWorkspace& ws) const {
  if (constant_) {  // never fitted; identity map for the all-constant case
    ws.mapped.assign(x.begin(), x.end());
    return;
  }
  // Same arithmetic as predict_proba's map_features + core scaler, with
  // every intermediate in caller-owned buffers.
  if (config_.rff_dimension == 0) {
    ws.scratch2.assign(x.begin(), x.end());
  } else {
    input_scaler_.transform_row_into(x, ws.scratch);
    const std::size_t d = ws.scratch.size();
    ws.scratch2.resize(config_.rff_dimension);
    const double scale = std::sqrt(2.0 / static_cast<double>(config_.rff_dimension));
    rff_map_into(rff_weights_, rff_offsets_, ws.scratch.data(), d, scale, ws.scratch2.data());
  }
  core_.scaler().transform_row_into(ws.scratch2, ws.mapped);
}

double SvmClassifier::predict_proba_mapped(std::span<const double> mapped) const {
  if (constant_) return constant_probability_;
  return sigmoid(platt_a_ * core_.decision_pretransformed(mapped) + platt_b_);
}

std::unique_ptr<BinaryClassifier> SvmClassifier::clone_config() const {
  return std::make_unique<SvmClassifier>(config_);
}

void SvmClassifier::save_state(io::BinaryWriter& writer) const {
  write_sgd_config(writer, config_.sgd);
  writer.write_u64(config_.rff_dimension);
  writer.write_f64(config_.rff_gamma);
  writer.write_u64(config_.seed);
  core_.save(writer);
  input_scaler_.save(writer);
  write_matrix(writer, rff_weights_);
  writer.write_f64_vector(rff_offsets_);
  writer.write_f64(platt_a_);
  writer.write_f64(platt_b_);
  writer.write_bool(constant_);
  writer.write_f64(constant_probability_);
}

void SvmClassifier::load_state(io::BinaryReader& reader) {
  config_.sgd = read_sgd_config(reader);
  config_.rff_dimension = reader.read_u64();
  config_.rff_gamma = reader.read_f64();
  config_.seed = reader.read_u64();
  core_.load(reader);
  input_scaler_.load(reader);
  rff_weights_ = read_matrix(reader);
  rff_offsets_ = reader.read_f64_vector();
  platt_a_ = reader.read_f64();
  platt_b_ = reader.read_f64();
  constant_ = reader.read_bool();
  constant_probability_ = reader.read_f64();
  if (config_.rff_dimension > 0 && !constant_ &&
      (rff_weights_.rows() != config_.rff_dimension ||
       rff_offsets_.size() != config_.rff_dimension)) {
    throw io::SerializationError("malformed SVM state: RFF shape mismatch");
  }
}

}  // namespace aqua::ml
