// Gradient Boosting classifier: shallow regression trees fitted to the
// pseudo-residuals of the logistic loss, with Newton leaf values
// (Friedman's GBM as implemented by scikit-learn, the paper's "GB").
#pragma once

#include "ml/classifier.hpp"
#include "ml/compiled_forest.hpp"
#include "ml/decision_tree.hpp"

namespace aqua::ml {

struct GradientBoostingConfig {
  std::size_t num_rounds = 60;
  double learning_rate = 0.15;
  std::size_t max_depth = 3;
  std::size_t min_samples_leaf = 4;
  /// Row subsampling per round (stochastic gradient boosting).
  double subsample = 0.8;
  std::uint64_t seed = 31;
  /// Quantile-bin budget of the histogram split search (2..255).
  std::size_t max_bins = 64;
  /// Train with exact sorted-feature CART splits instead of histograms —
  /// the slow validation oracle the binned path is tested against.
  bool exact_splits = false;
};

class GradientBoostingClassifier final : public BinaryClassifier {
 public:
  explicit GradientBoostingClassifier(GradientBoostingConfig config = {});

  void fit(const Matrix& x, const Labels& y) override;
  double predict_proba(std::span<const double> x) const override;
  /// Compiled SoA traversal over the whole tile (bit-identical to the
  /// per-row pointer walk): the learning rate is baked into the leaf
  /// plane at compile time, so accumulation replays score += lr * leaf
  /// in round order exactly.
  void predict_proba_mapped_tile(const double* const* rows, std::size_t count, std::size_t dim,
                                 double* out, std::size_t stride) const override;
  const CompiledForest* compiled_forest() const override {
    return compiled_.compiled() ? &compiled_ : nullptr;
  }
  std::unique_ptr<BinaryClassifier> clone_config() const override;
  std::string name() const override { return "GB"; }
  void save_state(io::BinaryWriter& writer) const override;
  void load_state(io::BinaryReader& reader) override;

  std::size_t fit_store_bins() const override {
    return config_.exact_splits ? 0 : config_.max_bins;
  }
  void fit_with_store(const Matrix& x, const Labels& y, const BinnedDataset& store) override;

  std::size_t num_rounds_fitted() const noexcept { return trees_.size(); }

 private:
  void fit_impl(const Matrix& x, const Labels& y, const BinnedDataset* store);

  GradientBoostingConfig config_;
  std::vector<RegressionTree> trees_;
  /// SoA flattening of trees_ (leaf values pre-scaled by learning_rate),
  /// rebuilt after every fit/load; derived state, never serialized.
  CompiledForest compiled_;
  double base_score_ = 0.0;  // initial log-odds
  bool constant_ = false;
  double constant_probability_ = 0.0;
};

}  // namespace aqua::ml
