#include "ml/decision_tree.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "io/binary.hpp"

namespace aqua::ml {

struct RegressionTree::BuildContext {
  const linalg::Matrix& x;
  std::span<const double> targets;
  std::span<const double> weights;   // may be empty
  std::span<const double> hessians;  // may be empty
  std::size_t max_features;

  double weight(std::size_t i) const { return weights.empty() ? 1.0 : weights[i]; }
  double hessian(std::size_t i) const { return hessians.empty() ? 1.0 : hessians[i]; }
};

void RegressionTree::fit(const linalg::Matrix& x, std::span<const double> targets,
                         std::span<const double> weights,
                         std::span<const std::size_t> sample_indices,
                         std::span<const double> hessians) {
  AQUA_REQUIRE(targets.size() == x.rows(), "target/feature row mismatch");
  AQUA_REQUIRE(weights.empty() || weights.size() == x.rows(), "weight row mismatch");
  AQUA_REQUIRE(hessians.empty() || hessians.size() == x.rows(), "hessian row mismatch");

  std::vector<std::size_t> indices;
  if (sample_indices.empty()) {
    indices.resize(x.rows());
    std::iota(indices.begin(), indices.end(), std::size_t{0});
  } else {
    indices.assign(sample_indices.begin(), sample_indices.end());
  }
  AQUA_REQUIRE(!indices.empty(), "cannot fit a tree on zero samples");

  nodes_.clear();
  BuildContext ctx{x, targets, weights, hessians,
                   config_.max_features == 0 ? x.cols()
                                             : std::min(config_.max_features, x.cols())};
  Rng rng(config_.seed);
  build(ctx, indices, 0, indices.size(), 0, rng);
}

int RegressionTree::build(BuildContext& ctx, std::vector<std::size_t>& indices, std::size_t begin,
                          std::size_t end, std::size_t depth, Rng& rng) {
  const std::size_t count = end - begin;

  double sum_wt = 0.0, sum_wy = 0.0, sum_wh = 0.0, sum_wyy = 0.0;
  for (std::size_t k = begin; k < end; ++k) {
    const std::size_t i = indices[k];
    const double w = ctx.weight(i);
    sum_wt += w;
    sum_wy += w * ctx.targets[i];
    sum_wyy += w * ctx.targets[i] * ctx.targets[i];
    sum_wh += w * ctx.hessian(i);
  }

  Node node;
  node.value = ctx.hessians.empty() ? (sum_wt > 0.0 ? sum_wy / sum_wt : 0.0)
                                    : sum_wy / std::max(sum_wh, 1e-12);

  const double node_sse = sum_wyy - (sum_wt > 0.0 ? sum_wy * sum_wy / sum_wt : 0.0);
  const bool can_split = depth < config_.max_depth && count >= config_.min_samples_split &&
                         node_sse > 1e-12;
  if (!can_split) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }

  // Candidate features (random subset when max_features < d).
  std::vector<std::size_t> features;
  if (ctx.max_features >= ctx.x.cols()) {
    features.resize(ctx.x.cols());
    std::iota(features.begin(), features.end(), std::size_t{0});
  } else {
    features = rng.sample_without_replacement(ctx.x.cols(), ctx.max_features);
  }

  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::pair<double, std::size_t>> sorted;
  sorted.reserve(count);
  for (const std::size_t f : features) {
    sorted.clear();
    for (std::size_t k = begin; k < end; ++k) {
      sorted.emplace_back(ctx.x(indices[k], f), indices[k]);
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;  // constant feature

    double left_wt = 0.0, left_wy = 0.0, left_wyy = 0.0;
    std::size_t left_n = 0;
    for (std::size_t k = 0; k + 1 < sorted.size(); ++k) {
      const std::size_t i = sorted[k].second;
      const double w = ctx.weight(i);
      left_wt += w;
      left_wy += w * ctx.targets[i];
      left_wyy += w * ctx.targets[i] * ctx.targets[i];
      ++left_n;
      if (sorted[k].first == sorted[k + 1].first) continue;  // can't split inside ties
      const std::size_t right_n = count - left_n;
      if (left_n < config_.min_samples_leaf || right_n < config_.min_samples_leaf) continue;
      const double right_wt = sum_wt - left_wt;
      if (left_wt <= 0.0 || right_wt <= 0.0) continue;
      const double right_wy = sum_wy - left_wy;
      const double right_wyy = sum_wyy - left_wyy;
      const double left_sse = left_wyy - left_wy * left_wy / left_wt;
      const double right_sse = right_wyy - right_wy * right_wy / right_wt;
      const double gain = node_sse - left_sse - right_sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (sorted[k].first + sorted[k + 1].first);
      }
    }
  }

  if (best_feature < 0) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }

  // Partition indices[begin, end) in place around the split.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t i) {
        return ctx.x(i, static_cast<std::size_t>(best_feature)) <= best_threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) {  // numerical edge: degenerate partition
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }

  node.feature = best_feature;
  node.threshold = best_threshold;
  nodes_.push_back(node);
  const auto self = static_cast<int>(nodes_.size()) - 1;
  const int left = build(ctx, indices, begin, mid, depth + 1, rng);
  const int right = build(ctx, indices, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

struct RegressionTree::BinnedContext {
  const FeatureBinning& binning;
  std::span<const double> targets;
  std::span<const double> weights;
  std::span<const double> hessians;
  std::size_t max_features;

  double weight(std::size_t i) const { return weights.empty() ? 1.0 : weights[i]; }
  double hessian(std::size_t i) const { return hessians.empty() ? 1.0 : hessians[i]; }
};

void RegressionTree::fit_binned(const FeatureBinning& binning, std::span<const double> targets,
                                std::span<const double> weights,
                                std::span<const std::size_t> sample_indices,
                                std::span<const double> hessians) {
  AQUA_REQUIRE(binning.fitted(), "binning not fitted");
  AQUA_REQUIRE(targets.size() == binning.num_samples(), "target/binning row mismatch");
  AQUA_REQUIRE(weights.empty() || weights.size() == targets.size(), "weight row mismatch");
  AQUA_REQUIRE(hessians.empty() || hessians.size() == targets.size(), "hessian row mismatch");

  std::vector<std::size_t> indices;
  if (sample_indices.empty()) {
    indices.resize(targets.size());
    std::iota(indices.begin(), indices.end(), std::size_t{0});
  } else {
    indices.assign(sample_indices.begin(), sample_indices.end());
  }
  AQUA_REQUIRE(!indices.empty(), "cannot fit a tree on zero samples");

  nodes_.clear();
  BinnedContext ctx{binning, targets, weights, hessians,
                    config_.max_features == 0
                        ? binning.num_features()
                        : std::min(config_.max_features, binning.num_features())};
  Rng rng(config_.seed);
  build_binned(ctx, indices, 0, indices.size(), 0, rng);
}

int RegressionTree::build_binned(BinnedContext& ctx, std::vector<std::size_t>& indices,
                                 std::size_t begin, std::size_t end, std::size_t depth,
                                 Rng& rng) {
  const std::size_t count = end - begin;

  double sum_wt = 0.0, sum_wy = 0.0, sum_wh = 0.0, sum_wyy = 0.0;
  for (std::size_t k = begin; k < end; ++k) {
    const std::size_t i = indices[k];
    const double w = ctx.weight(i);
    sum_wt += w;
    sum_wy += w * ctx.targets[i];
    sum_wyy += w * ctx.targets[i] * ctx.targets[i];
    sum_wh += w * ctx.hessian(i);
  }

  Node node;
  node.value = ctx.hessians.empty() ? (sum_wt > 0.0 ? sum_wy / sum_wt : 0.0)
                                    : sum_wy / std::max(sum_wh, 1e-12);

  const double node_sse = sum_wyy - (sum_wt > 0.0 ? sum_wy * sum_wy / sum_wt : 0.0);
  const bool can_split = depth < config_.max_depth && count >= config_.min_samples_split &&
                         node_sse > 1e-12;
  if (!can_split) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }

  std::vector<std::size_t> features;
  if (ctx.max_features >= ctx.binning.num_features()) {
    features.resize(ctx.binning.num_features());
    std::iota(features.begin(), features.end(), std::size_t{0});
  } else {
    features = rng.sample_without_replacement(ctx.binning.num_features(), ctx.max_features);
  }

  double best_gain = 1e-12;
  int best_feature = -1;
  std::size_t best_bin = 0;

  // Per-bin accumulators (kMaxBins is small enough for the stack-ish reuse).
  std::array<double, FeatureBinning::kMaxBins> bin_wt{}, bin_wy{}, bin_wyy{};
  std::array<std::size_t, FeatureBinning::kMaxBins> bin_count{};

  for (const std::size_t f : features) {
    const std::size_t bins = ctx.binning.bins(f);
    if (bins < 2) continue;
    std::fill_n(bin_wt.begin(), bins, 0.0);
    std::fill_n(bin_wy.begin(), bins, 0.0);
    std::fill_n(bin_wyy.begin(), bins, 0.0);
    std::fill_n(bin_count.begin(), bins, std::size_t{0});
    for (std::size_t k = begin; k < end; ++k) {
      const std::size_t i = indices[k];
      const std::uint8_t b = ctx.binning.code(i, f);
      const double w = ctx.weight(i);
      bin_wt[b] += w;
      bin_wy[b] += w * ctx.targets[i];
      bin_wyy[b] += w * ctx.targets[i] * ctx.targets[i];
      ++bin_count[b];
    }
    double left_wt = 0.0, left_wy = 0.0, left_wyy = 0.0;
    std::size_t left_n = 0;
    for (std::size_t b = 0; b + 1 < bins; ++b) {
      left_wt += bin_wt[b];
      left_wy += bin_wy[b];
      left_wyy += bin_wyy[b];
      left_n += bin_count[b];
      const std::size_t right_n = count - left_n;
      if (left_n < config_.min_samples_leaf || right_n < config_.min_samples_leaf) continue;
      const double right_wt = sum_wt - left_wt;
      if (left_wt <= 0.0 || right_wt <= 0.0) continue;
      const double right_wy = sum_wy - left_wy;
      const double right_wyy = sum_wyy - left_wyy;
      const double left_sse = left_wyy - left_wy * left_wy / left_wt;
      const double right_sse = right_wyy - right_wy * right_wy / right_wt;
      const double gain = node_sse - left_sse - right_sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_bin = b;
      }
    }
  }

  if (best_feature < 0) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }

  const double threshold =
      ctx.binning.upper_boundary(static_cast<std::size_t>(best_feature), best_bin);
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t i) {
        return ctx.binning.code(i, static_cast<std::size_t>(best_feature)) <= best_bin;
      });
  const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }

  node.feature = best_feature;
  node.threshold = threshold;
  nodes_.push_back(node);
  const auto self = static_cast<int>(nodes_.size()) - 1;
  const int left = build_binned(ctx, indices, begin, mid, depth + 1, rng);
  const int right = build_binned(ctx, indices, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

double RegressionTree::predict(std::span<const double> x) const {
  AQUA_REQUIRE(fitted(), "predict on unfitted tree");
  std::size_t current = 0;
  for (;;) {
    const Node& node = nodes_[current];
    if (node.feature < 0) return node.value;
    const double v = x[static_cast<std::size_t>(node.feature)];
    current = static_cast<std::size_t>(v <= node.threshold ? node.left : node.right);
  }
}

std::size_t RegressionTree::depth() const noexcept {
  // Iterative depth computation over the implicit tree.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 1}};
  std::size_t max_depth = 0;
  while (!stack.empty()) {
    const auto [idx, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& node = nodes_[idx];
    if (node.feature >= 0) {
      stack.push_back({static_cast<std::size_t>(node.left), d + 1});
      stack.push_back({static_cast<std::size_t>(node.right), d + 1});
    }
  }
  return max_depth;
}

void RegressionTree::save(io::BinaryWriter& writer) const {
  writer.write_u64(config_.max_depth);
  writer.write_u64(config_.min_samples_split);
  writer.write_u64(config_.min_samples_leaf);
  writer.write_u64(config_.max_features);
  writer.write_u64(config_.seed);
  writer.write_u64(nodes_.size());
  for (const Node& node : nodes_) {
    writer.write_i32(node.feature);
    writer.write_f64(node.threshold);
    writer.write_f64(node.value);
    writer.write_i32(node.left);
    writer.write_i32(node.right);
  }
}

void RegressionTree::load(io::BinaryReader& reader) {
  config_.max_depth = reader.read_u64();
  config_.min_samples_split = reader.read_u64();
  config_.min_samples_leaf = reader.read_u64();
  config_.max_features = reader.read_u64();
  config_.seed = reader.read_u64();
  const std::uint64_t count = reader.read_u64();
  if (count > (std::uint64_t{1} << 32)) throw io::SerializationError("malformed tree node count");
  nodes_.clear();
  nodes_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Node node;
    node.feature = reader.read_i32();
    node.threshold = reader.read_f64();
    node.value = reader.read_f64();
    node.left = reader.read_i32();
    node.right = reader.read_i32();
    // Child indices must stay inside the node array so a corrupt tree can
    // never send predict() out of bounds.
    if (node.feature >= 0) {
      const auto n = static_cast<std::int64_t>(count);
      if (node.left < 0 || node.right < 0 || node.left >= n || node.right >= n) {
        throw io::SerializationError("malformed tree: child index out of range");
      }
    }
    nodes_.push_back(node);
  }
}

}  // namespace aqua::ml
