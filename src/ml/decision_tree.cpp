#include "ml/decision_tree.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/cpu_dispatch.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "io/binary.hpp"

namespace aqua::ml {
struct RegressionTree::BuildContext {
  const linalg::Matrix& x;
  std::span<const double> targets;
  std::span<const double> weights;   // may be empty
  std::span<const double> hessians;  // may be empty
  std::size_t max_features;

  double weight(std::size_t i) const { return weights.empty() ? 1.0 : weights[i]; }
  double hessian(std::size_t i) const { return hessians.empty() ? 1.0 : hessians[i]; }
};

void RegressionTree::fit(const linalg::Matrix& x, std::span<const double> targets,
                         std::span<const double> weights,
                         std::span<const std::size_t> sample_indices,
                         std::span<const double> hessians) {
  AQUA_REQUIRE(targets.size() == x.rows(), "target/feature row mismatch");
  AQUA_REQUIRE(weights.empty() || weights.size() == x.rows(), "weight row mismatch");
  AQUA_REQUIRE(hessians.empty() || hessians.size() == x.rows(), "hessian row mismatch");

  std::vector<std::size_t> indices;
  if (sample_indices.empty()) {
    indices.resize(x.rows());
    std::iota(indices.begin(), indices.end(), std::size_t{0});
  } else {
    indices.assign(sample_indices.begin(), sample_indices.end());
  }
  AQUA_REQUIRE(!indices.empty(), "cannot fit a tree on zero samples");

  nodes_.clear();
  BuildContext ctx{x, targets, weights, hessians,
                   config_.max_features == 0 ? x.cols()
                                             : std::min(config_.max_features, x.cols())};
  Rng rng(config_.seed);
  build(ctx, indices, 0, indices.size(), 0, rng);
}

int RegressionTree::build(BuildContext& ctx, std::vector<std::size_t>& indices, std::size_t begin,
                          std::size_t end, std::size_t depth, Rng& rng) {
  const std::size_t count = end - begin;

  double sum_wt = 0.0, sum_wy = 0.0, sum_wh = 0.0, sum_wyy = 0.0;
  for (std::size_t k = begin; k < end; ++k) {
    const std::size_t i = indices[k];
    const double w = ctx.weight(i);
    sum_wt += w;
    sum_wy += w * ctx.targets[i];
    sum_wyy += w * ctx.targets[i] * ctx.targets[i];
    sum_wh += w * ctx.hessian(i);
  }

  Node node;
  node.value = ctx.hessians.empty() ? (sum_wt > 0.0 ? sum_wy / sum_wt : 0.0)
                                    : sum_wy / std::max(sum_wh, 1e-12);

  const double node_sse = sum_wyy - (sum_wt > 0.0 ? sum_wy * sum_wy / sum_wt : 0.0);
  const bool can_split = depth < config_.max_depth && count >= config_.min_samples_split &&
                         node_sse > 1e-12;
  if (!can_split) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }

  // Candidate features (random subset when max_features < d).
  std::vector<std::size_t> features;
  if (ctx.max_features >= ctx.x.cols()) {
    features.resize(ctx.x.cols());
    std::iota(features.begin(), features.end(), std::size_t{0});
  } else {
    features = rng.sample_without_replacement(ctx.x.cols(), ctx.max_features);
  }

  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::pair<double, std::size_t>> sorted;
  sorted.reserve(count);
  for (const std::size_t f : features) {
    sorted.clear();
    for (std::size_t k = begin; k < end; ++k) {
      sorted.emplace_back(ctx.x(indices[k], f), indices[k]);
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;  // constant feature

    double left_wt = 0.0, left_wy = 0.0, left_wyy = 0.0;
    std::size_t left_n = 0;
    for (std::size_t k = 0; k + 1 < sorted.size(); ++k) {
      const std::size_t i = sorted[k].second;
      const double w = ctx.weight(i);
      left_wt += w;
      left_wy += w * ctx.targets[i];
      left_wyy += w * ctx.targets[i] * ctx.targets[i];
      ++left_n;
      if (sorted[k].first == sorted[k + 1].first) continue;  // can't split inside ties
      const std::size_t right_n = count - left_n;
      if (left_n < config_.min_samples_leaf || right_n < config_.min_samples_leaf) continue;
      const double right_wt = sum_wt - left_wt;
      if (left_wt <= 0.0 || right_wt <= 0.0) continue;
      const double right_wy = sum_wy - left_wy;
      const double right_wyy = sum_wyy - left_wyy;
      const double left_sse = left_wyy - left_wy * left_wy / left_wt;
      const double right_sse = right_wyy - right_wy * right_wy / right_wt;
      const double gain = node_sse - left_sse - right_sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (sorted[k].first + sorted[k + 1].first);
      }
    }
  }

  if (best_feature < 0) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }

  // Partition indices[begin, end) in place around the split.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t i) {
        return ctx.x(i, static_cast<std::size_t>(best_feature)) <= best_threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) {  // numerical edge: degenerate partition
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }

  node.feature = best_feature;
  node.threshold = best_threshold;
  nodes_.push_back(node);
  const auto self = static_cast<int>(nodes_.size()) - 1;
  const int left = build(ctx, indices, begin, mid, depth + 1, rng);
  const int right = build(ctx, indices, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

struct RegressionTree::BinnedContext {
  const FeatureBinning& binning;
  std::span<const double> targets;
  std::span<const double> weights;
  std::span<const double> hessians;
  std::size_t max_features;

  double weight(std::size_t i) const { return weights.empty() ? 1.0 : weights[i]; }
  double hessian(std::size_t i) const { return hessians.empty() ? 1.0 : hessians[i]; }
};

void RegressionTree::fit_binned(const FeatureBinning& binning, std::span<const double> targets,
                                std::span<const double> weights,
                                std::span<const std::size_t> sample_indices,
                                std::span<const double> hessians) {
  AQUA_REQUIRE(binning.fitted(), "binning not fitted");
  AQUA_REQUIRE(targets.size() == binning.num_samples(), "target/binning row mismatch");
  AQUA_REQUIRE(weights.empty() || weights.size() == targets.size(), "weight row mismatch");
  AQUA_REQUIRE(hessians.empty() || hessians.size() == targets.size(), "hessian row mismatch");

  std::vector<std::size_t> indices;
  if (sample_indices.empty()) {
    indices.resize(targets.size());
    std::iota(indices.begin(), indices.end(), std::size_t{0});
  } else {
    indices.assign(sample_indices.begin(), sample_indices.end());
  }
  AQUA_REQUIRE(!indices.empty(), "cannot fit a tree on zero samples");

  nodes_.clear();
  BinnedContext ctx{binning, targets, weights, hessians,
                    config_.max_features == 0
                        ? binning.num_features()
                        : std::min(config_.max_features, binning.num_features())};
  Rng rng(config_.seed);
  build_binned(ctx, indices, 0, indices.size(), 0, rng);
}

int RegressionTree::build_binned(BinnedContext& ctx, std::vector<std::size_t>& indices,
                                 std::size_t begin, std::size_t end, std::size_t depth,
                                 Rng& rng) {
  const std::size_t count = end - begin;

  double sum_wt = 0.0, sum_wy = 0.0, sum_wh = 0.0, sum_wyy = 0.0;
  for (std::size_t k = begin; k < end; ++k) {
    const std::size_t i = indices[k];
    const double w = ctx.weight(i);
    sum_wt += w;
    sum_wy += w * ctx.targets[i];
    sum_wyy += w * ctx.targets[i] * ctx.targets[i];
    sum_wh += w * ctx.hessian(i);
  }

  Node node;
  node.value = ctx.hessians.empty() ? (sum_wt > 0.0 ? sum_wy / sum_wt : 0.0)
                                    : sum_wy / std::max(sum_wh, 1e-12);

  const double node_sse = sum_wyy - (sum_wt > 0.0 ? sum_wy * sum_wy / sum_wt : 0.0);
  const bool can_split = depth < config_.max_depth && count >= config_.min_samples_split &&
                         node_sse > 1e-12;
  if (!can_split) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }

  std::vector<std::size_t> features;
  if (ctx.max_features >= ctx.binning.num_features()) {
    features.resize(ctx.binning.num_features());
    std::iota(features.begin(), features.end(), std::size_t{0});
  } else {
    features = rng.sample_without_replacement(ctx.binning.num_features(), ctx.max_features);
  }

  double best_gain = 1e-12;
  int best_feature = -1;
  std::size_t best_bin = 0;

  // Per-bin accumulators (kMaxBins is small enough for the stack-ish reuse).
  std::array<double, FeatureBinning::kMaxBins> bin_wt{}, bin_wy{}, bin_wyy{};
  std::array<std::size_t, FeatureBinning::kMaxBins> bin_count{};

  for (const std::size_t f : features) {
    const std::size_t bins = ctx.binning.bins(f);
    if (bins < 2) continue;
    std::fill_n(bin_wt.begin(), bins, 0.0);
    std::fill_n(bin_wy.begin(), bins, 0.0);
    std::fill_n(bin_wyy.begin(), bins, 0.0);
    std::fill_n(bin_count.begin(), bins, std::size_t{0});
    for (std::size_t k = begin; k < end; ++k) {
      const std::size_t i = indices[k];
      const std::uint8_t b = ctx.binning.code(i, f);
      const double w = ctx.weight(i);
      bin_wt[b] += w;
      bin_wy[b] += w * ctx.targets[i];
      bin_wyy[b] += w * ctx.targets[i] * ctx.targets[i];
      ++bin_count[b];
    }
    double left_wt = 0.0, left_wy = 0.0, left_wyy = 0.0;
    std::size_t left_n = 0;
    for (std::size_t b = 0; b + 1 < bins; ++b) {
      left_wt += bin_wt[b];
      left_wy += bin_wy[b];
      left_wyy += bin_wyy[b];
      left_n += bin_count[b];
      const std::size_t right_n = count - left_n;
      if (left_n < config_.min_samples_leaf || right_n < config_.min_samples_leaf) continue;
      const double right_wt = sum_wt - left_wt;
      if (left_wt <= 0.0 || right_wt <= 0.0) continue;
      const double right_wy = sum_wy - left_wy;
      const double right_wyy = sum_wyy - left_wyy;
      const double left_sse = left_wyy - left_wy * left_wy / left_wt;
      const double right_sse = right_wyy - right_wy * right_wy / right_wt;
      const double gain = node_sse - left_sse - right_sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_bin = b;
      }
    }
  }

  if (best_feature < 0) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }

  const double threshold =
      ctx.binning.upper_boundary(static_cast<std::size_t>(best_feature), best_bin);
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t i) {
        return ctx.binning.code(i, static_cast<std::size_t>(best_feature)) <= best_bin;
      });
  const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }

  node.feature = best_feature;
  node.threshold = threshold;
  nodes_.push_back(node);
  const auto self = static_cast<int>(nodes_.size()) - 1;
  const int left = build_binned(ctx, indices, begin, mid, depth + 1, rng);
  const int right = build_binned(ctx, indices, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

namespace {

// Flat histogram layout: kHistStride doubles per bin — sum of weights
// and sum of w*y, one SIMD pair per row accumulation. Row counts live in
// a separate uint32 plane so they stay integer-exact (parent-minus-child
// subtraction included) and the double cells stay half as wide.
constexpr std::size_t kHistStride = 2;

// Below this many (row x candidate) histogram cell visits the ThreadPool
// fan-out costs more than the scan itself.
constexpr std::size_t kMinParallelWork = std::size_t{1} << 14;

}  // namespace

// Declared in the header so HistVec can appear in build_store's
// signature. Plain operator new hands back 16-mod-32 bases for large
// blocks, which makes half of all 32-byte histogram cells straddle two
// cache lines; 64-byte alignment keeps every cell inside one.
template <typename T>
struct HistAllocator {
  using value_type = T;
  HistAllocator() = default;
  template <typename U>
  HistAllocator(const HistAllocator<U>&) {}
  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{64}));
  }
  void deallocate(T* p, std::size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t{64});
  }
  bool operator==(const HistAllocator&) const { return true; }
};

// A node's histograms: (sum w, sum w*y) double cells plus a uint32 count
// plane, both num_features x max_bins. Counts in their own plane keep
// empty-bin detection exact on the subtraction path — integer subtraction
// leaves no residue — while the double cells stay one SIMD pair wide.
struct TreeHist {
  HistVec cells;
  std::vector<std::uint32_t> cnt;
  bool empty() const { return cells.empty(); }
};

struct RegressionTree::NodeTotals {
  double wt = 0.0;   // sum of weights
  double wy = 0.0;   // sum of w * y
  double wyy = 0.0;  // sum of w * y * y
  double wh = 0.0;   // sum of w * hessian (tracked only when hessians given)
  std::size_t count = 0;
};

struct RegressionTree::StoreContext {
  explicit StoreContext(const BinnedDataset& s) : store(s) {}

  const BinnedDataset& store;
  std::size_t max_features = 0;
  bool has_hessians = false;
  // Every feature is a candidate at every node, so a child's histograms
  // can be derived from the parent's by subtraction (the gradient
  // boosting case; RF's per-node feature sampling scans directly).
  bool subtract = false;

  // Rows of this fit in partition order; entries [2k, 2k+2) of `stats`
  // hold the precomputed (w, w*y) of store row order[k], permuted along
  // with it so node scans read contiguous memory. The layout matches the
  // histogram cell layout exactly, so accumulating a row is one
  // lane-parallel add. w*y*y and hessian stats stay in their own arrays:
  // they feed node totals, not histograms.
  std::vector<std::size_t> order;
  HistVec stats;  // 64-aligned: rows are read as whole 16-byte lanes
  std::vector<double> wyy, swh;

  // Stable-partition scratch.
  std::vector<std::uint8_t> goes_left;
  std::vector<std::size_t> order_tmp;
  std::vector<double> stat_tmp;

  std::vector<std::size_t> all_features;      // iota, subtract mode
  std::vector<std::size_t> sampled_features;  // per node, sampling mode

  // Per-candidate best splits: the parallel search writes disjoint slots
  // and the reduction walks them sequentially in candidate order, so the
  // chosen split never depends on thread scheduling.
  std::vector<double> cand_gain;
  std::vector<std::size_t> cand_bin;

  // Pool of histogram buffers (num_features x max_bins x kHistStride
  // doubles plus the count plane each); at most depth+1 are live at once.
  std::vector<TreeHist> hist_pool;

  // Split bin per node (parallel to nodes_), used after the build to
  // route rows outside the training sample to their leaves by bin code.
  std::vector<std::uint8_t> split_bin;
  std::vector<std::int32_t>* leaf_of_row = nullptr;

  TreeHist acquire_hist() {
    if (!hist_pool.empty()) {
      TreeHist h = std::move(hist_pool.back());
      hist_pool.pop_back();
      return h;
    }
    const std::size_t slots = store.num_features() * store.max_bins();
    auto& tl = thread_hist_pool();
    while (!tl.empty()) {
      TreeHist h = std::move(tl.back());
      tl.pop_back();
      if (h.cells.size() == slots * kHistStride) return h;  // stale sizes just drop
    }
    return TreeHist{HistVec(slots * kHistStride), std::vector<std::uint32_t>(slots)};
  }
  void release_hist(TreeHist&& h) {
    if (!h.empty()) hist_pool.push_back(std::move(h));
  }
  ~StoreContext() {
    // Park the buffers for the next tree on this thread. Reused buffers
    // hold stale values, but every region a scan reads is zeroed and
    // rebuilt first, so reuse never changes a result — it only avoids
    // re-faulting ~0.5 MB per tree.
    auto& tl = thread_hist_pool();
    for (auto& h : hist_pool) {
      if (tl.size() >= 6) break;
      tl.push_back(std::move(h));
    }
  }

 private:
  static std::vector<TreeHist>& thread_hist_pool() {
    static thread_local std::vector<TreeHist> pool;
    return pool;
  }
};

// One histogram cell as a two-lane vector, plus the wide lane types the
// gain kernel's shuffles use. may_alias lets the vectors view the
// underlying arrays; aligned(8)/aligned(4) keeps loads unaligned-safe
// where a cell or count quad is not naturally vector-aligned.
using v2df = double __attribute__((vector_size(16), aligned(8), may_alias));
using v4df = double __attribute__((vector_size(32), aligned(8), may_alias));
using v4si = std::uint32_t __attribute__((vector_size(16), aligned(4), may_alias));

// Streams interleaved stats rows into a block of feature histograms,
// reading each 16-byte stats row once per block instead of once per
// feature. Dispatched at load time to the widest vector unit available;
// per-lane IEEE adds are identical across clones, and every cell still
// receives its additions in row order, so neither the tiling nor the
// dispatch changes a single bit of the result.
AQUA_TARGET_CLONES void accumulate_hist_block(
    double* const* hist_base, std::uint32_t* const* cnt_base, const std::uint8_t* const* cols,
    std::size_t nf, const std::size_t* order, const double* stats, std::size_t begin,
    std::size_t end) {
  for (std::size_t k = begin; k < end; ++k) {
    const std::size_t row = order[k];
    const v2df s = *reinterpret_cast<const v2df*>(stats + k * kHistStride);
    for (std::size_t j = 0; j < nf; ++j) {
      const std::size_t code = cols[j][row];
      *reinterpret_cast<v2df*>(hist_base[j] + code * kHistStride) += s;
      cnt_base[j][code] += 1;
    }
  }
}

AQUA_TARGET_CLONES void subtract_hist(
    double* parent, const double* small, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) parent[i] -= small[i];
}

void subtract_cnt(std::uint32_t* parent, const std::uint32_t* small, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) parent[i] -= small[i];
}

constexpr std::size_t kMaxStoreBins = 256;

// Single-division form of the variance-reduction gain:
//   lwy^2/lwt + rwy^2/rwt - wy^2/wt
// with the parent term hoisted out by the caller. Same criterion, one
// divide per bin instead of two, and the unconditional loop body lets the
// wide clones batch the divides. fp-contract stays off so every clone
// produces the scalar path's exact bits.
AQUA_TARGET_CLONES
__attribute__((optimize("O3", "fp-contract=off", "no-trapping-math", "no-math-errno"))) void
eval_split_gains(const double* lwt, const double* lwy, const double* ln, std::size_t nb,
                 double tot_wt, double tot_wy, double n_count, double min_leaf,
                 double parent_score, double* gain) {
  for (std::size_t i = 0; i < nb; ++i) {
    const double l_wt = lwt[i], l_wy = lwy[i], l_n = ln[i];
    const double r_wt = tot_wt - l_wt;
    const double r_wy = tot_wy - l_wy;
    const double r_n = n_count - l_n;
    const double cross = l_wy * l_wy * r_wt + r_wy * r_wy * l_wt;
    const double g = cross / (l_wt * r_wt) - parent_score;
    const bool ok = l_n >= min_leaf && r_n >= min_leaf && l_wt > 0.0 && r_wt > 0.0;
    gain[i] = ok ? g : -std::numeric_limits<double>::infinity();
  }
}

// Dense-node variant reading the interleaved (wt, wy) prefix sums that
// Phase A produces with one vector add per bin, plus the integer count
// prefixes. A bin whose own count is zero (integer subtraction keeps
// counts exact) is poisoned to -inf so splitting "at" an empty bin —
// which would duplicate its predecessor's partition under a different
// recorded threshold — can never be selected.
AQUA_TARGET_CLONES
__attribute__((optimize("O3", "fp-contract=off", "no-trapping-math", "no-math-errno"))) void
eval_split_gains_dense(const double* pref, const std::uint32_t* cnt_pref,
                       const std::uint32_t* cell_cnt, std::size_t nb, double tot_wt,
                       double tot_wy, std::uint32_t n_count, std::uint32_t min_leaf,
                       double parent_score, double* gain) {
  using v4di = long long __attribute__((vector_size(32), may_alias));
  using v4i32 = std::int32_t __attribute__((vector_size(16), aligned(4), may_alias));
  const v4df vtot_wt = {tot_wt, tot_wt, tot_wt, tot_wt};
  const v4df vtot_wy = {tot_wy, tot_wy, tot_wy, tot_wy};
  const v4si vn = {n_count, n_count, n_count, n_count};
  const v4si vmin = {min_leaf, min_leaf, min_leaf, min_leaf};
  const v4si vzero_i = {0, 0, 0, 0};
  const v4df vpar = {parent_score, parent_score, parent_score, parent_score};
  const v4df vzero = {0.0, 0.0, 0.0, 0.0};
  const double ninf = -std::numeric_limits<double>::infinity();
  const v4df vninf = {ninf, ninf, ninf, ninf};
  const v4di deint_lo = {0, 2, 4, 6}, deint_hi = {1, 3, 5, 7};
  std::size_t i = 0;
  // Four bins per iteration: de-interleave four (wt, wy) prefix cells
  // into per-quantity lanes, then per-lane IEEE arithmetic identical to
  // the scalar tail below, so the blocking changes no bits.
  for (; i + 4 <= nb; i += 4) {
    const v4df p0 = *reinterpret_cast<const v4df*>(pref + i * kHistStride);
    const v4df p1 = *reinterpret_cast<const v4df*>(pref + i * kHistStride + 4);
    const v4df l_wt = __builtin_shuffle(p0, p1, deint_lo);
    const v4df l_wy = __builtin_shuffle(p0, p1, deint_hi);
    const v4si l_n = *reinterpret_cast<const v4si*>(cnt_pref + i);
    const v4si own = *reinterpret_cast<const v4si*>(cell_cnt + i);
    const v4df r_wt = vtot_wt - l_wt;
    const v4df r_wy = vtot_wy - l_wy;
    const v4df cross = l_wy * l_wy * r_wt + r_wy * r_wy * l_wt;
    const v4df g = cross / (l_wt * r_wt) - vpar;
    const v4i32 ok_n = (v4i32)((l_n >= vmin) & ((vn - l_n) >= vmin) & (own != vzero_i));
    const v4di ok = __builtin_convertvector(ok_n, v4di) & (l_wt > vzero) & (r_wt > vzero);
    const v4di blended = (reinterpret_cast<const v4di&>(g) & ok) |
                         (reinterpret_cast<const v4di&>(vninf) & ~ok);
    *reinterpret_cast<v4di*>(gain + i) = blended;
  }
  for (; i < nb; ++i) {
    const double l_wt = pref[i * kHistStride];
    const double l_wy = pref[i * kHistStride + 1];
    const std::uint32_t l_n = cnt_pref[i];
    const double r_wt = tot_wt - l_wt;
    const double r_wy = tot_wy - l_wy;
    const double cross = l_wy * l_wy * r_wt + r_wy * r_wy * l_wt;
    const double g = cross / (l_wt * r_wt) - parent_score;
    const bool ok = l_n >= min_leaf && (n_count - l_n) >= min_leaf && l_wt > 0.0 &&
                    r_wt > 0.0 && cell_cnt[i] != 0;
    gain[i] = ok ? g : -std::numeric_limits<double>::infinity();
  }
}

// Zeroes and builds the histograms of `features` over rows [begin, end),
// in 16-feature tiles so a tile's histograms stay L1-resident while its
// rows stream through. Tiles touch disjoint histogram regions, so the
// fan-out is race-free and thread-count invariant.
void build_hists(const BinnedDataset& store, TreeHist& hist,
                 std::span<const std::size_t> features, const std::size_t* order,
                 const double* stats, std::size_t begin, std::size_t end) {
  constexpr std::size_t kBlock = 8;
  const std::size_t max_bins = store.max_bins();
  const std::size_t blocks = (features.size() + kBlock - 1) / kBlock;
  auto run_block = [&](std::size_t blk) {
    double* base[kBlock];
    std::uint32_t* cbase[kBlock];
    const std::uint8_t* col[kBlock];
    std::size_t nf = 0;
    const std::size_t c1 = std::min((blk + 1) * kBlock, features.size());
    for (std::size_t c = blk * kBlock; c < c1; ++c) {
      const std::size_t f = features[c];
      const std::size_t bins = store.bins(f);
      if (bins < 2) continue;  // constant feature: no histogram region
      double* h = hist.cells.data() + f * max_bins * kHistStride;
      std::uint32_t* hc = hist.cnt.data() + f * max_bins;
      std::fill_n(h, bins * kHistStride, 0.0);
      std::fill_n(hc, bins, std::uint32_t{0});
      base[nf] = h;
      cbase[nf] = hc;
      col[nf] = store.column(f).data();
      ++nf;
    }
    if (nf > 0) {
      accumulate_hist_block(base, cbase, col, nf, order, stats, begin, end);
    }
  };
  if (blocks > 1 && (end - begin) * features.size() >= kMinParallelWork) {
    ThreadPool::global().parallel_for(blocks, run_block);
  } else {
    for (std::size_t blk = 0; blk < blocks; ++blk) run_block(blk);
  }
}

void RegressionTree::fit_binned(const BinnedDataset& store, std::span<const double> targets,
                                std::span<const double> weights,
                                std::span<const std::size_t> sample_indices,
                                std::span<const double> hessians,
                                std::vector<std::int32_t>* leaf_of_row) {
  AQUA_REQUIRE(store.fitted(), "binned store not fitted");
  AQUA_REQUIRE(targets.size() == store.num_samples(), "target/store row mismatch");
  AQUA_REQUIRE(weights.empty() || weights.size() == targets.size(), "weight row mismatch");
  AQUA_REQUIRE(hessians.empty() || hessians.size() == targets.size(), "hessian row mismatch");

  const std::size_t n_rows = store.num_samples();
  const std::size_t d = store.num_features();

  StoreContext ctx{store};
  ctx.max_features = config_.max_features == 0 ? d : std::min(config_.max_features, d);
  ctx.has_hessians = !hessians.empty();
  ctx.subtract = ctx.max_features >= d;

  if (sample_indices.empty()) {
    ctx.order.resize(n_rows);
    std::iota(ctx.order.begin(), ctx.order.end(), std::size_t{0});
  } else {
    // Ascending row order makes every code-column gather and stats read
    // stream forward. A node's rows may be summed in any fixed order;
    // sorting just picks the cache-friendly one, deterministically.
    ctx.order.assign(sample_indices.begin(), sample_indices.end());
    std::sort(ctx.order.begin(), ctx.order.end());
  }
  AQUA_REQUIRE(!ctx.order.empty(), "cannot fit a tree on zero samples");
  const std::size_t n = ctx.order.size();

  ctx.stats.resize(n * kHistStride);
  ctx.wyy.resize(n);
  if (ctx.has_hessians) ctx.swh.resize(n);
  NodeTotals root;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = ctx.order[k];
    const double w = weights.empty() ? 1.0 : weights[i];
    const double wy = w * targets[i];
    double* s = ctx.stats.data() + k * kHistStride;
    s[0] = w;
    s[1] = wy;
    ctx.wyy[k] = wy * targets[i];
    root.wt += w;
    root.wy += wy;
    root.wyy += wy * targets[i];
    if (ctx.has_hessians) {
      const double wh = w * hessians[i];
      ctx.swh[k] = wh;
      root.wh += wh;
    }
  }
  root.count = n;

  ctx.goes_left.resize(n);
  ctx.order_tmp.resize(n);
  ctx.stat_tmp.resize(n * kHistStride);
  if (ctx.subtract) {
    ctx.all_features.resize(d);
    std::iota(ctx.all_features.begin(), ctx.all_features.end(), std::size_t{0});
  }
  const std::size_t candidates = ctx.subtract ? d : ctx.max_features;
  ctx.cand_gain.resize(candidates);
  ctx.cand_bin.resize(candidates);

  if (leaf_of_row != nullptr) {
    leaf_of_row->assign(n_rows, -1);
    ctx.leaf_of_row = leaf_of_row;
  }

  nodes_.clear();
  ctx.split_bin.clear();
  Rng rng(config_.seed);
  build_store(ctx, 0, n, 0, root, {}, rng);

  // Rows the sample never visited (bootstrap out-of-bag, subsampled-out)
  // are routed through the fitted splits on their bin codes. For store
  // rows, code(i, f) <= split_bin is exactly value <= threshold, so
  // leaf_value(leaf_of_row[i]) equals predict(row i) bitwise.
  if (leaf_of_row != nullptr) {
    for (std::size_t i = 0; i < n_rows; ++i) {
      std::int32_t& slot = (*leaf_of_row)[i];
      if (slot >= 0) continue;
      std::size_t cur = 0;
      while (nodes_[cur].feature >= 0) {
        const auto f = static_cast<std::size_t>(nodes_[cur].feature);
        cur = static_cast<std::size_t>(store.code(i, f) <= ctx.split_bin[cur]
                                           ? nodes_[cur].left
                                           : nodes_[cur].right);
      }
      slot = static_cast<std::int32_t>(cur);
    }
  }
}

int RegressionTree::build_store(StoreContext& ctx, std::size_t begin, std::size_t end,
                                std::size_t depth, const NodeTotals& totals,
                                TreeHist hist, Rng& rng) {
  const std::size_t count = end - begin;

  Node node;
  node.value = !ctx.has_hessians ? (totals.wt > 0.0 ? totals.wy / totals.wt : 0.0)
                                 : totals.wy / std::max(totals.wh, 1e-12);
  const double parent_score =
      totals.wt > 0.0 ? totals.wy * totals.wy / totals.wt : 0.0;
  const double node_sse = totals.wyy - parent_score;
  const bool can_split =
      depth < config_.max_depth && count >= config_.min_samples_split && node_sse > 1e-12;

  auto make_leaf = [&]() {
    ctx.release_hist(std::move(hist));
    nodes_.push_back(node);
    ctx.split_bin.push_back(0);
    const auto self = static_cast<int>(nodes_.size()) - 1;
    if (ctx.leaf_of_row != nullptr) {
      for (std::size_t k = begin; k < end; ++k) (*ctx.leaf_of_row)[ctx.order[k]] = self;
    }
    return self;
  };
  if (!can_split) return make_leaf();

  const std::size_t d = ctx.store.num_features();
  std::span<const std::size_t> features;
  if (ctx.subtract) {
    features = ctx.all_features;
  } else {
    ctx.sampled_features = rng.sample_without_replacement(d, ctx.max_features);
    features = ctx.sampled_features;
  }

  // This node's histogram: handed down by the parent (subtraction path)
  // or built here from the candidates' contiguous code columns.
  if (hist.empty()) {
    hist = ctx.acquire_hist();
    build_hists(ctx.store, hist, features, ctx.order.data(), ctx.stats.data(), begin, end);
  }

  const std::size_t max_bins = ctx.store.max_bins();
  const double min_leaf = static_cast<double>(config_.min_samples_leaf);
  const auto min_leaf_u = static_cast<std::uint32_t>(config_.min_samples_leaf);
  auto scan_candidate = [&](std::size_t c) {
    const std::size_t f = features[c];
    ctx.cand_gain[c] = 0.0;
    const std::size_t bins = ctx.store.bins(f);
    if (bins < 2) return;  // constant feature: nothing to split
    const double* h = hist.cells.data() + f * max_bins * kHistStride;
    const std::uint32_t* hc = hist.cnt.data() + f * max_bins;

    // Phase B gains, then a Phase C ascending strict-improvement argmax
    // — together they choose exactly the split a one-pass scalar loop
    // would, because every invalid or empty-bin split is poisoned to
    // -inf before the argmax.
    alignas(64) double gain[kMaxStoreBins];
    double best_gain = 1e-12;
    std::size_t best = kMaxStoreBins;
    if (count >= bins) {
      // Dense Phase A: whole-cell running sum, one unconditional vector
      // add per bin; empty bins are excluded by the count poison in the
      // gain pass, not by a data-dependent branch here.
      alignas(64) double pref[kMaxStoreBins * kHistStride];
      alignas(64) std::uint32_t cpref[kMaxStoreBins];
      const std::size_t nb = bins - 1;
      v2df acc = {0.0, 0.0};
      std::uint32_t cacc = 0;
      std::size_t b = 0;
      // Pairwise-reassociated running sum: the serial dependence advances
      // once per bin pair, halving the add-latency chain that bounds this
      // loop. Deterministic — the association is fixed — and integer
      // count prefixes are exact under any association.
      for (; b + 2 <= nb; b += 2) {
        const v2df c0 = *reinterpret_cast<const v2df*>(h + b * kHistStride);
        const v2df c1 = *reinterpret_cast<const v2df*>(h + (b + 1) * kHistStride);
        *reinterpret_cast<v2df*>(pref + b * kHistStride) = acc + c0;
        acc += c0 + c1;
        *reinterpret_cast<v2df*>(pref + (b + 1) * kHistStride) = acc;
        cpref[b] = cacc + hc[b];
        cacc += hc[b] + hc[b + 1];
        cpref[b + 1] = cacc;
      }
      for (; b < nb; ++b) {
        acc += *reinterpret_cast<const v2df*>(h + b * kHistStride);
        *reinterpret_cast<v2df*>(pref + b * kHistStride) = acc;
        cacc += hc[b];
        cpref[b] = cacc;
      }
      eval_split_gains_dense(pref, cpref, hc, nb, totals.wt, totals.wy,
                             static_cast<std::uint32_t>(count), min_leaf_u, parent_score,
                             gain);
      for (std::size_t b = 0; b < nb; ++b) {
        if (gain[b] > best_gain) {
          best_gain = gain[b];
          best = b;
        }
      }
    } else {
      // Sparse Phase A: nodes with fewer rows than bins find their
      // nonempty bins from their own rows with a 256-bit mask instead of
      // probing every histogram cell, then compact ascending prefix sums
      // over just those bins. An empty bin leaves every prefix unchanged,
      // so skipping it is exact — and on the subtraction path this also
      // keeps its residue cell out of the sums.
      double lwt[kMaxStoreBins], lwy[kMaxStoreBins], ln[kMaxStoreBins];
      std::uint8_t bin_id[kMaxStoreBins];
      std::size_t nb = 0;
      double awt = 0.0, awy = 0.0;
      std::uint32_t an = 0;
      std::uint64_t mask[4] = {0, 0, 0, 0};
      const std::uint8_t* col = ctx.store.column(f).data();
      for (std::size_t k = begin; k < end; ++k) {
        const unsigned b = col[ctx.order[k]];
        mask[b >> 6] |= std::uint64_t{1} << (b & 63u);
      }
      for (unsigned w = 0; w < 4; ++w) {
        std::uint64_t m = mask[w];
        while (m) {
          const std::size_t b =
              (std::size_t{w} << 6) + static_cast<std::size_t>(std::countr_zero(m));
          m &= m - 1;
          if (b + 1 >= bins) continue;  // codes never exceed bins - 1
          const double* cell = h + b * kHistStride;
          awt += cell[0];
          awy += cell[1];
          an += hc[b];
          lwt[nb] = awt;
          lwy[nb] = awy;
          ln[nb] = static_cast<double>(an);
          bin_id[nb] = static_cast<std::uint8_t>(b);
          ++nb;
        }
      }
      if (nb == 0) return;
      eval_split_gains(lwt, lwy, ln, nb, totals.wt, totals.wy, static_cast<double>(count),
                       min_leaf, parent_score, gain);
      for (std::size_t i = 0; i < nb; ++i) {
        if (gain[i] > best_gain) {
          best_gain = gain[i];
          best = bin_id[i];
        }
      }
    }
    if (best != kMaxStoreBins) {
      ctx.cand_gain[c] = best_gain;
      ctx.cand_bin[c] = best;
    }
  };
  // Candidates touch disjoint histogram regions and disjoint cand_*
  // slots, so the fan-out is race-free; the reduction below walks the
  // slots in candidate order, making the result thread-count invariant.
  if (features.size() > 1 && count * features.size() >= kMinParallelWork) {
    ThreadPool::global().parallel_for(features.size(), scan_candidate);
  } else {
    for (std::size_t c = 0; c < features.size(); ++c) scan_candidate(c);
  }

  // Strict improvement in candidate order reproduces the sequential
  // earliest-feature / earliest-bin tie-breaking exactly.
  double best_gain = 1e-12;
  int best_feature = -1;
  std::size_t best_bin = 0;
  for (std::size_t c = 0; c < features.size(); ++c) {
    if (ctx.cand_gain[c] > best_gain) {
      best_gain = ctx.cand_gain[c];
      best_feature = static_cast<int>(features[c]);
      best_bin = ctx.cand_bin[c];
    }
  }
  if (best_feature < 0) return make_leaf();

  // Stable partition: flag rows, then compact order and every stat array
  // left-before-right, preserving index order within each side. Left
  // child totals accumulate in that same fixed order; the right child's
  // follow by subtraction from the parent's.
  const std::uint8_t* split_col =
      ctx.store.column(static_cast<std::size_t>(best_feature)).data();
  NodeTotals left_totals;
  for (std::size_t k = begin; k < end; ++k) {
    const bool left = split_col[ctx.order[k]] <= best_bin;
    ctx.goes_left[k] = left ? 1 : 0;
    if (left) {
      const double* s = ctx.stats.data() + k * kHistStride;
      left_totals.wt += s[0];
      left_totals.wy += s[1];
      left_totals.wyy += ctx.wyy[k];
      if (ctx.has_hessians) left_totals.wh += ctx.swh[k];
      ++left_totals.count;
    }
  }
  if (left_totals.count == 0 || left_totals.count == count) return make_leaf();

  auto compact = [&](auto& arr, auto& tmp) {
    std::size_t l = begin;
    std::size_t r = 0;
    for (std::size_t k = begin; k < end; ++k) {
      if (ctx.goes_left[k]) {
        arr[l++] = arr[k];
      } else {
        tmp[r++] = arr[k];
      }
    }
    std::copy(tmp.begin(), tmp.begin() + static_cast<std::ptrdiff_t>(r),
              arr.begin() + static_cast<std::ptrdiff_t>(l));
  };
  compact(ctx.order, ctx.order_tmp);
  compact(ctx.wyy, ctx.stat_tmp);
  if (ctx.has_hessians) compact(ctx.swh, ctx.stat_tmp);
  {
    // Same stable compaction over the interleaved stats, two doubles at
    // a time.
    double* s = ctx.stats.data();
    double* tmp = ctx.stat_tmp.data();
    std::size_t l = begin;
    std::size_t r = 0;
    for (std::size_t k = begin; k < end; ++k) {
      if (ctx.goes_left[k]) {
        std::copy_n(s + k * kHistStride, kHistStride, s + (l++) * kHistStride);
      } else {
        std::copy_n(s + k * kHistStride, kHistStride, tmp + (r++) * kHistStride);
      }
    }
    std::copy_n(tmp, r * kHistStride, s + l * kHistStride);
  }

  NodeTotals right_totals;
  right_totals.wt = totals.wt - left_totals.wt;
  right_totals.wy = totals.wy - left_totals.wy;
  right_totals.wyy = totals.wyy - left_totals.wyy;
  right_totals.wh = totals.wh - left_totals.wh;
  right_totals.count = count - left_totals.count;
  const std::size_t mid = begin + left_totals.count;
  node.feature = best_feature;
  node.threshold = ctx.store.upper_boundary(static_cast<std::size_t>(best_feature), best_bin);
  nodes_.push_back(node);
  ctx.split_bin.push_back(static_cast<std::uint8_t>(best_bin));
  const auto self = static_cast<int>(nodes_.size()) - 1;

  auto child_can_split = [&](std::size_t child_depth, const NodeTotals& t) {
    if (child_depth >= config_.max_depth || t.count < config_.min_samples_split) return false;
    const double sse = t.wyy - (t.wt > 0.0 ? t.wy * t.wy / t.wt : 0.0);
    return sse > 1e-12;
  };
  const bool need_left = child_can_split(depth + 1, left_totals);
  const bool need_right = child_can_split(depth + 1, right_totals);

  TreeHist left_hist, right_hist;
  if (ctx.subtract && (need_left || need_right)) {
    // Parent-minus-smaller-child: scan only the smaller child's rows and
    // derive the larger child's histogram by subtracting in place in the
    // parent's buffer.
    const bool left_is_small = left_totals.count <= right_totals.count;
    const std::size_t sb = left_is_small ? begin : mid;
    const std::size_t se = left_is_small ? mid : end;
    TreeHist small = ctx.acquire_hist();
    {
      build_hists(ctx.store, small, ctx.all_features, ctx.order.data(), ctx.stats.data(), sb, se);
    }

    const bool need_small = left_is_small ? need_left : need_right;
    const bool need_large = left_is_small ? need_right : need_left;
    if (need_large) {
      for (std::size_t f = 0; f < d; ++f) {
        const std::size_t bins = ctx.store.bins(f);
        if (bins < 2) continue;
        subtract_hist(hist.cells.data() + f * max_bins * kHistStride,
                      small.cells.data() + f * max_bins * kHistStride, bins * kHistStride);
        subtract_cnt(hist.cnt.data() + f * max_bins, small.cnt.data() + f * max_bins, bins);
      }
      (left_is_small ? right_hist : left_hist) = std::move(hist);
    } else {
      ctx.release_hist(std::move(hist));
    }
    if (need_small) {
      (left_is_small ? left_hist : right_hist) = std::move(small);
    } else {
      ctx.release_hist(std::move(small));
    }
  } else {
    // Sampling mode children draw fresh candidate features and build
    // their own histograms over them.
    ctx.release_hist(std::move(hist));
  }

  const int left = build_store(ctx, begin, mid, depth + 1, left_totals, std::move(left_hist), rng);
  const int right = build_store(ctx, mid, end, depth + 1, right_totals, std::move(right_hist), rng);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

double RegressionTree::predict(std::span<const double> x) const {
  AQUA_REQUIRE(fitted(), "predict on unfitted tree");
  std::size_t current = 0;
  for (;;) {
    const Node& node = nodes_[current];
    if (node.feature < 0) return node.value;
    const double v = x[static_cast<std::size_t>(node.feature)];
    current = static_cast<std::size_t>(v <= node.threshold ? node.left : node.right);
  }
}

std::size_t RegressionTree::depth() const noexcept {
  // Iterative depth computation over the implicit tree.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 1}};
  std::size_t max_depth = 0;
  while (!stack.empty()) {
    const auto [idx, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& node = nodes_[idx];
    if (node.feature >= 0) {
      stack.push_back({static_cast<std::size_t>(node.left), d + 1});
      stack.push_back({static_cast<std::size_t>(node.right), d + 1});
    }
  }
  return max_depth;
}

void RegressionTree::save(io::BinaryWriter& writer) const {
  writer.write_u64(config_.max_depth);
  writer.write_u64(config_.min_samples_split);
  writer.write_u64(config_.min_samples_leaf);
  writer.write_u64(config_.max_features);
  writer.write_u64(config_.seed);
  writer.write_u64(nodes_.size());
  for (const Node& node : nodes_) {
    writer.write_i32(node.feature);
    writer.write_f64(node.threshold);
    writer.write_f64(node.value);
    writer.write_i32(node.left);
    writer.write_i32(node.right);
  }
}

void RegressionTree::load(io::BinaryReader& reader) {
  config_.max_depth = reader.read_u64();
  config_.min_samples_split = reader.read_u64();
  config_.min_samples_leaf = reader.read_u64();
  config_.max_features = reader.read_u64();
  config_.seed = reader.read_u64();
  const std::uint64_t count = reader.read_u64();
  if (count > (std::uint64_t{1} << 32)) throw io::SerializationError("malformed tree node count");
  nodes_.clear();
  nodes_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Node node;
    node.feature = reader.read_i32();
    node.threshold = reader.read_f64();
    node.value = reader.read_f64();
    node.left = reader.read_i32();
    node.right = reader.read_i32();
    // Child indices must stay inside the node array so a corrupt tree can
    // never send predict() out of bounds.
    if (node.feature >= 0) {
      const auto n = static_cast<std::int64_t>(count);
      if (node.left < 0 || node.right < 0 || node.left >= n || node.right >= n) {
        throw io::SerializationError("malformed tree: child index out of range");
      }
    }
    nodes_.push_back(node);
  }
}

}  // namespace aqua::ml
