// The plug-and-play classifier abstraction. AquaSCALE's analytics engine
// "enables the selection/integration of statistical techniques" — any
// BinaryClassifier can be slotted into the per-node profile model, and the
// implementations mirror the paper's lineup: LinearR, LogisticR, GB, RF,
// SVM and the proposed HybridRSL stack.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace aqua::io {
class BinaryWriter;
class BinaryReader;
}  // namespace aqua::io

namespace aqua::ml {

/// A probabilistic binary classifier (scikit-learn's fit / predict /
/// predict_proba contract, which Algorithms 1-2 are written against).
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// Trains on (X, y). Implementations must tolerate single-class targets
  /// (a node that never leaks in the training set) by degenerating to the
  /// constant predictor.
  virtual void fit(const Matrix& x, const Labels& y) = 0;

  /// P(y = 1 | x) in [0, 1]. Must only be called after fit().
  virtual double predict_proba(std::span<const double> x) const = 0;

  /// Hard decision: S-membership per the paper is p(1) > p(0).
  bool predict(std::span<const double> x) const { return predict_proba(x) > 0.5; }

  /// A fresh, untrained classifier with the same hyper-parameters (used to
  /// instantiate one copy per node label).
  virtual std::unique_ptr<BinaryClassifier> clone_config() const = 0;

  virtual std::string name() const = 0;

  /// Serializes hyper-parameters and all fitted state; a load_state() of
  /// the written bytes must reproduce bit-identical predict_proba output.
  /// Framing (classifier kind tag) is handled by ml/model_io.hpp.
  virtual void save_state(io::BinaryWriter& writer) const = 0;

  /// Restores state written by save_state(); throws io::SerializationError
  /// on malformed input.
  virtual void load_state(io::BinaryReader& reader) = 0;
};

/// Balanced per-class sample weights: w_pos * n_pos == w_neg * n_neg, mean
/// weight 1. Leak labels are heavily imbalanced (a given node leaks in only
/// a few percent of scenarios), so every classifier trains with these.
std::pair<double, double> balanced_class_weights(const Labels& y);  // {w_neg, w_pos}

/// Fraction of positive labels.
double positive_rate(const Labels& y);

}  // namespace aqua::ml
