// The plug-and-play classifier abstraction. AquaSCALE's analytics engine
// "enables the selection/integration of statistical techniques" — any
// BinaryClassifier can be slotted into the per-node profile model, and the
// implementations mirror the paper's lineup: LinearR, LogisticR, GB, RF,
// SVM and the proposed HybridRSL stack.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace aqua::io {
class BinaryWriter;
class BinaryReader;
}  // namespace aqua::io

namespace aqua::ml {

class BinnedDataset;
class CompiledForest;

/// Reusable per-worker scratch for batched prediction. Holding the
/// buffers outside the classifiers keeps every const prediction path
/// allocation-free after warm-up and trivially reentrant: concurrent
/// callers each bring their own workspace.
struct PredictWorkspace {
  std::vector<double> mapped;    // shared input-map output (map_input)
  std::vector<double> scratch;   // intermediate transform buffer
  std::vector<double> scratch2;  // second intermediate (SVM map pipeline)
};

/// A probabilistic binary classifier (scikit-learn's fit / predict /
/// predict_proba contract, which Algorithms 1-2 are written against).
///
/// Thread-safety contract (audited per implementation, enforced by
/// tests/test_concurrency.cpp under -DAQUA_TSAN): every const member —
/// predict_proba, predict, map_input, predict_proba_mapped, save_state —
/// must be reentrant. Concretely: no mutable members, no lazily
/// materialized caches, no static or global state, and no RNG use at
/// prediction time (all randomness — SGD shuffling, bootstrap draws,
/// random Fourier features — is consumed during fit() and frozen into
/// plain data members). A fitted classifier may therefore be shared by
/// any number of concurrent predictors without synchronization; fit() and
/// load_state() are the only mutators and require exclusive access.
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// Trains on (X, y). Implementations must tolerate single-class targets
  /// (a node that never leaks in the training set) by degenerating to the
  /// constant predictor.
  virtual void fit(const Matrix& x, const Labels& y) = 0;

  /// P(y = 1 | x) in [0, 1]. Must only be called after fit().
  virtual double predict_proba(std::span<const double> x) const = 0;

  /// Hard decision: S-membership per the paper is p(1) > p(0).
  bool predict(std::span<const double> x) const { return predict_proba(x) > 0.5; }

  // --- Shared-input-map protocol (batched prediction) -----------------
  //
  // MultiLabelModel trains one classifier per label, all cloned from one
  // configuration and fitted on the *same* feature matrix. Deterministic
  // fits therefore produce bitwise-identical input transformations across
  // labels (feature scalers, random-Fourier maps), and the per-snapshot
  // prediction loop recomputes that identical map once per label. The
  // protocol below lets a batch predictor hoist the map: one designated
  // "owner" computes map_input(x) per snapshot, and every label's head
  // runs predict_proba_mapped() on the shared buffer. Sharing only
  // activates when accepts_input_map() verifies bitwise equality of the
  // transform state, so the fast path is bit-identical to predict_proba
  // by construction — it merely avoids recomputing equal subexpressions.

  /// True when map_input() is the identity (the head consumes raw x).
  virtual bool input_map_is_identity() const { return true; }

  /// True when this classifier's predict_proba_mapped() is exact on the
  /// map produced by `owner`'s map_input(). The default accepts identity
  /// maps only; transforming classifiers override with a bitwise state
  /// comparison, and degenerate constant models accept any owner (they
  /// ignore the mapped features entirely).
  virtual bool accepts_input_map(const BinaryClassifier& owner) const {
    return owner.input_map_is_identity();
  }

  /// Writes this classifier's input map of x into ws.mapped (identity by
  /// default). Must not allocate once ws buffers are warm.
  virtual void map_input(std::span<const double> x, PredictWorkspace& ws) const {
    ws.mapped.assign(x.begin(), x.end());
  }

  /// predict_proba() given a map produced by an accepted owner. Bitwise
  /// equal to predict_proba(x) when accepts_input_map(owner) holds.
  virtual double predict_proba_mapped(std::span<const double> mapped) const {
    return predict_proba(mapped);
  }

  // --- Blocked tile protocol (compiled forest kernels) ----------------
  //
  // The batched predictors advance a small tile of snapshots through one
  // classifier at a time, so tree-backed classifiers can run their
  // compiled SoA traversal kernel (ml/compiled_forest.hpp) with node
  // loads amortized across the tile. The default is the per-row loop, so
  // classifier kinds without trees are a transparent fallback.

  /// Rows per tile handed down by the batched predictors. Matches
  /// CompiledForest::kTileRows (static_assert'd in compiled_forest.cpp).
  static constexpr std::size_t kPredictTileRows = 8;

  /// Tile variant of predict_proba_mapped: rows[0..count) point at mapped
  /// inputs of identical layout and length `dim`; writes P(y=1 | rows[i])
  /// to out[i * stride]. Every output is bitwise equal to the per-row
  /// predict_proba_mapped. Batched callers never pass count >
  /// kPredictTileRows, but overrides must handle any count.
  virtual void predict_proba_mapped_tile(const double* const* rows, std::size_t count,
                                         std::size_t dim, double* out,
                                         std::size_t stride) const {
    for (std::size_t i = 0; i < count; ++i) {
      out[i * stride] = predict_proba_mapped(std::span<const double>(rows[i], dim));
    }
  }

  /// The compiled SoA ensemble backing this classifier's tile path, or
  /// nullptr for classifier kinds without trees (or whose ensemble is
  /// unfitted / degenerate / uncompilable).
  virtual const CompiledForest* compiled_forest() const { return nullptr; }

  // --- Shared-store fit protocol (batched training) -------------------
  //
  // The training-side twin of the input-map protocol above. Tree
  // ensembles spend their fit start-up quantile-binning the feature
  // matrix, and MultiLabelModel fits hundreds of labels on the *same*
  // matrix — so the binned store can be computed once and shared
  // read-only across every label (BinnedDataset is immutable after fit
  // and safe for concurrent readers). A classifier opts in by reporting
  // a nonzero fit_store_bins(); when every label's classifier agrees on
  // the same bin budget, MultiLabelModel builds one store and calls
  // fit_with_store(), which must be bit-identical to fit() on the same
  // matrix. Non-tree classifiers keep the defaults and train unchanged.

  /// Bin budget of the BinnedDataset this classifier trains through, or
  /// 0 when it does not consume a binned store.
  virtual std::size_t fit_store_bins() const { return 0; }

  /// fit() through a shared store previously fitted on exactly `x` with
  /// fit_store_bins() bins. Bit-identical to fit(x, y). The default
  /// ignores the store and trains normally.
  virtual void fit_with_store(const Matrix& x, const Labels& y, const BinnedDataset& store) {
    (void)store;
    fit(x, y);
  }

  /// A fresh, untrained classifier with the same hyper-parameters (used to
  /// instantiate one copy per node label).
  virtual std::unique_ptr<BinaryClassifier> clone_config() const = 0;

  virtual std::string name() const = 0;

  /// Serializes hyper-parameters and all fitted state; a load_state() of
  /// the written bytes must reproduce bit-identical predict_proba output.
  /// Framing (classifier kind tag) is handled by ml/model_io.hpp.
  virtual void save_state(io::BinaryWriter& writer) const = 0;

  /// Restores state written by save_state(); throws io::SerializationError
  /// on malformed input.
  virtual void load_state(io::BinaryReader& reader) = 0;
};

/// Balanced per-class sample weights: w_pos * n_pos == w_neg * n_neg, mean
/// weight 1. Leak labels are heavily imbalanced (a given node leaks in only
/// a few percent of scenarios), so every classifier trains with these.
std::pair<double, double> balanced_class_weights(const Labels& y);  // {w_neg, w_pos}

/// Fraction of positive labels.
double positive_rate(const Labels& y);

}  // namespace aqua::ml
