#include "ml/hybrid_rsl.hpp"

#include "common/error.hpp"

namespace aqua::ml {

HybridRslClassifier::HybridRslClassifier(HybridRslConfig config)
    : config_(config), forest_(config.forest), svm_(config.svm), meta_(config.meta) {}

void HybridRslClassifier::fit(const Matrix& x, const Labels& y) {
  AQUA_REQUIRE(x.rows() == y.size(), "feature/label row mismatch");

  const double pos_rate = positive_rate(y);
  if (pos_rate == 0.0 || pos_rate == 1.0) {
    constant_ = true;
    constant_probability_ = pos_rate;
    return;
  }
  constant_ = false;

  forest_.fit(x, y);
  svm_.fit(x, y);

  // Stack the base learners' probabilities as the meta feature set.
  Matrix meta_features(x.rows(), 2);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    meta_features(i, 0) = forest_.predict_proba(x.row(i));
    meta_features(i, 1) = svm_.predict_proba(x.row(i));
  }
  meta_.fit(meta_features, y);
}

double HybridRslClassifier::predict_proba(std::span<const double> x) const {
  if (constant_) return constant_probability_;
  const double meta_input[2] = {forest_.predict_proba(x), svm_.predict_proba(x)};
  return meta_.predict_proba(std::span<const double>(meta_input, 2));
}

std::unique_ptr<BinaryClassifier> HybridRslClassifier::clone_config() const {
  return std::make_unique<HybridRslClassifier>(config_);
}

}  // namespace aqua::ml
