#include "ml/hybrid_rsl.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "io/binary.hpp"

namespace aqua::ml {

HybridRslClassifier::HybridRslClassifier(HybridRslConfig config)
    : config_(config), forest_(config.forest), svm_(config.svm), meta_(config.meta) {}

void HybridRslClassifier::fit(const Matrix& x, const Labels& y) {
  fit_impl(x, y, nullptr);
}

void HybridRslClassifier::fit_with_store(const Matrix& x, const Labels& y,
                                         const BinnedDataset& store) {
  fit_impl(x, y, &store);
}

void HybridRslClassifier::fit_impl(const Matrix& x, const Labels& y, const BinnedDataset* store) {
  AQUA_REQUIRE(x.rows() == y.size(), "feature/label row mismatch");

  const double pos_rate = positive_rate(y);
  if (pos_rate == 0.0 || pos_rate == 1.0) {
    constant_ = true;
    constant_probability_ = pos_rate;
    return;
  }
  constant_ = false;

  if (store != nullptr) {
    forest_.fit_with_store(x, y, *store);
  } else {
    forest_.fit(x, y);
  }
  svm_.fit(x, y);

  // Stack the base learners' probabilities as the meta feature set.
  Matrix meta_features(x.rows(), 2);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    meta_features(i, 0) = forest_.predict_proba(x.row(i));
    meta_features(i, 1) = svm_.predict_proba(x.row(i));
  }
  meta_.fit(meta_features, y);
}

double HybridRslClassifier::predict_proba(std::span<const double> x) const {
  if (constant_) return constant_probability_;
  const double meta_input[2] = {forest_.predict_proba(x), svm_.predict_proba(x)};
  return meta_.predict_proba(std::span<const double>(meta_input, 2));
}

bool HybridRslClassifier::accepts_input_map(const BinaryClassifier& owner) const {
  if (constant_) return true;
  const auto* peer = dynamic_cast<const HybridRslClassifier*>(&owner);
  // A non-constant hybrid's inner svm is non-constant too (both degenerate
  // on exactly the single-class condition of the same targets), so the
  // delegated check compares fitted transform state.
  return peer != nullptr && !peer->constant_ && svm_.accepts_input_map(peer->svm_);
}

void HybridRslClassifier::map_input(std::span<const double> x, PredictWorkspace& ws) const {
  if (constant_) {
    ws.mapped.assign(x.begin(), x.end());
    return;
  }
  svm_.map_input(x, ws);     // ws.mapped = inner SVM map
  ws.scratch.swap(ws.mapped);  // scratch and scratch2 are free again here
  ws.mapped.resize(x.size() + ws.scratch.size());
  std::copy(x.begin(), x.end(), ws.mapped.begin());
  std::copy(ws.scratch.begin(), ws.scratch.end(), ws.mapped.begin() + x.size());
}

double HybridRslClassifier::predict_proba_mapped(std::span<const double> mapped) const {
  if (constant_) return constant_probability_;
  const std::size_t svm_dim =
      config_.svm.rff_dimension > 0 ? config_.svm.rff_dimension : mapped.size() / 2;
  AQUA_REQUIRE(mapped.size() > svm_dim, "hybrid shared map too small");
  const std::size_t d = mapped.size() - svm_dim;
  const double meta_input[2] = {forest_.predict_proba(mapped.first(d)),
                                svm_.predict_proba_mapped(mapped.subspan(d))};
  return meta_.predict_proba(std::span<const double>(meta_input, 2));
}

void HybridRslClassifier::predict_proba_mapped_tile(const double* const* rows, std::size_t count,
                                                    std::size_t dim, double* out,
                                                    std::size_t stride) const {
  if (constant_) {
    for (std::size_t i = 0; i < count; ++i) out[i * stride] = constant_probability_;
    return;
  }
  const std::size_t svm_dim =
      config_.svm.rff_dimension > 0 ? config_.svm.rff_dimension : dim / 2;
  AQUA_REQUIRE(dim > svm_dim, "hybrid shared map too small");
  const std::size_t d = dim - svm_dim;
  double forest_p[kPredictTileRows];
  for (std::size_t begin = 0; begin < count; begin += kPredictTileRows) {
    const std::size_t n = std::min(kPredictTileRows, count - begin);
    // The forest sees only the raw-feature prefix of each mapped row; the
    // inner RF's tile kernel is bit-identical to its pointer walk.
    forest_.predict_proba_mapped_tile(rows + begin, n, d, forest_p, 1);
    for (std::size_t i = 0; i < n; ++i) {
      const double meta_input[2] = {
          forest_p[i],
          svm_.predict_proba_mapped(std::span<const double>(rows[begin + i] + d, svm_dim))};
      out[(begin + i) * stride] = meta_.predict_proba(std::span<const double>(meta_input, 2));
    }
  }
}

std::unique_ptr<BinaryClassifier> HybridRslClassifier::clone_config() const {
  return std::make_unique<HybridRslClassifier>(config_);
}

void HybridRslClassifier::save_state(io::BinaryWriter& writer) const {
  writer.write_u64(config_.forest.num_trees);
  writer.write_u64(config_.forest.max_depth);
  writer.write_u64(config_.forest.min_samples_leaf);
  writer.write_u64(config_.forest.max_features);
  writer.write_f64(config_.forest.max_features_fraction);
  writer.write_u64(config_.forest.seed);
  writer.write_u64(config_.forest.max_bins);
  writer.write_bool(config_.forest.exact_splits);
  write_sgd_config(writer, config_.svm.sgd);
  writer.write_u64(config_.svm.rff_dimension);
  writer.write_f64(config_.svm.rff_gamma);
  writer.write_u64(config_.svm.seed);
  write_sgd_config(writer, config_.meta);
  writer.write_bool(constant_);
  writer.write_f64(constant_probability_);
  // The stacked members persist their own hyper-parameters alongside their
  // fitted state. A constant model never fit them, so their state would be
  // the unfitted default (which the members' own load-time validation
  // rejects); prediction never consults them either, so skip them.
  if (!constant_) {
    forest_.save_state(writer);
    svm_.save_state(writer);
    meta_.save_state(writer);
  }
}

void HybridRslClassifier::load_state(io::BinaryReader& reader) {
  config_.forest.num_trees = reader.read_u64();
  config_.forest.max_depth = reader.read_u64();
  config_.forest.min_samples_leaf = reader.read_u64();
  config_.forest.max_features = reader.read_u64();
  config_.forest.max_features_fraction = reader.read_f64();
  config_.forest.seed = reader.read_u64();
  config_.forest.max_bins = reader.read_u64();
  config_.forest.exact_splits = reader.read_bool();
  config_.svm.sgd = read_sgd_config(reader);
  config_.svm.rff_dimension = reader.read_u64();
  config_.svm.rff_gamma = reader.read_f64();
  config_.svm.seed = reader.read_u64();
  config_.meta = read_sgd_config(reader);
  constant_ = reader.read_bool();
  constant_probability_ = reader.read_f64();
  if (!constant_) {
    forest_.load_state(reader);
    svm_.load_state(reader);
    meta_.load_state(reader);
  }
}

}  // namespace aqua::ml
