// Multi-label datasets for the profile model. Each sample is one simulated
// failure scenario: features are the Δ-readings of the sensor set (plus
// optional static topology descriptors T), labels are the per-junction
// leak indicators y_v ∈ {0, 1} (Sec. III-B). The multi-output problem is
// decomposed into one binary problem per label ("multiple binary
// classifications where a binary classifier is trained for each node
// independently").
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "linalg/dense.hpp"

namespace aqua::io {
class BinaryWriter;
class BinaryReader;
}  // namespace aqua::io

namespace aqua::ml {

using linalg::Matrix;
using Labels = std::vector<std::uint8_t>;

struct MultiLabelDataset {
  Matrix features;                  // samples x feature-dim
  std::vector<Labels> labels;       // samples x label-dim
  std::vector<std::string> feature_names;  // optional, size feature-dim or empty

  std::size_t num_samples() const noexcept { return features.rows(); }
  std::size_t num_features() const noexcept { return features.cols(); }
  std::size_t num_labels() const noexcept { return labels.empty() ? 0 : labels.front().size(); }

  /// Column of label matrix for one node.
  Labels label_column(std::size_t label_index) const;

  /// Appends another dataset's samples (schemas must match).
  void append(const MultiLabelDataset& other);

  /// Validates internal consistency; throws InvalidArgument on violation.
  void check() const;
};

/// Deterministic shuffled split into train/test (test_fraction in (0,1)).
std::pair<MultiLabelDataset, MultiLabelDataset> train_test_split(const MultiLabelDataset& data,
                                                                 double test_fraction,
                                                                 std::uint64_t seed = 7);

/// Column-wise standardization fitted on a training matrix and applied to
/// any matrix/vector with the same schema. Constant columns map to 0.
class StandardScaler {
 public:
  void fit(const Matrix& x);
  Matrix transform(const Matrix& x) const;
  std::vector<double> transform_row(std::span<const double> row) const;
  /// Allocation-free variant; `out` is resized to the schema width.
  void transform_row_into(std::span<const double> row, std::vector<double>& out) const;
  bool fitted() const noexcept { return !mean_.empty(); }

  /// Fitted state accessors (shared-input-map equality checks).
  const std::vector<double>& mean() const noexcept { return mean_; }
  const std::vector<double>& inv_std() const noexcept { return inv_std_; }
  /// Bitwise equality of the fitted state — two identical() scalers
  /// produce bit-identical transform output for the same input.
  bool identical(const StandardScaler& other) const noexcept {
    return mean_ == other.mean_ && inv_std_ == other.inv_std_;
  }

  void save(io::BinaryWriter& writer) const;
  void load(io::BinaryReader& reader);

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

}  // namespace aqua::ml
