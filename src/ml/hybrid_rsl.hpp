// HybridRSL — the paper's proposed technique (Sec. IV-A, Fig. 4): "a
// combination of RF and SVM via LogisticR ... the same dataset is trained
// and predicted by RF and SVM separately, and their predicted results,
// i.e. leak probabilities for each node, are then aggregated as a new
// feature set and input into LogisticR for further learning."
#pragma once

#include "ml/classifier.hpp"
#include "ml/linear_models.hpp"
#include "ml/random_forest.hpp"
#include "ml/svm.hpp"

namespace aqua::ml {

struct HybridRslConfig {
  RandomForestConfig forest;
  SvmConfig svm;
  SgdConfig meta{.epochs = 60, .batch_size = 64, .learning_rate = 0.05, .l2 = 1e-4, .seed = 43};
};

class HybridRslClassifier final : public BinaryClassifier {
 public:
  explicit HybridRslClassifier(HybridRslConfig config = {});

  void fit(const Matrix& x, const Labels& y) override;
  double predict_proba(std::span<const double> x) const override;
  /// Shared-input-map protocol: the map is [x | svm-map(x)] — raw
  /// features for the forest branch, the inner SVM's full feature
  /// pipeline (shared across labels, see SvmClassifier) for the SVM
  /// branch. Heads run the per-label trees, linear SVM weights and meta
  /// logistic on the shared buffer.
  bool input_map_is_identity() const override { return false; }
  bool accepts_input_map(const BinaryClassifier& owner) const override;
  void map_input(std::span<const double> x, PredictWorkspace& ws) const override;
  double predict_proba_mapped(std::span<const double> mapped) const override;
  /// Tile path: the forest branch runs the inner RF's compiled SoA kernel
  /// over the whole tile; the SVM and meta heads stay per-row.
  void predict_proba_mapped_tile(const double* const* rows, std::size_t count, std::size_t dim,
                                 double* out, std::size_t stride) const override;
  const CompiledForest* compiled_forest() const override {
    return constant_ ? nullptr : forest_.compiled_forest();
  }
  /// Shared-store fit protocol: the store feeds the forest branch (the
  /// SVM and meta stages are not tree-based and train unchanged).
  std::size_t fit_store_bins() const override { return forest_.fit_store_bins(); }
  void fit_with_store(const Matrix& x, const Labels& y, const BinnedDataset& store) override;
  std::unique_ptr<BinaryClassifier> clone_config() const override;
  std::string name() const override { return "HybridRSL"; }
  void save_state(io::BinaryWriter& writer) const override;
  void load_state(io::BinaryReader& reader) override;

  const RandomForestClassifier& forest() const noexcept { return forest_; }
  const SvmClassifier& svm() const noexcept { return svm_; }

 private:
  void fit_impl(const Matrix& x, const Labels& y, const BinnedDataset* store);

  HybridRslConfig config_;
  RandomForestClassifier forest_;
  SvmClassifier svm_;
  LogisticRegressionClassifier meta_;
  bool constant_ = false;
  double constant_probability_ = 0.0;
};

}  // namespace aqua::ml
