#include "ml/multilabel.hpp"

#include <array>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "ml/binning.hpp"
#include "ml/model_io.hpp"

namespace aqua::ml {

MultiLabelModel::MultiLabelModel(ClassifierFactory factory) : factory_(std::move(factory)) {
  AQUA_REQUIRE(static_cast<bool>(factory_), "classifier factory must be callable");
}

void MultiLabelModel::fit(const MultiLabelDataset& data, bool parallel, bool shared_store) {
  AQUA_REQUIRE(static_cast<bool>(factory_), "fit() requires a classifier factory");
  data.check();
  AQUA_REQUIRE(data.num_samples() > 0, "empty training set");
  const std::size_t labels = data.num_labels();
  AQUA_REQUIRE(labels > 0, "dataset has no labels");

  classifiers_.clear();
  classifiers_.resize(labels);
  for (auto& c : classifiers_) c = factory_();

  // Shared-store fit protocol: bin the feature matrix once when every
  // label's classifier agrees on one nonzero bin budget. The store is
  // immutable after fit, so concurrent per-label fits read it freely.
  BinnedDataset store;
  if (shared_store) {
    const std::size_t bins = classifiers_.front()->fit_store_bins();
    bool all_agree = bins > 0;
    for (const auto& c : classifiers_) all_agree = all_agree && c->fit_store_bins() == bins;
    if (all_agree) store.fit(data.features, bins);
  }

  auto train_one = [&](std::size_t v) {
    const Labels column = data.label_column(v);
    if (store.fitted()) {
      classifiers_[v]->fit_with_store(data.features, column, store);
    } else {
      classifiers_[v]->fit(data.features, column);
    }
  };
  if (parallel) {
    ThreadPool::global().parallel_for(labels, train_one);
  } else {
    for (std::size_t v = 0; v < labels; ++v) train_one(v);
  }
  detect_shared_input_map();
}

void MultiLabelModel::detect_shared_input_map() {
  shared_map_owner_ = kNoSharedMap;
  for (std::size_t candidate = 0; candidate < classifiers_.size(); ++candidate) {
    bool accepted_by_all = true;
    for (const auto& c : classifiers_) {
      if (!c->accepts_input_map(*classifiers_[candidate])) {
        accepted_by_all = false;
        break;
      }
    }
    if (accepted_by_all) {
      shared_map_owner_ = candidate;
      return;
    }
  }
}

std::vector<double> MultiLabelModel::predict_proba(std::span<const double> x) const {
  AQUA_REQUIRE(fitted(), "predict on unfitted model");
  std::vector<double> probabilities(classifiers_.size());
  for (std::size_t v = 0; v < classifiers_.size(); ++v) {
    probabilities[v] = classifiers_[v]->predict_proba(x);
  }
  return probabilities;
}

Labels MultiLabelModel::predict(std::span<const double> x) const {
  AQUA_REQUIRE(fitted(), "predict on unfitted model");
  Labels labels(classifiers_.size());
  for (std::size_t v = 0; v < classifiers_.size(); ++v) {
    labels[v] = classifiers_[v]->predict(x) ? 1 : 0;
  }
  return labels;
}

std::vector<std::vector<double>> MultiLabelModel::predict_proba_batch(const Matrix& x,
                                                                      bool parallel) const {
  AQUA_REQUIRE(fitted(), "predict on unfitted model");
  std::vector<std::vector<double>> out(x.rows());
  auto run = [&](std::size_t r) { out[r] = predict_proba(x.row(r)); };
  if (parallel) {
    ThreadPool::global().parallel_for(x.rows(), run);
  } else {
    for (std::size_t r = 0; r < x.rows(); ++r) run(r);
  }
  return out;
}

std::vector<Labels> MultiLabelModel::predict_batch(const Matrix& x, bool parallel) const {
  AQUA_REQUIRE(fitted(), "predict on unfitted model");
  std::vector<Labels> out(x.rows());
  auto run = [&](std::size_t r) { out[r] = predict(x.row(r)); };
  if (parallel) {
    ThreadPool::global().parallel_for(x.rows(), run);
  } else {
    for (std::size_t r = 0; r < x.rows(); ++r) run(r);
  }
  return out;
}

void MultiLabelModel::predict_proba_batch_into(const Matrix& x, Matrix& out,
                                               bool parallel) const {
  AQUA_REQUIRE(fitted(), "predict on unfitted model");
  const std::size_t labels = classifiers_.size();
  if (out.rows() != x.rows() || out.cols() != labels) out = Matrix(x.rows(), labels);

  if (shared_map_owner_ != kNoSharedMap) {
    // Hoisted shared map + blocked tile traversal: one map_input per
    // snapshot, then a tile of kPredictTileRows rows advances through one
    // label head at a time, so tree-backed heads amortize every node load
    // across the tile (see BinaryClassifier's tile protocol). Chunked so
    // each task reuses its workspaces across all its tiles.
    constexpr std::size_t kTile = BinaryClassifier::kPredictTileRows;
    const BinaryClassifier& owner = *classifiers_[shared_map_owner_];
    auto& pool = ThreadPool::global();
    const std::size_t chunks =
        parallel ? std::max<std::size_t>(1, std::min(pool.size(), x.rows())) : 1;
    const std::size_t per_chunk = (x.rows() + chunks - 1) / std::max<std::size_t>(chunks, 1);
    auto run_chunk = [&](std::size_t chunk) {
      std::array<PredictWorkspace, kTile> ws;
      std::array<const double*, kTile> rows{};
      const std::size_t begin = chunk * per_chunk;
      const std::size_t end = std::min(begin + per_chunk, x.rows());
      for (std::size_t tile = begin; tile < end; tile += kTile) {
        const std::size_t n = std::min(kTile, end - tile);
        for (std::size_t i = 0; i < n; ++i) {
          owner.map_input(x.row(tile + i), ws[i]);
          rows[i] = ws[i].mapped.data();
        }
        const std::size_t dim = ws[0].mapped.size();
        double* dst = &out(tile, 0);
        for (std::size_t v = 0; v < labels; ++v) {
          classifiers_[v]->predict_proba_mapped_tile(rows.data(), n, dim, dst + v, labels);
        }
      }
    };
    if (chunks > 1) {
      pool.parallel_for(chunks, run_chunk);
    } else {
      run_chunk(0);
    }
    return;
  }

  // No shared map: label-major sweep so each classifier's fitted state
  // stays cache-hot across the whole batch.
  auto run_label = [&](std::size_t v) {
    const BinaryClassifier& c = *classifiers_[v];
    for (std::size_t r = 0; r < x.rows(); ++r) out(r, v) = c.predict_proba(x.row(r));
  };
  if (parallel) {
    ThreadPool::global().parallel_for(labels, run_label);
  } else {
    for (std::size_t v = 0; v < labels; ++v) run_label(v);
  }
}

ForestCompileReport MultiLabelModel::forest_compile_report() const {
  ForestCompileReport total;
  for (const auto& c : classifiers_) {
    const CompiledForest* forest = c->compiled_forest();
    if (forest == nullptr) continue;
    const ForestCompileReport r = forest->report();
    total.classifiers += r.classifiers;
    total.trees += r.trees;
    total.internal_nodes += r.internal_nodes;
    total.leaves += r.leaves;
    total.seconds += r.seconds;
  }
  return total;
}

const BinaryClassifier& MultiLabelModel::classifier(std::size_t label) const {
  AQUA_REQUIRE(label < classifiers_.size(), "label index out of range");
  return *classifiers_[label];
}

void MultiLabelModel::save(io::BinaryWriter& writer) const {
  AQUA_REQUIRE(fitted(), "save on unfitted model");
  writer.write_u64(classifiers_.size());
  for (const auto& c : classifiers_) save_classifier(writer, *c);
}

MultiLabelModel MultiLabelModel::load(io::BinaryReader& reader) {
  const std::uint64_t count = reader.read_u64();
  if (count == 0 || count > (std::uint64_t{1} << 24)) {
    throw io::SerializationError("malformed multi-label model: label count");
  }
  MultiLabelModel model;
  model.classifiers_.reserve(count);
  for (std::uint64_t v = 0; v < count; ++v) {
    model.classifiers_.push_back(load_classifier(reader));
  }
  // Rebuild the factory from the first classifier so fit() keeps working on
  // a loaded model (all labels share one configuration by construction).
  auto prototype =
      std::shared_ptr<BinaryClassifier>(model.classifiers_.front()->clone_config());
  model.factory_ = [prototype] { return prototype->clone_config(); };
  model.detect_shared_input_map();
  return model;
}

}  // namespace aqua::ml
