#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "io/binary.hpp"

namespace aqua::ml {

RandomForestClassifier::RandomForestClassifier(RandomForestConfig config) : config_(config) {
  AQUA_REQUIRE(config_.num_trees >= 1, "forest needs at least one tree");
  AQUA_REQUIRE(config_.max_bins >= 2 && config_.max_bins <= BinnedDataset::kMaxBins,
               "max_bins out of range");
}

void RandomForestClassifier::fit(const Matrix& x, const Labels& y) {
  fit_impl(x, y, nullptr);
}

void RandomForestClassifier::fit_with_store(const Matrix& x, const Labels& y,
                                            const BinnedDataset& store) {
  AQUA_REQUIRE(store.fitted() && store.num_samples() == x.rows() &&
                   store.num_features() == x.cols() && store.max_bins() == config_.max_bins,
               "shared store does not match the training matrix");
  fit_impl(x, y, config_.exact_splits ? nullptr : &store);
}

void RandomForestClassifier::fit_impl(const Matrix& x, const Labels& y,
                                      const BinnedDataset* store) {
  AQUA_REQUIRE(x.rows() == y.size(), "feature/label row mismatch");
  AQUA_REQUIRE(x.rows() > 0, "empty training set");

  const double pos_rate = positive_rate(y);
  if (pos_rate == 0.0 || pos_rate == 1.0) {
    constant_ = true;
    constant_probability_ = pos_rate;
    trees_.clear();
    compiled_.clear();
    return;
  }
  constant_ = false;

  const std::size_t n = x.rows();
  const auto [w_neg, w_pos] = balanced_class_weights(y);
  std::vector<double> targets(n), weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    targets[i] = y[i] != 0 ? 1.0 : 0.0;
    weights[i] = y[i] != 0 ? w_pos : w_neg;
  }

  std::size_t mtry = config_.max_features;
  if (mtry == 0) {
    mtry = config_.max_features_fraction > 0.0
               ? std::max<std::size_t>(
                     1, static_cast<std::size_t>(config_.max_features_fraction *
                                                 static_cast<double>(x.cols())))
               : std::max<std::size_t>(1, static_cast<std::size_t>(std::sqrt(
                                              static_cast<double>(x.cols()))));
    // Cap the per-split feature budget: beyond ~64 candidate features the
    // marginal chance of catching the informative near-leak sensors no
    // longer justifies the linear cost in wide (full-IoT) feature spaces.
    mtry = std::min({mtry, x.cols(), std::size_t{64}});
  }

  // Quantile-bin the features once; every bootstrap tree reuses the
  // shared column-block encoding — or the caller's store when one was
  // already fitted on exactly this matrix.
  BinnedDataset local_store;
  if (!config_.exact_splits && store == nullptr) {
    local_store.fit(x, config_.max_bins);
    store = &local_store;
  }

  trees_.clear();
  trees_.reserve(config_.num_trees);
  Rng rng(config_.seed);
  std::vector<std::size_t> bootstrap(n);
  for (std::size_t b = 0; b < config_.num_trees; ++b) {
    for (std::size_t i = 0; i < n; ++i) {
      bootstrap[i] =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    }
    TreeConfig tree_config;
    tree_config.max_depth = config_.max_depth;
    tree_config.min_samples_leaf = config_.min_samples_leaf;
    tree_config.min_samples_split = 2 * config_.min_samples_leaf;
    tree_config.max_features = mtry;
    tree_config.seed = rng();
    RegressionTree tree(tree_config);
    if (config_.exact_splits) {
      tree.fit(x, targets, weights, bootstrap);
    } else {
      tree.fit_binned(*store, targets, weights, bootstrap);
    }
    trees_.push_back(std::move(tree));
  }
  compiled_.compile(trees_, 1.0);
}

double RandomForestClassifier::predict_proba(std::span<const double> x) const {
  if (constant_) return constant_probability_;
  AQUA_REQUIRE(!trees_.empty(), "predict on unfitted forest");
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.predict(x);
  return std::clamp(sum / static_cast<double>(trees_.size()), 0.0, 1.0);
}

void RandomForestClassifier::predict_proba_mapped_tile(const double* const* rows,
                                                       std::size_t count, std::size_t dim,
                                                       double* out, std::size_t stride) const {
  if (constant_ || !compiled_.compiled() || !compiled_forest_enabled()) {
    BinaryClassifier::predict_proba_mapped_tile(rows, count, dim, out, stride);
    return;
  }
  // Leaf means accumulate with scale 1 (baked at compile time), so the
  // per-row sum-then-clamp below replays predict_proba's arithmetic
  // exactly: same adds in tree order, same divide, same clamp.
  const double num_trees = static_cast<double>(trees_.size());
  double acc[CompiledForest::kTileRows];
  for (std::size_t begin = 0; begin < count; begin += CompiledForest::kTileRows) {
    const std::size_t n = std::min(CompiledForest::kTileRows, count - begin);
    for (std::size_t i = 0; i < n; ++i) acc[i] = 0.0;
    compiled_.accumulate_tile(rows + begin, n, acc);
    for (std::size_t i = 0; i < n; ++i) {
      out[(begin + i) * stride] = std::clamp(acc[i] / num_trees, 0.0, 1.0);
    }
  }
}

std::unique_ptr<BinaryClassifier> RandomForestClassifier::clone_config() const {
  return std::make_unique<RandomForestClassifier>(config_);
}

void RandomForestClassifier::save_state(io::BinaryWriter& writer) const {
  writer.write_u64(config_.num_trees);
  writer.write_u64(config_.max_depth);
  writer.write_u64(config_.min_samples_leaf);
  writer.write_u64(config_.max_features);
  writer.write_f64(config_.max_features_fraction);
  writer.write_u64(config_.seed);
  writer.write_u64(config_.max_bins);
  writer.write_bool(config_.exact_splits);
  writer.write_bool(constant_);
  writer.write_f64(constant_probability_);
  writer.write_u64(trees_.size());
  for (const auto& tree : trees_) tree.save(writer);
}

void RandomForestClassifier::load_state(io::BinaryReader& reader) {
  config_.num_trees = reader.read_u64();
  config_.max_depth = reader.read_u64();
  config_.min_samples_leaf = reader.read_u64();
  config_.max_features = reader.read_u64();
  config_.max_features_fraction = reader.read_f64();
  config_.seed = reader.read_u64();
  config_.max_bins = reader.read_u64();
  config_.exact_splits = reader.read_bool();
  constant_ = reader.read_bool();
  constant_probability_ = reader.read_f64();
  const std::uint64_t count = reader.read_u64();
  if (count > (std::uint64_t{1} << 24)) throw io::SerializationError("malformed forest size");
  trees_.assign(count, RegressionTree{});
  for (auto& tree : trees_) tree.load(reader);
  compiled_.compile(trees_, 1.0);
}

}  // namespace aqua::ml
