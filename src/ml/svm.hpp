// Support Vector Machine classifier. The decision function is a linear
// SVM (hinge loss, Pegasos-style SGD via the shared Adam core) over an
// optional Random Fourier Feature map that approximates the RBF kernel —
// giving the nonlinearity of kernel SVM at linear cost, which matters when
// fitting one classifier per junction. Probabilities come from Platt
// scaling (a sigmoid fitted to the decision values).
#pragma once

#include "ml/classifier.hpp"
#include "ml/linear_models.hpp"

namespace aqua::ml {

struct SvmConfig {
  SgdConfig sgd{.epochs = 40, .batch_size = 64, .learning_rate = 0.02, .l2 = 1e-3, .seed = 37};
  /// Random Fourier Features for RBF approximation; 0 = plain linear SVM.
  std::size_t rff_dimension = 96;
  /// RBF bandwidth gamma; <= 0 selects 1 / num_features ("scale"-like).
  double rff_gamma = -1.0;
  std::uint64_t seed = 41;
};

class SvmClassifier final : public BinaryClassifier {
 public:
  explicit SvmClassifier(SvmConfig config = {});

  void fit(const Matrix& x, const Labels& y) override;
  double predict_proba(std::span<const double> x) const override;
  /// Shared-input-map protocol: the map is the full feature pipeline
  /// (input scaler -> random Fourier features -> decision-space scaler),
  /// which is bitwise identical across a MultiLabelModel's labels (same
  /// training features, same seeds); only w, b and the Platt sigmoid are
  /// per-label. Hoisting it is the dominant batched-inference win: the
  /// RFF map (D x d multiplies + D cosines) runs once per snapshot
  /// instead of once per label.
  bool input_map_is_identity() const override { return false; }
  bool accepts_input_map(const BinaryClassifier& owner) const override;
  void map_input(std::span<const double> x, PredictWorkspace& ws) const override;
  double predict_proba_mapped(std::span<const double> mapped) const override;
  /// Raw (pre-Platt) decision value, exposed for tests.
  double decision_value(std::span<const double> x) const;
  std::unique_ptr<BinaryClassifier> clone_config() const override;
  std::string name() const override { return "SVM"; }
  void save_state(io::BinaryWriter& writer) const override;
  void load_state(io::BinaryReader& reader) override;

 private:
  std::vector<double> map_features(std::span<const double> x) const;
  Matrix map_matrix(const Matrix& x) const;
  void fit_platt(const Matrix& mapped, const Labels& y);

  SvmConfig config_;
  detail::LinearModelCore core_;
  StandardScaler input_scaler_;
  // RFF projection: z(x) = sqrt(2/D) cos(W x + b).
  Matrix rff_weights_;             // D x d
  std::vector<double> rff_offsets_;  // D
  double platt_a_ = -1.0;
  double platt_b_ = 0.0;
  bool constant_ = false;
  double constant_probability_ = 0.0;
};

}  // namespace aqua::ml
