// Quantile feature binning for histogram-based tree construction (the
// LightGBM-style optimization). Continuous features are discretized into
// at most 64 quantile bins once per fit; tree split search then scans bin
// histograms in O(n + bins) per feature instead of sorting samples per
// node. Thresholds reported by splits are real feature values (bin
// boundaries), so prediction works on raw, unbinned inputs.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/dense.hpp"

namespace aqua::ml {

class FeatureBinning {
 public:
  static constexpr std::size_t kMaxBins = 64;

  FeatureBinning() = default;

  /// Computes per-feature quantile cut points from `x` and encodes every
  /// sample. `max_bins` in [2, kMaxBins].
  void fit(const linalg::Matrix& x, std::size_t max_bins = kMaxBins);

  bool fitted() const noexcept { return !cuts_.empty(); }
  std::size_t num_features() const noexcept { return cuts_.size(); }
  std::size_t num_samples() const noexcept {
    return cuts_.empty() ? 0 : codes_.size() / cuts_.size();
  }

  /// Number of distinct bins for a feature (>= 1).
  std::size_t bins(std::size_t feature) const { return cuts_[feature].size() + 1; }

  /// Encoded bin of the training sample (row, feature).
  std::uint8_t code(std::size_t row, std::size_t feature) const {
    return codes_[row * cuts_.size() + feature];
  }

  /// Upper boundary value of `bin` for a feature: samples with
  /// value <= boundary fall in bins [0, bin]. Valid for bin < bins()-1.
  double upper_boundary(std::size_t feature, std::size_t bin) const {
    return cuts_[feature][bin];
  }

 private:
  std::vector<std::vector<double>> cuts_;  // per feature, ascending, unique
  std::vector<std::uint8_t> codes_;        // row-major samples x features
};

}  // namespace aqua::ml
