// Quantile feature binning for histogram-based tree construction (the
// LightGBM/xgboost-style optimization). Continuous features are
// discretized into at most 255 quantile bins (uint8 codes); tree split
// search then scans bin histograms in O(n + bins) per feature instead of
// sorting samples per node. Thresholds reported by splits are real
// feature values (bin boundaries), so prediction works on raw, unbinned
// inputs.
//
// Two stores share the cut-point logic:
//  - FeatureBinning: the original row-major store (codes_[r*d+f]), kept
//    as the reference kernel's input and for tree-level tests.
//  - BinnedDataset: the shared column-block store (codes_[f*n+r], one
//    contiguous uint8 column per feature). Built once per training
//    matrix and shared read-only across every label's classifier, every
//    RF bootstrap tree and every GB round; the contiguous columns are
//    what make the histogram scan in RegressionTree::fit_binned stream
//    through cache lines instead of striding across them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/dense.hpp"

namespace aqua::ml {

namespace detail {
/// Quantile cut points of an ascending-sorted column: at most max_bins-1
/// strictly increasing boundaries, with duplicates collapsed (constant
/// features end up with zero cuts = one bin) and any trailing cut equal
/// to the maximum dropped (it would create an empty top bin).
std::vector<double> quantile_cuts(std::span<const double> sorted_column, std::size_t max_bins);
}  // namespace detail

class FeatureBinning {
 public:
  /// uint8 headroom: codes are bin indices in [0, bins-1], bins <= 255.
  static constexpr std::size_t kMaxBins = 255;
  /// Default bin budget (the classic LightGBM sweet spot).
  static constexpr std::size_t kDefaultBins = 64;

  FeatureBinning() = default;

  /// Computes per-feature quantile cut points from `x` and encodes every
  /// sample. `max_bins` in [2, kMaxBins]. Per-feature work (full-column
  /// sort + encode) is independent, so `parallel` fans it out over the
  /// global ThreadPool with bit-identical results to the serial order.
  void fit(const linalg::Matrix& x, std::size_t max_bins = kDefaultBins, bool parallel = false);

  bool fitted() const noexcept { return !cuts_.empty(); }
  std::size_t num_features() const noexcept { return cuts_.size(); }
  std::size_t num_samples() const noexcept {
    return cuts_.empty() ? 0 : codes_.size() / cuts_.size();
  }

  /// Number of distinct bins for a feature (>= 1).
  std::size_t bins(std::size_t feature) const { return cuts_[feature].size() + 1; }

  /// Encoded bin of the training sample (row, feature).
  std::uint8_t code(std::size_t row, std::size_t feature) const {
    return codes_[row * cuts_.size() + feature];
  }

  /// Upper boundary value of `bin` for a feature: samples with
  /// value <= boundary fall in bins [0, bin]. Valid for bin < bins()-1.
  double upper_boundary(std::size_t feature, std::size_t bin) const {
    return cuts_[feature][bin];
  }

 private:
  std::vector<std::vector<double>> cuts_;  // per feature, ascending, unique
  std::vector<std::uint8_t> codes_;        // row-major samples x features
};

/// Shared column-block binned feature store. Immutable after fit(); every
/// accessor is const and reentrant, so one store may be read concurrently
/// by any number of tree fits without synchronization (the shared-store
/// fit protocol on BinaryClassifier relies on this).
class BinnedDataset {
 public:
  static constexpr std::size_t kMaxBins = FeatureBinning::kMaxBins;
  static constexpr std::size_t kDefaultBins = FeatureBinning::kDefaultBins;

  BinnedDataset() = default;

  /// Bins every column of `x` into at most `max_bins` quantile bins and
  /// stores the codes feature-major (one contiguous column block per
  /// feature). Features are independent, so `parallel` runs them on the
  /// global ThreadPool, bit-identical to the serial order.
  void fit(const linalg::Matrix& x, std::size_t max_bins = kDefaultBins, bool parallel = true);

  bool fitted() const noexcept { return rows_ > 0; }
  std::size_t num_samples() const noexcept { return rows_; }
  std::size_t num_features() const noexcept { return cuts_.size(); }
  /// The bin budget this store was fitted with (fit's max_bins).
  std::size_t max_bins() const noexcept { return max_bins_; }

  /// Number of distinct bins for a feature (>= 1).
  std::size_t bins(std::size_t feature) const { return cuts_[feature].size() + 1; }

  /// Contiguous block of all samples' codes for one feature.
  std::span<const std::uint8_t> column(std::size_t feature) const {
    return {codes_.data() + feature * rows_, rows_};
  }

  /// Encoded bin of (row, feature); column(f)[r] without the span.
  std::uint8_t code(std::size_t row, std::size_t feature) const {
    return codes_[feature * rows_ + row];
  }

  /// Upper boundary value of `bin` for a feature: samples with
  /// value <= boundary fall in bins [0, bin]. Valid for bin < bins()-1.
  double upper_boundary(std::size_t feature, std::size_t bin) const {
    return cuts_[feature][bin];
  }

  const std::vector<double>& cuts(std::size_t feature) const { return cuts_[feature]; }

 private:
  std::size_t rows_ = 0;
  std::size_t max_bins_ = 0;
  std::vector<std::vector<double>> cuts_;  // per feature, ascending, unique
  std::vector<std::uint8_t> codes_;        // feature-major column blocks
};

}  // namespace aqua::ml
