// Compiled structure-of-arrays forest-inference kernels. A fitted tree
// ensemble (the trees of RandomForest, GradientBoosting, or the forest
// inside HybridRSL) walks heap-allocated 40-byte Node objects pointer by
// pointer at prediction time — the last unvectorized Phase II hot path
// after PR 4 hoisted the shared input map and PR 5 vectorized training.
// CompiledForest flattens every ensemble once at fit/load time into
// contiguous node planes (uint16 feature, double threshold, int32 child
// offsets with leaves inlined as negative offsets referencing a separate
// leaf-value plane), laid out breadth-first so each depth level is a
// contiguous block, plus a blocked traversal kernel that advances a tile
// of kTileRows snapshots through one tree at a time — node loads amortize
// across the tile and the compare/select step is hand-vectorized behind
// the same target_clones avx2/avx512 dispatch as the training kernels.
//
// Bit-identity contract: traversal decisions are the exact IEEE compare
// `x[feature] <= threshold` on the original double threshold, the leaf
// payload is `leaf_scale * value` computed once at compile time (the same
// product the pointer walk computes per visit), and accumulation adds
// tree contributions in ensemble order — so every compiled prediction is
// bitwise equal to the pointer-walking oracle it was flattened from.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace aqua::ml {

class RegressionTree;

/// Aggregate compile statistics (per classifier or summed per model),
/// surfaced through MultiLabelModel / InferenceEngine / ModelBundle so
/// the serving daemon can export forest.compile_seconds and
/// forest.compiled_trees per district.
struct ForestCompileReport {
  std::size_t classifiers = 0;  ///< classifiers holding a compiled ensemble
  std::size_t trees = 0;
  std::size_t internal_nodes = 0;
  std::size_t leaves = 0;
  double seconds = 0.0;
};

/// Process-wide kernel switch, read on every tile call. Defaults to
/// enabled; benches and tests flip it to time / cross-check the retained
/// pointer-walking path. Not meant for production tuning.
bool compiled_forest_enabled() noexcept;
void set_compiled_forest_enabled(bool enabled) noexcept;

class CompiledForest {
 public:
  /// Rows advanced together through the ensemble. 8 keeps the kernel's
  /// per-chunk node cursors (kTreeChunk x kTileRows int32) inside an
  /// 8 KiB stack block that stays L1-resident while still amortizing
  /// every node and leaf load 8-fold across the tile.
  static constexpr std::size_t kTileRows = 8;

  /// Trees traversed level-synchronously per scratch block. The kernel
  /// walks a chunk's trees depth-sorted so each traversal round runs over
  /// a branchless prefix of the chunk (no per-tree mispredicted depth
  /// loops), then replays the leaf adds in ensemble order.
  static constexpr std::size_t kTreeChunk = 256;

  CompiledForest() = default;

  /// Flattens `trees` (every tree must be fitted). `leaf_scale` is baked
  /// into the leaf plane: the pointer paths add `scale * leaf` per tree
  /// (RandomForest scale 1, GradientBoosting the learning rate), and
  /// computing that product once at compile time yields the same bits as
  /// computing it per visit. Compilation fails soft — ensembles whose
  /// feature indices exceed the uint16 plane stay uncompiled and the
  /// callers fall back to the pointer walk.
  void compile(std::span<const RegressionTree> trees, double leaf_scale);

  void clear();

  bool compiled() const noexcept { return !roots_.empty(); }
  std::size_t num_trees() const noexcept { return roots_.size(); }
  std::size_t num_internal_nodes() const noexcept { return feature_.size(); }
  std::size_t num_leaves() const noexcept { return leaf_value_.size(); }
  double compile_seconds() const noexcept { return compile_seconds_; }
  /// Per-tree BFS level counts (the traversal iterations each tree needs);
  /// structural introspection for tests and tuning probes.
  std::span<const std::uint32_t> levels() const noexcept { return levels_; }
  ForestCompileReport report() const;

  /// Advances `count` (<= kTileRows) rows through every tree in ensemble
  /// order, adding each tree's scaled leaf value into acc[i]. Callers
  /// seed acc with the ensemble's initial score (0 for a forest mean,
  /// base_score for boosting). Reentrant: all state is immutable after
  /// compile() and the scratch is stack-local.
  void accumulate_tile(const double* const* rows, std::size_t count, double* acc) const;

  /// Single-row convenience over accumulate_tile (tests, oracles).
  double accumulate(std::span<const double> x, double init) const;

 private:
  // Node planes over every internal node of every tree, breadth-first per
  // tree (depth level d of a tree is one contiguous block, so a tile of
  // rows at the same level touches a compact plane range). Child entries
  // >= 0 index these planes (forest-global); a negative child c is an
  // inlined leaf reference: leaf_value_[~c].
  std::vector<std::uint16_t> feature_;
  std::vector<double> threshold_;
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> right_;
  std::vector<double> leaf_value_;  // pre-scaled by leaf_scale
  std::vector<std::int32_t> roots_;   // per tree: internal node or ~leaf
  std::vector<std::uint32_t> levels_;  // per tree: traversal iterations

  // Traversal schedule, derived at compile time: trees are partitioned
  // into ensemble-order chunks of kTreeChunk and depth-sorted (descending,
  // stable) inside each chunk, so traversal round L of a chunk touches
  // the branchless prefix of `level_counts_` active trees. `rank_` maps
  // an ensemble position back to its chunk-local sorted slot for the
  // ordered accumulation pass.
  std::vector<std::int32_t> sorted_root_;    // per chunk: roots, depth-sorted
  std::vector<std::uint32_t> rank_;          // ensemble pos -> chunk-local slot
  std::vector<std::uint32_t> chunk_depth_;   // per chunk: rounds to run
  std::vector<std::uint32_t> level_offset_;  // per chunk: index into level_counts_
  std::vector<std::uint32_t> level_counts_;  // active trees at each round
  double compile_seconds_ = 0.0;
};

}  // namespace aqua::ml
