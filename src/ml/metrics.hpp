// Evaluation metrics. The paper's headline metric (Sec. V-B) is the
// Hamming Score: "the number of leak events correctly predicted divided by
// the union of predicted and true leak events" — i.e. the Jaccard index of
// the predicted and true leak sets, bounded by 1.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/dataset.hpp"

namespace aqua::ml {

/// Jaccard-style Hamming score of one multi-label prediction:
/// |pred ∧ true| / |pred ∨ true|; both-empty scores 1 (nothing to find,
/// nothing falsely flagged).
double hamming_score(const Labels& predicted, const Labels& truth);

/// Mean Hamming score across samples.
double mean_hamming_score(const std::vector<Labels>& predicted, const std::vector<Labels>& truth);

/// Standard binary-classification accuracy over flattened labels.
double subset_accuracy(const std::vector<Labels>& predicted, const std::vector<Labels>& truth);

struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
};

/// Micro-averaged precision/recall/F1 over all samples and labels.
PrecisionRecall micro_precision_recall(const std::vector<Labels>& predicted,
                                       const std::vector<Labels>& truth);

/// Classification metrics for one binary label vector.
double binary_accuracy(const Labels& predicted, const Labels& truth);

/// Detection hit rate: the fraction of samples whose prediction overlaps
/// the truth at all (|pred ∧ true| > 0) — "did Phase II point at least one
/// finger at a real failure", the robustness benches' coarse accuracy.
/// Samples with an all-zero truth count as hits iff the prediction is also
/// all-zero.
double detection_hit_rate(const std::vector<Labels>& predicted,
                          const std::vector<Labels>& truth);

}  // namespace aqua::ml
