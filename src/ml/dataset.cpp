#include "ml/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "io/binary.hpp"

namespace aqua::ml {

Labels MultiLabelDataset::label_column(std::size_t label_index) const {
  AQUA_REQUIRE(label_index < num_labels(), "label index out of range");
  Labels column(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) column[i] = labels[i][label_index];
  return column;
}

void MultiLabelDataset::append(const MultiLabelDataset& other) {
  AQUA_REQUIRE(other.num_features() == num_features() || num_samples() == 0,
               "appending dataset with a different feature schema");
  AQUA_REQUIRE(other.num_labels() == num_labels() || num_samples() == 0,
               "appending dataset with a different label schema");
  if (num_samples() == 0) {
    *this = other;
    return;
  }
  Matrix merged(num_samples() + other.num_samples(), num_features());
  for (std::size_t r = 0; r < num_samples(); ++r) {
    std::copy(features.row(r).begin(), features.row(r).end(), merged.row(r).begin());
  }
  for (std::size_t r = 0; r < other.num_samples(); ++r) {
    std::copy(other.features.row(r).begin(), other.features.row(r).end(),
              merged.row(num_samples() + r).begin());
  }
  features = std::move(merged);
  labels.insert(labels.end(), other.labels.begin(), other.labels.end());
}

void MultiLabelDataset::check() const {
  AQUA_REQUIRE(labels.size() == features.rows(), "label rows must match feature rows");
  for (const auto& row : labels) {
    AQUA_REQUIRE(row.size() == num_labels(), "ragged label matrix");
    for (auto v : row) AQUA_REQUIRE(v == 0 || v == 1, "labels must be binary");
  }
  for (double v : features.data()) {
    AQUA_REQUIRE(std::isfinite(v), "non-finite feature value");
  }
}

std::pair<MultiLabelDataset, MultiLabelDataset> train_test_split(const MultiLabelDataset& data,
                                                                 double test_fraction,
                                                                 std::uint64_t seed) {
  AQUA_REQUIRE(test_fraction > 0.0 && test_fraction < 1.0, "test fraction must be in (0,1)");
  const std::size_t n = data.num_samples();
  AQUA_REQUIRE(n >= 2, "need at least two samples to split");
  auto test_count = static_cast<std::size_t>(std::lround(test_fraction * static_cast<double>(n)));
  test_count = std::clamp<std::size_t>(test_count, 1, n - 1);

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  Rng rng(seed);
  rng.shuffle(order);

  auto take = [&](std::size_t begin, std::size_t end) {
    MultiLabelDataset subset;
    subset.features = Matrix(end - begin, data.num_features());
    subset.labels.reserve(end - begin);
    subset.feature_names = data.feature_names;
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t src = order[i];
      std::copy(data.features.row(src).begin(), data.features.row(src).end(),
                subset.features.row(i - begin).begin());
      subset.labels.push_back(data.labels[src]);
    }
    return subset;
  };
  return {take(test_count, n), take(0, test_count)};
}

void StandardScaler::fit(const Matrix& x) {
  AQUA_REQUIRE(x.rows() > 0, "cannot fit scaler on empty matrix");
  const std::size_t d = x.cols();
  mean_.assign(d, 0.0);
  inv_std_.assign(d, 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < d; ++c) mean_[c] += row[c];
  }
  for (double& m : mean_) m /= static_cast<double>(x.rows());
  std::vector<double> var(d, 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < d; ++c) {
      const double dv = row[c] - mean_[c];
      var[c] += dv * dv;
    }
  }
  for (std::size_t c = 0; c < d; ++c) {
    const double sd = std::sqrt(var[c] / static_cast<double>(x.rows()));
    inv_std_[c] = sd > 1e-12 ? 1.0 / sd : 0.0;
  }
}

Matrix StandardScaler::transform(const Matrix& x) const {
  AQUA_REQUIRE(fitted(), "scaler not fitted");
  AQUA_REQUIRE(x.cols() == mean_.size(), "scaler schema mismatch");
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto src = x.row(r);
    auto dst = out.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) dst[c] = (src[c] - mean_[c]) * inv_std_[c];
  }
  return out;
}

std::vector<double> StandardScaler::transform_row(std::span<const double> row) const {
  std::vector<double> out;
  transform_row_into(row, out);
  return out;
}

void StandardScaler::transform_row_into(std::span<const double> row,
                                        std::vector<double>& out) const {
  AQUA_REQUIRE(fitted(), "scaler not fitted");
  AQUA_REQUIRE(row.size() == mean_.size(), "scaler schema mismatch");
  out.resize(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) out[c] = (row[c] - mean_[c]) * inv_std_[c];
}

void StandardScaler::save(io::BinaryWriter& writer) const {
  writer.write_f64_vector(mean_);
  writer.write_f64_vector(inv_std_);
}

void StandardScaler::load(io::BinaryReader& reader) {
  mean_ = reader.read_f64_vector();
  inv_std_ = reader.read_f64_vector();
  if (inv_std_.size() != mean_.size()) {
    throw io::SerializationError("scaler mean/std length mismatch");
  }
}

}  // namespace aqua::ml
