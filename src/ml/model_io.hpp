// Polymorphic classifier framing for model artifacts: a classifier is
// written as its kind tag (the stable name() string) followed by its
// save_state() payload, so a reader can reinstantiate the right concrete
// type before loading. Also hosts the dense-matrix framing shared by
// classifiers that persist linalg::Matrix members.
#pragma once

#include <memory>
#include <string>

#include "io/binary.hpp"
#include "linalg/dense.hpp"
#include "ml/classifier.hpp"

namespace aqua::ml {

/// Kind tag + state payload.
void save_classifier(io::BinaryWriter& writer, const BinaryClassifier& classifier);

/// Reinstantiates the concrete classifier named by the kind tag and loads
/// its state; throws io::SerializationError for unknown tags.
std::unique_ptr<BinaryClassifier> load_classifier(io::BinaryReader& reader);

/// Default-configured instance for a kind tag ("LinearR", "LogisticR",
/// "GB", "RF", "SVM", "HybridRSL"); throws io::SerializationError otherwise.
std::unique_ptr<BinaryClassifier> make_classifier_by_name(const std::string& name);

void write_matrix(io::BinaryWriter& writer, const linalg::Matrix& matrix);
linalg::Matrix read_matrix(io::BinaryReader& reader);

}  // namespace aqua::ml
