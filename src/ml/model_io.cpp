#include "ml/model_io.hpp"

#include "ml/gradient_boosting.hpp"
#include "ml/hybrid_rsl.hpp"
#include "ml/linear_models.hpp"
#include "ml/random_forest.hpp"
#include "ml/svm.hpp"

namespace aqua::ml {

void save_classifier(io::BinaryWriter& writer, const BinaryClassifier& classifier) {
  writer.write_string(classifier.name());
  classifier.save_state(writer);
}

std::unique_ptr<BinaryClassifier> make_classifier_by_name(const std::string& name) {
  if (name == "LinearR") return std::make_unique<LinearRegressionClassifier>();
  if (name == "LogisticR") return std::make_unique<LogisticRegressionClassifier>();
  if (name == "GB") return std::make_unique<GradientBoostingClassifier>();
  if (name == "RF") return std::make_unique<RandomForestClassifier>();
  if (name == "SVM") return std::make_unique<SvmClassifier>();
  if (name == "HybridRSL") return std::make_unique<HybridRslClassifier>();
  throw io::SerializationError("unknown classifier kind tag: '" + name + "'");
}

std::unique_ptr<BinaryClassifier> load_classifier(io::BinaryReader& reader) {
  auto classifier = make_classifier_by_name(reader.read_string());
  classifier->load_state(reader);
  return classifier;
}

void write_matrix(io::BinaryWriter& writer, const linalg::Matrix& matrix) {
  writer.write_u64(matrix.rows());
  writer.write_u64(matrix.cols());
  writer.write_f64_vector(matrix.data());
}

linalg::Matrix read_matrix(io::BinaryReader& reader) {
  const std::uint64_t rows = reader.read_u64();
  const std::uint64_t cols = reader.read_u64();
  const std::vector<double> data = reader.read_f64_vector();
  if (data.size() != rows * cols) {
    throw io::SerializationError("malformed matrix: shape/data mismatch");
  }
  linalg::Matrix matrix(rows, cols);
  matrix.data() = data;
  return matrix;
}

}  // namespace aqua::ml
