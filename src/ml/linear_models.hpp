// Linear family: ridge Linear Regression and Logistic Regression, both
// trained with deterministic mini-batch Adam over standardized features
// with balanced class weights. They share a common SGD core with the
// linear SVM (hinge loss) in svm.hpp.
#pragma once

#include "ml/classifier.hpp"

namespace aqua::ml {

struct SgdConfig {
  std::size_t epochs = 40;
  std::size_t batch_size = 64;
  double learning_rate = 0.02;
  double l2 = 1e-4;
  std::uint64_t seed = 13;
};

namespace detail {

enum class LinearLoss { kSquared, kLogistic, kHinge };

/// Shared Adam-trained linear model. Fits w, b on standardized inputs;
/// `decision()` is w.x + b. Degenerates to a constant when y is
/// single-class.
class LinearModelCore {
 public:
  LinearModelCore(LinearLoss loss, SgdConfig config) : loss_(loss), config_(config) {}

  void fit(const Matrix& x, const Labels& y);
  double decision(std::span<const double> x) const;
  /// decision() on features already standardized by this core's scaler
  /// (shared-input-map fast path): bias + w.xs, no transform, no alloc.
  double decision_pretransformed(std::span<const double> xs) const;
  bool constant() const noexcept { return constant_; }
  double constant_probability() const noexcept { return constant_probability_; }
  const std::vector<double>& weights() const noexcept { return weights_; }
  const StandardScaler& scaler() const noexcept { return scaler_; }

  void save(io::BinaryWriter& writer) const;
  void load(io::BinaryReader& reader);

 private:
  LinearLoss loss_;
  SgdConfig config_;
  StandardScaler scaler_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  bool constant_ = false;
  double constant_probability_ = 0.0;
};

}  // namespace detail

/// Ridge linear regression on 0/1 targets; predict_proba clamps the
/// regression output to [0, 1] (the paper uses LinearR as one of the
/// plug-and-play baselines). Default optimizer settings differ from the
/// logistic ones: the unbounded MSE objective on hundreds of correlated
/// Δ-features needs a gentler learning rate and more epochs to converge
/// instead of oscillating.
class LinearRegressionClassifier final : public BinaryClassifier {
 public:
  explicit LinearRegressionClassifier(
      SgdConfig config = {.epochs = 150, .batch_size = 64, .learning_rate = 0.004, .l2 = 1e-4,
                          .seed = 13});
  void fit(const Matrix& x, const Labels& y) override;
  double predict_proba(std::span<const double> x) const override;
  bool input_map_is_identity() const override { return false; }
  bool accepts_input_map(const BinaryClassifier& owner) const override;
  void map_input(std::span<const double> x, PredictWorkspace& ws) const override;
  double predict_proba_mapped(std::span<const double> mapped) const override;
  std::unique_ptr<BinaryClassifier> clone_config() const override;
  std::string name() const override { return "LinearR"; }
  void save_state(io::BinaryWriter& writer) const override;
  void load_state(io::BinaryReader& reader) override;
  const detail::LinearModelCore& core() const noexcept { return core_; }

 private:
  SgdConfig config_;
  detail::LinearModelCore core_;
};

/// L2-regularized logistic regression.
class LogisticRegressionClassifier final : public BinaryClassifier {
 public:
  explicit LogisticRegressionClassifier(SgdConfig config = {});
  void fit(const Matrix& x, const Labels& y) override;
  double predict_proba(std::span<const double> x) const override;
  bool input_map_is_identity() const override { return false; }
  bool accepts_input_map(const BinaryClassifier& owner) const override;
  void map_input(std::span<const double> x, PredictWorkspace& ws) const override;
  double predict_proba_mapped(std::span<const double> mapped) const override;
  std::unique_ptr<BinaryClassifier> clone_config() const override;
  std::string name() const override { return "LogisticR"; }
  void save_state(io::BinaryWriter& writer) const override;
  void load_state(io::BinaryReader& reader) override;
  const detail::LinearModelCore& core() const noexcept { return core_; }

 private:
  SgdConfig config_;
  detail::LinearModelCore core_;
};

/// Numerically safe sigmoid.
double sigmoid(double z) noexcept;

/// SgdConfig framing shared by every classifier that embeds one.
void write_sgd_config(io::BinaryWriter& writer, const SgdConfig& config);
SgdConfig read_sgd_config(io::BinaryReader& reader);

}  // namespace aqua::ml
