#include "ml/binning.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace aqua::ml {

namespace detail {

std::vector<double> quantile_cuts(std::span<const double> sorted_column, std::size_t max_bins) {
  const std::size_t n = sorted_column.size();
  std::vector<double> cuts;
  for (std::size_t b = 1; b < max_bins; ++b) {
    const std::size_t idx = b * (n - 1) / max_bins;
    const double cut = sorted_column[idx];
    if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
  }
  // Drop a trailing cut equal to the maximum (it would create an empty
  // top bin).
  while (!cuts.empty() && cuts.back() >= sorted_column.back()) cuts.pop_back();
  return cuts;
}

namespace {

/// Sorts feature `f`'s column, derives its cuts, and encodes every sample
/// through `write_code(row, code)`. One call per feature; features are
/// independent, so callers may fan these out across threads.
template <typename WriteCode>
std::vector<double> bin_feature(const linalg::Matrix& x, std::size_t f, std::size_t max_bins,
                                std::vector<double>& column, WriteCode write_code) {
  const std::size_t n = x.rows();
  column.resize(n);
  for (std::size_t r = 0; r < n; ++r) column[r] = x(r, f);
  std::sort(column.begin(), column.end());
  std::vector<double> cuts = quantile_cuts(column, max_bins);
  for (std::size_t r = 0; r < n; ++r) {
    const double v = x(r, f);
    const auto it = std::lower_bound(cuts.begin(), cuts.end(), v);
    // v <= cuts[k] -> bin k; v > all cuts -> last bin.
    write_code(r, static_cast<std::uint8_t>(it - cuts.begin()));
  }
  return cuts;
}

}  // namespace
}  // namespace detail

void FeatureBinning::fit(const linalg::Matrix& x, std::size_t max_bins, bool parallel) {
  AQUA_REQUIRE(x.rows() > 0, "cannot bin an empty matrix");
  AQUA_REQUIRE(max_bins >= 2 && max_bins <= kMaxBins, "max_bins out of range");
  const std::size_t n = x.rows(), d = x.cols();
  cuts_.assign(d, {});
  codes_.assign(n * d, 0);

  auto bin_one = [&](std::size_t f) {
    std::vector<double> column;
    cuts_[f] = detail::bin_feature(x, f, max_bins, column,
                                   [&](std::size_t r, std::uint8_t c) { codes_[r * d + f] = c; });
  };
  if (parallel) {
    ThreadPool::global().parallel_for(d, bin_one);
  } else {
    for (std::size_t f = 0; f < d; ++f) bin_one(f);
  }
}

void BinnedDataset::fit(const linalg::Matrix& x, std::size_t max_bins, bool parallel) {
  AQUA_REQUIRE(x.rows() > 0, "cannot bin an empty matrix");
  AQUA_REQUIRE(max_bins >= 2 && max_bins <= kMaxBins, "max_bins out of range");
  const std::size_t n = x.rows(), d = x.cols();
  rows_ = n;
  max_bins_ = max_bins;
  cuts_.assign(d, {});
  codes_.assign(n * d, 0);

  auto bin_one = [&](std::size_t f) {
    std::uint8_t* col = codes_.data() + f * n;
    std::vector<double> column;
    cuts_[f] = detail::bin_feature(x, f, max_bins, column,
                                   [&](std::size_t r, std::uint8_t c) { col[r] = c; });
  };
  if (parallel) {
    ThreadPool::global().parallel_for(d, bin_one);
  } else {
    for (std::size_t f = 0; f < d; ++f) bin_one(f);
  }
}

}  // namespace aqua::ml
