#include "ml/binning.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace aqua::ml {

void FeatureBinning::fit(const linalg::Matrix& x, std::size_t max_bins) {
  AQUA_REQUIRE(x.rows() > 0, "cannot bin an empty matrix");
  AQUA_REQUIRE(max_bins >= 2 && max_bins <= kMaxBins, "max_bins out of range");
  const std::size_t n = x.rows(), d = x.cols();
  cuts_.assign(d, {});
  codes_.assign(n * d, 0);

  std::vector<double> column(n);
  for (std::size_t f = 0; f < d; ++f) {
    for (std::size_t r = 0; r < n; ++r) column[r] = x(r, f);
    std::sort(column.begin(), column.end());

    // Quantile cut points; duplicates collapse so constant features end up
    // with a single bin.
    auto& cuts = cuts_[f];
    for (std::size_t b = 1; b < max_bins; ++b) {
      const std::size_t idx = b * (n - 1) / max_bins;
      const double cut = column[idx];
      if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
    }
    // Drop a trailing cut equal to the maximum (it would create an empty
    // top bin).
    while (!cuts.empty() && cuts.back() >= column.back()) cuts.pop_back();

    for (std::size_t r = 0; r < n; ++r) {
      const double v = x(r, f);
      const auto it = std::lower_bound(cuts.begin(), cuts.end(), v);
      // v <= cuts[k] -> bin k; v > all cuts -> last bin.
      codes_[r * d + f] = static_cast<std::uint8_t>(it - cuts.begin());
    }
  }
}

}  // namespace aqua::ml
