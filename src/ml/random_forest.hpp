// Random Forest classifier: bootstrap-aggregated regression trees on 0/1
// targets with balanced class weights; the averaged leaf means are the
// leak probability. One of the two strong base learners in HybridRSL —
// the paper found "RF and SVM remain robust with decreasing number of IoT
// sensors" (Sec. IV-A).
#pragma once

#include "ml/classifier.hpp"
#include "ml/compiled_forest.hpp"
#include "ml/decision_tree.hpp"

namespace aqua::ml {

struct RandomForestConfig {
  std::size_t num_trees = 40;
  std::size_t max_depth = 12;
  std::size_t min_samples_leaf = 1;
  /// 0 = use max_features_fraction; otherwise an absolute count.
  std::size_t max_features = 0;
  /// Fraction of features per split when max_features == 0; leak signals
  /// are sparse (a few near-leak sensors carry it), so a larger mtry than
  /// the classic sqrt(d) is needed to find them. <= 0 falls back to
  /// sqrt(d).
  double max_features_fraction = 0.25;
  std::uint64_t seed = 29;
  /// Quantile-bin budget of the histogram split search (2..255).
  std::size_t max_bins = 64;
  /// Train with exact sorted-feature CART splits instead of histograms —
  /// the slow validation oracle the binned path is tested against.
  bool exact_splits = false;
};

class RandomForestClassifier final : public BinaryClassifier {
 public:
  explicit RandomForestClassifier(RandomForestConfig config = {});

  void fit(const Matrix& x, const Labels& y) override;
  double predict_proba(std::span<const double> x) const override;
  /// Compiled SoA traversal over the whole tile (bit-identical to the
  /// per-row pointer walk); falls back to the base per-row loop when the
  /// ensemble is degenerate or the kernel is disabled.
  void predict_proba_mapped_tile(const double* const* rows, std::size_t count, std::size_t dim,
                                 double* out, std::size_t stride) const override;
  const CompiledForest* compiled_forest() const override {
    return compiled_.compiled() ? &compiled_ : nullptr;
  }
  std::unique_ptr<BinaryClassifier> clone_config() const override;
  std::string name() const override { return "RF"; }
  void save_state(io::BinaryWriter& writer) const override;
  void load_state(io::BinaryReader& reader) override;

  std::size_t fit_store_bins() const override {
    return config_.exact_splits ? 0 : config_.max_bins;
  }
  void fit_with_store(const Matrix& x, const Labels& y, const BinnedDataset& store) override;

  std::size_t num_trees() const noexcept { return trees_.size(); }

 private:
  void fit_impl(const Matrix& x, const Labels& y, const BinnedDataset* store);

  RandomForestConfig config_;
  std::vector<RegressionTree> trees_;
  /// SoA flattening of trees_, rebuilt after every fit/load (derived
  /// state, never serialized). The pointer-walking predict_proba stays
  /// the oracle.
  CompiledForest compiled_;
  bool constant_ = false;
  double constant_probability_ = 0.0;
};

}  // namespace aqua::ml
