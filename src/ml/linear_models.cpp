#include "ml/linear_models.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "io/binary.hpp"

namespace aqua::ml {

void write_sgd_config(io::BinaryWriter& writer, const SgdConfig& config) {
  writer.write_u64(config.epochs);
  writer.write_u64(config.batch_size);
  writer.write_f64(config.learning_rate);
  writer.write_f64(config.l2);
  writer.write_u64(config.seed);
}

SgdConfig read_sgd_config(io::BinaryReader& reader) {
  SgdConfig config;
  config.epochs = reader.read_u64();
  config.batch_size = reader.read_u64();
  config.learning_rate = reader.read_f64();
  config.l2 = reader.read_f64();
  config.seed = reader.read_u64();
  return config;
}

double sigmoid(double z) noexcept {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

std::pair<double, double> balanced_class_weights(const Labels& y) {
  std::size_t positives = 0;
  for (auto v : y) positives += (v != 0);
  const std::size_t negatives = y.size() - positives;
  if (positives == 0 || negatives == 0) return {1.0, 1.0};
  const auto n = static_cast<double>(y.size());
  return {n / (2.0 * static_cast<double>(negatives)), n / (2.0 * static_cast<double>(positives))};
}

double positive_rate(const Labels& y) {
  if (y.empty()) return 0.0;
  std::size_t positives = 0;
  for (auto v : y) positives += (v != 0);
  return static_cast<double>(positives) / static_cast<double>(y.size());
}

namespace detail {

void LinearModelCore::fit(const Matrix& x, const Labels& y) {
  AQUA_REQUIRE(x.rows() == y.size(), "feature/label row mismatch");
  AQUA_REQUIRE(x.rows() > 0, "empty training set");

  const double pos_rate = positive_rate(y);
  if (pos_rate == 0.0 || pos_rate == 1.0) {
    constant_ = true;
    constant_probability_ = pos_rate;
    return;
  }
  constant_ = false;

  scaler_.fit(x);
  const Matrix xs = scaler_.transform(x);
  const std::size_t n = xs.rows(), d = xs.cols();
  const auto [w_neg, w_pos] = balanced_class_weights(y);

  weights_.assign(d, 0.0);
  bias_ = 0.0;
  std::vector<double> m(d + 1, 0.0), v(d + 1, 0.0);  // Adam moments (last = bias)
  constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  Rng rng(config_.seed);

  std::size_t t = 0;
  std::vector<double> grad(d + 1, 0.0);
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < n; start += config_.batch_size) {
      const std::size_t end = std::min(start + config_.batch_size, n);
      std::fill(grad.begin(), grad.end(), 0.0);
      for (std::size_t k = start; k < end; ++k) {
        const auto row = xs.row(order[k]);
        const bool positive = y[order[k]] != 0;
        const double weight = positive ? w_pos : w_neg;
        double z = bias_;
        for (std::size_t c = 0; c < d; ++c) z += weights_[c] * row[c];
        // dLoss/dz per loss family; targets are {0,1} for squared and
        // logistic, {-1,+1} for hinge.
        double dz = 0.0;
        switch (loss_) {
          case LinearLoss::kSquared:
            dz = z - (positive ? 1.0 : 0.0);
            break;
          case LinearLoss::kLogistic:
            dz = sigmoid(z) - (positive ? 1.0 : 0.0);
            break;
          case LinearLoss::kHinge: {
            const double target = positive ? 1.0 : -1.0;
            dz = (target * z < 1.0) ? -target : 0.0;
            break;
          }
        }
        dz *= weight;
        for (std::size_t c = 0; c < d; ++c) grad[c] += dz * row[c];
        grad[d] += dz;
      }
      const auto batch = static_cast<double>(end - start);
      ++t;
      const double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(t));
      const double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(t));
      for (std::size_t c = 0; c <= d; ++c) {
        double g = grad[c] / batch;
        if (c < d) g += config_.l2 * weights_[c];
        m[c] = kBeta1 * m[c] + (1.0 - kBeta1) * g;
        v[c] = kBeta2 * v[c] + (1.0 - kBeta2) * g * g;
        const double step = config_.learning_rate * (m[c] / bc1) / (std::sqrt(v[c] / bc2) + kEps);
        if (c < d) {
          weights_[c] -= step;
        } else {
          bias_ -= step;
        }
      }
    }
  }
}

void LinearModelCore::save(io::BinaryWriter& writer) const {
  writer.write_u8(static_cast<std::uint8_t>(loss_));
  write_sgd_config(writer, config_);
  scaler_.save(writer);
  writer.write_f64_vector(weights_);
  writer.write_f64(bias_);
  writer.write_bool(constant_);
  writer.write_f64(constant_probability_);
}

void LinearModelCore::load(io::BinaryReader& reader) {
  const std::uint8_t loss = reader.read_u8();
  if (loss > static_cast<std::uint8_t>(LinearLoss::kHinge)) {
    throw io::SerializationError("malformed linear-model loss tag");
  }
  loss_ = static_cast<LinearLoss>(loss);
  config_ = read_sgd_config(reader);
  scaler_.load(reader);
  weights_ = reader.read_f64_vector();
  bias_ = reader.read_f64();
  constant_ = reader.read_bool();
  constant_probability_ = reader.read_f64();
}

double LinearModelCore::decision(std::span<const double> x) const {
  AQUA_REQUIRE(!constant_, "decision() on a degenerate constant model");
  const std::vector<double> xs = scaler_.transform_row(x);
  double z = bias_;
  for (std::size_t c = 0; c < xs.size(); ++c) z += weights_[c] * xs[c];
  return z;
}

double LinearModelCore::decision_pretransformed(std::span<const double> xs) const {
  AQUA_REQUIRE(!constant_, "decision() on a degenerate constant model");
  AQUA_REQUIRE(xs.size() == weights_.size(), "pretransformed feature size mismatch");
  double z = bias_;
  for (std::size_t c = 0; c < xs.size(); ++c) z += weights_[c] * xs[c];
  return z;
}

}  // namespace detail

namespace {

/// Shared-map acceptance for the linear family: degenerate constants
/// accept any owner (they ignore the map); fitted models require an owner
/// of the same concrete type whose scaler state is bitwise identical.
template <typename Classifier>
bool linear_accepts_input_map(const detail::LinearModelCore& core,
                              const BinaryClassifier& owner) {
  if (core.constant()) return true;
  const auto* peer = dynamic_cast<const Classifier*>(&owner);
  return peer != nullptr && !peer->core().constant() &&
         core.scaler().identical(peer->core().scaler());
}

}  // namespace

LinearRegressionClassifier::LinearRegressionClassifier(SgdConfig config)
    : config_(config), core_(detail::LinearLoss::kSquared, config) {}

void LinearRegressionClassifier::fit(const Matrix& x, const Labels& y) { core_.fit(x, y); }

double LinearRegressionClassifier::predict_proba(std::span<const double> x) const {
  if (core_.constant()) return core_.constant_probability();
  return std::clamp(core_.decision(x), 0.0, 1.0);
}

bool LinearRegressionClassifier::accepts_input_map(const BinaryClassifier& owner) const {
  return linear_accepts_input_map<LinearRegressionClassifier>(core_, owner);
}

void LinearRegressionClassifier::map_input(std::span<const double> x,
                                           PredictWorkspace& ws) const {
  // A degenerate constant never fitted its scaler; it can still serve as
  // map owner for a model whose every label is constant (heads ignore it).
  if (core_.constant()) {
    ws.mapped.assign(x.begin(), x.end());
    return;
  }
  core_.scaler().transform_row_into(x, ws.mapped);
}

double LinearRegressionClassifier::predict_proba_mapped(std::span<const double> mapped) const {
  if (core_.constant()) return core_.constant_probability();
  return std::clamp(core_.decision_pretransformed(mapped), 0.0, 1.0);
}

std::unique_ptr<BinaryClassifier> LinearRegressionClassifier::clone_config() const {
  return std::make_unique<LinearRegressionClassifier>(config_);
}

void LinearRegressionClassifier::save_state(io::BinaryWriter& writer) const {
  write_sgd_config(writer, config_);
  core_.save(writer);
}

void LinearRegressionClassifier::load_state(io::BinaryReader& reader) {
  config_ = read_sgd_config(reader);
  core_.load(reader);
}

LogisticRegressionClassifier::LogisticRegressionClassifier(SgdConfig config)
    : config_(config), core_(detail::LinearLoss::kLogistic, config) {}

void LogisticRegressionClassifier::fit(const Matrix& x, const Labels& y) { core_.fit(x, y); }

double LogisticRegressionClassifier::predict_proba(std::span<const double> x) const {
  if (core_.constant()) return core_.constant_probability();
  return sigmoid(core_.decision(x));
}

bool LogisticRegressionClassifier::accepts_input_map(const BinaryClassifier& owner) const {
  return linear_accepts_input_map<LogisticRegressionClassifier>(core_, owner);
}

void LogisticRegressionClassifier::map_input(std::span<const double> x,
                                             PredictWorkspace& ws) const {
  if (core_.constant()) {
    ws.mapped.assign(x.begin(), x.end());
    return;
  }
  core_.scaler().transform_row_into(x, ws.mapped);
}

double LogisticRegressionClassifier::predict_proba_mapped(std::span<const double> mapped) const {
  if (core_.constant()) return core_.constant_probability();
  return sigmoid(core_.decision_pretransformed(mapped));
}

std::unique_ptr<BinaryClassifier> LogisticRegressionClassifier::clone_config() const {
  return std::make_unique<LogisticRegressionClassifier>(config_);
}

void LogisticRegressionClassifier::save_state(io::BinaryWriter& writer) const {
  write_sgd_config(writer, config_);
  core_.save(writer);
}

void LogisticRegressionClassifier::load_state(io::BinaryReader& reader) {
  config_ = read_sgd_config(reader);
  core_.load(reader);
}

}  // namespace aqua::ml
