#include "ml/gradient_boosting.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "io/binary.hpp"
#include "ml/linear_models.hpp"

namespace aqua::ml {

GradientBoostingClassifier::GradientBoostingClassifier(GradientBoostingConfig config)
    : config_(config) {
  AQUA_REQUIRE(config_.num_rounds >= 1, "boosting needs at least one round");
  AQUA_REQUIRE(config_.learning_rate > 0.0, "learning rate must be positive");
  AQUA_REQUIRE(config_.subsample > 0.0 && config_.subsample <= 1.0, "subsample must be in (0,1]");
  AQUA_REQUIRE(config_.max_bins >= 2 && config_.max_bins <= BinnedDataset::kMaxBins,
               "max_bins out of range");
}

void GradientBoostingClassifier::fit(const Matrix& x, const Labels& y) {
  fit_impl(x, y, nullptr);
}

void GradientBoostingClassifier::fit_with_store(const Matrix& x, const Labels& y,
                                                const BinnedDataset& store) {
  AQUA_REQUIRE(store.fitted() && store.num_samples() == x.rows() &&
                   store.num_features() == x.cols() && store.max_bins() == config_.max_bins,
               "shared store does not match the training matrix");
  fit_impl(x, y, config_.exact_splits ? nullptr : &store);
}

void GradientBoostingClassifier::fit_impl(const Matrix& x, const Labels& y,
                                          const BinnedDataset* store) {
  AQUA_REQUIRE(x.rows() == y.size(), "feature/label row mismatch");
  AQUA_REQUIRE(x.rows() > 0, "empty training set");

  const double pos_rate = positive_rate(y);
  if (pos_rate == 0.0 || pos_rate == 1.0) {
    constant_ = true;
    constant_probability_ = pos_rate;
    trees_.clear();
    compiled_.clear();
    return;
  }
  constant_ = false;

  const std::size_t n = x.rows();
  const auto [w_neg, w_pos] = balanced_class_weights(y);
  std::vector<double> weights(n);
  for (std::size_t i = 0; i < n; ++i) weights[i] = y[i] != 0 ? w_pos : w_neg;

  // With balanced weights the weighted positive rate is 1/2, so the
  // initial log-odds is 0; keep the general formula for clarity.
  base_score_ = std::log(pos_rate / (1.0 - pos_rate));

  std::vector<double> score(n, base_score_);
  std::vector<double> residual(n), hessian(n);
  Rng rng(config_.seed);
  trees_.clear();
  trees_.reserve(config_.num_rounds);

  // Bin once per fit — or not at all when a shared store (already fitted
  // on exactly this matrix) is handed down by MultiLabelModel.
  BinnedDataset local_store;
  if (!config_.exact_splits && store == nullptr) {
    local_store.fit(x, config_.max_bins);
    store = &local_store;
  }

  const auto subsample_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.subsample * static_cast<double>(n)));

  std::vector<std::int32_t> leaf_of_row;
  for (std::size_t round = 0; round < config_.num_rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      const double p = sigmoid(score[i]);
      residual[i] = (y[i] != 0 ? 1.0 : 0.0) - p;
      hessian[i] = std::max(p * (1.0 - p), 1e-6);
    }
    std::vector<std::size_t> rows;
    if (subsample_count < n) {
      rows = rng.sample_without_replacement(n, subsample_count);
    }
    TreeConfig tree_config;
    tree_config.max_depth = config_.max_depth;
    tree_config.min_samples_leaf = config_.min_samples_leaf;
    tree_config.min_samples_split = 2 * config_.min_samples_leaf;
    tree_config.seed = rng();
    RegressionTree tree(tree_config);
    if (config_.exact_splits) {
      tree.fit(x, residual, weights, rows, hessian);
      for (std::size_t i = 0; i < n; ++i) {
        score[i] += config_.learning_rate * tree.predict(x.row(i));
      }
    } else {
      // The kernel reports every row's leaf, so the round's score update
      // is a leaf-value lookup instead of n full tree traversals
      // (leaf_value(leaf_of_row[i]) == predict(row i) bitwise).
      tree.fit_binned(*store, residual, weights, rows, hessian, &leaf_of_row);
      for (std::size_t i = 0; i < n; ++i) {
        score[i] += config_.learning_rate *
                    tree.leaf_value(static_cast<std::size_t>(leaf_of_row[i]));
      }
    }
    trees_.push_back(std::move(tree));
  }
  compiled_.compile(trees_, config_.learning_rate);
}

double GradientBoostingClassifier::predict_proba(std::span<const double> x) const {
  if (constant_) return constant_probability_;
  AQUA_REQUIRE(!trees_.empty(), "predict on unfitted model");
  double score = base_score_;
  for (const auto& tree : trees_) score += config_.learning_rate * tree.predict(x);
  return sigmoid(score);
}

void GradientBoostingClassifier::predict_proba_mapped_tile(const double* const* rows,
                                                           std::size_t count, std::size_t dim,
                                                           double* out,
                                                           std::size_t stride) const {
  if (constant_ || !compiled_.compiled() || !compiled_forest_enabled()) {
    BinaryClassifier::predict_proba_mapped_tile(rows, count, dim, out, stride);
    return;
  }
  double acc[CompiledForest::kTileRows];
  for (std::size_t begin = 0; begin < count; begin += CompiledForest::kTileRows) {
    const std::size_t n = std::min(CompiledForest::kTileRows, count - begin);
    for (std::size_t i = 0; i < n; ++i) acc[i] = base_score_;
    compiled_.accumulate_tile(rows + begin, n, acc);
    for (std::size_t i = 0; i < n; ++i) out[(begin + i) * stride] = sigmoid(acc[i]);
  }
}

std::unique_ptr<BinaryClassifier> GradientBoostingClassifier::clone_config() const {
  return std::make_unique<GradientBoostingClassifier>(config_);
}

void GradientBoostingClassifier::save_state(io::BinaryWriter& writer) const {
  writer.write_u64(config_.num_rounds);
  writer.write_f64(config_.learning_rate);
  writer.write_u64(config_.max_depth);
  writer.write_u64(config_.min_samples_leaf);
  writer.write_f64(config_.subsample);
  writer.write_u64(config_.seed);
  writer.write_u64(config_.max_bins);
  writer.write_bool(config_.exact_splits);
  writer.write_f64(base_score_);
  writer.write_bool(constant_);
  writer.write_f64(constant_probability_);
  writer.write_u64(trees_.size());
  for (const auto& tree : trees_) tree.save(writer);
}

void GradientBoostingClassifier::load_state(io::BinaryReader& reader) {
  config_.num_rounds = reader.read_u64();
  config_.learning_rate = reader.read_f64();
  config_.max_depth = reader.read_u64();
  config_.min_samples_leaf = reader.read_u64();
  config_.subsample = reader.read_f64();
  config_.seed = reader.read_u64();
  config_.max_bins = reader.read_u64();
  config_.exact_splits = reader.read_bool();
  base_score_ = reader.read_f64();
  constant_ = reader.read_bool();
  constant_probability_ = reader.read_f64();
  const std::uint64_t count = reader.read_u64();
  if (count > (std::uint64_t{1} << 24)) throw io::SerializationError("malformed ensemble size");
  trees_.assign(count, RegressionTree{});
  for (auto& tree : trees_) tree.load(reader);
  compiled_.compile(trees_, config_.learning_rate);
}

}  // namespace aqua::ml
