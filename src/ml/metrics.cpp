#include "ml/metrics.hpp"

#include "common/error.hpp"

namespace aqua::ml {

double hamming_score(const Labels& predicted, const Labels& truth) {
  AQUA_REQUIRE(predicted.size() == truth.size(), "label arity mismatch");
  std::size_t intersection = 0, unions = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const bool p = predicted[i] != 0, t = truth[i] != 0;
    intersection += static_cast<std::size_t>(p && t);
    unions += static_cast<std::size_t>(p || t);
  }
  return unions == 0 ? 1.0 : static_cast<double>(intersection) / static_cast<double>(unions);
}

double mean_hamming_score(const std::vector<Labels>& predicted,
                          const std::vector<Labels>& truth) {
  AQUA_REQUIRE(predicted.size() == truth.size(), "sample count mismatch");
  AQUA_REQUIRE(!predicted.empty(), "no samples");
  double sum = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) sum += hamming_score(predicted[i], truth[i]);
  return sum / static_cast<double>(predicted.size());
}

double subset_accuracy(const std::vector<Labels>& predicted, const std::vector<Labels>& truth) {
  AQUA_REQUIRE(predicted.size() == truth.size(), "sample count mismatch");
  AQUA_REQUIRE(!predicted.empty(), "no samples");
  std::size_t exact = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    exact += static_cast<std::size_t>(predicted[i] == truth[i]);
  }
  return static_cast<double>(exact) / static_cast<double>(predicted.size());
}

PrecisionRecall micro_precision_recall(const std::vector<Labels>& predicted,
                                       const std::vector<Labels>& truth) {
  AQUA_REQUIRE(predicted.size() == truth.size(), "sample count mismatch");
  PrecisionRecall out;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    AQUA_REQUIRE(predicted[i].size() == truth[i].size(), "label arity mismatch");
    for (std::size_t j = 0; j < predicted[i].size(); ++j) {
      const bool p = predicted[i][j] != 0, t = truth[i][j] != 0;
      out.true_positives += static_cast<std::size_t>(p && t);
      out.false_positives += static_cast<std::size_t>(p && !t);
      out.false_negatives += static_cast<std::size_t>(!p && t);
    }
  }
  const auto tp = static_cast<double>(out.true_positives);
  const double pp = tp + static_cast<double>(out.false_positives);
  const double ap = tp + static_cast<double>(out.false_negatives);
  out.precision = pp > 0.0 ? tp / pp : 1.0;
  out.recall = ap > 0.0 ? tp / ap : 1.0;
  out.f1 = (out.precision + out.recall) > 0.0
               ? 2.0 * out.precision * out.recall / (out.precision + out.recall)
               : 0.0;
  return out;
}

double binary_accuracy(const Labels& predicted, const Labels& truth) {
  AQUA_REQUIRE(predicted.size() == truth.size(), "label arity mismatch");
  AQUA_REQUIRE(!predicted.empty(), "no labels");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    correct += static_cast<std::size_t>((predicted[i] != 0) == (truth[i] != 0));
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

double detection_hit_rate(const std::vector<Labels>& predicted,
                          const std::vector<Labels>& truth) {
  AQUA_REQUIRE(predicted.size() == truth.size(), "sample count mismatch");
  AQUA_REQUIRE(!predicted.empty(), "no samples");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    AQUA_REQUIRE(predicted[i].size() == truth[i].size(), "label arity mismatch");
    bool overlap = false, any_truth = false, any_pred = false;
    for (std::size_t j = 0; j < predicted[i].size(); ++j) {
      const bool p = predicted[i][j] != 0, t = truth[i][j] != 0;
      overlap = overlap || (p && t);
      any_truth = any_truth || t;
      any_pred = any_pred || p;
    }
    hits += static_cast<std::size_t>(any_truth ? overlap : !any_pred);
  }
  return static_cast<double>(hits) / static_cast<double>(predicted.size());
}

}  // namespace aqua::ml
