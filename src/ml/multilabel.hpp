// The multi-label profile model f = {f_v : v ∈ V} (Algorithm 1): one
// independently trained binary classifier per candidate leak node, all
// sharing the same feature vector. Training is embarrassingly parallel and
// runs on the process thread pool.
#pragma once

#include <functional>
#include <memory>

#include "ml/classifier.hpp"

namespace aqua::ml {

/// Factory for fresh per-label classifiers (the "plug" in plug-and-play).
using ClassifierFactory = std::function<std::unique_ptr<BinaryClassifier>()>;

class MultiLabelModel {
 public:
  /// Default-constructed models must receive a factory before fit().
  MultiLabelModel() = default;

  /// `factory` supplies fresh per-label classifiers; must be callable.
  explicit MultiLabelModel(ClassifierFactory factory);

  /// Algorithm 1: for v in V do f_v.fit(T, X, Y_v).
  void fit(const MultiLabelDataset& data, bool parallel = true);

  std::size_t num_labels() const noexcept { return classifiers_.size(); }
  bool fitted() const noexcept { return !classifiers_.empty(); }

  /// predict_proba: per-label P(y_v = 1 | x).
  std::vector<double> predict_proba(std::span<const double> x) const;

  /// predict: the leak set S = {v : p_v(1) > p_v(0)} as a 0/1 vector.
  Labels predict(std::span<const double> x) const;

  /// Batch helpers over a dataset's rows.
  std::vector<std::vector<double>> predict_proba_batch(const Matrix& x,
                                                       bool parallel = true) const;
  std::vector<Labels> predict_batch(const Matrix& x, bool parallel = true) const;

  const BinaryClassifier& classifier(std::size_t label) const;

  /// Serializes every per-label classifier (kind tag + state). A loaded
  /// model predicts bit-identically and can be refit (the factory is
  /// rebuilt from the first classifier's configuration).
  void save(io::BinaryWriter& writer) const;
  static MultiLabelModel load(io::BinaryReader& reader);

 private:
  ClassifierFactory factory_;
  std::vector<std::unique_ptr<BinaryClassifier>> classifiers_;
};

}  // namespace aqua::ml
