// The multi-label profile model f = {f_v : v ∈ V} (Algorithm 1): one
// independently trained binary classifier per candidate leak node, all
// sharing the same feature vector. Training is embarrassingly parallel and
// runs on the process thread pool.
#pragma once

#include <functional>
#include <memory>

#include "ml/classifier.hpp"
#include "ml/compiled_forest.hpp"

namespace aqua::ml {

/// Factory for fresh per-label classifiers (the "plug" in plug-and-play).
using ClassifierFactory = std::function<std::unique_ptr<BinaryClassifier>()>;

class MultiLabelModel {
 public:
  /// Default-constructed models must receive a factory before fit().
  MultiLabelModel() = default;

  /// `factory` supplies fresh per-label classifiers; must be callable.
  explicit MultiLabelModel(ClassifierFactory factory);

  /// Algorithm 1: for v in V do f_v.fit(T, X, Y_v).
  ///
  /// All labels train on the same feature matrix, so when every label's
  /// classifier consumes a binned store with one agreed bin budget
  /// (fit_store_bins(), see BinaryClassifier's shared-store protocol)
  /// and `shared_store` is true, the quantile binning is computed once
  /// here and shared read-only across labels instead of once per label —
  /// bit-identical to the per-label path by the protocol's contract.
  void fit(const MultiLabelDataset& data, bool parallel = true, bool shared_store = true);

  std::size_t num_labels() const noexcept { return classifiers_.size(); }
  bool fitted() const noexcept { return !classifiers_.empty(); }

  /// predict_proba: per-label P(y_v = 1 | x).
  std::vector<double> predict_proba(std::span<const double> x) const;

  /// predict: the leak set S = {v : p_v(1) > p_v(0)} as a 0/1 vector.
  Labels predict(std::span<const double> x) const;

  /// Batch helpers over a dataset's rows.
  std::vector<std::vector<double>> predict_proba_batch(const Matrix& x,
                                                       bool parallel = true) const;
  std::vector<Labels> predict_batch(const Matrix& x, bool parallel = true) const;

  /// Batched predict_proba over stacked feature rows: `out` becomes
  /// rows x num_labels. When every label accepts one classifier's input
  /// map (detected once after fit/load; see BinaryClassifier's shared-
  /// input-map protocol), the map is computed once per row and the rows
  /// advance through the per-label heads a tile at a time
  /// (kPredictTileRows rows per tile), so tree-backed heads run their
  /// compiled SoA traversal kernel with node loads amortized across the
  /// tile — bit-identical to per-row predict_proba, since sharing and
  /// tiling only elide recomputation of bitwise-equal subexpressions.
  /// Otherwise falls back to a label-major sweep (per-label model state
  /// stays cache-hot across the whole batch). Reentrant: safe to call
  /// concurrently on a fitted model.
  void predict_proba_batch_into(const Matrix& x, Matrix& out, bool parallel = true) const;

  /// Aggregate compiled-forest statistics over every label's classifier
  /// (zero report for tree-less models). ModelBundle captures this at
  /// load so the serving daemon can export forest.compile_seconds /
  /// forest.compiled_trees per district.
  ForestCompileReport forest_compile_report() const;

  /// True when batched prediction hoists a shared input map.
  bool has_shared_input_map() const noexcept { return shared_map_owner_ != kNoSharedMap; }

  const BinaryClassifier& classifier(std::size_t label) const;

  /// Serializes every per-label classifier (kind tag + state). A loaded
  /// model predicts bit-identically and can be refit (the factory is
  /// rebuilt from the first classifier's configuration).
  void save(io::BinaryWriter& writer) const;
  static MultiLabelModel load(io::BinaryReader& reader);

 private:
  static constexpr std::size_t kNoSharedMap = static_cast<std::size_t>(-1);

  /// Scans for a classifier whose input map every label accepts; caching
  /// the owner index here keeps engine construction and batch calls free
  /// of the O(labels^2) bitwise state comparison.
  void detect_shared_input_map();

  ClassifierFactory factory_;
  std::vector<std::unique_ptr<BinaryClassifier>> classifiers_;
  std::size_t shared_map_owner_ = kNoSharedMap;
};

}  // namespace aqua::ml
