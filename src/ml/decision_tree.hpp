// CART regression trees with sample weights — the shared building block of
// Random Forest (bagged trees on binary targets, whose leaf means are leak
// probabilities) and Gradient Boosting (shallow trees on pseudo-residuals
// with Newton leaf values).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "linalg/dense.hpp"
#include "ml/binning.hpp"

namespace aqua::io {
class BinaryWriter;
class BinaryReader;
}  // namespace aqua::io

namespace aqua::ml {

// 64-byte-aligned allocator for histogram buffers (defined in the .cpp):
// cells are SIMD lanes, and a 64-aligned base keeps every cell inside one
// cache line.
template <typename T>
struct HistAllocator;
using HistVec = std::vector<double, HistAllocator<double>>;
// A node's histogram buffers (double cells + uint32 count plane).
struct TreeHist;

struct TreeConfig {
  std::size_t max_depth = 10;
  std::size_t min_samples_split = 4;
  std::size_t min_samples_leaf = 2;
  /// Features considered per split; 0 = all (RF passes ~sqrt(d)).
  std::size_t max_features = 0;
  std::uint64_t seed = 17;
};

/// Weighted least-squares regression tree. On 0/1 targets the weighted
/// SSE criterion is equivalent to weighted Gini impurity, so the same tree
/// serves as a probability-outputting classification tree.
class RegressionTree {
 public:
  explicit RegressionTree(TreeConfig config = {}) : config_(config) {}

  /// Fits on rows `sample_indices` of x (empty = all rows). `weights` may
  /// be empty (all 1). `hessians`, when provided, switches leaf values to
  /// the Newton estimate sum(w*target) / sum(w*hessian) used by gradient
  /// boosting with logistic loss.
  void fit(const linalg::Matrix& x, std::span<const double> targets,
           std::span<const double> weights = {}, std::span<const std::size_t> sample_indices = {},
           std::span<const double> hessians = {});

  /// Histogram-based fit over a row-major FeatureBinning. This is the
  /// reference histogram kernel (kept for tree-level tests and as the
  /// pre-store comparison baseline); the ensembles train through the
  /// BinnedDataset overload below.
  void fit_binned(const FeatureBinning& binning, std::span<const double> targets,
                  std::span<const double> weights = {},
                  std::span<const std::size_t> sample_indices = {},
                  std::span<const double> hessians = {});

  /// Column-block histogram fit over a shared BinnedDataset — the fast
  /// kernel all ensembles use. Per node it streams each candidate
  /// feature's contiguous code column into a bin histogram (per-row
  /// (w, w*y, w*y*y) stats are precomputed once and kept in partition
  /// order), derives the larger child's histograms from the parent's by
  /// subtraction when every feature is a candidate, and fans the
  /// per-feature build+scan over the global ThreadPool with a fixed
  /// reduction order, so the result is bit-identical however many
  /// threads run.
  ///
  /// `leaf_of_row`, when non-null, is resized to the store's row count
  /// and filled with the leaf node index of every row — including rows
  /// outside `sample_indices`, which are routed through the fitted
  /// splits on their bin codes. leaf_value(leaf_of_row[i]) equals
  /// predict(row i) exactly, letting gradient boosting update per-round
  /// scores without re-traversing the tree per row.
  void fit_binned(const BinnedDataset& store, std::span<const double> targets,
                  std::span<const double> weights = {},
                  std::span<const std::size_t> sample_indices = {},
                  std::span<const double> hessians = {},
                  std::vector<std::int32_t>* leaf_of_row = nullptr);

  double predict(std::span<const double> x) const;

  /// Output value of a leaf node (pairs with fit_binned's leaf_of_row).
  double leaf_value(std::size_t node) const { return nodes_[node].value; }

  /// Read-only view of one stored node, for the compiled-kernel
  /// flattener (ml/compiled_forest.hpp) and structural tests. Leaves
  /// report feature < 0.
  struct NodeView {
    int feature;
    double threshold;
    double value;
    int left;
    int right;
  };
  NodeView node_view(std::size_t i) const {
    const Node& n = nodes_[i];
    return {n.feature, n.threshold, n.value, n.left, n.right};
  }

  bool fitted() const noexcept { return !nodes_.empty(); }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t depth() const noexcept;

  void save(io::BinaryWriter& writer) const;
  void load(io::BinaryReader& reader);

 private:
  struct Node {
    int feature = -1;         // -1 = leaf
    double threshold = 0.0;   // go left if x[feature] <= threshold
    double value = 0.0;       // leaf output
    int left = -1;
    int right = -1;
  };

  struct BuildContext;
  int build(BuildContext& ctx, std::vector<std::size_t>& indices, std::size_t begin,
            std::size_t end, std::size_t depth, Rng& rng);

  struct BinnedContext;
  int build_binned(BinnedContext& ctx, std::vector<std::size_t>& indices, std::size_t begin,
                   std::size_t end, std::size_t depth, Rng& rng);

  struct StoreContext;
  struct NodeTotals;
  // `hist` is this node's histogram buffer (empty = build it here); the
  // buffer's ownership moves down the recursion and back into the pool.
  int build_store(StoreContext& ctx, std::size_t begin, std::size_t end, std::size_t depth,
                  const NodeTotals& totals, TreeHist hist, Rng& rng);

  TreeConfig config_;
  std::vector<Node> nodes_;
};

}  // namespace aqua::ml
