// CART regression trees with sample weights — the shared building block of
// Random Forest (bagged trees on binary targets, whose leaf means are leak
// probabilities) and Gradient Boosting (shallow trees on pseudo-residuals
// with Newton leaf values).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "linalg/dense.hpp"
#include "ml/binning.hpp"

namespace aqua::io {
class BinaryWriter;
class BinaryReader;
}  // namespace aqua::io

namespace aqua::ml {

struct TreeConfig {
  std::size_t max_depth = 10;
  std::size_t min_samples_split = 4;
  std::size_t min_samples_leaf = 2;
  /// Features considered per split; 0 = all (RF passes ~sqrt(d)).
  std::size_t max_features = 0;
  std::uint64_t seed = 17;
};

/// Weighted least-squares regression tree. On 0/1 targets the weighted
/// SSE criterion is equivalent to weighted Gini impurity, so the same tree
/// serves as a probability-outputting classification tree.
class RegressionTree {
 public:
  explicit RegressionTree(TreeConfig config = {}) : config_(config) {}

  /// Fits on rows `sample_indices` of x (empty = all rows). `weights` may
  /// be empty (all 1). `hessians`, when provided, switches leaf values to
  /// the Newton estimate sum(w*target) / sum(w*hessian) used by gradient
  /// boosting with logistic loss.
  void fit(const linalg::Matrix& x, std::span<const double> targets,
           std::span<const double> weights = {}, std::span<const std::size_t> sample_indices = {},
           std::span<const double> hessians = {});

  /// Histogram-based fit over pre-binned features (the fast path used by
  /// the ensembles): split search scans at most 64 quantile bins per
  /// feature instead of sorting samples. Produces the same tree structure
  /// semantics as fit(); predict() still takes raw feature vectors.
  void fit_binned(const FeatureBinning& binning, std::span<const double> targets,
                  std::span<const double> weights = {},
                  std::span<const std::size_t> sample_indices = {},
                  std::span<const double> hessians = {});

  double predict(std::span<const double> x) const;

  bool fitted() const noexcept { return !nodes_.empty(); }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t depth() const noexcept;

  void save(io::BinaryWriter& writer) const;
  void load(io::BinaryReader& reader);

 private:
  struct Node {
    int feature = -1;         // -1 = leaf
    double threshold = 0.0;   // go left if x[feature] <= threshold
    double value = 0.0;       // leaf output
    int left = -1;
    int right = -1;
  };

  struct BuildContext;
  int build(BuildContext& ctx, std::vector<std::size_t>& indices, std::size_t begin,
            std::size_t end, std::size_t depth, Rng& rng);

  struct BinnedContext;
  int build_binned(BinnedContext& ctx, std::vector<std::size_t>& indices, std::size_t begin,
                   std::size_t end, std::size_t depth, Rng& rng);

  TreeConfig config_;
  std::vector<Node> nodes_;
};

}  // namespace aqua::ml
