#include "ml/compiled_forest.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <limits>
#include <numeric>
#include <utility>

#include "common/cpu_dispatch.hpp"
#include "common/error.hpp"
#include "ml/classifier.hpp"
#include "ml/decision_tree.hpp"

namespace aqua::ml {

static_assert(BinaryClassifier::kPredictTileRows == CompiledForest::kTileRows,
              "batched predictors and the compiled kernel must agree on the tile width");

namespace {

std::atomic<bool> g_compiled_forest_enabled{true};

/// The flattened planes of one ensemble, passed by value into the kernel
/// so every field lives in a register. The pointers are __restrict so the
/// accumulator stores cannot force plane or row-pointer reloads (the
/// planes are CompiledForest-owned and never overlap a caller's output).
struct ForestPlanes {
  const std::uint16_t* __restrict feature;
  const double* __restrict threshold;
  const std::int32_t* __restrict left;
  const std::int32_t* __restrict right;
  const double* __restrict leaves;
  const std::int32_t* __restrict sorted_root;
  const std::uint32_t* __restrict rank;
  const std::uint32_t* __restrict chunk_depth;
  const std::uint32_t* __restrict level_offset;
  const std::uint32_t* __restrict level_counts;
  std::size_t trees;
};

// The whole forest for kRows rows, always inlined into the target_clones
// dispatcher below so the level-synchronous rounds and the ordered leaf
// accumulation compile as one flat loop nest with compile-time row trip
// counts — with the shallow ensembles the profile models grow (a handful
// of internal nodes per tree), per-tree loop overhead and the mispredicted
// data-dependent depth branches of a tree-at-a-time walk would otherwise
// dominate the kernel. Per-lane IEEE `x <= t` is the exact comparison the
// pointer walk performs, the selects only choose between the same two
// children, and the per-row adds run in ensemble order, so neither the
// tiling, the depth-sorted schedule, nor the dispatch changes a single
// routing decision or sum bit.
template <std::size_t kRows>
[[gnu::always_inline]] inline void forest_tile(const ForestPlanes& p,
                                               const double* const* __restrict rows,
                                               double* __restrict acc) {
  // Hoist the row pointers and accumulators into locals: with __restrict
  // the compiler keeps the running sums in registers across whole chunks
  // instead of storing/reloading acc[] on every tree.
  const double* __restrict row[kRows];
  double sum[kRows];
  for (std::size_t i = 0; i < kRows; ++i) row[i] = rows[i];
  for (std::size_t i = 0; i < kRows; ++i) sum[i] = acc[i];
  // Node cursors for one chunk of trees: 8 KiB at the serving tile width,
  // L1-resident for the whole chunk.
  alignas(64) std::int32_t cur[CompiledForest::kTreeChunk][kRows];
  const std::size_t chunks =
      (p.trees + CompiledForest::kTreeChunk - 1) / CompiledForest::kTreeChunk;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t base = c * CompiledForest::kTreeChunk;
    const std::size_t n = std::min(CompiledForest::kTreeChunk, p.trees - base);
    const std::uint32_t depth = p.chunk_depth[c];
    const std::uint32_t* __restrict counts = p.level_counts + p.level_offset[c];
    // Root round, fused with the seed: every active tree's rows sit at its
    // root, so the node fields load once per tree and only the feature
    // value gathers per row. The depth-sorted suffix past the round-0
    // count holds single-leaf trees — their roots are already negative
    // leaf references and ride through the rounds untouched.
    const std::size_t active0 = depth > 0 ? counts[0] : 0;
    for (std::size_t j = 0; j < active0; ++j) {
      const std::int32_t root = p.sorted_root[base + j];
      const std::uint16_t f0 = p.feature[root];
      const double t0 = p.threshold[root];
      const std::int32_t l0 = p.left[root];
      const std::int32_t r0 = p.right[root];
      for (std::size_t i = 0; i < kRows; ++i) cur[j][i] = row[i][f0] <= t0 ? l0 : r0;
    }
    for (std::size_t j = active0; j < n; ++j) {
      const std::int32_t root = p.sorted_root[base + j];
      for (std::size_t i = 0; i < kRows; ++i) cur[j][i] = root;
    }
    // Deeper level-synchronous rounds over the depth-sorted chunk: round L
    // advances exactly the `level_counts` prefix of trees still having
    // internal nodes at depth L — every loop bound comes from the
    // schedule, so nothing here branches on per-row traversal state.
    // Rows that reached a leaf early keep their negative reference via
    // the final select (their gather reads node 0 harmlessly), which is
    // why per-lane `x <= t` stays the exact compare the pointer walk
    // performs: the select only ever picks between the same two children.
    for (std::uint32_t level = 1; level < depth; ++level) {
      const std::size_t active = counts[level];
      for (std::size_t j = 0; j < active; ++j) {
        std::int32_t* __restrict lane = cur[j];
        for (std::size_t i = 0; i < kRows; ++i) {
          const std::int32_t idx = lane[i];
          const std::int32_t safe = idx & ~(idx >> 31);  // max(idx, 0)
          const double x = row[i][p.feature[safe]];
          const std::int32_t next = x <= p.threshold[safe] ? p.left[safe] : p.right[safe];
          lane[i] = idx < 0 ? idx : next;
        }
      }
    }
    // Ordered accumulation: replay the chunk's trees in ensemble order
    // (rank maps each ensemble position to its sorted slot), so per-row
    // sums add tree contributions in exactly the pointer walk's order.
    for (std::size_t k = 0; k < n; ++k) {
      const std::int32_t* __restrict lane = cur[p.rank[base + k]];
      for (std::size_t i = 0; i < kRows; ++i) sum[i] += p.leaves[~lane[i]];
    }
  }
  for (std::size_t i = 0; i < kRows; ++i) acc[i] = sum[i];
}

// Runtime dispatcher: full tiles take the unrolled kRows-wide body;
// partial tails run row-at-a-time (a width-1 instance of the same body,
// so the arithmetic per row is identical regardless of tile occupancy).
AQUA_TARGET_CLONES void accumulate_forest(const ForestPlanes p, const double* const* rows,
                                          std::size_t count, double* acc) {
  if (count == CompiledForest::kTileRows) {
    forest_tile<CompiledForest::kTileRows>(p, rows, acc);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) forest_tile<1>(p, rows + i, acc + i);
}

}  // namespace

bool compiled_forest_enabled() noexcept {
  return g_compiled_forest_enabled.load(std::memory_order_relaxed);
}

void set_compiled_forest_enabled(bool enabled) noexcept {
  g_compiled_forest_enabled.store(enabled, std::memory_order_relaxed);
}

void CompiledForest::clear() {
  feature_.clear();
  threshold_.clear();
  left_.clear();
  right_.clear();
  leaf_value_.clear();
  roots_.clear();
  levels_.clear();
  sorted_root_.clear();
  rank_.clear();
  chunk_depth_.clear();
  level_offset_.clear();
  level_counts_.clear();
  compile_seconds_ = 0.0;
}

void CompiledForest::compile(std::span<const RegressionTree> trees, double leaf_scale) {
  const auto start = std::chrono::steady_clock::now();
  clear();
  if (trees.empty()) return;

  roots_.reserve(trees.size());
  levels_.reserve(trees.size());

  std::vector<std::int32_t> global_of;  // tree node index -> internal plane index
  std::vector<int> frontier, next_frontier, order;
  for (const RegressionTree& tree : trees) {
    if (!tree.fitted()) {
      clear();
      return;
    }
    const std::size_t base = feature_.size();
    global_of.assign(tree.node_count(), -1);

    const RegressionTree::NodeView root = tree.node_view(0);
    if (root.feature < 0) {
      // Single-leaf tree: the root itself is an inlined leaf reference.
      roots_.push_back(~static_cast<std::int32_t>(leaf_value_.size()));
      leaf_value_.push_back(leaf_scale * root.value);
      levels_.push_back(0);
      continue;
    }

    // Pass 1: breadth-first numbering of the internal nodes, so every
    // depth level occupies one contiguous plane block and the level count
    // bounds the traversal iterations.
    order.clear();
    frontier.assign(1, 0);
    std::uint32_t levels = 0;
    while (!frontier.empty()) {
      ++levels;
      next_frontier.clear();
      for (const int n : frontier) {
        global_of[static_cast<std::size_t>(n)] =
            static_cast<std::int32_t>(base + order.size());
        order.push_back(n);
        const RegressionTree::NodeView node = tree.node_view(static_cast<std::size_t>(n));
        if (tree.node_view(static_cast<std::size_t>(node.left)).feature >= 0) {
          next_frontier.push_back(node.left);
        }
        if (tree.node_view(static_cast<std::size_t>(node.right)).feature >= 0) {
          next_frontier.push_back(node.right);
        }
      }
      frontier.swap(next_frontier);
    }

    // Pass 2: fill the planes in that order, inlining leaf children as
    // negative references into the leaf-value plane (encounter order).
    for (const int n : order) {
      const RegressionTree::NodeView node = tree.node_view(static_cast<std::size_t>(n));
      if (node.feature > std::numeric_limits<std::uint16_t>::max()) {
        clear();  // feature plane too narrow — callers keep the pointer walk
        return;
      }
      auto child_ref = [&](int child) -> std::int32_t {
        const RegressionTree::NodeView c = tree.node_view(static_cast<std::size_t>(child));
        if (c.feature >= 0) return global_of[static_cast<std::size_t>(child)];
        const std::int32_t leaf = static_cast<std::int32_t>(leaf_value_.size());
        leaf_value_.push_back(leaf_scale * c.value);
        return ~leaf;
      };
      feature_.push_back(static_cast<std::uint16_t>(node.feature));
      threshold_.push_back(node.threshold);
      left_.push_back(child_ref(node.left));
      right_.push_back(child_ref(node.right));
    }
    roots_.push_back(global_of[0]);
    levels_.push_back(levels);
  }

  // The int32 child planes must be able to address every node and leaf.
  const auto limit = static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max());
  if (feature_.size() >= limit || leaf_value_.size() >= limit) {
    clear();
    return;
  }

  // Traversal schedule: depth-sort (descending, stable) within each
  // ensemble-order chunk of kTreeChunk trees, so the kernel's round L runs
  // over the contiguous prefix of trees that still have internal nodes at
  // depth L. rank_ inverts the sort for the ordered accumulation pass, and
  // chunks themselves stay in ensemble order, so the global add order is
  // untouched by the reordering.
  const std::size_t total = roots_.size();
  sorted_root_.resize(total);
  rank_.resize(total);
  std::vector<std::uint32_t> slot;
  for (std::size_t base = 0; base < total; base += kTreeChunk) {
    const std::size_t n = std::min(kTreeChunk, total - base);
    slot.resize(n);
    std::iota(slot.begin(), slot.end(), 0u);
    std::stable_sort(slot.begin(), slot.end(), [&](std::uint32_t a, std::uint32_t b) {
      return levels_[base + a] > levels_[base + b];
    });
    const std::uint32_t depth = n > 0 ? levels_[base + slot[0]] : 0;
    chunk_depth_.push_back(depth);
    level_offset_.push_back(static_cast<std::uint32_t>(level_counts_.size()));
    for (std::uint32_t level = 0; level < depth; ++level) {
      std::uint32_t active = 0;
      while (active < n && levels_[base + slot[active]] > level) ++active;
      level_counts_.push_back(active);
    }
    for (std::size_t j = 0; j < n; ++j) {
      sorted_root_[base + j] = roots_[base + slot[j]];
      rank_[base + slot[j]] = static_cast<std::uint32_t>(j);
    }
  }

  compile_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

ForestCompileReport CompiledForest::report() const {
  ForestCompileReport r;
  if (!compiled()) return r;
  r.classifiers = 1;
  r.trees = num_trees();
  r.internal_nodes = num_internal_nodes();
  r.leaves = num_leaves();
  r.seconds = compile_seconds_;
  return r;
}

void CompiledForest::accumulate_tile(const double* const* rows, std::size_t count,
                                     double* acc) const {
  AQUA_REQUIRE(compiled(), "accumulate on an uncompiled forest");
  AQUA_REQUIRE(count <= kTileRows, "tile exceeds kTileRows");
  const ForestPlanes planes{feature_.data(),     threshold_.data(),    left_.data(),
                            right_.data(),       leaf_value_.data(),   sorted_root_.data(),
                            rank_.data(),        chunk_depth_.data(),  level_offset_.data(),
                            level_counts_.data(), roots_.size()};
  accumulate_forest(planes, rows, count, acc);
}

double CompiledForest::accumulate(std::span<const double> x, double init) const {
  const double* row = x.data();
  double acc = init;
  accumulate_tile(&row, 1, &acc);
  return acc;
}

}  // namespace aqua::ml
