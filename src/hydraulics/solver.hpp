// Steady-state hydraulic solver: the Todini-Pilati Global Gradient
// Algorithm (GGA), the same method EPANET 2 uses. Each call solves one
// demand-driven snapshot: given junction demands and fixed heads at
// reservoirs/tanks, it computes nodal heads and link flows satisfying
// continuity and the head-loss relations, including pressure-dependent
// emitter (leak) outflows from Eq. 1 of the paper.
//
// The node sparsity pattern is assembled once per solver instance and
// refilled every Newton iteration, so repeated solves over the same
// network (extended-period simulation, scenario batches) are cheap.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "hydraulics/headloss.hpp"
#include "hydraulics/network.hpp"
#include "linalg/linear_system.hpp"
#include "linalg/solvers.hpp"
#include "linalg/sparse.hpp"

namespace aqua::hydraulics {

/// Inner linear solver for the per-iteration SPD node system. Each value
/// maps onto a linalg::LinearSystem backend (linalg/linear_system.hpp).
enum class LinearSolver {
  /// Sparse LDL^T with a minimum-degree ordering and a cached symbolic
  /// factorization (EPANET 2's approach). Fastest at every size measured
  /// so far (96 to 50k nodes) — near-planar water networks keep the
  /// min-degree fill low enough that refactorization stays near-linear.
  kCholesky,
  /// Jacobi-preconditioned conjugate gradients, warm-started from the
  /// previous Newton iterate. Matrix-free cross-check.
  kConjugateGradient,
  /// IC(0)-preconditioned conjugate gradients: O(nnz) refactorization per
  /// Newton iteration and warm-started inner iterations. An explicit
  /// override for matrices where direct factor fill explodes (dense
  /// non-planar interconnects) or memory-bound deployments; on the planar
  /// generated cities the direct backend empirically wins at every
  /// measured size (see SolverOptions::auto_crossover_nodes).
  kIc0Cg,
  /// Pick kCholesky or kIc0Cg from the junction count against
  /// SolverOptions::auto_crossover_nodes; the default. Resolution happens
  /// at solver construction (see GgaSolver::linear_backend()).
  kAuto,
};

struct SolverOptions {
  HeadLossModel headloss = HeadLossModel::kHazenWilliams;
  std::size_t max_iterations = 600;
  /// Convergence: sum of |flow change| over sum of |flow| (EPANET ACCURACY).
  double accuracy = 1e-4;
  /// Throw SolverError on non-convergence instead of returning best effort.
  bool throw_on_divergence = true;
  /// Print per-iteration convergence diagnostics to stderr.
  bool trace = false;
  /// Inner linear solver; kAuto crosses over on network size, any other
  /// value is an explicit override.
  LinearSolver linear_solver = LinearSolver::kAuto;
  /// kAuto picks kIc0Cg at or above this many solved junction rows,
  /// kCholesky below. The bench_micro_hydraulics node-count sweep on
  /// generated city networks (BENCH_micro_hydraulics.json) measured NO
  /// crossover up to 50k nodes: min-degree keeps the LDLT factor fill
  /// near 1.3x on these planar grids (refactor ~4 ms at 50k) while the
  /// Jacobian's ~1e5 conductance contrast pushes IC(0)-CG past 2k inner
  /// iterations per Newton step. The default therefore sits beyond the
  /// measured range so kAuto resolves to kCholesky everywhere practical;
  /// lower it (or set linear_solver explicitly) to opt into kIc0Cg.
  std::size_t auto_crossover_nodes = 200000;
  /// Settings for the iterative backends (kConjugateGradient, kIc0Cg).
  linalg::CgOptions cg;
};

/// One hydraulic snapshot.
struct HydraulicState {
  std::vector<double> head;             // per node [m]
  std::vector<double> pressure;         // head - elevation [m] (0 at reservoirs)
  std::vector<double> flow;             // per link, signed from->to [m^3/s]
  std::vector<double> emitter_outflow;  // per node [m^3/s]
  std::size_t iterations = 0;
  bool converged = false;

  double total_emitter_outflow() const noexcept;
};

/// Reusable GGA solver bound to one network topology. The network's
/// *structure* (nodes/links) must not change between solves; attribute
/// changes (emitter coefficients, status via options below) are fine
/// because values are re-evaluated each call.
///
/// The solver owns a workspace (matrix values, factor, rhs/iterate
/// buffers) built once in the constructor and reused by every solve(), so
/// steady-state solves allocate only the returned HydraulicState. The
/// flip side: solve() mutates that workspace, so a single GgaSolver
/// instance must not be used from multiple threads concurrently — give
/// each thread its own instance (construction is cheap).
class GgaSolver {
 public:
  explicit GgaSolver(const Network& network, SolverOptions options = {});

  /// Binds a solver to `network` by cloning `prototype`'s assembly and
  /// cached symbolic factorization instead of recomputing the min-degree
  /// ordering and analysis. `network` must be structurally identical to
  /// prototype.network() (same node/link counts, fixed-head pattern and
  /// link endpoints — checked); attribute differences (demands, emitter
  /// coefficients, roughness) are fine because values are re-evaluated
  /// every solve. This is what lets a per-thread solver pool share one
  /// symbolic factorization per network.
  GgaSolver(const Network& network, const GgaSolver& prototype);

  /// Solves a snapshot. `demands` is per-node (junction entries used)
  /// [m^3/s]; `fixed_heads` is per-node and consulted only for
  /// reservoir/tank nodes [m]. `warm_start` (optional) seeds heads and
  /// flows from a previous solution.
  HydraulicState solve(const std::vector<double>& demands, const std::vector<double>& fixed_heads,
                       const HydraulicState* warm_start = nullptr) const;

  /// Convenience: demands from base demands at pattern period 0 and fixed
  /// heads from node data (tank head = elevation + init level).
  HydraulicState solve_snapshot() const;

  const Network& network() const noexcept { return network_; }
  const SolverOptions& options() const noexcept { return options_; }

  /// The concrete inner backend this solver runs on (kAuto resolved at
  /// construction; never kAuto itself).
  LinearSolver linear_backend() const noexcept { return resolved_solver_; }

  /// First-order probe around a converged state: refills the node Jacobian
  /// at `state` (link linearization + emitter gradients), refactors once,
  /// and computes the head response to a unit outflow (+1 m^3/s extra
  /// demand — the leak direction) at each probe node with one blocked
  /// multi-RHS solve. `head_response` is resized to probes.size() x
  /// num_nodes row-major (zero at fixed-head nodes); `flow_response`
  /// (optional, pass nullptr to skip) to probes.size() x num_links via the
  /// link linearization dq = p * (dh_from - dh_to). Every probe must be a
  /// junction. Mutates the solver workspace like solve() does (same
  /// thread-safety caveat).
  void probe_outflow_response(const HydraulicState& state, std::span<const NodeId> probes,
                              std::vector<double>& head_response,
                              std::vector<double>* flow_response = nullptr) const;

 private:
  struct Assembly {
    std::vector<std::size_t> row_of_node;  // kFixed for fixed-head nodes
    std::vector<NodeId> node_of_row;
    linalg::CsrMatrix pattern;              // SPD pattern with zero values
    // Per link: value-array slots for the four stamp positions
    // (from,from), (to,to), (from,to), (to,from); kNoSlot where the
    // endpoint is fixed-head.
    std::vector<std::array<std::size_t, 4>> link_slots;
    std::vector<std::size_t> diag_slot;  // per row
  };

  /// Per-solve scratch, sized once at construction and reused across all
  /// solve() calls of an EPS run or scenario batch.
  struct Workspace {
    linalg::CsrMatrix matrix;  // assembly pattern; values refilled per iteration
    std::vector<double> rhs;
    std::vector<double> solution;
    std::vector<double> prev_solution;
    std::vector<double> y, p;  // per-link GGA intermediates
    // Backend with its cached symbolic analysis (LDLT elimination tree,
    // IC(0) lower pattern, ...); cloned — not recomputed — by the
    // prototype constructor.
    std::unique_ptr<linalg::LinearSystem> system;
  };

  static constexpr std::size_t kFixed = static_cast<std::size_t>(-1);
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  Assembly build_assembly() const;
  /// Inner linear solve of workspace matrix/rhs into workspace solution.
  /// Returns false (with a reason) instead of throwing so the Newton loop
  /// can surface divergence per SolverOptions::throw_on_divergence.
  bool solve_linear_system(std::string* why) const;

  const Network& network_;
  SolverOptions options_;
  LinearSolver resolved_solver_ = LinearSolver::kCholesky;
  Assembly assembly_;
  mutable Workspace workspace_;
};

}  // namespace aqua::hydraulics
