// Steady-state hydraulic solver: the Todini-Pilati Global Gradient
// Algorithm (GGA), the same method EPANET 2 uses. Each call solves one
// demand-driven snapshot: given junction demands and fixed heads at
// reservoirs/tanks, it computes nodal heads and link flows satisfying
// continuity and the head-loss relations, including pressure-dependent
// emitter (leak) outflows from Eq. 1 of the paper.
//
// The node sparsity pattern is assembled once per solver instance and
// refilled every Newton iteration, so repeated solves over the same
// network (extended-period simulation, scenario batches) are cheap.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "hydraulics/headloss.hpp"
#include "hydraulics/network.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/solvers.hpp"
#include "linalg/sparse.hpp"

namespace aqua::hydraulics {

/// Inner linear solver for the per-iteration SPD node system.
enum class LinearSolver {
  /// Sparse LDL^T with a minimum-degree ordering and a cached symbolic
  /// factorization (EPANET 2's approach); the default.
  kCholesky,
  /// Jacobi-preconditioned conjugate gradients, warm-started from the
  /// previous Newton iterate.
  kConjugateGradient,
};

struct SolverOptions {
  HeadLossModel headloss = HeadLossModel::kHazenWilliams;
  std::size_t max_iterations = 600;
  /// Convergence: sum of |flow change| over sum of |flow| (EPANET ACCURACY).
  double accuracy = 1e-4;
  /// Throw SolverError on non-convergence instead of returning best effort.
  bool throw_on_divergence = true;
  /// Print per-iteration convergence diagnostics to stderr.
  bool trace = false;
  /// Inner linear solver; kCholesky unless experimenting.
  LinearSolver linear_solver = LinearSolver::kCholesky;
  /// Settings for the kConjugateGradient fallback.
  linalg::CgOptions cg;
};

/// One hydraulic snapshot.
struct HydraulicState {
  std::vector<double> head;             // per node [m]
  std::vector<double> pressure;         // head - elevation [m] (0 at reservoirs)
  std::vector<double> flow;             // per link, signed from->to [m^3/s]
  std::vector<double> emitter_outflow;  // per node [m^3/s]
  std::size_t iterations = 0;
  bool converged = false;

  double total_emitter_outflow() const noexcept;
};

/// Reusable GGA solver bound to one network topology. The network's
/// *structure* (nodes/links) must not change between solves; attribute
/// changes (emitter coefficients, status via options below) are fine
/// because values are re-evaluated each call.
///
/// The solver owns a workspace (matrix values, factor, rhs/iterate
/// buffers) built once in the constructor and reused by every solve(), so
/// steady-state solves allocate only the returned HydraulicState. The
/// flip side: solve() mutates that workspace, so a single GgaSolver
/// instance must not be used from multiple threads concurrently — give
/// each thread its own instance (construction is cheap).
class GgaSolver {
 public:
  explicit GgaSolver(const Network& network, SolverOptions options = {});

  /// Binds a solver to `network` by cloning `prototype`'s assembly and
  /// cached symbolic factorization instead of recomputing the min-degree
  /// ordering and analysis. `network` must be structurally identical to
  /// prototype.network() (same node/link counts, fixed-head pattern and
  /// link endpoints — checked); attribute differences (demands, emitter
  /// coefficients, roughness) are fine because values are re-evaluated
  /// every solve. This is what lets a per-thread solver pool share one
  /// symbolic factorization per network.
  GgaSolver(const Network& network, const GgaSolver& prototype);

  /// Solves a snapshot. `demands` is per-node (junction entries used)
  /// [m^3/s]; `fixed_heads` is per-node and consulted only for
  /// reservoir/tank nodes [m]. `warm_start` (optional) seeds heads and
  /// flows from a previous solution.
  HydraulicState solve(const std::vector<double>& demands, const std::vector<double>& fixed_heads,
                       const HydraulicState* warm_start = nullptr) const;

  /// Convenience: demands from base demands at pattern period 0 and fixed
  /// heads from node data (tank head = elevation + init level).
  HydraulicState solve_snapshot() const;

  const Network& network() const noexcept { return network_; }
  const SolverOptions& options() const noexcept { return options_; }

 private:
  struct Assembly {
    std::vector<std::size_t> row_of_node;  // kFixed for fixed-head nodes
    std::vector<NodeId> node_of_row;
    linalg::CsrMatrix pattern;              // SPD pattern with zero values
    // Per link: value-array slots for the four stamp positions
    // (from,from), (to,to), (from,to), (to,from); kNoSlot where the
    // endpoint is fixed-head.
    std::vector<std::array<std::size_t, 4>> link_slots;
    std::vector<std::size_t> diag_slot;  // per row
  };

  /// Per-solve scratch, sized once at construction and reused across all
  /// solve() calls of an EPS run or scenario batch.
  struct Workspace {
    linalg::CsrMatrix matrix;  // assembly pattern; values refilled per iteration
    std::vector<double> rhs;
    std::vector<double> solution;
    std::vector<double> prev_solution;
    std::vector<double> y, p;            // per-link GGA intermediates
    linalg::SparseLdlt factor;           // symbolic analysis cached here
    linalg::CgWorkspace cg;              // scratch for the CG fallback
  };

  static constexpr std::size_t kFixed = static_cast<std::size_t>(-1);
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  Assembly build_assembly() const;
  /// Inner linear solve of workspace matrix/rhs into workspace solution.
  /// Returns false (with a reason) instead of throwing so the Newton loop
  /// can surface divergence per SolverOptions::throw_on_divergence.
  bool solve_linear_system(std::string* why) const;

  const Network& network_;
  SolverOptions options_;
  Assembly assembly_;
  mutable Workspace workspace_;
};

}  // namespace aqua::hydraulics
