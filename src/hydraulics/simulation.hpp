// Extended-period simulation (EPS): steps the steady-state GGA solver
// through time, driving junction demands from diurnal patterns and
// integrating tank levels between steps. The hydraulic time step doubles
// as the IoT sampling interval (15 minutes in the paper, Sec. V-A), and
// leak events e = (l, s, t) are scheduled as emitters that activate at
// their starting time slot.
#pragma once

#include <cstddef>
#include <vector>

#include "hydraulics/network.hpp"
#include "hydraulics/solver.hpp"

namespace aqua::hydraulics {

struct SimulationOptions {
  double duration_s = 24.0 * 3600.0;
  double hydraulic_step_s = 900.0;  // 15 minutes, the paper's IoT slot
  double pattern_step_s = 3600.0;
  SolverOptions solver;
};

/// A leak event e = (l, s, t): location (junction), size (emitter
/// coefficient EC in Eq. 1) and starting time.
struct LeakEvent {
  NodeId node = 0;
  double coefficient = 0.0;  // e.s — "the greater EC the more severity"
  double exponent = 0.5;     // beta, 0.5 "for general purpose"
  double start_time_s = 0.0;  // e.t
};

/// Dense step-major time series produced by an EPS run.
class SimulationResults {
 public:
  SimulationResults(std::size_t num_steps, std::size_t num_nodes, std::size_t num_links);

  std::size_t num_steps() const noexcept { return times_.size(); }
  std::size_t num_nodes() const noexcept { return num_nodes_; }
  std::size_t num_links() const noexcept { return num_links_; }

  double time(std::size_t step) const { return times_.at(step); }
  const std::vector<double>& times() const noexcept { return times_; }

  double head(std::size_t step, NodeId node) const { return heads_[step * num_nodes_ + node]; }
  double pressure(std::size_t step, NodeId node) const {
    return pressures_[step * num_nodes_ + node];
  }
  double flow(std::size_t step, LinkId link) const { return flows_[step * num_links_ + link]; }
  double emitter_outflow(std::size_t step, NodeId node) const {
    return emitter_[step * num_nodes_ + node];
  }

  /// Step index of the sample at or immediately before `time_s`.
  std::size_t step_at(double time_s) const;

  /// Total leaked volume across the run [m^3] (trapezoidal in steps).
  double leaked_volume() const noexcept;

  // Writers used by the engine.
  void record(std::size_t step, double time_s, const HydraulicState& state);

 private:
  std::vector<double> times_;
  std::size_t num_nodes_;
  std::size_t num_links_;
  std::vector<double> heads_;
  std::vector<double> pressures_;
  std::vector<double> flows_;
  std::vector<double> emitter_;
  double step_s_ = 0.0;

  friend class Simulation;
};

/// Extended-period simulation engine. Owns a copy of the network so leak
/// scheduling never mutates the caller's model.
class Simulation {
 public:
  Simulation(Network network, SimulationOptions options = {});

  /// Schedules a leak; multiple events may target different nodes with the
  /// same start time (the paper's concurrent multi-failure case).
  void schedule_leak(const LeakEvent& event);
  void schedule_leaks(const std::vector<LeakEvent>& events);

  const Network& network() const noexcept { return network_; }
  const SimulationOptions& options() const noexcept { return options_; }
  std::size_t num_steps() const noexcept;

  /// Runs the EPS and returns recorded time series. Repeatable: each call
  /// restarts from initial tank levels.
  SimulationResults run();

 private:
  Network network_;
  SimulationOptions options_;
  std::vector<LeakEvent> events_;
};

}  // namespace aqua::hydraulics
