// Extended-period simulation (EPS): steps the steady-state GGA solver
// through time, driving junction demands from diurnal patterns and
// integrating tank levels between steps. The hydraulic time step doubles
// as the IoT sampling interval (15 minutes in the paper, Sec. V-A), and
// leak events e = (l, s, t) are scheduled as emitters that activate at
// their starting time slot. Beyond the paper's instantaneous constant-EC
// break, the stepper injects the scenario-diversity variants (DESIGN.md
// §15): ramping-EC leaks, timed pump-outage / valve-closure windows,
// demand surges, and tank-drawdown starts.
//
// Because tank integration is explicit Euler and the GGA warm start only
// reads the previous step's heads and flows, the hydraulic state at step k
// is a pure function of (tank levels entering k, state at k-1, absolute
// time). The replay engine (hydraulics/replay.hpp) exploits this to resume
// a run mid-trajectory with bit-identical results.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "hydraulics/network.hpp"
#include "hydraulics/solver.hpp"

namespace aqua::hydraulics {

class BaselineTrajectory;  // hydraulics/replay.hpp

struct SimulationOptions {
  double duration_s = 24.0 * 3600.0;
  double hydraulic_step_s = 900.0;  // 15 minutes, the paper's IoT slot
  double pattern_step_s = 3600.0;
  SolverOptions solver;
};

/// A leak event e = (l, s, t): location (junction), size (emitter
/// coefficient EC in Eq. 1) and starting time. `ramp_s > 0` makes the
/// leak grow instead of appearing at full size: the EC rises linearly
/// from 0 at `start_time_s` to `coefficient` at `start_time_s + ramp_s`
/// (a corrosion pinhole opening up, vs. the paper's instantaneous break).
struct LeakEvent {
  NodeId node = 0;
  double coefficient = 0.0;  // e.s — "the greater EC the more severity"
  double exponent = 0.5;     // beta, 0.5 "for general purpose"
  double start_time_s = 0.0;  // e.t
  double ramp_s = 0.0;        // 0 = constant-EC (the paper's model)

  /// Effective EC at absolute time `time_s`; monotone non-decreasing in
  /// time, so stepping engines can apply it as a max-so-far update.
  double coefficient_at(double time_s) const noexcept {
    if (time_s < start_time_s) return 0.0;
    if (ramp_s <= 0.0) return coefficient;
    const double fraction = (time_s - start_time_s) / ramp_s;
    return fraction >= 1.0 ? coefficient : coefficient * fraction;
  }
};

/// A timed operational event: the link is forced to LinkStatus::kClosed
/// while `start_time_s <= t < end_time_s` and restored to its base status
/// outside the window — a pump outage (link is a pump) or a valve/gate
/// closure (valve or pipe). Overlapping events on one link compose as
/// "closed while any window is active".
struct OperationalEvent {
  LinkId link = 0;
  double start_time_s = 0.0;
  double end_time_s = 0.0;  // exclusive; must exceed start_time_s
};

/// A demand surge: the node's pattern-driven demand is multiplied by
/// `multiplier` while `start_time_s <= t < end_time_s` (main flushing, a
/// hydrant opening, an industrial draw). Multiple events on one node
/// compose multiplicatively.
struct DemandEvent {
  NodeId node = 0;
  double multiplier = 1.0;  // > 0
  double start_time_s = 0.0;
  double end_time_s = 0.0;  // exclusive; must exceed start_time_s
};

/// Dense step-major time series produced by an EPS run. A results object
/// may cover only a tail window of the horizon (replay): `start_step()` is
/// the absolute step index of row 0, all per-step accessors take indices
/// relative to it, and `times()` stay absolute.
class SimulationResults {
 public:
  SimulationResults(std::size_t num_steps, std::size_t num_nodes, std::size_t num_links,
                    std::size_t start_step = 0);

  std::size_t num_steps() const noexcept { return times_.size(); }
  std::size_t num_nodes() const noexcept { return num_nodes_; }
  std::size_t num_links() const noexcept { return num_links_; }
  /// Absolute step index of the first recorded row (0 for full runs).
  std::size_t start_step() const noexcept { return start_step_; }

  double time(std::size_t step) const { return times_.at(step); }
  const std::vector<double>& times() const noexcept { return times_; }

  double head(std::size_t step, NodeId node) const { return heads_[step * num_nodes_ + node]; }
  double pressure(std::size_t step, NodeId node) const {
    return pressures_[step * num_nodes_ + node];
  }
  double flow(std::size_t step, LinkId link) const { return flows_[step * num_links_ + link]; }
  double emitter_outflow(std::size_t step, NodeId node) const {
    return emitter_[step * num_nodes_ + node];
  }
  /// Sum of emitter outflows over all nodes at one step [m^3/s] (cached at
  /// record() time).
  double emitter_total(std::size_t step) const { return emitter_total_.at(step); }

  std::span<const double> heads_at(std::size_t step) const {
    return {heads_.data() + step * num_nodes_, num_nodes_};
  }
  std::span<const double> flows_at(std::size_t step) const {
    return {flows_.data() + step * num_links_, num_links_};
  }

  /// Step index of the sample at or immediately before `time_s`.
  std::size_t step_at(double time_s) const;

  /// Total leaked volume across the run [m^3] (trapezoidal in steps).
  double leaked_volume() const noexcept;

  /// Newton iterations (== inner linear solves) summed over all recorded
  /// steps — the unit the perf benches track.
  std::size_t total_linear_solves() const noexcept { return total_linear_solves_; }

  // Writers used by the engine; `step` is relative to start_step().
  void record(std::size_t step, double time_s, const HydraulicState& state);

 private:
  std::vector<double> times_;
  std::size_t num_nodes_;
  std::size_t num_links_;
  std::size_t start_step_ = 0;
  std::vector<double> heads_;
  std::vector<double> pressures_;
  std::vector<double> flows_;
  std::vector<double> emitter_;
  std::vector<double> emitter_total_;  // per step, filled by record()
  std::size_t total_linear_solves_ = 0;
  double step_s_ = 0.0;

  friend class Simulation;
  friend class BaselineTrajectory;
  friend class ReplayEngine;
};

/// Low-level EPS stepping core shared by Simulation::run, the baseline
/// recorder and the scenario replayer. Advancing one step activates due
/// leaks, solves the snapshot, then integrates tank levels — exactly the
/// arithmetic of a full run, so a stepper resumed from a checkpoint
/// reproduces the tail of that run bit for bit.
class EpsStepper {
 public:
  /// Binds to a network (mutated: emitter activation), a solver built for
  /// it, and the leak schedule. All referents must outlive the stepper.
  EpsStepper(Network& network, const GgaSolver& solver, const SimulationOptions& options,
             std::span<const LeakEvent> events);

  /// Replaces the leak schedule (used by engines that replay many
  /// scenarios through one stepper). Call before start()/resume().
  void set_events(std::span<const LeakEvent> events) noexcept { events_ = events; }

  /// Replaces the operational-event schedule. Links closed by the previous
  /// schedule are restored to their base status immediately, so swapping
  /// schedules between scenarios never leaks a closure. Call before
  /// start()/resume().
  void set_operations(std::span<const OperationalEvent> operations);

  /// Replaces the demand-event schedule. Call before start()/resume().
  void set_demand_events(std::span<const DemandEvent> demands) noexcept {
    demand_events_ = demands;
  }

  /// Scales every tank's initial level at start() (tank-drawdown starts;
  /// levels clamp to [min_level, max_level]). 1.0 — the default — is the
  /// paper's baseline and is bit-identical to the pre-variant behavior.
  /// resume() rejects scales != 1.0: the checkpoint was recorded with
  /// baseline initial levels, so a scaled start invalidates it.
  void set_tank_init_scale(double scale);

  /// Positions at absolute step 0 with initial tank levels, no warm start,
  /// and all emitters cleared.
  void start();

  /// Positions at absolute step `step` from a checkpoint: per-node tank
  /// levels entering the step and the hydraulic state of step-1 (warm
  /// start). Emitters are cleared; events re-activate as time reaches them,
  /// so every scheduled event must start at or after the resume time.
  void resume(std::size_t step, std::span<const double> tank_level, HydraulicState previous);

  /// Solves the current step and integrates tank levels across it.
  /// The returned reference is valid until the next advance().
  const HydraulicState& advance();

  /// Absolute index of the next step advance() will solve.
  std::size_t next_step() const noexcept { return next_step_; }
  /// Current time of the next step [s].
  double next_time() const noexcept {
    return static_cast<double>(next_step_) * options_.hydraulic_step_s;
  }
  /// Per-node tank levels entering the next step (junction entries are 0).
  const std::vector<double>& tank_levels() const noexcept { return tank_level_; }

 private:
  struct TankLinks {
    NodeId node;
    double area;
    std::vector<std::pair<LinkId, double>> links;  // link id, inflow sign
  };

  /// Restores every link named by the current operational schedule to its
  /// base (construction-time) status.
  void restore_operational_status();

  Network& network_;
  const GgaSolver& solver_;
  const SimulationOptions& options_;
  std::span<const LeakEvent> events_;
  std::span<const OperationalEvent> operations_;
  std::span<const DemandEvent> demand_events_;
  std::vector<LinkStatus> base_status_;  // per link, captured at construction
  double tank_init_scale_ = 1.0;
  std::vector<TankLinks> tanks_;
  std::vector<double> tank_level_;  // per node, entering next_step_
  std::vector<double> demands_, fixed_;
  HydraulicState previous_;
  bool have_previous_ = false;
  std::size_t next_step_ = 0;
};

/// Extended-period simulation engine. Owns a copy of the network so leak
/// scheduling never mutates the caller's model.
class Simulation {
 public:
  Simulation(Network network, SimulationOptions options = {});

  /// Schedules a leak; multiple events may target different nodes with the
  /// same start time (the paper's concurrent multi-failure case).
  void schedule_leak(const LeakEvent& event);
  void schedule_leaks(const std::vector<LeakEvent>& events);

  /// Schedules a pump outage / valve closure window on any link.
  void schedule_operation(const OperationalEvent& event);
  void schedule_operations(const std::vector<OperationalEvent>& events);

  /// Schedules a demand-surge window on a junction.
  void schedule_demand_event(const DemandEvent& event);
  void schedule_demand_events(const std::vector<DemandEvent>& events);

  /// Tank-drawdown start: scales every tank's initial level (see
  /// EpsStepper::set_tank_init_scale). run_from() rejects scales != 1.0.
  void set_tank_init_scale(double scale);

  const Network& network() const noexcept { return network_; }
  const SimulationOptions& options() const noexcept { return options_; }
  const std::vector<LeakEvent>& events() const noexcept { return events_; }
  const std::vector<OperationalEvent>& operations() const noexcept { return operations_; }
  const std::vector<DemandEvent>& demand_events() const noexcept { return demand_events_; }
  double tank_init_scale() const noexcept { return tank_init_scale_; }
  std::size_t num_steps() const noexcept;

  /// Runs the EPS and returns recorded time series. Repeatable: each call
  /// restarts from initial tank levels.
  SimulationResults run();

  /// Resumes from the baseline's checkpoint at `resume_step` and simulates
  /// only steps [resume_step, num_steps()), bit-identical to the same tail
  /// of run(). The baseline must share this simulation's step sizes and
  /// network structure, cover at least step resume_step - 1, and every
  /// scheduled leak must start at or after the resume time (earlier events
  /// would have perturbed the checkpoint itself). Defined in replay.cpp.
  SimulationResults run_from(const BaselineTrajectory& baseline, std::size_t resume_step);

 private:
  Network network_;
  SimulationOptions options_;
  std::vector<LeakEvent> events_;
  std::vector<OperationalEvent> operations_;
  std::vector<DemandEvent> demand_events_;
  double tank_init_scale_ = 1.0;
};

}  // namespace aqua::hydraulics
