// Water distribution network model — the data half of "EPANET++", the
// paper's enhanced hydraulic simulator. A network consists of nodes
// (junctions with demands, fixed-head reservoirs, storage tanks) connected
// by links (pipes with Hazen-Williams head loss, pumps with power-law
// curves, throttle valves). Junctions can carry *emitters* — the paper's
// leak model Q = EC * p^beta (Eq. 1) — which discharge to atmosphere as a
// function of local pressure head.
//
// Units are SI throughout: lengths/heads in meters, diameters in meters,
// flows in cubic meters per second (helpers accept liters per second),
// time in seconds.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace aqua::hydraulics {

using NodeId = std::size_t;
using LinkId = std::size_t;

enum class NodeType { kJunction, kReservoir, kTank };
enum class LinkType { kPipe, kPump, kValve };
enum class LinkStatus { kOpen, kClosed };

/// Time-varying multiplier pattern (e.g. diurnal demand). Values repeat
/// cyclically; `value_at(t)` uses the pattern step configured on the
/// network (piecewise constant, as in EPANET).
struct Pattern {
  std::string name;
  std::vector<double> multipliers;  // must be non-empty, values >= 0

  double value(std::size_t period) const noexcept {
    return multipliers.empty() ? 1.0 : multipliers[period % multipliers.size()];
  }
};

/// Power-law pump head curve: head gain = h0 - r * q^w for q >= 0
/// (EPANET's one-point/three-point curve form). h0 is the shutoff head.
struct PumpCurve {
  double shutoff_head = 0.0;  // h0 [m]
  double coefficient = 0.0;   // r
  double exponent = 2.0;      // w (> 0)

  double head_gain(double flow) const noexcept;
  double gradient(double flow) const noexcept;  // d(head loss)/dq, > 0
};

struct Node {
  NodeType type = NodeType::kJunction;
  std::string name;
  double elevation = 0.0;  // [m]; for reservoirs this is the fixed head
  double x = 0.0, y = 0.0;  // planar coordinates [m] (used for tweets/DEM)

  // Junction-only fields.
  double base_demand = 0.0;        // [m^3/s]
  int demand_pattern = -1;         // index into Network patterns, -1 = constant
  double emitter_coefficient = 0.0;  // EC in Eq. 1; 0 = no leak
  double emitter_exponent = 0.5;     // beta in Eq. 1

  // Tank-only fields (level measured above `elevation`).
  double init_level = 0.0;  // [m]
  double min_level = 0.0;   // [m]
  double max_level = 0.0;   // [m]
  double diameter = 0.0;    // [m] (cylindrical tank)

  bool has_fixed_head() const noexcept { return type != NodeType::kJunction; }
};

struct Link {
  LinkType type = LinkType::kPipe;
  std::string name;
  NodeId from = 0;
  NodeId to = 0;
  LinkStatus status = LinkStatus::kOpen;

  // Pipe fields.
  double length = 0.0;     // [m]
  double diameter = 0.0;   // [m]
  double roughness = 100.0;  // Hazen-Williams C
  double minor_loss = 0.0;   // dimensionless K

  // Pump fields.
  PumpCurve pump;

  // Valve fields (modeled as a throttle valve: setting = loss coefficient;
  // larger settings throttle harder, status kClosed shuts the line).
  double valve_setting = 0.0;
};

/// The network container. Construction is by the add_* builders; all
/// lookups by name are O(1). Indices are stable once added.
class Network {
 public:
  explicit Network(std::string name = "network");

  const std::string& name() const noexcept { return name_; }

  // --- Builders -----------------------------------------------------------
  NodeId add_junction(const std::string& name, double elevation, double base_demand_lps = 0.0,
                      int pattern = -1, double x = 0.0, double y = 0.0);
  NodeId add_reservoir(const std::string& name, double head, double x = 0.0, double y = 0.0);
  NodeId add_tank(const std::string& name, double elevation, double init_level, double min_level,
                  double max_level, double diameter, double x = 0.0, double y = 0.0);
  LinkId add_pipe(const std::string& name, NodeId from, NodeId to, double length, double diameter,
                  double roughness, LinkStatus status = LinkStatus::kOpen);
  LinkId add_pump(const std::string& name, NodeId from, NodeId to, const PumpCurve& curve);
  LinkId add_valve(const std::string& name, NodeId from, NodeId to, double diameter,
                   double setting = 0.0);
  /// Registers a demand pattern; returns its index.
  int add_pattern(Pattern pattern);

  // --- Access -------------------------------------------------------------
  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  std::size_t num_links() const noexcept { return links_.size(); }
  std::size_t num_junctions() const noexcept;
  std::size_t count_nodes(NodeType type) const noexcept;
  std::size_t count_links(LinkType type) const noexcept;

  const Node& node(NodeId id) const;
  Node& node(NodeId id);
  const Link& link(LinkId id) const;
  Link& link(LinkId id);
  std::span<const Node> nodes() const noexcept { return nodes_; }
  std::span<const Link> links() const noexcept { return links_; }

  NodeId node_id(const std::string& name) const;  // throws NotFound
  LinkId link_id(const std::string& name) const;  // throws NotFound
  std::optional<NodeId> find_node(const std::string& name) const noexcept;
  std::optional<LinkId> find_link(const std::string& name) const noexcept;

  const Pattern& pattern(int index) const;
  std::size_t num_patterns() const noexcept { return patterns_.size(); }

  // --- Leak modeling (the "++" in EPANET++) --------------------------------
  /// Installs/updates an emitter at a junction (EC in Eq. 1, in
  /// (m^3/s) / m^beta). EC = 0 removes the leak.
  void set_emitter(NodeId node, double coefficient, double exponent = 0.5);
  /// Removes all emitters (resets the network to a healthy state).
  void clear_emitters();
  /// Junction ids currently carrying an emitter.
  std::vector<NodeId> leaky_nodes() const;

  // --- Topology -----------------------------------------------------------
  /// Undirected graph over nodes; edge weight = pipe length (pumps/valves
  /// get a nominal 1 m so distances remain well-defined).
  graph::Graph to_graph() const;

  /// Ids of junction nodes in index order (candidate leak locations —
  /// "the leak event is assumed to occur at node", Sec. III-B).
  std::vector<NodeId> junction_ids() const;

  /// Demand at a node for the given pattern period [m^3/s].
  double demand_at(NodeId node, std::size_t pattern_period) const;

  /// Basic validation: connectivity, at least one fixed-head source,
  /// positive pipe attributes. Throws InvalidArgument on violation.
  void validate() const;

 private:
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<Pattern> patterns_;
  std::unordered_map<std::string, NodeId> node_index_;
  std::unordered_map<std::string, LinkId> link_index_;

  NodeId add_node(Node node);
  LinkId add_link(Link link);
};

/// Converts liters/second to cubic meters/second.
constexpr double lps(double liters_per_second) noexcept { return liters_per_second / 1000.0; }

}  // namespace aqua::hydraulics
