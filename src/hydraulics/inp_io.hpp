// EPANET-INP-style text serialization of networks. The dialect covers the
// subset of EPANET's format this library models (junctions, reservoirs,
// tanks, pipes, pumps as power-law curves, throttle valves, patterns,
// emitters, coordinates) so networks can be exported for inspection and
// round-tripped in tests. Units in the file match the library (SI; demands
// are written in L/s as EPANET's LPS flow-unit convention).
#pragma once

#include <iosfwd>
#include <string>

#include "hydraulics/network.hpp"

namespace aqua::hydraulics {

/// Renders the network in the INP dialect.
std::string to_inp(const Network& network);
void write_inp(const Network& network, std::ostream& out);

/// Parses a network from the INP dialect; throws InvalidArgument on
/// malformed input (unknown section, bad arity, unknown node reference).
Network from_inp(const std::string& text);
Network read_inp(std::istream& in);

}  // namespace aqua::hydraulics
