#include "hydraulics/network.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace aqua::hydraulics {

double PumpCurve::head_gain(double flow) const noexcept {
  if (flow <= 0.0) return shutoff_head;
  return shutoff_head - coefficient * std::pow(flow, exponent);
}

double PumpCurve::gradient(double flow) const noexcept {
  // Gradient of the pump *head loss* (-head_gain) w.r.t. flow; positive.
  constexpr double kMinFlow = 1e-6;
  const double q = std::max(flow, kMinFlow);
  return std::max(coefficient * exponent * std::pow(q, exponent - 1.0), 1e-8);
}

Network::Network(std::string name) : name_(std::move(name)) {}

NodeId Network::add_node(Node node) {
  AQUA_REQUIRE(!node.name.empty(), "node name must be non-empty");
  AQUA_REQUIRE(node_index_.find(node.name) == node_index_.end(),
               "duplicate node name: " + node.name);
  const NodeId id = nodes_.size();
  node_index_.emplace(node.name, id);
  nodes_.push_back(std::move(node));
  return id;
}

LinkId Network::add_link(Link link) {
  AQUA_REQUIRE(!link.name.empty(), "link name must be non-empty");
  AQUA_REQUIRE(link_index_.find(link.name) == link_index_.end(),
               "duplicate link name: " + link.name);
  AQUA_REQUIRE(link.from < nodes_.size() && link.to < nodes_.size(),
               "link endpoint out of range");
  AQUA_REQUIRE(link.from != link.to, "self-loop links are not allowed");
  const LinkId id = links_.size();
  link_index_.emplace(link.name, id);
  links_.push_back(std::move(link));
  return id;
}

NodeId Network::add_junction(const std::string& name, double elevation, double base_demand_lps,
                             int pattern, double x, double y) {
  AQUA_REQUIRE(base_demand_lps >= 0.0, "junction demand must be non-negative");
  AQUA_REQUIRE(pattern == -1 || static_cast<std::size_t>(pattern) < patterns_.size(),
               "unknown demand pattern");
  Node n;
  n.type = NodeType::kJunction;
  n.name = name;
  n.elevation = elevation;
  n.base_demand = lps(base_demand_lps);
  n.demand_pattern = pattern;
  n.x = x;
  n.y = y;
  return add_node(std::move(n));
}

NodeId Network::add_reservoir(const std::string& name, double head, double x, double y) {
  Node n;
  n.type = NodeType::kReservoir;
  n.name = name;
  n.elevation = head;
  n.x = x;
  n.y = y;
  return add_node(std::move(n));
}

NodeId Network::add_tank(const std::string& name, double elevation, double init_level,
                         double min_level, double max_level, double diameter, double x, double y) {
  AQUA_REQUIRE(diameter > 0.0, "tank diameter must be positive");
  AQUA_REQUIRE(min_level <= init_level && init_level <= max_level,
               "tank levels must satisfy min <= init <= max");
  Node n;
  n.type = NodeType::kTank;
  n.name = name;
  n.elevation = elevation;
  n.init_level = init_level;
  n.min_level = min_level;
  n.max_level = max_level;
  n.diameter = diameter;
  n.x = x;
  n.y = y;
  return add_node(std::move(n));
}

LinkId Network::add_pipe(const std::string& name, NodeId from, NodeId to, double length,
                         double diameter, double roughness, LinkStatus status) {
  AQUA_REQUIRE(length > 0.0, "pipe length must be positive");
  AQUA_REQUIRE(diameter > 0.0, "pipe diameter must be positive");
  AQUA_REQUIRE(roughness > 0.0, "pipe roughness must be positive");
  Link l;
  l.type = LinkType::kPipe;
  l.name = name;
  l.from = from;
  l.to = to;
  l.length = length;
  l.diameter = diameter;
  l.roughness = roughness;
  l.status = status;
  return add_link(std::move(l));
}

LinkId Network::add_pump(const std::string& name, NodeId from, NodeId to, const PumpCurve& curve) {
  AQUA_REQUIRE(curve.shutoff_head > 0.0, "pump shutoff head must be positive");
  AQUA_REQUIRE(curve.coefficient >= 0.0 && curve.exponent > 0.0, "pump curve must be decreasing");
  Link l;
  l.type = LinkType::kPump;
  l.name = name;
  l.from = from;
  l.to = to;
  l.pump = curve;
  l.length = 1.0;  // nominal for graph distance
  return add_link(std::move(l));
}

LinkId Network::add_valve(const std::string& name, NodeId from, NodeId to, double diameter,
                          double setting) {
  AQUA_REQUIRE(diameter > 0.0, "valve diameter must be positive");
  AQUA_REQUIRE(setting >= 0.0, "valve setting must be non-negative");
  Link l;
  l.type = LinkType::kValve;
  l.name = name;
  l.from = from;
  l.to = to;
  l.diameter = diameter;
  l.valve_setting = setting;
  l.length = 1.0;  // nominal for graph distance
  return add_link(std::move(l));
}

int Network::add_pattern(Pattern pattern) {
  AQUA_REQUIRE(!pattern.multipliers.empty(), "pattern must have at least one multiplier");
  for (double m : pattern.multipliers) {
    AQUA_REQUIRE(m >= 0.0, "pattern multipliers must be non-negative");
  }
  patterns_.push_back(std::move(pattern));
  return static_cast<int>(patterns_.size()) - 1;
}

std::size_t Network::num_junctions() const noexcept { return count_nodes(NodeType::kJunction); }

std::size_t Network::count_nodes(NodeType type) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(), [type](const Node& n) { return n.type == type; }));
}

std::size_t Network::count_links(LinkType type) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(links_.begin(), links_.end(), [type](const Link& l) { return l.type == type; }));
}

const Node& Network::node(NodeId id) const {
  AQUA_REQUIRE(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

Node& Network::node(NodeId id) {
  AQUA_REQUIRE(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

const Link& Network::link(LinkId id) const {
  AQUA_REQUIRE(id < links_.size(), "link id out of range");
  return links_[id];
}

Link& Network::link(LinkId id) {
  AQUA_REQUIRE(id < links_.size(), "link id out of range");
  return links_[id];
}

NodeId Network::node_id(const std::string& name) const {
  const auto it = node_index_.find(name);
  if (it == node_index_.end()) throw NotFound("unknown node: " + name);
  return it->second;
}

LinkId Network::link_id(const std::string& name) const {
  const auto it = link_index_.find(name);
  if (it == link_index_.end()) throw NotFound("unknown link: " + name);
  return it->second;
}

std::optional<NodeId> Network::find_node(const std::string& name) const noexcept {
  const auto it = node_index_.find(name);
  return it == node_index_.end() ? std::nullopt : std::optional<NodeId>(it->second);
}

std::optional<LinkId> Network::find_link(const std::string& name) const noexcept {
  const auto it = link_index_.find(name);
  return it == link_index_.end() ? std::nullopt : std::optional<LinkId>(it->second);
}

const Pattern& Network::pattern(int index) const {
  AQUA_REQUIRE(index >= 0 && static_cast<std::size_t>(index) < patterns_.size(),
               "pattern index out of range");
  return patterns_[static_cast<std::size_t>(index)];
}

void Network::set_emitter(NodeId node_id, double coefficient, double exponent) {
  Node& n = node(node_id);
  AQUA_REQUIRE(n.type == NodeType::kJunction, "emitters can only be installed at junctions");
  AQUA_REQUIRE(coefficient >= 0.0, "emitter coefficient must be non-negative");
  AQUA_REQUIRE(exponent > 0.0, "emitter exponent must be positive");
  n.emitter_coefficient = coefficient;
  n.emitter_exponent = exponent;
}

void Network::clear_emitters() {
  for (Node& n : nodes_) {
    n.emitter_coefficient = 0.0;
    n.emitter_exponent = 0.5;
  }
}

std::vector<NodeId> Network::leaky_nodes() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].emitter_coefficient > 0.0) out.push_back(id);
  }
  return out;
}

graph::Graph Network::to_graph() const {
  graph::Graph g(nodes_.size());
  for (const Link& l : links_) g.add_edge(l.from, l.to, l.length);
  return g;
}

std::vector<NodeId> Network::junction_ids() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].type == NodeType::kJunction) out.push_back(id);
  }
  return out;
}

double Network::demand_at(NodeId node_id, std::size_t pattern_period) const {
  const Node& n = node(node_id);
  if (n.type != NodeType::kJunction) return 0.0;
  const double multiplier =
      n.demand_pattern >= 0 ? pattern(n.demand_pattern).value(pattern_period) : 1.0;
  return n.base_demand * multiplier;
}

void Network::validate() const {
  AQUA_REQUIRE(!nodes_.empty(), "network has no nodes");
  AQUA_REQUIRE(!links_.empty(), "network has no links");
  bool has_source = false;
  for (const Node& n : nodes_) has_source = has_source || n.has_fixed_head();
  AQUA_REQUIRE(has_source, "network needs at least one reservoir or tank");
  AQUA_REQUIRE(to_graph().is_connected(), "network must be connected");
}

}  // namespace aqua::hydraulics
