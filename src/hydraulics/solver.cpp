#include "hydraulics/solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "linalg/solvers.hpp"

namespace aqua::hydraulics {
namespace {

/// CSR value-array index of entry (row, col); entries are column-sorted.
std::size_t csr_slot(const linalg::CsrMatrix& m, std::size_t row, std::size_t col) {
  const auto rp = m.row_pointers();
  const auto ci = m.column_indices();
  const auto begin = ci.begin() + static_cast<std::ptrdiff_t>(rp[row]);
  const auto end = ci.begin() + static_cast<std::ptrdiff_t>(rp[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  AQUA_REQUIRE(it != end && *it == col, "internal: missing CSR slot");
  return static_cast<std::size_t>(it - ci.begin());
}

/// Initial flow guess: pipes at 0.5 m/s design velocity, pumps at half of
/// their zero-head flow, valves at a nominal trickle.
double initial_flow(const Link& link) {
  switch (link.type) {
    case LinkType::kPipe:
    case LinkType::kValve: {
      const double area = 0.25 * 3.141592653589793 * link.diameter * link.diameter;
      return 0.5 * area;
    }
    case LinkType::kPump: {
      if (link.pump.coefficient <= 0.0) return 0.01;
      const double q_max =
          std::pow(link.pump.shutoff_head / link.pump.coefficient, 1.0 / link.pump.exponent);
      return 0.5 * q_max;
    }
  }
  return 0.01;
}

}  // namespace

double HydraulicState::total_emitter_outflow() const noexcept {
  double sum = 0.0;
  for (double q : emitter_outflow) sum += q;
  return sum;
}

namespace {

/// Maps a resolved LinearSolver choice onto its linalg backend.
linalg::LinearBackend backend_of(LinearSolver solver) {
  switch (solver) {
    case LinearSolver::kCholesky:
      return linalg::LinearBackend::kLdlt;
    case LinearSolver::kConjugateGradient:
      return linalg::LinearBackend::kJacobiCg;
    case LinearSolver::kIc0Cg:
      return linalg::LinearBackend::kIc0Cg;
    case LinearSolver::kAuto:
      break;
  }
  throw InvalidArgument("linear solver choice was not resolved");
}

}  // namespace

GgaSolver::GgaSolver(const Network& network, SolverOptions options)
    : network_(network), options_(options) {
  network_.validate();
  assembly_ = build_assembly();

  // Workspace: the one-and-only copy of the pattern plus every buffer the
  // Newton loop needs, so solve() is allocation-free in steady state.
  const std::size_t rows = assembly_.node_of_row.size();
  const std::size_t m = network_.num_links();
  workspace_.matrix = assembly_.pattern;
  workspace_.rhs.assign(rows, 0.0);
  workspace_.solution.assign(rows, 0.0);
  workspace_.prev_solution.assign(rows, 0.0);
  workspace_.y.assign(m, 0.0);
  workspace_.p.assign(m, 0.0);

  // kAuto: the direct factorization wins while its refactor cost (which
  // grows with fill) stays small; past the crossover the O(nnz)-refactor
  // IC(0)-CG backend takes over. Explicit choices pass through.
  resolved_solver_ = options_.linear_solver;
  if (resolved_solver_ == LinearSolver::kAuto) {
    resolved_solver_ = rows >= options_.auto_crossover_nodes ? LinearSolver::kIc0Cg
                                                             : LinearSolver::kCholesky;
  }
  // Symbolic setup (LDLT: minimum-degree ordering + elimination tree;
  // IC(0): lower-triangle pattern) happens once here; every Newton
  // iteration only refactors values.
  workspace_.system = linalg::make_linear_system(backend_of(resolved_solver_), options_.cg);
  workspace_.system->analyze(assembly_.pattern);
}

GgaSolver::GgaSolver(const Network& network, const GgaSolver& prototype)
    : network_(network),
      options_(prototype.options_),
      resolved_solver_(prototype.resolved_solver_),
      assembly_(prototype.assembly_) {
  const Workspace& proto_ws = prototype.workspace_;
  workspace_.matrix = proto_ws.matrix;
  workspace_.rhs = proto_ws.rhs;
  workspace_.solution = proto_ws.solution;
  workspace_.prev_solution = proto_ws.prev_solution;
  workspace_.y = proto_ws.y;
  workspace_.p = proto_ws.p;
  // The backend clone carries the prototype's symbolic analysis — the
  // point of this constructor: a per-thread solver pool computes one
  // ordering/pattern analysis per network.
  workspace_.system = proto_ws.system->clone();

  const Network& proto_net = prototype.network_;
  AQUA_REQUIRE(network_.num_nodes() == proto_net.num_nodes() &&
                   network_.num_links() == proto_net.num_links(),
               "prototype solver was built for a different network size");
  for (NodeId v = 0; v < network_.num_nodes(); ++v) {
    AQUA_REQUIRE(network_.node(v).has_fixed_head() == proto_net.node(v).has_fixed_head(),
                 "prototype solver was built for a different fixed-head pattern");
  }
  for (LinkId l = 0; l < network_.num_links(); ++l) {
    AQUA_REQUIRE(network_.link(l).from == proto_net.link(l).from &&
                     network_.link(l).to == proto_net.link(l).to,
                 "prototype solver was built for a different topology");
  }
}

bool GgaSolver::solve_linear_system(std::string* why) const {
  Workspace& ws = workspace_;
  // Warm start from the previous Newton iterate; direct backends simply
  // overwrite it.
  std::copy(ws.prev_solution.begin(), ws.prev_solution.end(), ws.solution.begin());
  try {
    ws.system->refactor_values(ws.matrix);
    const auto stats = ws.system->solve(ws.rhs, ws.solution);
    if (!stats.converged) {
      if (why != nullptr) {
        *why = std::string(ws.system->name()) + " did not converge (relative residual " +
               std::to_string(stats.relative_residual) + ")";
      }
      return false;
    }
  } catch (const SolverError& error) {
    if (why != nullptr) *why = error.what();
    return false;
  }
  return true;
}

void GgaSolver::probe_outflow_response(const HydraulicState& state,
                                       std::span<const NodeId> probes,
                                       std::vector<double>& head_response,
                                       std::vector<double>* flow_response) const {
  const std::size_t n = network_.num_nodes();
  const std::size_t m = network_.num_links();
  AQUA_REQUIRE(state.head.size() == n && state.flow.size() == m,
               "probe state does not match the network");

  // Refill the node Jacobian at `state`. Deliberately a separate stamping
  // loop from solve()'s: this one stamps only the gradient part (no RHS,
  // no y intermediates), because the probe solves J dh = -e_probe rather
  // than the GGA fixed-point system.
  Workspace& ws = workspace_;
  const std::size_t rows = assembly_.node_of_row.size();
  ws.matrix.zero_values();
  auto values = ws.matrix.values();
  for (LinkId l = 0; l < m; ++l) {
    const Link& link = network_.link(l);
    const LossGradient lg = link_loss(link, state.flow[l], options_.headloss);
    ws.p[l] = 1.0 / lg.gradient;
    const auto& slots = assembly_.link_slots[l];
    const std::size_t rf = assembly_.row_of_node[link.from];
    const std::size_t rt = assembly_.row_of_node[link.to];
    if (rf != kFixed) values[slots[0]] += ws.p[l];
    if (rt != kFixed) values[slots[1]] += ws.p[l];
    if (rf != kFixed && rt != kFixed) {
      values[slots[2]] -= ws.p[l];
      values[slots[3]] -= ws.p[l];
    }
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const NodeId v = assembly_.node_of_row[r];
    const Node& node = network_.node(v);
    if (node.emitter_coefficient > 0.0) {
      values[assembly_.diag_slot[r]] +=
          emitter_flow(node.emitter_coefficient, node.emitter_exponent,
                       state.head[v] - node.elevation)
              .gradient;
    }
  }
  ws.system->refactor_values(ws.matrix);

  // One blocked solve: RHS k is -e_{row(probe k)} (an extra unit of
  // outflow at the probe junction).
  const std::size_t nrhs = probes.size();
  std::vector<double> b(nrhs * rows, 0.0);
  std::vector<double> x(nrhs * rows, 0.0);
  for (std::size_t k = 0; k < nrhs; ++k) {
    AQUA_REQUIRE(probes[k] < n, "probe node out of range");
    const std::size_t r = assembly_.row_of_node[probes[k]];
    AQUA_REQUIRE(r != kFixed, "probe node must be a junction");
    b[k * rows + r] = -1.0;
  }
  const auto stats = ws.system->solve_block(b, x, nrhs);
  if (!stats.converged) {
    throw SolverError(std::string("probe_outflow_response: ") + ws.system->name() +
                      " did not converge (relative residual " +
                      std::to_string(stats.relative_residual) + ")");
  }

  head_response.assign(nrhs * n, 0.0);
  for (std::size_t k = 0; k < nrhs; ++k) {
    for (std::size_t r = 0; r < rows; ++r) {
      head_response[k * n + assembly_.node_of_row[r]] = x[k * rows + r];
    }
  }
  if (flow_response != nullptr) {
    flow_response->assign(nrhs * m, 0.0);
    for (std::size_t k = 0; k < nrhs; ++k) {
      const double* dh = head_response.data() + k * n;
      double* dq = flow_response->data() + k * m;
      for (LinkId l = 0; l < m; ++l) {
        const Link& link = network_.link(l);
        dq[l] = ws.p[l] * (dh[link.from] - dh[link.to]);
      }
    }
  }
}

GgaSolver::Assembly GgaSolver::build_assembly() const {
  Assembly assembly;
  const std::size_t n = network_.num_nodes();
  assembly.row_of_node.assign(n, kFixed);
  for (NodeId v = 0; v < n; ++v) {
    if (!network_.node(v).has_fixed_head()) {
      assembly.row_of_node[v] = assembly.node_of_row.size();
      assembly.node_of_row.push_back(v);
    }
  }
  const std::size_t rows = assembly.node_of_row.size();
  AQUA_REQUIRE(rows > 0, "network has no junctions to solve for");

  linalg::CooBuilder builder(rows);
  for (std::size_t r = 0; r < rows; ++r) builder.add(r, r, 0.0);
  for (const Link& link : network_.links()) {
    const std::size_t rf = assembly.row_of_node[link.from];
    const std::size_t rt = assembly.row_of_node[link.to];
    if (rf != kFixed && rt != kFixed) {
      builder.add(rf, rt, 0.0);
      builder.add(rt, rf, 0.0);
    }
  }
  assembly.pattern = builder.build();

  assembly.diag_slot.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) assembly.diag_slot[r] = csr_slot(assembly.pattern, r, r);

  assembly.link_slots.resize(network_.num_links());
  for (LinkId l = 0; l < network_.num_links(); ++l) {
    const Link& link = network_.link(l);
    const std::size_t rf = assembly.row_of_node[link.from];
    const std::size_t rt = assembly.row_of_node[link.to];
    auto& slots = assembly.link_slots[l];
    slots = {kNoSlot, kNoSlot, kNoSlot, kNoSlot};
    if (rf != kFixed) slots[0] = assembly.diag_slot[rf];
    if (rt != kFixed) slots[1] = assembly.diag_slot[rt];
    if (rf != kFixed && rt != kFixed) {
      slots[2] = csr_slot(assembly.pattern, rf, rt);
      slots[3] = csr_slot(assembly.pattern, rt, rf);
    }
  }
  return assembly;
}

HydraulicState GgaSolver::solve(const std::vector<double>& demands,
                                const std::vector<double>& fixed_heads,
                                const HydraulicState* warm_start) const {
  const std::size_t n = network_.num_nodes();
  const std::size_t m = network_.num_links();
  AQUA_REQUIRE(demands.size() == n, "demands must be per-node");
  AQUA_REQUIRE(fixed_heads.size() == n, "fixed_heads must be per-node");

  HydraulicState state;
  state.head.assign(n, 0.0);
  state.flow.assign(m, 0.0);
  state.emitter_outflow.assign(n, 0.0);

  // Initial heads: fixed nodes exact; junctions at the max source head
  // (a feasible starting point for pressurized operation).
  double max_fixed = 0.0;
  bool any_fixed = false;
  for (NodeId v = 0; v < n; ++v) {
    if (network_.node(v).has_fixed_head()) {
      max_fixed = any_fixed ? std::max(max_fixed, fixed_heads[v]) : fixed_heads[v];
      any_fixed = true;
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    state.head[v] = network_.node(v).has_fixed_head() ? fixed_heads[v] : max_fixed;
  }
  for (LinkId l = 0; l < m; ++l) state.flow[l] = initial_flow(network_.link(l));

  if (warm_start != nullptr && warm_start->head.size() == n && warm_start->flow.size() == m) {
    state.head = warm_start->head;
    state.flow = warm_start->flow;
    for (NodeId v = 0; v < n; ++v) {
      if (network_.node(v).has_fixed_head()) state.head[v] = fixed_heads[v];
    }
  }

  const std::size_t rows = assembly_.node_of_row.size();
  Workspace& ws = workspace_;
  std::vector<double>& rhs = ws.rhs;
  std::vector<double>& prev_solution = ws.prev_solution;
  std::vector<double>& y = ws.y;
  std::vector<double>& p = ws.p;
  for (std::size_t r = 0; r < rows; ++r) prev_solution[r] = state.head[assembly_.node_of_row[r]];

  for (std::size_t iter = 1; iter <= options_.max_iterations; ++iter) {
    state.iterations = iter;
    ws.matrix.zero_values();
    std::fill(rhs.begin(), rhs.end(), 0.0);
    auto values = ws.matrix.values();

    // Link stamps.
    for (LinkId l = 0; l < m; ++l) {
      const Link& link = network_.link(l);
      const LossGradient lg = link_loss(link, state.flow[l], options_.headloss);
      p[l] = 1.0 / lg.gradient;
      y[l] = state.flow[l] - lg.loss / lg.gradient;
      const auto& slots = assembly_.link_slots[l];
      const std::size_t rf = assembly_.row_of_node[link.from];
      const std::size_t rt = assembly_.row_of_node[link.to];
      if (rf != kFixed) {
        values[slots[0]] += p[l];
        // Row of `from`: s = -1 => RHS gets -y; fixed `to` head moves over.
        rhs[rf] -= y[l];
        if (rt == kFixed) rhs[rf] += p[l] * fixed_heads[link.to];
      }
      if (rt != kFixed) {
        values[slots[1]] += p[l];
        rhs[rt] += y[l];
        if (rf == kFixed) rhs[rt] += p[l] * fixed_heads[link.from];
      }
      if (rf != kFixed && rt != kFixed) {
        values[slots[2]] -= p[l];
        values[slots[3]] -= p[l];
      }
    }

    // Demand and emitter stamps.
    for (std::size_t r = 0; r < rows; ++r) {
      const NodeId v = assembly_.node_of_row[r];
      rhs[r] -= demands[v];
      const Node& node = network_.node(v);
      if (node.emitter_coefficient > 0.0) {
        const double pressure = state.head[v] - node.elevation;
        const EmitterFlow ef =
            emitter_flow(node.emitter_coefficient, node.emitter_exponent, pressure);
        values[assembly_.diag_slot[r]] += ef.gradient;
        rhs[r] += -ef.flow + ef.gradient * state.head[v];
      }
    }

    std::string why;
    if (!solve_linear_system(&why)) {
      if (options_.throw_on_divergence) {
        throw SolverError("GGA: inner linear solve failed (" + why + ")");
      }
      return state;
    }
    // Past a grace period the iteration is under-relaxed on BOTH heads and
    // flows: networks near hydraulic limits (large concurrent leaks)
    // otherwise fall into a period-2 limit cycle because the emitter and
    // head-loss linearizations keep leapfrogging the solution.
    // The deepest stage only engages past iteration 200, so any scenario
    // that converged under the old 200-iteration budget performs exactly
    // the same iterates; the extended budget and 0.05 stage only rescue
    // the rare near-limit snapshots (a handful per 20k-scenario corpus)
    // whose limit cycle survives 0.1.
    const double relaxation =
        iter <= 8 ? 1.0
                  : (iter <= 20 ? 0.5 : (iter <= 60 ? 0.25 : (iter <= 200 ? 0.1 : 0.05)));
    for (std::size_t r = 0; r < rows; ++r) {
      const NodeId v = assembly_.node_of_row[r];
      state.head[v] += relaxation * (ws.solution[r] - state.head[v]);
      prev_solution[r] = state.head[v];
    }

    double flow_change = 0.0;
    double flow_total = 0.0;
    // The worst-link diagnostic is captured here, *before* state.flow is
    // overwritten, so the reported dq is the change actually applied this
    // iteration (recomputing it afterwards always reads ~0).
    double worst_dq = 0.0;
    LinkId worst = 0;
    for (LinkId l = 0; l < m; ++l) {
      const Link& link = network_.link(l);
      const double candidate = y[l] + p[l] * (state.head[link.from] - state.head[link.to]);
      const double new_flow = state.flow[l] + relaxation * (candidate - state.flow[l]);
      const double dq = std::abs(new_flow - state.flow[l]);
      flow_change += dq;
      flow_total += std::abs(new_flow);
      if (dq > worst_dq) {
        worst_dq = dq;
        worst = l;
      }
      state.flow[l] = new_flow;
    }
    if (options_.trace) {
      const Link& wl = network_.link(worst);
      std::fprintf(stderr,
                   "gga iter %zu: ratio=%.3e worst=%s dq=%.4g q=%.4g h_from=%.2f h_to=%.2f\n",
                   iter, flow_total > 0 ? flow_change / flow_total : -1.0, wl.name.c_str(),
                   worst_dq, state.flow[worst], state.head[wl.from], state.head[wl.to]);
    }
    // Relative flow-change criterion with an absolute floor so all-zero
    // demand snapshots (flow_total ~ 0) converge instead of dividing by 0.
    if (flow_change < options_.accuracy * std::max(flow_total, 1e-6)) {
      state.converged = true;
      break;
    }
  }

  if (!state.converged && options_.throw_on_divergence) {
    throw SolverError("GGA failed to converge in " + std::to_string(options_.max_iterations) +
                      " iterations on network '" + network_.name() + "'");
  }

  state.pressure.assign(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    const Node& node = network_.node(v);
    state.pressure[v] = node.has_fixed_head() ? 0.0 : state.head[v] - node.elevation;
    if (node.emitter_coefficient > 0.0) {
      state.emitter_outflow[v] =
          emitter_flow(node.emitter_coefficient, node.emitter_exponent,
                       state.head[v] - node.elevation)
              .flow;
    }
  }
  return state;
}

HydraulicState GgaSolver::solve_snapshot() const {
  const std::size_t n = network_.num_nodes();
  std::vector<double> demands(n, 0.0), fixed(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    const Node& node = network_.node(v);
    demands[v] = network_.demand_at(v, 0);
    if (node.type == NodeType::kReservoir) fixed[v] = node.elevation;
    if (node.type == NodeType::kTank) fixed[v] = node.elevation + node.init_level;
  }
  return solve(demands, fixed);
}

}  // namespace aqua::hydraulics
