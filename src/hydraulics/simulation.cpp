#include "hydraulics/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace aqua::hydraulics {

SimulationResults::SimulationResults(std::size_t num_steps, std::size_t num_nodes,
                                     std::size_t num_links)
    : times_(num_steps, 0.0),
      num_nodes_(num_nodes),
      num_links_(num_links),
      heads_(num_steps * num_nodes, 0.0),
      pressures_(num_steps * num_nodes, 0.0),
      flows_(num_steps * num_links, 0.0),
      emitter_(num_steps * num_nodes, 0.0) {}

std::size_t SimulationResults::step_at(double time_s) const {
  AQUA_REQUIRE(!times_.empty(), "no recorded steps");
  const auto it = std::upper_bound(times_.begin(), times_.end(), time_s);
  if (it == times_.begin()) return 0;
  return static_cast<std::size_t>(it - times_.begin()) - 1;
}

double SimulationResults::leaked_volume() const noexcept {
  if (times_.size() < 2) return 0.0;
  double volume = 0.0;
  for (std::size_t s = 0; s + 1 < times_.size(); ++s) {
    double rate_now = 0.0, rate_next = 0.0;
    for (std::size_t v = 0; v < num_nodes_; ++v) {
      rate_now += emitter_[s * num_nodes_ + v];
      rate_next += emitter_[(s + 1) * num_nodes_ + v];
    }
    volume += 0.5 * (rate_now + rate_next) * (times_[s + 1] - times_[s]);
  }
  return volume;
}

void SimulationResults::record(std::size_t step, double time_s, const HydraulicState& state) {
  times_[step] = time_s;
  std::copy(state.head.begin(), state.head.end(), heads_.begin() + step * num_nodes_);
  std::copy(state.pressure.begin(), state.pressure.end(),
            pressures_.begin() + step * num_nodes_);
  std::copy(state.flow.begin(), state.flow.end(), flows_.begin() + step * num_links_);
  std::copy(state.emitter_outflow.begin(), state.emitter_outflow.end(),
            emitter_.begin() + step * num_nodes_);
}

Simulation::Simulation(Network network, SimulationOptions options)
    : network_(std::move(network)), options_(options) {
  AQUA_REQUIRE(options_.duration_s > 0.0, "duration must be positive");
  AQUA_REQUIRE(options_.hydraulic_step_s > 0.0, "hydraulic step must be positive");
  AQUA_REQUIRE(options_.pattern_step_s > 0.0, "pattern step must be positive");
  network_.validate();
  network_.clear_emitters();
}

void Simulation::schedule_leak(const LeakEvent& event) {
  const Node& node = network_.node(event.node);
  AQUA_REQUIRE(node.type == NodeType::kJunction, "leaks occur at junctions");
  AQUA_REQUIRE(event.coefficient > 0.0, "leak coefficient must be positive");
  AQUA_REQUIRE(event.start_time_s >= 0.0, "leak start time must be non-negative");
  events_.push_back(event);
}

void Simulation::schedule_leaks(const std::vector<LeakEvent>& events) {
  for (const auto& e : events) schedule_leak(e);
}

std::size_t Simulation::num_steps() const noexcept {
  return static_cast<std::size_t>(options_.duration_s / options_.hydraulic_step_s) + 1;
}

SimulationResults Simulation::run() {
  network_.clear_emitters();
  const std::size_t n = network_.num_nodes();
  const std::size_t steps = num_steps();

  GgaSolver solver(network_, options_.solver);
  SimulationResults results(steps, n, network_.num_links());
  results.step_s_ = options_.hydraulic_step_s;

  // Tank state: level above tank elevation, starting from init_level.
  std::vector<double> tank_level(n, 0.0);
  // Tank-incident links, gathered once: integrating levels by scanning all
  // links for every node each step is O(nodes * links) per step.
  struct TankLinks {
    NodeId node;
    double area;
    std::vector<std::pair<LinkId, double>> links;  // link id, inflow sign
  };
  std::vector<TankLinks> tanks;
  for (NodeId v = 0; v < n; ++v) {
    const Node& node = network_.node(v);
    if (node.type != NodeType::kTank) continue;
    tank_level[v] = node.init_level;
    const double area = 0.25 * 3.141592653589793 * node.diameter * node.diameter;
    tanks.push_back({v, area, {}});
  }
  for (LinkId l = 0; l < network_.num_links(); ++l) {
    const Link& link = network_.link(l);
    for (auto& tank : tanks) {
      if (link.to == tank.node) tank.links.emplace_back(l, 1.0);
      if (link.from == tank.node) tank.links.emplace_back(l, -1.0);
    }
  }

  std::vector<double> demands(n, 0.0), fixed(n, 0.0);
  HydraulicState previous;
  bool have_previous = false;

  for (std::size_t step = 0; step < steps; ++step) {
    const double t = static_cast<double>(step) * options_.hydraulic_step_s;

    // Activate scheduled leaks whose start time has arrived; emitters stay
    // active for the rest of the run (a broken pipe does not heal itself).
    for (const LeakEvent& event : events_) {
      if (event.start_time_s <= t &&
          network_.node(event.node).emitter_coefficient < event.coefficient) {
        network_.set_emitter(event.node, event.coefficient, event.exponent);
      }
    }

    const auto period = static_cast<std::size_t>(t / options_.pattern_step_s);
    for (NodeId v = 0; v < n; ++v) {
      const Node& node = network_.node(v);
      demands[v] = network_.demand_at(v, period);
      if (node.type == NodeType::kReservoir) fixed[v] = node.elevation;
      if (node.type == NodeType::kTank) fixed[v] = node.elevation + tank_level[v];
    }

    const HydraulicState state =
        solver.solve(demands, fixed, have_previous ? &previous : nullptr);
    results.record(step, t, state);

    // Integrate tank levels over the step (explicit Euler, clamped).
    if (step + 1 < steps) {
      for (const auto& tank : tanks) {
        double net_inflow = 0.0;
        for (const auto& [l, sign] : tank.links) net_inflow += sign * state.flow[l];
        const Node& node = network_.node(tank.node);
        tank_level[tank.node] += net_inflow * options_.hydraulic_step_s / tank.area;
        tank_level[tank.node] = std::clamp(tank_level[tank.node], node.min_level, node.max_level);
      }
    }

    previous = state;
    have_previous = true;
  }
  return results;
}

}  // namespace aqua::hydraulics
