#include "hydraulics/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace aqua::hydraulics {

SimulationResults::SimulationResults(std::size_t num_steps, std::size_t num_nodes,
                                     std::size_t num_links, std::size_t start_step)
    : times_(num_steps, 0.0),
      num_nodes_(num_nodes),
      num_links_(num_links),
      start_step_(start_step),
      heads_(num_steps * num_nodes, 0.0),
      pressures_(num_steps * num_nodes, 0.0),
      flows_(num_steps * num_links, 0.0),
      emitter_(num_steps * num_nodes, 0.0),
      emitter_total_(num_steps, 0.0) {}

std::size_t SimulationResults::step_at(double time_s) const {
  AQUA_REQUIRE(!times_.empty(), "no recorded steps");
  const auto it = std::upper_bound(times_.begin(), times_.end(), time_s);
  if (it == times_.begin()) return 0;
  return static_cast<std::size_t>(it - times_.begin()) - 1;
}

double SimulationResults::leaked_volume() const noexcept {
  if (times_.size() < 2) return 0.0;
  double volume = 0.0;
  for (std::size_t s = 0; s + 1 < times_.size(); ++s) {
    volume += 0.5 * (emitter_total_[s] + emitter_total_[s + 1]) * (times_[s + 1] - times_[s]);
  }
  return volume;
}

void SimulationResults::record(std::size_t step, double time_s, const HydraulicState& state) {
  times_[step] = time_s;
  std::copy(state.head.begin(), state.head.end(), heads_.begin() + step * num_nodes_);
  std::copy(state.pressure.begin(), state.pressure.end(),
            pressures_.begin() + step * num_nodes_);
  std::copy(state.flow.begin(), state.flow.end(), flows_.begin() + step * num_links_);
  std::copy(state.emitter_outflow.begin(), state.emitter_outflow.end(),
            emitter_.begin() + step * num_nodes_);
  double total = 0.0;
  for (double q : state.emitter_outflow) total += q;
  emitter_total_[step] = total;
  total_linear_solves_ += state.iterations;
}

EpsStepper::EpsStepper(Network& network, const GgaSolver& solver,
                       const SimulationOptions& options, std::span<const LeakEvent> events)
    : network_(network), solver_(solver), options_(options), events_(events) {
  const std::size_t n = network_.num_nodes();
  tank_level_.assign(n, 0.0);
  demands_.assign(n, 0.0);
  fixed_.assign(n, 0.0);

  // Base link statuses, so operational closures are reversible: a link
  // inside no active window always reads its construction-time status.
  base_status_.reserve(network_.num_links());
  for (LinkId l = 0; l < network_.num_links(); ++l) {
    base_status_.push_back(network_.link(l).status);
  }

  // Tank-incident links, gathered once: integrating levels by scanning all
  // links for every node each step is O(nodes * links) per step.
  for (NodeId v = 0; v < n; ++v) {
    const Node& node = network_.node(v);
    if (node.type != NodeType::kTank) continue;
    const double area = 0.25 * 3.141592653589793 * node.diameter * node.diameter;
    tanks_.push_back({v, area, {}});
  }
  for (LinkId l = 0; l < network_.num_links(); ++l) {
    const Link& link = network_.link(l);
    for (auto& tank : tanks_) {
      if (link.to == tank.node) tank.links.emplace_back(l, 1.0);
      if (link.from == tank.node) tank.links.emplace_back(l, -1.0);
    }
  }
}

void EpsStepper::restore_operational_status() {
  for (const OperationalEvent& op : operations_) {
    network_.link(op.link).status = base_status_[op.link];
  }
}

void EpsStepper::set_operations(std::span<const OperationalEvent> operations) {
  // Undo the outgoing schedule's closures before it becomes unreachable;
  // otherwise a link closed by scenario k would stay closed in scenario
  // k + 1 even though k + 1 never mentions it.
  restore_operational_status();
  operations_ = operations;
}

void EpsStepper::set_tank_init_scale(double scale) {
  AQUA_REQUIRE(scale > 0.0, "tank init scale must be positive");
  tank_init_scale_ = scale;
}

void EpsStepper::start() {
  network_.clear_emitters();
  restore_operational_status();
  std::fill(tank_level_.begin(), tank_level_.end(), 0.0);
  for (const auto& tank : tanks_) {
    const Node& node = network_.node(tank.node);
    double level = node.init_level;
    // Only the non-default path touches the arithmetic: scale 1.0 must be
    // bit-identical to the pre-variant engine, clamp included.
    if (tank_init_scale_ != 1.0) {
      level = std::clamp(level * tank_init_scale_, node.min_level, node.max_level);
    }
    tank_level_[tank.node] = level;
  }
  have_previous_ = false;
  next_step_ = 0;
}

void EpsStepper::resume(std::size_t step, std::span<const double> tank_level,
                        HydraulicState previous) {
  AQUA_REQUIRE(step >= 1, "resume requires a predecessor step for the warm start");
  AQUA_REQUIRE(tank_level.size() == network_.num_nodes(), "tank levels must be per-node");
  AQUA_REQUIRE(previous.head.size() == network_.num_nodes() &&
                   previous.flow.size() == network_.num_links(),
               "warm-start state does not match the network");
  const double resume_time = static_cast<double>(step) * options_.hydraulic_step_s;
  for (const LeakEvent& event : events_) {
    AQUA_REQUIRE(event.start_time_s >= resume_time - 1e-9,
                 "cannot resume after a leak already started: the checkpoint would be stale");
  }
  for (const OperationalEvent& op : operations_) {
    AQUA_REQUIRE(op.start_time_s >= resume_time - 1e-9,
                 "cannot resume after an operational event started: the checkpoint would be stale");
  }
  for (const DemandEvent& event : demand_events_) {
    AQUA_REQUIRE(event.start_time_s >= resume_time - 1e-9,
                 "cannot resume after a demand event started: the checkpoint would be stale");
  }
  AQUA_REQUIRE(tank_init_scale_ == 1.0,
               "tank-drawdown starts change step 0: no baseline checkpoint is valid");
  network_.clear_emitters();
  restore_operational_status();
  std::copy(tank_level.begin(), tank_level.end(), tank_level_.begin());
  previous_ = std::move(previous);
  have_previous_ = true;
  next_step_ = step;
}

const HydraulicState& EpsStepper::advance() {
  const std::size_t n = network_.num_nodes();
  const double t = static_cast<double>(next_step_) * options_.hydraulic_step_s;

  // Activate scheduled leaks whose start time has arrived; emitters stay
  // active for the rest of the run (a broken pipe does not heal itself).
  // coefficient_at() is monotone non-decreasing, so ramping leaks re-stamp
  // a larger EC each step and constant leaks stamp once, exactly as before.
  for (const LeakEvent& event : events_) {
    const double coefficient = event.coefficient_at(t);
    if (network_.node(event.node).emitter_coefficient < coefficient) {
      network_.set_emitter(event.node, coefficient, event.exponent);
    }
  }

  // Operational windows: reset every affected link to its base status,
  // then close the ones inside an active window, so overlapping windows
  // compose and expired windows reopen their link.
  if (!operations_.empty()) {
    restore_operational_status();
    for (const OperationalEvent& op : operations_) {
      if (op.start_time_s <= t && t < op.end_time_s) {
        network_.link(op.link).status = LinkStatus::kClosed;
      }
    }
  }

  const auto period = static_cast<std::size_t>(t / options_.pattern_step_s);
  for (NodeId v = 0; v < n; ++v) {
    const Node& node = network_.node(v);
    demands_[v] = network_.demand_at(v, period);
    if (node.type == NodeType::kReservoir) fixed_[v] = node.elevation;
    if (node.type == NodeType::kTank) fixed_[v] = node.elevation + tank_level_[v];
  }
  for (const DemandEvent& event : demand_events_) {
    if (event.start_time_s <= t && t < event.end_time_s) {
      demands_[event.node] *= event.multiplier;
    }
  }

  HydraulicState state = solver_.solve(demands_, fixed_, have_previous_ ? &previous_ : nullptr);

  // Integrate tank levels over the step (explicit Euler, clamped). The
  // integrated levels feed the *next* step, so doing this unconditionally
  // (full runs skip it after the last step) cannot change recorded values.
  for (const auto& tank : tanks_) {
    double net_inflow = 0.0;
    for (const auto& [l, sign] : tank.links) net_inflow += sign * state.flow[l];
    const Node& node = network_.node(tank.node);
    tank_level_[tank.node] += net_inflow * options_.hydraulic_step_s / tank.area;
    tank_level_[tank.node] = std::clamp(tank_level_[tank.node], node.min_level, node.max_level);
  }

  previous_ = std::move(state);
  have_previous_ = true;
  ++next_step_;
  return previous_;
}

Simulation::Simulation(Network network, SimulationOptions options)
    : network_(std::move(network)), options_(options) {
  AQUA_REQUIRE(options_.duration_s > 0.0, "duration must be positive");
  AQUA_REQUIRE(options_.hydraulic_step_s > 0.0, "hydraulic step must be positive");
  AQUA_REQUIRE(options_.pattern_step_s > 0.0, "pattern step must be positive");
  network_.validate();
  network_.clear_emitters();
}

void Simulation::schedule_leak(const LeakEvent& event) {
  const Node& node = network_.node(event.node);
  AQUA_REQUIRE(node.type == NodeType::kJunction, "leaks occur at junctions");
  AQUA_REQUIRE(event.coefficient > 0.0, "leak coefficient must be positive");
  AQUA_REQUIRE(event.start_time_s >= 0.0, "leak start time must be non-negative");
  AQUA_REQUIRE(event.ramp_s >= 0.0, "leak ramp must be non-negative");
  events_.push_back(event);
}

void Simulation::schedule_leaks(const std::vector<LeakEvent>& events) {
  for (const auto& e : events) schedule_leak(e);
}

void Simulation::schedule_operation(const OperationalEvent& event) {
  AQUA_REQUIRE(event.link < network_.num_links(), "operational event names an unknown link");
  AQUA_REQUIRE(event.start_time_s >= 0.0, "operational start time must be non-negative");
  AQUA_REQUIRE(event.end_time_s > event.start_time_s, "operational window must be non-empty");
  operations_.push_back(event);
}

void Simulation::schedule_operations(const std::vector<OperationalEvent>& events) {
  for (const auto& e : events) schedule_operation(e);
}

void Simulation::schedule_demand_event(const DemandEvent& event) {
  AQUA_REQUIRE(event.node < network_.num_nodes() &&
                   network_.node(event.node).type == NodeType::kJunction,
               "demand events target junctions");
  AQUA_REQUIRE(event.multiplier > 0.0, "demand multiplier must be positive");
  AQUA_REQUIRE(event.start_time_s >= 0.0, "demand-event start time must be non-negative");
  AQUA_REQUIRE(event.end_time_s > event.start_time_s, "demand-event window must be non-empty");
  demand_events_.push_back(event);
}

void Simulation::schedule_demand_events(const std::vector<DemandEvent>& events) {
  for (const auto& e : events) schedule_demand_event(e);
}

void Simulation::set_tank_init_scale(double scale) {
  AQUA_REQUIRE(scale > 0.0, "tank init scale must be positive");
  tank_init_scale_ = scale;
}

std::size_t Simulation::num_steps() const noexcept {
  // floor() of the raw quotient silently drops the final step whenever an
  // exact multiple lands at k - ulp (e.g. 0.3 / 0.1 == 2.999...96); the
  // epsilon absorbs that representation error without admitting genuinely
  // short horizons.
  const double quotient = options_.duration_s / options_.hydraulic_step_s;
  return static_cast<std::size_t>(std::floor(quotient + 1e-9)) + 1;
}

SimulationResults Simulation::run() {
  network_.clear_emitters();
  const std::size_t steps = num_steps();

  GgaSolver solver(network_, options_.solver);
  SimulationResults results(steps, network_.num_nodes(), network_.num_links());
  results.step_s_ = options_.hydraulic_step_s;

  EpsStepper stepper(network_, solver, options_, events_);
  stepper.set_operations(operations_);
  stepper.set_demand_events(demand_events_);
  stepper.set_tank_init_scale(tank_init_scale_);
  stepper.start();
  for (std::size_t step = 0; step < steps; ++step) {
    const double t = stepper.next_time();
    results.record(step, t, stepper.advance());
  }
  return results;
}

}  // namespace aqua::hydraulics
