#include "hydraulics/replay.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace aqua::hydraulics {
namespace {

Network healthy_copy(const Network& network) {
  Network copy = network;
  copy.validate();
  copy.clear_emitters();
  return copy;
}

}  // namespace

BaselineTrajectory::BaselineTrajectory(const Network& network, SimulationOptions options,
                                       std::size_t last_step)
    : network_(healthy_copy(network)),
      options_(options),
      last_step_(last_step),
      solver_(network_, options_.solver),
      results_(last_step + 1, network_.num_nodes(), network_.num_links()) {
  AQUA_REQUIRE(options_.hydraulic_step_s > 0.0, "hydraulic step must be positive");
  AQUA_REQUIRE(options_.pattern_step_s > 0.0, "pattern step must be positive");
  results_.step_s_ = options_.hydraulic_step_s;

  const std::size_t n = network_.num_nodes();
  tank_levels_.assign((last_step_ + 2) * n, 0.0);

  EpsStepper stepper(network_, solver_, options_, {});
  stepper.start();
  for (std::size_t step = 0; step <= last_step_; ++step) {
    std::copy(stepper.tank_levels().begin(), stepper.tank_levels().end(),
              tank_levels_.begin() + step * n);
    const double t = stepper.next_time();
    results_.record(step, t, stepper.advance());
  }
  // Levels entering step last_step + 1, so a resume immediately after the
  // recorded horizon (the common "leak starts at last_step + 1" layout)
  // still has its checkpoint.
  std::copy(stepper.tank_levels().begin(), stepper.tank_levels().end(),
            tank_levels_.begin() + (last_step_ + 1) * n);
}

std::span<const double> BaselineTrajectory::tank_levels_entering(std::size_t step) const {
  AQUA_REQUIRE(step <= last_step_ + 1, "step beyond the recorded baseline");
  const std::size_t n = network_.num_nodes();
  return {tank_levels_.data() + step * n, n};
}

HydraulicState BaselineTrajectory::state_at(std::size_t step) const {
  AQUA_REQUIRE(step <= last_step_, "step beyond the recorded baseline");
  HydraulicState state;
  const auto heads = results_.heads_at(step);
  const auto flows = results_.flows_at(step);
  state.head.assign(heads.begin(), heads.end());
  state.flow.assign(flows.begin(), flows.end());
  state.converged = true;
  return state;
}

ReplayEngine::ReplayEngine(const BaselineTrajectory& baseline)
    : baseline_(baseline),
      network_(baseline.network()),
      solver_(network_, baseline.solver()),
      stepper_(network_, solver_, baseline_.options(), {}) {}

SimulationResults ReplayEngine::replay(std::span<const LeakEvent> events,
                                       std::size_t resume_step, std::size_t num_steps) {
  return replay(ScenarioDynamics{events, {}, {}}, resume_step, num_steps);
}

SimulationResults ReplayEngine::replay(const ScenarioDynamics& dynamics,
                                       std::size_t resume_step, std::size_t num_steps) {
  AQUA_REQUIRE(num_steps > 0, "replay needs at least one step");
  AQUA_REQUIRE(baseline_.covers_resume_at(resume_step),
               "resume step not covered by the baseline trajectory");

  SimulationResults results(num_steps, network_.num_nodes(), network_.num_links(), resume_step);
  results.step_s_ = baseline_.options().hydraulic_step_s;

  stepper_.set_events(dynamics.leaks);
  stepper_.set_operations(dynamics.operations);
  stepper_.set_demand_events(dynamics.demands);
  stepper_.resume(resume_step, baseline_.tank_levels_entering(resume_step),
                  baseline_.state_at(resume_step - 1));
  for (std::size_t step = 0; step < num_steps; ++step) {
    const double t = stepper_.next_time();
    results.record(step, t, stepper_.advance());
  }
  return results;
}

SimulationResults Simulation::run_from(const BaselineTrajectory& baseline,
                                       std::size_t resume_step) {
  const std::size_t steps = num_steps();
  AQUA_REQUIRE(resume_step >= 1 && resume_step < steps,
               "resume step must lie inside the simulation horizon");
  AQUA_REQUIRE(baseline.covers_resume_at(resume_step),
               "resume step not covered by the baseline trajectory");
  AQUA_REQUIRE(baseline.options().hydraulic_step_s == options_.hydraulic_step_s &&
                   baseline.options().pattern_step_s == options_.pattern_step_s,
               "baseline step sizes disagree with this simulation");
  AQUA_REQUIRE(baseline.network().num_nodes() == network_.num_nodes() &&
                   baseline.network().num_links() == network_.num_links(),
               "baseline network does not match this simulation's network");

  network_.clear_emitters();
  GgaSolver solver(network_, options_.solver);
  SimulationResults results(steps - resume_step, network_.num_nodes(), network_.num_links(),
                            resume_step);
  results.step_s_ = options_.hydraulic_step_s;

  EpsStepper stepper(network_, solver, options_, events_);
  stepper.set_operations(operations_);
  stepper.set_demand_events(demand_events_);
  stepper.set_tank_init_scale(tank_init_scale_);
  stepper.resume(resume_step, baseline.tank_levels_entering(resume_step),
                 baseline.state_at(resume_step - 1));
  for (std::size_t step = 0; step + resume_step < steps; ++step) {
    const double t = stepper.next_time();
    results.record(step, t, stepper.advance());
  }
  return results;
}

}  // namespace aqua::hydraulics
