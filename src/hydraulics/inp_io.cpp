#include "hydraulics/inp_io.hpp"

#include <cmath>
#include <iomanip>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace aqua::hydraulics {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

std::string strip_comment(const std::string& line) {
  const auto pos = line.find(';');
  return pos == std::string::npos ? line : line.substr(0, pos);
}

double parse_double(const std::string& token, const std::string& context) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(token, &consumed);
    AQUA_REQUIRE(consumed == token.size(), "trailing characters in number");
    return value;
  } catch (const InvalidArgument&) {
    throw;
  } catch (const std::exception&) {
    throw InvalidArgument("INP: bad number '" + token + "' in " + context);
  }
}

/// Strict integer field (e.g. a pattern index). Routing these through
/// parse_double and casting would make "nan"/"inf"/1e300 undefined
/// behavior (float-to-int conversion of an unrepresentable value), so
/// integers get their own parser with an explicit range check.
int parse_int(const std::string& token, const std::string& context) {
  try {
    std::size_t consumed = 0;
    const long long value = std::stoll(token, &consumed);
    AQUA_REQUIRE(consumed == token.size(), "trailing characters in integer");
    AQUA_REQUIRE(value >= std::numeric_limits<int>::min() &&
                     value <= std::numeric_limits<int>::max(),
                 "integer out of range");
    return static_cast<int>(value);
  } catch (const InvalidArgument&) {
    throw;
  } catch (const std::exception&) {
    throw InvalidArgument("INP: bad integer '" + token + "' in " + context);
  }
}

/// The section headers this reader understands. A malformed or unknown
/// header is an error rather than a silently dropped section: a typo like
/// [JUNCTION] would otherwise produce an empty network that only fails
/// much later (or not at all).
const std::set<std::string>& known_sections() {
  static const std::set<std::string> sections = {
      "[TITLE]", "[JUNCTIONS]", "[RESERVOIRS]", "[TANKS]",    "[PIPES]",       "[PUMPS]",
      "[VALVES]", "[PATTERNS]",  "[EMITTERS]",   "[COORDINATES]", "[END]"};
  return sections;
}

}  // namespace

std::string to_inp(const Network& network) {
  std::ostringstream out;
  write_inp(network, out);
  return out.str();
}

void write_inp(const Network& network, std::ostream& out) {
  out << std::setprecision(12);
  out << "[TITLE]\n" << network.name() << "\n\n";

  out << "[JUNCTIONS]\n;id elevation demand_lps pattern\n";
  for (const Node& n : network.nodes()) {
    if (n.type != NodeType::kJunction) continue;
    out << n.name << ' ' << n.elevation << ' ' << n.base_demand * 1000.0 << ' '
        << n.demand_pattern << "\n";
  }
  out << "\n[RESERVOIRS]\n;id head\n";
  for (const Node& n : network.nodes()) {
    if (n.type != NodeType::kReservoir) continue;
    out << n.name << ' ' << n.elevation << "\n";
  }
  out << "\n[TANKS]\n;id elevation init min max diameter\n";
  for (const Node& n : network.nodes()) {
    if (n.type != NodeType::kTank) continue;
    out << n.name << ' ' << n.elevation << ' ' << n.init_level << ' ' << n.min_level << ' '
        << n.max_level << ' ' << n.diameter << "\n";
  }
  out << "\n[PIPES]\n;id from to length diameter roughness status\n";
  for (const Link& l : network.links()) {
    if (l.type != LinkType::kPipe) continue;
    out << l.name << ' ' << network.node(l.from).name << ' ' << network.node(l.to).name << ' '
        << l.length << ' ' << l.diameter << ' ' << l.roughness << ' '
        << (l.status == LinkStatus::kOpen ? "OPEN" : "CLOSED") << "\n";
  }
  out << "\n[PUMPS]\n;id from to shutoff_head coefficient exponent\n";
  for (const Link& l : network.links()) {
    if (l.type != LinkType::kPump) continue;
    out << l.name << ' ' << network.node(l.from).name << ' ' << network.node(l.to).name << ' '
        << l.pump.shutoff_head << ' ' << l.pump.coefficient << ' ' << l.pump.exponent << "\n";
  }
  out << "\n[VALVES]\n;id from to diameter setting\n";
  for (const Link& l : network.links()) {
    if (l.type != LinkType::kValve) continue;
    out << l.name << ' ' << network.node(l.from).name << ' ' << network.node(l.to).name << ' '
        << l.diameter << ' ' << l.valve_setting << "\n";
  }
  out << "\n[PATTERNS]\n;index multipliers...\n";
  for (std::size_t i = 0; i < network.num_patterns(); ++i) {
    const Pattern& p = network.pattern(static_cast<int>(i));
    out << i;
    for (double m : p.multipliers) out << ' ' << m;
    out << "\n";
  }
  out << "\n[EMITTERS]\n;node coefficient exponent\n";
  for (const Node& n : network.nodes()) {
    if (n.type == NodeType::kJunction && n.emitter_coefficient > 0.0) {
      out << n.name << ' ' << n.emitter_coefficient << ' ' << n.emitter_exponent << "\n";
    }
  }
  out << "\n[COORDINATES]\n;node x y\n";
  for (const Node& n : network.nodes()) {
    out << n.name << ' ' << n.x << ' ' << n.y << "\n";
  }
  out << "\n[END]\n";
}

Network from_inp(const std::string& text) {
  std::istringstream in(text);
  return read_inp(in);
}

Network read_inp(std::istream& in) {
  std::string title = "network";
  // Two-pass: gather section lines, then build in dependency order
  // (patterns before junctions, nodes before links, coordinates last).
  std::map<std::string, std::vector<std::vector<std::string>>> sections;
  std::vector<std::string> title_lines;

  std::string section;
  std::string line;
  while (std::getline(in, line)) {
    line = strip_comment(line);
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens.front().front() == '[') {
      if (tokens.size() != 1 || tokens.front().size() < 3 || tokens.front().back() != ']') {
        throw InvalidArgument("INP: malformed section header '" + line + "'");
      }
      if (known_sections().count(tokens.front()) == 0) {
        throw InvalidArgument("INP: unknown section header '" + tokens.front() + "'");
      }
      section = tokens.front();
      continue;
    }
    if (section == "[TITLE]") {
      title_lines.push_back(line);
      continue;
    }
    AQUA_REQUIRE(!section.empty(), "INP: content before any section header");
    AQUA_REQUIRE(section != "[END]", "INP: content after [END]");
    sections[section].push_back(tokens);
  }
  if (!title_lines.empty()) {
    // Preserve the first title line verbatim (minus leading whitespace).
    const auto& t = title_lines.front();
    const auto start = t.find_first_not_of(" \t");
    title = start == std::string::npos ? "network" : t.substr(start);
  }

  Network network(title);

  for (const auto& row : sections["[PATTERNS]"]) {
    AQUA_REQUIRE(row.size() >= 2, "INP: pattern needs index and at least one multiplier");
    Pattern p;
    p.name = row[0];
    for (std::size_t i = 1; i < row.size(); ++i) {
      p.multipliers.push_back(parse_double(row[i], "[PATTERNS]"));
    }
    network.add_pattern(std::move(p));
  }
  for (const auto& row : sections["[JUNCTIONS]"]) {
    AQUA_REQUIRE(row.size() == 4, "INP: junction row needs 4 fields");
    network.add_junction(row[0], parse_double(row[1], "[JUNCTIONS]"),
                         parse_double(row[2], "[JUNCTIONS]"),
                         parse_int(row[3], "[JUNCTIONS]"));
  }
  for (const auto& row : sections["[RESERVOIRS]"]) {
    AQUA_REQUIRE(row.size() == 2, "INP: reservoir row needs 2 fields");
    network.add_reservoir(row[0], parse_double(row[1], "[RESERVOIRS]"));
  }
  for (const auto& row : sections["[TANKS]"]) {
    AQUA_REQUIRE(row.size() == 6, "INP: tank row needs 6 fields");
    network.add_tank(row[0], parse_double(row[1], "[TANKS]"), parse_double(row[2], "[TANKS]"),
                     parse_double(row[3], "[TANKS]"), parse_double(row[4], "[TANKS]"),
                     parse_double(row[5], "[TANKS]"));
  }
  for (const auto& row : sections["[PIPES]"]) {
    AQUA_REQUIRE(row.size() == 7, "INP: pipe row needs 7 fields");
    const LinkId id = network.add_pipe(row[0], network.node_id(row[1]), network.node_id(row[2]),
                                       parse_double(row[3], "[PIPES]"),
                                       parse_double(row[4], "[PIPES]"),
                                       parse_double(row[5], "[PIPES]"));
    network.link(id).status = (row[6] == "CLOSED") ? LinkStatus::kClosed : LinkStatus::kOpen;
  }
  for (const auto& row : sections["[PUMPS]"]) {
    AQUA_REQUIRE(row.size() == 6, "INP: pump row needs 6 fields");
    PumpCurve curve{parse_double(row[3], "[PUMPS]"), parse_double(row[4], "[PUMPS]"),
                    parse_double(row[5], "[PUMPS]")};
    network.add_pump(row[0], network.node_id(row[1]), network.node_id(row[2]), curve);
  }
  for (const auto& row : sections["[VALVES]"]) {
    AQUA_REQUIRE(row.size() == 5, "INP: valve row needs 5 fields");
    network.add_valve(row[0], network.node_id(row[1]), network.node_id(row[2]),
                      parse_double(row[3], "[VALVES]"), parse_double(row[4], "[VALVES]"));
  }
  for (const auto& row : sections["[EMITTERS]"]) {
    AQUA_REQUIRE(row.size() == 3, "INP: emitter row needs 3 fields");
    network.set_emitter(network.node_id(row[0]), parse_double(row[1], "[EMITTERS]"),
                        parse_double(row[2], "[EMITTERS]"));
  }
  for (const auto& row : sections["[COORDINATES]"]) {
    AQUA_REQUIRE(row.size() == 3, "INP: coordinate row needs 3 fields");
    Node& node = network.node(network.node_id(row[0]));
    node.x = parse_double(row[1], "[COORDINATES]");
    node.y = parse_double(row[2], "[COORDINATES]");
  }
  return network;
}

}  // namespace aqua::hydraulics
