// Checkpointed scenario replay. Phase I batches simulate thousands of leak
// scenarios that all share one pre-leak trajectory: every step before the
// leak slot is the identical no-leak baseline. BaselineTrajectory runs
// that baseline once, recording per-step hydraulic state and tank levels
// as resumable checkpoints; ReplayEngine then restores the checkpoint at a
// scenario's leak slot and simulates only the post-leak steps. Because
// tank integration is explicit Euler and the GGA warm start is a pure
// function of the previous step's heads/flows, the replayed tail is
// bit-identical to a full run — asserted, not approximate (tests/
// test_replay.cpp). Per-scenario cost drops from O(leak_slot + elapsed)
// hydraulic solves to O(elapsed + 1).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "hydraulics/network.hpp"
#include "hydraulics/simulation.hpp"
#include "hydraulics/solver.hpp"

namespace aqua::hydraulics {

/// The no-leak baseline of one network under one set of simulation
/// options, run once through steps [0, last_step] and checkpointed so any
/// later step can be resumed exactly. Immutable after construction and
/// safe to share across threads.
class BaselineTrajectory {
 public:
  /// Simulates the healthy network (emitters cleared) for `last_step + 1`
  /// steps, recording results plus the tank levels entering every step in
  /// [0, last_step + 1] — so a resume at any step <= last_step + 1 has its
  /// checkpoint available.
  BaselineTrajectory(const Network& network, SimulationOptions options, std::size_t last_step);

  const Network& network() const noexcept { return network_; }
  const SimulationOptions& options() const noexcept { return options_; }
  std::size_t last_step() const noexcept { return last_step_; }

  /// Baseline time series for steps [0, last_step] — also the pre-leak
  /// rows of every scenario that shares these options.
  const SimulationResults& results() const noexcept { return results_; }

  /// The solver whose symbolic factorization (min-degree ordering +
  /// elimination tree) replay engines clone instead of recomputing.
  const GgaSolver& solver() const noexcept { return solver_; }

  /// Per-node tank levels entering `step` (step <= last_step + 1).
  std::span<const double> tank_levels_entering(std::size_t step) const;

  /// Warm-start state at `step` (heads + flows copied from the recorded
  /// baseline; step <= last_step).
  HydraulicState state_at(std::size_t step) const;

  /// True when a resume at `step` has both its checkpoint halves: tank
  /// levels entering `step` and the state of `step - 1`.
  bool covers_resume_at(std::size_t step) const noexcept {
    return step >= 1 && step <= last_step_ + 1;
  }

 private:
  Network network_;  // healthy private copy (emitters cleared)
  SimulationOptions options_;
  std::size_t last_step_;
  GgaSolver solver_;
  SimulationResults results_;
  std::vector<double> tank_levels_;  // (last_step + 2) x num_nodes, row-major
};

/// Everything a scenario injects into the hydraulic trajectory beyond the
/// healthy baseline: leaks (constant or ramping EC), pump-outage /
/// valve-closure windows, and demand surges. Tank-drawdown starts are
/// deliberately absent — they perturb step 0, so no baseline checkpoint is
/// valid and such scenarios must run full (Simulation::set_tank_init_scale
/// + Simulation::run).
struct ScenarioDynamics {
  std::span<const LeakEvent> leaks;
  std::span<const OperationalEvent> operations;
  std::span<const DemandEvent> demands;
};

/// Replays leak scenarios against a shared baseline. Each engine owns a
/// private network copy (leak emitters and operational closures are
/// engine-local state) and a solver cloned from the baseline's symbolic
/// factorization, so constructing one per worker thread costs no
/// ordering/analysis work and replay() never races: one engine per thread,
/// many scenarios per engine.
class ReplayEngine {
 public:
  explicit ReplayEngine(const BaselineTrajectory& baseline);

  const BaselineTrajectory& baseline() const noexcept { return baseline_; }

  /// Resumes the baseline at `resume_step` with `events` scheduled and
  /// simulates `num_steps` steps, returning results whose start_step() is
  /// `resume_step`. Every event must start at or after the resume time.
  SimulationResults replay(std::span<const LeakEvent> events, std::size_t resume_step,
                           std::size_t num_steps);

  /// Variant-aware replay: leaks plus operational and demand events, all
  /// starting at or after the resume time (earlier events would have
  /// perturbed the checkpoint — use a full run for those scenarios).
  SimulationResults replay(const ScenarioDynamics& dynamics, std::size_t resume_step,
                           std::size_t num_steps);

 private:
  const BaselineTrajectory& baseline_;
  Network network_;  // private copy; replay() toggles its emitters
  GgaSolver solver_;
  EpsStepper stepper_;
};

}  // namespace aqua::hydraulics
