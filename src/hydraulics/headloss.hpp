// Head-loss models for pipes. EPANET's default — and ours — is
// Hazen-Williams; Darcy-Weisbach (Swamee-Jain friction factor) is provided
// as an alternative. Both are exposed as (loss, gradient) pairs evaluated
// at a signed flow, which is exactly what the Global Gradient Algorithm
// consumes each Newton iteration.
#pragma once

#include "hydraulics/network.hpp"

namespace aqua::hydraulics {

enum class HeadLossModel { kHazenWilliams, kDarcyWeisbach };

/// Head loss h(q) [m] and gradient dh/dq [s/m^2] of a link at signed flow
/// q [m^3/s]. h is odd in q; gradient is strictly positive (floored away
/// from zero so the GGA matrix stays SPD near q = 0).
struct LossGradient {
  double loss = 0.0;
  double gradient = 0.0;
};

/// Hazen-Williams resistance coefficient r such that h = r * q^1.852
/// (SI units; r = 10.667 L / (C^1.852 d^4.871)).
double hazen_williams_resistance(double length_m, double diameter_m, double roughness_c);

/// Darcy-Weisbach resistance using the Swamee-Jain explicit friction
/// factor at a reference Reynolds number (fixed-point free approximation
/// adequate for distribution mains; roughness here is in mm).
double darcy_weisbach_resistance(double length_m, double diameter_m, double roughness_mm,
                                 double flow_m3s);

/// Evaluates loss and gradient for any link type:
///  - open pipe:   h = (r + m) |q|^(n-1) q with n = 1.852 (HW)
///  - pump:        h = -(h0 - r q^w), restricted to forward flow
///  - valve:       minor-loss element from setting; closed = huge resistance
///  - closed link: linear with a very large resistance (keeps the system
///    nonsingular without re-assembling the sparsity pattern)
LossGradient link_loss(const Link& link, double flow, HeadLossModel model);

/// Emitter (leak) outflow Q = EC * max(p, 0)^beta and its gradient w.r.t.
/// head. A quadratic smoothing below `p_smooth` keeps the Jacobian
/// continuous as pressure crosses zero.
struct EmitterFlow {
  double flow = 0.0;      // [m^3/s]
  double gradient = 0.0;  // d(flow)/d(head) [m^2/s]
};
EmitterFlow emitter_flow(double coefficient, double exponent, double pressure_head);

}  // namespace aqua::hydraulics
