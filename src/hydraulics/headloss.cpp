#include "hydraulics/headloss.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace aqua::hydraulics {
namespace {

constexpr double kHwExponent = 1.852;
// Flow magnitude below which the loss curve is linearized; EPANET uses a
// similar "RQtol" guard to keep gradients bounded near zero flow.
constexpr double kFlowEpsilon = 1e-6;
// Resistance assigned to closed links: high enough to make leak-through
// negligible, low enough to keep the matrix well-conditioned.
constexpr double kClosedResistance = 1e8;

double minor_loss_coefficient(double k, double diameter) {
  if (k <= 0.0 || diameter <= 0.0) return 0.0;
  // h_minor = K v^2 / 2g = m q^2 with m = 0.02517 K / d^4 (SI).
  return 0.02517 * k / std::pow(diameter, 4);
}

}  // namespace

double hazen_williams_resistance(double length_m, double diameter_m, double roughness_c) {
  AQUA_REQUIRE(length_m > 0.0 && diameter_m > 0.0 && roughness_c > 0.0,
               "hazen_williams_resistance: positive arguments required");
  return 10.667 * length_m / (std::pow(roughness_c, kHwExponent) * std::pow(diameter_m, 4.871));
}

double darcy_weisbach_resistance(double length_m, double diameter_m, double roughness_mm,
                                 double flow_m3s) {
  AQUA_REQUIRE(length_m > 0.0 && diameter_m > 0.0, "darcy_weisbach: positive geometry required");
  constexpr double kKinematicViscosity = 1.004e-6;  // water at 20 C [m^2/s]
  constexpr double kGravity = 9.80665;
  const double area = 0.25 * 3.141592653589793 * diameter_m * diameter_m;
  const double velocity = std::max(std::abs(flow_m3s), kFlowEpsilon) / area;
  const double reynolds = velocity * diameter_m / kKinematicViscosity;
  double friction = 0.0;
  if (reynolds < 2000.0) {
    friction = 64.0 / std::max(reynolds, 1.0);
  } else {
    const double rel_rough = (roughness_mm / 1000.0) / diameter_m;
    const double arg = rel_rough / 3.7 + 5.74 / std::pow(reynolds, 0.9);
    friction = 0.25 / std::pow(std::log10(arg), 2);
  }
  // h = f L/d * v^2/2g = r q^2.
  return friction * length_m / diameter_m / (2.0 * kGravity * area * area);
}

LossGradient link_loss(const Link& link, double flow, HeadLossModel model) {
  LossGradient out;
  if (link.status == LinkStatus::kClosed) {
    out.loss = kClosedResistance * flow;
    out.gradient = kClosedResistance;
    return out;
  }
  switch (link.type) {
    case LinkType::kPipe: {
      const double magnitude = std::abs(flow);
      if (model == HeadLossModel::kHazenWilliams) {
        const double r =
            hazen_williams_resistance(link.length, link.diameter, link.roughness);
        const double m = minor_loss_coefficient(link.minor_loss, link.diameter);
        if (magnitude < kFlowEpsilon) {
          // Linearized segment through the origin with the gradient at
          // q = kFlowEpsilon: keeps dh/dq bounded and continuous.
          const double g = kHwExponent * r * std::pow(kFlowEpsilon, kHwExponent - 1.0) +
                           2.0 * m * kFlowEpsilon;
          out.gradient = std::max(g, 1e-8);
          out.loss = out.gradient * flow;
        } else {
          const double friction = r * std::pow(magnitude, kHwExponent - 1.0);
          out.loss = (friction + m * magnitude) * flow;
          out.gradient = kHwExponent * friction + 2.0 * m * magnitude;
        }
      } else {
        const double r =
            darcy_weisbach_resistance(link.length, link.diameter, link.roughness, flow);
        const double m = minor_loss_coefficient(link.minor_loss, link.diameter);
        const double q = std::max(magnitude, kFlowEpsilon);
        out.loss = (r + m) * q * flow;
        out.gradient = 2.0 * (r + m) * q;
      }
      return out;
    }
    case LinkType::kPump: {
      // Head *loss* through a pump is the negative of its head gain.
      // Reverse flow through a pump is blocked by a steep linear penalty.
      if (flow < 0.0) {
        constexpr double kReversePenalty = 1e6;
        out.loss = -link.pump.shutoff_head + kReversePenalty * flow;
        out.gradient = kReversePenalty;
        return out;
      }
      out.loss = -link.pump.head_gain(flow);
      out.gradient = link.pump.gradient(flow);
      return out;
    }
    case LinkType::kValve: {
      // Throttle valve: base loss of a short equivalent pipe plus the
      // setting as a minor-loss coefficient.
      const double m = minor_loss_coefficient(std::max(link.valve_setting, 0.1), link.diameter);
      const double q = std::max(std::abs(flow), kFlowEpsilon);
      out.loss = m * q * flow;
      out.gradient = std::max(2.0 * m * q, 1e-6);
      return out;
    }
  }
  out.gradient = 1e-8;
  return out;
}

EmitterFlow emitter_flow(double coefficient, double exponent, double pressure_head) {
  EmitterFlow out;
  if (coefficient <= 0.0) return out;
  // Below kSmooth the power law is replaced by a C^1 cubic ramp
  // E = a p^2 + b p^3 matching E(kSmooth) and E'(kSmooth) with E(0) =
  // E'(0) = 0. The wide, continuously differentiable transition prevents
  // the on/off limit cycle Newton otherwise falls into when a leak node's
  // pressure hovers near zero (a known EPANET emitter pathology).
  constexpr double kSmooth = 1.0;  // [m]
  if (pressure_head <= 0.0) {
    out.flow = 0.0;
    out.gradient = 0.0;
    return out;
  }
  if (pressure_head < kSmooth) {
    const double q0 = coefficient * std::pow(kSmooth, exponent);
    const double s0 = coefficient * exponent * std::pow(kSmooth, exponent - 1.0);
    const double a = (3.0 * q0 - s0 * kSmooth) / (kSmooth * kSmooth);
    const double b = (s0 * kSmooth - 2.0 * q0) / (kSmooth * kSmooth * kSmooth);
    out.flow = (a + b * pressure_head) * pressure_head * pressure_head;
    out.gradient = (2.0 * a + 3.0 * b * pressure_head) * pressure_head;
    return out;
  }
  out.flow = coefficient * std::pow(pressure_head, exponent);
  out.gradient = coefficient * exponent * std::pow(pressure_head, exponent - 1.0);
  return out;
}

}  // namespace aqua::hydraulics
