// Undirected weighted multigraph used to represent water-network topology
// (vertices = pipe joints, edges = pipelines; edge weight = pipe length).
// The paper's distance notion — "the shortest path between two nodes,
// [where] the distance between two adjacent nodes is the length of the
// connection pipeline" (Sec. III-A) — is computed over this structure.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace aqua::graph {

using VertexId = std::size_t;
using EdgeId = std::size_t;

struct Edge {
  VertexId u = 0;
  VertexId v = 0;
  double weight = 1.0;
};

/// Undirected weighted multigraph with O(1) incidence lookups.
class Graph {
 public:
  explicit Graph(std::size_t num_vertices = 0);

  std::size_t num_vertices() const noexcept { return adjacency_.size(); }
  std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Adds an undirected edge; returns its id. Self-loops and parallel edges
  /// are allowed (real networks have parallel mains).
  EdgeId add_edge(VertexId u, VertexId v, double weight = 1.0);

  const Edge& edge(EdgeId id) const;

  struct Incidence {
    EdgeId edge;
    VertexId neighbor;
  };

  /// Edges incident to `v` with the opposite endpoint.
  std::span<const Incidence> neighbors(VertexId v) const;

  std::size_t degree(VertexId v) const;

  /// All edges in insertion order.
  std::span<const Edge> edges() const noexcept { return edges_; }

  /// Connected-component label per vertex (labels are 0..k-1 in discovery
  /// order) and the number of components.
  std::pair<std::vector<std::size_t>, std::size_t> connected_components() const;

  bool is_connected() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<Incidence>> adjacency_;
};

}  // namespace aqua::graph
