#include "graph/shortest_path.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"

namespace aqua::graph {

ShortestPaths dijkstra(const Graph& g, VertexId source) {
  AQUA_REQUIRE(source < g.num_vertices(), "dijkstra source out of range");
  ShortestPaths result;
  result.distance.assign(g.num_vertices(), kUnreachable);
  result.predecessor.resize(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) result.predecessor[v] = v;

  using Item = std::pair<double, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  result.distance[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [dist, v] = heap.top();
    heap.pop();
    if (dist > result.distance[v]) continue;  // stale entry
    for (const auto& inc : g.neighbors(v)) {
      const double candidate = dist + g.edge(inc.edge).weight;
      if (candidate < result.distance[inc.neighbor]) {
        result.distance[inc.neighbor] = candidate;
        result.predecessor[inc.neighbor] = v;
        heap.push({candidate, inc.neighbor});
      }
    }
  }
  return result;
}

std::vector<VertexId> extract_path(const ShortestPaths& paths, VertexId source, VertexId target) {
  AQUA_REQUIRE(target < paths.distance.size(), "target out of range");
  if (paths.distance[target] == kUnreachable) return {};
  std::vector<VertexId> path;
  VertexId v = target;
  path.push_back(v);
  while (v != source) {
    const VertexId pred = paths.predecessor[v];
    if (pred == v) return {};  // malformed: predecessor chain broken
    v = pred;
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::vector<double>> all_pairs_distances(const Graph& g) {
  std::vector<std::vector<double>> distances;
  distances.reserve(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    distances.push_back(dijkstra(g, v).distance);
  }
  return distances;
}

}  // namespace aqua::graph
