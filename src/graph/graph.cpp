#include "graph/graph.hpp"

#include <queue>

#include "common/error.hpp"

namespace aqua::graph {

Graph::Graph(std::size_t num_vertices) : adjacency_(num_vertices) {}

EdgeId Graph::add_edge(VertexId u, VertexId v, double weight) {
  AQUA_REQUIRE(u < num_vertices() && v < num_vertices(), "edge endpoint out of range");
  AQUA_REQUIRE(weight >= 0.0, "edge weight must be non-negative");
  const EdgeId id = edges_.size();
  edges_.push_back({u, v, weight});
  adjacency_[u].push_back({id, v});
  if (u != v) adjacency_[v].push_back({id, u});
  return id;
}

const Edge& Graph::edge(EdgeId id) const {
  AQUA_REQUIRE(id < edges_.size(), "edge id out of range");
  return edges_[id];
}

std::span<const Graph::Incidence> Graph::neighbors(VertexId v) const {
  AQUA_REQUIRE(v < num_vertices(), "vertex out of range");
  return adjacency_[v];
}

std::size_t Graph::degree(VertexId v) const { return neighbors(v).size(); }

std::pair<std::vector<std::size_t>, std::size_t> Graph::connected_components() const {
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> label(num_vertices(), kUnvisited);
  std::size_t next_label = 0;
  std::queue<VertexId> frontier;
  for (VertexId start = 0; start < num_vertices(); ++start) {
    if (label[start] != kUnvisited) continue;
    label[start] = next_label;
    frontier.push(start);
    while (!frontier.empty()) {
      const VertexId v = frontier.front();
      frontier.pop();
      for (const auto& inc : adjacency_[v]) {
        if (label[inc.neighbor] == kUnvisited) {
          label[inc.neighbor] = next_label;
          frontier.push(inc.neighbor);
        }
      }
    }
    ++next_label;
  }
  return {std::move(label), next_label};
}

bool Graph::is_connected() const {
  if (num_vertices() == 0) return true;
  return connected_components().second == 1;
}

}  // namespace aqua::graph
