#include "graph/kmedoids.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace aqua::graph {
namespace {

double squared_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

KMedoidsResult kmedoids(const std::vector<std::vector<double>>& points, std::size_t k,
                        const KMedoidsOptions& options) {
  const std::size_t n = points.size();
  AQUA_REQUIRE(k >= 1, "k must be positive");
  AQUA_REQUIRE(k <= n, "k cannot exceed the number of points");
  for (const auto& p : points) {
    AQUA_REQUIRE(p.size() == points.front().size(), "points must share a dimension");
  }

  Rng rng(options.seed);
  KMedoidsResult result;

  // k-means++-style seeding: first medoid uniform, the rest proportional to
  // squared distance from the nearest chosen medoid.
  result.medoids.push_back(static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
  std::vector<double> nearest_sq(n, std::numeric_limits<double>::infinity());
  while (result.medoids.size() < k) {
    const auto& latest = points[result.medoids.back()];
    for (std::size_t i = 0; i < n; ++i) {
      nearest_sq[i] = std::min(nearest_sq[i], squared_distance(points[i], latest));
    }
    double total = 0.0;
    for (double d : nearest_sq) total += d;
    if (total <= 0.0) {
      // All remaining points coincide with medoids; pick any non-medoid.
      for (std::size_t i = 0; i < n && result.medoids.size() < k; ++i) {
        bool taken = false;
        for (std::size_t m : result.medoids) taken = taken || (m == i);
        if (!taken) result.medoids.push_back(i);
      }
      break;
    }
    double target = rng.uniform() * total;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      target -= nearest_sq[i];
      if (target < 0.0) {
        chosen = i;
        break;
      }
    }
    result.medoids.push_back(chosen);
  }

  result.assignment.assign(n, 0);
  auto assign_all = [&]() {
    double cost = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_cluster = 0;
      for (std::size_t c = 0; c < result.medoids.size(); ++c) {
        const double d = squared_distance(points[i], points[result.medoids[c]]);
        if (d < best) {
          best = d;
          best_cluster = c;
        }
      }
      result.assignment[i] = best_cluster;
      cost += std::sqrt(best);
    }
    return cost;
  };

  result.total_cost = assign_all();
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    bool changed = false;
    // For each cluster, move the medoid to the member minimizing the sum of
    // distances to the other members (the PAM update restricted to within-
    // cluster swaps, which converges and is O(n^2/k) per cluster).
    for (std::size_t c = 0; c < result.medoids.size(); ++c) {
      std::vector<std::size_t> members;
      for (std::size_t i = 0; i < n; ++i) {
        if (result.assignment[i] == c) members.push_back(i);
      }
      if (members.empty()) continue;
      double best_cost = std::numeric_limits<double>::infinity();
      std::size_t best_medoid = result.medoids[c];
      for (std::size_t candidate : members) {
        double cost = 0.0;
        for (std::size_t member : members) {
          cost += std::sqrt(squared_distance(points[candidate], points[member]));
        }
        if (cost < best_cost) {
          best_cost = cost;
          best_medoid = candidate;
        }
      }
      if (best_medoid != result.medoids[c]) {
        result.medoids[c] = best_medoid;
        changed = true;
      }
    }
    const double new_cost = assign_all();
    result.total_cost = new_cost;
    if (!changed) break;
  }
  return result;
}

}  // namespace aqua::graph
