// k-medoids clustering (PAM-style alternation) over points in an arbitrary
// feature space. The paper (Sec. IV-A) uses k-medoids to choose IoT sensor
// locations: it "partitions |V| + |E| potential sensor locations into
// [k] clusters and assigns cluster centers as the sensor locations, based
// on the pressure head and flow rate read from nodes and pipes".
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace aqua::graph {

struct KMedoidsOptions {
  std::size_t max_iterations = 100;
  std::uint64_t seed = 42;
};

struct KMedoidsResult {
  std::vector<std::size_t> medoids;     // indices into the point set, size k
  std::vector<std::size_t> assignment;  // cluster index per point
  double total_cost = 0.0;              // sum of point->medoid distances
  std::size_t iterations = 0;
};

/// Clusters `points` (each a feature vector of equal dimension) into k
/// groups using Euclidean distance; medoids are actual data points.
/// Initialization is k-means++-style seeding on medoid candidates; the
/// alternation assigns points to nearest medoids and swaps each medoid with
/// the in-cluster point minimizing cluster cost until convergence.
KMedoidsResult kmedoids(const std::vector<std::vector<double>>& points, std::size_t k,
                        const KMedoidsOptions& options = {});

}  // namespace aqua::graph
