// Shortest-path queries over pipe-length weights (Dijkstra). Used for the
// Fig. 2 distance-decay analysis and for clique construction around tweet
// locations.
#pragma once

#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace aqua::graph {

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

struct ShortestPaths {
  std::vector<double> distance;       // kUnreachable when disconnected
  std::vector<VertexId> predecessor;  // source's and unreachable vertices' pred = self
};

/// Single-source Dijkstra with a binary heap; O((V+E) log V).
ShortestPaths dijkstra(const Graph& g, VertexId source);

/// Reconstructs the vertex sequence source..target (empty if unreachable).
std::vector<VertexId> extract_path(const ShortestPaths& paths, VertexId source, VertexId target);

/// All-pairs distances via repeated Dijkstra (fine at network scale).
std::vector<std::vector<double>> all_pairs_distances(const Graph& g);

}  // namespace aqua::graph
