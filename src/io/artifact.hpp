// Versioned, checksummed artifact container for persisted models (the
// bridge between Phase I training and Phase II serving). File layout:
//
//   magic        8 bytes  "AQUAMODL"
//   version      u32      format version (kFormatVersion)
//   sections     u32      section count
//   table        per section: name (u32 len + bytes), payload size (u64),
//                CRC-32 of the payload (u32)
//   payloads     section payloads concatenated in table order
//
// Readers are strict: unknown magic, unsupported version, truncation, and
// checksum mismatches all raise io::SerializationError. See DESIGN.md
// ("Model artifact format") for the compatibility policy.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "io/binary.hpp"

namespace aqua::io {

// v2: GB/RF/HybridRSL classifier states gained max_bins + exact_splits.
inline constexpr std::uint32_t kFormatVersion = 2;

/// Collects named sections in memory, then emits the container.
class ArtifactWriter {
 public:
  explicit ArtifactWriter(std::uint32_t version = kFormatVersion) : version_(version) {}

  /// Starts a new section and returns the writer for its payload. The
  /// reference stays valid for the ArtifactWriter's lifetime. Section names
  /// must be unique.
  BinaryWriter& section(const std::string& name);

  /// Writes magic + version + table + payloads to the stream.
  void write_to(std::ostream& out) const;

 private:
  struct Section {
    std::string name;
    BinaryWriter writer;
  };

  std::uint32_t version_;
  std::vector<std::unique_ptr<Section>> sections_;
};

/// Read-side abstraction over an opened AQUAMODL container. Two
/// implementations exist: ArtifactReader (buffered: the whole file is
/// copied into memory and every checksum is validated up front) and
/// MappedArtifactReader (mapped_artifact.hpp: the file is mmapped and
/// checksums are validated lazily on first section access). Decoders such
/// as ProfileModel::load work against this interface so they are agnostic
/// to how the bytes arrived.
class ArtifactSource {
 public:
  virtual ~ArtifactSource() = default;

  virtual std::uint32_t version() const noexcept = 0;
  virtual bool has_section(const std::string& name) const = 0;

  /// Reader over a section's payload; throws SerializationError if the
  /// section is absent (or, for lazy implementations, fails validation).
  /// The returned reader views memory owned by this source, which must
  /// outlive it.
  virtual BinaryReader section(const std::string& name) const = 0;
};

/// Parses a container fully into memory, validating structure and
/// checksums up front; sections are then decoded on demand.
class ArtifactReader final : public ArtifactSource {
 public:
  /// Reads and validates the whole artifact; throws SerializationError on
  /// any structural problem.
  explicit ArtifactReader(std::istream& in);

  std::uint32_t version() const noexcept override { return version_; }
  bool has_section(const std::string& name) const override;

  /// Reader over a section's payload; throws if the section is absent. The
  /// returned reader views memory owned by this ArtifactReader.
  BinaryReader section(const std::string& name) const override;

 private:
  std::uint32_t version_ = 0;
  std::map<std::string, std::string> payloads_;
};

}  // namespace aqua::io
