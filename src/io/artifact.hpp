// Versioned, checksummed artifact container for persisted models (the
// bridge between Phase I training and Phase II serving). File layout:
//
//   magic        8 bytes  "AQUAMODL"
//   version      u32      format version (kFormatVersion)
//   sections     u32      section count
//   table        per section: name (u32 len + bytes), payload size (u64),
//                CRC-32 of the payload (u32)
//   payloads     section payloads concatenated in table order
//
// Readers are strict: unknown magic, unsupported version, truncation, and
// checksum mismatches all raise io::SerializationError. See DESIGN.md
// ("Model artifact format") for the compatibility policy.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "io/binary.hpp"

namespace aqua::io {

// v2: GB/RF/HybridRSL classifier states gained max_bins + exact_splits.
inline constexpr std::uint32_t kFormatVersion = 2;

/// Collects named sections in memory, then emits the container.
class ArtifactWriter {
 public:
  explicit ArtifactWriter(std::uint32_t version = kFormatVersion) : version_(version) {}

  /// Starts a new section and returns the writer for its payload. The
  /// reference stays valid for the ArtifactWriter's lifetime. Section names
  /// must be unique.
  BinaryWriter& section(const std::string& name);

  /// Writes magic + version + table + payloads to the stream.
  void write_to(std::ostream& out) const;

 private:
  struct Section {
    std::string name;
    BinaryWriter writer;
  };

  std::uint32_t version_;
  std::vector<std::unique_ptr<Section>> sections_;
};

/// Parses a container fully into memory, validating structure and
/// checksums up front; sections are then decoded on demand.
class ArtifactReader {
 public:
  /// Reads and validates the whole artifact; throws SerializationError on
  /// any structural problem.
  explicit ArtifactReader(std::istream& in);

  std::uint32_t version() const noexcept { return version_; }
  bool has_section(const std::string& name) const;

  /// Reader over a section's payload; throws if the section is absent. The
  /// returned reader views memory owned by this ArtifactReader.
  BinaryReader section(const std::string& name) const;

 private:
  std::uint32_t version_ = 0;
  std::map<std::string, std::string> payloads_;
};

}  // namespace aqua::io
