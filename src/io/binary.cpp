#include "io/binary.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace aqua::io {

namespace {

template <typename T>
void append_le(std::string& buffer, T value) {
  for (std::size_t b = 0; b < sizeof(T); ++b) {
    buffer.push_back(static_cast<char>((value >> (8 * b)) & 0xffu));
  }
}

template <typename T>
T decode_le(std::span<const char> bytes) {
  T value = 0;
  for (std::size_t b = 0; b < sizeof(T); ++b) {
    value |= static_cast<T>(static_cast<unsigned char>(bytes[b])) << (8 * b);
  }
  return value;
}

// Sanity caps against absurd length prefixes from corrupt artifacts; real
// payloads (names, feature vectors) are far below these.
constexpr std::size_t kMaxStringLength = 1u << 20;
constexpr std::size_t kMaxVectorLength = 1u << 28;

}  // namespace

void BinaryWriter::write_u8(std::uint8_t value) { buffer_.push_back(static_cast<char>(value)); }

void BinaryWriter::write_u32(std::uint32_t value) { append_le(buffer_, value); }

void BinaryWriter::write_u64(std::uint64_t value) { append_le(buffer_, value); }

void BinaryWriter::write_i32(std::int32_t value) {
  append_le(buffer_, static_cast<std::uint32_t>(value));
}

void BinaryWriter::write_f64(double value) {
  append_le(buffer_, std::bit_cast<std::uint64_t>(value));
}

void BinaryWriter::write_bool(bool value) { write_u8(value ? 1 : 0); }

void BinaryWriter::write_string(std::string_view value) {
  if (value.size() > kMaxStringLength) {
    throw SerializationError("string too long to serialize");
  }
  write_u32(static_cast<std::uint32_t>(value.size()));
  buffer_.append(value.data(), value.size());
}

void BinaryWriter::write_f64_vector(std::span<const double> values) {
  write_u64(values.size());
  for (double v : values) write_f64(v);
}

std::span<const char> BinaryReader::take(std::size_t count) {
  if (count > remaining()) {
    throw SerializationError("truncated artifact: needed " + std::to_string(count) +
                             " bytes, only " + std::to_string(remaining()) + " remain");
  }
  std::span<const char> view(data_.data() + pos_, count);
  pos_ += count;
  return view;
}

std::uint8_t BinaryReader::read_u8() {
  return static_cast<std::uint8_t>(static_cast<unsigned char>(take(1)[0]));
}

std::uint32_t BinaryReader::read_u32() { return decode_le<std::uint32_t>(take(4)); }

std::uint64_t BinaryReader::read_u64() { return decode_le<std::uint64_t>(take(8)); }

std::int32_t BinaryReader::read_i32() { return static_cast<std::int32_t>(read_u32()); }

double BinaryReader::read_f64() { return std::bit_cast<double>(read_u64()); }

bool BinaryReader::read_bool() {
  const std::uint8_t value = read_u8();
  if (value > 1) throw SerializationError("malformed bool value");
  return value != 0;
}

std::string BinaryReader::read_string() {
  const std::uint32_t length = read_u32();
  if (length > kMaxStringLength) throw SerializationError("malformed string length");
  const auto bytes = take(length);
  return std::string(bytes.data(), bytes.size());
}

std::vector<double> BinaryReader::read_f64_vector() {
  const std::uint64_t count = read_u64();
  if (count > kMaxVectorLength) throw SerializationError("malformed vector length");
  if (count * sizeof(double) > remaining()) {
    throw SerializationError("truncated artifact: vector extends past section end");
  }
  std::vector<double> values(count);
  for (auto& v : values) v = read_f64();
  return values;
}

void BinaryReader::expect_end() const {
  if (remaining() != 0) {
    throw SerializationError("trailing bytes after decoded content (" +
                             std::to_string(remaining()) + " unread)");
  }
}

std::uint32_t crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (char byte : bytes) {
    crc = table[(crc ^ static_cast<unsigned char>(byte)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace aqua::io
