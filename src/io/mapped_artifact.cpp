#include "io/mapped_artifact.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>

namespace aqua::io {

namespace {

constexpr std::array<char, 8> kMagic = {'A', 'Q', 'U', 'A', 'M', 'O', 'D', 'L'};
constexpr std::uint32_t kMaxSections = 1024;
constexpr std::uint32_t kMaxSectionName = 256;

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw SerializationError(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

MappedFile::MappedFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("cannot open artifact", path);

  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("cannot stat artifact", path);
  }
  if (st.st_size <= 0) {
    ::close(fd);
    throw SerializationError("cannot map empty artifact '" + path + "'");
  }
  const auto size = static_cast<std::size_t>(st.st_size);

  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping stays valid after close; the kernel holds the reference.
  ::close(fd);
  if (mapping == MAP_FAILED) throw_errno("cannot mmap artifact", path);

  data_ = static_cast<const char*>(mapping);
  size_ = size;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
}

MappedArtifactReader::MappedArtifactReader(const std::string& path) : path_(path), file_(path) {
  // Structural pass over the mapping: magic, version, section table. This
  // touches only the header pages; payload bytes stay untouched until a
  // section is requested.
  BinaryReader header(file_.view());
  auto fail = [&](const std::string& what) -> SerializationError {
    return SerializationError("truncated or malformed artifact '" + path_ + "': " + what);
  };

  if (file_.size() < kMagic.size() + 8) throw fail("shorter than the fixed header");
  for (char expected : kMagic) {
    if (static_cast<char>(header.read_u8()) != expected) {
      throw SerializationError("not an AquaSCALE model artifact (bad magic): '" + path_ + "'");
    }
  }
  version_ = header.read_u32();
  const std::uint32_t count = header.read_u32();
  if (version_ != kFormatVersion) {
    throw SerializationError("unsupported artifact format version " + std::to_string(version_) +
                             " (this build reads version " + std::to_string(kFormatVersion) +
                             ") in '" + path_ + "'");
  }
  if (count > kMaxSections) throw fail("section count");

  struct Entry {
    std::string name;
    std::uint64_t size;
    std::uint32_t crc;
  };
  std::vector<Entry> entries;
  entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Entry entry;
    try {
      entry.name = header.read_string();
      entry.size = header.read_u64();
      entry.crc = header.read_u32();
    } catch (const SerializationError&) {
      throw fail("section table ends mid-entry");
    }
    if (entry.name.empty() || entry.name.size() > kMaxSectionName) {
      throw fail("section name length");
    }
    entries.push_back(std::move(entry));
  }

  // Payloads follow the table in order. Every payload must lie entirely
  // inside the mapping — a table pointing past EOF means the file was
  // truncated after the header was written.
  std::size_t offset = file_.size() - header.remaining();
  for (const auto& entry : entries) {
    if (entry.size > file_.size() - offset) {
      throw fail("section '" + entry.name + "' extends past end of file");
    }
    Section section;
    section.offset = offset;
    section.size = static_cast<std::size_t>(entry.size);
    section.crc = entry.crc;
    if (!sections_.emplace(entry.name, section).second) {
      throw fail("duplicate section '" + entry.name + "'");
    }
    offset += section.size;
  }
  if (offset != file_.size()) throw fail("trailing bytes after the last section");
}

bool MappedArtifactReader::has_section(const std::string& name) const {
  return sections_.count(name) != 0;
}

BinaryReader MappedArtifactReader::section(const std::string& name) const {
  const auto it = sections_.find(name);
  if (it == sections_.end()) {
    throw SerializationError("artifact is missing required section '" + name + "'");
  }
  const Section& section = it->second;
  {
    const std::lock_guard<std::mutex> lock(crc_mutex_);
    if (!section.validated) {
      if (crc32(payload_view(section)) != section.crc) {
        throw SerializationError("checksum mismatch in artifact section '" + name +
                                 "' (corrupted artifact '" + path_ + "')");
      }
      section.validated = true;
    }
  }
  return BinaryReader(payload_view(section));
}

std::unique_ptr<ArtifactSource> open_artifact(const std::string& path, bool* used_mmap) {
  if (used_mmap != nullptr) *used_mmap = false;
  try {
    auto mapped = std::make_unique<MappedArtifactReader>(path);
    if (used_mmap != nullptr) *used_mmap = true;
    return mapped;
  } catch (const SerializationError&) {
    // Either the environment refused the mapping or the structure is bad.
    // Retry buffered: if the bytes really are malformed the ArtifactReader
    // throws the same typed error; if only mmap failed, buffered succeeds.
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      throw SerializationError("cannot open artifact '" + path + "' for buffered read");
    }
    return std::make_unique<ArtifactReader>(in);
  }
}

}  // namespace aqua::io
