// Zero-copy artifact loading for the serving path. MappedArtifactReader
// mmaps an AQUAMODL file, validates the header and section table eagerly
// (structure is cheap: a few hundred bytes), and validates each section's
// CRC-32 lazily on first access — a daemon hosting dozens of district
// models pays the checksum cost only for the sections it actually decodes,
// and the page cache, not a private heap copy, backs the payload bytes.
// Section readers view the mapping directly, so the reader must outlive
// every BinaryReader it hands out.
//
// open_artifact() is the daemon-facing entry point: it prefers the mapped
// reader and falls back to the buffered ArtifactReader when mmap is
// unavailable (exotic filesystems, zero-length mappings), so callers
// always get an ArtifactSource or a typed SerializationError.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "io/artifact.hpp"

namespace aqua::io {

/// RAII read-only memory mapping of a whole file. Throws
/// SerializationError when the file cannot be opened, stat'ed, or mapped
/// (callers treat that as "fall back to buffered I/O").
class MappedFile {
 public:
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const char* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  std::string_view view() const noexcept { return {data_, size_}; }

 private:
  const char* data_ = nullptr;
  std::size_t size_ = 0;
};

/// ArtifactSource over an mmapped AQUAMODL file. Construction parses and
/// validates the header + section table (magic, version, name/size sanity,
/// and that every payload lies inside the mapping — a table that points
/// past EOF is a truncated artifact and throws immediately). Payload
/// checksums are validated lazily: the first section(name) call CRCs that
/// payload and caches the verdict, so repeated access is free and
/// untouched sections are never read at all.
///
/// Thread-safety: section() and has_section() are safe to call
/// concurrently from multiple threads (the lazy CRC cache is internally
/// synchronized); the publisher thread of a serving daemon can decode
/// sections while another thread enumerates them.
class MappedArtifactReader final : public ArtifactSource {
 public:
  explicit MappedArtifactReader(const std::string& path);

  std::uint32_t version() const noexcept override { return version_; }
  bool has_section(const std::string& name) const override;

  /// Reader viewing the mapped payload bytes directly (no copy). First
  /// access validates the section's CRC-32 and throws SerializationError
  /// on mismatch; subsequent accesses reuse the cached verdict.
  BinaryReader section(const std::string& name) const override;

  const std::string& path() const noexcept { return path_; }
  std::size_t file_size() const noexcept { return file_.size(); }

 private:
  struct Section {
    std::size_t offset = 0;
    std::size_t size = 0;
    std::uint32_t crc = 0;
    // 0 = unvalidated, 1 = validated-ok. Guarded by crc_mutex_ (a failed
    // CRC throws every time rather than caching a poisoned state).
    mutable bool validated = false;
  };

  std::string_view payload_view(const Section& section) const noexcept {
    return file_.view().substr(section.offset, section.size);
  }

  std::string path_;
  MappedFile file_;
  std::uint32_t version_ = 0;
  std::map<std::string, Section> sections_;
  mutable std::mutex crc_mutex_;
};

/// Opens an artifact for reading, preferring the mmap path. When the file
/// exists but cannot be mapped, falls back to the buffered ArtifactReader
/// transparently; structural corruption throws SerializationError from
/// whichever path noticed it. `used_mmap`, when non-null, reports which
/// implementation was chosen (benches and tests assert on it).
std::unique_ptr<ArtifactSource> open_artifact(const std::string& path, bool* used_mmap = nullptr);

}  // namespace aqua::io
