#include "io/artifact.hpp"

#include <array>
#include <istream>
#include <ostream>

namespace aqua::io {

namespace {

constexpr std::array<char, 8> kMagic = {'A', 'Q', 'U', 'A', 'M', 'O', 'D', 'L'};
constexpr std::uint32_t kMaxSections = 1024;
constexpr std::uint32_t kMaxSectionName = 256;

std::string read_exact(std::istream& in, std::size_t count, const char* what) {
  std::string bytes(count, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(count));
  if (static_cast<std::size_t>(in.gcount()) != count) {
    throw SerializationError(std::string("truncated artifact while reading ") + what);
  }
  return bytes;
}

}  // namespace

BinaryWriter& ArtifactWriter::section(const std::string& name) {
  for (const auto& s : sections_) {
    if (s->name == name) throw SerializationError("duplicate artifact section: " + name);
  }
  sections_.push_back(std::make_unique<Section>(Section{name, BinaryWriter{}}));
  return sections_.back()->writer;
}

void ArtifactWriter::write_to(std::ostream& out) const {
  BinaryWriter header;
  for (char c : kMagic) header.write_u8(static_cast<std::uint8_t>(c));
  header.write_u32(version_);
  header.write_u32(static_cast<std::uint32_t>(sections_.size()));
  for (const auto& s : sections_) {
    header.write_string(s->name);
    header.write_u64(s->writer.size());
    header.write_u32(crc32(s->writer.buffer()));
  }
  out.write(header.buffer().data(), static_cast<std::streamsize>(header.size()));
  for (const auto& s : sections_) {
    out.write(s->writer.buffer().data(), static_cast<std::streamsize>(s->writer.size()));
  }
  if (!out) throw SerializationError("stream write failed while saving artifact");
}

ArtifactReader::ArtifactReader(std::istream& in) {
  const std::string magic = read_exact(in, kMagic.size(), "magic");
  if (!std::equal(magic.begin(), magic.end(), kMagic.begin())) {
    throw SerializationError("not an AquaSCALE model artifact (bad magic)");
  }

  const std::string fixed = read_exact(in, 8, "header");
  BinaryReader fixed_reader(fixed);
  version_ = fixed_reader.read_u32();
  const std::uint32_t count = fixed_reader.read_u32();
  if (version_ != kFormatVersion) {
    throw SerializationError("unsupported artifact format version " + std::to_string(version_) +
                             " (this build reads version " + std::to_string(kFormatVersion) + ")");
  }
  if (count > kMaxSections) throw SerializationError("malformed artifact: section count");

  struct Entry {
    std::string name;
    std::uint64_t size;
    std::uint32_t crc;
  };
  std::vector<Entry> entries;
  entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    // Table entries have a string (variable length), so read piecewise.
    const std::string len_bytes = read_exact(in, 4, "section table");
    const std::uint32_t name_len = BinaryReader(len_bytes).read_u32();
    if (name_len == 0 || name_len > kMaxSectionName) {
      throw SerializationError("malformed artifact: section name length");
    }
    Entry entry;
    entry.name = read_exact(in, name_len, "section name");
    const std::string rest = read_exact(in, 12, "section table");
    BinaryReader rest_reader(rest);
    entry.size = rest_reader.read_u64();
    entry.crc = rest_reader.read_u32();
    entries.push_back(std::move(entry));
  }

  for (const auto& entry : entries) {
    std::string payload = read_exact(in, entry.size, ("section '" + entry.name + "'").c_str());
    if (crc32(payload) != entry.crc) {
      throw SerializationError("checksum mismatch in artifact section '" + entry.name +
                               "' (corrupted artifact)");
    }
    if (!payloads_.emplace(entry.name, std::move(payload)).second) {
      throw SerializationError("duplicate artifact section: " + entry.name);
    }
  }
}

bool ArtifactReader::has_section(const std::string& name) const {
  return payloads_.count(name) != 0;
}

BinaryReader ArtifactReader::section(const std::string& name) const {
  const auto it = payloads_.find(name);
  if (it == payloads_.end()) {
    throw SerializationError("artifact is missing required section '" + name + "'");
  }
  return BinaryReader(it->second);
}

}  // namespace aqua::io
