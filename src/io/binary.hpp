// Low-level binary serialization primitives for model artifacts: a
// little-endian append-only writer over an in-memory buffer and a strict
// bounds-checked reader over a byte view. All multi-byte values are encoded
// little-endian regardless of host order; doubles are serialized by IEEE-754
// bit pattern so a round trip is bit-exact.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace aqua::io {

/// Thrown when an artifact cannot be decoded: truncation, checksum
/// mismatch, unknown format version, or a malformed field. Artifact
/// corruption is an environmental failure (like a solver that cannot
/// converge), not a caller mistake, hence a runtime_error.
class SerializationError : public std::runtime_error {
 public:
  explicit SerializationError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends primitives to an owned byte buffer.
class BinaryWriter {
 public:
  void write_u8(std::uint8_t value);
  void write_u32(std::uint32_t value);
  void write_u64(std::uint64_t value);
  void write_i32(std::int32_t value);
  void write_f64(double value);
  void write_bool(bool value);
  /// u32 length prefix + raw bytes.
  void write_string(std::string_view value);
  /// u64 count prefix + packed f64 values.
  void write_f64_vector(std::span<const double> values);

  const std::string& buffer() const noexcept { return buffer_; }
  std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Reads primitives back from a byte view; every read is bounds-checked and
/// throws SerializationError on overrun. The reader does not own the bytes.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int32_t read_i32();
  double read_f64();
  bool read_bool();
  std::string read_string();
  std::vector<double> read_f64_vector();

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  /// Throws if decoded content did not consume the whole view (a section
  /// that is longer than its schema indicates corruption).
  void expect_end() const;

 private:
  std::span<const char> take(std::size_t count);

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3 polynomial) of a byte range.
std::uint32_t crc32(std::string_view bytes);

}  // namespace aqua::io
