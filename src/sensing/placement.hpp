// Sensor placement (Sec. IV-A): "given the number of available devices, we
// use k-medoids algorithm to select a group of locations as the sensor
// set. k-medoids partitions |V| + |E| potential sensor locations into
// [k] clusters and assigns cluster centers as the sensor locations, based
// on the pressure head and flow rate read from nodes and pipes."
//
// Candidates are the hydraulic signatures (normalized baseline time
// series) of every node and every link; medoids become sensors of the
// matching kind. Random placement is provided for the ablation bench.
#pragma once

#include <cstdint>

#include "hydraulics/simulation.hpp"
#include "sensing/sensors.hpp"

namespace aqua::sensing {

/// k-medoids placement over all |V|+|E| candidates using the signatures in
/// `baseline` (a healthy EPS run of the same network). `count` is clamped
/// to [1, |V|+|E|].
SensorSet place_sensors_kmedoids(const hydraulics::Network& network,
                                 const hydraulics::SimulationResults& baseline, std::size_t count,
                                 std::uint64_t seed = 42);

/// Uniform-random placement (ablation baseline for k-medoids).
SensorSet place_sensors_random(const hydraulics::Network& network, std::size_t count,
                               std::uint64_t seed = 42);

/// Sensor count corresponding to an observation percentage of |V|+|E|
/// ("Percentage of IoT Observations", Sec. V-B). Result is at least 1.
std::size_t sensors_for_percentage(const hydraulics::Network& network, double percent);

}  // namespace aqua::sensing
