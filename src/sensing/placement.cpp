#include "sensing/placement.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/kmedoids.hpp"

namespace aqua::sensing {
namespace {

/// Normalized (zero-mean, unit-variance) time series — clustering should
/// group locations by the *shape* of their hydraulic behavior, not by the
/// very different magnitudes of pressure heads and flow rates.
std::vector<double> normalized_series(std::vector<double> series) {
  double sum = 0.0;
  for (double v : series) sum += v;
  const double mean = sum / static_cast<double>(series.size());
  double ss = 0.0;
  for (double v : series) ss += (v - mean) * (v - mean);
  const double sd = std::sqrt(ss / static_cast<double>(series.size()));
  for (double& v : series) v = sd > 1e-12 ? (v - mean) / sd : 0.0;
  return series;
}

}  // namespace

SensorSet place_sensors_kmedoids(const hydraulics::Network& network,
                                 const hydraulics::SimulationResults& baseline, std::size_t count,
                                 std::uint64_t seed) {
  const std::size_t num_candidates = network.num_nodes() + network.num_links();
  count = std::clamp<std::size_t>(count, 1, num_candidates);
  AQUA_REQUIRE(baseline.num_nodes() == network.num_nodes() &&
                   baseline.num_links() == network.num_links(),
               "baseline results do not match the network");

  const std::size_t steps = baseline.num_steps();
  std::vector<std::vector<double>> points;
  points.reserve(num_candidates);
  for (std::size_t v = 0; v < network.num_nodes(); ++v) {
    std::vector<double> series(steps);
    for (std::size_t s = 0; s < steps; ++s) series[s] = baseline.pressure(s, v);
    points.push_back(normalized_series(std::move(series)));
  }
  for (std::size_t l = 0; l < network.num_links(); ++l) {
    std::vector<double> series(steps);
    for (std::size_t s = 0; s < steps; ++s) series[s] = baseline.flow(s, l);
    points.push_back(normalized_series(std::move(series)));
  }

  graph::KMedoidsOptions options;
  options.seed = seed;
  const auto clustering = graph::kmedoids(points, count, options);

  SensorSet set;
  set.sensors.reserve(count);
  for (std::size_t medoid : clustering.medoids) {
    if (medoid < network.num_nodes()) {
      set.sensors.push_back({SensorKind::kPressure, medoid, "p:" + network.node(medoid).name});
    } else {
      const std::size_t link = medoid - network.num_nodes();
      set.sensors.push_back({SensorKind::kFlow, link, "q:" + network.link(link).name});
    }
  }
  return set;
}

SensorSet place_sensors_random(const hydraulics::Network& network, std::size_t count,
                               std::uint64_t seed) {
  const std::size_t num_candidates = network.num_nodes() + network.num_links();
  count = std::clamp<std::size_t>(count, 1, num_candidates);
  Rng rng(seed);
  SensorSet set;
  for (std::size_t pick : rng.sample_without_replacement(num_candidates, count)) {
    if (pick < network.num_nodes()) {
      set.sensors.push_back({SensorKind::kPressure, pick, "p:" + network.node(pick).name});
    } else {
      const std::size_t link = pick - network.num_nodes();
      set.sensors.push_back({SensorKind::kFlow, link, "q:" + network.link(link).name});
    }
  }
  return set;
}

std::size_t sensors_for_percentage(const hydraulics::Network& network, double percent) {
  AQUA_REQUIRE(percent > 0.0 && percent <= 100.0, "percentage must be in (0, 100]");
  const auto total = static_cast<double>(network.num_nodes() + network.num_links());
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::lround(percent / 100.0 * total)));
}

}  // namespace aqua::sensing
