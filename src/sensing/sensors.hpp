// IoT sensor modeling (Sec. III-B). A sensor set A ⊆ V ∪ E mixes pressure
// transducers (on nodes) and flow meters (on links). Readings are sampled
// from EPS results at 15-minute slots with Gaussian measurement noise, and
// the ML features are *differences between consecutive readings*: "we use
// the difference between two sets of consecutive readings from IoT devices
// as the features of X ... the change on pressure head or flow rate of
// sensor a" (Sec. IV-A), taken between slots e.t-1 and e.t+n.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hydraulics/network.hpp"
#include "hydraulics/simulation.hpp"

namespace aqua::io {
class BinaryWriter;
class BinaryReader;
}  // namespace aqua::io

namespace aqua::sensing {

enum class SensorKind { kPressure, kFlow };

struct Sensor {
  SensorKind kind = SensorKind::kPressure;
  std::size_t index = 0;  // node id (pressure) or link id (flow)
  std::string name;
};

/// An ordered sensor deployment; feature vectors follow this order.
struct SensorSet {
  std::vector<Sensor> sensors;

  std::size_t size() const noexcept { return sensors.size(); }
  std::size_t count(SensorKind kind) const noexcept;

  void save(io::BinaryWriter& writer) const;
  static SensorSet load(io::BinaryReader& reader);
};

/// Measurement noise: additive Gaussian on pressure [m]; on flow the noise
/// is relative with an absolute floor (meters are spec'd in % of reading).
struct NoiseModel {
  double pressure_sigma_m = 0.005;
  double flow_sigma_frac = 0.005;
  double flow_sigma_floor_m3s = 5e-5;

  void save(io::BinaryWriter& writer) const;
  static NoiseModel load(io::BinaryReader& reader);
};

// --- Sensor-fault layer (scenario-diversity engine, DESIGN.md §15) -------
//
// Faults model the sensing channel failing *after* physics and measurement
// noise: they transform the noisy reading a healthy sensor would have
// produced, immediately before Δ-feature extraction. Phase II inference can
// therefore be stress-tested against degraded telemetry without touching
// hydraulics, and a faulted corpus shares its simulation (and replay
// checkpoints) with the healthy one bit for bit.

enum class SensorFaultKind : std::uint8_t {
  kDropout,  // channel goes dark: reading -> 0
  kStuckAt,  // electronics freeze: reading -> value
  kDrift,    // calibration walks:  reading -> reading + value * slots-since-onset
  kBias,     // adversarial offset: reading -> reading + value
};

const char* sensor_fault_kind_name(SensorFaultKind kind);

/// One faulted channel of a concrete deployment. `sensor` indexes the
/// SensorSet order; the fault is active for slots >= start_slot and `value`
/// is in the sensor's native unit (m for pressure, m^3/s for flow; per slot
/// for kDrift, ignored by kDropout).
struct SensorFault {
  SensorFaultKind kind = SensorFaultKind::kDropout;
  std::size_t sensor = 0;
  double value = 0.0;
  std::size_t start_slot = 0;
};

/// A fault drawn before any concrete deployment exists (scenario
/// generation happens ahead of sensor placement): `position` in [0, 1)
/// resolves to sensor index floor(position * size) for whatever sensor set
/// the corpus is later featurized with.
struct SensorFaultDraw {
  SensorFaultKind kind = SensorFaultKind::kDropout;
  double position = 0.0;
  double value = 0.0;
  std::size_t start_slot = 0;
};

/// Maps position-based draws onto a deployment of `sensor_count` sensors.
/// Deterministic; several draws may land on one sensor, in which case they
/// apply in list order.
std::vector<SensorFault> resolve_sensor_faults(std::span<const SensorFaultDraw> draws,
                                               std::size_t sensor_count);

/// The documented reading transform of one fault at one slot (identity
/// while slot < start_slot):
///   dropout:  r -> 0
///   stuck-at: r -> value
///   drift:    r -> r + value * (slot - start_slot)
///   bias:     r -> r + value
double apply_sensor_fault(const SensorFault& fault, double reading, std::size_t slot);

/// Applies every fault to its sensor's reading, in list order.
void apply_sensor_faults(std::span<const SensorFault> faults, std::span<double> readings,
                         std::size_t slot);

/// Full observation A = V ∪ E: a pressure sensor at every node and a flow
/// meter on every link ("|A| = |V| + |E| refers to the full (100%) IoT
/// observations", Sec. V-B).
SensorSet full_observation(const hydraulics::Network& network);

/// Noisy readings of every sensor at one recorded slot.
std::vector<double> read_sensors(const SensorSet& sensors,
                                 const hydraulics::SimulationResults& results, std::size_t step,
                                 const NoiseModel& noise, Rng& rng);

/// Δ-features: reading(leak_slot + elapsed) − reading(leak_slot − 1),
/// noise drawn independently per reading. `leak_slot` must be >= 1.
std::vector<double> delta_features(const SensorSet& sensors,
                                   const hydraulics::SimulationResults& results,
                                   std::size_t leak_slot, std::size_t elapsed_slots,
                                   const NoiseModel& noise, Rng& rng);

/// Noise-free variant used by analytical harnesses (e.g. Fig. 2).
std::vector<double> delta_features_clean(const SensorSet& sensors,
                                         const hydraulics::SimulationResults& results,
                                         std::size_t leak_slot, std::size_t elapsed_slots);

}  // namespace aqua::sensing
