// IoT sensor modeling (Sec. III-B). A sensor set A ⊆ V ∪ E mixes pressure
// transducers (on nodes) and flow meters (on links). Readings are sampled
// from EPS results at 15-minute slots with Gaussian measurement noise, and
// the ML features are *differences between consecutive readings*: "we use
// the difference between two sets of consecutive readings from IoT devices
// as the features of X ... the change on pressure head or flow rate of
// sensor a" (Sec. IV-A), taken between slots e.t-1 and e.t+n.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hydraulics/network.hpp"
#include "hydraulics/simulation.hpp"

namespace aqua::io {
class BinaryWriter;
class BinaryReader;
}  // namespace aqua::io

namespace aqua::sensing {

enum class SensorKind { kPressure, kFlow };

struct Sensor {
  SensorKind kind = SensorKind::kPressure;
  std::size_t index = 0;  // node id (pressure) or link id (flow)
  std::string name;
};

/// An ordered sensor deployment; feature vectors follow this order.
struct SensorSet {
  std::vector<Sensor> sensors;

  std::size_t size() const noexcept { return sensors.size(); }
  std::size_t count(SensorKind kind) const noexcept;

  void save(io::BinaryWriter& writer) const;
  static SensorSet load(io::BinaryReader& reader);
};

/// Measurement noise: additive Gaussian on pressure [m]; on flow the noise
/// is relative with an absolute floor (meters are spec'd in % of reading).
struct NoiseModel {
  double pressure_sigma_m = 0.005;
  double flow_sigma_frac = 0.005;
  double flow_sigma_floor_m3s = 5e-5;

  void save(io::BinaryWriter& writer) const;
  static NoiseModel load(io::BinaryReader& reader);
};

/// Full observation A = V ∪ E: a pressure sensor at every node and a flow
/// meter on every link ("|A| = |V| + |E| refers to the full (100%) IoT
/// observations", Sec. V-B).
SensorSet full_observation(const hydraulics::Network& network);

/// Noisy readings of every sensor at one recorded slot.
std::vector<double> read_sensors(const SensorSet& sensors,
                                 const hydraulics::SimulationResults& results, std::size_t step,
                                 const NoiseModel& noise, Rng& rng);

/// Δ-features: reading(leak_slot + elapsed) − reading(leak_slot − 1),
/// noise drawn independently per reading. `leak_slot` must be >= 1.
std::vector<double> delta_features(const SensorSet& sensors,
                                   const hydraulics::SimulationResults& results,
                                   std::size_t leak_slot, std::size_t elapsed_slots,
                                   const NoiseModel& noise, Rng& rng);

/// Noise-free variant used by analytical harnesses (e.g. Fig. 2).
std::vector<double> delta_features_clean(const SensorSet& sensors,
                                         const hydraulics::SimulationResults& results,
                                         std::size_t leak_slot, std::size_t elapsed_slots);

}  // namespace aqua::sensing
