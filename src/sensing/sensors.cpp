#include "sensing/sensors.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "io/binary.hpp"

namespace aqua::sensing {

std::size_t SensorSet::count(SensorKind kind) const noexcept {
  return static_cast<std::size_t>(std::count_if(
      sensors.begin(), sensors.end(), [kind](const Sensor& s) { return s.kind == kind; }));
}

void SensorSet::save(io::BinaryWriter& writer) const {
  writer.write_u64(sensors.size());
  for (const Sensor& sensor : sensors) {
    writer.write_u8(static_cast<std::uint8_t>(sensor.kind));
    writer.write_u64(sensor.index);
    writer.write_string(sensor.name);
  }
}

SensorSet SensorSet::load(io::BinaryReader& reader) {
  const std::uint64_t count = reader.read_u64();
  if (count > (std::uint64_t{1} << 24)) {
    throw io::SerializationError("malformed sensor set: sensor count");
  }
  SensorSet set;
  set.sensors.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Sensor sensor;
    const std::uint8_t kind = reader.read_u8();
    if (kind > static_cast<std::uint8_t>(SensorKind::kFlow)) {
      throw io::SerializationError("malformed sensor kind tag");
    }
    sensor.kind = static_cast<SensorKind>(kind);
    sensor.index = reader.read_u64();
    sensor.name = reader.read_string();
    set.sensors.push_back(std::move(sensor));
  }
  return set;
}

void NoiseModel::save(io::BinaryWriter& writer) const {
  writer.write_f64(pressure_sigma_m);
  writer.write_f64(flow_sigma_frac);
  writer.write_f64(flow_sigma_floor_m3s);
}

NoiseModel NoiseModel::load(io::BinaryReader& reader) {
  NoiseModel noise;
  noise.pressure_sigma_m = reader.read_f64();
  noise.flow_sigma_frac = reader.read_f64();
  noise.flow_sigma_floor_m3s = reader.read_f64();
  return noise;
}

const char* sensor_fault_kind_name(SensorFaultKind kind) {
  switch (kind) {
    case SensorFaultKind::kDropout:
      return "dropout";
    case SensorFaultKind::kStuckAt:
      return "stuck_at";
    case SensorFaultKind::kDrift:
      return "drift";
    case SensorFaultKind::kBias:
      return "bias";
  }
  return "unknown";
}

std::vector<SensorFault> resolve_sensor_faults(std::span<const SensorFaultDraw> draws,
                                               std::size_t sensor_count) {
  AQUA_REQUIRE(sensor_count > 0 || draws.empty(),
               "cannot resolve sensor faults against an empty deployment");
  std::vector<SensorFault> faults;
  faults.reserve(draws.size());
  for (const SensorFaultDraw& draw : draws) {
    AQUA_REQUIRE(draw.position >= 0.0 && draw.position < 1.0,
                 "sensor-fault position must lie in [0, 1)");
    SensorFault fault;
    fault.kind = draw.kind;
    fault.sensor = static_cast<std::size_t>(draw.position * static_cast<double>(sensor_count));
    fault.sensor = std::min(fault.sensor, sensor_count - 1);
    fault.value = draw.value;
    fault.start_slot = draw.start_slot;
    faults.push_back(fault);
  }
  return faults;
}

double apply_sensor_fault(const SensorFault& fault, double reading, std::size_t slot) {
  if (slot < fault.start_slot) return reading;
  switch (fault.kind) {
    case SensorFaultKind::kDropout:
      return 0.0;
    case SensorFaultKind::kStuckAt:
      return fault.value;
    case SensorFaultKind::kDrift:
      return reading + fault.value * static_cast<double>(slot - fault.start_slot);
    case SensorFaultKind::kBias:
      return reading + fault.value;
  }
  return reading;
}

void apply_sensor_faults(std::span<const SensorFault> faults, std::span<double> readings,
                         std::size_t slot) {
  for (const SensorFault& fault : faults) {
    AQUA_REQUIRE(fault.sensor < readings.size(), "sensor-fault index out of range");
    readings[fault.sensor] = apply_sensor_fault(fault, readings[fault.sensor], slot);
  }
}

SensorSet full_observation(const hydraulics::Network& network) {
  SensorSet set;
  set.sensors.reserve(network.num_nodes() + network.num_links());
  for (std::size_t v = 0; v < network.num_nodes(); ++v) {
    set.sensors.push_back({SensorKind::kPressure, v, "p:" + network.node(v).name});
  }
  for (std::size_t l = 0; l < network.num_links(); ++l) {
    set.sensors.push_back({SensorKind::kFlow, l, "q:" + network.link(l).name});
  }
  return set;
}

namespace {

double clean_reading(const Sensor& sensor, const hydraulics::SimulationResults& results,
                     std::size_t step) {
  return sensor.kind == SensorKind::kPressure ? results.pressure(step, sensor.index)
                                              : results.flow(step, sensor.index);
}

double noisy_reading(const Sensor& sensor, const hydraulics::SimulationResults& results,
                     std::size_t step, const NoiseModel& noise, Rng& rng) {
  const double value = clean_reading(sensor, results, step);
  if (sensor.kind == SensorKind::kPressure) {
    return value + rng.normal(0.0, noise.pressure_sigma_m);
  }
  const double sigma =
      std::max(noise.flow_sigma_frac * std::abs(value), noise.flow_sigma_floor_m3s);
  return value + rng.normal(0.0, sigma);
}

}  // namespace

std::vector<double> read_sensors(const SensorSet& sensors,
                                 const hydraulics::SimulationResults& results, std::size_t step,
                                 const NoiseModel& noise, Rng& rng) {
  AQUA_REQUIRE(step < results.num_steps(), "step out of range");
  std::vector<double> readings(sensors.size());
  for (std::size_t i = 0; i < sensors.size(); ++i) {
    readings[i] = noisy_reading(sensors.sensors[i], results, step, noise, rng);
  }
  return readings;
}

std::vector<double> delta_features(const SensorSet& sensors,
                                   const hydraulics::SimulationResults& results,
                                   std::size_t leak_slot, std::size_t elapsed_slots,
                                   const NoiseModel& noise, Rng& rng) {
  AQUA_REQUIRE(leak_slot >= 1, "leak slot must have a predecessor sample");
  const std::size_t after = leak_slot + elapsed_slots;
  AQUA_REQUIRE(after < results.num_steps(), "elapsed window exceeds the simulation");
  std::vector<double> features(sensors.size());
  for (std::size_t i = 0; i < sensors.size(); ++i) {
    const double before = noisy_reading(sensors.sensors[i], results, leak_slot - 1, noise, rng);
    const double now = noisy_reading(sensors.sensors[i], results, after, noise, rng);
    features[i] = now - before;
  }
  return features;
}

std::vector<double> delta_features_clean(const SensorSet& sensors,
                                         const hydraulics::SimulationResults& results,
                                         std::size_t leak_slot, std::size_t elapsed_slots) {
  AQUA_REQUIRE(leak_slot >= 1, "leak slot must have a predecessor sample");
  const std::size_t after = leak_slot + elapsed_slots;
  AQUA_REQUIRE(after < results.num_steps(), "elapsed window exceeds the simulation");
  std::vector<double> features(sensors.size());
  for (std::size_t i = 0; i < sensors.size(); ++i) {
    features[i] = clean_reading(sensors.sensors[i], results, after) -
                  clean_reading(sensors.sensors[i], results, leak_slot - 1);
  }
  return features;
}

}  // namespace aqua::sensing
