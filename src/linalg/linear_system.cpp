#include "linalg/linear_system.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/dense.hpp"

namespace aqua::linalg {
namespace {

class LdltSystem final : public LinearSystem {
 public:
  const char* name() const noexcept override { return "ldlt"; }
  std::size_t dimension() const noexcept override { return factor_.dimension(); }

  void analyze(const CsrMatrix& pattern) override { factor_.analyze(pattern); }

  void refactor_values(const CsrMatrix& a) override { factor_.factorize(a); }

  LinearSolveStats solve(std::span<const double> b, std::span<double> x) override {
    factor_.solve(b, x);
    return {.iterations = 0, .relative_residual = 0.0, .converged = true};
  }

  LinearSolveStats solve_block(std::span<const double> b, std::span<double> x,
                               std::size_t nrhs) override {
    factor_.solve_block(b, x, nrhs);
    return {.iterations = 0, .relative_residual = 0.0, .converged = true};
  }

  std::unique_ptr<LinearSystem> clone() const override {
    return std::make_unique<LdltSystem>(*this);
  }

 private:
  SparseLdlt factor_;
};

class JacobiCgSystem final : public LinearSystem {
 public:
  explicit JacobiCgSystem(CgOptions options) : options_(options) {}
  JacobiCgSystem(const JacobiCgSystem& other) : options_(other.options_), n_(other.n_) {}

  const char* name() const noexcept override { return "jacobi-cg"; }
  std::size_t dimension() const noexcept override { return n_; }

  void analyze(const CsrMatrix& pattern) override { n_ = pattern.rows(); }

  void refactor_values(const CsrMatrix& a) override {
    AQUA_REQUIRE(a.rows() == n_, "refactor_values: dimension mismatch with analyzed pattern");
    a_ = &a;
  }

  LinearSolveStats solve(std::span<const double> b, std::span<double> x) override {
    AQUA_REQUIRE(a_ != nullptr, "solve before refactor_values");
    const CgStats stats = conjugate_gradient_into(*a_, b, x, ws_, options_);
    return {.iterations = stats.iterations,
            .relative_residual = stats.relative_residual,
            .converged = stats.converged};
  }

  std::unique_ptr<LinearSystem> clone() const override {
    return std::make_unique<JacobiCgSystem>(*this);
  }

 private:
  CgOptions options_;
  std::size_t n_ = 0;
  const CsrMatrix* a_ = nullptr;  // non-owning; reset on clone
  CgWorkspace ws_;
};

/// IC(0)-preconditioned conjugate gradients. The incomplete factor L keeps
/// exactly the lower-triangular pattern of A (zero fill), so the symbolic
/// phase is one pattern pass and the numeric refactorization is
/// O(nnz * avg row length) — per Newton iteration that is far cheaper than
/// a full LDL^T refactor once factor fill grows with network size. The GGA
/// node matrix is an M-matrix (diagonally dominant Laplacian plus emitter
/// diagonals), for which IC(0) is known to exist; a diagonal-shift retry
/// covers numerically borderline cases anyway.
class Ic0CgSystem final : public LinearSystem {
 public:
  explicit Ic0CgSystem(CgOptions options) : options_(options) {}
  Ic0CgSystem(const Ic0CgSystem& other)
      : options_(other.options_),
        lp_(other.lp_),
        li_(other.li_),
        a_slot_(other.a_slot_),
        lx_(other.lx_),
        shift_(other.shift_),
        factored_(other.factored_),
        w_(other.w_.size(), 0.0),
        r_(other.r_.size(), 0.0),
        z_(other.z_.size(), 0.0),
        p_(other.p_.size(), 0.0),
        ap_(other.ap_.size(), 0.0) {}

  const char* name() const noexcept override { return "ic0-cg"; }
  std::size_t dimension() const noexcept override { return lp_.empty() ? 0 : lp_.size() - 1; }

  void analyze(const CsrMatrix& pattern) override {
    const std::size_t n = pattern.rows();
    const auto rp = pattern.row_pointers();
    const auto ci = pattern.column_indices();

    lp_.assign(n + 1, 0);
    li_.clear();
    a_slot_.clear();
    for (std::size_t r = 0; r < n; ++r) {
      bool saw_diag = false;
      // CSR columns are sorted, so the lower-triangular run of each row is
      // a prefix ending at the diagonal — which lands last in L's row, the
      // position both triangular sweeps expect.
      for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
        if (ci[k] > r) break;
        li_.push_back(ci[k]);
        a_slot_.push_back(k);
        saw_diag = ci[k] == r;
      }
      AQUA_REQUIRE(saw_diag, "ic0: pattern must store every diagonal entry");
      lp_[r + 1] = li_.size();
    }
    lx_.assign(li_.size(), 0.0);
    w_.assign(n, 0.0);
    r_.assign(n, 0.0);
    z_.assign(n, 0.0);
    p_.assign(n, 0.0);
    ap_.assign(n, 0.0);
    shift_ = 0.0;
    factored_ = false;
  }

  void refactor_values(const CsrMatrix& a) override {
    const std::size_t n = dimension();
    AQUA_REQUIRE(a.rows() == n, "refactor_values: dimension mismatch with analyzed pattern");
    a_ = &a;
    const auto ax = a.values();

    // Manteuffel-style retry: on a non-positive pivot restart the whole
    // factorization with the diagonal inflated by (1 + shift). The shift
    // sticks for subsequent refactorizations (Newton iterations hit
    // similar matrices) and resets only on analyze().
    for (int attempt = 0;; ++attempt) {
      if (factorize_with_shift(ax)) break;
      AQUA_REQUIRE(attempt < 24, "ic0: preconditioner breakdown persists under diagonal shifts");
      shift_ = shift_ == 0.0 ? 1e-8 : shift_ * 8.0;
    }
    factored_ = true;
  }

  LinearSolveStats solve(std::span<const double> b, std::span<double> x) override {
    AQUA_REQUIRE(a_ != nullptr && factored_, "solve before refactor_values");
    const std::size_t n = dimension();
    AQUA_REQUIRE(b.size() == n && x.size() == n, "ic0 solve: dimension mismatch");

    LinearSolveStats stats;
    const double bnorm = norm2(b);
    if (bnorm == 0.0) {
      std::fill(x.begin(), x.end(), 0.0);
      stats.converged = true;
      return stats;
    }

    a_->multiply_into(x, r_);
    for (std::size_t i = 0; i < n; ++i) r_[i] = b[i] - r_[i];
    apply_preconditioner();
    double rz = dot(r_, z_);
    double rz_prev = 0.0;

    // Same single-exit recurrence (and breakdown discipline) as
    // conjugate_gradient_into; see solvers.cpp.
    for (std::size_t it = 0;; ++it) {
      stats.iterations = it;
      stats.relative_residual = norm2(r_) / bnorm;
      if (!std::isfinite(stats.relative_residual)) return stats;
      if (stats.relative_residual < options_.tolerance) {
        stats.converged = true;
        return stats;
      }
      if (it == options_.max_iterations) return stats;

      if (it == 0) {
        std::copy(z_.begin(), z_.end(), p_.begin());
      } else {
        if (rz_prev == 0.0 || !std::isfinite(rz)) return stats;
        const double beta = rz / rz_prev;
        for (std::size_t i = 0; i < n; ++i) p_[i] = z_[i] + beta * p_[i];
      }

      a_->multiply_into(p_, ap_);
      const double pap = dot(p_, ap_);
      if (pap < 0.0) throw SolverError("ic0-cg: matrix is not positive definite");
      if (pap == 0.0 || !std::isfinite(pap)) return stats;
      const double alpha = rz / pap;
      axpy(alpha, p_, x);
      axpy(-alpha, ap_, std::span<double>(r_));
      apply_preconditioner();
      rz_prev = rz;
      rz = dot(r_, z_);
    }
  }

  std::unique_ptr<LinearSystem> clone() const override {
    return std::make_unique<Ic0CgSystem>(*this);
  }

  double diagonal_shift() const noexcept { return shift_; }

 private:
  /// One IC(0) sweep at the current shift; false on non-positive pivot.
  bool factorize_with_shift(std::span<const double> ax) {
    const std::size_t n = dimension();
    // w_ holds the scattered current row and is restored to all-zero at
    // the end of each row, so dot products against earlier rows read exact
    // zeros outside the row pattern — which is precisely the IC(0) drop
    // rule.
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t begin = lp_[i], end = lp_[i + 1];
      for (std::size_t p = begin; p < end; ++p) w_[li_[p]] = ax[a_slot_[p]];
      w_[i] *= 1.0 + shift_;

      bool failed = false;
      for (std::size_t p = begin; p + 1 < end; ++p) {
        const std::size_t j = li_[p];
        double s = w_[j];
        const std::size_t jend = lp_[j + 1] - 1;  // exclude L(j,j)
        for (std::size_t q = lp_[j]; q < jend; ++q) s -= lx_[q] * w_[li_[q]];
        s /= lx_[jend];
        lx_[p] = s;
        w_[j] = s;
      }
      double dii = w_[i];
      for (std::size_t p = begin; p + 1 < end; ++p) dii -= lx_[p] * lx_[p];
      if (dii > 0.0 && std::isfinite(dii)) {
        lx_[end - 1] = std::sqrt(dii);
      } else {
        failed = true;
      }
      for (std::size_t p = begin; p < end; ++p) w_[li_[p]] = 0.0;
      if (failed) return false;
    }
    return true;
  }

  /// z = (L L^T)^{-1} r via the row-major forward/backward sweeps.
  void apply_preconditioner() {
    const std::size_t n = dimension();
    std::copy(r_.begin(), r_.end(), z_.begin());
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t end = lp_[i + 1] - 1;
      double zi = z_[i];
      for (std::size_t p = lp_[i]; p < end; ++p) zi -= lx_[p] * z_[li_[p]];
      z_[i] = zi / lx_[end];
    }
    for (std::size_t i = n; i-- > 0;) {
      const std::size_t end = lp_[i + 1] - 1;
      const double zi = z_[i] / lx_[end];
      z_[i] = zi;
      for (std::size_t p = lp_[i]; p < end; ++p) z_[li_[p]] -= lx_[p] * zi;
    }
  }

  CgOptions options_;
  // Symbolic: CSR of the lower triangle of A, diagonal last per row, plus
  // the source slot of each entry in A's value array.
  std::vector<std::size_t> lp_, li_, a_slot_;
  // Numeric factor and scratch.
  std::vector<double> lx_;
  double shift_ = 0.0;
  bool factored_ = false;
  const CsrMatrix* a_ = nullptr;  // non-owning; reset on clone
  std::vector<double> w_, r_, z_, p_, ap_;
};

}  // namespace

LinearSolveStats LinearSystem::solve_block(std::span<const double> b, std::span<double> x,
                                           std::size_t nrhs) {
  const std::size_t n = dimension();
  AQUA_REQUIRE(b.size() == n * nrhs && x.size() == n * nrhs,
               "solve_block: expected nrhs contiguous vectors of dimension() entries");
  LinearSolveStats aggregate;
  aggregate.converged = true;
  for (std::size_t t = 0; t < nrhs; ++t) {
    const auto stats = solve(b.subspan(t * n, n), x.subspan(t * n, n));
    aggregate.iterations = std::max(aggregate.iterations, stats.iterations);
    aggregate.relative_residual = std::max(aggregate.relative_residual, stats.relative_residual);
    aggregate.converged = aggregate.converged && stats.converged;
  }
  return aggregate;
}

std::unique_ptr<LinearSystem> make_linear_system(LinearBackend backend, CgOptions cg) {
  switch (backend) {
    case LinearBackend::kLdlt:
      return std::make_unique<LdltSystem>();
    case LinearBackend::kJacobiCg:
      return std::make_unique<JacobiCgSystem>(cg);
    case LinearBackend::kIc0Cg:
      return std::make_unique<Ic0CgSystem>(cg);
  }
  throw InvalidArgument("make_linear_system: unknown backend");
}

}  // namespace aqua::linalg
