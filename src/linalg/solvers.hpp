// Iterative solvers for the sparse SPD systems assembled by the hydraulic
// Global Gradient Algorithm.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/sparse.hpp"

namespace aqua::linalg {

struct CgOptions {
  std::size_t max_iterations = 2000;
  double tolerance = 1e-10;  // relative residual ||r|| / ||b||
};

struct CgResult {
  std::vector<double> x;
  std::size_t iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
};

/// Jacobi-preconditioned conjugate gradients for SPD `a`.
/// `x0` (optional) warm-starts the iteration — the hydraulic solver reuses
/// the previous Newton iterate, which typically halves iteration counts.
CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            std::span<const double> x0 = {}, const CgOptions& options = {});

}  // namespace aqua::linalg
