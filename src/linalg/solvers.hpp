// Iterative solvers for the sparse SPD systems assembled by the hydraulic
// Global Gradient Algorithm. The direct (and default) alternative lives in
// cholesky.hpp; CG is retained as the matrix-free fallback and for
// cross-checking the factorization. The backend-agnostic interface over
// both families is linalg::LinearSystem (linear_system.hpp).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/sparse.hpp"

namespace aqua::linalg {

struct CgOptions {
  std::size_t max_iterations = 2000;
  double tolerance = 1e-10;  // relative residual ||r|| / ||b||
};

struct CgResult {
  std::vector<double> x;
  std::size_t iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
  bool breakdown = false;
};

/// Convergence info without the solution vector (the in-place API writes
/// the solution into caller storage). `iterations` always counts the
/// iterations actually applied to the iterate, at every exit — including
/// convergence detected exactly at the iteration budget. `breakdown` is
/// set when the recurrence could not continue (zero curvature p'Ap, a
/// vanished r'z, or a non-finite inner product); the iterate then holds
/// the last valid approximation instead of NaN.
struct CgStats {
  std::size_t iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
  bool breakdown = false;
};

/// Caller-owned scratch for conjugate_gradient_into. Vectors are resized
/// on first use and reused afterwards, so repeated solves of same-sized
/// systems perform no allocation.
///
/// The workspace also caches the CSR slot of each row's diagonal entry for
/// the last matrix pattern it saw, so rebuilding the Jacobi preconditioner
/// on a repeated solve costs O(n) value reads instead of an O(nnz) pattern
/// scan — the case that matters for Newton loops, which refill one pattern
/// every iteration. The cache re-keys automatically when a different
/// pattern arrives (detected via rows/nnz/column-index identity).
struct CgWorkspace {
  std::vector<double> r, z, p, ap, inv_diag;

  // Jacobi-preconditioner slot cache (see above). kNoDiag marks rows with
  // no stored diagonal entry (their preconditioner weight is 1).
  static constexpr std::size_t kNoDiag = static_cast<std::size_t>(-1);
  std::vector<std::size_t> diag_slot;
  const std::size_t* bound_columns = nullptr;  // identity of the cached pattern
  std::size_t bound_rows = 0;
  std::size_t bound_nnz = 0;

  bool bound_to(const CsrMatrix& a) const noexcept {
    return bound_columns == a.column_indices().data() && bound_rows == a.rows() &&
           bound_nnz == a.nnz();
  }
  /// Installs externally known diagonal slots (e.g. the GGA assembly's
  /// per-row diag_slot) so the first solve skips the pattern scan too.
  void bind_diag_slots(const CsrMatrix& a, std::span<const std::size_t> slots);
};

/// Jacobi-preconditioned conjugate gradients for SPD `a`, allocation-free
/// in steady state: `x` carries the warm start on entry and the solution on
/// exit, and all temporaries live in `workspace`. Throws SolverError when
/// the matrix reveals itself indefinite (p'Ap < 0); all other failure
/// modes (iteration budget, breakdown) return honest CgStats with the best
/// iterate left in `x`.
CgStats conjugate_gradient_into(const CsrMatrix& a, std::span<const double> b,
                                std::span<double> x, CgWorkspace& workspace,
                                const CgOptions& options = {});

/// Jacobi-preconditioned conjugate gradients for SPD `a`.
/// `x0` (optional) warm-starts the iteration — the hydraulic solver reuses
/// the previous Newton iterate, which typically halves iteration counts.
CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            std::span<const double> x0 = {}, const CgOptions& options = {});

}  // namespace aqua::linalg
