// Iterative solvers for the sparse SPD systems assembled by the hydraulic
// Global Gradient Algorithm. The direct (and default) alternative lives in
// cholesky.hpp; CG is retained as the matrix-free fallback and for
// cross-checking the factorization.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/sparse.hpp"

namespace aqua::linalg {

struct CgOptions {
  std::size_t max_iterations = 2000;
  double tolerance = 1e-10;  // relative residual ||r|| / ||b||
};

struct CgResult {
  std::vector<double> x;
  std::size_t iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
};

/// Convergence info without the solution vector (the in-place API writes
/// the solution into caller storage).
struct CgStats {
  std::size_t iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
};

/// Caller-owned scratch for conjugate_gradient_into. Vectors are resized
/// on first use and reused afterwards, so repeated solves of same-sized
/// systems perform no allocation.
struct CgWorkspace {
  std::vector<double> r, z, p, ap, inv_diag;
};

/// Jacobi-preconditioned conjugate gradients for SPD `a`, allocation-free:
/// `x` carries the warm start on entry and the solution on exit, and all
/// temporaries live in `workspace`.
CgStats conjugate_gradient_into(const CsrMatrix& a, std::span<const double> b,
                                std::span<double> x, CgWorkspace& workspace,
                                const CgOptions& options = {});

/// Jacobi-preconditioned conjugate gradients for SPD `a`.
/// `x0` (optional) warm-starts the iteration — the hydraulic solver reuses
/// the previous Newton iterate, which typically halves iteration counts.
CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            std::span<const double> x0 = {}, const CgOptions& options = {});

}  // namespace aqua::linalg
