#include "linalg/ordering.hpp"

#include <queue>
#include <utility>

#include "common/error.hpp"

namespace aqua::linalg {

std::vector<std::size_t> minimum_degree_ordering(const CsrMatrix& pattern) {
  const std::size_t n = pattern.rows();
  std::vector<std::size_t> perm;
  perm.reserve(n);
  if (n == 0) return perm;

  // Explicit elimination graph: adjacency lists without the diagonal,
  // symmetrized. Network matrices are tiny relative to ML workloads, so
  // the quadratic-worst-case explicit graph beats a quotient-graph AMD in
  // simplicity while producing the same near-zero fill on planar networks.
  std::vector<std::vector<std::size_t>> adj(n);
  const auto rp = pattern.row_pointers();
  const auto ci = pattern.column_indices();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
      const std::size_t c = ci[k];
      AQUA_REQUIRE(c < n, "ordering: pattern must be square");
      if (c == r) continue;
      adj[r].push_back(c);
      adj[c].push_back(r);
    }
  }
  std::vector<std::size_t> mark(n, 0);
  std::size_t stamp = 0;
  auto dedup = [&](std::vector<std::size_t>& list) {
    ++stamp;
    std::size_t out = 0;
    for (std::size_t w : list) {
      if (mark[w] != stamp) {
        mark[w] = stamp;
        list[out++] = w;
      }
    }
    list.resize(out);
  };
  for (auto& list : adj) dedup(list);

  // Lazy min-heap of (degree, node); stale entries are skipped on pop.
  using Entry = std::pair<std::size_t, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  std::vector<std::size_t> degree(n);
  std::vector<char> eliminated(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    degree[v] = adj[v].size();
    heap.emplace(degree[v], v);
  }

  for (std::size_t step = 0; step < n; ++step) {
    std::size_t v = n;
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (!eliminated[u] && degree[u] == d) {
        v = u;
        break;
      }
    }
    AQUA_REQUIRE(v < n, "internal: ordering heap exhausted");
    eliminated[v] = 1;
    perm.push_back(v);

    // Eliminating v turns its surviving neighborhood into a clique.
    std::vector<std::size_t>& nbrs = adj[v];
    std::size_t alive = 0;
    for (std::size_t u : nbrs) {
      if (!eliminated[u]) nbrs[alive++] = u;
    }
    nbrs.resize(alive);
    for (std::size_t u : nbrs) {
      ++stamp;
      mark[u] = stamp;
      std::vector<std::size_t> merged;
      merged.reserve(adj[u].size() + nbrs.size());
      for (std::size_t w : adj[u]) {
        if (!eliminated[w] && mark[w] != stamp) {
          mark[w] = stamp;
          merged.push_back(w);
        }
      }
      for (std::size_t w : nbrs) {
        if (mark[w] != stamp) {
          mark[w] = stamp;
          merged.push_back(w);
        }
      }
      adj[u] = std::move(merged);
      degree[u] = adj[u].size();
      heap.emplace(degree[u], u);
    }
    nbrs.clear();
    nbrs.shrink_to_fit();
  }
  return perm;
}

std::vector<std::size_t> inverse_permutation(std::span<const std::size_t> perm) {
  std::vector<std::size_t> pinv(perm.size(), 0);
  for (std::size_t k = 0; k < perm.size(); ++k) {
    AQUA_REQUIRE(perm[k] < perm.size(), "inverse_permutation: index out of range");
    pinv[perm[k]] = k;
  }
  return pinv;
}

}  // namespace aqua::linalg
