#include "linalg/sparse.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace aqua::linalg {

std::vector<double> CsrMatrix::multiply(std::span<const double> x) const {
  std::vector<double> y(rows(), 0.0);
  multiply_into(x, y);
  return y;
}

void CsrMatrix::multiply_into(std::span<const double> x, std::span<double> y) const {
  AQUA_REQUIRE(x.size() == rows(), "CSR multiply dimension mismatch");
  AQUA_REQUIRE(y.size() == rows(), "CSR multiply output dimension mismatch");
  AQUA_REQUIRE(x.data() != y.data(), "CSR multiply: x and y must not alias");
  for (std::size_t r = 0; r < rows(); ++r) {
    double sum = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      sum += values_[k] * x[col_idx_[k]];
    }
    y[r] = sum;
  }
}

std::vector<double> CsrMatrix::diagonal() const {
  std::vector<double> diag(rows(), 0.0);
  for (std::size_t r = 0; r < rows(); ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (col_idx_[k] == r) diag[r] = values_[k];
    }
  }
  return diag;
}

double& CsrMatrix::at(std::size_t row, std::size_t col) {
  AQUA_REQUIRE(row < rows(), "CSR row out of range");
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) {
    throw NotFound("CSR entry (" + std::to_string(row) + "," + std::to_string(col) +
                   ") not in sparsity pattern");
  }
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

double CsrMatrix::value_or_zero(std::size_t row, std::size_t col) const noexcept {
  if (row >= rows()) return 0.0;
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

void CsrMatrix::zero_values() noexcept { std::fill(values_.begin(), values_.end(), 0.0); }

void CooBuilder::add(std::size_t row, std::size_t col, double value) {
  AQUA_REQUIRE(row < n_ && col < n_, "COO entry out of range");
  entries_.push_back({row, col, value});
}

CsrMatrix CooBuilder::build() const {
  std::vector<Entry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  CsrMatrix m;
  m.row_ptr_.assign(n_ + 1, 0);
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i + 1;
    double sum = sorted[i].value;
    while (j < sorted.size() && sorted[j].row == sorted[i].row && sorted[j].col == sorted[i].col) {
      sum += sorted[j].value;
      ++j;
    }
    m.col_idx_.push_back(sorted[i].col);
    m.values_.push_back(sum);
    ++m.row_ptr_[sorted[i].row + 1];
    i = j;
  }
  for (std::size_t r = 0; r < n_; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

}  // namespace aqua::linalg
