// Dense linear algebra: a row-major matrix plus the handful of vector and
// matrix operations the ML substrate needs (normal equations, IRLS,
// standardization). Dimensions here are small (features x features), so a
// straightforward cache-friendly implementation is appropriate.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace aqua::linalg {

using Vector = std::vector<double>;

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }

  /// View of row r.
  std::span<double> row(std::size_t r) noexcept { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  const std::vector<double>& data() const noexcept { return data_; }
  std::vector<double>& data() noexcept { return data_; }

  static Matrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// y = A x (rows(A) == y.size(), cols(A) == x.size()).
Vector matvec(const Matrix& a, std::span<const double> x);

/// y = A^T x.
Vector matvec_transpose(const Matrix& a, std::span<const double> x);

/// C = A^T A (Gram matrix), the core of ridge normal equations.
Matrix gram(const Matrix& a);

/// C = A B.
Matrix matmul(const Matrix& a, const Matrix& b);

/// Dot product; spans must have equal length.
double dot(std::span<const double> x, std::span<const double> y);

/// x += alpha * y.
void axpy(double alpha, std::span<const double> y, std::span<double> x);

/// Euclidean norm.
double norm2(std::span<const double> x);

/// In-place Cholesky factorization A = L L^T of an SPD matrix; returns the
/// lower factor. Throws SolverError if A is not (numerically) SPD.
Matrix cholesky(Matrix a);

/// Solves A x = b given the lower Cholesky factor L.
Vector cholesky_solve(const Matrix& lower, std::span<const double> b);

/// Convenience: solve SPD system A x = b (factors internally).
Vector solve_spd(Matrix a, std::span<const double> b);

}  // namespace aqua::linalg
