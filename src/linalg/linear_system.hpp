// Pluggable backends for the SPD node systems of the hydraulic solver.
//
// The Global Gradient Algorithm needs, per Newton iteration, one linear
// solve against a matrix whose *pattern* is fixed (the network adjacency)
// and whose *values* change. At the 96/299-node scale of the paper's
// evaluation networks a cached sparse LDL^T wins outright; at city scale
// (10k-100k nodes, networks/generator.hpp) the numeric refactorization —
// O(factor fill) per Newton iteration — dominates, and an incomplete-
// Cholesky-preconditioned CG warm-started from the previous Newton iterate
// overtakes it. LinearSystem abstracts that choice behind one lifecycle:
//
//   analyze(pattern)       once per topology: symbolic setup
//   refactor_values(a)     per Newton iteration: numeric setup
//   solve(b, x)            x carries the warm start in, the solution out
//   solve_block(b, x, k)   k right-hand sides against one factorization
//   clone()                deep copy preserving the symbolic analysis,
//                          so per-thread solver pools pay it once
//
// GgaSolver picks the backend from SolverOptions::linear_solver; kAuto
// crosses over on node count (see hydraulics/solver.hpp).
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "linalg/solvers.hpp"
#include "linalg/sparse.hpp"

namespace aqua::linalg {

enum class LinearBackend {
  /// Sparse LDL^T, minimum-degree ordering, cached symbolic factorization
  /// (cholesky.hpp). Exact; refactor cost grows with factor fill.
  kLdlt,
  /// Jacobi-preconditioned CG (solvers.hpp). Matrix-free cross-check.
  kJacobiCg,
  /// IC(0)-preconditioned CG: incomplete Cholesky on the matrix pattern
  /// (zero fill), O(nnz) refactor, warm-started iterations. The city-scale
  /// backend.
  kIc0Cg,
};

/// Outcome of one LinearSystem::solve. Direct backends report converged
/// with zero iterations; iterative backends report honest counts and the
/// final relative residual.
struct LinearSolveStats {
  std::size_t iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
};

class LinearSystem {
 public:
  virtual ~LinearSystem() = default;

  virtual const char* name() const noexcept = 0;
  virtual std::size_t dimension() const noexcept = 0;

  /// Symbolic setup for a sparsity pattern (values ignored); once per
  /// topology. Must be called before refactor_values.
  virtual void analyze(const CsrMatrix& pattern) = 0;

  /// Numeric setup for the current values of `a`, whose pattern must match
  /// the analyzed one. Iterative backends keep a non-owning reference to
  /// `a` for their matrix-vector products: `a` must stay alive and
  /// unchanged (values included) until the next refactor_values. Throws
  /// SolverError when the matrix defeats the backend (non-SPD pivot,
  /// preconditioner breakdown beyond repair).
  virtual void refactor_values(const CsrMatrix& a) = 0;

  /// Convenience: analyze + refactor_values in one call.
  void factor(const CsrMatrix& a) {
    analyze(a);
    refactor_values(a);
  }

  /// Solves A x = b. On entry `x` carries the warm start (iterative
  /// backends exploit it; direct backends overwrite). `b` and `x` must not
  /// alias. Non-convergence is reported via the stats, not thrown.
  virtual LinearSolveStats solve(std::span<const double> b, std::span<double> x) = 0;

  /// Solves `nrhs` systems sharing the current factorization. `b` and `x`
  /// hold nrhs vectors of dimension() entries each, each vector contiguous.
  /// Results are identical to nrhs repeated solve() calls; the direct
  /// backend runs genuinely blocked triangular passes. Reported iterations
  /// are the per-RHS maximum; converged means all RHS converged.
  virtual LinearSolveStats solve_block(std::span<const double> b, std::span<double> x,
                                       std::size_t nrhs);

  /// Deep copy preserving symbolic (and numeric) state — what lets a
  /// per-thread solver pool share one analysis per network. The clone does
  /// not inherit the non-owning matrix reference; call refactor_values on
  /// it before solving.
  virtual std::unique_ptr<LinearSystem> clone() const = 0;
};

/// Factory. `cg` configures the iterative backends (ignored by kLdlt).
std::unique_ptr<LinearSystem> make_linear_system(LinearBackend backend, CgOptions cg = {});

}  // namespace aqua::linalg
