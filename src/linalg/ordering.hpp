// Fill-reducing node orderings for sparse symmetric factorization. The
// hydraulic node matrix has the sparsity of the water-network graph, and a
// minimum-degree elimination order keeps the LDL^T factor nearly as sparse
// as the matrix itself — the same idea EPANET 2 uses (its `smatrix.c`
// reorders nodes by minimum degree before symbolic factorization).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/sparse.hpp"

namespace aqua::linalg {

/// Minimum-degree elimination ordering for the symmetric sparsity pattern
/// of `pattern` (values are ignored; the pattern is symmetrized
/// internally). Returns `perm` with perm[k] = original index eliminated at
/// step k. Deterministic: degree ties break on the lowest node index.
std::vector<std::size_t> minimum_degree_ordering(const CsrMatrix& pattern);

/// pinv[perm[k]] = k.
std::vector<std::size_t> inverse_permutation(std::span<const std::size_t> perm);

}  // namespace aqua::linalg
