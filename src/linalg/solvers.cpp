#include "linalg/solvers.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/dense.hpp"

namespace aqua::linalg {
namespace {

/// Rebuilds the workspace diagonal-slot cache by scanning the pattern once
/// (O(nnz)); every subsequent solve against the same pattern refills the
/// preconditioner from the cached slots in O(n).
void rebuild_diag_slots(CgWorkspace& ws, const CsrMatrix& a) {
  const std::size_t n = a.rows();
  const auto rp = a.row_pointers();
  const auto ci = a.column_indices();
  ws.diag_slot.assign(n, CgWorkspace::kNoDiag);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
      if (ci[k] == r) ws.diag_slot[r] = k;
    }
  }
  ws.bound_columns = ci.data();
  ws.bound_rows = n;
  ws.bound_nnz = a.nnz();
}

}  // namespace

void CgWorkspace::bind_diag_slots(const CsrMatrix& a, std::span<const std::size_t> slots) {
  AQUA_REQUIRE(slots.size() == a.rows(), "bind_diag_slots: one slot per row required");
  diag_slot.assign(slots.begin(), slots.end());
  bound_columns = a.column_indices().data();
  bound_rows = a.rows();
  bound_nnz = a.nnz();
}

CgStats conjugate_gradient_into(const CsrMatrix& a, std::span<const double> b,
                                std::span<double> x, CgWorkspace& ws,
                                const CgOptions& options) {
  const std::size_t n = a.rows();
  AQUA_REQUIRE(b.size() == n, "conjugate_gradient dimension mismatch");
  AQUA_REQUIRE(x.size() == n, "conjugate_gradient solution size mismatch");

  CgStats stats;
  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    stats.converged = true;
    return stats;
  }

  ws.r.resize(n);
  ws.z.resize(n);
  ws.p.resize(n);
  ws.ap.resize(n);
  ws.inv_diag.resize(n);

  // Jacobi preconditioner M = diag(A): slot positions from the workspace
  // cache (rebuilt only when the pattern changes), values re-read every
  // call because Newton loops refill the same pattern with new values.
  if (!ws.bound_to(a)) rebuild_diag_slots(ws, a);
  {
    const auto av = a.values();
    for (std::size_t r = 0; r < n; ++r) {
      const std::size_t slot = ws.diag_slot[r];
      const double d = slot == CgWorkspace::kNoDiag ? 0.0 : av[slot];
      ws.inv_diag[r] = (d != 0.0) ? 1.0 / d : 1.0;
    }
  }

  a.multiply_into(x, ws.r);
  for (std::size_t i = 0; i < n; ++i) ws.r[i] = b[i] - ws.r[i];
  for (std::size_t i = 0; i < n; ++i) ws.z[i] = ws.inv_diag[i] * ws.r[i];
  double rz = dot(ws.r, ws.z);
  double rz_prev = 0.0;

  // Single exit discipline: the residual is checked at the top of every
  // pass, so `iterations` is the number of updates applied to `x` at every
  // return — including convergence detected exactly at the budget (the old
  // post-loop epilogue reported that case inconsistently).
  for (std::size_t it = 0;; ++it) {
    stats.iterations = it;
    stats.relative_residual = norm2(ws.r) / bnorm;
    if (!std::isfinite(stats.relative_residual)) {
      stats.breakdown = true;
      return stats;
    }
    if (stats.relative_residual < options.tolerance) {
      stats.converged = true;
      return stats;
    }
    if (it == options.max_iterations) return stats;

    if (it == 0) {
      std::copy(ws.z.begin(), ws.z.end(), ws.p.begin());
    } else {
      // beta = (r'z)_k / (r'z)_{k-1}. The denominator can underflow to
      // exactly zero mid-iteration on near-converged / badly scaled
      // systems; dividing would inject NaN into the iterate, so report
      // breakdown with the last valid iterate instead.
      if (rz_prev == 0.0 || !std::isfinite(rz)) {
        stats.breakdown = true;
        return stats;
      }
      const double beta = rz / rz_prev;
      for (std::size_t i = 0; i < n; ++i) ws.p[i] = ws.z[i] + beta * ws.p[i];
    }

    a.multiply_into(ws.p, ws.ap);
    const double pap = dot(ws.p, ws.ap);
    if (pap < 0.0) {
      throw SolverError("conjugate_gradient: matrix is not positive definite");
    }
    if (pap == 0.0 || !std::isfinite(pap)) {
      // Zero curvature along p (singular direction or underflow): x is
      // still the best iterate; honest failure beats a NaN solution.
      stats.breakdown = true;
      return stats;
    }
    const double alpha = rz / pap;
    axpy(alpha, ws.p, x);
    axpy(-alpha, ws.ap, ws.r);
    for (std::size_t i = 0; i < n; ++i) ws.z[i] = ws.inv_diag[i] * ws.r[i];
    rz_prev = rz;
    rz = dot(ws.r, ws.z);
  }
}

CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            std::span<const double> x0, const CgOptions& options) {
  const std::size_t n = a.rows();
  AQUA_REQUIRE(x0.empty() || x0.size() == n, "warm-start size mismatch");
  CgResult result;
  result.x.assign(n, 0.0);
  if (!x0.empty()) result.x.assign(x0.begin(), x0.end());
  CgWorkspace ws;
  const CgStats stats = conjugate_gradient_into(a, b, result.x, ws, options);
  result.iterations = stats.iterations;
  result.relative_residual = stats.relative_residual;
  result.converged = stats.converged;
  result.breakdown = stats.breakdown;
  return result;
}

}  // namespace aqua::linalg
