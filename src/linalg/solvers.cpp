#include "linalg/solvers.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/dense.hpp"

namespace aqua::linalg {

CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            std::span<const double> x0, const CgOptions& options) {
  const std::size_t n = a.rows();
  AQUA_REQUIRE(b.size() == n, "conjugate_gradient dimension mismatch");
  AQUA_REQUIRE(x0.empty() || x0.size() == n, "warm-start size mismatch");

  CgResult result;
  result.x.assign(n, 0.0);
  if (!x0.empty()) result.x.assign(x0.begin(), x0.end());

  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    result.x.assign(n, 0.0);
    result.converged = true;
    return result;
  }

  // Jacobi preconditioner M = diag(A).
  std::vector<double> inv_diag = a.diagonal();
  for (double& d : inv_diag) d = (d != 0.0) ? 1.0 / d : 1.0;

  std::vector<double> r = a.multiply(result.x);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];

  std::vector<double> z(n), p(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  p = z;
  double rz = dot(r, z);

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    const double rnorm = norm2(r);
    result.relative_residual = rnorm / bnorm;
    if (result.relative_residual < options.tolerance) {
      result.iterations = it;
      result.converged = true;
      return result;
    }
    const std::vector<double> ap = a.multiply(p);
    const double pap = dot(p, ap);
    if (pap <= 0.0 || !std::isfinite(pap)) {
      throw SolverError("conjugate_gradient: matrix is not positive definite");
    }
    const double alpha = rz / pap;
    axpy(alpha, p, result.x);
    axpy(-alpha, ap, r);
    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  result.iterations = options.max_iterations;
  result.relative_residual = norm2(r) / bnorm;
  result.converged = result.relative_residual < options.tolerance;
  return result;
}

}  // namespace aqua::linalg
