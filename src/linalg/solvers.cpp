#include "linalg/solvers.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/dense.hpp"

namespace aqua::linalg {

CgStats conjugate_gradient_into(const CsrMatrix& a, std::span<const double> b,
                                std::span<double> x, CgWorkspace& ws,
                                const CgOptions& options) {
  const std::size_t n = a.rows();
  AQUA_REQUIRE(b.size() == n, "conjugate_gradient dimension mismatch");
  AQUA_REQUIRE(x.size() == n, "conjugate_gradient solution size mismatch");

  CgStats stats;
  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    stats.converged = true;
    return stats;
  }

  ws.r.resize(n);
  ws.z.resize(n);
  ws.p.resize(n);
  ws.ap.resize(n);
  ws.inv_diag.resize(n);

  // Jacobi preconditioner M = diag(A).
  {
    const auto rp = a.row_pointers();
    const auto ci = a.column_indices();
    const auto av = a.values();
    for (std::size_t r = 0; r < n; ++r) {
      double d = 0.0;
      for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
        if (ci[k] == r) d = av[k];
      }
      ws.inv_diag[r] = (d != 0.0) ? 1.0 / d : 1.0;
    }
  }

  a.multiply_into(x, ws.r);
  for (std::size_t i = 0; i < n; ++i) ws.r[i] = b[i] - ws.r[i];
  for (std::size_t i = 0; i < n; ++i) ws.z[i] = ws.inv_diag[i] * ws.r[i];
  std::copy(ws.z.begin(), ws.z.end(), ws.p.begin());
  double rz = dot(ws.r, ws.z);

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    const double rnorm = norm2(ws.r);
    stats.relative_residual = rnorm / bnorm;
    if (stats.relative_residual < options.tolerance) {
      stats.iterations = it;
      stats.converged = true;
      return stats;
    }
    a.multiply_into(ws.p, ws.ap);
    const double pap = dot(ws.p, ws.ap);
    if (pap <= 0.0 || !std::isfinite(pap)) {
      throw SolverError("conjugate_gradient: matrix is not positive definite");
    }
    const double alpha = rz / pap;
    axpy(alpha, ws.p, x);
    axpy(-alpha, ws.ap, ws.r);
    for (std::size_t i = 0; i < n; ++i) ws.z[i] = ws.inv_diag[i] * ws.r[i];
    const double rz_next = dot(ws.r, ws.z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) ws.p[i] = ws.z[i] + beta * ws.p[i];
  }
  stats.iterations = options.max_iterations;
  stats.relative_residual = norm2(ws.r) / bnorm;
  stats.converged = stats.relative_residual < options.tolerance;
  return stats;
}

CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            std::span<const double> x0, const CgOptions& options) {
  const std::size_t n = a.rows();
  AQUA_REQUIRE(x0.empty() || x0.size() == n, "warm-start size mismatch");
  CgResult result;
  result.x.assign(n, 0.0);
  if (!x0.empty()) result.x.assign(x0.begin(), x0.end());
  CgWorkspace ws;
  const CgStats stats = conjugate_gradient_into(a, b, result.x, ws, options);
  result.iterations = stats.iterations;
  result.relative_residual = stats.relative_residual;
  result.converged = stats.converged;
  return result;
}

}  // namespace aqua::linalg
