// Sparse LDL^T (Cholesky) factorization with split symbolic/numeric
// phases, mirroring EPANET 2's solver core: the elimination order and the
// factor's sparsity structure are computed once per network topology, and
// every Newton iteration only refills numeric values and re-runs the
// numeric factorization. Up-looking row algorithm in the style of Davis's
// LDL (SIAM, "Direct Methods for Sparse Linear Systems", ch. 4).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/sparse.hpp"

namespace aqua::linalg {

/// Reusable sparse LDL^T factorization of SPD matrices sharing one
/// sparsity pattern. Workflow:
///
///   SparseLdlt f;
///   f.analyze(pattern);        // once: ordering + elimination tree + L pattern
///   f.factorize(a);            // per matrix: numeric values only
///   f.solve(b, x);             // allocation-free triangular solves
///
/// `factorize`/`solve` perform no heap allocation after `analyze`, which is
/// what makes repeated hydraulic solves cheap.
class SparseLdlt {
 public:
  /// Symbolic analysis of `pattern` (square, symmetric, diagonal present
  /// on every row). `perm` is a fill-reducing elimination order; empty
  /// selects minimum-degree. Values of `pattern` are ignored.
  void analyze(const CsrMatrix& pattern, std::vector<std::size_t> perm = {});

  /// Numeric factorization of `a`, which must have exactly the sparsity
  /// pattern given to analyze(). Throws SolverError when a pivot is
  /// non-positive or non-finite (matrix not SPD / singular).
  void factorize(const CsrMatrix& a);

  /// Solves A x = b using the current factorization. `b` and `x` must not
  /// alias and both have dimension() elements.
  void solve(std::span<const double> b, std::span<double> x);

  /// Convenience allocating overload.
  std::vector<double> solve(std::span<const double> b);

  /// Solves A X = B for `nrhs` right-hand sides sharing the current
  /// factorization. `b` and `x` hold nrhs vectors of dimension() entries
  /// each, each vector contiguous (sizes nrhs * dimension()); they must
  /// not alias. Per-RHS arithmetic is the identical operation sequence to
  /// solve(), so results are bit-identical to nrhs repeated solves — the
  /// blocked passes just amortize each factor column across up to
  /// kBlockWidth right-hand sides for cache reuse.
  void solve_block(std::span<const double> b, std::span<double> x, std::size_t nrhs);

  /// RHS tile width of solve_block (scratch is dimension() * kBlockWidth).
  static constexpr std::size_t kBlockWidth = 8;

  bool analyzed() const noexcept { return !perm_.empty() || dimension() == 0; }
  bool factorized() const noexcept { return factorized_; }
  std::size_t dimension() const noexcept { return parent_.size(); }
  /// Off-diagonal nonzeros of L (fill metric for ordering quality).
  std::size_t factor_nnz() const noexcept { return li_.size(); }

  std::span<const std::size_t> permutation() const noexcept { return perm_; }
  std::span<const double> diagonal() const noexcept { return d_; }
  std::span<const double> factor_values() const noexcept { return lx_; }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  // Symbolic structure (set by analyze).
  std::vector<std::size_t> perm_, pinv_;
  std::vector<std::size_t> parent_;  // elimination tree; kNone at roots
  std::vector<std::size_t> lp_;      // column pointers of L, size n+1
  std::vector<std::size_t> li_;      // row indices of L (strictly below diag)
  // Numeric factor (set by factorize).
  std::vector<double> lx_;  // values of L, aligned with li_
  std::vector<double> d_;   // diagonal of D
  bool factorized_ = false;
  // Scratch reused across factorize/solve calls; no allocation in steady
  // state.
  std::vector<std::size_t> flag_, pattern_, stack_, lnz_;
  std::vector<double> y_, work_;
  std::vector<double> block_work_;  // node-major tile for solve_block
};

}  // namespace aqua::linalg
