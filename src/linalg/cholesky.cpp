#include "linalg/cholesky.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "linalg/ordering.hpp"

namespace aqua::linalg {

void SparseLdlt::analyze(const CsrMatrix& pattern, std::vector<std::size_t> perm) {
  const std::size_t n = pattern.rows();
  if (perm.empty()) perm = minimum_degree_ordering(pattern);
  AQUA_REQUIRE(perm.size() == n, "analyze: permutation size mismatch");
  perm_ = std::move(perm);
  pinv_ = inverse_permutation(perm_);

  const auto rp = pattern.row_pointers();
  const auto ci = pattern.column_indices();

  // Elimination tree and column counts of L for the permuted matrix
  // (Davis, ldl_symbolic). Row k of the permuted matrix is original row
  // perm_[k]; original column c maps to pinv_[c].
  parent_.assign(n, kNone);
  flag_.assign(n, kNone);
  std::vector<std::size_t> col_count(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    flag_[k] = k;
    const std::size_t r = perm_[k];
    for (std::size_t p = rp[r]; p < rp[r + 1]; ++p) {
      std::size_t i = pinv_[ci[p]];
      if (i >= k) continue;
      // Walk up the elimination tree from i to the flagged prefix; every
      // node passed gains a nonzero in column i..'s chain for row k.
      for (; flag_[i] != k; i = parent_[i]) {
        if (parent_[i] == kNone) parent_[i] = k;
        ++col_count[i];
        flag_[i] = k;
      }
    }
  }

  lp_.assign(n + 1, 0);
  for (std::size_t k = 0; k < n; ++k) lp_[k + 1] = lp_[k] + col_count[k];
  li_.assign(lp_[n], 0);
  lx_.assign(lp_[n], 0.0);
  d_.assign(n, 0.0);
  pattern_.assign(n, 0);
  stack_.assign(n, 0);
  lnz_.assign(n, 0);
  y_.assign(n, 0.0);
  work_.assign(n, 0.0);
  factorized_ = false;
}

void SparseLdlt::factorize(const CsrMatrix& a) {
  const std::size_t n = dimension();
  AQUA_REQUIRE(analyzed(), "factorize before analyze");
  AQUA_REQUIRE(a.rows() == n, "factorize: dimension mismatch with analyzed pattern");

  const auto rp = a.row_pointers();
  const auto ci = a.column_indices();
  const auto ax = a.values();

  // flag_ doubles as the per-step visited marker; reset so stale marks
  // from a previous factorization cannot collide with step indices.
  flag_.assign(n, kNone);
  std::fill(lnz_.begin(), lnz_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Scatter the upper-triangular part of permuted column k into y_ and
    // compute the nonzero pattern of row k of L as elimination-tree
    // reaches, in topological order on stack_[top..n).
    std::size_t top = n;
    flag_[k] = k;
    y_[k] = 0.0;
    const std::size_t r = perm_[k];
    for (std::size_t p = rp[r]; p < rp[r + 1]; ++p) {
      const std::size_t i0 = pinv_[ci[p]];
      if (i0 > k) continue;
      y_[i0] += ax[p];
      std::size_t len = 0;
      for (std::size_t i = i0; flag_[i] != k; i = parent_[i]) {
        pattern_[len++] = i;
        flag_[i] = k;
      }
      while (len > 0) stack_[--top] = pattern_[--len];
    }

    double dk = y_[k];
    y_[k] = 0.0;
    for (; top < n; ++top) {
      const std::size_t i = stack_[top];
      const double yi = y_[i];
      y_[i] = 0.0;
      const std::size_t pend = lp_[i] + lnz_[i];
      for (std::size_t p = lp_[i]; p < pend; ++p) y_[li_[p]] -= lx_[p] * yi;
      const double lki = yi / d_[i];
      dk -= lki * yi;
      li_[pend] = k;
      lx_[pend] = lki;
      ++lnz_[i];
    }
    if (!(dk > 0.0) || !std::isfinite(dk)) {
      factorized_ = false;
      throw SolverError("sparse LDLT: non-positive pivot " + std::to_string(dk) + " at column " +
                        std::to_string(k) + " (matrix is singular or not positive definite)");
    }
    d_[k] = dk;
  }
  factorized_ = true;
}

void SparseLdlt::solve(std::span<const double> b, std::span<double> x) {
  const std::size_t n = dimension();
  AQUA_REQUIRE(factorized_, "solve before factorize");
  AQUA_REQUIRE(b.size() == n && x.size() == n, "solve: dimension mismatch");
  AQUA_REQUIRE(b.data() != x.data(), "solve: b and x must not alias");

  // work = P b; L work' = work; work'' = D^{-1} work'; L^T z = work'';
  // x = P^T z.
  for (std::size_t k = 0; k < n; ++k) work_[k] = b[perm_[k]];
  for (std::size_t j = 0; j < n; ++j) {
    const double xj = work_[j];
    for (std::size_t p = lp_[j]; p < lp_[j + 1]; ++p) work_[li_[p]] -= lx_[p] * xj;
  }
  for (std::size_t k = 0; k < n; ++k) work_[k] /= d_[k];
  for (std::size_t j = n; j-- > 0;) {
    double xj = work_[j];
    for (std::size_t p = lp_[j]; p < lp_[j + 1]; ++p) xj -= lx_[p] * work_[li_[p]];
    work_[j] = xj;
  }
  for (std::size_t k = 0; k < n; ++k) x[perm_[k]] = work_[k];
}

std::vector<double> SparseLdlt::solve(std::span<const double> b) {
  std::vector<double> x(dimension(), 0.0);
  solve(b, x);
  return x;
}

void SparseLdlt::solve_block(std::span<const double> b, std::span<double> x, std::size_t nrhs) {
  const std::size_t n = dimension();
  AQUA_REQUIRE(factorized_, "solve_block before factorize");
  AQUA_REQUIRE(b.size() == n * nrhs && x.size() == n * nrhs,
               "solve_block: expected nrhs contiguous vectors of dimension() entries");
  AQUA_REQUIRE(b.data() != x.data(), "solve_block: b and x must not alias");

  if (block_work_.size() < n * kBlockWidth) block_work_.assign(n * kBlockWidth, 0.0);
  for (std::size_t t0 = 0; t0 < nrhs; t0 += kBlockWidth) {
    const std::size_t w = std::min(kBlockWidth, nrhs - t0);
    double* work = block_work_.data();
    // Gather the tile node-major (all RHS of one permuted row contiguous)
    // so the triangular passes touch each factor column once per tile.
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t src = perm_[k];
      for (std::size_t t = 0; t < w; ++t) work[k * w + t] = b[(t0 + t) * n + src];
    }
    for (std::size_t j = 0; j < n; ++j) {
      const double* xj = work + j * w;
      for (std::size_t p = lp_[j]; p < lp_[j + 1]; ++p) {
        double* row = work + li_[p] * w;
        const double l = lx_[p];
        for (std::size_t t = 0; t < w; ++t) row[t] -= l * xj[t];
      }
    }
    for (std::size_t k = 0; k < n; ++k) {
      const double dk = d_[k];
      for (std::size_t t = 0; t < w; ++t) work[k * w + t] /= dk;
    }
    for (std::size_t j = n; j-- > 0;) {
      double* xj = work + j * w;
      for (std::size_t p = lp_[j]; p < lp_[j + 1]; ++p) {
        const double* row = work + li_[p] * w;
        const double l = lx_[p];
        for (std::size_t t = 0; t < w; ++t) xj[t] -= l * row[t];
      }
    }
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t dst = perm_[k];
      for (std::size_t t = 0; t < w; ++t) x[(t0 + t) * n + dst] = work[k * w + t];
    }
  }
}

}  // namespace aqua::linalg
