// Sparse linear algebra for the hydraulic solver. The Global Gradient
// Algorithm solves an SPD system whose sparsity pattern is the node
// adjacency of the water network, so a CSR matrix with a coordinate-based
// builder covers everything the solver needs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace aqua::linalg {

/// Compressed-sparse-row matrix (square, as used for SPD node systems).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  std::size_t rows() const noexcept { return row_ptr_.empty() ? 0 : row_ptr_.size() - 1; }
  std::size_t nnz() const noexcept { return values_.size(); }

  /// y = A x.
  std::vector<double> multiply(std::span<const double> x) const;

  /// y = A x into caller storage (`y.size() == rows()`); the hot-path
  /// variant used by the allocation-free solvers. `x` and `y` must not
  /// alias.
  void multiply_into(std::span<const double> x, std::span<double> y) const;

  /// Diagonal entries (0 where a row has no stored diagonal).
  std::vector<double> diagonal() const;

  /// Mutable access to the value at (row, col); throws NotFound when the
  /// entry is not in the sparsity pattern.
  double& at(std::size_t row, std::size_t col);
  double value_or_zero(std::size_t row, std::size_t col) const noexcept;

  /// Sets every stored value to zero, keeping the pattern (the hydraulic
  /// solver refills the same pattern every Newton iteration).
  void zero_values() noexcept;

  std::span<const std::size_t> row_pointers() const noexcept { return row_ptr_; }
  std::span<const std::size_t> column_indices() const noexcept { return col_idx_; }
  std::span<const double> values() const noexcept { return values_; }
  std::span<double> values() noexcept { return values_; }

  friend class CooBuilder;

 private:
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

/// Accumulating coordinate-format builder: duplicate (row, col) insertions
/// are summed, which matches how element contributions assemble the GGA
/// matrix.
class CooBuilder {
 public:
  explicit CooBuilder(std::size_t n) : n_(n) {}

  void add(std::size_t row, std::size_t col, double value);
  std::size_t dimension() const noexcept { return n_; }

  /// Builds the CSR matrix (sorted column indices, duplicates merged).
  CsrMatrix build() const;

 private:
  struct Entry {
    std::size_t row;
    std::size_t col;
    double value;
  };
  std::size_t n_;
  std::vector<Entry> entries_;
};

}  // namespace aqua::linalg
