#include "linalg/dense.hpp"

#include <cmath>

#include "common/error.hpp"

namespace aqua::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector matvec(const Matrix& a, std::span<const double> x) {
  AQUA_REQUIRE(a.cols() == x.size(), "matvec dimension mismatch");
  Vector y(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto row = a.row(r);
    double sum = 0.0;
    for (std::size_t c = 0; c < row.size(); ++c) sum += row[c] * x[c];
    y[r] = sum;
  }
  return y;
}

Vector matvec_transpose(const Matrix& a, std::span<const double> x) {
  AQUA_REQUIRE(a.rows() == x.size(), "matvec_transpose dimension mismatch");
  Vector y(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto row = a.row(r);
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t c = 0; c < row.size(); ++c) y[c] += row[c] * xr;
  }
  return y;
}

Matrix gram(const Matrix& a) {
  Matrix g(a.cols(), a.cols(), 0.0);
  // Accumulate row outer products: better locality than column dot products.
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto row = a.row(r);
    for (std::size_t i = 0; i < row.size(); ++i) {
      const double ri = row[i];
      if (ri == 0.0) continue;
      for (std::size_t j = i; j < row.size(); ++j) g(i, j) += ri * row[j];
    }
  }
  for (std::size_t i = 0; i < g.rows(); ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  AQUA_REQUIRE(a.cols() == b.rows(), "matmul dimension mismatch");
  Matrix c(a.rows(), b.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const auto brow = b.row(k);
      auto crow = c.row(i);
      for (std::size_t j = 0; j < brow.size(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

double dot(std::span<const double> x, std::span<const double> y) {
  AQUA_REQUIRE(x.size() == y.size(), "dot dimension mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

void axpy(double alpha, std::span<const double> y, std::span<double> x) {
  AQUA_REQUIRE(x.size() == y.size(), "axpy dimension mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += alpha * y[i];
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

Matrix cholesky(Matrix a) {
  AQUA_REQUIRE(a.rows() == a.cols(), "cholesky requires a square matrix");
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= a(j, k) * a(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      throw SolverError("cholesky: matrix is not positive definite at column " +
                        std::to_string(j));
    }
    const double ljj = std::sqrt(diag);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= a(i, k) * a(j, k);
      a(i, j) = sum / ljj;
    }
    for (std::size_t c = j + 1; c < n; ++c) a(j, c) = 0.0;  // keep strictly lower form
  }
  return a;
}

Vector cholesky_solve(const Matrix& lower, std::span<const double> b) {
  AQUA_REQUIRE(lower.rows() == b.size(), "cholesky_solve dimension mismatch");
  const std::size_t n = lower.rows();
  Vector y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= lower(i, k) * y[k];
    y[i] = sum / lower(i, i);
  }
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= lower(k, i) * x[k];
    x[i] = sum / lower(i, i);
  }
  return x;
}

Vector solve_spd(Matrix a, std::span<const double> b) {
  return cholesky_solve(cholesky(std::move(a)), b);
}

}  // namespace aqua::linalg
