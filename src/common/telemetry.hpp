// Lightweight per-stage telemetry for the serving-side hot paths. A
// StageTimes is a fixed set of named stages (monotonic-clock seconds +
// call counts) plus named counters, all index-addressed so recording is a
// couple of adds — cheap enough for per-snapshot instrumentation. Workers
// accumulate into private StageTimes instances (no locks in the hot path)
// and merge into a shared Registry when their chunk completes; the
// Registry renders the aggregate as flat (metric, value) pairs following
// the bench_util JSON conventions ("stage.<name>.seconds", ".calls",
// "counter.<name>").
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace aqua::telemetry {

/// Seconds on the monotonic clock (for interval measurement only).
inline double monotonic_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Fixed-schema stage accumulator. Stage and counter names are set at
/// construction; recording is by index so the hot path never touches a
/// map or a string.
class StageTimes {
 public:
  StageTimes() = default;
  StageTimes(std::vector<std::string> stage_names, std::vector<std::string> counter_names);

  std::size_t num_stages() const noexcept { return stage_names_.size(); }
  std::size_t num_counters() const noexcept { return counter_names_.size(); }
  const std::vector<std::string>& stage_names() const noexcept { return stage_names_; }

  /// Adds one timed invocation of `stage` (index into stage_names).
  void add_seconds(std::size_t stage, double seconds, std::uint64_t calls = 1);
  void add_count(std::size_t counter, std::uint64_t n);

  double seconds(std::size_t stage) const;
  std::uint64_t calls(std::size_t stage) const;
  std::uint64_t count(std::size_t counter) const;

  /// Element-wise accumulation of another instance with the same schema.
  void merge(const StageTimes& other);

  /// Zeroes every accumulator (schema is retained).
  void reset();

  /// Flat metric pairs: "<prefix>stage.<name>.seconds", "....calls" and
  /// "<prefix>counter.<name>", ready for bench_util::json_report.
  std::vector<std::pair<std::string, double>> metrics(const std::string& prefix = "") const;

 private:
  std::vector<std::string> stage_names_;
  std::vector<std::string> counter_names_;
  std::vector<double> seconds_;
  std::vector<std::uint64_t> calls_;
  std::vector<std::uint64_t> counts_;
};

/// RAII interval timer: measures construction-to-destruction on the
/// monotonic clock and adds it to one stage of a StageTimes.
class ScopedStageTimer {
 public:
  ScopedStageTimer(StageTimes& times, std::size_t stage)
      : times_(times), stage_(stage), start_(std::chrono::steady_clock::now()) {}
  ~ScopedStageTimer() {
    times_.add_seconds(
        stage_, std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count());
  }
  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  StageTimes& times_;
  std::size_t stage_;
  std::chrono::steady_clock::time_point start_;
};

/// Thread-safe aggregate of worker-local StageTimes. Workers call merge()
/// once per chunk; readers take a consistent snapshot.
///
/// Concurrency contract (relied on by the serving daemon, which hits one
/// Registry from ingest, batch-worker, model-swap, and export threads at
/// once): every member — merge, add_seconds, add_count, snapshot, metrics,
/// reset — may be called concurrently from any number of threads. All of
/// them serialize on one internal mutex, so a snapshot()/metrics() is
/// always a consistent point-in-time view (never a torn read of seconds
/// updated but calls not), and concurrent increments are never lost: after
/// all writers join, the totals equal the arithmetic sum of every recorded
/// event. The schema (stage/counter names and arity) is fixed at
/// construction and never mutated, so it needs no synchronization.
///
/// Recording granularity guidance: per-event add_count/add_seconds are
/// fine for admission-rate paths (a couple of atomic-ish locked adds);
/// per-snapshot hot loops should still batch into a worker-local
/// StageTimes and merge() once per chunk.
class Registry {
 public:
  explicit Registry(StageTimes schema) : total_(std::move(schema)) {}

  void merge(const StageTimes& worker) {
    const std::lock_guard<std::mutex> lock(mutex_);
    total_.merge(worker);
  }

  /// Direct recording for low-rate events (admission, sheds, swaps) where
  /// a worker-local accumulator would be overkill.
  void add_seconds(std::size_t stage, double seconds, std::uint64_t calls = 1) {
    const std::lock_guard<std::mutex> lock(mutex_);
    total_.add_seconds(stage, seconds, calls);
  }

  void add_count(std::size_t counter, std::uint64_t n) {
    const std::lock_guard<std::mutex> lock(mutex_);
    total_.add_count(counter, n);
  }

  std::uint64_t count(std::size_t counter) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return total_.count(counter);
  }

  StageTimes snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return total_;
  }

  /// Consistent flat metric pairs (see StageTimes::metrics); equivalent to
  /// snapshot().metrics(prefix) without the intermediate copy being
  /// visible to the caller.
  std::vector<std::pair<std::string, double>> metrics(const std::string& prefix = "") const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return total_.metrics(prefix);
  }

  void reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    total_.reset();
  }

 private:
  mutable std::mutex mutex_;
  StageTimes total_;
};

}  // namespace aqua::telemetry
