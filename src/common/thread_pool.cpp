#include "common/thread_pool.hpp"

#include <atomic>

#include "common/error.hpp"

namespace aqua {

namespace {
// Pool the current thread works for (nullptr off-pool). Lets parallel_for
// detect re-entrant calls from its own workers.
thread_local ThreadPool* t_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    AQUA_REQUIRE(!stopping_, "submit on a stopping ThreadPool");
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

bool ThreadPool::on_worker_thread() const noexcept { return t_worker_pool == this; }

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // A nested call from one of our own workers must not block on futures:
  // the chunk tasks would sit in the queue behind the very task that is
  // waiting for them. Run inline instead.
  if (n == 1 || workers_.size() == 1 || on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  const std::size_t parallelism = std::min(workers_.size(), n);
  std::vector<std::future<void>> futures;
  futures.reserve(parallelism);
  for (std::size_t w = 0; w < parallelism; ++w) {
    futures.push_back(submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    }));
  }
  // Wait for every chunk before unwinding: the chunk lambdas capture this
  // frame's locals, so returning (or throwing) while any of them still runs
  // would leave workers reading a dead stack frame. Rethrow the first
  // exception only once all chunks are done.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // exceptions are captured in the packaged_task's future
  }
}

}  // namespace aqua
