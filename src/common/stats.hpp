// Small descriptive-statistics helpers used by experiment harnesses and
// tests (means, deviations, percentiles, online accumulators).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace aqua {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> values) noexcept;

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
double stddev(std::span<const double> values) noexcept;

/// Linear-interpolated percentile, q in [0, 100]. Copies and sorts.
double percentile(std::span<const double> values, double q);

/// min / max of a non-empty span.
double min_value(std::span<const double> values);
double max_value(std::span<const double> values);

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  // sample variance
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace aqua
