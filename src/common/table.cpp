#include "common/table.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/error.hpp"

namespace aqua {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  AQUA_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  AQUA_REQUIRE(cells.size() == headers_.size(), "row arity must match headers");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print() const { std::cout << to_string() << std::flush; }

}  // namespace aqua
