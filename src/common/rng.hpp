// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in AquaSCALE (scenario generation, sensor
// noise, tweet arrivals, ML subsampling) draws from an explicitly seeded
// `Rng`. The generator is xoshiro256** (public domain, Blackman & Vigna),
// which is fast, has a 256-bit state, and supports cheap `split()` so
// parallel workers get independent deterministic streams.
#pragma once

#include <cstdint>
#include <vector>

namespace aqua {

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Satisfies (a subset of) UniformRandomBitGenerator so it can be used with
/// <random> distributions, but the member distributions below are preferred
/// because their output is identical across platforms and standard-library
/// implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// A new generator whose stream is independent of (and deterministic
  /// given) this one. Advances this generator's state.
  Rng split() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal via Box-Muller (cached spare).
  double normal() noexcept;
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;
  /// Bernoulli trial with probability `p` of returning true.
  bool bernoulli(double p) noexcept;
  /// Poisson-distributed count with the given mean (Knuth for small mean,
  /// PTRS-style rejection fallback for large).
  int poisson(double mean) noexcept;
  /// Exponential variate with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// k distinct indices sampled uniformly from [0, n) (partial
  /// Fisher-Yates). Requires k <= n. Result order is random.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Pick an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace aqua
