// A small fixed-size thread pool used to parallelize embarrassingly
// parallel work: per-node classifier training (Algorithm 1 trains one
// binary classifier per junction) and batch scenario simulation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace aqua {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the returned future reports completion / exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// Exceptions from tasks are rethrown (the first one encountered).
  /// Safe to call from inside one of this pool's own workers: a nested
  /// call runs the loop inline on the calling thread instead of blocking
  /// on queue slots behind its own task (which would deadlock).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const noexcept;

  /// Process-wide shared pool for library internals.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace aqua
