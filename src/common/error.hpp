// Error-handling helpers shared across AquaSCALE modules.
//
// The library uses exceptions for contract violations (bad input to a
// public API) and for unrecoverable internal errors. `InvalidArgument`
// corresponds to caller mistakes, `SolverError` to numerical failures
// (e.g. a hydraulic solve that cannot converge).
#pragma once

#include <stdexcept>
#include <string>

namespace aqua {

/// Thrown when a caller passes an argument that violates a documented
/// precondition of a public API.
class InvalidArgument : public std::invalid_argument {
 public:
  explicit InvalidArgument(const std::string& what) : std::invalid_argument(what) {}
};

/// Thrown when an iterative numerical method fails to converge or a
/// matrix factorization encounters a non-SPD system.
class SolverError : public std::runtime_error {
 public:
  explicit SolverError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an entity lookup (node name, link id, ...) fails.
class NotFound : public std::out_of_range {
 public:
  explicit NotFound(const std::string& what) : std::out_of_range(what) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid(const char* expr, const std::string& msg) {
  throw InvalidArgument(std::string("precondition failed: ") + expr +
                        (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

/// Check a documented precondition of a public API; throws InvalidArgument.
#define AQUA_REQUIRE(expr, msg)                       \
  do {                                                \
    if (!(expr)) ::aqua::detail::throw_invalid(#expr, (msg)); \
  } while (0)

}  // namespace aqua
