// Fixed-width console table printer used by the benchmark harnesses so
// every figure reproduction prints readable, aligned rows.
#pragma once

#include <string>
#include <vector>

namespace aqua {

/// Accumulates rows of strings and renders an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 3);

  /// Renders the table (headers, separator, rows) as a string.
  std::string to_string() const;

  /// Prints to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aqua
