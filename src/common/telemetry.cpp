#include "common/telemetry.hpp"

#include "common/error.hpp"

namespace aqua::telemetry {

StageTimes::StageTimes(std::vector<std::string> stage_names,
                       std::vector<std::string> counter_names)
    : stage_names_(std::move(stage_names)),
      counter_names_(std::move(counter_names)),
      seconds_(stage_names_.size(), 0.0),
      calls_(stage_names_.size(), 0),
      counts_(counter_names_.size(), 0) {}

void StageTimes::add_seconds(std::size_t stage, double seconds, std::uint64_t calls) {
  AQUA_REQUIRE(stage < seconds_.size(), "stage index out of range");
  seconds_[stage] += seconds;
  calls_[stage] += calls;
}

void StageTimes::add_count(std::size_t counter, std::uint64_t n) {
  AQUA_REQUIRE(counter < counts_.size(), "counter index out of range");
  counts_[counter] += n;
}

double StageTimes::seconds(std::size_t stage) const {
  AQUA_REQUIRE(stage < seconds_.size(), "stage index out of range");
  return seconds_[stage];
}

std::uint64_t StageTimes::calls(std::size_t stage) const {
  AQUA_REQUIRE(stage < calls_.size(), "stage index out of range");
  return calls_[stage];
}

std::uint64_t StageTimes::count(std::size_t counter) const {
  AQUA_REQUIRE(counter < counts_.size(), "counter index out of range");
  return counts_[counter];
}

void StageTimes::merge(const StageTimes& other) {
  AQUA_REQUIRE(other.stage_names_.size() == stage_names_.size() &&
                   other.counter_names_.size() == counter_names_.size(),
               "StageTimes schema mismatch");
  for (std::size_t i = 0; i < seconds_.size(); ++i) {
    seconds_[i] += other.seconds_[i];
    calls_[i] += other.calls_[i];
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
}

void StageTimes::reset() {
  seconds_.assign(seconds_.size(), 0.0);
  calls_.assign(calls_.size(), 0);
  counts_.assign(counts_.size(), 0);
}

std::vector<std::pair<std::string, double>> StageTimes::metrics(const std::string& prefix) const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(2 * stage_names_.size() + counter_names_.size());
  for (std::size_t i = 0; i < stage_names_.size(); ++i) {
    out.emplace_back(prefix + "stage." + stage_names_[i] + ".seconds", seconds_[i]);
    out.emplace_back(prefix + "stage." + stage_names_[i] + ".calls",
                     static_cast<double>(calls_[i]));
  }
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    out.emplace_back(prefix + "counter." + counter_names_[i], static_cast<double>(counts_[i]));
  }
  return out;
}

}  // namespace aqua::telemetry
