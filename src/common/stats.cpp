#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace aqua {

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) noexcept {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double percentile(std::span<const double> values, double q) {
  AQUA_REQUIRE(!values.empty(), "percentile of empty span");
  AQUA_REQUIRE(q >= 0.0 && q <= 100.0, "percentile q must be in [0,100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double min_value(std::span<const double> values) {
  AQUA_REQUIRE(!values.empty(), "min of empty span");
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  AQUA_REQUIRE(!values.empty(), "max of empty span");
  return *std::max_element(values.begin(), values.end());
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace aqua
