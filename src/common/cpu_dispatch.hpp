// Function-multiversioning dispatch for the hand-vectorized kernels.
// AQUA_TARGET_CLONES compiles a function once per listed ISA and picks
// the widest available unit at load time via an ifunc resolver. Under
// ThreadSanitizer that resolver runs during relocation, before the TSan
// runtime has initialized, and the interceptors it trips crash the
// process at startup — so TSan builds compile the default-arch body
// only. This costs nothing but speed in the sanitized build: every
// kernel behind this macro is written order-preserving, so all clones
// produce bit-identical results and the dispatch only selects wider
// registers.
#pragma once

#if defined(__SANITIZE_THREAD__)
#define AQUA_TARGET_CLONES
#else
#define AQUA_TARGET_CLONES __attribute__((target_clones("default", "avx2", "avx512f")))
#endif
