#include "common/rng.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace aqua {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split() noexcept {
  // Derive a child seed from two outputs; the child re-expands via
  // SplitMix64, so parent and child streams do not overlap in practice.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 32) ^ 0xd1b54a32d192ed03ULL);
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
  // Unbiased rejection sampling (Lemire-style threshold).
  const std::uint64_t threshold = (~range + 1) % range;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % range);
  }
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586476925286766559;
  spare_normal_ = mag * std::sin(two_pi * u2);
  has_spare_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

int Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    double prod = uniform();
    int k = 0;
    while (prod > limit) {
      ++k;
      prod *= uniform();
    }
    return k;
  }
  // Normal approximation with continuity correction is adequate for the
  // large-mean regime used in this library (arrival counts over long
  // horizons); clamp at zero.
  const double v = normal(mean, std::sqrt(mean));
  return v < 0.5 ? 0 : static_cast<int>(v + 0.5);
}

double Rng::exponential(double rate) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  AQUA_REQUIRE(k <= n, "cannot sample more items than the population size");
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  // Partial Fisher-Yates: after i swaps the first i entries are the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    AQUA_REQUIRE(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  AQUA_REQUIRE(total > 0.0, "at least one weight must be positive");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: fell off the end
}

}  // namespace aqua
