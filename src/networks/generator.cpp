#include "networks/generator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <queue>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace aqua::networks {

using hydraulics::Network;
using hydraulics::NodeId;

double terrain_elevation(double x, double y, double base_m, double relief_m) {
  // A few incommensurate harmonics give gentle ridges and basins without
  // periodic artifacts at network scale.
  const double kx = x / 700.0, ky = y / 900.0;
  const double field = 0.45 * std::sin(1.3 * kx + 0.4) + 0.35 * std::cos(1.7 * ky - 0.9) +
                       0.20 * std::sin(2.3 * kx + 1.9 * ky) +
                       0.15 * std::cos(0.7 * kx - 2.1 * ky + 0.5);
  return base_m + relief_m * 0.5 * (field + 1.15);
}

hydraulics::Pattern diurnal_pattern(const std::string& name) {
  hydraulics::Pattern p;
  p.name = name;
  // Hourly multipliers: overnight trough, morning (7-9) and evening (18-21)
  // peaks; normalized to mean 1 below.
  p.multipliers = {0.55, 0.50, 0.48, 0.50, 0.60, 0.85, 1.20, 1.50, 1.45, 1.20, 1.05, 1.00,
                   0.98, 0.95, 0.92, 0.95, 1.05, 1.25, 1.45, 1.40, 1.20, 1.00, 0.80, 0.62};
  double sum = 0.0;
  for (double m : p.multipliers) sum += m;
  const double mean = sum / static_cast<double>(p.multipliers.size());
  for (double& m : p.multipliers) m /= mean;
  return p;
}

GridSkeleton build_grid_skeleton(Network& network, const GridSkeletonSpec& spec) {
  // All spec validation happens before the first node is added, so a
  // rejected spec leaves `network` untouched (strong exception safety).
  // The candidate-edge count of the 4-neighborhood grid is closed-form:
  // rows*(cols-1) horizontal + (rows-1)*cols vertical edges.
  AQUA_REQUIRE(spec.rows >= 2 && spec.cols >= 2, "grid must be at least 2x2");
  const std::size_t n = spec.rows * spec.cols;
  const std::size_t num_candidates = spec.rows * (spec.cols - 1) + (spec.rows - 1) * spec.cols;
  AQUA_REQUIRE(num_candidates >= n - 1 + spec.extra_loops,
               "grid too small for requested loop count");
  Rng rng(spec.seed);

  GridSkeleton skeleton;
  skeleton.grid_nodes.reserve(n);

  // Junctions on a jittered grid with terrain-driven elevations.
  for (std::size_t r = 0; r < spec.rows; ++r) {
    for (std::size_t c = 0; c < spec.cols; ++c) {
      const double jitter = spec.jitter_frac * spec.spacing_m;
      const double x =
          spec.origin_x_m + static_cast<double>(c) * spec.spacing_m + rng.uniform(-jitter, jitter);
      const double y =
          spec.origin_y_m + static_cast<double>(r) * spec.spacing_m + rng.uniform(-jitter, jitter);
      const double elevation =
          terrain_elevation(x, y, spec.elevation_base_m, spec.elevation_relief_m);
      const double demand = rng.uniform(spec.demand_min_lps, spec.demand_max_lps);
      const std::string name =
          spec.junction_prefix + std::to_string(r) + "_" + std::to_string(c);
      skeleton.grid_nodes.push_back(
          network.add_junction(name, elevation, demand, spec.demand_pattern, x, y));
    }
  }

  // Candidate grid edges (4-neighborhood).
  struct Candidate {
    std::size_t a, b;  // grid indices
  };
  std::vector<Candidate> candidates;
  candidates.reserve(num_candidates);
  auto grid_index = [&](std::size_t r, std::size_t c) { return r * spec.cols + c; };
  for (std::size_t r = 0; r < spec.rows; ++r) {
    for (std::size_t c = 0; c < spec.cols; ++c) {
      if (c + 1 < spec.cols) candidates.push_back({grid_index(r, c), grid_index(r, c + 1)});
      if (r + 1 < spec.rows) candidates.push_back({grid_index(r, c), grid_index(r + 1, c)});
    }
  }

  // Randomized spanning tree: shuffle candidates, union-find accept.
  rng.shuffle(candidates);
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  std::vector<std::size_t> root_stack;
  auto find_root = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  // BFS depth from grid node 0 determines pipe sizing (computed after the
  // edge set is final), so collect accepted edges first.
  std::vector<Candidate> accepted;
  std::vector<Candidate> leftovers;
  for (const auto& cand : candidates) {
    const std::size_t ra = find_root(cand.a), rb = find_root(cand.b);
    if (ra != rb) {
      parent[ra] = rb;
      accepted.push_back(cand);
    } else {
      leftovers.push_back(cand);
    }
  }
  AQUA_REQUIRE(accepted.size() == n - 1, "internal: spanning tree incomplete");
  AQUA_REQUIRE(leftovers.size() >= spec.extra_loops, "not enough chords for requested loops");
  accepted.insert(accepted.end(), leftovers.begin(),
                  leftovers.begin() + static_cast<std::ptrdiff_t>(spec.extra_loops));

  // BFS depth over the accepted edge set.
  std::vector<std::vector<std::size_t>> adjacency(n);
  for (const auto& e : accepted) {
    adjacency[e.a].push_back(e.b);
    adjacency[e.b].push_back(e.a);
  }
  std::vector<int> depth(n, -1);
  std::queue<std::size_t> frontier;
  depth[0] = 0;
  frontier.push(0);
  while (!frontier.empty()) {
    const std::size_t v = frontier.front();
    frontier.pop();
    for (std::size_t w : adjacency[v]) {
      if (depth[w] < 0) {
        depth[w] = depth[v] + 1;
        frontier.push(w);
      }
    }
  }

  auto diameter_for_depth = [](int d) {
    if (d <= 2) return 0.50;
    if (d <= 5) return 0.35;
    if (d <= 9) return 0.25;
    return 0.20;
  };

  std::size_t pipe_counter = 0;
  for (const auto& e : accepted) {
    const NodeId a = skeleton.grid_nodes[e.a];
    const NodeId b = skeleton.grid_nodes[e.b];
    const auto& na = network.node(a);
    const auto& nb = network.node(b);
    const double dx = na.x - nb.x, dy = na.y - nb.y;
    const double length = std::max(std::hypot(dx, dy), 10.0);
    const double diameter = diameter_for_depth(std::min(depth[e.a], depth[e.b]));
    const double roughness = rng.uniform(95.0, 135.0);  // aged-to-new HW C
    network.add_pipe(spec.pipe_prefix + std::to_string(pipe_counter++), a, b, length, diameter,
                     roughness);
  }
  skeleton.num_pipes = pipe_counter;
  return skeleton;
}

CityNetwork make_city(Network& network, const CitySpec& spec) {
  AQUA_REQUIRE(spec.district_rows >= 1 && spec.district_cols >= 1, "city needs >= 1 district");
  AQUA_REQUIRE(spec.district_grid >= 4, "district grid must be at least 4x4");
  AQUA_REQUIRE(spec.loop_fraction >= 0.0 && spec.loop_fraction <= 0.9,
               "loop_fraction out of range");

  const std::size_t g = spec.district_grid;
  const std::size_t districts = spec.district_rows * spec.district_cols;
  const double district_span = static_cast<double>(g - 1) * spec.spacing_m;
  const double pitch = district_span + spec.district_gap_m;  // district origin spacing

  Rng city_rng(spec.seed);

  // Four phase-shifted diurnal patterns: residential morning/evening peaks
  // at staggered hours, so district demands are correlated but not
  // identical — the "highly correlated measurements" regime of Sec. I.
  std::array<int, 4> patterns{};
  for (std::size_t k = 0; k < patterns.size(); ++k) {
    hydraulics::Pattern p = diurnal_pattern("diurnal" + std::to_string(k));
    std::rotate(p.multipliers.begin(),
                p.multipliers.begin() + static_cast<std::ptrdiff_t>(k * 2), p.multipliers.end());
    patterns[k] = network.add_pattern(std::move(p));
  }

  CityNetwork city;
  city.num_districts = districts;
  const std::size_t tree_pipes = g * g - 1;
  const std::size_t extra_loops =
      static_cast<std::size_t>(spec.loop_fraction * static_cast<double>(tree_pipes));

  // Per-district skeletons. Each district has its own seed derived from the
  // city RNG (drawn in a fixed order, so the whole city is deterministic).
  std::vector<hydraulics::NodeId> gates;  // trunk attachment node per district
  gates.reserve(districts);
  for (std::size_t dr = 0; dr < spec.district_rows; ++dr) {
    for (std::size_t dc = 0; dc < spec.district_cols; ++dc) {
      const std::size_t d = dr * spec.district_cols + dc;
      GridSkeletonSpec gs;
      gs.rows = g;
      gs.cols = g;
      gs.extra_loops = extra_loops;
      gs.spacing_m = spec.spacing_m;
      gs.origin_x_m = static_cast<double>(dc) * pitch;
      gs.origin_y_m = static_cast<double>(dr) * pitch;
      gs.elevation_base_m = spec.elevation_base_m;
      gs.elevation_relief_m = spec.elevation_relief_m;
      gs.demand_min_lps = spec.demand_min_lps;
      gs.demand_max_lps = spec.demand_max_lps;
      gs.demand_pattern = patterns[d % patterns.size()];
      gs.junction_prefix = "D" + std::to_string(d) + "_J";
      gs.pipe_prefix = "D" + std::to_string(d) + "_P";
      gs.seed = city_rng();
      const GridSkeleton skeleton = build_grid_skeleton(network, gs);
      city.num_junctions += skeleton.grid_nodes.size();
      city.num_pipes += skeleton.num_pipes;

      // District source: reservoir at the corner, head above the local max
      // elevation so the whole district is gravity-fed.
      double max_elev = 0.0;
      for (NodeId v : skeleton.grid_nodes) max_elev = std::max(max_elev, network.node(v).elevation);
      const NodeId corner = skeleton.grid_nodes.front();
      const auto& corner_node = network.node(corner);
      const NodeId reservoir = network.add_reservoir("R" + std::to_string(d), max_elev + 45.0,
                                                     corner_node.x - 60.0, corner_node.y - 60.0);
      network.add_pipe("D" + std::to_string(d) + "_SRC", reservoir, corner, 80.0, 0.6,
                       city_rng.uniform(120.0, 135.0));
      ++city.num_reservoirs;

      // Elevated tank off the opposite corner, floating near service head.
      const NodeId far_corner = skeleton.grid_nodes.back();
      const auto& far_node = network.node(far_corner);
      const double tank_base = max_elev + 25.0;
      const NodeId tank =
          network.add_tank("TK" + std::to_string(d), tank_base, 10.0, 2.0, 18.0, 22.0,
                           far_node.x + 60.0, far_node.y + 60.0);
      network.add_pipe("D" + std::to_string(d) + "_TNK", tank, far_corner, 80.0, 0.45,
                       city_rng.uniform(120.0, 135.0));
      ++city.num_tanks;

      // Trunk attachment: a mid-grid junction, so district-to-district
      // mains tie into the looped core rather than the fringe.
      gates.push_back(skeleton.grid_nodes[(g / 2) * g + g / 2]);
    }
  }

  // Trunk mains stitch adjacent districts (4-neighborhood of the macro
  // grid) — large-diameter, so inter-district transfers are cheap and the
  // city solves as one connected hydraulic system.
  std::size_t trunk_counter = 0;
  auto stitch = [&](std::size_t da, std::size_t db) {
    const NodeId a = gates[da], b = gates[db];
    const auto& na = network.node(a);
    const auto& nb = network.node(b);
    const double length = std::max(std::hypot(na.x - nb.x, na.y - nb.y), 10.0);
    network.add_pipe("TRUNK" + std::to_string(trunk_counter++), a, b, length, 0.6,
                     city_rng.uniform(120.0, 135.0));
  };
  for (std::size_t dr = 0; dr < spec.district_rows; ++dr) {
    for (std::size_t dc = 0; dc < spec.district_cols; ++dc) {
      const std::size_t d = dr * spec.district_cols + dc;
      if (dc + 1 < spec.district_cols) stitch(d, d + 1);
      if (dr + 1 < spec.district_rows) stitch(d, d + spec.district_cols);
    }
  }
  city.num_trunk_mains = trunk_counter;
  return city;
}

CitySpec city_spec_for_nodes(std::size_t approx_nodes, std::uint64_t seed) {
  AQUA_REQUIRE(approx_nodes >= 64, "city target too small; use build_grid_skeleton directly");
  CitySpec spec;
  spec.seed = seed;
  // Keep districts near ~1600 junctions; lay the macro grid out as close
  // to square as divisibility allows.
  const std::size_t districts = std::max<std::size_t>(
      1, (approx_nodes + 800) / 1600);
  std::size_t rows = static_cast<std::size_t>(std::sqrt(static_cast<double>(districts)));
  rows = std::max<std::size_t>(1, rows);
  while (districts % rows != 0) --rows;
  spec.district_rows = rows;
  spec.district_cols = districts / rows;
  const double per_district = static_cast<double>(approx_nodes) / static_cast<double>(districts);
  spec.district_grid =
      std::max<std::size_t>(4, static_cast<std::size_t>(std::lround(std::sqrt(per_district))));
  return spec;
}

}  // namespace aqua::networks
