#include "networks/generator.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace aqua::networks {

using hydraulics::Network;
using hydraulics::NodeId;

double terrain_elevation(double x, double y, double base_m, double relief_m) {
  // A few incommensurate harmonics give gentle ridges and basins without
  // periodic artifacts at network scale.
  const double kx = x / 700.0, ky = y / 900.0;
  const double field = 0.45 * std::sin(1.3 * kx + 0.4) + 0.35 * std::cos(1.7 * ky - 0.9) +
                       0.20 * std::sin(2.3 * kx + 1.9 * ky) +
                       0.15 * std::cos(0.7 * kx - 2.1 * ky + 0.5);
  return base_m + relief_m * 0.5 * (field + 1.15);
}

hydraulics::Pattern diurnal_pattern(const std::string& name) {
  hydraulics::Pattern p;
  p.name = name;
  // Hourly multipliers: overnight trough, morning (7-9) and evening (18-21)
  // peaks; normalized to mean 1 below.
  p.multipliers = {0.55, 0.50, 0.48, 0.50, 0.60, 0.85, 1.20, 1.50, 1.45, 1.20, 1.05, 1.00,
                   0.98, 0.95, 0.92, 0.95, 1.05, 1.25, 1.45, 1.40, 1.20, 1.00, 0.80, 0.62};
  double sum = 0.0;
  for (double m : p.multipliers) sum += m;
  const double mean = sum / static_cast<double>(p.multipliers.size());
  for (double& m : p.multipliers) m /= mean;
  return p;
}

GridSkeleton build_grid_skeleton(Network& network, const GridSkeletonSpec& spec) {
  AQUA_REQUIRE(spec.rows >= 2 && spec.cols >= 2, "grid must be at least 2x2");
  const std::size_t n = spec.rows * spec.cols;
  Rng rng(spec.seed);

  GridSkeleton skeleton;
  skeleton.grid_nodes.reserve(n);

  // Junctions on a jittered grid with terrain-driven elevations.
  for (std::size_t r = 0; r < spec.rows; ++r) {
    for (std::size_t c = 0; c < spec.cols; ++c) {
      const double jitter = spec.jitter_frac * spec.spacing_m;
      const double x = static_cast<double>(c) * spec.spacing_m + rng.uniform(-jitter, jitter);
      const double y = static_cast<double>(r) * spec.spacing_m + rng.uniform(-jitter, jitter);
      const double elevation =
          terrain_elevation(x, y, spec.elevation_base_m, spec.elevation_relief_m);
      const double demand = rng.uniform(spec.demand_min_lps, spec.demand_max_lps);
      const std::string name = "J" + std::to_string(r) + "_" + std::to_string(c);
      skeleton.grid_nodes.push_back(
          network.add_junction(name, elevation, demand, spec.demand_pattern, x, y));
    }
  }

  // Candidate grid edges (4-neighborhood).
  struct Candidate {
    std::size_t a, b;  // grid indices
  };
  std::vector<Candidate> candidates;
  auto grid_index = [&](std::size_t r, std::size_t c) { return r * spec.cols + c; };
  for (std::size_t r = 0; r < spec.rows; ++r) {
    for (std::size_t c = 0; c < spec.cols; ++c) {
      if (c + 1 < spec.cols) candidates.push_back({grid_index(r, c), grid_index(r, c + 1)});
      if (r + 1 < spec.rows) candidates.push_back({grid_index(r, c), grid_index(r + 1, c)});
    }
  }
  AQUA_REQUIRE(candidates.size() >= n - 1 + spec.extra_loops,
               "grid too small for requested loop count");

  // Randomized spanning tree: shuffle candidates, union-find accept.
  rng.shuffle(candidates);
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  std::vector<std::size_t> root_stack;
  auto find_root = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  // BFS depth from grid node 0 determines pipe sizing (computed after the
  // edge set is final), so collect accepted edges first.
  std::vector<Candidate> accepted;
  std::vector<Candidate> leftovers;
  for (const auto& cand : candidates) {
    const std::size_t ra = find_root(cand.a), rb = find_root(cand.b);
    if (ra != rb) {
      parent[ra] = rb;
      accepted.push_back(cand);
    } else {
      leftovers.push_back(cand);
    }
  }
  AQUA_REQUIRE(accepted.size() == n - 1, "internal: spanning tree incomplete");
  AQUA_REQUIRE(leftovers.size() >= spec.extra_loops, "not enough chords for requested loops");
  accepted.insert(accepted.end(), leftovers.begin(),
                  leftovers.begin() + static_cast<std::ptrdiff_t>(spec.extra_loops));

  // BFS depth over the accepted edge set.
  std::vector<std::vector<std::size_t>> adjacency(n);
  for (const auto& e : accepted) {
    adjacency[e.a].push_back(e.b);
    adjacency[e.b].push_back(e.a);
  }
  std::vector<int> depth(n, -1);
  std::queue<std::size_t> frontier;
  depth[0] = 0;
  frontier.push(0);
  while (!frontier.empty()) {
    const std::size_t v = frontier.front();
    frontier.pop();
    for (std::size_t w : adjacency[v]) {
      if (depth[w] < 0) {
        depth[w] = depth[v] + 1;
        frontier.push(w);
      }
    }
  }

  auto diameter_for_depth = [](int d) {
    if (d <= 2) return 0.50;
    if (d <= 5) return 0.35;
    if (d <= 9) return 0.25;
    return 0.20;
  };

  std::size_t pipe_counter = 0;
  for (const auto& e : accepted) {
    const NodeId a = skeleton.grid_nodes[e.a];
    const NodeId b = skeleton.grid_nodes[e.b];
    const auto& na = network.node(a);
    const auto& nb = network.node(b);
    const double dx = na.x - nb.x, dy = na.y - nb.y;
    const double length = std::max(std::hypot(dx, dy), 10.0);
    const double diameter = diameter_for_depth(std::min(depth[e.a], depth[e.b]));
    const double roughness = rng.uniform(95.0, 135.0);  // aged-to-new HW C
    network.add_pipe("P" + std::to_string(pipe_counter++), a, b, length, diameter, roughness);
  }
  skeleton.num_pipes = pipe_counter;
  return skeleton;
}

}  // namespace aqua::networks
