#include <cmath>

#include "common/error.hpp"
#include "networks/builtin.hpp"
#include "networks/generator.hpp"

namespace aqua::networks {

using hydraulics::Network;
using hydraulics::NodeId;
using hydraulics::PumpCurve;

Network make_epa_net() {
  Network network("EPA-NET");
  const int pattern = network.add_pattern(diurnal_pattern());

  GridSkeletonSpec spec;
  spec.rows = 7;
  spec.cols = 13;                      // 91 junctions
  spec.extra_loops = 22;               // 90 tree + 22 chords = 112 grid pipes
  spec.spacing_m = 160.0;
  spec.elevation_base_m = 12.0;
  spec.elevation_relief_m = 16.0;
  spec.demand_min_lps = 0.25;
  spec.demand_max_lps = 1.30;
  spec.demand_pattern = pattern;
  spec.seed = 0xEFA0EFA0ULL;
  const GridSkeleton skeleton = build_grid_skeleton(network, spec);

  auto grid = [&](std::size_t r, std::size_t c) { return skeleton.grid_nodes[r * spec.cols + c]; };

  // Two water sources feeding opposite corners through pumps. Source pools
  // sit low; pumps lift into the grid.
  const NodeId lake = network.add_reservoir("LAKE", 6.0, -250.0, -250.0);
  const NodeId river = network.add_reservoir("RIVER", 4.0, 12.0 * 160.0 + 250.0, 6.0 * 160.0 + 250.0);
  // Pump curves: shutoff ~75 m, designed around ~60-80 L/s per pump.
  network.add_pump("PU1", lake, grid(0, 0), PumpCurve{75.0, 3200.0, 2.0});
  network.add_pump("PU2", river, grid(6, 12), PumpCurve{72.0, 3600.0, 2.0});

  // Three elevated storage tanks on high ground, each teed off the grid by
  // a dedicated pipe (pipes 112..114).
  struct TankSpot {
    const char* name;
    std::size_t r, c;
  };
  const TankSpot spots[] = {{"T1", 1, 6}, {"T2", 5, 3}, {"T3", 4, 10}};
  std::size_t pipe_counter = skeleton.num_pipes;
  for (const auto& spot : spots) {
    const NodeId anchor = grid(spot.r, spot.c);
    const auto& a = network.node(anchor);
    // Tank base must sit above local service heads so it can float on the
    // system: base ~= anchor elevation + 38 m, operating band 2..8 m.
    const NodeId tank = network.add_tank(spot.name, a.elevation + 38.0, 5.0, 2.0, 8.0, 18.0,
                                         a.x + 60.0, a.y + 60.0);
    network.add_pipe("P" + std::to_string(pipe_counter++), anchor, tank, 80.0, 0.35, 120.0);
  }

  // One inline throttle valve on a mid-grid main (completing 118 pipes + 1
  // valve); the valve parallels a trunk so closing it reroutes flow.
  network.add_pipe("P" + std::to_string(pipe_counter++), grid(3, 5), grid(2, 6), 170.0, 0.35,
                   118.0);
  network.add_pipe("P" + std::to_string(pipe_counter++), grid(3, 7), grid(4, 8), 175.0, 0.35,
                   116.0);
  network.add_pipe("P" + std::to_string(pipe_counter++), grid(1, 2), grid(2, 1), 180.0, 0.30,
                   112.0);
  network.add_valve("V1", grid(3, 6), grid(4, 6), 0.35, 2.0);

  network.validate();
  AQUA_REQUIRE(network.num_nodes() == 96, "EPA-NET must have 96 nodes");
  AQUA_REQUIRE(network.count_links(hydraulics::LinkType::kPipe) == 118,
               "EPA-NET must have 118 pipes");
  AQUA_REQUIRE(network.count_links(hydraulics::LinkType::kPump) == 2, "EPA-NET must have 2 pumps");
  AQUA_REQUIRE(network.count_links(hydraulics::LinkType::kValve) == 1, "EPA-NET must have 1 valve");
  AQUA_REQUIRE(network.count_nodes(hydraulics::NodeType::kTank) == 3, "EPA-NET must have 3 tanks");
  AQUA_REQUIRE(network.count_nodes(hydraulics::NodeType::kReservoir) == 2,
               "EPA-NET must have 2 sources");
  return network;
}

}  // namespace aqua::networks
