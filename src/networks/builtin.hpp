// The two evaluation networks from the paper (Sec. V-A, Fig. 5), rebuilt
// deterministically with exactly the published element counts:
//
//   EPA-NET      — "a canonical water network provided by the EPANET" with
//                  96 nodes, 118 pipes, 2 pumps, one valve, 3 tanks and
//                  2 water sources.
//   WSSC-SUBNET  — "a subzone of WSSC service area" with 299 nodes,
//                  316 pipes, 2 valves and one water source. The real
//                  network is proprietary; this is a synthetic stand-in
//                  with the same scale, loop density and single-source
//                  gravity-fed structure (see DESIGN.md substitutions).
#pragma once

#include "hydraulics/network.hpp"

namespace aqua::networks {

/// Canonical EPA-NET: 91 junctions + 3 tanks + 2 reservoirs = 96 nodes;
/// 118 pipes + 2 pumps + 1 valve = 121 links. Pumped two-source system
/// with diurnal demands.
hydraulics::Network make_epa_net();

/// WSSC-SUBNET: 298 junctions + 1 reservoir = 299 nodes; 316 pipes +
/// 2 valves = 318 links. Gravity-fed single-source subzone with planar
/// coordinates (used for tweet geolocation and the flood DEM).
hydraulics::Network make_wssc_subnet();

}  // namespace aqua::networks
