// Parametric generator for looped water-distribution skeletons. Both
// built-in evaluation networks (EPA-NET, WSSC-SUBNET) are grown from a
// jittered grid: a randomized spanning tree guarantees connectivity, and
// extra chords create the loops characteristic of community networks
// ("typically densely connected and complex networks with highly
// correlated measurements", Sec. I). Elevation comes from a smooth
// synthetic terrain so pressure zones and the flood DEM are physically
// coherent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hydraulics/network.hpp"

namespace aqua::networks {

struct GridSkeletonSpec {
  std::size_t rows = 7;
  std::size_t cols = 13;
  std::size_t extra_loops = 25;    // chords beyond the spanning tree
  double spacing_m = 150.0;        // nominal grid spacing
  double jitter_frac = 0.25;       // positional jitter as fraction of spacing
  double origin_x_m = 0.0;         // world-space offset of grid cell (0, 0)
  double origin_y_m = 0.0;
  double elevation_base_m = 10.0;
  double elevation_relief_m = 18.0;  // terrain amplitude
  double demand_min_lps = 0.2;
  double demand_max_lps = 1.2;
  int demand_pattern = -1;  // pattern index to attach to every junction
  std::string junction_prefix = "J";  // node names: <prefix><row>_<col>
  std::string pipe_prefix = "P";      // pipe names: <prefix><counter>
  std::uint64_t seed = 1;
};

/// Result of skeleton generation: node ids in row-major grid order and the
/// number of junction-junction pipes created (tree + chords).
struct GridSkeleton {
  std::vector<hydraulics::NodeId> grid_nodes;  // rows*cols junctions
  std::size_t num_pipes = 0;
};

/// Smooth deterministic terrain: base + relief modulated by a few sin/cos
/// harmonics of (x, y). Shared with the flood DEM.
double terrain_elevation(double x, double y, double base_m, double relief_m);

/// Adds rows*cols junctions and (rows*cols - 1 + extra_loops) pipes to
/// `network`. Pipe diameters are assigned by BFS depth from grid node 0
/// (trunk mains near the origin, distribution pipes at the fringe).
/// Strong exception safety: the spec is validated in full before the first
/// node is added, so a throwing call leaves `network` untouched.
GridSkeleton build_grid_skeleton(hydraulics::Network& network, const GridSkeletonSpec& spec);

/// A 24-value diurnal demand pattern with morning and evening peaks,
/// normalized to mean 1.
hydraulics::Pattern diurnal_pattern(const std::string& name = "diurnal");

/// A city: a macro-grid of districts, each a jittered grid skeleton with
/// its own reservoir and elevated tank, stitched together by large-
/// diameter trunk mains between adjacent districts. Defaults give ~10k
/// nodes; city_spec_for_nodes() scales the knobs to a target size.
struct CitySpec {
  std::size_t district_rows = 2;      // macro-grid of districts
  std::size_t district_cols = 3;
  std::size_t district_grid = 41;     // each district is grid x grid junctions
  double spacing_m = 110.0;           // junction spacing inside a district
  double district_gap_m = 450.0;      // extra separation between districts
  double loop_fraction = 0.22;        // extra chords per district, as a
                                      // fraction of the spanning-tree size
  double elevation_base_m = 8.0;
  double elevation_relief_m = 30.0;   // city-scale terrain amplitude
  double demand_min_lps = 0.15;
  double demand_max_lps = 0.9;
  std::uint64_t seed = 2026;
};

/// Structure report from make_city.
struct CityNetwork {
  std::size_t num_districts = 0;
  std::size_t num_junctions = 0;
  std::size_t num_reservoirs = 0;
  std::size_t num_tanks = 0;
  std::size_t num_pipes = 0;        // in-district pipes
  std::size_t num_trunk_mains = 0;  // district-to-district stitches
};

/// Builds the city into a fresh network named "city-<seed>". Deterministic:
/// the same spec produces a bit-identical network. Each district gets one
/// reservoir (head = local max terrain + margin, so every district is
/// gravity-fed) and one elevated tank; junction demands follow one of four
/// phase-shifted diurnal patterns, chosen per district.
CityNetwork make_city(hydraulics::Network& network, const CitySpec& spec);

/// Picks district/grid counts so make_city yields roughly `approx_nodes`
/// nodes (within ~15%), keeping districts near ~1600 junctions each.
CitySpec city_spec_for_nodes(std::size_t approx_nodes, std::uint64_t seed = 2026);

}  // namespace aqua::networks
