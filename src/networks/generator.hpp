// Parametric generator for looped water-distribution skeletons. Both
// built-in evaluation networks (EPA-NET, WSSC-SUBNET) are grown from a
// jittered grid: a randomized spanning tree guarantees connectivity, and
// extra chords create the loops characteristic of community networks
// ("typically densely connected and complex networks with highly
// correlated measurements", Sec. I). Elevation comes from a smooth
// synthetic terrain so pressure zones and the flood DEM are physically
// coherent.
#pragma once

#include <cstdint>
#include <vector>

#include "hydraulics/network.hpp"

namespace aqua::networks {

struct GridSkeletonSpec {
  std::size_t rows = 7;
  std::size_t cols = 13;
  std::size_t extra_loops = 25;    // chords beyond the spanning tree
  double spacing_m = 150.0;        // nominal grid spacing
  double jitter_frac = 0.25;       // positional jitter as fraction of spacing
  double elevation_base_m = 10.0;
  double elevation_relief_m = 18.0;  // terrain amplitude
  double demand_min_lps = 0.2;
  double demand_max_lps = 1.2;
  int demand_pattern = -1;  // pattern index to attach to every junction
  std::uint64_t seed = 1;
};

/// Result of skeleton generation: node ids in row-major grid order and the
/// number of junction-junction pipes created (tree + chords).
struct GridSkeleton {
  std::vector<hydraulics::NodeId> grid_nodes;  // rows*cols junctions
  std::size_t num_pipes = 0;
};

/// Smooth deterministic terrain: base + relief modulated by a few sin/cos
/// harmonics of (x, y). Shared with the flood DEM.
double terrain_elevation(double x, double y, double base_m, double relief_m);

/// Adds rows*cols junctions and (rows*cols - 1 + extra_loops) pipes to
/// `network`. Pipe diameters are assigned by BFS depth from grid node 0
/// (trunk mains near the origin, distribution pipes at the fringe).
GridSkeleton build_grid_skeleton(hydraulics::Network& network, const GridSkeletonSpec& spec);

/// A 24-value diurnal demand pattern with morning and evening peaks,
/// normalized to mean 1.
hydraulics::Pattern diurnal_pattern(const std::string& name = "diurnal");

}  // namespace aqua::networks
