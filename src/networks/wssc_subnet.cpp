#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "networks/builtin.hpp"
#include "networks/generator.hpp"

namespace aqua::networks {

using hydraulics::Network;
using hydraulics::NodeId;

Network make_wssc_subnet() {
  Network network("WSSC-SUBNET");
  const int pattern = network.add_pattern(diurnal_pattern());

  // 19x15 = 285 grid junctions + 13 dead-end spur junctions = 298
  // junctions; with the single reservoir the network has 299 nodes.
  GridSkeletonSpec spec;
  spec.rows = 19;
  spec.cols = 15;
  spec.extra_loops = 18;  // 284 tree + 18 chords = 302 grid pipes
  spec.spacing_m = 130.0;
  spec.elevation_base_m = 8.0;
  spec.elevation_relief_m = 22.0;
  spec.demand_min_lps = 0.15;
  spec.demand_max_lps = 0.95;
  spec.demand_pattern = pattern;
  spec.seed = 0x55C0555CULL;
  const GridSkeleton skeleton = build_grid_skeleton(network, spec);

  auto grid = [&](std::size_t r, std::size_t c) { return skeleton.grid_nodes[r * spec.cols + c]; };

  Rng rng(0x55C0AAAAULL);
  std::size_t pipe_counter = skeleton.num_pipes;

  // 13 dead-end service spurs (cul-de-sac laterals) off interior nodes.
  for (std::size_t s = 0; s < 13; ++s) {
    const std::size_t r = 1 + (s * 17) % (spec.rows - 2);
    const std::size_t c = 1 + (s * 7) % (spec.cols - 2);
    const NodeId anchor = grid(r, c);
    const auto& a = network.node(anchor);
    const double angle = rng.uniform(0.0, 6.283185307179586);
    const double x = a.x + 70.0 * std::cos(angle);
    const double y = a.y + 70.0 * std::sin(angle);
    const double elevation = terrain_elevation(x, y, spec.elevation_base_m, spec.elevation_relief_m);
    const NodeId spur = network.add_junction("S" + std::to_string(s), elevation,
                                             rng.uniform(0.1, 0.6), pattern, x, y);
    network.add_pipe("P" + std::to_string(pipe_counter++), anchor, spur, 75.0, 0.15,
                     rng.uniform(90.0, 120.0));
  }

  // Single elevated source: a gravity reservoir feeding the corner trunk
  // through a transmission main.
  const NodeId source = network.add_reservoir("SRC", 95.0, -300.0, -300.0);
  network.add_pipe("P" + std::to_string(pipe_counter++), source, grid(0, 0), 420.0, 0.60, 130.0);

  // Two sectorization valves on interior mains.
  network.add_valve("V1", grid(6, 7), grid(7, 7), 0.35, 2.5);
  network.add_valve("V2", grid(12, 4), grid(12, 5), 0.30, 2.5);

  network.validate();
  AQUA_REQUIRE(network.num_nodes() == 299, "WSSC-SUBNET must have 299 nodes");
  AQUA_REQUIRE(network.count_links(hydraulics::LinkType::kPipe) == 316,
               "WSSC-SUBNET must have 316 pipes");
  AQUA_REQUIRE(network.count_links(hydraulics::LinkType::kValve) == 2,
               "WSSC-SUBNET must have 2 valves");
  AQUA_REQUIRE(network.count_nodes(hydraulics::NodeType::kReservoir) == 1,
               "WSSC-SUBNET must have 1 source");
  return network;
}

}  // namespace aqua::networks
