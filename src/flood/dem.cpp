#include "flood/dem.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "networks/generator.hpp"

namespace aqua::flood {

Dem::Dem(const hydraulics::Network& network, std::size_t rows, std::size_t cols, double margin_m)
    : rows_(rows), cols_(cols) {
  AQUA_REQUIRE(rows >= 2 && cols >= 2, "DEM needs at least a 2x2 grid");
  AQUA_REQUIRE(network.num_nodes() > 0, "DEM needs network nodes");

  double min_x = std::numeric_limits<double>::max(), max_x = std::numeric_limits<double>::lowest();
  double min_y = min_x, max_y = max_x;
  for (const auto& node : network.nodes()) {
    min_x = std::min(min_x, node.x);
    max_x = std::max(max_x, node.x);
    min_y = std::min(min_y, node.y);
    max_y = std::max(max_y, node.y);
  }
  x0_ = min_x - margin_m;
  y0_ = min_y - margin_m;
  dx_ = (max_x - min_x + 2.0 * margin_m) / static_cast<double>(cols);
  dy_ = (max_y - min_y + 2.0 * margin_m) / static_cast<double>(rows);

  z_.assign(rows_ * cols_, 0.0);
  // Inverse-distance weighting from junction elevations with a smooth
  // terrain prior: IDW dominates near the network; the prior fills the
  // margins. Weight of the prior equals one node at distance `prior_d`.
  constexpr double kPower = 2.0;
  constexpr double kPriorDistance = 400.0;
  const double prior_weight = 1.0 / std::pow(kPriorDistance, kPower);

  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const double x = x_of(c), y = y_of(r);
      const double prior = networks::terrain_elevation(x, y, 10.0, 20.0);
      double weight_sum = prior_weight;
      double value_sum = prior_weight * prior;
      bool exact = false;
      for (const auto& node : network.nodes()) {
        if (node.type != hydraulics::NodeType::kJunction) continue;
        const double d2 = (node.x - x) * (node.x - x) + (node.y - y) * (node.y - y);
        if (d2 < 1.0) {  // cell center coincides with a node
          z_[r * cols_ + c] = node.elevation;
          exact = true;
          break;
        }
        const double w = 1.0 / std::pow(d2, kPower / 2.0);
        weight_sum += w;
        value_sum += w * node.elevation;
      }
      if (!exact) z_[r * cols_ + c] = value_sum / weight_sum;
    }
  }
}

std::pair<std::size_t, std::size_t> Dem::cell_of(double x, double y) const noexcept {
  const auto clamp_index = [](double v, std::size_t n) {
    if (v < 0.0) return std::size_t{0};
    const auto i = static_cast<std::size_t>(v);
    return std::min(i, n - 1);
  };
  return {clamp_index((y - y0_) / dy_, rows_), clamp_index((x - x0_) / dx_, cols_)};
}

double Dem::min_elevation() const noexcept {
  return *std::min_element(z_.begin(), z_.end());
}

double Dem::max_elevation() const noexcept {
  return *std::max_element(z_.begin(), z_.end());
}

}  // namespace aqua::flood
