// Surface flood spreading from pipe leaks (Sec. V-D, Fig. 11b). The paper
// feeds leak outflow rates computed from Eq. 1 into the BreZo finite-
// volume shallow-water model; this module implements the laptop-scale
// equivalent, a mass-conserving 2-D *diffusive-wave* simulation over the
// DEM: water surface eta = z + h relaxes toward neighboring cells with a
// Manning-style conveyance, which reproduces where water ponds and how it
// spreads along terrain without the full Godunov solver.
#pragma once

#include <cstddef>
#include <vector>

#include "flood/dem.hpp"

namespace aqua::flood {

/// A point inflow (one leaking pipe joint): world position and flow rate.
struct FloodSource {
  double x = 0.0;
  double y = 0.0;
  double rate_m3s = 0.0;  // from Eq. 1 at the leaking node
};

struct FloodOptions {
  double duration_s = 2.0 * 3600.0;
  double time_step_s = 2.0;          // explicit step; must satisfy CFL-ish bound
  double manning_k = 8.0;            // conveyance coefficient [m^(1/2)/s]
  double infiltration_m_per_s = 0.0;  // losses into the ground
  double dry_threshold_m = 1e-4;     // cells shallower than this do not convey
};

/// Flood state: water depth per DEM cell.
class FloodResult {
 public:
  FloodResult(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), depth_(rows * cols, 0.0) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  double depth(std::size_t r, std::size_t c) const { return depth_[r * cols_ + c]; }
  std::vector<double>& data() noexcept { return depth_; }
  const std::vector<double>& data() const noexcept { return depth_; }

  double max_depth() const noexcept;
  /// Number of cells with depth above `threshold`.
  std::size_t wet_cells(double threshold = 0.01) const noexcept;
  /// Total ponded volume [m^3] given the cell area.
  double total_volume(double cell_area_m2) const noexcept;

 private:
  std::size_t rows_, cols_;
  std::vector<double> depth_;
};

/// Runs the diffusive-wave simulation. Mass conservation: injected volume
/// = ponded volume + infiltration losses (asserted in tests to <0.5%).
FloodResult simulate_flood(const Dem& dem, const std::vector<FloodSource>& sources,
                           const FloodOptions& options = {});

}  // namespace aqua::flood
