#include "flood/flood_sim.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace aqua::flood {

double FloodResult::max_depth() const noexcept {
  double m = 0.0;
  for (double d : depth_) m = std::max(m, d);
  return m;
}

std::size_t FloodResult::wet_cells(double threshold) const noexcept {
  std::size_t n = 0;
  for (double d : depth_) n += (d > threshold);
  return n;
}

double FloodResult::total_volume(double cell_area_m2) const noexcept {
  double v = 0.0;
  for (double d : depth_) v += d;
  return v * cell_area_m2;
}

FloodResult simulate_flood(const Dem& dem, const std::vector<FloodSource>& sources,
                           const FloodOptions& options) {
  AQUA_REQUIRE(options.time_step_s > 0.0 && options.duration_s > 0.0,
               "flood timing must be positive");
  const std::size_t rows = dem.rows(), cols = dem.cols();
  FloodResult result(rows, cols);
  auto& h = result.data();

  const double cell_area = dem.cell_size_x() * dem.cell_size_y();
  std::vector<double> flux(rows * cols, 0.0);  // net volume change per step

  const auto steps = static_cast<std::size_t>(options.duration_s / options.time_step_s);
  auto index = [cols](std::size_t r, std::size_t c) { return r * cols + c; };

  // Precompute source cells.
  struct CellSource {
    std::size_t idx;
    double rate;
  };
  std::vector<CellSource> cell_sources;
  for (const auto& src : sources) {
    AQUA_REQUIRE(src.rate_m3s >= 0.0, "flood source rate must be non-negative");
    const auto [r, c] = dem.cell_of(src.x, src.y);
    cell_sources.push_back({index(r, c), src.rate_m3s});
  }

  for (std::size_t step = 0; step < steps; ++step) {
    std::fill(flux.begin(), flux.end(), 0.0);

    // Inflows.
    for (const auto& src : cell_sources) flux[src.idx] += src.rate * options.time_step_s;

    // Diffusive-wave exchange across the two forward faces of every cell
    // (each face visited exactly once => antisymmetric => conservative).
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        const std::size_t i = index(r, c);
        const double eta_i = dem.elevation(r, c) + h[i];
        auto exchange = [&](std::size_t j, std::size_t rj, std::size_t cj, double face_width,
                            double distance) {
          const double eta_j = dem.elevation(rj, cj) + h[j];
          const double d_eta = eta_i - eta_j;
          // Upwind depth: only the higher-surface cell's water conveys.
          const double conveying_depth = d_eta > 0.0 ? h[i] : h[j];
          if (conveying_depth <= options.dry_threshold_m) return;
          const double slope = std::abs(d_eta) / distance;
          // Manning-style: q = k h^(5/3) sqrt(S) per unit width.
          double volume = options.manning_k * std::pow(conveying_depth, 5.0 / 3.0) *
                          std::sqrt(slope) * face_width * options.time_step_s;
          // Stability/positivity: never move more than a quarter of the
          // donor's water or half the head difference in one step.
          const double donor_volume = conveying_depth * cell_area;
          volume = std::min(volume, 0.25 * donor_volume);
          volume = std::min(volume, 0.5 * std::abs(d_eta) * cell_area);
          if (d_eta > 0.0) {
            flux[i] -= volume;
            flux[j] += volume;
          } else {
            flux[i] += volume;
            flux[j] -= volume;
          }
        };
        if (c + 1 < cols) exchange(index(r, c + 1), r, c + 1, dem.cell_size_y(), dem.cell_size_x());
        if (r + 1 < rows) exchange(index(r + 1, c), r + 1, c, dem.cell_size_x(), dem.cell_size_y());
      }
    }

    // Apply fluxes and infiltration.
    const double infiltration = options.infiltration_m_per_s * options.time_step_s;
    for (std::size_t i = 0; i < h.size(); ++i) {
      h[i] = std::max(0.0, h[i] + flux[i] / cell_area - infiltration);
    }
  }
  return result;
}

}  // namespace aqua::flood
