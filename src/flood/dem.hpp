// Digital elevation model for flood prediction (Sec. V-D, Fig. 11a): a
// regular grid "interpolated from node elevations" of the water network by
// inverse-distance weighting, blended with the same synthetic terrain the
// network builders sample so off-network cells stay physically coherent.
#pragma once

#include <cstddef>
#include <vector>

#include "hydraulics/network.hpp"

namespace aqua::flood {

class Dem {
 public:
  /// Builds a rows x cols grid covering the network's bounding box plus
  /// `margin_m` on every side.
  Dem(const hydraulics::Network& network, std::size_t rows, std::size_t cols,
      double margin_m = 120.0);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  double cell_size_x() const noexcept { return dx_; }
  double cell_size_y() const noexcept { return dy_; }

  double elevation(std::size_t r, std::size_t c) const { return z_[r * cols_ + c]; }
  const std::vector<double>& data() const noexcept { return z_; }

  /// World coordinates of a cell center.
  double x_of(std::size_t c) const noexcept { return x0_ + (static_cast<double>(c) + 0.5) * dx_; }
  double y_of(std::size_t r) const noexcept { return y0_ + (static_cast<double>(r) + 0.5) * dy_; }

  /// Cell containing a world point (clamped to the grid).
  std::pair<std::size_t, std::size_t> cell_of(double x, double y) const noexcept;

  double min_elevation() const noexcept;
  double max_elevation() const noexcept;

 private:
  std::size_t rows_, cols_;
  double x0_, y0_, dx_, dy_;
  std::vector<double> z_;
};

}  // namespace aqua::flood
