#include "core/snapshots.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace aqua::core {

SnapshotBatch::SnapshotBatch(const hydraulics::Network& network,
                             std::span<const LeakScenario> scenarios,
                             std::vector<std::size_t> elapsed_slots,
                             hydraulics::SimulationOptions options, bool parallel)
    : network_(network), elapsed_slots_(std::move(elapsed_slots)) {
  AQUA_REQUIRE(!elapsed_slots_.empty(), "need at least one elapsed-slot value");
  AQUA_REQUIRE(std::is_sorted(elapsed_slots_.begin(), elapsed_slots_.end()),
               "elapsed slots must be ascending");

  const std::size_t max_elapsed = elapsed_slots_.back();
  snapshots_.resize(scenarios.size());

  auto run_one = [&](std::size_t i) {
    const LeakScenario& scenario = scenarios[i];
    hydraulics::SimulationOptions run_options = options;
    AQUA_REQUIRE(scenario.leak_slot >= 1, "leak slot must have a predecessor");
    // The scenario's event times were laid out on the generator's slot
    // grid; snapshot indices below assume the same grid, so the two slot
    // lengths must agree (see ScenarioConfig::hydraulic_step_s).
    const double slot_start =
        static_cast<double>(scenario.leak_slot) * run_options.hydraulic_step_s;
    for (const auto& event : scenario.events) {
      AQUA_REQUIRE(std::abs(event.start_time_s - slot_start) <= 1e-6,
                   "scenario slot length disagrees with the simulation hydraulic step");
    }
    // Simulate just past the last snapshot we need.
    run_options.duration_s =
        static_cast<double>(scenario.leak_slot + max_elapsed) * run_options.hydraulic_step_s;
    hydraulics::Simulation simulation(network_, run_options);
    simulation.schedule_leaks(scenario.events);
    const auto results = simulation.run();

    ScenarioSnapshots& snap = snapshots_[i];
    const std::size_t nodes = results.num_nodes();
    const std::size_t links = results.num_links();
    const std::size_t before = scenario.leak_slot - 1;
    snap.before_pressure.resize(nodes);
    snap.before_flow.resize(links);
    for (std::size_t v = 0; v < nodes; ++v) snap.before_pressure[v] = results.pressure(before, v);
    for (std::size_t l = 0; l < links; ++l) snap.before_flow[l] = results.flow(before, l);

    const double seconds_per_day = 24.0 * 3600.0;
    snap.day_fraction = std::fmod(
        static_cast<double>(scenario.leak_slot) * run_options.hydraulic_step_s, seconds_per_day) /
        seconds_per_day;

    snap.after_pressure.resize(elapsed_slots_.size());
    snap.after_flow.resize(elapsed_slots_.size());
    for (std::size_t e = 0; e < elapsed_slots_.size(); ++e) {
      const std::size_t step = scenario.leak_slot + elapsed_slots_[e];
      AQUA_REQUIRE(step < results.num_steps(), "internal: snapshot beyond simulation end");
      snap.after_pressure[e].resize(nodes);
      snap.after_flow[e].resize(links);
      for (std::size_t v = 0; v < nodes; ++v) {
        snap.after_pressure[e][v] = results.pressure(step, v);
      }
      for (std::size_t l = 0; l < links; ++l) snap.after_flow[e][l] = results.flow(step, l);
    }
  };

  if (parallel) {
    ThreadPool::global().parallel_for(scenarios.size(), run_one);
  } else {
    for (std::size_t i = 0; i < scenarios.size(); ++i) run_one(i);
  }
}

const ScenarioSnapshots& SnapshotBatch::snapshots(std::size_t scenario) const {
  AQUA_REQUIRE(scenario < snapshots_.size(), "scenario index out of range");
  return snapshots_[scenario];
}

std::vector<double> SnapshotBatch::features(std::size_t scenario,
                                            const sensing::SensorSet& sensors,
                                            std::size_t elapsed_index,
                                            const sensing::NoiseModel& noise, Rng& rng,
                                            bool include_time_feature) const {
  AQUA_REQUIRE(scenario < snapshots_.size(), "scenario index out of range");
  AQUA_REQUIRE(elapsed_index < elapsed_slots_.size(), "elapsed index out of range");
  const ScenarioSnapshots& snap = snapshots_[scenario];

  std::vector<double> out;
  out.reserve(sensors.size() + (include_time_feature ? 1 : 0));
  for (const auto& sensor : sensors.sensors) {
    double before = 0.0, after = 0.0;
    if (sensor.kind == sensing::SensorKind::kPressure) {
      before = snap.before_pressure[sensor.index] + rng.normal(0.0, noise.pressure_sigma_m);
      after = snap.after_pressure[elapsed_index][sensor.index] +
              rng.normal(0.0, noise.pressure_sigma_m);
    } else {
      const double b = snap.before_flow[sensor.index];
      const double a = snap.after_flow[elapsed_index][sensor.index];
      const double sigma_b =
          std::max(noise.flow_sigma_frac * std::abs(b), noise.flow_sigma_floor_m3s);
      const double sigma_a =
          std::max(noise.flow_sigma_frac * std::abs(a), noise.flow_sigma_floor_m3s);
      before = b + rng.normal(0.0, sigma_b);
      after = a + rng.normal(0.0, sigma_a);
    }
    out.push_back(after - before);
  }
  if (include_time_feature) out.push_back(snap.day_fraction);
  return out;
}

ml::MultiLabelDataset SnapshotBatch::build_dataset(std::span<const LeakScenario> scenarios,
                                                   const sensing::SensorSet& sensors,
                                                   std::size_t elapsed_index,
                                                   const sensing::NoiseModel& noise,
                                                   std::uint64_t seed,
                                                   bool include_time_feature) const {
  AQUA_REQUIRE(scenarios.size() == snapshots_.size(),
               "scenario list must match the simulated batch");
  AQUA_REQUIRE(!scenarios.empty(), "empty scenario batch");

  const std::size_t feature_dim = sensors.size() + (include_time_feature ? 1 : 0);
  ml::MultiLabelDataset data;
  data.features = ml::Matrix(scenarios.size(), feature_dim);
  data.labels.resize(scenarios.size());
  for (const auto& sensor : sensors.sensors) data.feature_names.push_back(sensor.name);
  if (include_time_feature) data.feature_names.push_back("day_fraction");

  Rng root(seed);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    Rng rng = root.split();
    const auto row =
        features(i, sensors, elapsed_index, noise, rng, include_time_feature);
    std::copy(row.begin(), row.end(), data.features.row(i).begin());
    data.labels[i] = scenarios[i].truth;
  }
  data.check();
  return data;
}

}  // namespace aqua::core
