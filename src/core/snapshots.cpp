#include "core/snapshots.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "hydraulics/replay.hpp"

namespace aqua::core {
namespace {

/// Extracts the before/after snapshot rows of one scenario. `before` and
/// `after_results` may come from different runs (shared baseline + replay)
/// or the same full run; indices are relative to each results object.
void extract_snapshots(const hydraulics::SimulationResults& before_results,
                       std::size_t before_index,
                       const hydraulics::SimulationResults& after_results,
                       const LeakScenario& scenario,
                       const std::vector<std::size_t>& elapsed_slots, double hydraulic_step_s,
                       ScenarioSnapshots& snap) {
  const std::size_t nodes = before_results.num_nodes();
  const std::size_t links = before_results.num_links();
  snap.before_pressure.resize(nodes);
  snap.before_flow.resize(links);
  for (std::size_t v = 0; v < nodes; ++v) {
    snap.before_pressure[v] = before_results.pressure(before_index, v);
  }
  for (std::size_t l = 0; l < links; ++l) snap.before_flow[l] = before_results.flow(before_index, l);

  const double seconds_per_day = 24.0 * 3600.0;
  snap.day_fraction =
      std::fmod(static_cast<double>(scenario.leak_slot) * hydraulic_step_s, seconds_per_day) /
      seconds_per_day;
  snap.leak_slot = scenario.leak_slot;

  snap.after_pressure.resize(elapsed_slots.size());
  snap.after_flow.resize(elapsed_slots.size());
  for (std::size_t e = 0; e < elapsed_slots.size(); ++e) {
    const std::size_t step =
        scenario.leak_slot + elapsed_slots[e] - after_results.start_step();
    AQUA_REQUIRE(step < after_results.num_steps(), "internal: snapshot beyond simulation end");
    snap.after_pressure[e].resize(nodes);
    snap.after_flow[e].resize(links);
    for (std::size_t v = 0; v < nodes; ++v) {
      snap.after_pressure[e][v] = after_results.pressure(step, v);
    }
    for (std::size_t l = 0; l < links; ++l) snap.after_flow[e][l] = after_results.flow(step, l);
  }
}

}  // namespace

SnapshotBatch::SnapshotBatch(const hydraulics::Network& network,
                             std::span<const LeakScenario> scenarios,
                             std::vector<std::size_t> elapsed_slots,
                             hydraulics::SimulationOptions options, bool parallel,
                             bool use_replay)
    : network_(network), elapsed_slots_(std::move(elapsed_slots)) {
  AQUA_REQUIRE(!elapsed_slots_.empty(), "need at least one elapsed-slot value");
  AQUA_REQUIRE(std::is_sorted(elapsed_slots_.begin(), elapsed_slots_.end()),
               "elapsed slots must be ascending");

  snapshots_.resize(scenarios.size());
  stats_.scenarios = scenarios.size();
  for (const LeakScenario& scenario : scenarios) validate_scenario(scenario, options);

  // Partition: scenarios whose dynamics leave the no-leak baseline valid
  // up to their leak slot replay from its checkpoint; the rest (tank
  // drawdowns, pre-leak operational/demand windows) fall back to full
  // runs. `use_replay = false` forces everything onto the full path.
  std::vector<std::size_t> replayable, full;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (use_replay && scenarios[i].replay_compatible(options.hydraulic_step_s)) {
      replayable.push_back(i);
    } else {
      full.push_back(i);
    }
  }
  stats_.replayed = replayable.size();
  stats_.full_run = full.size();

  if (!replayable.empty()) build_replay(scenarios, replayable, options, parallel);
  if (!full.empty()) build_full(scenarios, full, options, parallel);
}

void SnapshotBatch::validate_scenario(const LeakScenario& scenario,
                                      const hydraulics::SimulationOptions& options) const {
  AQUA_REQUIRE(scenario.leak_slot >= 1, "leak slot must have a predecessor");
  // The scenario's event times were laid out on the generator's slot grid;
  // snapshot indices assume the same grid, so the two slot lengths must
  // agree (see ScenarioConfig::hydraulic_step_s).
  const double slot_start = static_cast<double>(scenario.leak_slot) * options.hydraulic_step_s;
  for (const auto& event : scenario.events) {
    AQUA_REQUIRE(std::abs(event.start_time_s - slot_start) <= 1e-6,
                 "scenario slot length disagrees with the simulation hydraulic step");
  }
}

void SnapshotBatch::build_full(std::span<const LeakScenario> scenarios,
                               std::span<const std::size_t> indices,
                               const hydraulics::SimulationOptions& options, bool parallel) {
  const std::size_t max_elapsed = elapsed_slots_.back();
  std::atomic<std::size_t> steps{0}, solves{0};

  auto run_one = [&](std::size_t k) {
    const std::size_t i = indices[k];
    const LeakScenario& scenario = scenarios[i];
    hydraulics::SimulationOptions run_options = options;
    // Simulate just past the last snapshot we need. Operational/demand
    // windows may extend past it; the stepper simply never reaches them.
    run_options.duration_s =
        static_cast<double>(scenario.leak_slot + max_elapsed) * run_options.hydraulic_step_s;
    hydraulics::Simulation simulation(network_, run_options);
    simulation.schedule_leaks(scenario.events);
    simulation.schedule_operations(scenario.operations);
    simulation.schedule_demand_events(scenario.demand_events);
    simulation.set_tank_init_scale(scenario.tank_init_scale);
    const auto results = simulation.run();
    steps.fetch_add(results.num_steps(), std::memory_order_relaxed);
    solves.fetch_add(results.total_linear_solves(), std::memory_order_relaxed);
    extract_snapshots(results, scenario.leak_slot - 1, results, scenario, elapsed_slots_,
                      run_options.hydraulic_step_s, snapshots_[i]);
  };

  if (parallel) {
    ThreadPool::global().parallel_for(indices.size(), run_one);
  } else {
    for (std::size_t k = 0; k < indices.size(); ++k) run_one(k);
  }
  stats_.scenario_steps += steps.load();
  stats_.scenario_linear_solves += solves.load();
}

void SnapshotBatch::build_replay(std::span<const LeakScenario> scenarios,
                                 std::span<const std::size_t> indices,
                                 const hydraulics::SimulationOptions& options, bool parallel) {
  const std::size_t max_elapsed = elapsed_slots_.back();
  std::size_t max_slot = 0;
  for (std::size_t i : indices) {
    max_slot = std::max(max_slot, scenarios[i].leak_slot);
  }

  // One baseline run covers every scenario: checkpoints up to the deepest
  // leak slot, pre-leak snapshot rows for free.
  const hydraulics::BaselineTrajectory baseline(network_, options, max_slot - 1);
  stats_.baseline_steps = baseline.results().num_steps();
  stats_.baseline_linear_solves = baseline.results().total_linear_solves();

  // Engine pool: each worker grabs an idle engine (or builds one, cloning
  // the baseline's symbolic factorization) and returns it when done, so at
  // most pool-width engines exist no matter how many scenarios run.
  std::vector<std::unique_ptr<hydraulics::ReplayEngine>> idle;
  std::mutex pool_mutex;
  std::size_t engines_built = 0;
  auto acquire = [&]() -> std::unique_ptr<hydraulics::ReplayEngine> {
    {
      const std::lock_guard<std::mutex> lock(pool_mutex);
      if (!idle.empty()) {
        auto engine = std::move(idle.back());
        idle.pop_back();
        return engine;
      }
      ++engines_built;
    }
    return std::make_unique<hydraulics::ReplayEngine>(baseline);
  };
  auto release = [&](std::unique_ptr<hydraulics::ReplayEngine> engine) {
    const std::lock_guard<std::mutex> lock(pool_mutex);
    idle.push_back(std::move(engine));
  };

  std::atomic<std::size_t> steps{0}, solves{0};
  auto run_one = [&](std::size_t k) {
    const std::size_t i = indices[k];
    const LeakScenario& scenario = scenarios[i];
    auto engine = acquire();
    const hydraulics::ScenarioDynamics dynamics{scenario.events, scenario.operations,
                                                scenario.demand_events};
    const auto results = engine->replay(dynamics, scenario.leak_slot, max_elapsed + 1);
    steps.fetch_add(results.num_steps(), std::memory_order_relaxed);
    solves.fetch_add(results.total_linear_solves(), std::memory_order_relaxed);
    extract_snapshots(baseline.results(), scenario.leak_slot - 1, results, scenario,
                      elapsed_slots_, options.hydraulic_step_s, snapshots_[i]);
    release(std::move(engine));
  };

  if (parallel) {
    ThreadPool::global().parallel_for(indices.size(), run_one);
  } else {
    for (std::size_t k = 0; k < indices.size(); ++k) run_one(k);
  }
  stats_.scenario_steps += steps.load();
  stats_.scenario_linear_solves += solves.load();
  stats_.engines_built = engines_built;
}

const ScenarioSnapshots& SnapshotBatch::snapshots(std::size_t scenario) const {
  AQUA_REQUIRE(scenario < snapshots_.size(), "scenario index out of range");
  return snapshots_[scenario];
}

std::vector<double> SnapshotBatch::features(std::size_t scenario,
                                            const sensing::SensorSet& sensors,
                                            std::size_t elapsed_index,
                                            const sensing::NoiseModel& noise, Rng& rng,
                                            bool include_time_feature) const {
  std::vector<double> out(sensors.size() + (include_time_feature ? 1 : 0));
  features_into(scenario, sensors, elapsed_index, noise, rng, include_time_feature, out);
  return out;
}

void SnapshotBatch::features_into(std::size_t scenario, const sensing::SensorSet& sensors,
                                  std::size_t elapsed_index, const sensing::NoiseModel& noise,
                                  Rng& rng, bool include_time_feature,
                                  std::span<double> out) const {
  features_into(scenario, sensors, elapsed_index, noise, rng, include_time_feature, {}, out);
}

void SnapshotBatch::features_into(std::size_t scenario, const sensing::SensorSet& sensors,
                                  std::size_t elapsed_index, const sensing::NoiseModel& noise,
                                  Rng& rng, bool include_time_feature,
                                  std::span<const sensing::SensorFault> faults,
                                  std::span<double> out) const {
  AQUA_REQUIRE(scenario < snapshots_.size(), "scenario index out of range");
  AQUA_REQUIRE(elapsed_index < elapsed_slots_.size(), "elapsed index out of range");
  AQUA_REQUIRE(out.size() == sensors.size() + (include_time_feature ? 1 : 0),
               "output span does not match the feature layout");
  const ScenarioSnapshots& snap = snapshots_[scenario];
  // Absolute slots of the two readings, for the fault transforms.
  const std::size_t before_slot = snap.leak_slot - 1;
  const std::size_t after_slot = snap.leak_slot + elapsed_slots_[elapsed_index];

  std::size_t k = 0;
  for (const auto& sensor : sensors.sensors) {
    double before = 0.0, after = 0.0;
    if (sensor.kind == sensing::SensorKind::kPressure) {
      before = snap.before_pressure[sensor.index] + rng.normal(0.0, noise.pressure_sigma_m);
      after = snap.after_pressure[elapsed_index][sensor.index] +
              rng.normal(0.0, noise.pressure_sigma_m);
    } else {
      const double b = snap.before_flow[sensor.index];
      const double a = snap.after_flow[elapsed_index][sensor.index];
      const double sigma_b =
          std::max(noise.flow_sigma_frac * std::abs(b), noise.flow_sigma_floor_m3s);
      const double sigma_a =
          std::max(noise.flow_sigma_frac * std::abs(a), noise.flow_sigma_floor_m3s);
      before = b + rng.normal(0.0, sigma_b);
      after = a + rng.normal(0.0, sigma_a);
    }
    // Sensor-fault layer: post-noise, pre-Δ (sensing/sensors.hpp). The
    // fault list is tiny (a handful of draws), so a linear scan per
    // sensor beats materializing full reading vectors.
    for (const auto& fault : faults) {
      if (fault.sensor != k) continue;
      before = sensing::apply_sensor_fault(fault, before, before_slot);
      after = sensing::apply_sensor_fault(fault, after, after_slot);
    }
    out[k++] = after - before;
  }
  if (include_time_feature) out[k] = snap.day_fraction;
}

ml::MultiLabelDataset SnapshotBatch::build_dataset(std::span<const LeakScenario> scenarios,
                                                   const sensing::SensorSet& sensors,
                                                   std::size_t elapsed_index,
                                                   const sensing::NoiseModel& noise,
                                                   std::uint64_t seed,
                                                   bool include_time_feature) const {
  AQUA_REQUIRE(scenarios.size() == snapshots_.size(),
               "scenario list must match the simulated batch");
  AQUA_REQUIRE(!scenarios.empty(), "empty scenario batch");

  const std::size_t feature_dim = sensors.size() + (include_time_feature ? 1 : 0);
  ml::MultiLabelDataset data;
  data.features = ml::Matrix(scenarios.size(), feature_dim);
  data.labels.resize(scenarios.size());
  for (const auto& sensor : sensors.sensors) data.feature_names.push_back(sensor.name);
  if (include_time_feature) data.feature_names.push_back("day_fraction");

  Rng root(seed);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    Rng rng = root.split();
    const auto faults =
        sensing::resolve_sensor_faults(scenarios[i].sensor_faults, sensors.size());
    features_into(i, sensors, elapsed_index, noise, rng, include_time_feature, faults,
                  data.features.row(i));
    data.labels[i] = scenarios[i].truth;
  }
  data.check();
  return data;
}

}  // namespace aqua::core
