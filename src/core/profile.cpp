#include "core/profile.hpp"

#include <chrono>

#include "common/error.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/hybrid_rsl.hpp"
#include "ml/linear_models.hpp"
#include "ml/random_forest.hpp"
#include "ml/svm.hpp"

namespace aqua::core {

std::string model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLinearR:
      return "LinearR";
    case ModelKind::kLogisticR:
      return "LogisticR";
    case ModelKind::kGradientBoosting:
      return "GB";
    case ModelKind::kRandomForest:
      return "RF";
    case ModelKind::kSvm:
      return "SVM";
    case ModelKind::kHybridRsl:
      return "HybridRSL";
  }
  return "unknown";
}

std::vector<ModelKind> all_model_kinds() {
  return {ModelKind::kLinearR, ModelKind::kLogisticR, ModelKind::kGradientBoosting,
          ModelKind::kRandomForest, ModelKind::kSvm, ModelKind::kHybridRsl};
}

ml::ClassifierFactory make_classifier_factory(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLinearR:
      return [] { return std::make_unique<ml::LinearRegressionClassifier>(); };
    case ModelKind::kLogisticR:
      return [] { return std::make_unique<ml::LogisticRegressionClassifier>(); };
    case ModelKind::kGradientBoosting:
      return [] { return std::make_unique<ml::GradientBoostingClassifier>(); };
    case ModelKind::kRandomForest:
      return [] { return std::make_unique<ml::RandomForestClassifier>(); };
    case ModelKind::kSvm:
      return [] { return std::make_unique<ml::SvmClassifier>(); };
    case ModelKind::kHybridRsl:
      return [] { return std::make_unique<ml::HybridRslClassifier>(); };
  }
  throw InvalidArgument("unknown model kind");
}

ProfileModel train_profile(const SnapshotBatch& batch, std::span<const LeakScenario> scenarios,
                           const sensing::SensorSet& sensors, std::size_t elapsed_index,
                           const ProfileTrainingConfig& config) {
  ProfileModel profile;
  profile.sensors = sensors;
  profile.noise = config.noise;
  profile.include_time_feature = config.include_time_feature;
  profile.kind = config.kind;
  profile.elapsed_index = elapsed_index;
  profile.model = ml::MultiLabelModel(make_classifier_factory(config.kind));

  const auto dataset = batch.build_dataset(scenarios, sensors, elapsed_index, config.noise,
                                           config.noise_seed, config.include_time_feature);

  const auto start = std::chrono::steady_clock::now();
  profile.model.fit(dataset, config.parallel);
  profile.train_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return profile;
}

}  // namespace aqua::core
