#include "core/profile.hpp"

#include <chrono>
#include <fstream>

#include "common/error.hpp"
#include "io/artifact.hpp"
#include "io/mapped_artifact.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/hybrid_rsl.hpp"
#include "ml/linear_models.hpp"
#include "ml/random_forest.hpp"
#include "ml/svm.hpp"

namespace aqua::core {

std::string model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLinearR:
      return "LinearR";
    case ModelKind::kLogisticR:
      return "LogisticR";
    case ModelKind::kGradientBoosting:
      return "GB";
    case ModelKind::kRandomForest:
      return "RF";
    case ModelKind::kSvm:
      return "SVM";
    case ModelKind::kHybridRsl:
      return "HybridRSL";
  }
  return "unknown";
}

std::vector<ModelKind> all_model_kinds() {
  return {ModelKind::kLinearR, ModelKind::kLogisticR, ModelKind::kGradientBoosting,
          ModelKind::kRandomForest, ModelKind::kSvm, ModelKind::kHybridRsl};
}

ml::ClassifierFactory make_classifier_factory(ModelKind kind, std::size_t max_bins) {
  switch (kind) {
    case ModelKind::kLinearR:
      return [] { return std::make_unique<ml::LinearRegressionClassifier>(); };
    case ModelKind::kLogisticR:
      return [] { return std::make_unique<ml::LogisticRegressionClassifier>(); };
    case ModelKind::kGradientBoosting:
      return [max_bins] {
        ml::GradientBoostingConfig config;
        if (max_bins > 0) config.max_bins = max_bins;
        return std::make_unique<ml::GradientBoostingClassifier>(config);
      };
    case ModelKind::kRandomForest:
      return [max_bins] {
        ml::RandomForestConfig config;
        if (max_bins > 0) config.max_bins = max_bins;
        return std::make_unique<ml::RandomForestClassifier>(config);
      };
    case ModelKind::kSvm:
      return [] { return std::make_unique<ml::SvmClassifier>(); };
    case ModelKind::kHybridRsl:
      return [max_bins] {
        ml::HybridRslConfig config;
        if (max_bins > 0) config.forest.max_bins = max_bins;
        return std::make_unique<ml::HybridRslClassifier>(config);
      };
  }
  throw InvalidArgument("unknown model kind");
}

void ProfileModel::save(std::ostream& out) const {
  io::ArtifactWriter artifact;
  auto& meta = artifact.section("profile");
  meta.write_u8(static_cast<std::uint8_t>(kind));
  meta.write_u64(elapsed_index);
  meta.write_bool(include_time_feature);
  meta.write_f64(train_seconds);
  sensors.save(artifact.section("sensors"));
  noise.save(artifact.section("noise"));
  model.save(artifact.section("model"));
  artifact.write_to(out);
}

ProfileModel ProfileModel::load(std::istream& in) {
  const io::ArtifactReader artifact(in);
  return load(artifact);
}

ProfileModel ProfileModel::load(const io::ArtifactSource& artifact) {
  ProfileModel profile;

  auto meta = artifact.section("profile");
  const std::uint8_t kind = meta.read_u8();
  if (kind > static_cast<std::uint8_t>(ModelKind::kHybridRsl)) {
    throw io::SerializationError("malformed profile: unknown model kind tag");
  }
  profile.kind = static_cast<ModelKind>(kind);
  profile.elapsed_index = meta.read_u64();
  profile.include_time_feature = meta.read_bool();
  profile.train_seconds = meta.read_f64();
  meta.expect_end();

  auto sensors_reader = artifact.section("sensors");
  profile.sensors = sensing::SensorSet::load(sensors_reader);
  sensors_reader.expect_end();

  auto noise_reader = artifact.section("noise");
  profile.noise = sensing::NoiseModel::load(noise_reader);
  noise_reader.expect_end();

  auto model_reader = artifact.section("model");
  profile.model = ml::MultiLabelModel::load(model_reader);
  model_reader.expect_end();
  return profile;
}

void ProfileModel::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw io::SerializationError("cannot open '" + path + "' for writing");
  save(out);
  out.flush();
  if (!out) throw io::SerializationError("write failed while saving artifact to '" + path + "'");
}

ProfileModel ProfileModel::load_file(const std::string& path) {
  return load(*io::open_artifact(path));
}

ProfileModel train_profile(const SnapshotBatch& batch, std::span<const LeakScenario> scenarios,
                           const sensing::SensorSet& sensors, std::size_t elapsed_index,
                           const ProfileTrainingConfig& config) {
  ProfileModel profile;
  profile.sensors = sensors;
  profile.noise = config.noise;
  profile.include_time_feature = config.include_time_feature;
  profile.kind = config.kind;
  profile.elapsed_index = elapsed_index;
  profile.model = ml::MultiLabelModel(make_classifier_factory(config.kind, config.max_bins));

  const auto dataset = batch.build_dataset(scenarios, sensors, elapsed_index, config.noise,
                                           config.noise_seed, config.include_time_feature);

  const auto start = std::chrono::steady_clock::now();
  profile.model.fit(dataset, config.parallel);
  profile.train_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return profile;
}

}  // namespace aqua::core
