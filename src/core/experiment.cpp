#include "core/experiment.hpp"

#include <cmath>

#include "common/error.hpp"
#include "core/inference_engine.hpp"
#include "fusion/weather.hpp"

namespace aqua::core {

ExperimentContext::ExperimentContext(const hydraulics::Network& network, ExperimentConfig config)
    : network_(network), config_(std::move(config)), labels_(network) {
  AQUA_REQUIRE(config_.train_samples > 0 && config_.test_samples > 0,
               "need train and test samples");

  ScenarioGenerator generator(network_, config_.scenarios);
  train_scenarios_ = generator.generate(config_.train_samples);
  test_scenarios_ = generator.generate(config_.test_samples);

  hydraulics::SimulationOptions sim_options;
  train_batch_ = std::make_unique<SnapshotBatch>(network_, train_scenarios_,
                                                 config_.elapsed_slots, sim_options);
  test_batch_ = std::make_unique<SnapshotBatch>(network_, test_scenarios_,
                                                config_.elapsed_slots, sim_options);
}

const sensing::SensorSet& ExperimentContext::sensors_at(double percent, bool kmedoids) {
  const auto key = std::make_pair(static_cast<int>(std::lround(percent * 100.0)), kmedoids);
  const auto it = sensor_cache_.find(key);
  if (it != sensor_cache_.end()) return it->second;

  const std::size_t count = sensing::sensors_for_percentage(network_, percent);
  sensing::SensorSet sensors;
  if (percent >= 100.0) {
    sensors = sensing::full_observation(network_);
  } else if (kmedoids) {
    if (!baseline_day_) {
      // Healthy 24 h baseline at the IoT cadence for placement signatures.
      hydraulics::Simulation baseline(network_, {});
      baseline_day_ = baseline.run();
    }
    sensors = sensing::place_sensors_kmedoids(network_, *baseline_day_, count,
                                              config_.seed ^ 0x5e5e5e5eULL);
  } else {
    sensors = sensing::place_sensors_random(network_, count, config_.seed ^ 0x7a7a7a7aULL);
  }
  return sensor_cache_.emplace(key, std::move(sensors)).first->second;
}

ProfileModel ExperimentContext::train(const EvalOptions& options) {
  AQUA_REQUIRE(options.elapsed_index < config_.elapsed_slots.size(),
               "elapsed index out of range");
  const auto& sensors = sensors_at(options.iot_percent, options.kmedoids_placement);
  ProfileTrainingConfig training;
  training.kind = options.kind;
  training.noise = config_.noise;
  training.include_time_feature = options.include_time_feature;
  training.noise_seed = config_.seed ^ 0x1111ULL;
  return train_profile(*train_batch_, train_scenarios_, sensors, options.elapsed_index, training);
}

EvalResult ExperimentContext::evaluate(const EvalOptions& options) {
  const ProfileModel profile = train(options);
  return evaluate_profile(profile, options);
}

EvalResult ExperimentContext::evaluate_profile(const ProfileModel& profile,
                                               const EvalOptions& options) {
  AQUA_REQUIRE(profile.model.fitted(), "profile not trained");
  EvalResult result;
  result.train_seconds = profile.train_seconds;
  result.test_samples = test_scenarios_.size();

  fusion::TweetGenerator tweet_generator(options.tweets);
  const std::size_t elapsed = config_.elapsed_slots[options.elapsed_index];

  // Effective weather-expert probability (see EvalOptions::calibrated_weather).
  double weather_expert = options.p_leak_given_freeze;
  if (options.calibrated_weather) {
    const double likelihood_ratio = 1.0 / std::max(config_.scenarios.freeze.p_freeze, 1e-6);
    weather_expert = likelihood_ratio / (1.0 + likelihood_ratio);
  }

  std::vector<ml::Labels> fused, iot_only, truth;
  fused.reserve(test_scenarios_.size());
  Rng root(config_.seed ^ 0x9999ULL);
  double total_infer_seconds = 0.0;

  // Build the whole test batch up front, then run it through the batched
  // serving layer in one call (bit-identical to the per-scenario loop, but
  // the profile evaluation hoists the classifiers' shared input map).
  std::vector<InferenceInputs> batch(test_scenarios_.size());
  for (std::size_t i = 0; i < test_scenarios_.size(); ++i) {
    const LeakScenario& scenario = test_scenarios_[i];
    Rng rng = root.split();

    InferenceInputs& inputs = batch[i];
    // Scenario sensor faults (scenario-diversity engine) degrade the test
    // features the same way build_dataset degrades training rows.
    const auto faults =
        sensing::resolve_sensor_faults(scenario.sensor_faults, profile.sensors.size());
    inputs.features.resize(profile.sensors.size() + (profile.include_time_feature ? 1 : 0));
    test_batch_->features_into(i, profile.sensors, options.elapsed_index, profile.noise, rng,
                               profile.include_time_feature, faults, inputs.features);
    inputs.p_leak_given_freeze = weather_expert;
    inputs.entropy_threshold = options.entropy_threshold;

    // Weather expert applies only when the ambient temperature is below
    // the freezing threshold (Sec. III-C).
    if (options.use_weather && scenario.temperature_f < fusion::kFreezeThresholdF) {
      inputs.frozen = scenario.frozen;
    }

    if (options.use_human) {
      std::vector<hydraulics::NodeId> leak_nodes;
      for (const auto& event : scenario.events) leak_nodes.push_back(event.node);
      const auto tweets = tweet_generator.generate(network_, leak_nodes, elapsed, rng);
      const auto cliques = tweet_generator.build_cliques(network_, tweets);
      inputs.cliques = to_label_cliques(cliques, labels_);
    }
  }

  const InferenceEngine engine(profile);
  const std::vector<InferenceResult> inferences = engine.infer_batch(batch);
  for (std::size_t i = 0; i < inferences.size(); ++i) {
    total_infer_seconds += inferences[i].infer_seconds;
    fused.push_back(inferences[i].predicted);
    iot_only.push_back(inferences[i].predicted_iot_only);
    truth.push_back(test_scenarios_[i].truth);
  }

  result.hamming = ml::mean_hamming_score(fused, truth);
  result.hamming_iot_only = ml::mean_hamming_score(iot_only, truth);
  result.prf = ml::micro_precision_recall(fused, truth);
  result.mean_infer_seconds = total_infer_seconds / static_cast<double>(test_scenarios_.size());
  return result;
}

}  // namespace aqua::core
