// Phase I (Sec. IV-A, Algorithm 1): train the offline profile model
// f = {f_v} on a large corpus of simulated scenarios. The model kind is
// plug-and-play; `make_classifier_factory` exposes the paper's lineup.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/label_space.hpp"
#include "core/snapshots.hpp"
#include "ml/multilabel.hpp"
#include "sensing/placement.hpp"

namespace aqua::io {
class ArtifactSource;
}

namespace aqua::core {

enum class ModelKind {
  kLinearR,
  kLogisticR,
  kGradientBoosting,
  kRandomForest,
  kSvm,
  kHybridRsl,
};

std::string model_kind_name(ModelKind kind);

/// All kinds, in the order the paper's Fig. 6 compares them.
std::vector<ModelKind> all_model_kinds();

/// Factory producing fresh classifiers of the given kind with sensible
/// defaults for per-node leak classification. `max_bins` overrides the
/// tree ensembles' histogram bin budget (0 = keep the kind's default;
/// ignored by non-tree kinds).
ml::ClassifierFactory make_classifier_factory(ModelKind kind, std::size_t max_bins = 0);

/// The trained profile plus everything needed to featurize live data the
/// same way the training set was featurized.
struct ProfileModel {
  ml::MultiLabelModel model;
  sensing::SensorSet sensors;
  sensing::NoiseModel noise;
  bool include_time_feature = true;
  ModelKind kind = ModelKind::kHybridRsl;
  std::size_t elapsed_index = 0;  // which entry of the batch's elapsed list
  double train_seconds = 0.0;

  /// Persists the trained profile as a versioned, checksummed artifact
  /// (io/artifact.hpp). `load(save(p))` predicts bit-identically to `p`, so
  /// Phase II services can skip Phase I entirely on a warm artifact.
  void save(std::ostream& out) const;

  /// Restores a profile written by save(); throws io::SerializationError on
  /// truncated, corrupted, or wrong-version artifacts.
  static ProfileModel load(std::istream& in);

  /// Decodes a profile from an already opened artifact (buffered or
  /// mmapped — any io::ArtifactSource). This is the path the serving
  /// daemon's publisher uses: open_artifact() + load() keeps the model
  /// bytes on the page cache until each section is decoded.
  static ProfileModel load(const io::ArtifactSource& artifact);

  /// Convenience: save to / load from a filesystem path. load_file prefers
  /// the zero-copy mmap reader and falls back to buffered I/O when the
  /// file cannot be mapped (io::open_artifact).
  void save_file(const std::string& path) const;
  static ProfileModel load_file(const std::string& path);
};

struct ProfileTrainingConfig {
  ModelKind kind = ModelKind::kHybridRsl;
  sensing::NoiseModel noise;
  bool include_time_feature = true;
  std::uint64_t noise_seed = 555;
  bool parallel = true;
  /// Histogram bin budget for tree-ensemble kinds (0 = kind default).
  std::size_t max_bins = 0;
};

/// Trains a profile on the batch's scenarios at the given elapsed index.
ProfileModel train_profile(const SnapshotBatch& batch, std::span<const LeakScenario> scenarios,
                           const sensing::SensorSet& sensors, std::size_t elapsed_index,
                           const ProfileTrainingConfig& config);

}  // namespace aqua::core
