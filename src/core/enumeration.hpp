// The "calibrated hydraulic simulator" baseline from the paper's related
// work (Sec. I, refs [8-11]): localize leaks by enumerating candidate
// leaky nodes and re-simulating until the simulated sensor deltas best
// match the observed ones. Greedy forward selection over (node, EC)
// hypotheses; every hypothesis evaluation is a hydraulic solve, which is
// exactly why the paper calls this approach "computationally expensive or
// prohibitive" — the detection-time bench quantifies the gap against
// Phase II profile inference.
#pragma once

#include <cstdint>
#include <vector>

#include "core/label_space.hpp"
#include "hydraulics/solver.hpp"
#include "ml/dataset.hpp"
#include "sensing/sensors.hpp"

namespace aqua::core {

struct EnumerationConfig {
  /// Candidate leak severities tried per node.
  std::vector<double> candidate_ecs = {0.002, 0.005};
  std::size_t max_leaks = 5;
  /// Stop when the best candidate improves the residual by less than this
  /// relative fraction.
  double min_relative_improvement = 0.05;
  /// When positive, prune the candidate set before the greedy search: one
  /// linearized probe (GgaSolver::probe_outflow_response — a single
  /// factorization with one RHS per label) predicts each label's sensor
  /// signature, and only the `screen_top_k` labels whose signatures best
  /// match the observed deltas (cosine similarity) enter the per-round
  /// hydraulic trials. Cuts full solves from O(labels) to O(top_k) per
  /// round. 0 disables screening.
  std::size_t screen_top_k = 0;
};

struct EnumerationOutcome {
  ml::Labels predicted;           // per-label leak mask
  double residual = 0.0;          // final ||simulated - observed||
  std::size_t hydraulic_solves = 0;
  /// Labels admitted to the greedy search (== num_labels when screening
  /// is off).
  std::size_t screened_labels = 0;
  double seconds = 0.0;
};

class EnumerationLocalizer {
 public:
  EnumerationLocalizer(const hydraulics::Network& network, sensing::SensorSet sensors,
                       EnumerationConfig config = {});

  /// `observed_deltas` are the sensor Δ-readings (after − before, same
  /// layout as the sensor set, no time feature). `before_period` and
  /// `after_period` are the demand-pattern periods of e.t−1 and e.t+n.
  EnumerationOutcome localize(std::span<const double> observed_deltas,
                              std::size_t before_period, std::size_t after_period) const;

 private:
  std::vector<double> simulate_deltas(const std::vector<std::pair<std::size_t, double>>& leaks,
                                      std::size_t before_period, std::size_t after_period,
                                      std::size_t* solves) const;

  const hydraulics::Network& network_;
  LabelSpace labels_;
  sensing::SensorSet sensors_;
  EnumerationConfig config_;
};

}  // namespace aqua::core
