// Mapping between network node ids and the dense label space of the
// multi-label classification problem. Leak events "are assumed to occur at
// node (the joint of pipes)" (Sec. III-B), so labels enumerate junctions
// in node-id order.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "hydraulics/network.hpp"

namespace aqua::core {

class LabelSpace {
 public:
  static constexpr std::size_t kNoLabel = static_cast<std::size_t>(-1);

  explicit LabelSpace(const hydraulics::Network& network)
      : junctions_(network.junction_ids()), label_of_node_(network.num_nodes(), kNoLabel) {
    for (std::size_t label = 0; label < junctions_.size(); ++label) {
      label_of_node_[junctions_[label]] = label;
    }
  }

  std::size_t num_labels() const noexcept { return junctions_.size(); }

  hydraulics::NodeId node_of(std::size_t label) const {
    AQUA_REQUIRE(label < junctions_.size(), "label out of range");
    return junctions_[label];
  }

  std::size_t label_of(hydraulics::NodeId node) const {
    AQUA_REQUIRE(node < label_of_node_.size(), "node out of range");
    return label_of_node_[node];
  }

  bool has_label(hydraulics::NodeId node) const {
    return node < label_of_node_.size() && label_of_node_[node] != kNoLabel;
  }

  const std::vector<hydraulics::NodeId>& junctions() const noexcept { return junctions_; }

 private:
  std::vector<hydraulics::NodeId> junctions_;
  std::vector<std::size_t> label_of_node_;
};

}  // namespace aqua::core
