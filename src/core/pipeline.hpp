// Phase II (Sec. IV-B, Algorithm 2): online inference. Live IoT features
// go through the profile model (predict_proba / predict); frozen nodes get
// the Bayes weather update; human-input cliques apply higher-order-
// potential event tuning. The result is the final leak set S plus the
// diagnostics the paper reasons about (energy before/after, entropy).
#pragma once

#include "core/profile.hpp"
#include "fusion/beliefs.hpp"
#include "fusion/human.hpp"

namespace aqua::core {

struct InferenceInputs {
  std::vector<double> features;          // live x (same schema as training)
  std::vector<std::uint8_t> frozen;      // per label; empty = no weather source
  std::vector<fusion::LabelClique> cliques;  // empty = no human source
  double p_leak_given_freeze = 0.9;
  double entropy_threshold = 0.0;        // Γ; 0 = "always consider human effect"
};

struct InferenceResult {
  fusion::Beliefs beliefs;              // final per-label p_v(1)
  ml::Labels predicted;                 // final S as 0/1 mask
  ml::Labels predicted_iot_only;        // S before any fusion (diagnostic)
  std::size_t weather_updates = 0;
  fusion::HumanTuningResult tuning;
  double energy_before = 0.0;           // E[y] incl. potentials, pre-tuning
  double energy_after = 0.0;
  double infer_seconds = 0.0;
};

/// Runs Algorithm 2 end to end.
InferenceResult infer_leaks(const ProfileModel& profile, const InferenceInputs& inputs);

/// Maps geographic cliques (node ids) into label space, dropping non-
/// junction members; empty cliques are discarded.
std::vector<fusion::LabelClique> to_label_cliques(const std::vector<fusion::Clique>& cliques,
                                                  const LabelSpace& labels);

}  // namespace aqua::core
