// Greedy sensor-placement optimization — the problem the paper defers
// ("the problem of identifying an optimal sensor placement for leak
// detection will be studied in future work", Sec. IV-A) and the Decision
// Support Module is meant to explore. Given a simulated scenario batch,
// greedily picks the sensor whose Δ-signal detects the most not-yet-
// covered scenarios: classic submodular max-coverage, within (1 - 1/e) of
// optimal for the coverage objective.
#pragma once

#include <cstdint>

#include "core/snapshots.hpp"
#include "sensing/sensors.hpp"

namespace aqua::core {

struct GreedyPlacementOptions {
  /// A scenario counts as detected by a sensor when the sensor's |Δ|
  /// exceeds this multiple of its measurement noise sigma.
  double snr_threshold = 5.0;
  /// Noise model supplying the per-kind sigmas.
  sensing::NoiseModel noise;
};

struct GreedyPlacementResult {
  sensing::SensorSet sensors;
  /// Scenarios covered after each greedy pick (monotone non-decreasing).
  std::vector<std::size_t> coverage_curve;
  std::size_t total_scenarios = 0;
};

/// Selects `count` sensors over all |V|+|E| candidates using the batch's
/// snapshots at `elapsed_index`. Ties break toward lower candidate index,
/// so the result is deterministic.
GreedyPlacementResult place_sensors_greedy(const SnapshotBatch& batch, std::size_t count,
                                           std::size_t elapsed_index = 0,
                                           const GreedyPlacementOptions& options = {});

}  // namespace aqua::core
