#include "core/inference_engine.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace aqua::core {

namespace {

double elapsed_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

telemetry::StageTimes InferenceEngine::make_telemetry_schema() {
  return telemetry::StageTimes({"profile_eval", "weather", "human_tuning", "energy"},
                               {"snapshots", "batches", "weather_updates", "labels_added"});
}

InferenceEngine::InferenceEngine(const ProfileModel& profile, InferenceEngineOptions options)
    : profile_(profile), options_(options), registry_(make_telemetry_schema()) {
  AQUA_REQUIRE(profile.model.fitted(), "profile model is not trained");
}

InferenceResult InferenceEngine::infer(const InferenceInputs& inputs) const {
  auto results = infer_batch(std::span<const InferenceInputs>(&inputs, 1));
  return std::move(results.front());
}

void InferenceEngine::fuse_snapshot(const InferenceInputs& inputs, InferenceResult& result,
                                    telemetry::StageTimes& times) const {
  result.beliefs.predicted_set_into(result.predicted_iot_only);

  // Weather expert (Algorithm 2 lines 6-13).
  if (!inputs.frozen.empty()) {
    const telemetry::ScopedStageTimer timer(times, kStageWeather);
    result.weather_updates =
        fusion::apply_weather_update(result.beliefs, inputs.frozen, inputs.p_leak_given_freeze);
    times.add_count(kCounterWeatherUpdates, result.weather_updates);
  } else {
    result.weather_updates = 0;
  }

  // Human event tuning (lines 14-26), bracketed by the energy bookkeeping.
  {
    const telemetry::ScopedStageTimer timer(times, kStageEnergy);
    result.energy_before =
        fusion::total_energy(result.beliefs, inputs.cliques, inputs.entropy_threshold);
  }
  if (!inputs.cliques.empty()) {
    const telemetry::ScopedStageTimer timer(times, kStageHumanTuning);
    fusion::apply_human_tuning_into(result.beliefs, inputs.cliques, inputs.entropy_threshold,
                                    /*min_confidence=*/0.0, result.tuning);
    times.add_count(kCounterLabelsAdded, result.tuning.added_labels.size());
  } else {
    result.tuning = fusion::HumanTuningResult{};
  }
  {
    const telemetry::ScopedStageTimer timer(times, kStageEnergy);
    result.energy_after =
        fusion::total_energy(result.beliefs, inputs.cliques, inputs.entropy_threshold);
  }

  result.beliefs.predicted_set_into(result.predicted);
}

std::vector<InferenceResult> InferenceEngine::infer_batch(
    std::span<const InferenceInputs> batch) const {
  std::vector<InferenceResult> results(batch.size());
  if (batch.empty()) return results;

  const std::size_t dim = batch.front().features.size();
  AQUA_REQUIRE(dim > 0, "inference inputs have no features");
  for (const auto& inputs : batch) {
    AQUA_REQUIRE(inputs.features.size() == dim, "inconsistent feature dimensions across batch");
  }

  telemetry::StageTimes batch_times = make_telemetry_schema();
  batch_times.add_count(kCounterSnapshots, batch.size());
  batch_times.add_count(kCounterBatches, 1);

  // Stage 1: stack feature rows and evaluate the profile model in one
  // batched call (one shared-input-map computation per snapshot instead of
  // one per label; see MultiLabelModel::predict_proba_batch_into).
  ml::Matrix features(batch.size(), dim);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::copy(batch[i].features.begin(), batch[i].features.end(), features.row(i).begin());
  }
  ml::Matrix proba;
  const auto profile_start = std::chrono::steady_clock::now();
  profile_.model.predict_proba_batch_into(features, proba, options_.parallel);
  const double profile_seconds = elapsed_seconds(profile_start);
  batch_times.add_seconds(kStageProfileEval, profile_seconds,
                          static_cast<std::uint64_t>(batch.size()));
  const double profile_share = profile_seconds / static_cast<double>(batch.size());

  // Stage 2: per-snapshot fusion, chunked across the pool. Workers record
  // into private StageTimes (no shared state in the hot path) and merge
  // once per chunk. Results land in their input slots, so ordering is
  // deterministic regardless of chunk completion order.
  auto& pool = ThreadPool::global();
  const std::size_t chunks =
      options_.parallel ? std::max<std::size_t>(1, std::min(pool.size(), batch.size())) : 1;
  const std::size_t per_chunk = (batch.size() + chunks - 1) / chunks;
  auto run_chunk = [&](std::size_t chunk) {
    telemetry::StageTimes local = make_telemetry_schema();
    const std::size_t begin = chunk * per_chunk;
    const std::size_t end = std::min(begin + per_chunk, batch.size());
    for (std::size_t i = begin; i < end; ++i) {
      const auto fuse_start = std::chrono::steady_clock::now();
      const auto row = proba.row(i);
      results[i].beliefs.p_leak.assign(row.begin(), row.end());
      fuse_snapshot(batch[i], results[i], local);
      results[i].infer_seconds = elapsed_seconds(fuse_start) + profile_share;
    }
    registry_.merge(local);
  };
  if (chunks > 1) {
    pool.parallel_for(chunks, run_chunk);
  } else {
    run_chunk(0);
  }
  registry_.merge(batch_times);

  return results;
}

}  // namespace aqua::core
