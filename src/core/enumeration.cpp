#include "core/enumeration.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace aqua::core {

EnumerationLocalizer::EnumerationLocalizer(const hydraulics::Network& network,
                                           sensing::SensorSet sensors, EnumerationConfig config)
    : network_(network), labels_(network), sensors_(std::move(sensors)), config_(config) {
  AQUA_REQUIRE(!config_.candidate_ecs.empty(), "need at least one candidate EC");
  AQUA_REQUIRE(config_.max_leaks >= 1, "max leaks must be positive");
}

namespace {

std::vector<double> fixed_heads_of(const hydraulics::Network& network) {
  std::vector<double> fixed(network.num_nodes(), 0.0);
  for (hydraulics::NodeId v = 0; v < network.num_nodes(); ++v) {
    const auto& node = network.node(v);
    if (node.type == hydraulics::NodeType::kReservoir) fixed[v] = node.elevation;
    if (node.type == hydraulics::NodeType::kTank) fixed[v] = node.elevation + node.init_level;
  }
  return fixed;
}

std::vector<double> demands_of(const hydraulics::Network& network, std::size_t period) {
  std::vector<double> demands(network.num_nodes(), 0.0);
  for (hydraulics::NodeId v = 0; v < network.num_nodes(); ++v) {
    demands[v] = network.demand_at(v, period);
  }
  return demands;
}

}  // namespace

std::vector<double> EnumerationLocalizer::simulate_deltas(
    const std::vector<std::pair<std::size_t, double>>& leaks, std::size_t before_period,
    std::size_t after_period, std::size_t* solves) const {
  // Snapshot-mode evaluation: healthy steady state at the "before" demand
  // period, steady state with the hypothesized emitters at the "after"
  // period. Tanks use initial levels (the baseline has no access to live
  // internal tank state either).
  hydraulics::Network candidate = network_;
  candidate.clear_emitters();
  const auto fixed = fixed_heads_of(candidate);

  hydraulics::GgaSolver healthy_solver(candidate);
  const auto before_state = healthy_solver.solve(demands_of(candidate, before_period), fixed);
  ++*solves;

  for (const auto& [label, ec] : leaks) candidate.set_emitter(labels_.node_of(label), ec);
  hydraulics::GgaSolver leaky_solver(candidate);
  const auto after_state =
      leaky_solver.solve(demands_of(candidate, after_period), fixed, &before_state);
  ++*solves;

  std::vector<double> deltas(sensors_.size());
  for (std::size_t i = 0; i < sensors_.size(); ++i) {
    const auto& sensor = sensors_.sensors[i];
    if (sensor.kind == sensing::SensorKind::kPressure) {
      deltas[i] = after_state.pressure[sensor.index] - before_state.pressure[sensor.index];
    } else {
      deltas[i] = after_state.flow[sensor.index] - before_state.flow[sensor.index];
    }
  }
  return deltas;
}

EnumerationOutcome EnumerationLocalizer::localize(std::span<const double> observed_deltas,
                                                  std::size_t before_period,
                                                  std::size_t after_period) const {
  AQUA_REQUIRE(observed_deltas.size() == sensors_.size(),
               "observed deltas must match the sensor set");
  const auto start = std::chrono::steady_clock::now();

  EnumerationOutcome outcome;
  outcome.predicted.assign(labels_.num_labels(), 0);

  // Shared healthy "before" state, computed once.
  hydraulics::Network healthy = network_;
  healthy.clear_emitters();
  const auto fixed = fixed_heads_of(healthy);
  hydraulics::GgaSolver healthy_solver(healthy);
  const auto before_state = healthy_solver.solve(demands_of(healthy, before_period), fixed);
  ++outcome.hydraulic_solves;

  const auto after_demands = demands_of(network_, after_period);

  // Optional screening pass: one linearized probe predicts each label's
  // sensor signature (the first-order response of every sensor to a unit
  // leak outflow at that node), and only the top_k labels whose signatures
  // best align with the observed deltas survive into the greedy rounds.
  // The probe costs a single factorization plus one blocked multi-RHS
  // solve for ALL labels — against O(labels) nonlinear solves per round.
  std::vector<char> admitted(labels_.num_labels(), 1);
  outcome.screened_labels = labels_.num_labels();
  if (config_.screen_top_k > 0 && config_.screen_top_k < labels_.num_labels()) {
    std::vector<hydraulics::NodeId> probes(labels_.num_labels());
    for (std::size_t label = 0; label < labels_.num_labels(); ++label) {
      probes[label] = labels_.node_of(label);
    }
    std::vector<double> head_response, flow_response;
    healthy_solver.probe_outflow_response(before_state, probes, head_response, &flow_response);

    const std::size_t n = network_.num_nodes();
    const std::size_t m = network_.num_links();
    double observed_norm = 0.0;
    for (double d : observed_deltas) observed_norm += d * d;
    observed_norm = std::sqrt(observed_norm);

    std::vector<std::pair<double, std::size_t>> scored(labels_.num_labels());
    for (std::size_t label = 0; label < labels_.num_labels(); ++label) {
      const double* dh = head_response.data() + label * n;
      const double* dq = flow_response.data() + label * m;
      double dot = 0.0, sig_norm = 0.0;
      for (std::size_t i = 0; i < sensors_.size(); ++i) {
        const auto& sensor = sensors_.sensors[i];
        // Pressure delta == head delta (elevation cancels).
        const double sig = sensor.kind == sensing::SensorKind::kPressure ? dh[sensor.index]
                                                                         : dq[sensor.index];
        dot += sig * observed_deltas[i];
        sig_norm += sig * sig;
      }
      sig_norm = std::sqrt(sig_norm);
      const double denom = sig_norm * observed_norm;
      scored[label] = {denom > 0.0 ? dot / denom : -2.0, label};
    }
    std::partial_sort(scored.begin(),
                      scored.begin() + static_cast<std::ptrdiff_t>(config_.screen_top_k),
                      scored.end(), [](const auto& a, const auto& b) { return a.first > b.first; });
    admitted.assign(labels_.num_labels(), 0);
    for (std::size_t k = 0; k < config_.screen_top_k; ++k) admitted[scored[k].second] = 1;
    outcome.screened_labels = config_.screen_top_k;
  }

  // Trial hypotheses can push the network into hydraulically infeasible
  // regimes (several large emitters at once); those solves may not
  // converge and simply mean "this hypothesis does not explain the data",
  // so they score an infinite residual instead of aborting the search.
  hydraulics::SolverOptions solver_options;
  solver_options.throw_on_divergence = false;

  // Evaluates one hypothesis on a caller-owned network/solver pair. The
  // GGA solver re-reads emitter attributes each solve, so one solver per
  // worker serves every trial (assembly and symbolic factorization are
  // built once, not per hypothesis).
  auto eval_hypothesis = [&](hydraulics::Network& candidate, const hydraulics::GgaSolver& solver,
                             const std::vector<std::pair<std::size_t, double>>& leaks) {
    candidate.clear_emitters();
    for (const auto& [label, ec] : leaks) candidate.set_emitter(labels_.node_of(label), ec);
    const auto after_state = solver.solve(after_demands, fixed, &before_state);
    if (!after_state.converged) return std::numeric_limits<double>::infinity();
    double ss = 0.0;
    for (std::size_t i = 0; i < sensors_.size(); ++i) {
      const auto& sensor = sensors_.sensors[i];
      const double delta = sensor.kind == sensing::SensorKind::kPressure
                               ? after_state.pressure[sensor.index] -
                                     before_state.pressure[sensor.index]
                               : after_state.flow[sensor.index] - before_state.flow[sensor.index];
      const double d = delta - observed_deltas[i];
      ss += d * d;
    }
    return std::sqrt(ss);
  };

  std::vector<std::pair<std::size_t, double>> hypothesis;
  hydraulics::Network base_candidate = network_;
  const hydraulics::GgaSolver base_solver(base_candidate, solver_options);
  double current_residual = eval_hypothesis(base_candidate, base_solver, hypothesis);
  ++outcome.hydraulic_solves;

  // Each greedy round scores every remaining (node, EC) extension of the
  // current hypothesis; the trials are independent hydraulic solves, so
  // they fan out over the global thread pool with one network/solver
  // context per worker (GgaSolver instances are not shareable across
  // threads).
  auto& pool = ThreadPool::global();
  const std::size_t workers = std::max<std::size_t>(1, pool.size());

  for (std::size_t round = 0; round < config_.max_leaks; ++round) {
    std::vector<std::pair<std::size_t, double>> trials;  // (label, ec)
    trials.reserve(labels_.num_labels() * config_.candidate_ecs.size());
    for (std::size_t label = 0; label < labels_.num_labels(); ++label) {
      if (outcome.predicted[label] != 0 || admitted[label] == 0) continue;
      for (double ec : config_.candidate_ecs) trials.emplace_back(label, ec);
    }
    if (trials.empty()) break;

    std::vector<double> residuals(trials.size(), std::numeric_limits<double>::infinity());
    std::atomic<std::size_t> solves{0};
    const std::size_t stripes = std::min(workers, trials.size());
    pool.parallel_for(stripes, [&](std::size_t w) {
      hydraulics::Network candidate = network_;
      const hydraulics::GgaSolver solver(candidate, solver_options);
      std::size_t local_solves = 0;
      auto trial_hypothesis = hypothesis;
      trial_hypothesis.emplace_back(0, 0.0);
      for (std::size_t t = w; t < trials.size(); t += stripes) {
        trial_hypothesis.back() = trials[t];
        residuals[t] = eval_hypothesis(candidate, solver, trial_hypothesis);
        ++local_solves;
      }
      solves.fetch_add(local_solves, std::memory_order_relaxed);
    });
    outcome.hydraulic_solves += solves.load();

    double best_residual = current_residual;
    std::pair<std::size_t, double> best_leak{0, 0.0};
    bool found = false;
    for (std::size_t t = 0; t < trials.size(); ++t) {
      if (residuals[t] < best_residual) {
        best_residual = residuals[t];
        best_leak = trials[t];
        found = true;
      }
    }
    if (!found) break;
    const double improvement =
        current_residual > 0.0 ? (current_residual - best_residual) / current_residual : 0.0;
    if (improvement < config_.min_relative_improvement) break;
    hypothesis.push_back(best_leak);
    outcome.predicted[best_leak.first] = 1;
    current_residual = best_residual;
  }

  outcome.residual = current_residual;
  outcome.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return outcome;
}

}  // namespace aqua::core
