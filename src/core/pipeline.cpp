#include "core/pipeline.hpp"

#include <chrono>

#include "common/error.hpp"

namespace aqua::core {

InferenceResult infer_leaks(const ProfileModel& profile, const InferenceInputs& inputs) {
  AQUA_REQUIRE(profile.model.fitted(), "profile model is not trained");
  const auto start = std::chrono::steady_clock::now();

  InferenceResult result;
  // Event prediction: P = f.predict_proba(T, x); S = f.predict(T, x).
  result.beliefs.p_leak = profile.model.predict_proba(inputs.features);
  result.predicted_iot_only = result.beliefs.predicted_set();

  // Weather expert (Algorithm 2 lines 6-13).
  if (!inputs.frozen.empty()) {
    result.weather_updates =
        fusion::apply_weather_update(result.beliefs, inputs.frozen, inputs.p_leak_given_freeze);
  }

  // Human event tuning (lines 14-26).
  result.energy_before =
      fusion::total_energy(result.beliefs, inputs.cliques, inputs.entropy_threshold);
  if (!inputs.cliques.empty()) {
    result.tuning =
        fusion::apply_human_tuning(result.beliefs, inputs.cliques, inputs.entropy_threshold);
  }
  result.energy_after =
      fusion::total_energy(result.beliefs, inputs.cliques, inputs.entropy_threshold);

  result.predicted = result.beliefs.predicted_set();
  result.infer_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

std::vector<fusion::LabelClique> to_label_cliques(const std::vector<fusion::Clique>& cliques,
                                                  const LabelSpace& labels) {
  std::vector<fusion::LabelClique> out;
  out.reserve(cliques.size());
  for (const auto& clique : cliques) {
    fusion::LabelClique mapped;
    mapped.confidence = clique.confidence;
    for (hydraulics::NodeId node : clique.nodes) {
      if (labels.has_label(node)) mapped.labels.push_back(labels.label_of(node));
    }
    if (!mapped.labels.empty()) out.push_back(std::move(mapped));
  }
  return out;
}

}  // namespace aqua::core
