#include "core/pipeline.hpp"

#include "common/error.hpp"
#include "core/inference_engine.hpp"

namespace aqua::core {

InferenceResult infer_leaks(const ProfileModel& profile, const InferenceInputs& inputs) {
  // Thin wrapper over the batched serving layer (batch of one), so the
  // single-shot and batched paths are one implementation and stay
  // bit-identical by construction.
  return InferenceEngine(profile).infer(inputs);
}

std::vector<fusion::LabelClique> to_label_cliques(const std::vector<fusion::Clique>& cliques,
                                                  const LabelSpace& labels) {
  std::vector<fusion::LabelClique> out;
  out.reserve(cliques.size());
  for (const auto& clique : cliques) {
    fusion::LabelClique mapped;
    mapped.confidence = clique.confidence;
    for (hydraulics::NodeId node : clique.nodes) {
      if (labels.has_label(node)) mapped.labels.push_back(labels.label_of(node));
    }
    if (!mapped.labels.empty()) out.push_back(std::move(mapped));
  }
  return out;
}

}  // namespace aqua::core
