// Failure-scenario generation (Sec. V-A): each scenario carries 1..m
// concurrent leak events with "arbitrary locations and sizes but same
// starting time", the number of events uniform in U(1, max). The
// cold-weather variant ("Pipe Failures due to Low Temperature") drives
// leak locations from the freeze process so weather information becomes an
// informative expert.
//
// On top of the paper's leak-only scenarios sits the scenario-diversity
// engine (DESIGN.md §15): a ScenarioConfig carries a list of FaultSpecs,
// each a distribution over one variant family — pump outages, valve
// closures, ramping-EC leaks, demand surges, tank-drawdown starts, and
// sensor faults (dropout / stuck-at / drift / adversarial bias). Every
// generated scenario samples each spec independently, so corpora mix
// healthy and degraded conditions at configurable rates.
//
// Determinism contract: the generator consumes a FIXED number of draws
// from its base stream per scenario (exactly the two draws of one
// Rng::split), no matter which variants fire or how many events they
// produce. Hence generate(100) is a prefix of generate(200) for the same
// seed, and adding or removing fault specs never perturbs the base leak
// fields of any scenario (tests/test_scenario_variants.cpp asserts both).
#pragma once

#include <cstdint>
#include <vector>

#include "core/label_space.hpp"
#include "fusion/weather.hpp"
#include "hydraulics/simulation.hpp"
#include "ml/dataset.hpp"
#include "sensing/sensors.hpp"

namespace aqua::core {

/// Variant families of the scenario-diversity engine. The first five
/// perturb hydraulics; the sensor kinds perturb the measurement channel
/// after noise, before Δ-feature extraction (sensing/sensors.hpp).
enum class FaultKind : std::uint8_t {
  kPumpOutage,     // pump links forced closed over a window
  kValveClosure,   // valve (or pipe gate) links forced closed over a window
  kLeakRamp,       // leak EC ramps linearly instead of appearing at full size
  kDemandSurge,    // junction demands multiplied over a window
  kTankDrawdown,   // tank initial levels scaled down at t = 0 (full-run only)
  kSensorDropout,  // sensor reading -> 0
  kSensorStuckAt,  // sensor reading -> constant
  kSensorDrift,    // sensor reading accumulates per-slot offset
  kSensorBias,     // sensor reading shifted by a constant (adversarial)
};

inline constexpr std::size_t kNumFaultKinds = 9;

const char* fault_kind_name(FaultKind kind);

/// Bit for FaultKind `kind` in LeakScenario::variant_mask.
inline constexpr std::uint32_t fault_bit(FaultKind kind) noexcept {
  return std::uint32_t{1} << static_cast<std::uint32_t>(kind);
}

/// Distribution over one variant family. Each generated scenario fires the
/// spec with `probability`; window positions are expressed in slots
/// RELATIVE to the scenario's leak slot (negative offsets start before the
/// leak and force the scenario onto the full-run path — see
/// LeakScenario::replay_compatible). Fields that a kind does not use are
/// ignored; specs whose targets are absent from a network (pumps on a
/// pump-less system, tanks on a tank-less one) silently never fire there,
/// without affecting any other draw.
struct FaultSpec {
  FaultKind kind = FaultKind::kPumpOutage;
  double probability = 1.0;

  // Window start, in slots relative to the leak slot (clamped to >= 1).
  std::int64_t offset_min_slots = 0;
  std::int64_t offset_max_slots = 4;
  // Window length in slots (>= 1); ramp length for kLeakRamp.
  std::size_t duration_min_slots = 4;
  std::size_t duration_max_slots = 12;
  // Surge multiplier / drawdown scale / stuck-at value / drift-per-slot /
  // bias, in the variant's native unit.
  double magnitude_min = 0.0;
  double magnitude_max = 0.0;
  // How many targets to hit: pumps/valves to close, junctions to surge,
  // sensors to fault (capped at what the network offers).
  std::size_t targets_min = 1;
  std::size_t targets_max = 1;
};

/// Canonical spec for one family (the defaults the test suites and benches
/// use), firing with `probability`.
FaultSpec make_fault_spec(FaultKind kind, double probability = 1.0);

struct LeakScenario {
  std::vector<hydraulics::LeakEvent> events;  // all share the same start slot
  std::size_t leak_slot = 0;                  // e.t in IoT slots
  ml::Labels truth;                           // per-label leak indicator
  std::vector<std::uint8_t> frozen;           // per-label frozen indicator (may be all 0)
  double temperature_f = 55.0;

  // Variant layer (empty / 1.0 / 0 for the paper's baseline scenarios).
  std::vector<hydraulics::OperationalEvent> operations;
  std::vector<hydraulics::DemandEvent> demand_events;
  double tank_init_scale = 1.0;
  std::vector<sensing::SensorFaultDraw> sensor_faults;
  std::uint32_t variant_mask = 0;  // OR of fault_bit(kind) for fired variants

  /// True when the no-leak baseline checkpoint at this scenario's leak
  /// slot is still valid: initial tank levels untouched and every
  /// operational / demand window starting at or after the leak slot.
  /// Sensor faults never matter here — they live downstream of hydraulics.
  /// Scenarios failing this must run full (SnapshotBatch falls back
  /// automatically and counts them in its stats).
  bool replay_compatible(double hydraulic_step_s) const noexcept;
};

struct ScenarioConfig {
  std::size_t min_events = 1;
  std::size_t max_events = 5;     // U(min, max) events per scenario
  double ec_min = 0.0015;         // leak size (emitter coefficient) range
  double ec_max = 0.0090;
  std::size_t min_leak_slot = 4;  // e.t randomized across the day
  std::size_t max_leak_slot = 40;
  /// Seconds per IoT slot. Must equal the hydraulic step the scenarios are
  /// later simulated with (SimulationOptions::hydraulic_step_s), so that
  /// LeakEvent::start_time_s and the batch's snapshot indices agree;
  /// SnapshotBatch enforces the consistency.
  double hydraulic_step_s = 900.0;
  bool cold_weather = false;      // freeze-driven multi-failure
  fusion::FreezeModel freeze;
  double cold_temperature_f = 12.0;  // ambient during cold scenarios
  double warm_temperature_f = 55.0;
  /// Variant layer: each spec is sampled independently per scenario.
  /// Empty (the default) reproduces the paper's leak-only corpora exactly.
  std::vector<FaultSpec> faults;
  std::uint64_t seed = 1234;
};

class ScenarioGenerator {
 public:
  ScenarioGenerator(const hydraulics::Network& network, ScenarioConfig config);

  /// One scenario; deterministic given the generator state, and a fixed
  /// draw count on the base stream per call (see file comment).
  LeakScenario next();

  /// A batch of scenarios. generate(n) is a prefix of generate(m >= n)
  /// for equal seeds.
  std::vector<LeakScenario> generate(std::size_t count);

  const ScenarioConfig& config() const noexcept { return config_; }
  const LabelSpace& labels() const noexcept { return labels_; }

 private:
  void apply_fault(const FaultSpec& spec, Rng& rng, LeakScenario& scenario) const;

  const hydraulics::Network& network_;
  ScenarioConfig config_;
  LabelSpace labels_;
  Rng rng_;
  double slot_seconds_;
  // Cached per-network target pools for the variant layer.
  std::vector<hydraulics::LinkId> pump_links_;
  std::vector<hydraulics::LinkId> valve_links_;
  std::vector<hydraulics::NodeId> surge_nodes_;  // junctions with base demand
  bool has_tank_ = false;
};

}  // namespace aqua::core
