// Failure-scenario generation (Sec. V-A): each scenario carries 1..m
// concurrent leak events with "arbitrary locations and sizes but same
// starting time", the number of events uniform in U(1, max). The
// cold-weather variant ("Pipe Failures due to Low Temperature") drives
// leak locations from the freeze process so weather information becomes an
// informative expert.
#pragma once

#include <cstdint>
#include <vector>

#include "core/label_space.hpp"
#include "fusion/weather.hpp"
#include "hydraulics/simulation.hpp"
#include "ml/dataset.hpp"

namespace aqua::core {

struct LeakScenario {
  std::vector<hydraulics::LeakEvent> events;  // all share the same start slot
  std::size_t leak_slot = 0;                  // e.t in IoT slots
  ml::Labels truth;                           // per-label leak indicator
  std::vector<std::uint8_t> frozen;           // per-label frozen indicator (may be all 0)
  double temperature_f = 55.0;
};

struct ScenarioConfig {
  std::size_t min_events = 1;
  std::size_t max_events = 5;     // U(min, max) events per scenario
  double ec_min = 0.0015;         // leak size (emitter coefficient) range
  double ec_max = 0.0090;
  std::size_t min_leak_slot = 4;  // e.t randomized across the day
  std::size_t max_leak_slot = 40;
  /// Seconds per IoT slot. Must equal the hydraulic step the scenarios are
  /// later simulated with (SimulationOptions::hydraulic_step_s), so that
  /// LeakEvent::start_time_s and the batch's snapshot indices agree;
  /// SnapshotBatch enforces the consistency.
  double hydraulic_step_s = 900.0;
  bool cold_weather = false;      // freeze-driven multi-failure
  fusion::FreezeModel freeze;
  double cold_temperature_f = 12.0;  // ambient during cold scenarios
  double warm_temperature_f = 55.0;
  std::uint64_t seed = 1234;
};

class ScenarioGenerator {
 public:
  ScenarioGenerator(const hydraulics::Network& network, ScenarioConfig config);

  /// One scenario; deterministic given the generator state.
  LeakScenario next();

  /// A batch of scenarios.
  std::vector<LeakScenario> generate(std::size_t count);

  const ScenarioConfig& config() const noexcept { return config_; }
  const LabelSpace& labels() const noexcept { return labels_; }

 private:
  const hydraulics::Network& network_;
  ScenarioConfig config_;
  LabelSpace labels_;
  Rng rng_;
  double slot_seconds_;
};

}  // namespace aqua::core
