// Batched Phase II serving layer. InferenceEngine runs Algorithm 2 over a
// batch of snapshots: the profile model evaluates every stacked feature row
// in one batched call (hoisting the per-label classifiers' shared input map
// — see MultiLabelModel::predict_proba_batch_into), then the fusion pass
// (weather Bayes update, human-input event tuning, energy bookkeeping) runs
// per snapshot across the global thread pool with per-worker telemetry and
// reusable scratch. Results are bit-identical to calling infer_leaks per
// snapshot — batching only amortizes and hoists, it never reorders the
// arithmetic inside one snapshot — and come back in input order.
#pragma once

#include <span>

#include "common/telemetry.hpp"
#include "core/pipeline.hpp"
#include "core/profile.hpp"

namespace aqua::core {

struct InferenceEngineOptions {
  /// Spread the profile evaluation and the fusion pass across the global
  /// ThreadPool. Results are identical either way.
  bool parallel = true;
};

class InferenceEngine {
 public:
  /// Stage indices into the telemetry schema (see make_telemetry_schema).
  enum Stage : std::size_t {
    kStageProfileEval = 0,  // batched predict_proba over stacked rows
    kStageWeather,          // Bayes weather update (Alg. 2 lines 6-13)
    kStageHumanTuning,      // higher-order-potential tuning (lines 14-26)
    kStageEnergy,           // total_energy before/after tuning
    kNumStages,
  };
  enum Counter : std::size_t {
    kCounterSnapshots = 0,
    kCounterBatches,
    kCounterWeatherUpdates,
    kCounterLabelsAdded,
    kNumCounters,
  };

  /// The profile must outlive the engine and stay un-mutated while the
  /// engine is in use (the engine only ever calls const members of it).
  explicit InferenceEngine(const ProfileModel& profile, InferenceEngineOptions options = {});

  /// Single-snapshot convenience: infer_batch of one.
  InferenceResult infer(const InferenceInputs& inputs) const;

  /// Runs Algorithm 2 over every snapshot in the batch. result[i] always
  /// corresponds to batch[i] and is bit-identical to infer_leaks(profile,
  /// batch[i]). Each result's infer_seconds is its own fusion time plus an
  /// equal share of the batched profile-evaluation time. Reentrant: safe
  /// to call concurrently from multiple threads on one engine.
  std::vector<InferenceResult> infer_batch(std::span<const InferenceInputs> batch) const;

  const ProfileModel& profile() const noexcept { return profile_; }

  /// Aggregate compiled-forest statistics for the served profile (zero
  /// report for tree-less kinds). Serving captures this once per bundle
  /// load and exports it as forest.* metrics per district.
  ml::ForestCompileReport forest_compile_report() const {
    return profile_.model.forest_compile_report();
  }

  /// Consistent snapshot of the per-stage telemetry accumulated by every
  /// infer/infer_batch call since construction (or the last reset).
  telemetry::StageTimes telemetry_snapshot() const { return registry_.snapshot(); }
  void reset_telemetry() const { registry_.reset(); }

  /// The engine's telemetry schema: stage/counter names positionally
  /// matching the Stage and Counter enums.
  static telemetry::StageTimes make_telemetry_schema();

 private:
  /// Fusion stages for one snapshot, beliefs already seeded from the
  /// profile row. Stage times and counters go to `times` (worker-local;
  /// merged into the registry per chunk, not per snapshot).
  void fuse_snapshot(const InferenceInputs& inputs, InferenceResult& result,
                     telemetry::StageTimes& times) const;

  const ProfileModel& profile_;
  InferenceEngineOptions options_;
  mutable telemetry::Registry registry_;
};

}  // namespace aqua::core
