// Experiment orchestration shared by the figure-reproduction benches and
// integration tests. An ExperimentContext simulates a scenario corpus once
// (train + test) and can then evaluate any combination of model kind, IoT
// percentage, elapsed slots, and information sources without re-running
// hydraulics — mirroring how the paper sweeps configurations over fixed
// 20,000/2,000 scenario sets.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "core/enumeration.hpp"
#include "core/pipeline.hpp"
#include "core/profile.hpp"
#include "core/scenario.hpp"
#include "core/snapshots.hpp"
#include "fusion/human.hpp"
#include "ml/metrics.hpp"

namespace aqua::core {

struct ExperimentConfig {
  ScenarioConfig scenarios;
  std::size_t train_samples = 1200;
  std::size_t test_samples = 250;
  /// Elapsed-slot values snapshots are kept for (ascending).
  std::vector<std::size_t> elapsed_slots = {1};
  sensing::NoiseModel noise;
  std::uint64_t seed = 99;
};

struct EvalOptions {
  ModelKind kind = ModelKind::kHybridRsl;
  double iot_percent = 100.0;
  std::size_t elapsed_index = 0;
  bool use_weather = false;
  bool use_human = false;
  fusion::TweetModelConfig tweets;   // gamma lives here (clique_radius_m)
  double p_leak_given_freeze = 0.9;
  /// When true (default), the weather expert's probability is derived from
  /// the freeze process's actual likelihood ratio P(frozen|leak) /
  /// P(frozen|no leak) = 1 / p_freeze instead of the paper's literal 0.9.
  /// The literal value assumes sklearn-style uncalibrated class
  /// probabilities; against this library's class-balanced (recall-shifted)
  /// probabilities it multiplies every frozen node's odds by 9 and floods
  /// the prediction with false positives. The calibrated ratio preserves
  /// Eq. 5-6 and the paper's qualitative result (small positive weather
  /// increment). Set false to reproduce the literal parameterization.
  bool calibrated_weather = true;
  double entropy_threshold = 0.0;    // Γ
  bool kmedoids_placement = true;    // false = random placement (ablation)
  bool include_time_feature = true;  // false = Δ-only features (ablation)
};

struct EvalResult {
  double hamming = 0.0;           // final fused prediction
  double hamming_iot_only = 0.0;  // profile-only prediction
  ml::PrecisionRecall prf;        // of the fused prediction
  double train_seconds = 0.0;
  double mean_infer_seconds = 0.0;
  std::size_t test_samples = 0;

  double increment() const noexcept { return hamming - hamming_iot_only; }
};

class ExperimentContext {
 public:
  /// Heavy constructor: generates scenarios and simulates every one.
  ExperimentContext(const hydraulics::Network& network, ExperimentConfig config);

  const hydraulics::Network& network() const noexcept { return network_; }
  const ExperimentConfig& config() const noexcept { return config_; }
  const LabelSpace& labels() const noexcept { return labels_; }
  const std::vector<LeakScenario>& train_scenarios() const noexcept { return train_scenarios_; }
  const std::vector<LeakScenario>& test_scenarios() const noexcept { return test_scenarios_; }
  const SnapshotBatch& train_batch() const noexcept { return *train_batch_; }
  const SnapshotBatch& test_batch() const noexcept { return *test_batch_; }

  /// Sensor set for an IoT percentage (cached; k-medoids on a healthy
  /// baseline day, or uniform-random for the placement ablation).
  const sensing::SensorSet& sensors_at(double percent, bool kmedoids = true);

  /// Trains a profile and evaluates it on the test scenarios with the
  /// requested information sources.
  EvalResult evaluate(const EvalOptions& options);

  /// Evaluates an already trained profile (reuse across source toggles).
  EvalResult evaluate_profile(const ProfileModel& profile, const EvalOptions& options);

  /// Trains a profile with the given options (exposed for detection-time
  /// and ablation benches).
  ProfileModel train(const EvalOptions& options);

 private:
  const hydraulics::Network& network_;
  ExperimentConfig config_;
  LabelSpace labels_;
  std::vector<LeakScenario> train_scenarios_;
  std::vector<LeakScenario> test_scenarios_;
  std::unique_ptr<SnapshotBatch> train_batch_;
  std::unique_ptr<SnapshotBatch> test_batch_;
  std::optional<hydraulics::SimulationResults> baseline_day_;
  std::map<std::pair<int, bool>, sensing::SensorSet> sensor_cache_;  // key: percent*100
};

}  // namespace aqua::core
