#include "core/scenario.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace aqua::core {

ScenarioGenerator::ScenarioGenerator(const hydraulics::Network& network, ScenarioConfig config)
    : network_(network),
      config_(config),
      labels_(network),
      rng_(config.seed),
      slot_seconds_(config.hydraulic_step_s) {
  AQUA_REQUIRE(config_.hydraulic_step_s > 0.0, "slot length must be positive");
  AQUA_REQUIRE(config_.min_events >= 1, "scenarios need at least one event");
  AQUA_REQUIRE(config_.max_events >= config_.min_events, "max events below min");
  AQUA_REQUIRE(config_.max_events <= labels_.num_labels(),
               "more concurrent events than junctions");
  AQUA_REQUIRE(config_.ec_min > 0.0 && config_.ec_max >= config_.ec_min, "bad EC range");
  AQUA_REQUIRE(config_.min_leak_slot >= 1, "leak slot must have a predecessor");
  AQUA_REQUIRE(config_.max_leak_slot >= config_.min_leak_slot, "bad leak-slot range");
}

LeakScenario ScenarioGenerator::next() {
  LeakScenario scenario;
  const std::size_t num_labels = labels_.num_labels();
  scenario.truth.assign(num_labels, 0);
  scenario.frozen.assign(num_labels, 0);

  const auto count = static_cast<std::size_t>(
      rng_.uniform_int(static_cast<std::int64_t>(config_.min_events),
                       static_cast<std::int64_t>(config_.max_events)));
  scenario.leak_slot = static_cast<std::size_t>(
      rng_.uniform_int(static_cast<std::int64_t>(config_.min_leak_slot),
                       static_cast<std::int64_t>(config_.max_leak_slot)));

  std::vector<std::size_t> leak_labels;
  if (config_.cold_weather) {
    scenario.temperature_f = config_.cold_temperature_f;
    // Freeze process first; leaks occur among frozen joints (ice blockage
    // then burst). Guarantee feasibility by freezing the chosen leak
    // locations when the freeze draw leaves too few.
    for (std::size_t v = 0; v < num_labels; ++v) {
      scenario.frozen[v] = rng_.bernoulli(config_.freeze.p_freeze) ? 1 : 0;
    }
    std::vector<std::size_t> frozen_labels;
    for (std::size_t v = 0; v < num_labels; ++v) {
      if (scenario.frozen[v] != 0) frozen_labels.push_back(v);
    }
    if (frozen_labels.size() >= count) {
      const auto picks = rng_.sample_without_replacement(frozen_labels.size(), count);
      for (std::size_t p : picks) leak_labels.push_back(frozen_labels[p]);
    } else {
      const auto picks = rng_.sample_without_replacement(num_labels, count);
      leak_labels.assign(picks.begin(), picks.end());
      for (std::size_t v : leak_labels) scenario.frozen[v] = 1;
    }
  } else {
    scenario.temperature_f = config_.warm_temperature_f;
    const auto picks = rng_.sample_without_replacement(num_labels, count);
    leak_labels.assign(picks.begin(), picks.end());
  }

  const double start_time = static_cast<double>(scenario.leak_slot) * slot_seconds_;
  for (std::size_t label : leak_labels) {
    hydraulics::LeakEvent event;
    event.node = labels_.node_of(label);
    event.coefficient = rng_.uniform(config_.ec_min, config_.ec_max);
    event.exponent = 0.5;
    event.start_time_s = start_time;
    scenario.events.push_back(event);
    scenario.truth[label] = 1;
  }
  return scenario;
}

std::vector<LeakScenario> ScenarioGenerator::generate(std::size_t count) {
  std::vector<LeakScenario> scenarios;
  scenarios.reserve(count);
  for (std::size_t i = 0; i < count; ++i) scenarios.push_back(next());
  return scenarios;
}

}  // namespace aqua::core
